package blockbench

import (
	"bytes"
	"testing"
	"time"

	"blockbench/internal/types"
)

// durableCluster builds a fast LSM-backed cluster: nodes restart from
// their persisted store (WAL replay, block journal, consensus hard
// state) rather than from an in-memory snapshot of nothing.
func durableCluster(t *testing.T, kind Platform, nodes, clients int, mut func(*ClusterConfig)) *Cluster {
	t.Helper()
	cfg := ClusterConfig{
		Kind:              kind,
		Nodes:             nodes,
		Contracts:         []string{"ycsb", "smallbank", "donothing"},
		DataDir:           t.TempDir(),
		BlockInterval:     40 * time.Millisecond,
		StepDuration:      20 * time.Millisecond,
		IngestCost:        2 * time.Millisecond,
		BatchTimeout:      5 * time.Millisecond,
		ViewTimeout:       200 * time.Millisecond,
		ElectionTimeout:   80 * time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
		RPCLatency:        time.Microsecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewCluster(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	c.Start()
	return c
}

// waitConverged polls until every node reports the same chain height
// (and at least min), i.e. a recovered node has fully caught up.
func waitConverged(t *testing.T, c *Cluster, min uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		lo, hi := ^uint64(0), uint64(0)
		for i := 0; i < c.Size(); i++ {
			h := c.NodeHeight(i)
			if h < lo {
				lo = h
			}
			if h > hi {
				hi = h
			}
		}
		if lo == hi && lo >= min {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("heights did not converge within %v: lo=%d hi=%d", timeout, lo, hi)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertChainsByteIdentical re-encodes every block up to the shortest
// chain on every node and compares the wire bytes — stronger than hash
// agreement, and exactly the acceptance bar for crash recovery.
func assertChainsByteIdentical(t *testing.T, c *Cluster, nodes ...int) {
	t.Helper()
	inner := c.Inner()
	min := ^uint64(0)
	for _, i := range nodes {
		if h := inner.NodeHeight(i); h < min {
			min = h
		}
	}
	if min == 0 {
		t.Fatal("nothing committed to compare")
	}
	for h := uint64(1); h <= min; h++ {
		ref, ok := inner.Chain(nodes[0]).GetBlock(h)
		if !ok {
			t.Fatalf("node %d missing block %d", nodes[0], h)
		}
		want := types.EncodeBlock(ref)
		for _, i := range nodes[1:] {
			b, ok := inner.Chain(i).GetBlock(h)
			if !ok {
				t.Fatalf("node %d missing block %d", i, h)
			}
			if !bytes.Equal(want, types.EncodeBlock(b)) {
				t.Fatalf("nodes %d and %d diverge at block %d", nodes[0], i, h)
			}
		}
	}
}

// TestQuorumCrashRecoveryByteIdentical kills a Raft node mid-commit —
// its LSM store crash-closes with a genuinely torn WAL tail — then
// restarts it from disk alone. The recovered node must replay its
// journal, rejoin the group, and converge to byte-identical chain
// contents on every node.
func TestQuorumCrashRecoveryByteIdentical(t *testing.T) {
	c := durableCluster(t, Quorum, 4, 2, nil)
	r, err := Run(c, &YCSBWorkload{Records: 50}, RunConfig{
		Clients: 2, Threads: 2, Rate: 100, Duration: 3 * time.Second,
		Events: []Event{
			CrashNode(700*time.Millisecond, 1),
			RecoverNode(1700*time.Millisecond, 1),
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Fatal("nothing committed around the crash")
	}
	if len(r.Events) != 2 {
		t.Fatalf("fired %d of 2 fault events: %v", len(r.Events), r.Events)
	}
	if got := c.Restarts(1); got != 1 {
		t.Fatalf("node 1 restarts = %d, want 1", got)
	}
	if len(r.Invariants) != 0 {
		t.Fatalf("safety violations: %v", r.Invariants)
	}
	waitConverged(t, c, 1, 30*time.Second)
	assertChainsByteIdentical(t, c, 0, 1, 2, 3)
}

// TestQuorumRejoinViaInstallSnapshot kills a node, commits far past the
// leader's Raft log retention while it is down, and restarts it: the
// log entries it missed are gone, so the only way home is the
// snapshot-install path plus canonical chain sync — and the chains must
// still converge byte-identically.
func TestQuorumRejoinViaInstallSnapshot(t *testing.T) {
	c := durableCluster(t, Quorum, 4, 2, func(cfg *ClusterConfig) {
		cfg.RaftRetain = 8 // compact aggressively so the gap outgrows the log
	})
	// Commit a little history first so the killed node persists a chain
	// prefix it must extend (not bootstrap) after restart.
	if _, err := Run(c, &YCSBWorkload{Records: 50}, RunConfig{
		Clients: 2, Threads: 2, Rate: 100, Duration: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	c.Crash(3)
	before := c.NodeHeight(0)
	if _, err := Run(c, &YCSBWorkload{Records: 50}, RunConfig{
		Clients: 2, Threads: 2, Rate: 150, Duration: 2 * time.Second, SkipInit: true,
	}); err != nil {
		t.Fatal(err)
	}
	if grown := c.NodeHeight(0) - before; grown < 16 {
		t.Fatalf("only %d blocks committed while node 3 was down; need > retention(8)*2", grown)
	}
	c.Recover(3)
	waitConverged(t, c, c.NodeHeight(0), 30*time.Second)
	if got := c.Inner().Counters()["raft.snapshot_installs"]; got == 0 {
		t.Fatal("node rejoined without an InstallSnapshot despite compacted log")
	}
	assertChainsByteIdentical(t, c, 0, 1, 2, 3)
}

// TestShardedGatewayCrashMid2PC kills one replica (a 2PC gateway) in
// the middle of a cross-shard Smallbank run and restarts it. Soft locks
// it held must expire or release so the surviving gateways keep
// committing, cross-shard accounting must stay exact, and every replica
// of each shard must agree on every balance afterwards — all asserted
// by the driver's invariant checker plus the workload's own hook.
func TestShardedGatewayCrashMid2PC(t *testing.T) {
	c := durableCluster(t, Sharded, 6, 3, func(cfg *ClusterConfig) {
		cfg.Shards = 2 // 3 replicas per group: one kill keeps the majority
	})
	w := &SmallbankWorkload{Accounts: 20, InitialBalance: 1000}
	r, err := Run(c, w, RunConfig{
		Clients: 3, Threads: 2, Rate: 60, Duration: 3 * time.Second,
		Events: []Event{
			CrashNode(700*time.Millisecond, 1),
			RecoverNode(1900*time.Millisecond, 1),
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Fatal("nothing committed around the gateway crash")
	}
	if r.Counters["xshard.txs"] == 0 {
		t.Fatal("no cross-shard transactions coordinated; the test exercised nothing")
	}
	if len(r.Invariants) != 0 {
		t.Fatalf("safety violations: %v", r.Invariants)
	}
}

// TestChaosRunInvariantsHold is the randomized soak: a seeded chaos
// timeline of process kills, asymmetric partitions and lossy links over
// a Raft quorum, with the always-on safety checks armed. Whatever the
// interleaving, safety must hold — and the seed in the report would
// reproduce it if it ever does not.
func TestChaosRunInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak too heavy for -short")
	}
	c := durableCluster(t, Quorum, 5, 2, nil)
	r, err := Run(c, &YCSBWorkload{Records: 50}, RunConfig{
		Clients: 2, Threads: 2, Rate: 80, Duration: 6 * time.Second,
		Chaos: &ChaosOptions{Seed: 7, Kill: 0.05, Net: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ChaosSeed != 7 {
		t.Fatalf("chaos seed not echoed: %d", r.ChaosSeed)
	}
	if len(r.Invariants) != 0 {
		t.Fatalf("safety violations under chaos seed %d: %v", r.ChaosSeed, r.Invariants)
	}
	if r.Committed == 0 {
		t.Fatal("majority quorum committed nothing for the whole chaos run")
	}
	waitConverged(t, c, 1, 30*time.Second)
	assertChainsByteIdentical(t, c, 0, 1, 2, 3, 4)
}

// TestDriverFailoverOnCrashedServer pins one client to a server, kills
// the server mid-run, and checks the driver rotated the client to a
// live node (driver.failovers) instead of wedging its submit threads.
func TestDriverFailoverOnCrashedServer(t *testing.T) {
	c := durableCluster(t, Quorum, 4, 2, nil)
	r, err := Run(c, &YCSBWorkload{Records: 50}, RunConfig{
		Clients: 2, Threads: 2, Rate: 100, Duration: 2 * time.Second,
		Events: []Event{CrashNode(500*time.Millisecond, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters["driver.failovers"] == 0 {
		t.Fatal("client stayed pinned to a crashed server")
	}
	if r.Committed == 0 {
		t.Fatal("nothing committed after failover")
	}
}
