package blockbench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"blockbench/internal/workload"
)

func init() {
	workload.MustRegister(workload.Spec{
		Name:        "ycsb",
		Description: "key-value macro benchmark: configurable read/update/insert mix over YCSB request distributions",
		Contracts:   []string{"ycsb"},
		New: func(opts workload.Options) (any, error) {
			d := workload.NewDecoder(opts)
			w := &YCSBWorkload{
				Records:      d.Int("records", 0),
				ValueSize:    d.Int("valuesize", 0),
				ReadProp:     d.Float("readprop", 0),
				UpdateProp:   d.Float("updateprop", 0),
				InsertProp:   d.Float("insertprop", 0),
				Distribution: d.String("distribution", ""),
			}
			if err := d.Finish(); err != nil {
				return nil, err
			}
			return w, nil
		},
	})
}

// YCSBWorkload is the key-value macro benchmark: a preloaded record set
// and a configurable read/update/insert mix with YCSB's request
// distributions.
type YCSBWorkload struct {
	Records      int     // preloaded records (default 1000)
	ValueSize    int     // value bytes (default 100, as in the paper)
	ReadProp     float64 // default 0.5
	UpdateProp   float64 // default 0.5
	InsertProp   float64 // default 0
	Distribution string  // zipfian (default), uniform, latest

	fillOnce sync.Once
	chooser  workload.KeyChooser
	inserted atomic.Int64
}

// Name implements Workload.
func (w *YCSBWorkload) Name() string { return "ycsb" }

// Contracts implements Workload.
func (w *YCSBWorkload) Contracts() []string { return []string{"ycsb"} }

// lazyFill applies defaults exactly once: Next may run on several
// goroutines without Init (SkipInit), so the check-then-initialize must
// not race.
func (w *YCSBWorkload) lazyFill() { w.fillOnce.Do(w.fill) }

func (w *YCSBWorkload) fill() {
	if w.Records <= 0 {
		w.Records = 1000
	}
	if w.ValueSize <= 0 {
		w.ValueSize = 100
	}
	if w.ReadProp == 0 && w.UpdateProp == 0 && w.InsertProp == 0 {
		w.ReadProp, w.UpdateProp = 0.5, 0.5
	}
	switch w.Distribution {
	case "uniform":
		w.chooser = workload.Uniform{N: w.Records}
	case "latest":
		w.chooser = workload.NewLatest(w.Records)
	default:
		w.Distribution = "zipfian"
		w.chooser = workload.NewZipfian(w.Records)
	}
}

func ycsbKey(i int) []byte { return []byte(fmt.Sprintf("user%010d", i)) }

// Init implements Workload: preloads the record set.
func (w *YCSBWorkload) Init(c *Cluster, rng *rand.Rand) error {
	w.lazyFill()
	ops := make([]Op, w.Records)
	for i := range ops {
		ops[i] = Op{Contract: "ycsb", Method: "write",
			Args: [][]byte{ycsbKey(i), randValue(rng, w.ValueSize)}}
	}
	w.inserted.Store(int64(w.Records))
	return c.preloadOps(ops, 200)
}

// KeyOf implements KeyedWorkload: every YCSB operation addresses the
// single record key in its first argument.
func (w *YCSBWorkload) KeyOf(op Op) [][]byte { return OpKeys(op) }

// Next implements Workload.
func (w *YCSBWorkload) Next(clientID int, rng *rand.Rand) Op {
	w.lazyFill()
	p := rng.Float64()
	switch {
	case p < w.ReadProp:
		return Op{Contract: "ycsb", Method: "read",
			Args: [][]byte{ycsbKey(w.chooser.Next(rng))}}
	case p < w.ReadProp+w.UpdateProp:
		return Op{Contract: "ycsb", Method: "write",
			Args: [][]byte{ycsbKey(w.chooser.Next(rng)), randValue(rng, w.ValueSize)}}
	default:
		i := int(w.inserted.Add(1))
		return Op{Contract: "ycsb", Method: "write",
			Args: [][]byte{ycsbKey(i), randValue(rng, w.ValueSize)}}
	}
}
