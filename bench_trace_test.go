// BenchmarkTraceOverhead gates the lifecycle tracer's cost on the
// driver's hottest path: the open-loop submission pipeline at unlimited
// offered rate, where every transaction pays the sampling decision and
// sampled ones pay the per-stage stamps. The sub-benchmarks sweep the
// sampling fraction — off (negative), the 1% production default, and
// sample-everything — and each reports accepted submissions per second.
// bench-check tracks the family, so a tracer change that drags the
// sampled path down shows up as a throughput regression; the design
// target is <5% delta between off and the 1% default.
package blockbench_test

import (
	"testing"
	"time"

	"blockbench"
)

func BenchmarkTraceOverhead(b *testing.B) {
	cases := []struct {
		name   string
		sample float64
	}{
		{"off", -1},
		{"sampled", 0.01},
		{"all", 1.0},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var submitted float64
			for i := 0; i < b.N; i++ {
				w := blockbench.MustWorkload("donothing", nil)
				c, err := blockbench.NewCluster(blockbench.ClusterConfig{
					Kind: blockbench.Hyperledger, Nodes: 4, Contracts: w.Contracts(),
				}, 4)
				if err != nil {
					b.Fatal(err)
				}
				c.Start()
				r, err := blockbench.Run(c, w, blockbench.RunConfig{
					Clients: 4, Threads: 4, Rate: 0, Duration: 2 * time.Second,
					TraceSample: tc.sample,
				})
				c.Stop()
				if err != nil {
					b.Fatal(err)
				}
				submitted += float64(r.Submitted) / r.Duration.Seconds()
			}
			b.ReportMetric(submitted/float64(b.N), "submits/s")
		})
	}
}
