package blockbench_test

import (
	"math/rand"
	"testing"
	"time"

	"blockbench"
	"blockbench/internal/sharding"
)

// fastShardedCluster builds (without starting) a sharded cluster with
// test-fast timings.
func fastShardedCluster(t *testing.T, nodes, shards, clients int, w blockbench.Workload) *blockbench.Cluster {
	t.Helper()
	c, err := blockbench.NewCluster(blockbench.ClusterConfig{
		Kind:              blockbench.Sharded,
		Nodes:             nodes,
		Shards:            shards,
		Contracts:         w.Contracts(),
		ElectionTimeout:   80 * time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
		BatchTimeout:      5 * time.Millisecond,
		RPCLatency:        time.Microsecond,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardedDriverRun drives the fifth platform through the standard
// run handle: a YCSB run (single-key, so pure fast path) commits
// through per-shard consensus and the report carries the xshard counter
// family — the registry seam end to end with zero driver edits.
func TestShardedDriverRun(t *testing.T) {
	w := blockbench.MustWorkload("ycsb", blockbench.WorkloadOptions{"records": "100"})
	c := fastShardedCluster(t, 4, 2, 4, w)
	defer c.Stop()
	if err := w.Init(c, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	c.Start()

	r, err := blockbench.Run(c, w, blockbench.RunConfig{
		Clients: 4, Threads: 2, Rate: 200, Duration: 2 * time.Second,
		SkipInit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Fatalf("no transactions committed: %v", r)
	}
	if r.Counter("xshard.fastpath") == 0 {
		t.Fatalf("fast path never taken: %v", r.Counters)
	}
	if r.Counter("xshard.txs") != 0 {
		t.Fatalf("single-key YCSB coordinated 2PC: %v", r.Counters)
	}
	if r.CrossShardRatio() != 0 {
		t.Fatalf("cross-shard ratio %.2f for a single-key workload", r.CrossShardRatio())
	}
	for _, key := range []string{"xshard.commits", "xshard.aborts", "xshard.retries"} {
		if _, ok := r.Counters[key]; !ok {
			t.Fatalf("report missing %s: %v", key, r.Counters)
		}
	}
}

// TestShardedLeaderCrashAbortRetry crashes a shard's consensus leader
// mid-run through the declarative event timeline: cross-shard prepares
// to the dead shard time out into abort-retry, and after recovery the
// retries land — the run ends with both retries and commits on the
// books.
func TestShardedLeaderCrashAbortRetry(t *testing.T) {
	w := blockbench.MustWorkload("smallbank", blockbench.WorkloadOptions{"accounts": "40"})
	// Two single-node shard groups: node 1 IS shard 1's leader, so the
	// timeline can name it without discovering leadership first.
	c := fastShardedCluster(t, 2, 2, 2, w)
	defer c.Stop()
	if err := w.Init(c, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	c.Start()

	r, err := blockbench.Run(c, w, blockbench.RunConfig{
		Clients: 2, Threads: 2, Rate: 150, Duration: 2500 * time.Millisecond,
		SkipInit: true,
		Events: []blockbench.Event{
			blockbench.CrashNode(500*time.Millisecond, 1),
			blockbench.RecoverNode(1200*time.Millisecond, 1),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) != 2 {
		t.Fatalf("timeline fired %d of 2 events", len(r.Events))
	}
	if r.Counter("xshard.txs") == 0 {
		t.Fatal("no cross-shard transactions were coordinated")
	}
	if r.Counter("xshard.retries") == 0 {
		t.Fatalf("crashed shard leader produced no abort-retries: %v", r.Counters)
	}
	if r.Counter("xshard.commits") == 0 {
		t.Fatalf("no cross-shard commit after recovery: %v", r.Counters)
	}
	if r.Committed == 0 {
		t.Fatal("nothing committed across the whole run")
	}
}

// TestPartitionerSkew draws 10k operations from YCSB's zipfian request
// distribution and buckets their keys (via the KeyOf hint) across the
// hash partitioner: even under zipfian skew, no shard may see more than
// 2x the mean load — hashing decorrelates popularity from placement.
func TestPartitionerSkew(t *testing.T) {
	w := blockbench.MustWorkload("ycsb", blockbench.WorkloadOptions{
		"records": "1000", "distribution": "zipfian"})
	keyed, ok := w.(blockbench.KeyedWorkload)
	if !ok {
		t.Fatal("ycsb does not implement KeyedWorkload")
	}
	rng := rand.New(rand.NewSource(99))
	for _, shards := range []int{2, 4, 8} {
		p := sharding.NewHashPartitioner(shards)
		counts := make([]int, shards)
		const draws = 10_000
		for i := 0; i < draws; i++ {
			op := w.Next(i%4, rng)
			keys := keyed.KeyOf(op)
			if len(keys) == 0 {
				t.Fatalf("KeyOf returned no keys for %s.%s", op.Contract, op.Method)
			}
			for _, k := range keys {
				counts[p.Shard(k)]++
			}
		}
		mean := float64(draws) / float64(shards)
		for s, n := range counts {
			if float64(n) > 2*mean {
				t.Fatalf("S=%d: shard %d drew %d of %d (>2x mean %.0f): %v",
					shards, s, n, draws, mean, counts)
			}
		}
		t.Logf("S=%d: shard loads %v (mean %.0f)", shards, counts, mean)
	}
}

// TestSmallbankKeyOfCrossShardRate: the Smallbank KeyOf hint predicts
// the workload's cross-shard touch rate — about half of the two-account
// procedures (1/3 of the mix) cross a 2-shard split, and the observed
// rate from 10k draws must sit in a sane band around it.
func TestSmallbankKeyOfCrossShardRate(t *testing.T) {
	w := blockbench.MustWorkload("smallbank", blockbench.WorkloadOptions{"accounts": "1000"})
	keyed := w.(blockbench.KeyedWorkload)
	p := sharding.NewHashPartitioner(2)
	rng := rand.New(rand.NewSource(7))
	cross, total := 0, 10_000
	for i := 0; i < total; i++ {
		keys := keyed.KeyOf(w.Next(i%4, rng))
		seen := map[int]bool{}
		for _, k := range keys {
			seen[p.Shard(k)] = true
		}
		if len(seen) > 1 {
			cross++
		}
	}
	rate := float64(cross) / float64(total)
	// 3 of 6 procedures take two accounts; a uniform pair crosses a
	// 2-shard hash split about half the time -> ~25% overall.
	if rate < 0.15 || rate > 0.35 {
		t.Fatalf("cross-shard touch rate %.3f outside [0.15, 0.35]", rate)
	}
	t.Logf("smallbank cross-shard touch rate at S=2: %.1f%%", 100*rate)
}
