package blockbench

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"blockbench/internal/analytics"
	"blockbench/internal/kvstore"
)

// fastAnalyticsCluster is fastClusterStopped plus -popt style Options.
func fastAnalyticsCluster(t *testing.T, kind Platform, nodes, clients int, popts map[string]string) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Kind:              kind,
		Nodes:             nodes,
		Contracts:         []string{"versionkv", "donothing"},
		Options:           popts,
		BlockInterval:     40 * time.Millisecond,
		StepDuration:      20 * time.Millisecond,
		IngestCost:        2 * time.Millisecond,
		BatchTimeout:      5 * time.Millisecond,
		ViewTimeout:       200 * time.Millisecond,
		ElectionTimeout:   80 * time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
		RPCLatency:        time.Microsecond,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestAnalyticsIndexedMatchesRPC pins the tentpole equivalence: on a
// seeded 2k-block chain, the indexed read path returns exactly what
// the paper's per-block RPC walk returns — on every platform,
// including the LSM store (which also persists the index segments).
func TestAnalyticsIndexedMatchesRPC(t *testing.T) {
	if testing.Short() {
		t.Skip("2k-block preload too heavy for -short")
	}
	cases := []struct {
		name  string
		kind  Platform
		popts map[string]string
	}{
		{"ethereum", Ethereum, nil},
		{"parity", Parity, nil},
		{"hyperledger", Hyperledger, nil},
		{"quorum", Quorum, nil},
		{"sharded", Sharded, nil},
		{"quorum-lsm", Quorum, map[string]string{"store": "lsm"}},
	}
	const blocks = 2000
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := fastAnalyticsCluster(t, tc.kind, 2, 8, tc.popts)
			a := &Analytics{Blocks: blocks, TxPerBlock: 3, Accounts: 8}
			if err := a.Init(c, rand.New(rand.NewSource(7))); err != nil {
				t.Fatal(err)
			}
			c.Start()
			client := c.Client(0)

			// Stay 3 blocks under the preloaded head so the indexed
			// path's confirmation clamp (depth 2 on Ethereum) can never
			// shorten a range the RPC walk covers.
			h := c.Height()
			if h < blocks {
				t.Fatalf("preload height %d < %d", h, blocks)
			}
			top := h - 3
			ranges := [][2]uint64{
				{1, top},                               // full history
				{top - blocks/2, top - blocks/2 + 100}, // mid-chain window
				{top - 40, top},                        // hot tail
				{top - 18, top - 17},                   // single block
			}
			for _, r := range ranges {
				from, to := r[0], r[1]
				a.Mode = "rpc"
				wantQ1, _, err := a.Q1(client, from, to)
				if err != nil {
					t.Fatal(err)
				}
				a.Mode = "indexed"
				gotQ1, _, err := a.Q1(client, from, to)
				if err != nil {
					t.Fatal(err)
				}
				if gotQ1 != wantQ1 {
					t.Fatalf("Q1 [%d,%d): indexed %d, rpc %d", from, to, gotQ1, wantQ1)
				}
				for i := 0; i < 3; i++ {
					acct := a.Account(i)
					a.Mode = "rpc"
					wantQ2, _, err := a.Q2(client, acct, from, to)
					if err != nil {
						t.Fatal(err)
					}
					a.Mode = "indexed"
					gotQ2, _, err := a.Q2(client, acct, from, to)
					if err != nil {
						t.Fatal(err)
					}
					if gotQ2 != wantQ2 {
						t.Fatalf("Q2 [%d,%d) acct %d: indexed %d, rpc %d", from, to, i, gotQ2, wantQ2)
					}
				}
			}

			// Range-restricted scans must have pruned whole segments.
			counters := c.Inner().Counters()
			if counters["analytics.zone_skips"] == 0 {
				t.Fatalf("no zone-map skips recorded: %v", counters)
			}
			if counters["analytics.queries"] == 0 || counters["analytics.rows"] == 0 {
				t.Fatalf("analytics counters did not move: %v", counters)
			}
		})
	}
}

// TestAnalyticsCatchUpRebuild pins late-start convergence: an indexer
// attached after the fact — fresh, or restored from the node's store —
// catches up to the chain and answers every query exactly like the
// commit-path indexer that saw each block live.
func TestAnalyticsCatchUpRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("preload too heavy for -short")
	}
	c := fastAnalyticsCluster(t, Quorum, 2, 8, nil)
	a := &Analytics{Blocks: 1200, TxPerBlock: 3, Accounts: 8}
	if err := a.Init(c, rand.New(rand.NewSource(11))); err != nil {
		t.Fatal(err)
	}
	// The cluster stays unstarted: the chain is frozen at the preload,
	// so live, rebuilt and restored indexes must agree exactly.
	chain := c.Inner().Chain(0)

	rebuilt := analytics.NewIndexer(kvstore.NewMem(), analytics.Options{})
	if err := rebuilt.CatchUp(chain); err != nil {
		t.Fatal(err)
	}

	restored := analytics.NewIndexer(c.Inner().Store(0), analytics.Options{})
	if err := restored.Load(); err != nil {
		t.Fatal(err)
	}
	if restored.Rows() == 0 {
		t.Fatal("restored indexer loaded no persisted segments")
	}
	if err := restored.CatchUp(chain); err != nil {
		t.Fatal(err)
	}

	client := c.Client(0)
	h := c.Height()
	queries := []AnalyticsQuery{
		{Op: AnalyticsSum, From: 1, To: h + 1},
		{Op: AnalyticsSum, From: h / 2, To: h/2 + 50},
		{Op: AnalyticsMaxDelta, Account: a.Account(0), From: 1, To: h + 1},
		{Op: AnalyticsTopK, Account: a.Account(1), From: 1, To: h + 1, K: 4},
		{Op: AnalyticsCommon, Account: a.Account(0), Account2: a.Account(2), From: 1, To: h + 1, K: 8},
	}
	for _, q := range queries {
		live, err := client.Analytics(q)
		if err != nil {
			t.Fatal(err)
		}
		for name, ix := range map[string]*analytics.Indexer{"rebuilt": rebuilt, "restored": restored} {
			got, err := ix.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != live.Value || len(got.Top) != len(live.Top) {
				t.Fatalf("%s %s: got %+v, live %+v", name, q.Op, got, live)
			}
			for i := range got.Top {
				if got.Top[i] != live.Top[i] {
					t.Fatalf("%s %s top[%d]: got %+v, live %+v", name, q.Op, i, got.Top[i], live.Top[i])
				}
			}
		}
	}
}

// TestHTAPScansSeeCommittedOnly runs the htap mix and, concurrently
// with the OLTP traffic, asserts the analytical invariants: query
// height never goes backward, and a fixed committed range keeps
// returning the same answer while new commits land (quorum never
// forks, so committed history is immutable).
func TestHTAPScansSeeCommittedOnly(t *testing.T) {
	c := fastCluster(t, Quorum, 3, 4, "versionkv", "donothing")
	w := &HTAP{PreloadBlocks: 12, QueryEvery: 8}

	stop := make(chan struct{})
	var monitorErr atomic.Value
	go func() {
		client := c.ClientOn(1, 1%c.Size())
		var lastH, pinnedH, pinnedSum uint64
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			res, err := client.Analytics(AnalyticsQuery{Op: AnalyticsSum, From: 1})
			if err != nil {
				continue // run may still be warming up
			}
			if res.Height < lastH {
				monitorErr.Store("query height went backward")
				return
			}
			lastH = res.Height
			if pinnedH == 0 && res.Height > 16 {
				pinnedH = res.Height
				pinned, err := client.Analytics(AnalyticsQuery{Op: AnalyticsSum, From: 1, To: pinnedH + 1})
				if err != nil {
					continue
				}
				pinnedSum = pinned.Value
				continue
			}
			if pinnedH > 0 {
				again, err := client.Analytics(AnalyticsQuery{Op: AnalyticsSum, From: 1, To: pinnedH + 1})
				if err == nil && again.Value != pinnedSum {
					monitorErr.Store("committed range changed under concurrent OLTP commits")
					return
				}
			}
		}
	}()

	r, err := Run(c, w, RunConfig{Clients: 4, Threads: 2, Rate: 300, Duration: 2500 * time.Millisecond})
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if v := monitorErr.Load(); v != nil {
		t.Fatal(v)
	}
	if r.Committed == 0 {
		t.Fatal("no OLTP transactions committed")
	}
	if w.Queries() == 0 {
		t.Fatal("no analytical queries ran during the mix")
	}
	if r.AnalyticsQueries() == 0 {
		t.Fatalf("report analytics.queries = 0: %v", r.Counters)
	}

	// Final equivalence: the indexed sum over the confirmed history
	// equals a fresh RPC walk over the same fixed range.
	client := c.Client(0)
	h, err := client.Height()
	if err != nil {
		t.Fatal(err)
	}
	var walked uint64
	for n := uint64(1); n <= h; n++ {
		b, err := client.Block(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, tx := range b.Txs {
			if tx.Contract == "" {
				walked += tx.Value
			}
		}
	}
	res, err := client.Analytics(AnalyticsQuery{Op: AnalyticsSum, From: 1, To: h + 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != walked {
		t.Fatalf("indexed sum %d != walked sum %d over [1,%d]", res.Value, walked, h)
	}
}

// TestAnalyticsIndexToggle pins the -popt index seam: every preset
// accepts index=off (queries then error), rejects malformed values,
// and defaults to an enabled index.
func TestAnalyticsIndexToggle(t *testing.T) {
	for _, kind := range Platforms() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			c := fastAnalyticsCluster(t, kind, 2, 2, map[string]string{"index": "off"})
			if c.Inner().Indexer(0) != nil {
				t.Fatal("index=off still built an indexer")
			}
			_, err := c.Client(0).Analytics(AnalyticsQuery{Op: AnalyticsSum, From: 1})
			if err == nil || !strings.Contains(err.Error(), "disabled") {
				t.Fatalf("query with index=off: %v", err)
			}
		})
	}
	if _, err := NewCluster(ClusterConfig{Kind: Quorum, Nodes: 2,
		Options: map[string]string{"index": "bogus"}}, 1); err == nil {
		t.Fatal("index=bogus accepted")
	}
}
