package report

import "time"

// Snapshot is one per-bucket frame of a live run's metric stream, emitted
// on the run handle's Snapshots channel. Counters whose meaning is
// cumulative (Submitted, Committed, SubmitErrors, Counters) cover the run
// so far; CommittedInBucket and Events cover only this bucket. Latency
// statistics are over every sample observed so far.
type Snapshot struct {
	// Seq is the bucket index, starting at 0.
	Seq int `json:"seq"`
	// Elapsed is the offset of this frame from the run's start.
	Elapsed time.Duration `json:"elapsed_ns"`

	Submitted    uint64 `json:"submitted"`
	Committed    uint64 `json:"committed"`
	SubmitErrors uint64 `json:"submit_errors"`
	// CommittedInBucket is the commit count since the previous frame.
	CommittedInBucket uint64 `json:"committed_in_bucket"`

	// QueueDepth is the current total of generated-but-unconfirmed
	// operations across all clients: generator backlog + submit channel +
	// in-flight + outstanding (the paper's Fig 6/18 queue metric).
	QueueDepth int `json:"queue_depth"`

	// Latency quantiles so far, in seconds.
	LatencyMean float64 `json:"latency_mean_s"`
	LatencyP50  float64 `json:"latency_p50_s"`
	LatencyP99  float64 `json:"latency_p99_s"`

	// Counters is the delta of every platform counter since the run
	// started (same keys as Report.Counters).
	Counters map[string]uint64 `json:"counters,omitempty"`

	// Events names the scheduled fault/attack events that fired since the
	// previous frame, in firing order.
	Events []string `json:"events,omitempty"`

	// Stages maps each lifecycle stage name to its sampled latency
	// statistics so far (same full key set as Report.Stages, in every
	// frame).
	Stages map[string]StageStat `json:"stages"`
}
