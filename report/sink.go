package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Sink consumes one run's metric stream: every live Snapshot in emission
// order, then the final Report. Implementations need not be safe for
// concurrent use — the driver and CLI feed a sink from a single
// goroutine.
type Sink interface {
	WriteSnapshot(Snapshot) error
	WriteReport(*Report) error
	// Close flushes and releases the underlying writer. Callers must
	// Close after the final WriteReport.
	Close() error
}

// Open creates a file sink for path, chosen by extension: ".csv" gets
// the CSV sink, anything else the JSONL sink. Parent directories must
// exist.
func Open(path string) (Sink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("report: open sink: %w", err)
	}
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		return NewCSV(f), nil
	}
	return NewJSONL(f), nil
}

// JSONL writes one JSON object per line: {"type":"snapshot",...} frames
// followed by one {"type":"report",...} summary. The format is the
// machine-readable series EXPERIMENTS.md macro runs record.
type JSONL struct {
	w   io.Writer
	enc *json.Encoder
}

// NewJSONL returns a JSONL sink over w. If w is an io.Closer, Close
// closes it.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, enc: json.NewEncoder(w)}
}

// WriteSnapshot implements Sink.
func (s *JSONL) WriteSnapshot(snap Snapshot) error {
	return s.enc.Encode(struct {
		Type string `json:"type"`
		Snapshot
	}{"snapshot", snap})
}

// WriteReport implements Sink.
func (s *JSONL) WriteReport(r *Report) error {
	return s.enc.Encode(struct {
		Type string `json:"type"`
		*Report
	}{"report", r})
}

// Close implements Sink.
func (s *JSONL) Close() error {
	if c, ok := s.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// CSV writes the snapshot stream as a flat table (header + one row per
// frame). The final Report is not representable in the fixed columns and
// is skipped — pair the CSV series with a JSONL sink when the summary is
// needed too.
type CSV struct {
	w       io.Writer
	cw      *csv.Writer
	started bool
}

// NewCSV returns a CSV sink over w. If w is an io.Closer, Close closes
// it.
func NewCSV(w io.Writer) *CSV {
	return &CSV{w: w, cw: csv.NewWriter(w)}
}

var csvHeader = []string{
	"seq", "elapsed_s", "submitted", "committed", "submit_errors",
	"committed_in_bucket", "queue_depth",
	"latency_mean_s", "latency_p50_s", "latency_p99_s", "events",
}

// WriteSnapshot implements Sink.
func (s *CSV) WriteSnapshot(snap Snapshot) error {
	if !s.started {
		if err := s.cw.Write(csvHeader); err != nil {
			return err
		}
		s.started = true
	}
	row := []string{
		strconv.Itoa(snap.Seq),
		strconv.FormatFloat(snap.Elapsed.Seconds(), 'f', 3, 64),
		strconv.FormatUint(snap.Submitted, 10),
		strconv.FormatUint(snap.Committed, 10),
		strconv.FormatUint(snap.SubmitErrors, 10),
		strconv.FormatUint(snap.CommittedInBucket, 10),
		strconv.Itoa(snap.QueueDepth),
		strconv.FormatFloat(snap.LatencyMean, 'f', 6, 64),
		strconv.FormatFloat(snap.LatencyP50, 'f', 6, 64),
		strconv.FormatFloat(snap.LatencyP99, 'f', 6, 64),
		strings.Join(snap.Events, ";"),
	}
	return s.cw.Write(row)
}

// WriteReport implements Sink (no-op: see type comment).
func (s *CSV) WriteReport(*Report) error { return nil }

// Close implements Sink.
func (s *CSV) Close() error {
	s.cw.Flush()
	if err := s.cw.Error(); err != nil {
		return err
	}
	if c, ok := s.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
