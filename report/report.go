// Package report defines the machine-readable outputs of one benchmark
// run: the final Report, the per-bucket Snapshot stream the driver's run
// handle emits while the run is live, and Sink implementations (JSONL,
// CSV) that persist both. It is deliberately free of platform types —
// resource counters arrive as a generic name→value map, so any backend
// registered with the platform registry flows through without this
// package (or the driver) knowing its engines.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Well-known counter keys. Engines expose their counters through
// metrics.CounterProvider under namespaced "engine.metric" names; these
// constants cover the keys the framework itself reads back. Backends may
// add arbitrary keys of their own.
const (
	// CounterPowHashes is the PoW engine's hash attempts (CPU proxy).
	CounterPowHashes = "pow.hashes"
	// CounterExecTimeNs is cumulative nanoseconds inside contract
	// execution (EVM or native chaincode).
	CounterExecTimeNs = "exec.time_ns"
	// CounterElections is the number of Raft leader elections started.
	CounterElections = "raft.elections"
	// CounterXShardFastpath counts single-shard transactions routed on
	// the sharded platform's fast path (2PC bypassed entirely).
	CounterXShardFastpath = "xshard.fastpath"
	// CounterXShardTxs counts cross-shard transactions coordinated
	// through two-phase commit.
	CounterXShardTxs = "xshard.txs"
	// CounterXShardCommits counts cross-shard transactions that
	// committed; with CounterXShardAborts it accounts for every
	// resolved cross-shard transaction exactly once.
	CounterXShardCommits = "xshard.commits"
	// CounterXShardAborts counts cross-shard transactions abandoned
	// after exhausting their abort-retry budget.
	CounterXShardAborts = "xshard.aborts"
	// CounterXShardRetries counts abort-retry rounds (a transaction that
	// aborts twice and then commits adds two).
	CounterXShardRetries = "xshard.retries"
	// CounterAnalyticsQueries counts analytics queries served from the
	// nodes' columnar ledger indexes.
	CounterAnalyticsQueries = "analytics.queries"
	// CounterAnalyticsQueryRows counts index rows pulled by those
	// queries after pushdown — their true scan cost.
	CounterAnalyticsQueryRows = "analytics.query_rows"
	// CounterAnalyticsZoneSkips counts whole segments skipped by zone
	// maps during range scans.
	CounterAnalyticsZoneSkips = "analytics.zone_skips"
)

// EventRecord stamps one fired schedule event: its name and the actual
// offset into the run at which it executed.
type EventRecord struct {
	Name string        `json:"name"`
	At   time.Duration `json:"at_ns"`
}

// Report carries the metrics of one driver run: the paper's throughput,
// latency, scalability inputs (vary Nodes/Clients across runs), fault-
// tolerance series and security (fork) numbers, plus the generic
// resource-counter map for the utilization figures.
type Report struct {
	Platform string        `json:"platform"`
	Workload string        `json:"workload"`
	Nodes    int           `json:"nodes"`
	Clients  int           `json:"clients"`
	Duration time.Duration `json:"duration_ns"`
	// Aborted is set when the run's context was cancelled before the
	// configured duration elapsed; the metrics cover the partial window.
	Aborted bool `json:"aborted,omitempty"`

	Submitted    uint64 `json:"submitted"`
	SubmitErrors uint64 `json:"submit_errors"`
	Committed    uint64 `json:"committed"`
	// Throughput is committed transactions per second ("number of
	// successful transactions per second").
	Throughput float64 `json:"throughput"`

	// Latency statistics in seconds ("response time per transaction").
	LatencyMean float64 `json:"latency_mean_s"`
	LatencyP50  float64 `json:"latency_p50_s"`
	LatencyP90  float64 `json:"latency_p90_s"`
	LatencyP99  float64 `json:"latency_p99_s"`
	// CDF points for the latency-distribution figure.
	LatencyCDFValues    []float64 `json:"latency_cdf_values,omitempty"`
	LatencyCDFFractions []float64 `json:"latency_cdf_fractions,omitempty"`

	// Per-bucket series: average outstanding queue length and committed
	// transactions per bucket.
	QueueSeries  []float64     `json:"queue_series,omitempty"`
	CommitSeries []float64     `json:"commit_series,omitempty"`
	Bucket       time.Duration `json:"bucket_ns"`

	// Blocks committed during the run at node 0.
	Blocks uint64 `json:"blocks"`
	// ForkTotal/ForkMain: blocks generated on any branch vs the main
	// chain (security metric; equal when there are no forks).
	ForkTotal uint64 `json:"fork_total"`
	ForkMain  uint64 `json:"fork_main"`

	// Network counters over the run.
	BytesSent   uint64 `json:"bytes_sent"`
	MsgsSent    uint64 `json:"msgs_sent"`
	MsgsDropped uint64 `json:"msgs_dropped"`

	// Counters holds the run's delta of every platform counter the
	// cluster's engines expose (metrics.CounterProvider), keyed by
	// namespaced "engine.metric" names — PoW hash attempts, execution
	// time, Raft elections, PBFT view changes, and whatever a registered
	// backend adds. Use the named accessors for the framework's own keys.
	Counters map[string]uint64 `json:"counters,omitempty"`

	// Events is the stamped timeline of scheduled fault/attack events
	// executed during the run, in firing order.
	Events []EventRecord `json:"events,omitempty"`

	// Stages maps each lifecycle stage name (submit, admit, batch,
	// propose, order, execute, state_commit, confirm) to its sampled
	// latency statistics — the layered "where does the latency go"
	// breakdown. Always carries the full stage key set; stages no
	// sampled transaction crossed report zero counts.
	Stages map[string]StageStat `json:"stages"`

	// Traces holds the most recent complete sampled lifecycle spans
	// (bounded by the tracer's ring), oldest first.
	Traces []Trace `json:"traces,omitempty"`

	// ChaosSeed is the seed of the randomized fault timeline when the
	// run was driven with chaos injection (0 otherwise). Re-running with
	// the same seed reproduces the kill/partition/link-fault schedule
	// exactly.
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
	// Invariants lists safety-invariant violations detected during and
	// after the run — committed-prefix disagreement, height regression
	// without a restart, cross-shard over-resolution, workload-level
	// conservation breaks. Empty on a clean run; any entry means the run
	// (and CI) must fail.
	Invariants []string `json:"invariants,omitempty"`
}

// StageStat is one pipeline stage's sampled latency statistics, in
// seconds, measured from the previous stamped stage. The submit stage is
// the span epoch: it reports only how many spans were opened.
type StageStat struct {
	Count uint64  `json:"count"`
	MeanS float64 `json:"mean_s"`
	P50S  float64 `json:"p50_s"`
	P99S  float64 `json:"p99_s"`
}

// TraceStamp is one stage crossing of an exported trace, as an offset
// from the span's submit stamp.
type TraceStamp struct {
	Stage    string `json:"stage"`
	OffsetNs int64  `json:"offset_ns"`
}

// Trace is one complete sampled transaction lifecycle.
type Trace struct {
	ID     string       `json:"id"`
	Stages []TraceStamp `json:"stages"`
}

// Counter returns one named platform counter (0 when absent).
func (r *Report) Counter(name string) uint64 { return r.Counters[name] }

// PowHashes reports total PoW hash attempts across the cluster (CPU
// utilization proxy; 0 on non-PoW platforms).
func (r *Report) PowHashes() uint64 { return r.Counters[CounterPowHashes] }

// ExecTime reports cumulative time spent inside contract execution
// across the cluster.
func (r *Report) ExecTime() time.Duration {
	return time.Duration(r.Counters[CounterExecTimeNs])
}

// Elections counts leader elections started across the cluster during
// the run (Raft-ordered platforms; 0 elsewhere). A stable cluster elects
// once and then only heartbeats.
func (r *Report) Elections() uint64 { return r.Counters[CounterElections] }

// AnalyticsQueries counts analytics queries served across the cluster
// during the run (0 when no workload queried the index).
func (r *Report) AnalyticsQueries() uint64 { return r.Counters[CounterAnalyticsQueries] }

// CrossShardRatio reports the fraction of routed transactions that
// touched more than one shard (0 on unsharded platforms, which expose
// neither counter).
func (r *Report) CrossShardRatio() float64 {
	x := r.Counters[CounterXShardTxs]
	total := x + r.Counters[CounterXShardFastpath]
	if total == 0 {
		return 0
	}
	return float64(x) / float64(total)
}

// BlockRate returns blocks per second over the run.
func (r *Report) BlockRate() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Blocks) / r.Duration.Seconds()
}

// NetworkMBps returns average network utilization in MB/s.
func (r *Report) NetworkMBps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.BytesSent) / r.Duration.Seconds() / 1e6
}

// String renders a compact single-run summary. Fault signals — submit
// errors, leader elections, stale forks, an aborted window — appear when
// nonzero, so a run with a crashed leader reads differently from a
// healthy one.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s nodes=%d clients=%d: %.0f tx/s, latency mean=%.3fs p99=%.3fs",
		r.Platform, r.Workload, r.Nodes, r.Clients, r.Throughput, r.LatencyMean, r.LatencyP99)
	fmt.Fprintf(&b, ", blocks=%d (%.2f/s)", r.Blocks, r.BlockRate())
	if r.SubmitErrors > 0 {
		fmt.Fprintf(&b, ", submit-errors=%d", r.SubmitErrors)
	}
	if n := r.Elections(); n > 0 {
		fmt.Fprintf(&b, ", elections=%d", n)
	}
	if r.ForkTotal > r.ForkMain {
		fmt.Fprintf(&b, ", forks=%d stale", r.ForkTotal-r.ForkMain)
	}
	if x := r.Counters[CounterXShardTxs]; x > 0 {
		fmt.Fprintf(&b, ", xshard=%.0f%% (commits=%d aborts=%d retries=%d)",
			100*r.CrossShardRatio(), r.Counters[CounterXShardCommits],
			r.Counters[CounterXShardAborts], r.Counters[CounterXShardRetries])
	}
	if r.ChaosSeed != 0 {
		fmt.Fprintf(&b, ", chaos-seed=%d", r.ChaosSeed)
	}
	if len(r.Invariants) > 0 {
		fmt.Fprintf(&b, ", INVARIANT VIOLATIONS=%d", len(r.Invariants))
	}
	if r.Aborted {
		b.WriteString(", aborted")
	}
	return b.String()
}

// CounterNames returns the report's counter keys in sorted order (stable
// rendering for logs and tests).
func (r *Report) CounterNames() []string {
	names := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
