package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestReportStringShowsFaultSignals(t *testing.T) {
	r := &Report{Platform: "quorum", Workload: "ycsb", Nodes: 4, Clients: 4,
		Duration: time.Minute, Throughput: 120, Blocks: 50,
		SubmitErrors: 7,
		Counters:     map[string]uint64{CounterElections: 3},
	}
	s := r.String()
	if !strings.Contains(s, "submit-errors=7") {
		t.Fatalf("summary hides submit errors: %q", s)
	}
	if !strings.Contains(s, "elections=3") {
		t.Fatalf("summary hides elections: %q", s)
	}

	healthy := &Report{Platform: "parity", Workload: "ycsb", Duration: time.Minute}
	hs := healthy.String()
	if strings.Contains(hs, "submit-errors") || strings.Contains(hs, "elections") {
		t.Fatalf("healthy summary shows zero-valued fault signals: %q", hs)
	}
	if s == hs {
		t.Fatal("crashed-leader run prints the same summary as a healthy one")
	}
}

func TestReportAccessors(t *testing.T) {
	r := &Report{Counters: map[string]uint64{
		CounterPowHashes:  10,
		CounterExecTimeNs: uint64(2 * time.Second),
		CounterElections:  1,
		"custom.metric":   5,
	}}
	if r.PowHashes() != 10 || r.Elections() != 1 || r.ExecTime() != 2*time.Second {
		t.Fatalf("accessor mismatch: %+v", r.Counters)
	}
	if r.Counter("custom.metric") != 5 || r.Counter("absent") != 0 {
		t.Fatal("generic Counter lookup broken")
	}
	names := r.CounterNames()
	if len(names) != 4 || names[0] != "custom.metric" {
		t.Fatalf("unsorted counter names: %v", names)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	snap := Snapshot{Seq: 0, Elapsed: 250 * time.Millisecond,
		Submitted: 10, Committed: 8, QueueDepth: 2,
		Counters: map[string]uint64{CounterElections: 1},
		Events:   []string{"crash(3)"}}
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteReport(&Report{Platform: "quorum", Committed: 8}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL lines, got %d: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("snapshot line does not parse: %v", err)
	}
	if first["type"] != "snapshot" || first["committed"] != float64(8) {
		t.Fatalf("bad snapshot record: %v", first)
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatalf("report line does not parse: %v", err)
	}
	if last["type"] != "report" || last["platform"] != "quorum" {
		t.Fatalf("bad report record: %v", last)
	}
}

func TestCSVSinkWritesHeaderAndRows(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSV(&buf)
	for i := 0; i < 2; i++ {
		if err := s.WriteSnapshot(Snapshot{Seq: i, Committed: uint64(i * 4)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteReport(&Report{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seq,elapsed_s,") {
		t.Fatalf("missing header: %q", lines[0])
	}
}
