package blockbench

import (
	"math/rand"

	"blockbench/internal/workload"
)

func init() {
	workload.MustRegister(workload.Spec{
		Name:        "donothing",
		Description: "consensus isolation micro benchmark: the contract returns immediately",
		Contracts:   []string{"donothing"},
		New: func(opts workload.Options) (any, error) {
			if err := workload.NewDecoder(opts).Finish(); err != nil {
				return nil, err
			}
			return DoNothingWorkload{}, nil
		},
	})
}

// DoNothingWorkload isolates the consensus layer: the contract accepts a
// transaction and returns immediately, so end-to-end cost is pure
// consensus overhead.
type DoNothingWorkload struct{}

// Name implements Workload.
func (DoNothingWorkload) Name() string { return "donothing" }

// Contracts implements Workload.
func (DoNothingWorkload) Contracts() []string { return []string{"donothing"} }

// Init implements Workload.
func (DoNothingWorkload) Init(c *Cluster, rng *rand.Rand) error { return nil }

// Next implements Workload.
func (DoNothingWorkload) Next(clientID int, rng *rand.Rand) Op {
	return Op{Contract: "donothing", Method: "invoke"}
}
