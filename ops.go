package blockbench

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"blockbench/internal/metrics"
	"blockbench/internal/trace"
)

// opsServer is the per-run operations endpoint: a private HTTP mux
// serving /metrics (Prometheus text format), /debug/pprof/*, /healthz
// and /traces for exactly as long as the run handle lives. It binds its
// own listener so shutdown is leak-free: close() tears the listener and
// every open connection down with the run.
type opsServer struct {
	ln  net.Listener
	srv *http.Server
}

// startOps binds addr and serves the ops mux in the background.
func startOps(addr string, r *Handle) (*opsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, r)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := exportTraces(r.tracer)
		if traces == nil {
			traces = []Trace{}
		}
		json.NewEncoder(w).Encode(traces)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	o := &opsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go o.srv.Serve(ln)
	return o, nil
}

// close shuts the listener and every open connection down immediately.
// Nil-safe, so the run finisher calls it unconditionally.
func (o *opsServer) close() {
	if o == nil {
		return
	}
	o.srv.Close()
}

// OpsAddr returns the ops server's bound listen address (useful with a
// ":0" HTTPAddr), or "" when the run serves no ops endpoint.
func (r *Handle) OpsAddr() string {
	if r.ops == nil {
		return ""
	}
	return r.ops.ln.Addr().String()
}

// writePrometheus renders the run's live metrics in Prometheus text
// exposition format (version 0.0.4), hand-rolled so the framework stays
// dependency-free: the run's own progress counters, every platform
// counter the cluster's engines expose, and one histogram series per
// traced pipeline stage.
func writePrometheus(w http.ResponseWriter, r *Handle) {
	fmt.Fprintln(w, "# HELP bb_submitted_total Operations submitted by the driver this run.")
	fmt.Fprintln(w, "# TYPE bb_submitted_total counter")
	fmt.Fprintf(w, "bb_submitted_total %d\n", r.submitted.Load())
	fmt.Fprintln(w, "# HELP bb_committed_total Transactions confirmed committed this run.")
	fmt.Fprintln(w, "# TYPE bb_committed_total counter")
	fmt.Fprintf(w, "bb_committed_total %d\n", r.committed.Load())
	fmt.Fprintln(w, "# HELP bb_submit_errors_total Rejected submissions (server busy) this run.")
	fmt.Fprintln(w, "# TYPE bb_submit_errors_total counter")
	fmt.Fprintf(w, "bb_submit_errors_total %d\n", r.submitErrors.Load())

	queue := 0
	for _, cs := range r.states {
		queue += cs.queueLen()
	}
	fmt.Fprintln(w, "# HELP bb_queue_depth Generated-but-unconfirmed operations across all clients.")
	fmt.Fprintln(w, "# TYPE bb_queue_depth gauge")
	fmt.Fprintf(w, "bb_queue_depth %d\n", queue)

	fmt.Fprintln(w, "# HELP bb_run_elapsed_seconds Wall-clock time since the measurement window opened.")
	fmt.Fprintln(w, "# TYPE bb_run_elapsed_seconds gauge")
	fmt.Fprintf(w, "bb_run_elapsed_seconds %s\n", formatFloat(time.Since(r.start).Seconds()))

	// Platform counters, one family per namespaced key, raw monotonic
	// values (Prometheus rates them; the run delta lives in the report).
	counters := r.cluster.inner.Counters()
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := "bb_" + sanitizeMetricName(k)
		kind := "counter"
		if metrics.GaugeKey(k) {
			kind = "gauge"
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		fmt.Fprintf(w, "%s %d\n", name, counters[k])
	}

	// Lifecycle tracing: sampling meta plus one histogram per stage.
	tracer := r.tracer
	fmt.Fprintln(w, "# HELP bb_trace_sampled_total Lifecycle spans opened since the run armed the tracer.")
	fmt.Fprintln(w, "# TYPE bb_trace_sampled_total counter")
	fmt.Fprintf(w, "bb_trace_sampled_total %d\n", tracer.SampledCount())
	fmt.Fprintln(w, "# HELP bb_trace_pending Live (opened, unconfirmed) lifecycle spans.")
	fmt.Fprintln(w, "# TYPE bb_trace_pending gauge")
	fmt.Fprintf(w, "bb_trace_pending %d\n", tracer.Pending())
	fmt.Fprintln(w, "# HELP bb_trace_sample_rate Configured lifecycle sampling fraction.")
	fmt.Fprintln(w, "# TYPE bb_trace_sample_rate gauge")
	fmt.Fprintf(w, "bb_trace_sample_rate %s\n", formatFloat(tracer.SampleRate()))

	fmt.Fprintln(w, "# HELP bb_stage_latency_seconds Per-stage transaction latency, measured from the previous stamped stage.")
	fmt.Fprintln(w, "# TYPE bb_stage_latency_seconds histogram")
	for s := trace.Stage(1); s < trace.NumStages; s++ {
		h := tracer.Histogram(s)
		if h == nil {
			continue
		}
		stage := s.String()
		bounds, cum := h.Buckets()
		for i, le := range bounds {
			fmt.Fprintf(w, "bb_stage_latency_seconds_bucket{stage=%q,le=%q} %d\n",
				stage, formatLe(le), cum[i])
		}
		fmt.Fprintf(w, "bb_stage_latency_seconds_sum{stage=%q} %s\n", stage, formatFloat(h.Sum()))
		fmt.Fprintf(w, "bb_stage_latency_seconds_count{stage=%q} %d\n", stage, h.Count())
	}
}

// sanitizeMetricName maps a namespaced counter key ("raft.elections")
// onto the Prometheus name alphabet [a-zA-Z0-9_].
func sanitizeMetricName(key string) string {
	var b strings.Builder
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatLe renders a histogram bucket bound the way Prometheus clients
// do: "+Inf" for the overflow bucket, shortest round-trip decimal
// otherwise.
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatFloat(v)
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}
