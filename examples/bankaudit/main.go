// Bank audit: an OLTP-plus-audit scenario on a private blockchain, the
// kind of application the paper's introduction motivates ("banking and
// insurance ... currently supported by enterprise-grade database
// systems").
//
// A Smallbank workload runs against a 4-node PBFT network; afterwards an
// auditor (1) checks that every replica reports identical balances —
// the replicated-state-machine guarantee, (2) verifies that transfers
// conserved the total balance, and (3) uses the VersionKVStore pattern
// to query an account's balance history at past block heights, which no
// plain key-value chaincode can answer.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"blockbench"
)

func main() {
	sb := &blockbench.SmallbankWorkload{Accounts: 50, InitialBalance: 1000}
	cluster, err := blockbench.NewCluster(blockbench.ClusterConfig{
		Kind:      blockbench.Hyperledger,
		Nodes:     4,
		Contracts: append(sb.Contracts(), "versionkv"),
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// Seed a versioned account before consensus starts, then trade.
	a := &blockbench.Analytics{Blocks: 100, TxPerBlock: 3, Accounts: 4}
	if err := a.Init(cluster, rand.New(rand.NewSource(1))); err != nil {
		log.Fatal(err)
	}
	cluster.Start()

	report, err := blockbench.Run(cluster, sb, blockbench.RunConfig{
		Clients: 4, Threads: 2, Rate: 64, Duration: 4 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trading day : %d transfers committed (%.1f tx/s)\n",
		report.Committed, report.Throughput)
	time.Sleep(500 * time.Millisecond) // let replicas drain

	// Audit 1: replica agreement.
	acct := func(i int) []byte {
		b := make([]byte, 8)
		b[7] = byte(i)
		return b
	}
	for i := 0; i < 50; i++ {
		ref, err := cluster.ClientOn(0, 0).Query("smallbank", "getBalance", acct(i))
		if err != nil {
			log.Fatal(err)
		}
		for srv := 1; srv < 4; srv++ {
			got, err := cluster.ClientOn(0, srv).Query("smallbank", "getBalance", acct(i))
			if err != nil {
				log.Fatal(err)
			}
			if string(got) != string(ref) {
				log.Fatalf("AUDIT FAILED: replica %d disagrees on account %d", srv, i)
			}
		}
	}
	fmt.Println("audit 1     : all 4 replicas agree on every balance")

	// Audit 2: balance history of one versioned account via the
	// VersionKVStore chaincode (single RPC, server-side scan).
	height := cluster.Height()
	_, elapsed, err := a.Q2(cluster.Client(0), a.Account(0), 1, height)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit 2     : account history over %d blocks scanned in %v (one RPC)\n",
		height, elapsed.Round(time.Millisecond))

	// Audit 3: total value moved on-chain during the preloaded history.
	total, elapsed, err := a.Q1(cluster.Client(0), 1, 101)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit 3     : %d units moved across first 100 blocks (Q1 in %v)\n",
		total, elapsed.Round(time.Millisecond))
}
