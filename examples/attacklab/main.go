// Attack lab: the paper's §3.3 security experiment as a runnable
// scenario. The cluster network is partitioned in half mid-run — the
// double-spending setup used by eclipse and BGP-hijack attacks — and the
// fork window (blocks generated off the main branch) is measured on a
// proof-of-work chain and on PBFT.
//
// Expected outcome, matching Fig 10: Ethereum forks during the partition
// (each half keeps mining its own branch; after healing one branch is
// abandoned, leaving a double-spend window), while Hyperledger produces
// no forks at all — PBFT simply halts without a quorum and resumes after
// the heal.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"blockbench"
)

func main() {
	for _, kind := range []blockbench.Platform{blockbench.Ethereum, blockbench.Hyperledger} {
		attack(kind)
	}
}

func attack(kind blockbench.Platform) {
	w := &blockbench.YCSBWorkload{Records: 200}
	cluster, err := blockbench.NewCluster(blockbench.ClusterConfig{
		Kind:      kind,
		Nodes:     8,
		Contracts: w.Contracts(),
	}, 8)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	// Drive background load while the attack plays out; the attack
	// itself is a declarative timeline the driver executes and stamps
	// into the live snapshot stream.
	run, err := blockbench.Start(context.Background(), cluster, w, blockbench.RunConfig{
		Clients: 8, Threads: 2, Rate: 32, Duration: 8 * time.Second,
		Events: []blockbench.Event{
			blockbench.Partition(2*time.Second, 4),
			blockbench.Heal(6 * time.Second),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for snap := range run.Snapshots() {
		for _, ev := range snap.Events {
			fmt.Printf("%-12s t=%-3.0fs %s\n", kind, snap.Elapsed.Seconds(), ev)
		}
	}
	if _, err := run.Wait(); err != nil {
		log.Fatalf("%s: driver: %v", kind, err)
	}

	time.Sleep(3 * time.Second)
	total, main := cluster.ForkStats()
	stale := total - main
	fmt.Printf("%-12s result: %d blocks generated, %d on the main chain, %d stale\n",
		kind, total, main, stale)
	if stale > 0 {
		fmt.Printf("%-12s         → %.1f%% of blocks were in forks: the double-spend window\n",
			kind, 100*float64(stale)/float64(total))
	} else {
		fmt.Printf("%-12s         → no forks: consensus halted instead (safety preserved)\n", kind)
	}
	fmt.Println()
}
