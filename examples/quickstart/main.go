// Quickstart: boot a 4-node Hyperledger (PBFT) cluster, run the YCSB
// key-value workload through the BLOCKBENCH driver's run handle for five
// seconds — watching the live per-bucket metric stream — and print the
// standard metrics.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"blockbench"
)

func main() {
	// Workloads are built by name from the registry; a workload declares
	// the contracts it needs and the cluster deploys them (chaincode on
	// Hyperledger, EVM bytecode elsewhere).
	workload, err := blockbench.NewWorkload("ycsb", blockbench.WorkloadOptions{"records": "500"})
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := blockbench.NewCluster(blockbench.ClusterConfig{
		Kind:      blockbench.Hyperledger,
		Nodes:     4,
		Contracts: workload.Contracts(),
	}, 4 /* clients */)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	// Start returns a handle on the live run. Snapshots() streams one
	// frame per bucket (cancel the context to abort early and still get
	// a partial report from Wait).
	run, err := blockbench.Start(context.Background(), cluster, workload, blockbench.RunConfig{
		Clients:  4,
		Threads:  2,
		Rate:     128, // tx/s per client
		Duration: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	for snap := range run.Snapshots() {
		fmt.Printf("t=%4.1fs committed=%-5d queue=%-4d p50=%.3fs\n",
			snap.Elapsed.Seconds(), snap.Committed, snap.QueueDepth, snap.LatencyP50)
	}
	report, err := run.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	fmt.Printf("throughput : %.1f tx/s\n", report.Throughput)
	fmt.Printf("latency    : mean %.3fs, p99 %.3fs\n", report.LatencyMean, report.LatencyP99)
	fmt.Printf("blocks     : %d (%.2f/s)\n", report.Blocks, report.BlockRate())

	// The cluster stays queryable after the run: read back one record.
	val, err := cluster.Client(0).Query("ycsb", "read", []byte(fmt.Sprintf("user%010d", 1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record 1   : %d bytes\n", len(val))
}
