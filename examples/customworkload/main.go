// Custom workload: how to plug a new benchmark into the framework via
// the Workload interface (the paper's IWorkloadConnector) — here an IoT
// telemetry feed in which sensors append readings under device-scoped
// keys, and a monitor occasionally reads the latest value back.
//
// The workload reuses the YCSB key-value contract, so it needs no new
// on-chain code; it demonstrates that adding a workload is just
// implementing Name/Contracts/Init/Next — and that registering it with
// blockbench.RegisterWorkload makes it buildable by name with generic
// key=val options, exactly like the shipped workloads.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"blockbench"
)

// IoTWorkload simulates sensors writing time-series readings.
type IoTWorkload struct {
	Devices int
	seq     []atomic.Uint64
}

// Name implements blockbench.Workload.
func (w *IoTWorkload) Name() string { return "iot-telemetry" }

// Contracts implements blockbench.Workload.
func (w *IoTWorkload) Contracts() []string { return []string{"ycsb"} }

// Init implements blockbench.Workload.
func (w *IoTWorkload) Init(c *blockbench.Cluster, rng *rand.Rand) error {
	w.seq = make([]atomic.Uint64, w.Devices)
	return nil
}

// Next implements blockbench.Workload: 90% sensor appends, 10% monitor
// reads of the device's latest reading.
func (w *IoTWorkload) Next(clientID int, rng *rand.Rand) blockbench.Op {
	dev := rng.Intn(w.Devices)
	latest := w.seq[dev].Load()
	if latest > 0 && rng.Float64() < 0.1 {
		return blockbench.Op{Contract: "ycsb", Method: "read",
			Args: [][]byte{deviceKey(dev, latest)}}
	}
	n := w.seq[dev].Add(1)
	reading := make([]byte, 16)
	binary.BigEndian.PutUint64(reading, uint64(time.Now().UnixNano()))
	binary.BigEndian.PutUint64(reading[8:], rng.Uint64()%4096) // the measurement
	return blockbench.Op{Contract: "ycsb", Method: "write",
		Args: [][]byte{deviceKey(dev, n), reading}}
}

func deviceKey(dev int, seq uint64) []byte {
	k := make([]byte, 12)
	binary.BigEndian.PutUint32(k, uint32(dev))
	binary.BigEndian.PutUint64(k[4:], seq)
	return k
}

func main() {
	// Plug the workload into the registry, then build it by name — the
	// same seam the blockbench CLI's -workload/-wopt flags resolve
	// through, so a registered workload needs no CLI changes.
	err := blockbench.RegisterWorkload(blockbench.WorkloadSpec{
		Name:        "iot-telemetry",
		Description: "sensors appending readings under device-scoped keys",
		Contracts:   []string{"ycsb"},
		New: func(opts blockbench.WorkloadOptions) (any, error) {
			d := blockbench.NewWorkloadDecoder(opts)
			w := &IoTWorkload{Devices: d.Int("devices", 32)}
			if err := d.Finish(); err != nil {
				return nil, err
			}
			return w, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := blockbench.NewWorkload("iot-telemetry", blockbench.WorkloadOptions{"devices": "32"})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := blockbench.NewCluster(blockbench.ClusterConfig{
		Kind:      blockbench.Parity, // low-latency PoA suits telemetry
		Nodes:     4,
		Contracts: w.Contracts(),
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	cluster.Start()

	report, err := blockbench.Run(cluster, w, blockbench.RunConfig{
		Clients: 4, Threads: 2, Rate: 16, Duration: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("ingested %d readings at %.1f/s, p99 commit latency %.3fs\n",
		report.Committed, report.Throughput, report.LatencyP99)
}
