module blockbench

go 1.22
