package blockbench

import (
	"math/rand"
	"sync"

	"blockbench/internal/types"
	"blockbench/internal/workload"
)

func init() {
	workload.MustRegister(workload.Spec{
		Name:        "smallbank",
		Description: "OLTP macro benchmark: bank accounts driven by the standard Smallbank procedure mix",
		Contracts:   []string{"smallbank"},
		New: func(opts workload.Options) (any, error) {
			d := workload.NewDecoder(opts)
			w := &SmallbankWorkload{
				Accounts:       d.Int("accounts", d.Int("records", 0)),
				InitialBalance: d.Uint64("balance", 0),
			}
			if err := d.Finish(); err != nil {
				return nil, err
			}
			return w, nil
		},
	})
}

// SmallbankWorkload is the OLTP macro benchmark: bank accounts with
// savings and checking balances and the Smallbank procedure mix.
type SmallbankWorkload struct {
	Accounts       int    // default 1000
	InitialBalance uint64 // default 10000 in each of savings/checking

	fillOnce sync.Once
}

// Name implements Workload.
func (w *SmallbankWorkload) Name() string { return "smallbank" }

// Contracts implements Workload.
func (w *SmallbankWorkload) Contracts() []string { return []string{"smallbank"} }

// lazyFill applies defaults exactly once: Next may run on several
// goroutines without Init (SkipInit), so the check-then-initialize must
// not race.
func (w *SmallbankWorkload) lazyFill() { w.fillOnce.Do(w.fill) }

func (w *SmallbankWorkload) fill() {
	if w.Accounts <= 0 {
		w.Accounts = 1000
	}
	if w.InitialBalance == 0 {
		w.InitialBalance = 10_000
	}
}

func sbAcct(i int) []byte { return types.U64Bytes(uint64(i)) }

// Init implements Workload: funds every account.
func (w *SmallbankWorkload) Init(c *Cluster, rng *rand.Rand) error {
	w.lazyFill()
	ops := make([]Op, 0, 2*w.Accounts)
	for i := 0; i < w.Accounts; i++ {
		ops = append(ops,
			Op{Contract: "smallbank", Method: "depositChecking",
				Args: [][]byte{sbAcct(i), types.U64Bytes(w.InitialBalance)}},
			Op{Contract: "smallbank", Method: "transactSavings",
				Args: [][]byte{sbAcct(i), types.U64Bytes(w.InitialBalance)}})
	}
	return c.preloadOps(ops, 400)
}

// KeyOf implements KeyedWorkload: the account argument(s) — two for
// sendPayment/amalgamate, one otherwise — which is what makes Smallbank
// the cross-shard workload of the shard-scaling comparison.
func (w *SmallbankWorkload) KeyOf(op Op) [][]byte { return OpKeys(op) }

// Next implements Workload: the standard Smallbank mix.
func (w *SmallbankWorkload) Next(clientID int, rng *rand.Rand) Op {
	w.lazyFill()
	a, b := sbAcct(rng.Intn(w.Accounts)), sbAcct(rng.Intn(w.Accounts))
	amt := types.U64Bytes(uint64(1 + rng.Intn(50)))
	switch rng.Intn(6) {
	case 0:
		return Op{Contract: "smallbank", Method: "transactSavings", Args: [][]byte{a, amt}}
	case 1:
		return Op{Contract: "smallbank", Method: "depositChecking", Args: [][]byte{a, amt}}
	case 2, 3:
		return Op{Contract: "smallbank", Method: "sendPayment", Args: [][]byte{a, b, amt}}
	case 4:
		return Op{Contract: "smallbank", Method: "writeCheck", Args: [][]byte{a, amt}}
	default:
		return Op{Contract: "smallbank", Method: "amalgamate", Args: [][]byte{a, b}}
	}
}
