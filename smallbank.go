package blockbench

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"blockbench/internal/types"
	"blockbench/internal/workload"
)

func init() {
	workload.MustRegister(workload.Spec{
		Name:        "smallbank",
		Description: "OLTP macro benchmark: bank accounts driven by the standard Smallbank procedure mix",
		Contracts:   []string{"smallbank"},
		New: func(opts workload.Options) (any, error) {
			d := workload.NewDecoder(opts)
			w := &SmallbankWorkload{
				Accounts:       d.Int("accounts", d.Int("records", 0)),
				InitialBalance: d.Uint64("balance", 0),
			}
			if err := d.Finish(); err != nil {
				return nil, err
			}
			return w, nil
		},
	})
}

// SmallbankWorkload is the OLTP macro benchmark: bank accounts with
// savings and checking balances and the Smallbank procedure mix.
type SmallbankWorkload struct {
	Accounts       int    // default 1000
	InitialBalance uint64 // default 10000 in each of savings/checking

	fillOnce sync.Once
}

// Name implements Workload.
func (w *SmallbankWorkload) Name() string { return "smallbank" }

// Contracts implements Workload.
func (w *SmallbankWorkload) Contracts() []string { return []string{"smallbank"} }

// lazyFill applies defaults exactly once: Next may run on several
// goroutines without Init (SkipInit), so the check-then-initialize must
// not race.
func (w *SmallbankWorkload) lazyFill() { w.fillOnce.Do(w.fill) }

func (w *SmallbankWorkload) fill() {
	if w.Accounts <= 0 {
		w.Accounts = 1000
	}
	if w.InitialBalance == 0 {
		w.InitialBalance = 10_000
	}
}

func sbAcct(i int) []byte { return types.U64Bytes(uint64(i)) }

// Init implements Workload: funds every account.
func (w *SmallbankWorkload) Init(c *Cluster, rng *rand.Rand) error {
	w.lazyFill()
	ops := make([]Op, 0, 2*w.Accounts)
	for i := 0; i < w.Accounts; i++ {
		ops = append(ops,
			Op{Contract: "smallbank", Method: "depositChecking",
				Args: [][]byte{sbAcct(i), types.U64Bytes(w.InitialBalance)}},
			Op{Contract: "smallbank", Method: "transactSavings",
				Args: [][]byte{sbAcct(i), types.U64Bytes(w.InitialBalance)}})
	}
	return c.preloadOps(ops, 400)
}

// KeyOf implements KeyedWorkload: the account argument(s) — two for
// sendPayment/amalgamate, one otherwise — which is what makes Smallbank
// the cross-shard workload of the shard-scaling comparison.
func (w *SmallbankWorkload) KeyOf(op Op) [][]byte { return OpKeys(op) }

// CheckInvariants implements WorkloadInvariants: after a fault-injected
// run, every live node in a shard group must report the same balance
// for every sampled account — replicas of one state machine cannot
// disagree, no matter what was killed or partitioned mid-run. (The mix
// itself mints and burns money through deposits and checks, so
// replica agreement, not global conservation, is the workload-level
// safety property.) A short retry loop absorbs tail commits that land
// while the check walks the nodes.
func (w *SmallbankWorkload) CheckInvariants(c *Cluster) []string {
	w.lazyFill()
	sample := w.Accounts
	if sample > 32 {
		sample = 32
	}
	groups := make(map[int][]int)
	for i := 0; i < c.Size(); i++ {
		if c.Down(i) {
			continue
		}
		groups[c.ShardOf(i)] = append(groups[c.ShardOf(i)], i)
	}
	var out []string
	for g, nodes := range groups {
		if len(nodes) < 2 {
			continue
		}
		for a := 0; a < sample; a++ {
			if detail, ok := w.balancesAgree(c, nodes, a); !ok {
				out = append(out, fmt.Sprintf(
					"smallbank: shard %d: live nodes disagree on account %d: %s", g, a, detail))
			}
		}
	}
	return out
}

// balancesAgree polls getBalance for one account on every listed node
// until all answers match (or the retry budget runs out, returning the
// last disagreeing set).
func (w *SmallbankWorkload) balancesAgree(c *Cluster, nodes []int, acct int) (string, bool) {
	last := "unreachable"
	for attempt := 0; attempt < 80; attempt++ {
		if attempt > 0 {
			time.Sleep(25 * time.Millisecond)
		}
		// Only compare replicas sitting at the same chain height:
		// deterministic execution of the same prefix must match, while a
		// recovering replica mid-catch-up legitimately answers from an
		// older state. A replica that never reaches its peers within the
		// budget is reported too — that is a stuck node, not a race.
		h := c.NodeHeight(nodes[0])
		same := true
		for _, i := range nodes[1:] {
			if c.NodeHeight(i) != h {
				same = false
				break
			}
		}
		if !same {
			hs := make([]uint64, len(nodes))
			for j, i := range nodes {
				hs[j] = c.NodeHeight(i)
			}
			last = fmt.Sprintf("replica heights never converged on nodes %v: %v", nodes, hs)
			continue
		}
		vals := make([][]byte, 0, len(nodes))
		for _, i := range nodes {
			out, err := c.nodeAt(i).Query("smallbank", "getBalance", [][]byte{sbAcct(acct)})
			if err != nil || len(out) == 0 {
				vals = nil
				break
			}
			vals = append(vals, out)
		}
		if vals == nil {
			continue // a node went down mid-check; retry the whole row
		}
		// Compare raw answer bytes: every replica runs the same engine,
		// so agreement must hold bytewise regardless of how that engine
		// encodes its return value (8-byte native vs 32-byte EVM word).
		agree := true
		for _, v := range vals[1:] {
			if !bytes.Equal(v, vals[0]) {
				agree = false
				break
			}
		}
		if agree {
			return "", true
		}
		hexed := make([]string, len(vals))
		for i, v := range vals {
			hexed[i] = fmt.Sprintf("%x", v)
		}
		last = fmt.Sprintf("balances %v on nodes %v", hexed, nodes)
	}
	return last, false
}

// Next implements Workload: the standard Smallbank mix.
func (w *SmallbankWorkload) Next(clientID int, rng *rand.Rand) Op {
	w.lazyFill()
	a, b := sbAcct(rng.Intn(w.Accounts)), sbAcct(rng.Intn(w.Accounts))
	amt := types.U64Bytes(uint64(1 + rng.Intn(50)))
	switch rng.Intn(6) {
	case 0:
		return Op{Contract: "smallbank", Method: "transactSavings", Args: [][]byte{a, amt}}
	case 1:
		return Op{Contract: "smallbank", Method: "depositChecking", Args: [][]byte{a, amt}}
	case 2, 3:
		return Op{Contract: "smallbank", Method: "sendPayment", Args: [][]byte{a, b, amt}}
	case 4:
		return Op{Contract: "smallbank", Method: "writeCheck", Args: [][]byte{a, amt}}
	default:
		return Op{Contract: "smallbank", Method: "amalgamate", Args: [][]byte{a, b}}
	}
}
