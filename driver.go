package blockbench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/metrics"
)

// Workload is the paper's IWorkloadConnector: it names the contracts it
// needs and produces the next operation per client.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Contracts lists contract names that must be deployed.
	Contracts() []string
	// Init pre-loads the blockchain (records, accounts, history) before
	// measurement starts.
	Init(c *Cluster, rng *rand.Rand) error
	// Next returns the next operation for the given client. It is
	// called from one goroutine per client.
	Next(clientID int, rng *rand.Rand) Op
}

// RunConfig parameterizes one driver run (the paper's user-defined
// configuration: number of clients, threads, rate, duration).
type RunConfig struct {
	// Clients is the number of concurrent client processes; client i
	// talks to server i mod N.
	Clients int
	// Threads is the number of submit threads per client.
	Threads int
	// Rate is the per-client offered load in tx/s (open loop). Zero
	// with Blocking=false means submit as fast as possible.
	Rate float64
	// Blocking switches to closed-loop operation: each thread waits for
	// its transaction to commit before sending the next one (the
	// paper's latency measurement mode).
	Blocking bool
	// Duration is the measurement window.
	Duration time.Duration
	// PollInterval is the confirmation polling period (default 10ms).
	PollInterval time.Duration
	// Bucket is the time-series resolution (default 250ms — the
	// equivalent of the paper's per-second series at 25x time scale).
	Bucket time.Duration
	// Seed makes workload choices reproducible.
	Seed int64
	// SkipInit suppresses workload preloading (reuse a warm cluster).
	SkipInit bool
}

func (cfg *RunConfig) fill() {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
}

// clientState tracks one client's outstanding transactions and local
// send queue (the paper's Fig 6/18 queue-length metric counts both).
type clientState struct {
	client *Client

	mu          sync.Mutex
	queue       []Op // generated but not yet accepted by the server
	outstanding map[Hash]time.Time
	polledTo    uint64
}

func (cs *clientState) queueLen() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.queue) + len(cs.outstanding)
}

// Run executes a workload against a started cluster and reports the
// paper's metrics.
func Run(c *Cluster, w Workload, cfg RunConfig) (*Report, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if !cfg.SkipInit {
		if err := w.Init(c, rng); err != nil {
			return nil, fmt.Errorf("blockbench: workload init: %w", err)
		}
	}

	start := time.Now()
	end := start.Add(cfg.Duration)
	var (
		committed    atomic.Uint64
		submitted    atomic.Uint64
		submitErrors atomic.Uint64
		latency      metrics.Histogram
		queueSeries  = metrics.NewTimeSeries(start, cfg.Bucket, true)
		commitSeries = metrics.NewTimeSeries(start, cfg.Bucket, false)
	)
	netBefore := c.inner.Net.Stats()
	resBefore := resourceSnapshot(c)
	startHeight := c.Height()

	states := make([]*clientState, cfg.Clients)
	for i := range states {
		states[i] = &clientState{
			client:      c.Client(i),
			outstanding: make(map[Hash]time.Time),
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	if cfg.Blocking {
		runBlocking(states, w, cfg, end, &wg, &committed, &submitted, &submitErrors, &latency)
	} else {
		runOpenLoop(states, w, cfg, end, stop, &wg, &submitted, &submitErrors)
	}

	// One poller per client matches the paper's driver: a polling thread
	// invokes getLatestBlock(h) and matches returned transaction IDs
	// against the outstanding queue.
	if !cfg.Blocking {
		for _, cs := range states {
			wg.Add(1)
			go func(cs *clientState) {
				defer wg.Done()
				tick := time.NewTicker(cfg.PollInterval)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case now := <-tick.C:
						pollOnce(cs, now, &committed, &latency, commitSeries)
						queueSeries.Sample(now, float64(cs.queueLen()))
					}
				}
			}(cs)
		}
		// Close the run at the deadline.
		time.Sleep(time.Until(end))
		close(stop)
	}
	wg.Wait()
	elapsed := time.Since(start)

	netAfter := c.inner.Net.Stats()
	resAfter := resourceSnapshot(c)
	total, mainChain := c.ForkStats()

	r := &Report{
		Platform:     string(c.Kind()),
		Workload:     w.Name(),
		Nodes:        c.Size(),
		Clients:      cfg.Clients,
		Duration:     elapsed,
		Submitted:    submitted.Load(),
		SubmitErrors: submitErrors.Load(),
		Committed:    committed.Load(),
		Throughput:   float64(committed.Load()) / cfg.Duration.Seconds(),
		LatencyMean:  latency.Mean(),
		LatencyP50:   latency.Quantile(0.50),
		LatencyP90:   latency.Quantile(0.90),
		LatencyP99:   latency.Quantile(0.99),
		QueueSeries:  queueSeries.Values(),
		CommitSeries: commitSeries.Values(),
		Bucket:       cfg.Bucket,
		Blocks:       c.Height() - startHeight,
		ForkTotal:    total,
		ForkMain:     mainChain,
		BytesSent:    netAfter.BytesSent - netBefore.BytesSent,
		MsgsSent:     netAfter.MessagesSent - netBefore.MessagesSent,
		MsgsDropped:  netAfter.MessagesDropped - netBefore.MessagesDropped,
		PowHashes:    resAfter.powHashes - resBefore.powHashes,
		ExecTime:     resAfter.execTime - resBefore.execTime,
		Elections:    resAfter.elections - resBefore.elections,
	}
	cdfV, cdfF := latency.CDF(40)
	r.LatencyCDFValues, r.LatencyCDFFractions = cdfV, cdfF
	return r, nil
}

// runOpenLoop starts generators (one per client, producing at Rate) and
// sender threads that drain each client's queue.
func runOpenLoop(states []*clientState, w Workload, cfg RunConfig, end time.Time,
	stop chan struct{}, wg *sync.WaitGroup,
	submitted, submitErrors *atomic.Uint64) {

	for i, cs := range states {
		gen := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wg.Add(1)
		go func(i int, cs *clientState, gen *rand.Rand) {
			defer wg.Done()
			if cfg.Rate <= 0 {
				// As-fast-as-possible: keep a small standing queue.
				for time.Now().Before(end) {
					cs.mu.Lock()
					n := len(cs.queue)
					cs.mu.Unlock()
					if n < cfg.Threads*4 {
						op := w.Next(i, gen)
						cs.mu.Lock()
						cs.queue = append(cs.queue, op)
						cs.mu.Unlock()
					} else {
						time.Sleep(200 * time.Microsecond)
					}
				}
				return
			}
			interval := time.Duration(float64(time.Second) / cfg.Rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for now := range tick.C {
				if now.After(end) {
					return
				}
				op := w.Next(i, gen)
				cs.mu.Lock()
				cs.queue = append(cs.queue, op)
				cs.mu.Unlock()
			}
		}(i, cs, gen)

		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(cs *clientState) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					cs.mu.Lock()
					if len(cs.queue) == 0 {
						cs.mu.Unlock()
						time.Sleep(500 * time.Microsecond)
						continue
					}
					op := cs.queue[0]
					cs.queue = cs.queue[1:]
					cs.mu.Unlock()

					id, err := cs.client.Send(op)
					if err != nil {
						// Server busy (Parity's admission cap) or down:
						// the operation stays queued client-side.
						submitErrors.Add(1)
						cs.mu.Lock()
						cs.queue = append([]Op{op}, cs.queue...)
						cs.mu.Unlock()
						time.Sleep(2 * time.Millisecond)
						continue
					}
					submitted.Add(1)
					cs.mu.Lock()
					cs.outstanding[id] = time.Now()
					cs.mu.Unlock()
				}
			}(cs)
		}
	}
}

// runBlocking implements the closed-loop latency mode: each thread
// submits one transaction and polls until it commits.
func runBlocking(states []*clientState, w Workload, cfg RunConfig, end time.Time,
	wg *sync.WaitGroup, committed, submitted, submitErrors *atomic.Uint64,
	latency *metrics.Histogram) {

	for i, cs := range states {
		for t := 0; t < cfg.Threads; t++ {
			gen := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919 + int64(t)*104729))
			wg.Add(1)
			go func(i int, cs *clientState, gen *rand.Rand) {
				defer wg.Done()
				for time.Now().Before(end) {
					op := w.Next(i, gen)
					t0 := time.Now()
					id, err := cs.client.Send(op)
					if err != nil {
						submitErrors.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					submitted.Add(1)
					for time.Now().Before(end.Add(10 * time.Second)) {
						ok, err := cs.client.Committed(id)
						if err != nil {
							break
						}
						if ok {
							latency.Observe(time.Since(t0))
							committed.Add(1)
							break
						}
						time.Sleep(cfg.PollInterval)
					}
				}
			}(i, cs, gen)
		}
	}
}

// pollOnce advances one client's confirmation polling.
func pollOnce(cs *clientState, now time.Time, committed *atomic.Uint64,
	latency *metrics.Histogram, commitSeries *metrics.TimeSeries) {

	blocks, err := cs.client.BlocksFrom(cs.polledTo)
	if err != nil {
		return
	}
	for _, b := range blocks {
		if b.Number > cs.polledTo {
			cs.polledTo = b.Number
		}
		for _, id := range b.TxIDs {
			cs.mu.Lock()
			t0, mine := cs.outstanding[id]
			if mine {
				delete(cs.outstanding, id)
			}
			cs.mu.Unlock()
			if mine {
				latency.Observe(now.Sub(t0))
				committed.Add(1)
				commitSeries.Sample(now, 1)
			}
		}
	}
}
