package blockbench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/metrics"
)

// Workload is the paper's IWorkloadConnector: it names the contracts it
// needs and produces the next operation per client.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Contracts lists contract names that must be deployed.
	Contracts() []string
	// Init pre-loads the blockchain (records, accounts, history) before
	// measurement starts.
	Init(c *Cluster, rng *rand.Rand) error
	// Next returns the next operation for the given client. Open-loop
	// runs call it from one generator goroutine per client; blocking
	// runs call it from every submit thread of the client.
	Next(clientID int, rng *rand.Rand) Op
}

// RunConfig parameterizes one driver run (the paper's user-defined
// configuration: number of clients, threads, rate, duration).
type RunConfig struct {
	// Clients is the number of concurrent client processes; client i
	// talks to server i mod N.
	Clients int
	// Threads is the number of submit threads per client.
	Threads int
	// Rate is the per-client offered load in tx/s (open loop). Zero
	// with Blocking=false means submit as fast as possible.
	Rate float64
	// Blocking switches to closed-loop operation: each thread waits for
	// its transaction to commit before sending the next one (the
	// paper's latency measurement mode).
	Blocking bool
	// Duration is the measurement window.
	Duration time.Duration
	// PollInterval is the confirmation polling period (default 10ms).
	PollInterval time.Duration
	// Bucket is the time-series resolution (default 250ms — the
	// equivalent of the paper's per-second series at 25x time scale).
	Bucket time.Duration
	// Seed makes workload choices reproducible.
	Seed int64
	// SkipInit suppresses workload preloading (reuse a warm cluster).
	SkipInit bool
}

func (cfg *RunConfig) fill() {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
}

// clientState is one client's leg of the submission pipeline:
//
//	generator -> submitCh (bounded) -> sender workers -> outstanding
//
// The generator owns any overflow beyond the channel's capacity, so the
// hot path between generator and senders is a plain channel with no
// shared lock; the mutex guards only the outstanding map, which the
// confirmation poller drains. The paper's Fig 6/18 queue-length metric
// counts every stage: overflow + channel + in-flight + outstanding.
type clientState struct {
	client *Client
	server int // server index, for grouping confirmation pollers

	submitCh chan Op
	overflow atomic.Int64 // generated ops the channel had no room for
	inflight atomic.Int64 // ops taken by a sender, not yet accepted

	mu          sync.Mutex
	outstanding map[Hash]time.Time
}

func (cs *clientState) queueLen() int {
	cs.mu.Lock()
	n := len(cs.outstanding)
	cs.mu.Unlock()
	return n + len(cs.submitCh) + int(cs.overflow.Load()) + int(cs.inflight.Load())
}

// Run executes a workload against a started cluster and reports the
// paper's metrics.
func Run(c *Cluster, w Workload, cfg RunConfig) (*Report, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if !cfg.SkipInit {
		if err := w.Init(c, rng); err != nil {
			return nil, fmt.Errorf("blockbench: workload init: %w", err)
		}
	}

	start := time.Now()
	end := start.Add(cfg.Duration)
	var (
		committed    atomic.Uint64
		submitted    atomic.Uint64
		submitErrors atomic.Uint64
		latency      metrics.Histogram
		queueSeries  = metrics.NewTimeSeries(start, cfg.Bucket, true)
		commitSeries = metrics.NewTimeSeries(start, cfg.Bucket, false)
	)
	netBefore := c.inner.Net.Stats()
	resBefore := resourceSnapshot(c)
	startHeight := c.Height()

	states := make([]*clientState, cfg.Clients)
	for i := range states {
		client := c.Client(i)
		states[i] = &clientState{
			client:      client,
			server:      client.Server(),
			submitCh:    make(chan Op, cfg.Threads*4),
			outstanding: make(map[Hash]time.Time),
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	if cfg.Blocking {
		runBlocking(states, w, cfg, end, stop, &wg, &committed, &submitted, &submitErrors, &latency)
		// Senders abort their busy-retry loops once the window closes.
		timer := time.AfterFunc(time.Until(end), func() { close(stop) })
		defer timer.Stop()
	} else {
		runOpenLoop(states, w, cfg, end, stop, &wg, &submitted, &submitErrors)
		// Confirmation polling is batched per server: every client on a
		// node shares one BlocksFrom stream instead of issuing its own
		// copy of the same RPC (the paper's getLatestBlock(h) poller).
		byNode := make(map[int][]*clientState)
		for _, cs := range states {
			byNode[cs.server] = append(byNode[cs.server], cs)
		}
		for _, group := range byNode {
			wg.Add(1)
			go func(group []*clientState) {
				defer wg.Done()
				var polledTo uint64
				tick := time.NewTicker(cfg.PollInterval)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case now := <-tick.C:
						polledTo = pollNode(group, polledTo, now, &committed, &latency, commitSeries)
						for _, cs := range group {
							queueSeries.Sample(now, float64(cs.queueLen()))
						}
					}
				}
			}(group)
		}
		// Close the run at the deadline.
		time.Sleep(time.Until(end))
		close(stop)
	}
	wg.Wait()
	elapsed := time.Since(start)

	netAfter := c.inner.Net.Stats()
	resAfter := resourceSnapshot(c)
	total, mainChain := c.ForkStats()

	r := &Report{
		Platform:     string(c.Kind()),
		Workload:     w.Name(),
		Nodes:        c.Size(),
		Clients:      cfg.Clients,
		Duration:     elapsed,
		Submitted:    submitted.Load(),
		SubmitErrors: submitErrors.Load(),
		Committed:    committed.Load(),
		Throughput:   float64(committed.Load()) / cfg.Duration.Seconds(),
		LatencyMean:  latency.Mean(),
		LatencyP50:   latency.Quantile(0.50),
		LatencyP90:   latency.Quantile(0.90),
		LatencyP99:   latency.Quantile(0.99),
		QueueSeries:  queueSeries.Values(),
		CommitSeries: commitSeries.Values(),
		Bucket:       cfg.Bucket,
		Blocks:       c.Height() - startHeight,
		ForkTotal:    total,
		ForkMain:     mainChain,
		BytesSent:    netAfter.BytesSent - netBefore.BytesSent,
		MsgsSent:     netAfter.MessagesSent - netBefore.MessagesSent,
		MsgsDropped:  netAfter.MessagesDropped - netBefore.MessagesDropped,
		PowHashes:    resAfter.powHashes - resBefore.powHashes,
		ExecTime:     resAfter.execTime - resBefore.execTime,
		Elections:    resAfter.elections - resBefore.elections,
	}
	cdfV, cdfF := latency.CDF(40)
	r.LatencyCDFValues, r.LatencyCDFFractions = cdfV, cdfF
	return r, nil
}

// submitWithRetry is the submission core shared by the open-loop sender
// workers and the blocking threads: it pushes one operation through
// Client.Send, backing off exponentially while the server reports busy,
// and gives up when stop closes.
func submitWithRetry(cl *Client, op Op, stop <-chan struct{},
	submitErrors *atomic.Uint64) (Hash, bool) {

	backoff := time.Millisecond
	for {
		id, err := cl.Send(op)
		if err == nil {
			return id, true
		}
		// Server busy (Parity's admission cap) or down: the operation
		// stays with this sender until accepted or the run ends.
		submitErrors.Add(1)
		select {
		case <-stop:
			return Hash{}, false
		case <-time.After(backoff):
		}
		if backoff < 8*time.Millisecond {
			backoff *= 2
		}
	}
}

// runOpenLoop starts the pipelines: one generator per client producing
// at Rate into the bounded submit channel, and Threads sender workers
// per client draining it.
func runOpenLoop(states []*clientState, w Workload, cfg RunConfig, end time.Time,
	stop chan struct{}, wg *sync.WaitGroup,
	submitted, submitErrors *atomic.Uint64) {

	for i, cs := range states {
		gen := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wg.Add(1)
		go func(i int, cs *clientState, gen *rand.Rand) {
			defer wg.Done()
			if cfg.Rate <= 0 {
				// As-fast-as-possible: the bounded channel is the
				// standing queue; its backpressure paces the generator.
				for time.Now().Before(end) {
					op := w.Next(i, gen)
					select {
					case cs.submitCh <- op:
					case <-stop:
						return
					}
				}
				return
			}
			// Paced generation: one operation per tick. When the
			// channel is full (offered load above capacity) ops pile up
			// in the generator-owned backlog, which is what the paper's
			// queue-length figures measure growing without bound.
			interval := time.Duration(float64(time.Second) / cfg.Rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			var backlog []Op
			for {
				select {
				case <-stop:
					return
				case now := <-tick.C:
					if now.After(end) {
						return
					}
					backlog = append(backlog, w.Next(i, gen))
					for len(backlog) > 0 {
						select {
						case cs.submitCh <- backlog[0]:
							backlog = backlog[1:]
							continue
						default:
						}
						break
					}
					if len(backlog) == 0 {
						backlog = nil // let the drained backlog be reclaimed
					}
					cs.overflow.Store(int64(len(backlog)))
				}
			}
		}(i, cs, gen)

		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(cs *clientState) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					case op := <-cs.submitCh:
						cs.inflight.Add(1)
						if id, ok := submitWithRetry(cs.client, op, stop, submitErrors); ok {
							submitted.Add(1)
							cs.mu.Lock()
							cs.outstanding[id] = time.Now()
							cs.mu.Unlock()
						}
						cs.inflight.Add(-1)
					}
				}
			}(cs)
		}
	}
}

// runBlocking implements the closed-loop latency mode: each thread
// submits one transaction through the shared submission core and polls
// until it commits.
func runBlocking(states []*clientState, w Workload, cfg RunConfig, end time.Time,
	stop chan struct{}, wg *sync.WaitGroup,
	committed, submitted, submitErrors *atomic.Uint64,
	latency *metrics.Histogram) {

	for i, cs := range states {
		for t := 0; t < cfg.Threads; t++ {
			gen := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919 + int64(t)*104729))
			wg.Add(1)
			go func(i int, cs *clientState, gen *rand.Rand) {
				defer wg.Done()
				for time.Now().Before(end) {
					op := w.Next(i, gen)
					t0 := time.Now()
					id, ok := submitWithRetry(cs.client, op, stop, submitErrors)
					if !ok {
						return
					}
					submitted.Add(1)
					for time.Now().Before(end.Add(10 * time.Second)) {
						ok, err := cs.client.Committed(id)
						if err != nil {
							break
						}
						if ok {
							latency.Observe(time.Since(t0))
							committed.Add(1)
							break
						}
						time.Sleep(cfg.PollInterval)
					}
				}
			}(i, cs, gen)
		}
	}
}

// pollNode advances one server's confirmation polling: a single
// BlocksFrom batch is matched against the outstanding set of every
// client attached to that server.
func pollNode(group []*clientState, from uint64, now time.Time,
	committed *atomic.Uint64, latency *metrics.Histogram,
	commitSeries *metrics.TimeSeries) uint64 {

	blocks, err := group[0].client.BlocksFrom(from)
	if err != nil {
		return from
	}
	for _, b := range blocks {
		if b.Number > from {
			from = b.Number
		}
		for _, cs := range group {
			var mine []time.Time
			cs.mu.Lock()
			for _, id := range b.TxIDs {
				if t0, ok := cs.outstanding[id]; ok {
					delete(cs.outstanding, id)
					mine = append(mine, t0)
				}
			}
			cs.mu.Unlock()
			for _, t0 := range mine {
				latency.Observe(now.Sub(t0))
				committed.Add(1)
				commitSeries.Sample(now, 1)
			}
		}
	}
	return from
}
