package blockbench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/invariant"
	"blockbench/internal/metrics"
	"blockbench/internal/schedule"
	"blockbench/internal/simnet"
	"blockbench/internal/trace"
	"blockbench/report"
)

// Workload is the paper's IWorkloadConnector: it names the contracts it
// needs and produces the next operation per client.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Contracts lists contract names that must be deployed.
	Contracts() []string
	// Init pre-loads the blockchain (records, accounts, history) before
	// measurement starts.
	Init(c *Cluster, rng *rand.Rand) error
	// Next returns the next operation for the given client. Open-loop
	// runs call it from one generator goroutine per client; blocking
	// runs call it from every submit thread of the client.
	Next(clientID int, rng *rand.Rand) Op
}

// RunConfig parameterizes one driver run (the paper's user-defined
// configuration: number of clients, threads, rate, duration).
type RunConfig struct {
	// Clients is the number of concurrent client processes; client i
	// talks to server i mod N.
	Clients int
	// Threads is the number of submit threads per client.
	Threads int
	// Rate is the per-client offered load in tx/s (open loop). Zero
	// with Blocking=false means submit as fast as possible.
	Rate float64
	// Blocking switches to closed-loop operation: each thread waits for
	// its transaction to commit before sending the next one (the
	// paper's latency measurement mode).
	Blocking bool
	// Duration is the measurement window.
	Duration time.Duration
	// PollInterval is the confirmation polling period (default 10ms).
	PollInterval time.Duration
	// Bucket is the time-series resolution (default 250ms — the
	// equivalent of the paper's per-second series at 25x time scale).
	// It is also the snapshot-stream frame rate.
	Bucket time.Duration
	// Seed makes workload choices reproducible.
	Seed int64
	// SkipInit suppresses workload preloading (reuse a warm cluster).
	SkipInit bool
	// Events is a declarative fault/attack timeline the driver executes
	// during the run (§3.3 injections). Fired events are stamped into
	// the snapshot stream and the final Report.
	Events []Event
	// TraceSample is the fraction of transactions given a lifecycle
	// trace (per-stage stamps through pool, consensus, execution and
	// confirmation). 0 means the default of 1%; negative disables
	// tracing entirely; 1 traces everything. Sampling is decided once
	// per transaction at submit, so the unsampled fast path costs one
	// atomic load per stamp site.
	TraceSample float64
	// HTTPAddr, when non-empty, serves a per-run ops endpoint on the
	// given listen address for the lifetime of the run: /metrics
	// (Prometheus text format), /debug/pprof/*, /healthz and /traces.
	HTTPAddr string
	// Chaos, when set, generates a seeded randomized fault timeline —
	// process kills with later recovery, asymmetric partitions, lossy
	// links — and appends it to Events. Setting it also turns on
	// CheckInvariants, so a chaos run that breaks safety fails loudly
	// with the seed that reproduces it.
	Chaos *ChaosOptions
	// CheckInvariants runs the always-on safety checks: per-node commit
	// monotonicity sampled every bucket, committed-prefix agreement and
	// cross-shard accounting at the end of the run, plus any invariant
	// the workload itself exposes. Violations land in Report.Invariants.
	// Defaults on whenever Chaos is set.
	CheckInvariants bool
}

// ChaosOptions configures randomized fault injection for one run (the
// -chaos flag). The zero value of a field picks its default; set a
// probability negative to disable that fault axis entirely.
type ChaosOptions struct {
	// Seed drives the fault timeline; 0 uses RunConfig.Seed. The seed is
	// echoed in the Report so any interleaving reproduces exactly.
	Seed int64
	// Kill is the per-tick per-node process-kill probability (default
	// 0.02; ticks are 250ms). Killed nodes recover a few ticks later,
	// and no more than a minority is ever down at once.
	Kill float64
	// Net is the per-tick probability of starting a network fault —
	// an asymmetric minority partition or a lossy/reordering link
	// profile (default 0.05). One network fault is active at a time.
	Net float64
}

// WorkloadInvariants is implemented by workloads that can audit their
// own application-level safety invariants after a run (smallbank's
// balance conservation, for example). The driver calls it once at the
// end of a checked run and merges the violations into the report.
type WorkloadInvariants interface {
	CheckInvariants(c *Cluster) []string
}

func (cfg *RunConfig) fill() {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.TraceSample == 0 {
		cfg.TraceSample = 0.01
	}
	if cfg.TraceSample < 0 {
		cfg.TraceSample = 0 // explicit off
	}
}

// clientState is one client's leg of the submission pipeline:
//
//	generator -> submitCh (bounded) -> sender workers -> outstanding
//
// The generator owns any overflow beyond the channel's capacity, so the
// hot path between generator and senders is a plain channel with no
// shared lock; the mutex guards only the outstanding map, which the
// confirmation poller drains. The paper's Fig 6/18 queue-length metric
// counts every stage: overflow + channel + in-flight + outstanding.
type clientState struct {
	client *Client
	server int // server index, for grouping confirmation pollers

	submitCh chan Op
	overflow atomic.Int64 // generated ops the channel had no room for
	inflight atomic.Int64 // ops taken by a sender, not yet accepted

	mu          sync.Mutex
	outstanding map[Hash]time.Time
}

func (cs *clientState) queueLen() int {
	cs.mu.Lock()
	n := len(cs.outstanding)
	cs.mu.Unlock()
	return n + len(cs.submitCh) + int(cs.overflow.Load()) + int(cs.inflight.Load())
}

// Handle is the run handle over one live benchmark run: the driver's
// generator, sender, poller, scheduler and snapshot goroutines behind a
// small observation surface. Snapshots streams one metric frame per
// bucket while the run executes; Wait blocks until the run ends and
// returns the final Report. Cancelling the context passed to Start
// aborts the run — every driver goroutine is torn down, the snapshot
// channel closes, and Wait returns a partial Report covering the window
// measured so far.
type Handle struct {
	cluster  *Cluster
	workload Workload
	cfg      RunConfig

	start time.Time
	end   time.Time

	states []*clientState

	submitted    atomic.Uint64
	committed    atomic.Uint64
	submitErrors atomic.Uint64
	failovers    atomic.Uint64
	latency      metrics.Histogram
	queueSeries  *metrics.TimeSeries
	commitSeries *metrics.TimeSeries

	netBefore      simnet.Stats
	countersBefore map[string]uint64
	startHeight    uint64

	tracer    *trace.Tracer
	ops       *opsServer
	inv       *invariant.Checker // nil when invariant checking is off
	chaosSeed int64

	snapshots chan Snapshot
	stop      chan struct{}
	stopOnce  sync.Once
	done      chan struct{}
	aborted   atomic.Bool

	// snapshot-emitter-only state (the final frame is emitted after the
	// emitter goroutine has exited, so no lock is needed).
	seq           int
	lastCommitted uint64

	mu      sync.Mutex
	events  []report.EventRecord // every fired event, for the Report
	pending []string             // fired since the last frame, for Snapshots

	reportOut *Report
	err       error
}

// Start launches a workload against a started cluster and returns the
// run handle. Workload preloading (unless cfg.SkipInit) happens
// synchronously before the measurement window opens; the run then ends
// when cfg.Duration elapses or ctx is cancelled, whichever comes first.
func Start(ctx context.Context, c *Cluster, w Workload, cfg RunConfig) (*Handle, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if !cfg.SkipInit {
		if err := w.Init(c, rng); err != nil {
			return nil, fmt.Errorf("blockbench: workload init: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Expand the chaos options into a concrete seeded fault timeline and
	// append it to the declarative event list — from here on chaos is
	// just more scheduled events, stamped into snapshots like any other.
	var chaosSeed int64
	if cfg.Chaos != nil {
		chaosSeed = cfg.Chaos.Seed
		if chaosSeed == 0 {
			chaosSeed = cfg.Seed
		}
		kill, net := cfg.Chaos.Kill, cfg.Chaos.Net
		if kill == 0 {
			kill = 0.02
		}
		if net == 0 {
			net = 0.05
		}
		timeline := schedule.Chaos(schedule.ChaosConfig{
			Seed:     chaosSeed,
			Duration: cfg.Duration,
			Nodes:    c.Size(),
			KillProb: max(kill, 0),
			NetProb:  max(net, 0),
		})
		cfg.Events = append(append([]Event(nil), cfg.Events...), timeline...)
		cfg.CheckInvariants = true
	}

	// Arm the tracer after preloading, so init traffic is never traced
	// and a reused cluster starts each run with fresh stage histograms.
	tracer := c.inner.Tracer()
	tracer.Reset(cfg.TraceSample)

	start := time.Now()
	r := &Handle{
		cluster:  c,
		workload: w,
		cfg:      cfg,
		start:    start,
		end:      start.Add(cfg.Duration),

		queueSeries:  metrics.NewTimeSeries(start, cfg.Bucket, true),
		commitSeries: metrics.NewTimeSeries(start, cfg.Bucket, false),

		netBefore:      c.inner.Net.Stats(),
		countersBefore: c.inner.Counters(),
		startHeight:    c.Height(),
		tracer:         tracer,
		chaosSeed:      chaosSeed,

		// Sized for every bucket frame plus event-bearing frames and the
		// final partial frame, so a consumer that drains keeps everything
		// even if it lags a little; a consumer that never reads just
		// loses the overflow (emission never blocks the run).
		snapshots: make(chan Snapshot, int(cfg.Duration/cfg.Bucket)+len(cfg.Events)+16),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if cfg.CheckInvariants {
		r.inv = invariant.New()
	}

	r.states = make([]*clientState, cfg.Clients)
	for i := range r.states {
		client := c.Client(i)
		r.states[i] = &clientState{
			client:      client,
			server:      client.Server(),
			submitCh:    make(chan Op, cfg.Threads*4),
			outstanding: make(map[Hash]time.Time),
		}
	}

	if cfg.HTTPAddr != "" {
		ops, err := startOps(cfg.HTTPAddr, r)
		if err != nil {
			return nil, fmt.Errorf("blockbench: ops server: %w", err)
		}
		r.ops = ops
	}

	var workers sync.WaitGroup
	if cfg.Blocking {
		r.runBlocking(&workers)
	} else {
		r.runOpenLoop(&workers)
		r.runPollers(&workers)
	}
	if len(cfg.Events) > 0 {
		workers.Add(1)
		go func() {
			defer workers.Done()
			schedule.Run(c, start, cfg.Events, cfg.PollInterval, r.stop, r.recordEvent)
		}()
	}
	workers.Add(1)
	go func() {
		defer workers.Done()
		r.snapshotLoop()
	}()

	// Deadline / cancellation controller.
	go func() {
		timer := time.NewTimer(time.Until(r.end))
		defer timer.Stop()
		select {
		case <-ctx.Done():
			r.aborted.Store(true)
			r.halt()
		case <-timer.C:
			r.halt()
		case <-r.stop:
		}
	}()

	// Finisher: wait out the teardown, emit the final partial frame,
	// build the report, release waiters.
	go func() {
		<-r.stop
		workers.Wait()
		r.emitSnapshot(time.Now())
		r.finish()
		r.ops.close() // nil-safe; endpoints serve until the report exists
		close(r.snapshots)
		close(r.done)
	}()
	return r, nil
}

// Run executes a workload against a started cluster and reports the
// paper's metrics — the original blocking API, now a thin wrapper over
// the run handle: it drains the snapshot stream and waits the run out.
func Run(c *Cluster, w Workload, cfg RunConfig) (*Report, error) {
	run, err := Start(context.Background(), c, w, cfg)
	if err != nil {
		return nil, err
	}
	for range run.Snapshots() {
	}
	return run.Wait()
}

// halt closes the stop channel exactly once, beginning teardown.
func (r *Handle) halt() { r.stopOnce.Do(func() { close(r.stop) }) }

// Snapshots returns the live metric stream: one frame per bucket (plus a
// final partial frame), closed when the run ends. The driver never
// blocks on this channel; a consumer that stops reading only loses
// frames beyond the channel's buffer.
func (r *Handle) Snapshots() <-chan Snapshot { return r.snapshots }

// Wait blocks until the run has ended — duration elapsed or context
// cancelled — and every driver goroutine has been torn down, then
// returns the final Report. After a cancelled context the Report is
// partial (Report.Aborted is set) and the error is still nil: an abort
// is a legitimate way to end a run early.
func (r *Handle) Wait() (*Report, error) {
	<-r.done
	return r.reportOut, r.err
}

// recordEvent stamps one fired schedule event for both the snapshot
// stream and the final report.
func (r *Handle) recordEvent(rec schedule.Record) {
	r.mu.Lock()
	r.events = append(r.events, report.EventRecord{Name: rec.Name, At: rec.At})
	r.pending = append(r.pending, rec.Name)
	r.mu.Unlock()
}

// snapshotLoop emits one frame per bucket until teardown.
func (r *Handle) snapshotLoop() {
	tick := time.NewTicker(r.cfg.Bucket)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-tick.C:
			r.emitSnapshot(now)
		}
	}
}

// emitSnapshot assembles and (non-blockingly) publishes one frame.
func (r *Handle) emitSnapshot(now time.Time) {
	if r.inv != nil {
		// Per-frame safety sampling: commit indexes must stay monotone on
		// every live node that hasn't restarted since the last frame.
		r.inv.ObserveHeights(r.cluster.inner)
	}
	queue := 0
	for _, cs := range r.states {
		queue += cs.queueLen()
	}
	r.mu.Lock()
	events := r.pending
	r.pending = nil
	r.mu.Unlock()

	committed := r.committed.Load()
	snap := Snapshot{
		Seq:               r.seq,
		Elapsed:           now.Sub(r.start),
		Submitted:         r.submitted.Load(),
		Committed:         committed,
		SubmitErrors:      r.submitErrors.Load(),
		CommittedInBucket: committed - r.lastCommitted,
		QueueDepth:        queue,
		LatencyMean:       r.latency.Mean(),
		LatencyP50:        r.latency.Quantile(0.50),
		LatencyP99:        r.latency.Quantile(0.99),
		Counters:          counterDelta(r.cluster.inner.Counters(), r.countersBefore),
		Events:            events,
		Stages:            stageStats(r.tracer),
	}
	snap.Counters["driver.failovers"] = r.failovers.Load()
	r.seq++
	r.lastCommitted = committed
	select {
	case r.snapshots <- snap:
	default: // consumer not draining; drop rather than stall the run
	}
}

// finish computes the final Report after every worker goroutine exited.
func (r *Handle) finish() {
	elapsed := time.Since(r.start)
	c := r.cluster
	netAfter := c.inner.Net.Stats()
	total, mainChain := c.ForkStats()
	aborted := r.aborted.Load()

	// Throughput is normalized over the configured window; an aborted
	// run is normalized over the window it actually measured.
	window := r.cfg.Duration
	if aborted && elapsed < window {
		window = elapsed
	}
	committed := r.committed.Load()

	r.mu.Lock()
	events := append([]report.EventRecord(nil), r.events...)
	r.mu.Unlock()

	rep := &Report{
		Platform:     string(c.Kind()),
		Workload:     r.workload.Name(),
		Nodes:        c.Size(),
		Clients:      r.cfg.Clients,
		Duration:     elapsed,
		Aborted:      aborted,
		Submitted:    r.submitted.Load(),
		SubmitErrors: r.submitErrors.Load(),
		Committed:    committed,
		Throughput:   float64(committed) / window.Seconds(),
		LatencyMean:  r.latency.Mean(),
		LatencyP50:   r.latency.Quantile(0.50),
		LatencyP90:   r.latency.Quantile(0.90),
		LatencyP99:   r.latency.Quantile(0.99),
		QueueSeries:  r.queueSeries.Values(),
		CommitSeries: r.commitSeries.Values(),
		Bucket:       r.cfg.Bucket,
		Blocks:       c.Height() - r.startHeight,
		ForkTotal:    total,
		ForkMain:     mainChain,
		BytesSent:    netAfter.BytesSent - r.netBefore.BytesSent,
		MsgsSent:     netAfter.MessagesSent - r.netBefore.MessagesSent,
		MsgsDropped:  netAfter.MessagesDropped - r.netBefore.MessagesDropped,
		Counters:     counterDelta(c.inner.Counters(), r.countersBefore),
		Events:       events,
		Stages:       stageStats(r.tracer),
		Traces:       exportTraces(r.tracer),
	}
	rep.Counters["driver.failovers"] = r.failovers.Load()

	if r.inv != nil {
		inner := c.inner
		r.inv.ObserveHeights(inner)
		// Prefix agreement stops short of the confirmation depth, plus a
		// reorg margin on forking chains: PoW nodes legitimately disagree
		// near the tip while a reorg is in flight.
		depth := inner.ConfirmationDepth()
		if inner.SupportsForks() {
			depth += 4
		}
		r.inv.CheckAgreement(inner, depth)
		r.inv.CheckXShard(rep.Counters)
		if wi, ok := r.workload.(WorkloadInvariants); ok {
			for _, v := range wi.CheckInvariants(c) {
				r.inv.Add(v)
			}
		}
		rep.Invariants = r.inv.Violations()
		rep.ChaosSeed = r.chaosSeed
	}

	rep.LatencyCDFValues, rep.LatencyCDFFractions = r.latency.CDF(40)
	r.reportOut = rep
}

// stageStats converts the tracer's per-stage summaries into the report
// shape. The map always carries the full stage key set, so every frame
// and the final report expose identical keys regardless of traffic.
func stageStats(t *trace.Tracer) map[string]report.StageStat {
	sums := t.Summaries()
	out := make(map[string]report.StageStat, len(sums))
	for _, s := range sums {
		out[s.Stage] = report.StageStat{
			Count: s.Count, MeanS: s.Mean, P50S: s.P50, P99S: s.P99,
		}
	}
	return out
}

// exportTraces copies the tracer's retained complete spans into the
// report shape, oldest first.
func exportTraces(t *trace.Tracer) []report.Trace {
	recent := t.Recent()
	if len(recent) == 0 {
		return nil
	}
	out := make([]report.Trace, len(recent))
	for i, tr := range recent {
		stamps := make([]report.TraceStamp, len(tr.Points))
		for j, p := range tr.Points {
			stamps[j] = report.TraceStamp{Stage: p.Stage, OffsetNs: p.OffsetNs}
		}
		out[i] = report.Trace{ID: tr.ID, Stages: stamps}
	}
	return out
}

// counterDelta returns after-before per key, keeping zero-valued keys so
// consumers can see which counters a platform exposes at all. Gauge
// keys (metrics.GaugeKey: configuration levels like pool sizes) pass
// through undifferenced — their delta over a run is always zero, which
// would hide the configured value from every frame.
func counterDelta(after, before map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(after))
	for k, v := range after {
		if metrics.GaugeKey(k) {
			out[k] = v
		} else if b := before[k]; v >= b {
			out[k] = v - b
		} else {
			out[k] = 0
		}
	}
	return out
}

// submitWithRetry is the submission core shared by the open-loop sender
// workers and the blocking threads: it pushes one operation through
// Client.Send, backing off exponentially while the server reports busy,
// and gives up when stop closes. After two consecutive failures it
// fails the client over to the next server not currently
// process-killed — a crashed server rejects every RPC instantly, so
// without failover its submit threads would spin until the node
// recovers. Rotations are counted as driver.failovers.
func (r *Handle) submitWithRetry(cl *Client, op Op) (Hash, bool) {
	backoff := time.Millisecond
	errs := 0
	for {
		id, err := cl.Send(op)
		if err == nil {
			return id, true
		}
		// Server busy (Parity's admission cap) or down: the operation
		// stays with this sender until accepted or the run ends.
		r.submitErrors.Add(1)
		if errs++; errs >= 2 && r.failoverClient(cl) {
			errs = 0
		}
		// The jitter keeps a client's failed-over sender threads from
		// re-converging on the next server in lockstep.
		select {
		case <-r.stop:
			return Hash{}, false
		case <-time.After(backoff + time.Duration(rand.Int63n(int64(backoff)))):
		}
		if backoff < 8*time.Millisecond {
			backoff *= 2
		}
	}
}

// failoverClient rotates the client to the next server that is not
// process-killed, reporting whether it moved. Muted or partitioned
// servers look up but keep erroring, so the rotation simply fires again
// two failures later and walks past them.
func (r *Handle) failoverClient(cl *Client) bool {
	size := r.cluster.Size()
	cur := cl.Server()
	for k := 1; k < size; k++ {
		next := (cur + k) % size
		if r.cluster.Down(next) {
			continue
		}
		cl.Failover(next)
		r.failovers.Add(1)
		return true
	}
	return false
}

// runOpenLoop starts the pipelines: one generator per client producing
// at Rate into the bounded submit channel, and Threads sender workers
// per client draining it.
func (r *Handle) runOpenLoop(wg *sync.WaitGroup) {
	cfg, w, end, stop := r.cfg, r.workload, r.end, r.stop
	for i, cs := range r.states {
		gen := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wg.Add(1)
		go func(i int, cs *clientState, gen *rand.Rand) {
			defer wg.Done()
			if cfg.Rate <= 0 {
				// As-fast-as-possible: the bounded channel is the
				// standing queue; its backpressure paces the generator.
				for time.Now().Before(end) {
					select {
					case <-stop: // aborted mid-window
						return
					default:
					}
					op := w.Next(i, gen)
					select {
					case cs.submitCh <- op:
					case <-stop:
						return
					}
				}
				return
			}
			// Paced generation: one operation per tick. When the
			// channel is full (offered load above capacity) ops pile up
			// in the generator-owned backlog, which is what the paper's
			// queue-length figures measure growing without bound.
			interval := time.Duration(float64(time.Second) / cfg.Rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			var backlog []Op
			for {
				select {
				case <-stop:
					return
				case now := <-tick.C:
					if now.After(end) {
						return
					}
					backlog = append(backlog, w.Next(i, gen))
					for len(backlog) > 0 {
						select {
						case cs.submitCh <- backlog[0]:
							backlog = backlog[1:]
							continue
						default:
						}
						break
					}
					if len(backlog) == 0 {
						backlog = nil // let the drained backlog be reclaimed
					}
					cs.overflow.Store(int64(len(backlog)))
				}
			}
		}(i, cs, gen)

		for t := 0; t < cfg.Threads; t++ {
			wg.Add(1)
			go func(cs *clientState) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					case op := <-cs.submitCh:
						cs.inflight.Add(1)
						if id, ok := r.submitWithRetry(cs.client, op); ok {
							r.submitted.Add(1)
							cs.mu.Lock()
							cs.outstanding[id] = time.Now()
							cs.mu.Unlock()
						}
						cs.inflight.Add(-1)
					}
				}
			}(cs)
		}
	}
}

// runPollers starts the confirmation pollers, batched per server: every
// client on a node shares one BlocksFrom stream instead of issuing its
// own copy of the same RPC (the paper's getLatestBlock(h) poller).
func (r *Handle) runPollers(wg *sync.WaitGroup) {
	byNode := make(map[int][]*clientState)
	for _, cs := range r.states {
		byNode[cs.server] = append(byNode[cs.server], cs)
	}
	for _, group := range byNode {
		wg.Add(1)
		go func(group []*clientState) {
			defer wg.Done()
			var polledTo uint64
			tick := time.NewTicker(r.cfg.PollInterval)
			defer tick.Stop()
			for {
				select {
				case <-r.stop:
					return
				case now := <-tick.C:
					polledTo = pollNode(group, polledTo, now, &r.committed, &r.latency, r.commitSeries, r.tracer)
					for _, cs := range group {
						r.queueSeries.Sample(now, float64(cs.queueLen()))
					}
				}
			}
		}(group)
	}
}

// runBlocking implements the closed-loop latency mode: each thread
// submits one transaction through the shared submission core and polls
// until it commits.
func (r *Handle) runBlocking(wg *sync.WaitGroup) {
	cfg, w, end, stop := r.cfg, r.workload, r.end, r.stop
	for i, cs := range r.states {
		for t := 0; t < cfg.Threads; t++ {
			gen := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919 + int64(t)*104729))
			wg.Add(1)
			go func(i int, cs *clientState, gen *rand.Rand) {
				defer wg.Done()
				for time.Now().Before(end) {
					select {
					case <-stop: // aborted mid-window
						return
					default:
					}
					op := w.Next(i, gen)
					t0 := time.Now()
					id, ok := r.submitWithRetry(cs.client, op)
					if !ok {
						return
					}
					r.submitted.Add(1)
					// An in-flight transaction is polled up to 10s past
					// the window's natural end (slow platforms commit the
					// tail after the deadline, and its latency sample is
					// part of the distribution); only an abort cuts the
					// wait short.
					grace := end.Add(10 * time.Second)
					for time.Now().Before(grace) {
						ok, err := cs.client.Committed(id)
						if err != nil {
							break
						}
						if ok {
							r.latency.Observe(time.Since(t0))
							r.committed.Add(1)
							r.commitSeries.Sample(time.Now(), 1)
							r.tracer.Stamp(id, trace.StageConfirm)
							break
						}
						select {
						case <-stop:
							if r.aborted.Load() {
								return
							}
							// Natural end: stop stays closed, so sleep
							// plainly for the rest of the grace period.
							time.Sleep(cfg.PollInterval)
						case <-time.After(cfg.PollInterval):
						}
					}
				}
			}(i, cs, gen)
		}
	}
}

// pollNode advances one server's confirmation polling: a single
// BlocksFrom batch is matched against the outstanding set of every
// client attached to that server.
func pollNode(group []*clientState, from uint64, now time.Time,
	committed *atomic.Uint64, latency *metrics.Histogram,
	commitSeries *metrics.TimeSeries, tracer *trace.Tracer) uint64 {

	blocks, err := group[0].client.BlocksFrom(from)
	if err != nil {
		return from
	}
	for _, b := range blocks {
		if b.Number > from {
			from = b.Number
		}
		for _, cs := range group {
			var mine []time.Time
			var confirmed []Hash
			cs.mu.Lock()
			for _, id := range b.TxIDs {
				if t0, ok := cs.outstanding[id]; ok {
					delete(cs.outstanding, id)
					mine = append(mine, t0)
					confirmed = append(confirmed, id)
				}
			}
			cs.mu.Unlock()
			for i, t0 := range mine {
				latency.Observe(now.Sub(t0))
				committed.Add(1)
				commitSeries.Sample(now, 1)
				tracer.Stamp(confirmed[i], trace.StageConfirm)
			}
		}
	}
	return from
}
