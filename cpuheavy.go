package blockbench

import (
	"math/rand"

	"blockbench/internal/types"
	"blockbench/internal/workload"
)

func init() {
	workload.MustRegister(workload.Spec{
		Name:        "cpuheavy",
		Description: "execution-layer micro benchmark: each transaction quicksorts an N-element array",
		Contracts:   []string{"cpuheavy"},
		New: func(opts workload.Options) (any, error) {
			d := workload.NewDecoder(opts)
			w := &CPUHeavyWorkload{N: d.Uint64("n", 10_000)}
			if err := d.Finish(); err != nil {
				return nil, err
			}
			return w, nil
		},
	})
}

// CPUHeavyWorkload stresses the execution layer: each transaction
// initializes an N-element descending array and quicksorts it.
type CPUHeavyWorkload struct{ N uint64 }

// Name implements Workload.
func (w *CPUHeavyWorkload) Name() string { return "cpuheavy" }

// Contracts implements Workload.
func (w *CPUHeavyWorkload) Contracts() []string { return []string{"cpuheavy"} }

// Init implements Workload.
func (w *CPUHeavyWorkload) Init(c *Cluster, rng *rand.Rand) error { return nil }

// Next implements Workload.
func (w *CPUHeavyWorkload) Next(clientID int, rng *rand.Rand) Op {
	n := w.N
	if n == 0 {
		n = 10_000
	}
	return Op{Contract: "cpuheavy", Method: "sort",
		Args: [][]byte{types.U64Bytes(n)}, GasLimit: 1 << 50}
}
