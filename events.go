package blockbench

import (
	"context"
	"time"

	"blockbench/internal/schedule"
	"blockbench/report"
)

// Event is one entry of a declarative fault/attack timeline (§3.3 of the
// paper): crash, recover, partition, heal or delay injection, gated on a
// time offset into the run and/or an observed-state trigger. Attach a
// timeline to RunConfig.Events and the driver executes it, stamping each
// firing into the snapshot stream and the final Report — no hand-rolled
// sleep-and-inject goroutines.
//
// Events run in order: an event arms only after every earlier one fired,
// so At offsets and triggers describe a sequential timeline.
type Event = schedule.Event

// EventTrigger gates an event on observed cluster state instead of (or
// in addition to) wall-clock time; see WhenHeightAtLeast and
// WhenGrowthAtLeast.
type EventTrigger = schedule.Trigger

// EventRecord is the stamped record of one fired event: its name and the
// actual offset into the run at which it executed.
type EventRecord = report.EventRecord

// CrashNode schedules a process kill of node i at offset at into the
// run: consensus state, pool and uncommitted ledger tail are lost; only
// the persisted store survives.
func CrashNode(at time.Duration, node int) Event {
	return Event{At: at, Act: schedule.Crash(node)}
}

// RecoverNode schedules the restart of a killed node from its persisted
// store.
func RecoverNode(at time.Duration, node int) Event {
	return Event{At: at, Act: schedule.Recover(node)}
}

// MuteNode schedules a network-only fail-stop of node i (the paper's
// original crash failure mode — the process keeps its state).
func MuteNode(at time.Duration, node int) Event {
	return Event{At: at, Act: schedule.Mute(node)}
}

// UnmuteNode schedules the reconnection of a muted node.
func UnmuteNode(at time.Duration, node int) Event {
	return Event{At: at, Act: schedule.Unmute(node)}
}

// PartitionGroups schedules an arbitrary (possibly asymmetric)
// multi-way partition; nodes not listed in any group form an implicit
// group of their own.
func PartitionGroups(at time.Duration, groups [][]int) Event {
	return Event{At: at, Act: schedule.PartitionGroups(groups)}
}

// LinkChaos schedules probabilistic drop/duplicate/reorder faults on
// messages sent by the given nodes (all nodes when none are named);
// zero probabilities clear the profile.
func LinkChaos(at time.Duration, drop, dup, reorder float64, nodes ...int) Event {
	return Event{At: at, Act: schedule.LinkFaults(drop, dup, reorder, nodes...)}
}

// Partition schedules a network split into [0,k) and [k,N) — the
// double-spending / eclipse attack setup.
func Partition(at time.Duration, k int) Event {
	return Event{At: at, Act: schedule.Partition(k)}
}

// Heal schedules the removal of any partition.
func Heal(at time.Duration) Event {
	return Event{At: at, Act: schedule.Heal()}
}

// SetDelay schedules extra message delay d at the given nodes.
func SetDelay(at time.Duration, d time.Duration, nodes ...int) Event {
	return Event{At: at, Act: schedule.SetDelay(d, nodes...)}
}

// WhenHeightAtLeast gates an event until every listed node (all nodes
// when none are listed) reaches the absolute chain height target.
func WhenHeightAtLeast(target uint64, nodes ...int) EventTrigger {
	return schedule.HeightAtLeast(target, nodes...)
}

// WhenGrowthAtLeast gates an event until every listed node has grown
// delta blocks past the highest height observed in the cluster when the
// event armed — deterministic phase changes on chains whose growth rate
// varies with the host (PoW mining).
func WhenGrowthAtLeast(delta uint64, nodes ...int) EventTrigger {
	return schedule.GrowthAtLeast(delta, nodes...)
}

// ExecuteEvents runs an event timeline to completion against the cluster
// outside of a driver run (fork and attack scenarios that measure chain
// state rather than throughput). It blocks until every event has fired
// or ctx is done, and returns the records of the events that fired.
func (c *Cluster) ExecuteEvents(ctx context.Context, events []Event) []EventRecord {
	recs := schedule.Run(c, time.Now(), events, 5*time.Millisecond, ctx.Done(), nil)
	out := make([]EventRecord, len(recs))
	for i, rec := range recs {
		out[i] = EventRecord{Name: rec.Name, At: rec.At}
	}
	return out
}
