package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"blockbench"
	"blockbench/internal/hstore"
	"blockbench/internal/types"
)

// Fig14HStore reproduces Fig 14 (Appendix B): the three blockchains
// versus the H-Store-style partitioned in-memory database on YCSB and
// Smallbank. H-Store pays nothing for consensus; its only coordination
// cost is 2PC on multi-partition transactions, which is why Smallbank
// drops several-fold relative to YCSB while the blockchains barely move.
func Fig14HStore(s Scale) (*Result, error) {
	res := &Result{ID: "fig14", Title: "blockchains vs H-Store"}

	for _, wname := range []string{"ycsb", "smallbank"} {
		tput, err := runHStore(wname, s.Duration/2)
		if err != nil {
			return nil, err
		}
		res.addf("%-12s %-10s -> %9.0f tx/s", "h-store", wname, tput)
	}
	for _, kind := range platforms() {
		for _, wname := range []string{"ycsb", "smallbank"} {
			w := macroWorkload(wname, s)
			r, err := measure(kind, 8, 8, w, blockbench.RunConfig{
				Threads: 4, Rate: 512, Duration: s.Duration,
			}, nil)
			if err != nil {
				return nil, err
			}
			res.addf("%-12s %-10s -> %9.1f tx/s", kind, wname, r.Throughput)
		}
	}
	return res, nil
}

// runHStore drives the baseline with 8 client goroutines for d and
// returns transactions per second.
func runHStore(workload string, d time.Duration) (float64, error) {
	s := hstore.New(8)
	defer s.Close()

	// Preload.
	const records = 1000
	for i := 0; i < records; i++ {
		k := fmt.Sprintf("user%010d", i)
		if err := s.Exec([]string{k}, func(a hstore.Access) {
			a.Put(k, make([]byte, 100))
		}); err != nil {
			return 0, err
		}
	}
	var (
		wg    sync.WaitGroup
		total sync.Map
	)
	end := time.Now().Add(d)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			var n uint64
			for time.Now().Before(end) {
				if workload == "ycsb" {
					k := fmt.Sprintf("user%010d", rng.Intn(records))
					if rng.Intn(2) == 0 {
						s.Exec([]string{k}, func(a hstore.Access) { a.Get(k) })
					} else {
						s.Exec([]string{k}, func(a hstore.Access) { a.Put(k, make([]byte, 100)) })
					}
				} else {
					// Smallbank sendPayment: two accounts, usually two
					// partitions -> blocking 2PC.
					k1 := fmt.Sprintf("user%010d", rng.Intn(records))
					k2 := fmt.Sprintf("user%010d", rng.Intn(records))
					keys := []string{k1}
					if k2 != k1 {
						keys = append(keys, k2)
					}
					s.Exec(keys, func(a hstore.Access) {
						v1, _ := a.Get(k1)
						a.Put(k1, v1)
						if k2 != k1 {
							v2, _ := a.Get(k2)
							a.Put(k2, v2)
						}
					})
				}
				n++
			}
			total.Store(c, n)
		}(c)
	}
	wg.Wait()
	var sum uint64
	total.Range(func(_, v any) bool { sum += v.(uint64); return true })
	return float64(sum) / d.Seconds(), nil
}

var _ = types.U64Bytes // keep types linked for future extensions
