package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"blockbench"
	"blockbench/internal/consensus/pow"
)

func init() {
	register("fig9", Fig9CrashFault)
	register("fig10", Fig10PartitionAttack)
	register("fig16", Fig16Utilization)
}

// Fig9CrashFault reproduces Fig 9: 4 servers are killed mid-run at 12
// and 16 servers. Ethereum and Parity shrug; Hyperledger with 12 servers
// loses its quorum (f=3 tolerates at most 3 failures) and stops
// committing, while 16 servers (f=5) recover at a lower rate.
//
// The kills are real process kills over a persistent (LSM) store where
// the preset supports one: the node's in-memory state is torn down with
// a genuinely torn WAL tail, and the recovery at 3/4 of the run rebuilds
// each node from its own disk (WAL replay + block journal + consensus
// hard state) before it rejoins — so the tail of the commit series also
// shows the paper's systems climbing back after the operators restart
// the dead servers.
func Fig9CrashFault(s Scale) (*Result, error) {
	res := &Result{ID: "fig9", Title: "committed tx over time, 4 servers killed mid-run, recovered at 3/4"}
	sizes := scaleSweep(s, []int{12, 16}, []int{8})
	for _, kind := range platforms() {
		for _, n := range sizes {
			w := macroWorkload("ycsb", s)
			// Kill 4 nodes at the halfway point (the paper's 250th
			// second of a 400 s run) and restart them at 3/4, as a
			// declarative timeline the driver executes and stamps into
			// the series.
			var events []blockbench.Event
			for i := n - 4; i < n; i++ {
				events = append(events,
					blockbench.CrashNode(s.Duration/2, i),
					blockbench.RecoverNode(3*s.Duration/4, i))
			}
			r, err := measure(kind, n, 8, w, blockbench.RunConfig{
				Clients: 8, Threads: 4, Rate: 64, Duration: s.Duration,
				Events:          events,
				CheckInvariants: true,
			}, func(cfg *blockbench.ClusterConfig) {
				// Durable per-node stores where the preset has them
				// (hyperledger keeps its fixed default and recovers via
				// chain sync from its peers instead).
				if kind != blockbench.Hyperledger {
					cfg.StoreBackend = "lsm"
				}
			})
			if err != nil {
				return nil, err
			}
			row := fmtSeries(r.CommitSeries, 2)
			if len(r.Invariants) > 0 {
				row += fmt.Sprintf("  INVARIANT VIOLATIONS=%d", len(r.Invariants))
			}
			res.addf("%-12s n=%2d commits/bucket: %s", kind, n, row)
		}
	}
	return res, nil
}

// Fig10PartitionAttack reproduces Fig 10: the network is split in half
// for part of the run, simulating an eclipse/BGP-style attack. Ethereum
// and Parity fork (up to ~30% of blocks end up off the main branch, the
// double-spending window); Hyperledger cannot fork but takes longer to
// recover after the partition heals.
func Fig10PartitionAttack(s Scale) (*Result, error) {
	res := &Result{ID: "fig10", Title: "partition attack: total vs main-chain blocks"}
	for _, kind := range platforms() {
		w := macroWorkload("ycsb", s)
		c, err := newCluster(kind, 8, 8, w, nil)
		if err != nil {
			return nil, err
		}
		if err := w.Init(c, rand.New(rand.NewSource(7))); err != nil {
			c.Stop()
			return nil, err
		}
		c.Start()

		// Partition at 1/4 of the run, heal at 3/4 (paper: attack from
		// t=100 s lasting 150 s of a 400 s run) — scheduled, not
		// hand-rolled, so the firings land in the report's timeline and
		// the recorded series.
		r, err := drive(c, w, blockbench.RunConfig{
			Clients: 8, Threads: 2, Rate: 32, Duration: s.Duration,
			Events: []blockbench.Event{
				blockbench.Partition(s.Duration/4, 4),
				blockbench.Heal(3 * s.Duration / 4),
			},
		})
		if err != nil {
			c.Stop()
			return nil, err
		}
		// Give healing a moment, then read the security metric.
		time.Sleep(time.Second)
		total, main := c.ForkStats()
		c.Stop()
		stale := uint64(0)
		if total > main {
			stale = total - main
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(stale) / float64(total)
		}
		res.addf("%-12s total=%4d main=%4d stale=%3d (%.1f%% of blocks in forks), committed=%d",
			kind, total, main, stale, pct, r.Committed)
	}
	return res, nil
}

// Fig16Utilization reproduces Fig 16: CPU and network profiles under
// YCSB at 8x8. Ethereum is CPU-bound (mining), Hyperledger is
// communication-bound (PBFT's O(N^2) messages), Parity uses little of
// either.
func Fig16Utilization(s Scale) (*Result, error) {
	res := &Result{ID: "fig16", Title: "resource utilization (YCSB, 8x8)"}
	// Per-hash cost calibrated from Go's SHA-256 over the 40-byte seal
	// buffer. CPU is reported against each node's mining/execution
	// budget (the simulated miners are single-threaded; geth saturated
	// its reserved cores the same way, just with more of them).
	const nsPerHash = 280.0
	for _, kind := range platforms() {
		w := macroWorkload("ycsb", s)
		r, err := measure(kind, 8, 8, w, blockbench.RunConfig{
			Threads: 4, Rate: 128, Duration: s.Duration,
		}, nil)
		if err != nil {
			return nil, err
		}
		cpuSec := float64(r.PowHashes())*nsPerHash/1e9 + r.ExecTime().Seconds()
		cpuPct := 100 * cpuSec / (r.Duration.Seconds() * float64(r.Nodes))
		res.addf("%-12s cpu=%5.1f%% of %d nodes x 1 core, net=%7.2f MB/s, msgs=%d",
			kind, cpuPct, r.Nodes, r.NetworkMBps(), r.MsgsSent)
	}
	return res, nil
}

var _ = pow.SealOK // keep the pow package linked for hash-cost docs
