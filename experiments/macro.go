package experiments

import (
	"fmt"
	"time"

	"blockbench"
)

func init() {
	register("fig5", Fig5PeakAndRates)
	register("fig6", Fig6QueueLength)
	register("fig7", Fig7ScaleTogether)
	register("fig8", Fig8ScaleServers)
	register("fig13c", Fig13cDoNothing)
	register("fig14", Fig14HStore)
	register("fig15", Fig15BlockSizes)
	register("fig17", Fig17LatencyCDF)
	register("fig18", Fig18Queue20)
	register("fig19", Fig19SmallbankScale)
}

// macroWorkload builds the two macro benchmarks sized to the scale,
// through the workload registry.
func macroWorkload(name string, s Scale) blockbench.Workload {
	if name == "smallbank" {
		return sizedWorkload(name, 400/s.Shrink)
	}
	return sizedWorkload(name, 1000/s.Shrink)
}

// Fig5PeakAndRates reproduces Fig 5: peak throughput and latency for
// YCSB and Smallbank on 8 servers x 8 clients, plus the
// performance-vs-offered-rate sweep.
func Fig5PeakAndRates(s Scale) (*Result, error) {
	res := &Result{ID: "fig5", Title: "peak performance & rate sweep (8 servers, 8 clients)"}
	rates := []float64{8, 32, 128, 512}
	if s.Shrink > 1 {
		rates = []float64{128, 512}
	}
	for _, wname := range []string{"ycsb", "smallbank"} {
		for _, kind := range platforms() {
			var peakTput, peakLat float64
			for _, rate := range rates {
				w := macroWorkload(wname, s)
				r, err := measure(kind, 8, 8, w, blockbench.RunConfig{
					Threads: 4, Rate: rate, Duration: s.Duration,
				}, nil)
				if err != nil {
					return nil, fmt.Errorf("fig5 %s/%s@%v: %w", kind, wname, rate, err)
				}
				res.addf("%-12s %-10s rate=%4.0f tx/s/client -> %7.1f tx/s, lat %6.3fs",
					kind, wname, rate, r.Throughput, r.LatencyMean)
				if r.Throughput > peakTput {
					peakTput, peakLat = r.Throughput, r.LatencyMean
				}
			}
			res.addf("%-12s %-10s PEAK: %7.1f tx/s, latency %6.3fs", kind, wname, peakTput, peakLat)
		}
	}
	return res, nil
}

// Fig6QueueLength reproduces Fig 6: the client's outstanding-request
// queue over time at low (8 tx/s) and saturating (512 tx/s) rates.
func Fig6QueueLength(s Scale) (*Result, error) {
	res := &Result{ID: "fig6", Title: "client request queue length over time (8 clients, 8 servers)"}
	for _, rate := range []float64{8, 512} {
		for _, kind := range platforms() {
			w := macroWorkload("ycsb", s)
			r, err := measure(kind, 8, 8, w, blockbench.RunConfig{
				Threads: 4, Rate: rate, Duration: s.Duration,
			}, nil)
			if err != nil {
				return nil, err
			}
			res.addf("%-12s rate=%3.0f queue: %s", kind, rate, fmtSeries(r.QueueSeries, 4))
		}
	}
	return res, nil
}

func scaleSweep(s Scale, full []int, quick []int) []int {
	if s.Shrink > 1 {
		return quick
	}
	return full
}

// Fig7ScaleTogether reproduces Fig 7: clients and servers grow together.
func Fig7ScaleTogether(s Scale) (*Result, error) {
	return scaleExperiment("fig7", "scalability, clients = servers (YCSB)", "ycsb",
		scaleSweep(s, []int{1, 4, 8, 16, 20}, []int{4, 16}), true, s)
}

// Fig8ScaleServers reproduces Fig 8: 8 clients, servers grow.
func Fig8ScaleServers(s Scale) (*Result, error) {
	return scaleExperiment("fig8", "scalability, 8 clients (YCSB)", "ycsb",
		scaleSweep(s, []int{8, 16, 24, 32}, []int{8, 24}), false, s)
}

// Fig19SmallbankScale reproduces Fig 19: the Smallbank scalability sweep
// (Hyperledger fails at smaller sizes than with YCSB).
func Fig19SmallbankScale(s Scale) (*Result, error) {
	return scaleExperiment("fig19", "scalability, clients = servers (Smallbank)", "smallbank",
		scaleSweep(s, []int{1, 4, 8, 16, 20}, []int{4, 16}), true, s)
}

func scaleExperiment(id, title, wname string, sizes []int, matchClients bool, s Scale) (*Result, error) {
	res := &Result{ID: id, Title: title}
	for _, kind := range platforms() {
		for _, n := range sizes {
			clients := 8
			if matchClients {
				clients = n
			}
			w := macroWorkload(wname, s)
			r, err := measure(kind, n, clients, w, blockbench.RunConfig{
				Threads: 2, Rate: 64, Duration: s.Duration,
			}, nil)
			if err != nil {
				return nil, err
			}
			res.addf("%-12s nodes=%2d clients=%2d -> %7.1f tx/s, lat %6.3fs, dropped=%d",
				kind, n, clients, r.Throughput, r.LatencyMean, r.MsgsDropped)
		}
	}
	return res, nil
}

// Fig13cDoNothing reproduces Fig 13c: DoNothing vs YCSB vs Smallbank
// throughput, isolating the consensus layer from execution cost.
func Fig13cDoNothing(s Scale) (*Result, error) {
	res := &Result{ID: "fig13c", Title: "consensus isolation: DoNothing vs YCSB vs Smallbank (8x8)"}
	for _, kind := range platforms() {
		for _, wname := range []string{"smallbank", "ycsb", "donothing"} {
			var w blockbench.Workload
			if wname == "donothing" {
				w = blockbench.MustWorkload(wname, nil)
			} else {
				w = macroWorkload(wname, s)
			}
			r, err := measure(kind, 8, 8, w, blockbench.RunConfig{
				Threads: 4, Rate: 512, Duration: s.Duration,
			}, nil)
			if err != nil {
				return nil, err
			}
			res.addf("%-12s %-10s -> %7.1f tx/s", kind, wname, r.Throughput)
		}
	}
	return res, nil
}

// Fig15BlockSizes reproduces Fig 15: block generation rate at small
// (0.5x), medium (1x) and large (2x) block sizes. Ethereum tunes
// gasLimit, Hyperledger batchSize, Parity stepDuration.
func Fig15BlockSizes(s Scale) (*Result, error) {
	res := &Result{ID: "fig15", Title: "block generation rate vs block size"}
	type sizing struct {
		label string
		mul   float64
	}
	for _, kind := range platforms() {
		for _, sz := range []sizing{{"small", 0.5}, {"medium", 1}, {"large", 2}} {
			w := macroWorkload("ycsb", s)
			r, err := measure(kind, 8, 8, w, blockbench.RunConfig{
				Threads: 4, Rate: 256, Duration: s.Duration,
			}, func(cfg *blockbench.ClusterConfig) {
				switch kind {
				case blockbench.Ethereum:
					cfg.GasLimit = uint64(1_000_000 * sz.mul)
					// Bigger blocks take proportionally longer to mine:
					// geth's difficulty targets a constant gas throughput.
					cfg.BlockInterval = time.Duration(float64(100*time.Millisecond) * sz.mul)
				case blockbench.Parity:
					cfg.StepDuration = time.Duration(float64(40*time.Millisecond) * sz.mul)
				case blockbench.Hyperledger, blockbench.Quorum:
					// Both batch by count: Fabric's batchSize, Raft's
					// per-entry batch.
					cfg.BatchSize = int(20 * sz.mul)
					cfg.BatchTimeout = time.Duration(float64(10*time.Millisecond) * sz.mul)
				}
			})
			if err != nil {
				return nil, err
			}
			res.addf("%-12s %-6s -> %5.2f blocks/s (%7.1f tx/s)", kind, sz.label, r.BlockRate(), r.Throughput)
		}
	}
	return res, nil
}

// Fig17LatencyCDF reproduces Fig 17: the latency distribution for YCSB
// and Smallbank at 8x8.
func Fig17LatencyCDF(s Scale) (*Result, error) {
	res := &Result{ID: "fig17", Title: "latency CDF (8x8)"}
	for _, kind := range platforms() {
		for _, wname := range []string{"ycsb", "smallbank"} {
			w := macroWorkload(wname, s)
			r, err := measure(kind, 8, 8, w, blockbench.RunConfig{
				Threads: 4, Rate: 64, Duration: s.Duration,
			}, nil)
			if err != nil {
				return nil, err
			}
			res.addf("%-12s %-10s p10=%.3f p50=%.3f p90=%.3f p99=%.3f (s)",
				kind, wname, quantileAt(r, 0.10), r.LatencyP50, r.LatencyP90, r.LatencyP99)
		}
	}
	return res, nil
}

func quantileAt(r *blockbench.Report, q float64) float64 {
	if len(r.LatencyCDFValues) == 0 {
		return 0
	}
	idx := int(q * float64(len(r.LatencyCDFValues)))
	if idx >= len(r.LatencyCDFValues) {
		idx = len(r.LatencyCDFValues) - 1
	}
	return r.LatencyCDFValues[idx]
}

// Fig18Queue20 reproduces Fig 18: the client queue at 20 servers and 20
// clients, where Hyperledger's consensus stalls and the queue never
// drains.
func Fig18Queue20(s Scale) (*Result, error) {
	res := &Result{ID: "fig18", Title: "queue length, 20 servers / 20 clients"}
	n := 20
	if s.Shrink > 1 {
		n = 8
	}
	for _, kind := range platforms() {
		w := macroWorkload("ycsb", s)
		r, err := measure(kind, n, n, w, blockbench.RunConfig{
			Threads: 4, Rate: 512, Duration: s.Duration,
		}, nil)
		if err != nil {
			return nil, err
		}
		res.addf("%-12s queue: %s (committed %d, dropped %d)",
			kind, fmtSeries(r.QueueSeries, 4), r.Committed, r.MsgsDropped)
	}
	return res, nil
}
