package experiments

import (
	"time"

	"blockbench"
)

func init() {
	register("abl-inbox", AblationInbox)
	register("abl-cache", AblationStateCache)
	register("abl-signing", AblationParitySigning)
}

// AblationInbox isolates the mechanism behind Hyperledger's collapse at
// scale: with bounded per-node message channels (the real system's
// behaviour), PBFT under load drops consensus messages, diverges views
// and stalls; with effectively unbounded channels the same deployment
// keeps committing. This confirms the paper's diagnosis that "consensus
// messages are rejected ... on account of the message channel being
// full" — an implementation artifact, not a protocol property.
func AblationInbox(s Scale) (*Result, error) {
	res := &Result{ID: "abl-inbox", Title: "PBFT: bounded vs unbounded message channels"}
	n := 16
	if s.Shrink > 1 {
		n = 8
	}
	for _, inbox := range []int{256, 1 << 20} {
		w := macroWorkload("ycsb", s)
		r, err := measure(blockbench.Hyperledger, n, n, w, blockbench.RunConfig{
			Threads: 4, Rate: 256, Duration: s.Duration,
		}, func(cfg *blockbench.ClusterConfig) {
			cfg.Net.BaseLatency = 200 * time.Microsecond
			cfg.Net.Jitter = 300 * time.Microsecond
			cfg.Net.Bandwidth = 125_000_000
			cfg.Net.InboxSize = inbox
			cfg.Net.Seed = 1
		})
		if err != nil {
			return nil, err
		}
		res.addf("inbox=%7d nodes=%d -> %7.1f tx/s, dropped=%d msgs", inbox, n, r.Throughput, r.MsgsDropped)
	}
	return res, nil
}

// AblationStateCache toggles the Ethereum preset's LRU state cache, the
// design choice that lets geth handle states larger than memory at the
// cost of read throughput (§4.2.2's caching discussion).
func AblationStateCache(s Scale) (*Result, error) {
	res := &Result{ID: "abl-cache", Title: "Ethereum: LRU state cache on/off (YCSB)"}
	for _, entries := range []int{-1, 4096, 65_536} {
		w := macroWorkload("ycsb", s)
		label := entries
		r, err := measure(blockbench.Ethereum, 4, 4, w, blockbench.RunConfig{
			Threads: 4, Rate: 256, Duration: s.Duration,
		}, func(cfg *blockbench.ClusterConfig) {
			cfg.CacheEntries = entries // -1 disables (fill keeps non-zero)
		})
		if err != nil {
			return nil, err
		}
		res.addf("cache=%6d entries -> %7.1f tx/s, lat %6.3fs", label, r.Throughput, r.LatencyMean)
	}
	return res, nil
}

// AblationParitySigning removes the server-side signing cost from the
// Parity preset. Throughput jumps accordingly, isolating the bottleneck
// the paper identified ("the bottleneck in Parity is caused by
// transaction signing ... not due to consensus or transaction
// execution").
func AblationParitySigning(s Scale) (*Result, error) {
	res := &Result{ID: "abl-signing", Title: "Parity: server-side signing cost on/off"}
	for _, cost := range []time.Duration{22 * time.Millisecond, 2 * time.Millisecond, 100 * time.Microsecond} {
		w := macroWorkload("ycsb", s)
		r, err := measure(blockbench.Parity, 4, 4, w, blockbench.RunConfig{
			Threads: 4, Rate: 512, Duration: s.Duration,
		}, func(cfg *blockbench.ClusterConfig) {
			cfg.IngestCost = cost
		})
		if err != nil {
			return nil, err
		}
		res.addf("ingest cost=%8v -> %7.1f tx/s", cost, r.Throughput)
	}
	return res, nil
}
