package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"blockbench"
	"blockbench/internal/exec"
	"blockbench/internal/types"
)

func init() {
	register("fig11", Fig11CPUHeavy)
	register("fig12", Fig12IOHeavy)
	register("fig13", Fig13Analytics)
}

// Fig11CPUHeavy reproduces Fig 11: quicksort execution time and peak
// memory at growing input sizes, one server one client. Sizes are the
// paper's 1M/10M/100M divided by 100 (see EXPERIMENTS.md); the memory
// model is fitted so the shape is preserved: Hyperledger's native
// execution is orders of magnitude faster and leaner, Parity's EVM beats
// Ethereum's, and Ethereum runs out of memory at the largest size.
func Fig11CPUHeavy(s Scale) (*Result, error) {
	res := &Result{ID: "fig11", Title: "CPUHeavy: sort time and peak memory (sizes = paper/100)"}
	sizes := []int{10_000, 100_000, 1_000_000}
	if s.Shrink > 1 {
		sizes = []int{40_000 / s.Shrink, 400_000 / s.Shrink}
	}
	for _, kind := range platforms() {
		for _, n := range sizes {
			c, err := newCluster(kind, 1, 1, blockbench.MustWorkload("cpuheavy", nil), nil)
			if err != nil {
				return nil, err
			}
			client := c.ClientOn(0, 0)
			start := time.Now()
			_, qerr := client.Query("cpuheavy", "sort", types.U64Bytes(uint64(n)))
			elapsed := time.Since(start)

			mem := peakMemOf(c, kind, n)
			c.Stop()
			if qerr != nil {
				res.addf("%-12s n=%9d -> X (%v)", kind, n, shortErr(qerr))
				continue
			}
			res.addf("%-12s n=%9d -> %8.3fs, peak mem %7.1f MB", kind, n, elapsed.Seconds(), mem)
		}
	}
	return res, nil
}

// peakMemOf reports the simulated resident footprint in MB: the EVM
// engines track it through their memory model; the native engine's
// footprint is the array itself plus runtime overhead (paper-fit
// ~10 B/element over a small base).
func peakMemOf(c *blockbench.Cluster, kind blockbench.Platform, n int) float64 {
	if kind == blockbench.Hyperledger {
		return (3.5e6 + 10*float64(n)) / 1e6
	}
	if e, ok := c.Inner().Engine(0).(*exec.EVMEngine); ok {
		return float64(e.PeakMem()) / 1e6
	}
	return 0
}

func shortErr(err error) string {
	msg := err.Error()
	if len(msg) > 60 {
		msg = msg[:60]
	}
	return msg
}

// Fig12IOHeavy reproduces Fig 12: bulk random write then read
// throughput (in state operations per second) and the resulting disk
// usage, at growing tuple counts (paper sizes divided by 16). Ethereum
// and Parity pay Patricia-Merkle write amplification — an order of
// magnitude more storage than Hyperledger's flat bucket layout — and
// Parity's pinned-in-memory state runs out at the two largest sizes.
func Fig12IOHeavy(s Scale) (*Result, error) {
	res := &Result{ID: "fig12", Title: "IOHeavy: write/read throughput and disk usage (sizes = paper/16)"}
	sizes := []int{50_000, 100_000, 200_000, 400_000, 800_000}
	perTx := 10_000
	if s.Shrink > 1 {
		sizes = []int{80_000 / s.Shrink, 200_000 / s.Shrink}
		perTx = 20_000 / s.Shrink
	}
	for _, kind := range platforms() {
		for _, tuples := range sizes {
			row, err := ioHeavyRun(kind, tuples, perTx)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func ioHeavyRun(kind blockbench.Platform, tuples, perTx int) (string, error) {
	dir, err := os.MkdirTemp("", "blockbench-io")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)
	c, err := newCluster(kind, 1, 1, blockbench.MustWorkload("ioheavy", nil), func(cfg *blockbench.ClusterConfig) {
		if kind != blockbench.Parity {
			cfg.DataDir = dir
		}
		cfg.GasLimit = 1 << 50 // IOHeavy transactions exceed normal limits
		cfg.ParityMemCap = 192 << 20
	})
	if err != nil {
		return "", err
	}
	defer c.Stop()
	c.Start()
	client := c.ClientOn(0, 0)

	phase := func(method string) (float64, error) {
		start := time.Now()
		for seed := 0; seed < tuples; seed += perTx {
			id, err := client.Send(blockbench.Op{Contract: "ioheavy", Method: method,
				Args:     [][]byte{types.U64Bytes(uint64(perTx)), types.U64Bytes(uint64(seed))},
				GasLimit: 1 << 50})
			if err != nil {
				return 0, err
			}
			deadline := time.Now().Add(20 * time.Second)
			for {
				ok, err := client.Committed(id)
				if err != nil {
					return 0, err
				}
				if ok {
					break
				}
				if time.Now().After(deadline) {
					return 0, errors.New("out of memory / commit stalled")
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		return float64(tuples) / time.Since(start).Seconds(), nil
	}

	wTput, werr := phase("write")
	if werr != nil {
		return fmt.Sprintf("%-12s tuples=%7d -> X (%s)", kind, tuples, shortErr(werr)), nil
	}
	rTput, rerr := phase("read")
	if rerr != nil {
		return fmt.Sprintf("%-12s tuples=%7d -> write %8.0f op/s, read X", kind, tuples, wTput), nil
	}
	st := c.Inner().Store(0).Stats()
	disk := st.DiskBytes
	if kind == blockbench.Parity {
		disk = st.MemBytes // Parity keeps state resident in memory
	}
	return fmt.Sprintf("%-12s tuples=%7d -> write %8.0f op/s, read %8.0f op/s, storage %7.1f MB",
		kind, tuples, wTput, rTput, float64(disk)/1e6), nil
}

// Fig13Analytics reproduces Fig 13a/b: analytics query latency versus
// blocks scanned on a preloaded historical chain. Q1 (total transaction
// value) costs one RPC per block everywhere; Q2 (largest value touching
// an account) costs one RPC per block on Ethereum/Parity but a single
// chaincode query on Hyperledger thanks to VersionKVStore — the ~10x
// gap at large scans.
func Fig13Analytics(s Scale) (*Result, error) {
	res := &Result{ID: "fig13", Title: "analytics Q1/Q2 latency vs blocks scanned"}
	blocks := 10_000 / s.Shrink
	scans := []uint64{1, 10, 100, 1000, 10_000}
	for _, kind := range platforms() {
		a := &blockbench.Analytics{Blocks: blocks, TxPerBlock: 3, Accounts: 32}
		c, err := newCluster(kind, 2, 32, a, nil)
		if err != nil {
			return nil, err
		}
		if err := a.Init(c, rand.New(rand.NewSource(3))); err != nil {
			c.Stop()
			return nil, err
		}
		client := c.ClientOn(0, 0)
		base := c.Height() - uint64(blocks) + 1
		for _, scan := range scans {
			if scan > uint64(blocks) {
				continue
			}
			_, d1, err := a.Q1(client, base, base+scan)
			if err != nil {
				c.Stop()
				return nil, err
			}
			_, d2, err := a.Q2(client, a.Account(0), base, base+scan)
			if err != nil {
				c.Stop()
				return nil, err
			}
			res.addf("%-12s scan=%6d blocks -> Q1 %8.3fs, Q2 %8.3fs",
				kind, scan, d1.Seconds(), d2.Seconds())
		}
		c.Stop()
	}
	return res, nil
}
