// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and appendices): peak performance, rate sweeps, queue
// behaviour, scalability, fault tolerance, the partition attack,
// CPUHeavy, IOHeavy, analytics, DoNothing, the H-Store comparison, block
// sizes, resource utilization, latency distributions.
//
// Each experiment is registered by figure ID and produces a Result whose
// rows mirror the series the paper plots. Absolute numbers are at the
// repository's simulation scale (see DESIGN.md); the shape checks —
// which system wins, by what rough factor, where it breaks — are the
// reproduction target and are recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"blockbench"
)

// Scale sizes an experiment run.
type Scale struct {
	// Duration of each measured run.
	Duration time.Duration
	// Shrink divides sweep sizes and preload volumes (quick CI runs).
	Shrink int
}

// Full is the default scale: 12 s runs (the paper's 5 minutes at 25x).
var Full = Scale{Duration: 12 * time.Second, Shrink: 1}

// Quick is a fast smoke scale for benchmarks and CI.
var Quick = Scale{Duration: 3 * time.Second, Shrink: 4}

// Result is one experiment's printable output.
type Result struct {
	ID    string
	Title string
	Rows  []string
}

func (r *Result) addf(format string, args ...any) {
	r.Rows = append(r.Rows, fmt.Sprintf(format, args...))
}

// String renders the result as the paper-style text block.
func (r *Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, row := range r.Rows {
		out += row + "\n"
	}
	return out
}

// Runner is an experiment entry point.
type Runner func(s Scale) (*Result, error)

var registry = map[string]Runner{}
var order []string

func register(id string, fn Runner) {
	registry[id] = fn
	order = append(order, id)
}

// IDs lists registered experiment IDs in figure order.
func IDs() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, bool) {
	fn, ok := registry[id]
	return fn, ok
}

// platforms under study: every backend on the platform registry, in its
// sorted order — the paper's three plus the Quorum and Sharded
// extensions today, and anything a framework user registers tomorrow
// (a new backend becomes an experiments column with zero edits here).
// Read at experiment-run time, not captured at init, so registrations
// from packages initialized after this one still appear.
func platforms() []blockbench.Platform { return blockbench.Platforms() }

// sizedWorkload builds a registered workload with its record/account
// volume set — the registry lookup behind every experiment table, so a
// workload registered by a framework user is immediately addressable
// here too. Names are static within this package, so failure is a
// programming error.
func sizedWorkload(name string, records int) blockbench.Workload {
	return blockbench.MustWorkload(name,
		blockbench.WorkloadOptions{"records": strconv.Itoa(records)})
}

// newCluster builds a stopped cluster with paper-faithful defaults.
func newCluster(kind blockbench.Platform, nodes, clients int,
	w blockbench.Workload, tweak func(*blockbench.ClusterConfig)) (*blockbench.Cluster, error) {

	cfg := blockbench.ClusterConfig{Kind: kind, Nodes: nodes}
	if w != nil {
		cfg.Contracts = w.Contracts()
	}
	if tweak != nil {
		tweak(&cfg)
	}
	return blockbench.NewCluster(cfg, clients)
}

// SnapshotDir, when non-empty, makes every measured run stream its
// per-bucket snapshots (and final report) to a JSONL file under this
// directory — the machine-readable series EXPERIMENTS.md macro runs
// record. Set it before running experiments (the cmd/experiments
// -jsonl flag does).
var SnapshotDir string

// snapSeq numbers sink files so repeated configurations within one
// experiment do not overwrite each other.
var snapSeq atomic.Uint64

// drive runs a preloaded workload on a started cluster through the run
// handle, streaming the live series to a JSONL sink when SnapshotDir is
// set. Experiments that keep their own cluster (post-run fork stats)
// call it directly; everything else goes through measure.
func drive(c *blockbench.Cluster, w blockbench.Workload,
	rc blockbench.RunConfig) (*blockbench.Report, error) {

	var sink blockbench.Sink
	if SnapshotDir != "" {
		name := fmt.Sprintf("%s-%s-n%d-%03d.jsonl", c.Kind(), w.Name(), c.Size(), snapSeq.Add(1))
		var err error
		if sink, err = blockbench.OpenSink(filepath.Join(SnapshotDir, name)); err != nil {
			return nil, err
		}
		defer sink.Close()
	}

	rc.SkipInit = true
	run, err := blockbench.Start(context.Background(), c, w, rc)
	if err != nil {
		return nil, err
	}
	// Drain the stream to the end even if a sink write fails, so the
	// run tears down before the caller stops the cluster.
	var sinkErr error
	for snap := range run.Snapshots() {
		if sink != nil && sinkErr == nil {
			sinkErr = sink.WriteSnapshot(snap)
		}
	}
	r, err := run.Wait()
	if err == nil {
		err = sinkErr
	}
	if err == nil && sink != nil {
		err = sink.WriteReport(r)
	}
	return r, err
}

// measure runs one workload on a fresh cluster: preload while stopped,
// then start and drive through the run handle.
func measure(kind blockbench.Platform, nodes, clients int, w blockbench.Workload,
	rc blockbench.RunConfig, tweak func(*blockbench.ClusterConfig)) (*blockbench.Report, error) {

	c, err := newCluster(kind, nodes, clients, w, tweak)
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	if err := w.Init(c, rand.New(rand.NewSource(7))); err != nil {
		return nil, err
	}
	c.Start()
	if rc.Clients == 0 {
		rc.Clients = clients
	}
	return drive(c, w, rc)
}

func fmtSeries(vals []float64, every int) string {
	out := ""
	for i := 0; i < len(vals); i += every {
		out += fmt.Sprintf("%.0f ", vals[i])
	}
	return out
}
