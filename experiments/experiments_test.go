package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny is an even smaller scale than Quick, for unit tests.
var tiny = Scale{Duration: 1500 * time.Millisecond, Shrink: 10}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig13c", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "abl-inbox", "abl-cache", "abl-signing"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registered %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestFig11CPUHeavyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run too heavy for -short")
	}
	res, err := Fig11CPUHeavy(tiny)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	// Every platform produced rows and Hyperledger appears.
	for _, p := range []string{"ethereum", "parity", "hyperledger"} {
		if !strings.Contains(out, p) {
			t.Fatalf("missing platform %s in:\n%s", p, out)
		}
	}
	t.Log("\n" + out)
}

func TestFig13AnalyticsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run too heavy for -short")
	}
	res, err := Fig13Analytics(Scale{Duration: time.Second, Shrink: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	t.Log("\n" + res.String())
}

func TestFig14HStoreBaseline(t *testing.T) {
	tput, err := runHStore("ycsb", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tputSB, err := runHStore("smallbank", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// H-Store YCSB must be far above any blockchain (>10k tx/s) and
	// Smallbank slower than YCSB (2PC cost).
	if tput < 10_000 {
		t.Fatalf("h-store ycsb only %.0f tx/s", tput)
	}
	if tputSB >= tput {
		t.Fatalf("smallbank (%.0f) not slower than ycsb (%.0f)", tputSB, tput)
	}
	t.Logf("h-store: ycsb=%.0f smallbank=%.0f", tput, tputSB)
}

func TestFig10PartitionAttackShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run too heavy for -short")
	}
	res, err := Fig10PartitionAttack(Scale{Duration: 3 * time.Second, Shrink: 10})
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	t.Log("\n" + out)
	// Hyperledger must report zero stale blocks.
	for _, row := range res.Rows {
		if strings.HasPrefix(row, "hyperledger") && !strings.Contains(row, "stale=  0") {
			t.Fatalf("hyperledger forked: %s", row)
		}
	}
}
