package blockbench

import (
	"math/rand"

	"blockbench/internal/workload"
)

func init() {
	workload.MustRegister(workload.Spec{
		Name:        "doubler",
		Description: "pyramid-scheme contract: every transaction is an enter() carrying value",
		Contracts:   []string{"doubler"},
		New: func(opts workload.Options) (any, error) {
			d := workload.NewDecoder(opts)
			w := &DoublerWorkload{Stake: d.Uint64("stake", 0)}
			if err := d.Finish(); err != nil {
				return nil, err
			}
			return w, nil
		},
	})
}

// DoublerWorkload drives the pyramid-scheme contract: every transaction
// is an enter() carrying value.
type DoublerWorkload struct{ Stake uint64 }

// Name implements Workload.
func (w *DoublerWorkload) Name() string { return "doubler" }

// Contracts implements Workload.
func (w *DoublerWorkload) Contracts() []string { return []string{"doubler"} }

// Init implements Workload.
func (w *DoublerWorkload) Init(c *Cluster, rng *rand.Rand) error { return nil }

// Next implements Workload.
func (w *DoublerWorkload) Next(clientID int, rng *rand.Rand) Op {
	stake := w.Stake
	if stake == 0 {
		stake = 10
	}
	return Op{Contract: "doubler", Method: "enter", Value: stake}
}
