package blockbench

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"blockbench/internal/workload"
)

// ycsb-scan exists to prove the workload registry seam: it plugs a new
// read-mostly variant into the CLI and experiments through this one
// file and its Register call — no CLI flags, no experiment lists, no
// driver edits.

func init() {
	workload.MustRegister(workload.Spec{
		Name:        "ycsb-scan",
		Description: "read-mostly YCSB-C-style mix: short sequential scan windows over the record set",
		Contracts:   []string{"ycsb"},
		New: func(opts workload.Options) (any, error) {
			d := workload.NewDecoder(opts)
			w := &YCSBScanWorkload{
				YCSBWorkload: YCSBWorkload{
					Records:      d.Int("records", 0),
					ValueSize:    d.Int("valuesize", 0),
					ReadProp:     d.Float("readprop", 0),
					UpdateProp:   d.Float("updateprop", 0),
					Distribution: d.String("distribution", ""),
				},
				ScanLen: d.Int("scanlen", 0),
			}
			if err := d.Finish(); err != nil {
				return nil, err
			}
			return w, nil
		},
	})
}

// YCSBScanWorkload is the read-mostly YCSB variant (YCSB-C-style, 95%
// reads by default): reads come in scan windows — the KeyChooser picks
// a start record and the next ScanLen operations for that client read
// consecutive keys, modelling cursor scans over hot ranges.
type YCSBScanWorkload struct {
	YCSBWorkload
	ScanLen int // keys read per scan window (default 10)

	scanFillOnce sync.Once
	// cursors pack one scan window per client slot as start<<16 |
	// remaining, advanced with CAS: Next may be called from several
	// threads of the same client in blocking mode.
	cursors []atomic.Uint64
}

// Name implements Workload.
func (w *YCSBScanWorkload) Name() string { return "ycsb-scan" }

// lazyFill applies defaults exactly once; see YCSBWorkload.lazyFill.
func (w *YCSBScanWorkload) lazyFill() { w.scanFillOnce.Do(w.fill) }

func (w *YCSBScanWorkload) fill() {
	if w.ScanLen <= 0 {
		w.ScanLen = 10
	}
	if w.ScanLen > 0xffff {
		w.ScanLen = 0xffff // the window cursor packs the remainder into 16 bits
	}
	// The mix is two-way (scan reads vs updates), so the proportions
	// are normalized to sum to 1 with ReadProp winning a conflict.
	switch {
	case w.ReadProp == 0 && w.UpdateProp == 0:
		w.ReadProp, w.UpdateProp = 0.95, 0.05
	case w.ReadProp == 0:
		w.ReadProp = 1 - w.UpdateProp
	default:
		w.UpdateProp = 1 - w.ReadProp
	}
	w.cursors = make([]atomic.Uint64, 256)
	w.YCSBWorkload.lazyFill()
}

// Init implements Workload: preloads the record set.
func (w *YCSBScanWorkload) Init(c *Cluster, rng *rand.Rand) error {
	w.lazyFill()
	return w.YCSBWorkload.Init(c, rng)
}

// Next implements Workload.
func (w *YCSBScanWorkload) Next(clientID int, rng *rand.Rand) Op {
	w.lazyFill()
	// The read/update mix is drawn per operation, so ReadProp is the
	// exact read fraction; an update interleaves without cancelling the
	// client's open scan window.
	if rng.Float64() >= w.ReadProp {
		return Op{Contract: "ycsb", Method: "write",
			Args: [][]byte{ycsbKey(w.chooser.Next(rng)), randValue(rng, w.ValueSize)}}
	}
	slot := &w.cursors[clientID%len(w.cursors)]
	for {
		cur := slot.Load()
		rem := cur & 0xffff
		if rem == 0 {
			break
		}
		if !slot.CompareAndSwap(cur, cur-1) {
			continue // another thread of this client advanced the window
		}
		start := int(cur >> 16)
		return Op{Contract: "ycsb", Method: "read",
			Args: [][]byte{ycsbKey((start + w.ScanLen - int(rem)) % w.Records)}}
	}
	// Open a new scan window: read its first key now, leave the rest
	// for the following calls.
	start := w.chooser.Next(rng)
	slot.Store(uint64(start)<<16 | uint64(w.ScanLen-1))
	return Op{Contract: "ycsb", Method: "read", Args: [][]byte{ycsbKey(start)}}
}
