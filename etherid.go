package blockbench

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"blockbench/internal/types"
	"blockbench/internal/workload"
)

func init() {
	workload.MustRegister(workload.Spec{
		Name:        "etherid",
		Description: "domain-name registrar contract: register, buy back and query domains",
		Contracts:   []string{"etherid"},
		New: func(opts workload.Options) (any, error) {
			if err := workload.NewDecoder(opts).Finish(); err != nil {
				return nil, err
			}
			return &EtherIdWorkload{}, nil
		},
	})
}

// EtherIdWorkload drives the domain-name registrar contract: clients
// register fresh domains and buy back their own (keeping every
// transaction valid without cross-client coordination).
type EtherIdWorkload struct {
	fillOnce sync.Once
	counters []atomic.Int64
}

func (w *EtherIdWorkload) lazyFill() {
	// Next may run on several goroutines without Init (SkipInit), so
	// the counter allocation must not race.
	w.fillOnce.Do(func() { w.counters = make([]atomic.Int64, 256) })
}

// Name implements Workload.
func (w *EtherIdWorkload) Name() string { return "etherid" }

// Contracts implements Workload.
func (w *EtherIdWorkload) Contracts() []string { return []string{"etherid"} }

// Init implements Workload.
func (w *EtherIdWorkload) Init(c *Cluster, rng *rand.Rand) error {
	w.lazyFill()
	return nil
}

func (w *EtherIdWorkload) domain(clientID int, i int64) []byte {
	return types.U64Bytes(uint64(clientID)<<32 | uint64(i))
}

// Next implements Workload.
func (w *EtherIdWorkload) Next(clientID int, rng *rand.Rand) Op {
	w.lazyFill()
	ctr := &w.counters[clientID%len(w.counters)]
	n := ctr.Load()
	if n == 0 || rng.Float64() < 0.6 {
		return Op{Contract: "etherid", Method: "register",
			Args: [][]byte{w.domain(clientID, ctr.Add(1)), types.U64Bytes(10)}}
	}
	d := w.domain(clientID, 1+rng.Int63n(n))
	if rng.Float64() < 0.5 {
		return Op{Contract: "etherid", Method: "buy", Args: [][]byte{d}, Value: 20}
	}
	return Op{Contract: "etherid", Method: "query", Args: [][]byte{d}}
}
