// Analytics benchmarks: the RPC-walk-vs-columnar-index latency series
// behind the paper's §3.4.2 queries, and the HTAP interference mix.
// Both families are tracked by cmd/benchcheck (BENCH_ci.json), so the
// indexed path's order-of-magnitude win over the per-block RPC walk is
// gated against regression.
package blockbench_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"blockbench"
)

// BenchmarkAnalyticsQuery measures Q1 (total tx value in range) and Q2
// (largest balance change) at growing history sizes, once over the
// paper's baseline read path (one 50µs RPC per block) and once over the
// server-side columnar index (one round trip per query). The preloaded
// chain and both query ranges are identical across the two modes, and
// the modes return identical results — only the read path differs, so
// us/q1 and us/q2 expose exactly the index's win.
func BenchmarkAnalyticsQuery(b *testing.B) {
	for _, blocks := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			a := &blockbench.Analytics{Blocks: blocks, TxPerBlock: 3, Accounts: 8}
			c, err := blockbench.NewCluster(blockbench.ClusterConfig{
				Kind:       blockbench.Ethereum,
				Nodes:      1,
				Contracts:  a.Contracts(),
				RPCLatency: 50 * time.Microsecond,
			}, 8)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Stop()
			// Preload by direct append; the cluster stays unstarted so the
			// chain is frozen and no miner competes with the queries.
			if err := a.Init(c, rand.New(rand.NewSource(7))); err != nil {
				b.Fatal(err)
			}
			client := c.Client(0)
			// Stay under the confirmation depth so the indexed path's
			// committed-only clamp covers the same range as the RPC walk.
			to := c.Height() - 3
			acct := a.Account(0)

			for _, mode := range []string{"rpc", "indexed"} {
				b.Run(mode, func(b *testing.B) {
					a.Mode = mode
					// A single indexed query costs sub-millisecond end to
					// end, so one sample mostly measures the 50µs simulated
					// RPC sleep's timer-granularity overshoot; average over
					// enough repetitions that the reported mean is signal.
					// One rpc walk is thousands of such sleeps — already
					// self-averaging (and far too slow to repeat).
					reps := 1
					if mode == "indexed" {
						reps = 100
					}
					var q1us, q2us float64
					var check uint64
					for i := 0; i < b.N; i++ {
						for r := 0; r < reps; r++ {
							v1, d1, err := a.Q1(client, 1, to)
							if err != nil {
								b.Fatal(err)
							}
							v2, d2, err := a.Q2(client, acct, 1, to)
							if err != nil {
								b.Fatal(err)
							}
							if v1 == 0 {
								b.Fatal("q1 scanned no value")
							}
							check += v1 + v2
							q1us += float64(d1.Microseconds())
							q2us += float64(d2.Microseconds())
						}
					}
					_ = check
					b.ReportMetric(q1us/float64(b.N*reps), "us/q1")
					b.ReportMetric(q2us/float64(b.N*reps), "us/q2")
				})
			}
		})
	}
}

// BenchmarkHTAPMix runs the hybrid workload end to end on a 3-node
// quorum cluster: the driver floods OLTP transfers while every 8th
// generated operation first runs one synchronous analytical scan at its
// client's server. tx/s is the OLTP side under analytical interference;
// q/s is the analytical side under commit pressure.
func BenchmarkHTAPMix(b *testing.B) {
	var tput, qps float64
	for i := 0; i < b.N; i++ {
		w := blockbench.MustWorkload("htap", blockbench.WorkloadOptions{"qevery": "8"})
		c, err := blockbench.NewCluster(blockbench.ClusterConfig{
			Kind:              blockbench.Quorum,
			Nodes:             3,
			Contracts:         w.Contracts(),
			BatchTimeout:      5 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   100 * time.Millisecond,
			RPCLatency:        50 * time.Microsecond,
		}, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Init(c, rand.New(rand.NewSource(5))); err != nil {
			c.Stop()
			b.Fatal(err)
		}
		c.Start()
		r, err := blockbench.Run(c, w, blockbench.RunConfig{
			Clients: 4, Threads: 2, Rate: 400,
			Duration: 2 * time.Second, SkipInit: true,
		})
		c.Stop()
		if err != nil {
			b.Fatal(err)
		}
		if r.AnalyticsQueries() == 0 {
			b.Fatal("no analytical queries reached the index")
		}
		tput += r.Throughput
		qps += float64(r.AnalyticsQueries()) / r.Duration.Seconds()
	}
	b.ReportMetric(tput/float64(b.N), "tx/s")
	b.ReportMetric(qps/float64(b.N), "q/s")
}
