package blockbench

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"blockbench/internal/types"
	"blockbench/internal/workload"
)

func init() {
	workload.MustRegister(workload.Spec{
		Name:        "htap",
		Description: "HTAP mix: OLTP value transfers with concurrent server-side analytical scans over committed history",
		Contracts:   []string{"versionkv"},
		New: func(opts workload.Options) (any, error) {
			d := workload.NewDecoder(opts)
			w := &HTAP{
				Accounts:      d.Int("accounts", 0),
				QueryEvery:    d.Int("qevery", 0),
				Window:        uint64(d.Int("window", 0)),
				K:             d.Int("k", 0),
				PreloadBlocks: d.Int("blocks", 0),
				TxPerBlock:    d.Int("txperblock", 0),
			}
			if err := d.Finish(); err != nil {
				return nil, err
			}
			return w, nil
		},
	})
}

// HTAP is the hybrid workload the analytics index exists for: the
// driver's submit pipeline keeps committing OLTP value transfers while
// every QueryEvery-th generated operation first runs one synchronous
// analytical query (rotating sum / max-delta / top-k counterparties)
// over a trailing window of committed history at the generating
// client's server. The scans ride the columnar index, so they cost the
// server microseconds, not a walk over the chain — and the workload
// measures exactly the interference between the two sides.
//
// Requires the analytics index (`-popt index=on`, the default); Init
// fails fast when it is disabled.
type HTAP struct {
	Accounts      int    // OLTP account set (default: all client keys)
	QueryEvery    int    // one analytical query per this many ops (default 32)
	Window        uint64 // trailing scan window in blocks (default 256)
	K             int    // top-k size (default 5)
	PreloadBlocks int    // seeded history before the run (default 32)
	TxPerBlock    int    // preload transactions per block (default 3)

	hyperledger bool
	cluster     *Cluster
	accts       []Address
	ops         atomic.Uint64
	lastHeight  atomic.Uint64 // newest height a query has observed
	queries     atomic.Uint64
}

// Name identifies the workload in reports.
func (w *HTAP) Name() string { return "htap" }

// Contracts lists required contracts (Hyperledger only).
func (w *HTAP) Contracts() []string { return []string{"versionkv"} }

// Queries returns how many analytical queries succeeded so far.
func (w *HTAP) Queries() uint64 { return w.queries.Load() }

func (w *HTAP) fill(c *Cluster) {
	if w.Accounts <= 0 || w.Accounts > len(c.keys) {
		w.Accounts = len(c.keys)
	}
	if w.QueryEvery <= 0 {
		w.QueryEvery = 32
	}
	if w.Window == 0 {
		w.Window = 256
	}
	if w.K <= 0 {
		w.K = 5
	}
	if w.PreloadBlocks <= 0 {
		w.PreloadBlocks = 32
	}
	if w.TxPerBlock <= 0 {
		w.TxPerBlock = 3
	}
}

// Init seeds a small history (so the first scans have a range to
// cover) and verifies the analytics index is live.
func (w *HTAP) Init(c *Cluster, rng *rand.Rand) error {
	w.fill(c)
	w.cluster = c
	w.hyperledger = c.Kind() == Hyperledger
	w.accts = make([]Address, w.Accounts)
	for i := range w.accts {
		w.accts[i] = c.keys[i].Address()
	}

	var ops []Op
	if w.hyperledger {
		for i := 0; i < w.Accounts; i++ {
			ops = append(ops, Op{Contract: "versionkv", Method: "prealloc",
				Args: [][]byte{w.accts[i].Bytes(), types.U64Bytes(1 << 40)}})
		}
	}
	for b := 0; b < w.PreloadBlocks; b++ {
		for t := 0; t < w.TxPerBlock; t++ {
			ops = append(ops, w.transfer(rng))
		}
	}
	if err := c.preloadOps(ops, w.TxPerBlock); err != nil {
		return err
	}
	// Fail fast when the index is off — every analytical op would error.
	if _, err := c.Client(0).Analytics(AnalyticsQuery{Op: AnalyticsSum, From: 1}); err != nil {
		return fmt.Errorf("htap needs the analytics index (-popt index=on): %w", err)
	}
	return nil
}

// Next emits the next OLTP transfer; every QueryEvery-th call first
// runs one synchronous analytical query at the generating client's
// server, so analytical read latency directly throttles the submit
// side — the HTAP interference under test.
func (w *HTAP) Next(clientID int, rng *rand.Rand) Op {
	if len(w.accts) == 0 {
		return Op{Value: 1} // Init never ran (SkipInit): degrade, don't panic
	}
	n := w.ops.Add(1)
	if w.cluster != nil && n%uint64(w.QueryEvery) == 0 {
		w.analyticalQuery(int(n)/w.QueryEvery, clientID, rng)
	}
	return w.transfer(rng)
}

// transfer draws one OLTP value transfer between workload accounts.
func (w *HTAP) transfer(rng *rand.Rand) Op {
	from := rng.Intn(len(w.accts))
	to := (from + 1 + rng.Intn(max(len(w.accts)-1, 1))) % len(w.accts)
	val := uint64(1 + rng.Intn(1000))
	if w.hyperledger {
		return Op{Contract: "versionkv", Method: "sendValue",
			Args: [][]byte{w.accts[from].Bytes(), w.accts[to].Bytes(), types.U64Bytes(val)}}
	}
	return Op{To: w.accts[to], Value: val}
}

// analyticalQuery runs one scan over the trailing Window of blocks,
// rotating through the three query shapes. To is left open (0): the
// server clamps it to its confirmation height, so scans only ever see
// committed history.
func (w *HTAP) analyticalQuery(seq, clientID int, rng *rand.Rand) {
	client := w.cluster.Client(clientID % len(w.cluster.keys))
	var from uint64 = 1
	if h := w.lastHeight.Load(); h > w.Window {
		from = h - w.Window
	}
	q := AnalyticsQuery{From: from, K: w.K}
	switch seq % 3 {
	case 0:
		q.Op = AnalyticsSum
	case 1:
		q.Op = AnalyticsMaxDelta
		if w.hyperledger {
			q.Op = AnalyticsMaxVersion
		}
		q.Account = w.accts[rng.Intn(len(w.accts))]
	case 2:
		q.Op = AnalyticsTopK
		q.Account = w.accts[rng.Intn(len(w.accts))]
	}
	res, err := client.Analytics(q)
	if err != nil {
		return // a crashed/partitioned server: the OLTP side keeps going
	}
	w.queries.Add(1)
	// Advance the window to the newest height this query covered.
	for {
		prev := w.lastHeight.Load()
		if res.Height <= prev || w.lastHeight.CompareAndSwap(prev, res.Height) {
			return
		}
	}
}
