package blockbench

import (
	"sync/atomic"

	"blockbench/internal/crypto"
	"blockbench/internal/node"
	"blockbench/internal/trace"
	"blockbench/internal/types"
)

// Op is one workload operation, wrapped by the driver into a blockchain
// transaction (IWorkloadConnector's getNextTransaction output).
type Op struct {
	Contract string // empty = plain value transfer
	Method   string
	Args     [][]byte
	Value    uint64
	To       Address // value-transfer recipient
	GasLimit uint64  // 0 = the driver default
}

// DefaultGasLimit is attached to operations that do not set their own.
const DefaultGasLimit = 500_000

// Client is the paper's IBlockchainConnector client half: one identity
// talking to one server, submitting transactions asynchronously and
// polling confirmed blocks.
type Client struct {
	cluster   *Cluster
	key       *crypto.Key
	server    atomic.Int32
	signLocal bool
	id        int
	nonce     atomic.Uint64
}

// ID returns the client's index.
func (c *Client) ID() int { return c.id }

// Server returns the index of the server node this client submits to
// and polls.
func (c *Client) Server() int { return int(c.server.Load()) }

// Failover re-points the client at another server, keeping its identity
// and nonce sequence (rebuilding the client would restart the nonce and
// collide with transactions already committed). The driver calls it
// when submissions to the current server keep failing.
func (c *Client) Failover(server int) { c.server.Store(int32(server)) }

// nodeRef resolves the server index to its current incarnation on every
// call: after a crash-recovery the previous *node.Node is a stopped
// husk, so holding a pointer across calls would wedge the client.
func (c *Client) nodeRef() *node.Node { return c.cluster.nodeAt(int(c.server.Load())) }

// Address returns the client's account address.
func (c *Client) Address() Address { return c.key.Address() }

// buildTx turns an operation into a transaction, assigning a fresh nonce
// and signing client-side unless the platform signs at the server
// (Parity).
func (c *Client) buildTx(op Op) (*types.Transaction, error) {
	gas := op.GasLimit
	if gas == 0 {
		gas = DefaultGasLimit
	}
	tx := &types.Transaction{
		Nonce:    c.nonce.Add(1),
		From:     c.key.Address(),
		To:       op.To,
		Value:    op.Value,
		Contract: op.Contract,
		Method:   op.Method,
		Args:     op.Args,
		GasLimit: gas,
	}
	if c.signLocal {
		if err := crypto.SignTx(tx, c.key); err != nil {
			return nil, err
		}
	}
	return tx, nil
}

// Send submits an operation asynchronously, returning the transaction ID
// to poll for.
func (c *Client) Send(op Op) (Hash, error) {
	tx, err := c.buildTx(op)
	if err != nil {
		return Hash{}, err
	}
	// The submit stamp opens the lifecycle span (sampling is decided
	// here, once, from the ID) before the server can race ahead to the
	// later stages. A rejected submission will never confirm, so its
	// span is discarded rather than left live until the next run.
	tracer := c.cluster.inner.Tracer()
	tracer.Stamp(tx.Hash(), trace.StageSubmit)
	id, err := c.nodeRef().SendTransaction(tx)
	if err != nil {
		tracer.Abort(tx.Hash())
	}
	return id, err
}

// BlocksFrom polls confirmed blocks above height h (getLatestBlock).
func (c *Client) BlocksFrom(h uint64) ([]node.BlockInfo, error) {
	return c.nodeRef().BlocksFrom(h)
}

// Height returns the confirmed chain height at the client's server.
func (c *Client) Height() (uint64, error) { return c.nodeRef().Height() }

// Committed reports whether the transaction is on the confirmed chain.
func (c *Client) Committed(id Hash) (bool, error) {
	r, ok, err := c.nodeRef().Receipt(id)
	if err != nil || !ok {
		return false, err
	}
	_ = r
	return true, nil
}

// Query runs a read-only contract method at the client's server.
func (c *Client) Query(contract, method string, args ...[]byte) ([]byte, error) {
	return c.nodeRef().Query(contract, method, args)
}

// Analytics runs one server-side analytics query at the client's
// server — the indexed read path behind `-wopt mode=indexed`: the
// whole historical scan costs a single round trip.
func (c *Client) Analytics(q AnalyticsQuery) (AnalyticsResult, error) {
	return c.nodeRef().AnalyticsQuery(q)
}

// Block fetches a full block (analytics Q1 uses one RPC per block).
func (c *Client) Block(number uint64) (*types.Block, error) {
	return c.nodeRef().Block(number)
}

// BalanceAt reads an account balance at a block height (analytics Q2 on
// Ethereum/Parity: one RPC per block scanned).
func (c *Client) BalanceAt(addr Address, number uint64) (uint64, error) {
	return c.nodeRef().BalanceAt(addr, number)
}
