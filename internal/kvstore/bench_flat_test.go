// Flat-state cache benchmark. This file is in package kvstore_test so
// it can import internal/state (which itself imports kvstore) without a
// cycle — the flat layer's point is precisely the boundary between the
// two packages.
package kvstore_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"blockbench/internal/kvstore"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

// BenchmarkFlatCacheHit measures head-state point reads through the
// flat snapshot layer over the LSM engine: after a few thousand
// accounts are committed, repeated reads must be served by the flat
// layer (flat-hit% ≈ 100) at in-memory cost instead of a trie walk
// ending in run probes.
func BenchmarkFlatCacheHit(b *testing.B) {
	store, err := kvstore.OpenLSM(b.TempDir(), kvstore.LSMOptions{SyncBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()

	const accounts = 4096
	flat := state.NewFlatState(store, accounts)
	cache := state.NewSharedCache(1024)
	root := types.ZeroHash
	fb, err := state.NewFlatBackend(store, root, cache, flat)
	if err != nil {
		b.Fatal(err)
	}
	db := state.NewDB(fb)
	for i := 0; i < accounts; i++ {
		db.SetState("bench", []byte(fmt.Sprintf("acct-%06d", i)), types.U64Bytes(uint64(i)))
	}
	root, err = db.Commit()
	if err != nil {
		b.Fatal(err)
	}

	// A fresh backend at the head root, as the per-block state factory
	// would open it; the shared FlatState carries the hot set across.
	fb2, err := state.NewFlatBackend(store, root, cache, flat)
	if err != nil {
		b.Fatal(err)
	}
	headDB := state.NewDB(fb2)

	const gets = 10_000
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		start := time.Now()
		for g := 0; g < gets; g++ {
			k := []byte(fmt.Sprintf("acct-%06d", rng.Intn(accounts)))
			if v := headDB.GetState("bench", k); v == nil {
				b.Fatalf("lost account %s", k)
			}
		}
		b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(gets)/1e3, "us/get")
	}
	c := flat.Counters()
	if total := c["store.flat_hits"] + c["store.flat_misses"]; total > 0 {
		b.ReportMetric(100*float64(c["store.flat_hits"])/float64(total), "flat-hit%")
	}
}
