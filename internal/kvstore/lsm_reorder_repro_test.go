package kvstore

import (
	"bytes"
	"fmt"
	"testing"
)

// Repro: a tiered compaction of a middle window (lo > 0) writes the
// merged run under the highest sequence number; after reopen, loadRuns
// orders it as the newest run and its stale values shadow newer runs.
func TestReopenAfterMiddleWindowCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := LSMOptions{
		MemTableBytes: 1 << 20,
		MaxRuns:       100,
		Fanout:        2,
		BudgetFactor:  1,
		SyncBytes:     -1,
	}
	s, err := OpenLSM(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	put := func(k, v string) {
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	flush := func() {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	pad := bytes.Repeat([]byte("x"), 8<<10)
	// r0 (tier 1): old acct value plus padding.
	put("acct", "v1")
	for i := 0; i < 5; i++ {
		put(fmt.Sprintf("p0-%02d", i), string(pad))
	}
	flush()
	// r1 (tier 1): padding only.
	for i := 0; i < 5; i++ {
		put(fmt.Sprintf("p1-%02d", i), string(pad))
	}
	flush()
	// r2 (tier 0): newer acct value.
	put("acct", "v2")
	flush()
	// r3 (tier 2+): pump debt so the [r1, r0] tier-1 window merges.
	for i := 0; i < 24; i++ {
		put(fmt.Sprintf("big-%02d", i), string(pad))
	}
	flush()

	t.Logf("runs after compaction: %d, compactions=%d", len(s.runs), s.compactions.Load())
	for i, r := range s.runs {
		t.Logf("  runs[%d] = %s size=%d", i, r.path, r.size)
	}

	v, ok, err := s.Get([]byte("acct"))
	if err != nil || !ok {
		t.Fatalf("pre-restart get: %v %v", ok, err)
	}
	t.Logf("pre-restart acct=%s", v)
	if string(v) != "v2" {
		t.Fatalf("pre-restart: got %s want v2", v)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenLSM(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, r := range s2.runs {
		t.Logf("  reopened runs[%d] = %s", i, r.path)
	}
	v, ok, err = s2.Get([]byte("acct"))
	if err != nil || !ok {
		t.Fatalf("post-restart get: %v %v", ok, err)
	}
	if string(v) != "v2" {
		t.Fatalf("post-restart: got %s want v2 (stale value resurrected)", v)
	}
}
