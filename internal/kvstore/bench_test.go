package kvstore

import (
	"fmt"
	"testing"
)

func BenchmarkMemPut(b *testing.B) {
	s := NewMem()
	defer s.Close()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

func BenchmarkLSMPut(b *testing.B) {
	s, err := OpenLSM(b.TempDir(), LSMOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

func BenchmarkLSMGet(b *testing.B) {
	s, err := OpenLSM(b.TempDir(), LSMOptions{MemTableBytes: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const keys = 10_000
	for i := 0; i < keys; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), make([]byte, 100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Get([]byte(fmt.Sprintf("key-%09d", i%keys))); err != nil {
			b.Fatal(err)
		}
	}
}
