package kvstore

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func BenchmarkMemPut(b *testing.B) {
	s := NewMem()
	defer s.Close()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

func BenchmarkLSMPut(b *testing.B) {
	s, err := OpenLSM(b.TempDir(), LSMOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

func BenchmarkLSMGet(b *testing.B) {
	s, err := OpenLSM(b.TempDir(), LSMOptions{MemTableBytes: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const keys = 10_000
	for i := 0; i < keys; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), make([]byte, 100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Get([]byte(fmt.Sprintf("key-%09d", i%keys))); err != nil {
			b.Fatal(err)
		}
	}
}

// fillStore loads `keys` sequential 100-byte records through the normal
// write path (WAL, flushes, paced compaction), so reads afterwards face
// the run layout a real chain history produces.
func fillStore(b *testing.B, s Store, keys int) {
	b.Helper()
	val := make([]byte, 100)
	for i := 0; i < keys; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%09d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPointRead fills the store and measures uniform-random point
// reads with a fixed internal loop, reporting us/get so the figure
// survives -benchtime 1x. The claim under test: LSM point-read latency
// stays O(1) in history length (bloom filters + sparse index mean at
// most one data-block read per run).
func benchPointRead(b *testing.B, s Store, keys, gets int) {
	fillStore(b, s, keys)
	benchFilledPointRead(b, s, keys, gets)
}

func benchFilledPointRead(b *testing.B, s Store, keys, gets int) {
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		start := time.Now()
		for g := 0; g < gets; g++ {
			k := []byte(fmt.Sprintf("key-%09d", rng.Intn(keys)))
			if _, ok, err := s.Get(k); err != nil || !ok {
				b.Fatalf("get: %v %v", ok, err)
			}
		}
		b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(gets)/1e3, "us/get")
	}
	b.ReportMetric(float64(s.Stats().MemBytes)/(1<<20), "resident-MB")
}

func BenchmarkLSMPointRead(b *testing.B) {
	for _, tc := range []struct {
		name string
		keys int
	}{{"keys=10k", 10_000}, {"keys=100k", 100_000}, {"keys=1M", 1_000_000}} {
		b.Run(tc.name, func(b *testing.B) {
			s, err := OpenLSM(b.TempDir(), LSMOptions{SyncBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			fillStore(b, s, tc.keys)
			// Flush so every size measures the disk path; without this the
			// smallest store would be answered from the memtable alone and
			// the O(1)-in-history comparison would be apples to oranges.
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
			benchFilledPointRead(b, s, tc.keys, 10_000)
			c := s.Counters()
			if p := c["store.bloom_probes"]; p > 0 {
				b.ReportMetric(100*float64(c["store.bloom_skips"])/float64(p), "bloomskip%")
			}
		})
	}
}

// BenchmarkMemPointRead is the unbounded-memory baseline the LSM figure
// is read against: reads are map lookups, but resident-MB grows with
// history length instead of staying bounded.
func BenchmarkMemPointRead(b *testing.B) {
	for _, tc := range []struct {
		name string
		keys int
	}{{"keys=10k", 10_000}, {"keys=100k", 100_000}, {"keys=1M", 1_000_000}} {
		b.Run(tc.name, func(b *testing.B) {
			s := NewMem()
			defer s.Close()
			benchPointRead(b, s, tc.keys, 10_000)
		})
	}
}

// BenchmarkLSMRangeScan measures the streaming k-way merge: 1000-key
// windows from random starting points over a 100k-key store.
func BenchmarkLSMRangeScan(b *testing.B) {
	s, err := OpenLSM(b.TempDir(), LSMOptions{SyncBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const keys, window, scans = 100_000, 1000, 50
	fillStore(b, s, keys)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		start := time.Now()
		for sc := 0; sc < scans; sc++ {
			lo := rng.Intn(keys - window)
			visited := 0
			err := s.Iterate([]byte(fmt.Sprintf("key-%09d", lo)),
				[]byte(fmt.Sprintf("key-%09d", lo+window)), func(_, _ []byte) bool {
					visited++
					return true
				})
			if err != nil || visited != window {
				b.Fatalf("scan visited %d of %d: %v", visited, window, err)
			}
		}
		b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(scans)/1e3, "us/scan")
	}
}
