package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// storeFactories lets every conformance test run against both engines.
func storeFactories(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMem() },
		"lsm": func() Store {
			s, err := OpenLSM(t.TempDir(), LSMOptions{MemTableBytes: 1 << 12, MaxRuns: 3})
			if err != nil {
				t.Fatalf("open lsm: %v", err)
			}
			return s
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()

			if _, ok, _ := s.Get([]byte("missing")); ok {
				t.Fatal("found missing key")
			}
			if err := s.Put([]byte("a"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := s.Get([]byte("a"))
			if err != nil || !ok || string(v) != "1" {
				t.Fatalf("get a = %q %v %v", v, ok, err)
			}
			if err := s.Put([]byte("a"), []byte("2")); err != nil {
				t.Fatal(err)
			}
			v, _, _ = s.Get([]byte("a"))
			if string(v) != "2" {
				t.Fatal("overwrite failed")
			}
			if err := s.Delete([]byte("a")); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := s.Get([]byte("a")); ok {
				t.Fatal("delete failed")
			}
		})
	}
}

func TestStoreIterateOrdered(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			for _, k := range []string{"d", "a", "c", "b", "e"} {
				if err := s.Put([]byte(k), []byte("v"+k)); err != nil {
					t.Fatal(err)
				}
			}
			var got []string
			err := s.Iterate([]byte("b"), []byte("e"), func(k, v []byte) bool {
				got = append(got, string(k))
				if string(v) != "v"+string(k) {
					t.Fatalf("value mismatch for %s", k)
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"b", "c", "d"}
			if len(got) != len(want) {
				t.Fatalf("got %v want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("got %v want %v", got, want)
				}
			}
		})
	}
}

func TestStoreIterateEarlyStop(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			for i := 0; i < 10; i++ {
				s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
			}
			n := 0
			s.Iterate(nil, nil, func(k, v []byte) bool {
				n++
				return n < 3
			})
			if n != 3 {
				t.Fatalf("visited %d, want 3", n)
			}
		})
	}
}

func TestStoreMatchesModel(t *testing.T) {
	// Property test: both engines must behave identically to a map model
	// under a random operation sequence.
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			model := make(map[string]string)
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("key-%03d", rng.Intn(200))
				switch rng.Intn(3) {
				case 0:
					v := fmt.Sprintf("val-%d", i)
					if err := s.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				case 1:
					if err := s.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				case 2:
					v, ok, err := s.Get([]byte(k))
					if err != nil {
						t.Fatal(err)
					}
					mv, mok := model[k]
					if ok != mok || (ok && string(v) != mv) {
						t.Fatalf("op %d: get %s = %q,%v want %q,%v", i, k, v, ok, mv, mok)
					}
				}
			}
			// Final full scan must equal the model.
			got := make(map[string]string)
			s.Iterate(nil, nil, func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			})
			if len(got) != len(model) {
				t.Fatalf("scan size %d, model %d", len(got), len(model))
			}
			for k, v := range model {
				if got[k] != v {
					t.Fatalf("scan mismatch at %s", k)
				}
			}
		})
	}
}

func TestMemCapEnforced(t *testing.T) {
	s := NewMemCapped(64)
	defer s.Close()
	if err := s.Put([]byte("k"), make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k2"), make([]byte, 64)); err != ErrMemoryFull {
		t.Fatalf("want ErrMemoryFull, got %v", err)
	}
	// Overwrite shrinking usage must succeed.
	if err := s.Put([]byte("k"), make([]byte, 8)); err != nil {
		t.Fatalf("shrinking overwrite failed: %v", err)
	}
}

func TestMemStatsBytes(t *testing.T) {
	s := NewMem()
	defer s.Close()
	s.Put([]byte("abc"), []byte("12345"))
	if got := s.Stats().MemBytes; got != 8 {
		t.Fatalf("MemBytes = %d, want 8", got)
	}
	s.Delete([]byte("abc"))
	if got := s.Stats().MemBytes; got != 0 {
		t.Fatalf("MemBytes after delete = %d, want 0", got)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Close()
			if err := s.Put([]byte("k"), []byte("v")); err != ErrClosed {
				t.Fatalf("Put on closed = %v", err)
			}
			if _, _, err := s.Get([]byte("k")); err != ErrClosed {
				t.Fatalf("Get on closed = %v", err)
			}
		})
	}
}

func TestLSMFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLSM(dir, LSMOptions{MemTableBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("k050"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok, _ := s2.Get([]byte("k042"))
	if !ok || string(v) != "v42" {
		t.Fatalf("reopen lost data: %q %v", v, ok)
	}
	if _, ok, _ := s2.Get([]byte("k050")); ok {
		t.Fatal("tombstone lost on reopen")
	}
}

func TestLSMWALRecoveryWithoutFlush(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLSM(dir, LSMOptions{MemTableBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("durable"), []byte("yes"))
	// Simulate crash: close without explicit flush (Close flushes the WAL
	// buffer but leaves the memtable unflushed; reopen must replay WAL).
	s.Close()

	s2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok, _ := s2.Get([]byte("durable"))
	if !ok || string(v) != "yes" {
		t.Fatal("WAL replay lost write")
	}
}

func TestLSMCompactionReducesRuns(t *testing.T) {
	s, err := OpenLSM(t.TempDir(), LSMOptions{MemTableBytes: 256, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i%50)), bytes.Repeat([]byte{byte(i)}, 32))
	}
	s.mu.RLock()
	nruns := len(s.runs)
	s.mu.RUnlock()
	if nruns > 3 {
		t.Fatalf("compaction not keeping runs bounded: %d", nruns)
	}
	// All 50 live keys must still resolve to their latest value.
	for i := 450; i < 500; i++ {
		k := fmt.Sprintf("k%04d", i%50)
		v, ok, err := s.Get([]byte(k))
		if err != nil || !ok {
			t.Fatalf("lost key %s: %v", k, err)
		}
		if v[0] != byte(i) {
			t.Fatalf("stale value for %s: got %d want %d", k, v[0], byte(i))
		}
	}
}

func TestLSMDiskBytesGrow(t *testing.T) {
	s, err := OpenLSM(t.TempDir(), LSMOptions{MemTableBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("key-%04d", i)), make([]byte, 100))
	}
	if s.Stats().DiskBytes == 0 {
		t.Fatal("disk bytes not accounted")
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(k string, v []byte, del bool) bool {
		var buf bytes.Buffer
		if err := writeRecord(&buf, k, v, del); err != nil {
			return false
		}
		k2, v2, del2, err := readRecord(&buf)
		return err == nil && k2 == k && bytes.Equal(v2, v) && del2 == del
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
