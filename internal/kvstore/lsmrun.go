package kvstore

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// This file holds the on-disk run format and its read paths: the bloom
// filter and sparse block index persisted in each run's footer, the
// refcounted run handle, streaming per-run iterators, and the k-way
// heap merge shared by Iterate and compaction.
//
// Run file layout (all integers little-endian):
//
//	records   flag(1) klen(4) vlen(4) key val, sorted by key
//	bloom     k(4) words(4) bits(8*words)
//	index     count(4), then per entry: klen(2) key off(8)
//	footer    dataLen(8) bloomLen(8) indexLen(8) count(8) magic(8)
//
// The sparse index holds every indexStride-th key plus the last key, so
// a point Get binary-searches the in-memory index and reads exactly one
// bounded file region (at most indexStride records). The bloom filter
// holds every key in the run (including tombstones — a tombstone must
// shadow older runs), so a negative probe skips the file entirely.

const (
	runMagic    = 0x4c534d3252554e32 // "LSM2RUN2"
	runFooterSz = 40
	indexStride = 16
)

// bloom is a blocked (register/cache-line local) Bloom filter over run
// keys: h1 picks one 512-bit block, and all k probe bits land inside
// it, so a probe costs one cache line regardless of filter size. The
// false-positive rate is slightly worse than an ideal split filter at
// equal bits, but on a million-key run the ideal filter's k scattered
// DRAM reads cost more than the extra fraction of a percent FP.
type bloom struct {
	bits []uint64 // whole blocks: len is a multiple of bloomBlockWords
	k    uint32
}

// bloomBlockWords is one cache line (64 bytes) of filter per block.
const bloomBlockWords = 8

func bloomHash(key string) (h1, h2 uint64) {
	// FNV-1a, then derive the second hash by rotation (Kirsch-Mitzenmacher
	// double hashing: bit_i = h1 + i*h2).
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	h1 = h
	h2 = h>>33 | h<<31
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

func buildBloom(keys []string, bitsPerKey int) bloom {
	nbits := len(keys) * bitsPerKey
	blocks := (nbits + 511) / 512
	if blocks < 1 {
		blocks = 1
	}
	// Optimal k ≈ bitsPerKey * ln 2; clamp so every probe bit fits in the
	// 63 bits of in-block entropy a rotated h2 provides (7 × 9 bits).
	k := uint32(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 7 {
		k = 7
	}
	b := bloom{bits: make([]uint64, blocks*bloomBlockWords), k: k}
	for _, key := range keys {
		h1, h2 := bloomHash(key)
		block := b.bits[(h1%uint64(blocks))*bloomBlockWords:][:bloomBlockWords]
		for i := uint32(0); i < k; i++ {
			bit := h2 & 511
			block[bit/64] |= 1 << (bit % 64)
			h2 = h2>>9 | h2<<55
		}
	}
	return b
}

func (b bloom) mayContain(key string) bool {
	if len(b.bits) == 0 {
		return true
	}
	blocks := uint64(len(b.bits) / bloomBlockWords)
	h1, h2 := bloomHash(key)
	block := b.bits[(h1%blocks)*bloomBlockWords:][:bloomBlockWords]
	for i := uint32(0); i < b.k; i++ {
		bit := h2 & 511
		if block[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
		h2 = h2>>9 | h2<<55
	}
	return true
}

// run is an immutable sorted file plus its in-memory bloom filter and
// sparse index. Iterators hold a reference so compaction can retire a
// run without invalidating readers mid-scan; the file is closed (and,
// if obsolete, removed) when the last reference is released.
type run struct {
	path    string
	f       *os.File
	size    int64 // total file size including footer
	dataLen int64 // record section length
	count   int
	filter  bloom
	idxKeys []string
	idxOffs []int64
	minKey  string
	maxKey  string
	aux     int64 // resident bytes of filter + index

	refs     atomic.Int32
	obsolete atomic.Bool
}

func (r *run) acquire() { r.refs.Add(1) }

func (r *run) release() {
	if r.refs.Add(-1) == 0 {
		r.f.Close()
		if r.obsolete.Load() {
			os.Remove(r.path)
		}
	}
}

// retire drops the store's own reference and marks the file for removal.
func (r *run) retire() {
	r.obsolete.Store(true)
	r.release()
}

// runWriter streams sorted records into a new run file, accumulating the
// bloom keys and sparse index, then seals them into the footer.
type runWriter struct {
	path       string
	f          *os.File
	w          *bufio.Writer
	off        int64
	count      int
	keys       []string // every key, for the bloom
	idxKeys    []string
	idxOffs    []int64
	lastKey    string
	lastOff    int64
	bitsPerKey int
}

func newRunWriter(path string, bitsPerKey int) (*runWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &runWriter{path: path, f: f, w: bufio.NewWriterSize(f, 1<<16), bitsPerKey: bitsPerKey}, nil
}

// add appends one record; keys must arrive in strictly ascending order.
func (rw *runWriter) add(k string, v []byte, del bool) error {
	if rw.count%indexStride == 0 {
		rw.idxKeys = append(rw.idxKeys, k)
		rw.idxOffs = append(rw.idxOffs, rw.off)
	}
	rw.lastKey, rw.lastOff = k, rw.off
	if err := writeRecord(rw.w, k, v, del); err != nil {
		return err
	}
	rw.keys = append(rw.keys, k)
	rw.off += int64(9 + len(k) + len(v))
	rw.count++
	return nil
}

// finish seals the run and reopens it read-only. An empty run (possible
// when compaction drops every tombstone) yields (nil, nil) and removes
// the file.
func (rw *runWriter) finish() (*run, error) {
	if rw.count == 0 {
		rw.f.Close()
		os.Remove(rw.path)
		return nil, nil
	}
	if rw.idxKeys[len(rw.idxKeys)-1] != rw.lastKey {
		rw.idxKeys = append(rw.idxKeys, rw.lastKey)
		rw.idxOffs = append(rw.idxOffs, rw.lastOff)
	}
	dataLen := rw.off
	filter := buildBloom(rw.keys, rw.bitsPerKey)

	var scratch [10]byte
	binary.LittleEndian.PutUint32(scratch[0:4], filter.k)
	binary.LittleEndian.PutUint32(scratch[4:8], uint32(len(filter.bits)))
	if _, err := rw.w.Write(scratch[:8]); err != nil {
		return nil, err
	}
	for _, word := range filter.bits {
		binary.LittleEndian.PutUint64(scratch[:8], word)
		if _, err := rw.w.Write(scratch[:8]); err != nil {
			return nil, err
		}
	}
	bloomLen := int64(8 + 8*len(filter.bits))

	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(rw.idxKeys)))
	if _, err := rw.w.Write(scratch[:4]); err != nil {
		return nil, err
	}
	idxLen := int64(4)
	for i, k := range rw.idxKeys {
		binary.LittleEndian.PutUint16(scratch[0:2], uint16(len(k)))
		if _, err := rw.w.Write(scratch[:2]); err != nil {
			return nil, err
		}
		if _, err := io.WriteString(rw.w, k); err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint64(scratch[0:8], uint64(rw.idxOffs[i]))
		if _, err := rw.w.Write(scratch[:8]); err != nil {
			return nil, err
		}
		idxLen += int64(2 + len(k) + 8)
	}

	var footer [runFooterSz]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(dataLen))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(bloomLen))
	binary.LittleEndian.PutUint64(footer[16:24], uint64(idxLen))
	binary.LittleEndian.PutUint64(footer[24:32], uint64(rw.count))
	binary.LittleEndian.PutUint64(footer[32:40], runMagic)
	if _, err := rw.w.Write(footer[:]); err != nil {
		return nil, err
	}
	if err := rw.w.Flush(); err != nil {
		rw.f.Close()
		return nil, err
	}
	if err := rw.f.Sync(); err != nil {
		rw.f.Close()
		return nil, err
	}
	rf, err := os.Open(rw.path)
	rw.f.Close()
	if err != nil {
		return nil, err
	}
	r := &run{
		path:    rw.path,
		f:       rf,
		size:    dataLen + bloomLen + idxLen + runFooterSz,
		dataLen: dataLen,
		count:   rw.count,
		filter:  filter,
		idxKeys: rw.idxKeys,
		idxOffs: rw.idxOffs,
		minKey:  rw.idxKeys[0],
		maxKey:  rw.idxKeys[len(rw.idxKeys)-1],
	}
	r.aux = runAuxBytes(r)
	r.refs.Store(1)
	return r, nil
}

func runAuxBytes(r *run) int64 {
	aux := int64(8 * len(r.filter.bits))
	for _, k := range r.idxKeys {
		aux += int64(len(k) + 8)
	}
	return aux
}

// openRun loads a sealed run's footer, bloom filter and sparse index
// without touching the record section.
func openRun(path string) (*run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*run, error) {
		f.Close()
		return nil, fmt.Errorf("kvstore: open run %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if st.Size() < runFooterSz {
		return fail(fmt.Errorf("truncated (size %d)", st.Size()))
	}
	var footer [runFooterSz]byte
	if _, err := f.ReadAt(footer[:], st.Size()-runFooterSz); err != nil {
		return fail(err)
	}
	if binary.LittleEndian.Uint64(footer[32:40]) != runMagic {
		return fail(fmt.Errorf("bad footer magic"))
	}
	dataLen := int64(binary.LittleEndian.Uint64(footer[0:8]))
	bloomLen := int64(binary.LittleEndian.Uint64(footer[8:16]))
	idxLen := int64(binary.LittleEndian.Uint64(footer[16:24]))
	count := int(binary.LittleEndian.Uint64(footer[24:32]))
	if dataLen+bloomLen+idxLen+runFooterSz != st.Size() {
		return fail(fmt.Errorf("inconsistent section lengths"))
	}

	meta := make([]byte, bloomLen+idxLen)
	if _, err := f.ReadAt(meta, dataLen); err != nil {
		return fail(err)
	}
	if bloomLen < 8 {
		return fail(fmt.Errorf("short bloom section"))
	}
	filter := bloom{k: binary.LittleEndian.Uint32(meta[0:4])}
	words := int(binary.LittleEndian.Uint32(meta[4:8]))
	if int64(8+8*words) != bloomLen {
		return fail(fmt.Errorf("bloom length mismatch"))
	}
	filter.bits = make([]uint64, words)
	for i := 0; i < words; i++ {
		filter.bits[i] = binary.LittleEndian.Uint64(meta[8+8*i : 16+8*i])
	}

	idx := meta[bloomLen:]
	if len(idx) < 4 {
		return fail(fmt.Errorf("short index section"))
	}
	n := int(binary.LittleEndian.Uint32(idx[0:4]))
	idx = idx[4:]
	idxKeys := make([]string, 0, n)
	idxOffs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		if len(idx) < 2 {
			return fail(fmt.Errorf("index entry truncated"))
		}
		klen := int(binary.LittleEndian.Uint16(idx[0:2]))
		if len(idx) < 2+klen+8 {
			return fail(fmt.Errorf("index entry truncated"))
		}
		idxKeys = append(idxKeys, string(idx[2:2+klen]))
		idxOffs = append(idxOffs, int64(binary.LittleEndian.Uint64(idx[2+klen:10+klen])))
		idx = idx[10+klen:]
	}
	if len(idxKeys) == 0 {
		return fail(fmt.Errorf("empty index"))
	}
	r := &run{
		path:    path,
		f:       f,
		size:    st.Size(),
		dataLen: dataLen,
		count:   count,
		filter:  filter,
		idxKeys: idxKeys,
		idxOffs: idxOffs,
		minKey:  idxKeys[0],
		maxKey:  idxKeys[len(idxKeys)-1],
	}
	r.aux = runAuxBytes(r)
	r.refs.Store(1)
	return r, nil
}

// blockFor returns the file region [lo, hi) that may hold key: the span
// between the greatest indexed key <= key and the next indexed key.
func (r *run) blockFor(key string) (lo, hi int64) {
	i := sort.SearchStrings(r.idxKeys, key) // first index >= key
	switch {
	case i < len(r.idxKeys) && r.idxKeys[i] == key:
		lo = r.idxOffs[i]
		if i+1 < len(r.idxOffs) {
			hi = r.idxOffs[i+1]
		} else {
			hi = r.dataLen
		}
	case i == 0:
		lo, hi = 0, 0 // key < minKey: not present
	default:
		lo = r.idxOffs[i-1]
		if i < len(r.idxOffs) {
			hi = r.idxOffs[i]
		} else {
			hi = r.dataLen
		}
	}
	return lo, hi
}

// get probes the run for key: min/max bounds, then the bloom filter,
// then a single bounded region read.
func (r *run) get(key string, probes, skips *atomic.Uint64) (v []byte, del, ok bool, err error) {
	if key < r.minKey || key > r.maxKey {
		return nil, false, false, nil
	}
	probes.Add(1)
	if !r.filter.mayContain(key) {
		skips.Add(1)
		return nil, false, false, nil
	}
	lo, hi := r.blockFor(key)
	if lo >= hi {
		return nil, false, false, nil
	}
	br := iterBufPool.Get().(*bufio.Reader)
	defer iterBufPool.Put(br)
	br.Reset(io.NewSectionReader(r.f, lo, hi-lo))
	// Step through the region without materialising the records we pass
	// over: peek the header and key in place, and only allocate for the
	// one value we return. A region holds at most indexStride records, so
	// this loop is the hot path of every disk-served point read.
	for {
		hdr, rerr := br.Peek(9)
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return nil, false, false, nil
		}
		if rerr != nil {
			return nil, false, false, rerr
		}
		d := hdr[0] == 1
		klen := int(binary.LittleEndian.Uint32(hdr[1:5]))
		vlen := int(binary.LittleEndian.Uint32(hdr[5:9]))
		if 9+klen > br.Size() {
			// Key longer than the peek window: fall back to a full decode.
			k, val, dd, rerr := readRecord(br)
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return nil, false, false, nil
			}
			if rerr != nil {
				return nil, false, false, rerr
			}
			if k == key {
				return val, dd, true, nil
			}
			if k > key {
				return nil, false, false, nil
			}
			continue
		}
		rec, rerr := br.Peek(9 + klen)
		if rerr != nil {
			return nil, false, false, nil // torn region tail
		}
		switch cmp := cmpBytesString(rec[9:], key); {
		case cmp == 0:
			if _, rerr := br.Discard(9 + klen); rerr != nil {
				return nil, false, false, rerr
			}
			val := make([]byte, vlen)
			if _, rerr := io.ReadFull(br, val); rerr != nil {
				return nil, false, false, io.ErrUnexpectedEOF
			}
			return val, d, true, nil
		case cmp > 0:
			return nil, false, false, nil
		default:
			if _, rerr := br.Discard(9 + klen + vlen); rerr != nil {
				return nil, false, false, nil // region ends before the key: absent
			}
		}
	}
}

// cmpBytesString is bytes.Compare across a []byte and a string without
// converting either (the conversion would allocate on the ordered
// branches the compiler cannot elide).
func cmpBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// iterBufPool recycles the buffered readers behind point-read regions
// and run iterators, so scan-heavy workloads do not reallocate buffers
// per probe.
var iterBufPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 32<<10) },
}

// kvIter is a sorted stream of (key, value, tombstone) records.
type kvIter interface {
	next() (k string, v []byte, del bool, ok bool, err error)
}

// runIterator streams a run's record section in key order, starting at
// the greatest indexed key <= start.
type runIterator struct {
	br    *bufio.Reader
	start string
	begun bool
}

func (r *run) iterator(start string) *runIterator {
	lo := int64(0)
	if start > r.minKey {
		lo, _ = r.blockFor(start)
	}
	br := iterBufPool.Get().(*bufio.Reader)
	br.Reset(io.NewSectionReader(r.f, lo, r.dataLen-lo))
	return &runIterator{br: br, start: start}
}

func (it *runIterator) next() (string, []byte, bool, bool, error) {
	for {
		key, v, del, err := readRecord(it.br)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return "", nil, false, false, nil
		}
		if err != nil {
			return "", nil, false, false, err
		}
		if !it.begun && key < it.start {
			continue
		}
		it.begun = true
		return key, v, del, true, nil
	}
}

func (it *runIterator) close() { iterBufPool.Put(it.br) }

// memEnt is one memtable record snapshotted for iteration.
type memEnt struct {
	k   string
	v   []byte
	del bool
}

// sliceIter streams a sorted []memEnt.
type sliceIter struct {
	ents []memEnt
	i    int
}

func (it *sliceIter) next() (string, []byte, bool, bool, error) {
	if it.i >= len(it.ents) {
		return "", nil, false, false, nil
	}
	e := it.ents[it.i]
	it.i++
	return e.k, e.v, e.del, true, nil
}

// mergeCursor is one source's head record inside the merge heap. Lower
// prio means newer (memtable = 0, then runs newest-first).
type mergeCursor struct {
	k    string
	v    []byte
	del  bool
	prio int
	it   kvIter
}

type mergeHeap []*mergeCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].k != h[j].k {
		return h[i].k < h[j].k
	}
	return h[i].prio < h[j].prio
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*mergeCursor)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeSources streams the k-way merge of sorted sources in ascending
// key order. For duplicate keys the lowest-prio (newest) record wins and
// the rest are discarded. fn returning false stops the merge.
func mergeSources(sources []kvIter, fn func(k string, v []byte, del bool) bool) error {
	h := make(mergeHeap, 0, len(sources))
	for prio, it := range sources {
		k, v, del, ok, err := it.next()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, &mergeCursor{k: k, v: v, del: del, prio: prio, it: it})
		}
	}
	heap.Init(&h)
	advance := func(c *mergeCursor) error {
		k, v, del, ok, err := c.it.next()
		if err != nil {
			return err
		}
		if !ok {
			heap.Pop(&h)
			return nil
		}
		c.k, c.v, c.del = k, v, del
		heap.Fix(&h, 0)
		return nil
	}
	for h.Len() > 0 {
		top := h[0]
		k, v, del := top.k, top.v, top.del
		if err := advance(top); err != nil {
			return err
		}
		// Discard older records for the same key.
		for h.Len() > 0 && h[0].k == k {
			if err := advance(h[0]); err != nil {
				return err
			}
		}
		if !fn(k, v, del) {
			return nil
		}
	}
	return nil
}
