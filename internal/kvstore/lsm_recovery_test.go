package kvstore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestLSMTornWALRecovery simulates a crash mid-append: the WAL is
// truncated inside its last record, and reopening must replay every
// complete record, drop the torn tail, and leave the log appendable.
func TestLSMTornWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLSM(dir, LSMOptions{SyncBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%02d", i)), []byte(fmt.Sprintf("value-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: each record is 9 + len(k) + len(v) bytes, so
	// cutting 5 bytes leaves key-09's record incomplete.
	wal := filepath.Join(dir, "wal.log")
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenLSM(dir, LSMOptions{SyncBytes: -1})
	if err != nil {
		t.Fatalf("reopen after torn WAL: %v", err)
	}
	for i := 0; i < 9; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v, ok, err := s2.Get([]byte(k))
		if err != nil || !ok || string(v) != fmt.Sprintf("value-%02d", i) {
			t.Fatalf("committed write %s lost after recovery: %q %v %v", k, v, ok, err)
		}
	}
	if _, ok, _ := s2.Get([]byte("key-09")); ok {
		t.Fatal("torn tail record survived recovery")
	}

	// The truncated log must accept appends and stay recoverable.
	if err := s2.Put([]byte("key-09"), []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	v, ok, _ := s3.Get([]byte("key-09"))
	if !ok || string(v) != "rewritten" {
		t.Fatalf("post-recovery append lost: %q %v", v, ok)
	}
	v, ok, _ = s3.Get([]byte("key-00"))
	if !ok || string(v) != "value-00" {
		t.Fatal("recovered write lost on second reopen")
	}
}

// TestMemLSMEquivalence is the cross-backend property test: a Mem store
// and an LSM store (sized to flush and compact constantly) driven by
// the same randomized Put/Delete/Iterate sequence must stay
// byte-identical, including range-scan contents and order.
func TestMemLSMEquivalence(t *testing.T) {
	mem := NewMem()
	defer mem.Close()
	lsm, err := OpenLSM(t.TempDir(), LSMOptions{MemTableBytes: 1 << 10, MaxRuns: 4, Fanout: 2, SyncBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lsm.Close()

	rng := rand.New(rand.NewSource(7))
	key := func() []byte { return []byte(fmt.Sprintf("key-%03d", rng.Intn(300))) }
	for i := 0; i < 5000; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			k, v := key(), []byte(fmt.Sprintf("val-%d", i))
			if err := mem.Put(k, v); err != nil {
				t.Fatal(err)
			}
			if err := lsm.Put(k, v); err != nil {
				t.Fatal(err)
			}
		case 6, 7:
			k := key()
			if err := mem.Delete(k); err != nil {
				t.Fatal(err)
			}
			if err := lsm.Delete(k); err != nil {
				t.Fatal(err)
			}
		case 8:
			k := key()
			mv, mok, _ := mem.Get(k)
			lv, lok, err := lsm.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if mok != lok || string(mv) != string(lv) {
				t.Fatalf("op %d: Get(%s) diverges: mem %q,%v lsm %q,%v", i, k, mv, mok, lv, lok)
			}
		default:
			// Random range scan; nil bounds sometimes.
			var start, end []byte
			if rng.Intn(2) == 0 {
				start = key()
			}
			if rng.Intn(2) == 0 {
				end = key()
			}
			type kv struct{ k, v string }
			var ms, ls []kv
			mem.Iterate(start, end, func(k, v []byte) bool {
				ms = append(ms, kv{string(k), string(v)})
				return true
			})
			if err := lsm.Iterate(start, end, func(k, v []byte) bool {
				ls = append(ls, kv{string(k), string(v)})
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(ms) != len(ls) {
				t.Fatalf("op %d: scan [%q,%q) sizes diverge: mem %d lsm %d", i, start, end, len(ms), len(ls))
			}
			for j := range ms {
				if ms[j] != ls[j] {
					t.Fatalf("op %d: scan entry %d diverges: mem %v lsm %v", i, j, ms[j], ls[j])
				}
			}
		}
	}
}

// TestLSMBloomSkipsNonResident checks the acceptance bar for the run
// filters: with keys striped across several runs, probes for keys a run
// does not hold (but whose range covers them) must be answered by the
// bloom filter — without touching data blocks — at least 90% of the
// time.
func TestLSMBloomSkipsNonResident(t *testing.T) {
	// Fanout 6 over 4 runs: no tiered window forms, so the four striped
	// runs stay separate.
	s, err := OpenLSM(t.TempDir(), LSMOptions{MemTableBytes: 1 << 30, MaxRuns: 10, Fanout: 6, SyncBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const stripes, total = 4, 4000
	for stripe := 0; stripe < stripes; stripe++ {
		for i := stripe; i < total; i += stripes {
			if err := s.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Counters(); c["store.flushes"] != stripes {
		t.Fatalf("flushes = %d, want %d", c["store.flushes"], stripes)
	}

	for i := 0; i < total; i++ {
		v, ok, err := s.Get([]byte(fmt.Sprintf("k%06d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("lost key %d across runs: %q %v %v", i, v, ok, err)
		}
	}

	c := s.Counters()
	probes, skips := c["store.bloom_probes"], c["store.bloom_skips"]
	// Every Get ends with one resident probe; all earlier probes hit runs
	// that do not hold the key.
	nonResident := probes - total
	if nonResident == 0 {
		t.Fatal("striped layout produced no cross-run probes")
	}
	if ratio := float64(skips) / float64(nonResident); ratio < 0.90 {
		t.Fatalf("bloom skipped %.1f%% of %d non-resident probes, want >= 90%%",
			100*ratio, nonResident)
	}
}

// TestLSMCrashCloseTornTail is the process-kill simulation: CrashClose
// abandons the buffered WAL tail and skips the final fsync, exactly like
// a SIGKILL between appends. A large unsynced record is left genuinely
// torn on disk (bufio flushes mid-record once the value outgrows the
// buffer), and reopening must recover the synced prefix, drop the torn
// record, and leave the store appendable.
func TestLSMCrashCloseTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLSM(dir, LSMOptions{}) // default 256 KiB group fsync
	if err != nil {
		t.Fatal(err)
	}
	// Crosses the group-sync threshold, so this record is on disk and
	// fsynced before the crash.
	durable := make([]byte, 300<<10)
	for i := range durable {
		durable[i] = byte(i)
	}
	if err := s.Put([]byte("durable"), durable); err != nil {
		t.Fatal(err)
	}
	// Below the sync threshold but above the 64 KiB WAL buffer: bufio
	// flushes the record's head to disk and keeps its tail in memory,
	// which CrashClose then abandons — a true torn record.
	if err := s.Put([]byte("torn"), make([]byte, 100<<10)); err != nil {
		t.Fatal(err)
	}
	if err := s.CrashClose(); err != nil {
		t.Fatal(err)
	}
	if err := s.CrashClose(); err != nil {
		t.Fatalf("CrashClose not idempotent: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after CrashClose: %v", err)
	}

	s2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	v, ok, err := s2.Get([]byte("durable"))
	if err != nil || !ok || len(v) != len(durable) {
		t.Fatalf("synced record lost: ok=%v err=%v len=%d", ok, err, len(v))
	}
	for i := range v {
		if v[i] != byte(i) {
			t.Fatalf("synced record corrupted at byte %d", i)
		}
	}
	if _, ok, _ := s2.Get([]byte("torn")); ok {
		t.Fatal("torn record survived the crash")
	}

	// The truncated WAL must accept appends and survive a clean cycle.
	if err := s2.Put([]byte("after"), []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if v, ok, _ := s3.Get([]byte("after")); !ok || string(v) != "recovery" {
		t.Fatalf("post-recovery append lost: %q %v", v, ok)
	}
}
