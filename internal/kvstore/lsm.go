package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// LSM is a log-structured merge store: writes go to a write-ahead log and
// an in-memory memtable; when the memtable exceeds a threshold it is
// flushed to an immutable sorted run on disk. Reads consult the memtable
// and then runs from newest to oldest. When the number of runs exceeds a
// threshold they are merge-compacted into one.
//
// It is deliberately compact but structurally faithful to LevelDB/RocksDB:
// the write amplification and disk footprint it exhibits under the IOHeavy
// workload are what the paper's data-model experiments measure.
type LSM struct {
	mu  sync.RWMutex
	dir string

	mem      map[string]entry
	memBytes int64
	runs     []*run // newest first

	wal     *os.File
	walBuf  *bufio.Writer
	walSize int64

	memLimit int64
	maxRuns  int
	nextRun  int

	reads, writes, dels uint64
	closed              bool
}

type entry struct {
	value   []byte
	deleted bool
}

// run is an immutable sorted file plus its in-memory sparse index
// (here: full key index, since runs are modest in the simulations).
type run struct {
	path string
	keys []string
	offs []int64
	size int64
	f    *os.File
}

// LSMOptions tunes the engine.
type LSMOptions struct {
	MemTableBytes int64 // flush threshold (default 4 MiB)
	MaxRuns       int   // compaction trigger (default 6)
}

// OpenLSM opens (or creates) a store in dir, replaying any existing WAL.
func OpenLSM(dir string, opts LSMOptions) (*LSM, error) {
	if opts.MemTableBytes <= 0 {
		opts.MemTableBytes = 4 << 20
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 6
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: open lsm: %w", err)
	}
	s := &LSM{
		dir:      dir,
		mem:      make(map[string]entry),
		memLimit: opts.MemTableBytes,
		maxRuns:  opts.MaxRuns,
	}
	if err := s.loadRuns(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *LSM) loadRuns() error {
	matches, err := filepath.Glob(filepath.Join(s.dir, "run-*.sst"))
	if err != nil {
		return err
	}
	sort.Strings(matches)
	// Newest runs have the highest sequence number; keep newest first.
	for i := len(matches) - 1; i >= 0; i-- {
		r, err := openRun(matches[i])
		if err != nil {
			return err
		}
		s.runs = append(s.runs, r)
		var seq int
		fmt.Sscanf(filepath.Base(matches[i]), "run-%d.sst", &seq)
		if seq >= s.nextRun {
			s.nextRun = seq + 1
		}
	}
	return nil
}

func (s *LSM) walPath() string { return filepath.Join(s.dir, "wal.log") }

func (s *LSM) openWAL() error {
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	s.wal = f
	s.walBuf = bufio.NewWriter(f)
	s.walSize = st.Size()
	return nil
}

// replayWAL restores memtable contents from a previous crash.
func (s *LSM) replayWAL() error {
	f, err := os.Open(s.walPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		k, v, del, err := readRecord(r)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// A torn tail record is expected after a crash; everything
			// before it is durable.
			return nil
		}
		if err != nil {
			return fmt.Errorf("kvstore: replay wal: %w", err)
		}
		s.memApply(k, v, del)
	}
}

func (s *LSM) memApply(k string, v []byte, del bool) {
	if old, ok := s.mem[k]; ok {
		s.memBytes -= int64(len(k) + len(old.value))
	}
	s.mem[k] = entry{value: v, deleted: del}
	s.memBytes += int64(len(k) + len(v))
}

// record layout: flag(1) klen(4) vlen(4) key val
func writeRecord(w io.Writer, k string, v []byte, del bool) error {
	var hdr [9]byte
	if del {
		hdr[0] = 1
	}
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(k)))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(v)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, k); err != nil {
		return err
	}
	_, err := w.Write(v)
	return err
}

func readRecord(r io.Reader) (k string, v []byte, del bool, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	del = hdr[0] == 1
	klen := binary.LittleEndian.Uint32(hdr[1:5])
	vlen := binary.LittleEndian.Uint32(hdr[5:9])
	kb := make([]byte, klen)
	if _, err = io.ReadFull(r, kb); err != nil {
		err = io.ErrUnexpectedEOF
		return
	}
	v = make([]byte, vlen)
	if _, err = io.ReadFull(r, v); err != nil {
		err = io.ErrUnexpectedEOF
		return
	}
	return string(kb), v, del, nil
}

// Put implements Store.
func (s *LSM) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.writes++
	v := make([]byte, len(value))
	copy(v, value)
	if err := writeRecord(s.walBuf, string(key), v, false); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	s.walSize += int64(9 + len(key) + len(value))
	s.memApply(string(key), v, false)
	return s.maybeFlush()
}

// Delete implements Store.
func (s *LSM) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.dels++
	if err := writeRecord(s.walBuf, string(key), nil, true); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	s.walSize += int64(9 + len(key))
	s.memApply(string(key), nil, true)
	return s.maybeFlush()
}

// Get implements Store.
func (s *LSM) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	s.reads++
	if e, ok := s.mem[string(key)]; ok {
		if e.deleted {
			return nil, false, nil
		}
		out := make([]byte, len(e.value))
		copy(out, e.value)
		return out, true, nil
	}
	for _, r := range s.runs {
		v, del, ok, err := r.get(string(key))
		if err != nil {
			return nil, false, err
		}
		if ok {
			if del {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	return nil, false, nil
}

func (s *LSM) maybeFlush() error {
	if s.memBytes < s.memLimit {
		return nil
	}
	return s.flushLocked()
}

// flushLocked writes the memtable to a new sorted run and truncates the WAL.
func (s *LSM) flushLocked() error {
	if len(s.mem) == 0 {
		return nil
	}
	if err := s.walBuf.Flush(); err != nil {
		return err
	}
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	path := filepath.Join(s.dir, fmt.Sprintf("run-%08d.sst", s.nextRun))
	s.nextRun++
	r, err := writeRun(path, keys, func(k string) ([]byte, bool) {
		e := s.mem[k]
		return e.value, e.deleted
	})
	if err != nil {
		return err
	}
	s.runs = append([]*run{r}, s.runs...)
	s.mem = make(map[string]entry)
	s.memBytes = 0

	// Reset the WAL: everything in it is now durable in the run.
	if err := s.wal.Close(); err != nil {
		return err
	}
	if err := os.Remove(s.walPath()); err != nil {
		return err
	}
	if err := s.openWAL(); err != nil {
		return err
	}
	if len(s.runs) > s.maxRuns {
		return s.compactLocked()
	}
	return nil
}

// compactLocked merges all runs (newest wins) into a single run.
func (s *LSM) compactLocked() error {
	merged := make(map[string]entry)
	for i := len(s.runs) - 1; i >= 0; i-- { // oldest first so newest wins
		r := s.runs[i]
		if err := r.scan(func(k string, v []byte, del bool) bool {
			merged[k] = entry{value: v, deleted: del}
			return true
		}); err != nil {
			return err
		}
	}
	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if !e.deleted { // tombstones can be dropped at full compaction
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	path := filepath.Join(s.dir, fmt.Sprintf("run-%08d.sst", s.nextRun))
	s.nextRun++
	nr, err := writeRun(path, keys, func(k string) ([]byte, bool) {
		return merged[k].value, false
	})
	if err != nil {
		return err
	}
	old := s.runs
	s.runs = []*run{nr}
	for _, r := range old {
		r.f.Close()
		os.Remove(r.path)
	}
	return nil
}

// Iterate implements Store, merging memtable and runs.
func (s *LSM) Iterate(start, end []byte, fn func(k, v []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	merged := make(map[string]entry)
	for i := len(s.runs) - 1; i >= 0; i-- {
		if err := s.runs[i].scan(func(k string, v []byte, del bool) bool {
			if inRange([]byte(k), start, end) {
				merged[k] = entry{value: v, deleted: del}
			}
			return true
		}); err != nil {
			s.mu.RUnlock()
			return err
		}
	}
	for k, e := range s.mem {
		if inRange([]byte(k), start, end) {
			merged[k] = e
		}
	}
	s.mu.RUnlock()

	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if !e.deleted {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), merged[k].value) {
			return nil
		}
	}
	return nil
}

// Flush forces the memtable to disk (used by tests and shutdown).
func (s *LSM) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

// Stats implements Store.
func (s *LSM) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var disk int64
	keys := len(s.mem)
	for _, r := range s.runs {
		disk += r.size
		keys += len(r.keys)
	}
	return Stats{
		Keys:      keys, // upper bound: duplicates across runs counted once each
		Reads:     s.reads,
		Writes:    s.writes,
		Deletes:   s.dels,
		DiskBytes: disk + s.walSize,
		MemBytes:  s.memBytes,
	}
}

// Close flushes and releases all files.
func (s *LSM) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.walBuf.Flush(); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	for _, r := range s.runs {
		r.f.Close()
	}
	s.closed = true
	return nil
}

func writeRun(path string, keys []string, get func(k string) (v []byte, del bool)) (*run, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	r := &run{path: path, keys: make([]string, 0, len(keys)), offs: make([]int64, 0, len(keys))}
	var off int64
	for _, k := range keys {
		v, del := get(k)
		r.keys = append(r.keys, k)
		r.offs = append(r.offs, off)
		if err := writeRecord(w, k, v, del); err != nil {
			f.Close()
			return nil, err
		}
		off += int64(9 + len(k) + len(v))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	rf, err := os.Open(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Close()
	r.f = rf
	r.size = off
	return r, nil
}

func openRun(path string) (*run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &run{path: path, f: f}
	br := bufio.NewReader(f)
	var off int64
	for {
		k, v, _, err := readRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("kvstore: open run %s: %w", path, err)
		}
		r.keys = append(r.keys, k)
		r.offs = append(r.offs, off)
		off += int64(9 + len(k) + len(v))
	}
	r.size = off
	return r, nil
}

func (r *run) get(key string) (v []byte, del, ok bool, err error) {
	i := sort.SearchStrings(r.keys, key)
	if i >= len(r.keys) || r.keys[i] != key {
		return nil, false, false, nil
	}
	sec := io.NewSectionReader(r.f, r.offs[i], r.size-r.offs[i])
	k, v, del, err := readRecord(sec)
	if err != nil {
		return nil, false, false, err
	}
	if k != key {
		return nil, false, false, fmt.Errorf("kvstore: index corruption in %s", r.path)
	}
	return v, del, true, nil
}

func (r *run) scan(fn func(k string, v []byte, del bool) bool) error {
	sec := io.NewSectionReader(r.f, 0, r.size)
	br := bufio.NewReader(sec)
	for {
		k, v, del, err := readRecord(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(k, v, del) {
			return nil
		}
	}
}
