package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// LSM is a log-structured merge store: writes go to a group-fsynced
// write-ahead log and an in-memory memtable; when the memtable exceeds a
// threshold it is flushed to an immutable sorted run on disk. Each run
// carries a bloom filter and a sparse block index in its footer, so a
// point Get consults the memtable, then probes runs newest-to-oldest
// reading at most one bounded file region per run that may hold the key.
//
// Compaction is size-tiered: when enough adjacent runs accumulate in the
// same size tier they are merged — and only they — via a streaming k-way
// merge, so no write ever waits behind a monolithic full-store merge.
// Merging is paced by a byte budget accrued per write (a debt counter):
// compaction I/O is amortized against write traffic instead of bursting.
// MaxRuns is the safety valve: beyond it, runs merge regardless of debt.
//
// This is structurally faithful to LevelDB/RocksDB — the engines under
// geth and Fabric in the paper's data-model experiments — including the
// write amplification and disk footprint the IOHeavy workload measures.
type LSM struct {
	mu  sync.RWMutex
	dir string

	mem      map[string]entry
	memBytes int64
	runs     []*run // newest first

	wal      *os.File
	walBuf   *bufio.Writer
	walSize  int64
	unsynced int64

	memLimit   int64
	maxRuns    int
	fanout     int
	bitsPerKey int
	syncBytes  int64
	budget     int64 // compaction bytes granted per byte written
	debt       int64 // accrued compaction allowance in bytes

	nextRun int
	closed  bool

	gets, puts, dels        atomic.Uint64
	bloomProbes, bloomSkips atomic.Uint64
	flushes, compactions    atomic.Uint64
	compactBytes, walSyncs  atomic.Uint64
}

type entry struct {
	value   []byte
	deleted bool
}

// LSMOptions tunes the engine. Zero values select the defaults.
type LSMOptions struct {
	MemTableBytes int64 // flush threshold (default 4 MiB)
	MaxRuns       int   // hard compaction trigger ignoring pacing (default 12)
	Fanout        int   // runs merged per size-tiered compaction (default 4)
	BloomBits     int   // bloom filter bits per key (default 10)
	SyncBytes     int64 // group-fsync the WAL every N bytes (default 256 KiB, <0 disables)
	BudgetFactor  int   // compaction bytes allowed per byte written (default 8)
}

// OpenLSM opens (or creates) a store in dir, replaying any existing WAL.
// A torn record at the WAL tail (from a crash mid-append) is discarded
// and the file truncated back to its last complete record.
func OpenLSM(dir string, opts LSMOptions) (*LSM, error) {
	if opts.MemTableBytes <= 0 {
		opts.MemTableBytes = 4 << 20
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 12
	}
	if opts.Fanout < 2 {
		opts.Fanout = 4
	}
	if opts.BloomBits <= 0 {
		opts.BloomBits = 10
	}
	if opts.SyncBytes == 0 {
		opts.SyncBytes = 256 << 10
	}
	if opts.BudgetFactor <= 0 {
		opts.BudgetFactor = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: open lsm: %w", err)
	}
	s := &LSM{
		dir:        dir,
		mem:        make(map[string]entry),
		memLimit:   opts.MemTableBytes,
		maxRuns:    opts.MaxRuns,
		fanout:     opts.Fanout,
		bitsPerKey: opts.BloomBits,
		syncBytes:  opts.SyncBytes,
		budget:     int64(opts.BudgetFactor),
	}
	if err := s.loadRuns(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *LSM) loadRuns() error {
	// A crash between writing a merged run and renaming it into place
	// leaves a .tmp side file; the inputs it merged are all still live,
	// so it is pure garbage.
	if tmps, err := filepath.Glob(filepath.Join(s.dir, "run-*.sst.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	matches, err := filepath.Glob(filepath.Join(s.dir, "run-*.sst"))
	if err != nil {
		return err
	}
	sort.Strings(matches)
	// Newest runs have the highest sequence number; keep newest first.
	for i := len(matches) - 1; i >= 0; i-- {
		r, err := openRun(matches[i])
		if err != nil {
			return err
		}
		s.runs = append(s.runs, r)
		var seq int
		fmt.Sscanf(filepath.Base(matches[i]), "run-%d.sst", &seq)
		if seq >= s.nextRun {
			s.nextRun = seq + 1
		}
	}
	return nil
}

func (s *LSM) walPath() string { return filepath.Join(s.dir, "wal.log") }

func (s *LSM) openWAL() error {
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	s.wal = f
	s.walBuf = bufio.NewWriterSize(f, 1<<16)
	s.walSize = st.Size()
	s.unsynced = 0
	return nil
}

// replayWAL restores memtable contents from a previous crash. A torn
// tail record is dropped and the WAL truncated to the last complete
// record, so subsequent appends never follow garbage bytes.
func (s *LSM) replayWAL() error {
	f, err := os.Open(s.walPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	r := bufio.NewReader(f)
	var valid int64
	for {
		k, v, del, err := readRecord(r)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// A torn tail record is expected after a crash; everything
			// before it is durable and already applied.
			break
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("kvstore: replay wal: %w", err)
		}
		s.memApply(k, v, del)
		valid += int64(9 + len(k) + len(v))
	}
	f.Close()
	if st, err := os.Stat(s.walPath()); err == nil && st.Size() > valid {
		if err := os.Truncate(s.walPath(), valid); err != nil {
			return fmt.Errorf("kvstore: truncate torn wal: %w", err)
		}
	}
	return nil
}

func (s *LSM) memApply(k string, v []byte, del bool) {
	if old, ok := s.mem[k]; ok {
		s.memBytes -= int64(len(k) + len(old.value))
	}
	s.mem[k] = entry{value: v, deleted: del}
	s.memBytes += int64(len(k) + len(v))
}

// record layout: flag(1) klen(4) vlen(4) key val
func writeRecord(w io.Writer, k string, v []byte, del bool) error {
	var hdr [9]byte
	if del {
		hdr[0] = 1
	}
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(k)))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(v)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, k); err != nil {
		return err
	}
	_, err := w.Write(v)
	return err
}

func readRecord(r io.Reader) (k string, v []byte, del bool, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	del = hdr[0] == 1
	klen := binary.LittleEndian.Uint32(hdr[1:5])
	vlen := binary.LittleEndian.Uint32(hdr[5:9])
	kb := make([]byte, klen)
	if _, err = io.ReadFull(r, kb); err != nil {
		err = io.ErrUnexpectedEOF
		return
	}
	v = make([]byte, vlen)
	if _, err = io.ReadFull(r, v); err != nil {
		err = io.ErrUnexpectedEOF
		return
	}
	return string(kb), v, del, nil
}

// walAppend writes one record to the WAL buffer and group-fsyncs once
// enough unsynced bytes accumulate: many records share one fsync.
func (s *LSM) walAppend(k string, v []byte, del bool) error {
	if err := writeRecord(s.walBuf, k, v, del); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	n := int64(9 + len(k) + len(v))
	s.walSize += n
	s.unsynced += n
	s.debt += n * s.budget
	if s.syncBytes > 0 && s.unsynced >= s.syncBytes {
		return s.syncWALLocked()
	}
	return nil
}

func (s *LSM) syncWALLocked() error {
	if err := s.walBuf.Flush(); err != nil {
		return err
	}
	if s.syncBytes >= 0 {
		if err := s.wal.Sync(); err != nil {
			return err
		}
		s.walSyncs.Add(1)
	}
	s.unsynced = 0
	return nil
}

// Put implements Store.
func (s *LSM) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.puts.Add(1)
	v := make([]byte, len(value))
	copy(v, value)
	if err := s.walAppend(string(key), v, false); err != nil {
		return err
	}
	s.memApply(string(key), v, false)
	return s.maybeFlush()
}

// Delete implements Store.
func (s *LSM) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.dels.Add(1)
	if err := s.walAppend(string(key), nil, true); err != nil {
		return err
	}
	s.memApply(string(key), nil, true)
	return s.maybeFlush()
}

// Get implements Store.
func (s *LSM) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	s.gets.Add(1)
	if e, ok := s.mem[string(key)]; ok {
		if e.deleted {
			return nil, false, nil
		}
		out := make([]byte, len(e.value))
		copy(out, e.value)
		return out, true, nil
	}
	for _, r := range s.runs {
		v, del, ok, err := r.get(string(key), &s.bloomProbes, &s.bloomSkips)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if del {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	return nil, false, nil
}

func (s *LSM) maybeFlush() error {
	if s.memBytes < s.memLimit {
		return nil
	}
	return s.flushLocked()
}

// flushLocked writes the memtable to a new sorted run and truncates the
// WAL, then gives paced compaction a chance to merge a tier.
func (s *LSM) flushLocked() error {
	if len(s.mem) == 0 {
		return nil
	}
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	path := filepath.Join(s.dir, fmt.Sprintf("run-%08d.sst", s.nextRun))
	s.nextRun++
	rw, err := newRunWriter(path, s.bitsPerKey)
	if err != nil {
		return err
	}
	for _, k := range keys {
		e := s.mem[k]
		if err := rw.add(k, e.value, e.deleted); err != nil {
			rw.f.Close()
			return err
		}
	}
	r, err := rw.finish()
	if err != nil {
		return err
	}
	s.runs = append([]*run{r}, s.runs...)
	s.mem = make(map[string]entry)
	s.memBytes = 0
	s.flushes.Add(1)

	// Reset the WAL: everything in it is now durable in the run.
	if err := s.wal.Close(); err != nil {
		return err
	}
	if err := os.Remove(s.walPath()); err != nil {
		return err
	}
	if err := s.openWAL(); err != nil {
		return err
	}
	return s.maybeCompactLocked()
}

// runTier buckets a run's size into 4x-wide tiers for size-tiered
// compaction: runs merge only with neighbors of similar magnitude.
func runTier(size int64) int {
	t := 0
	for q := size / (32 << 10); q > 0; q >>= 2 {
		t++
	}
	return t
}

// pickTiered returns the oldest fanout-wide window of adjacent runs
// sharing a size tier, preferring the cheapest (smallest) tier. Adjacency
// in the newest-first list is required so the merged run keeps its place
// in recency order.
func (s *LSM) pickTiered() (lo, hi int) {
	bestTier := -1
	lo, hi = -1, -1
	i := 0
	for i < len(s.runs) {
		t := runTier(s.runs[i].size)
		j := i + 1
		for j < len(s.runs) && runTier(s.runs[j].size) == t {
			j++
		}
		if j-i >= s.fanout && (bestTier == -1 || t < bestTier) {
			bestTier, lo, hi = t, j-s.fanout, j
		}
		i = j
	}
	return lo, hi
}

// pickForced returns the cheapest adjacent window whose merge brings the
// run count back to maxRuns. Used only when the tiered policy has no
// candidate but the run count exceeds the hard ceiling.
func (s *LSM) pickForced() (lo, hi int) {
	w := len(s.runs) - s.maxRuns + 1
	if w < 2 {
		w = 2
	}
	if w > len(s.runs) {
		w = len(s.runs)
	}
	var best int64 = -1
	lo, hi = -1, -1
	for i := 0; i+w <= len(s.runs); i++ {
		var total int64
		for j := i; j < i+w; j++ {
			total += s.runs[j].size
		}
		if best < 0 || total < best {
			best, lo, hi = total, i, i+w
		}
	}
	return lo, hi
}

// maybeCompactLocked runs at most a handful of bounded merges: tiered
// candidates only while the write-accrued debt covers their cost, plus
// forced merges whenever the run count exceeds the hard ceiling.
func (s *LSM) maybeCompactLocked() error {
	for {
		lo, hi := s.pickTiered()
		forced := false
		if lo >= 0 {
			var cost int64
			for _, r := range s.runs[lo:hi] {
				cost += r.size
			}
			if s.debt < cost && len(s.runs) <= s.maxRuns {
				return nil // not enough budget yet; let debt accrue
			}
		} else {
			if len(s.runs) <= s.maxRuns {
				return nil
			}
			lo, hi = s.pickForced()
			forced = true
			if lo < 0 {
				return nil
			}
		}
		if err := s.compactRange(lo, hi); err != nil {
			return err
		}
		if forced && len(s.runs) <= s.maxRuns {
			return nil
		}
	}
}

// compactRange merges the adjacent runs[lo:hi] (newest wins) into one
// run in their place. The merged file takes over the sequence number of
// the newest run in the window — written to a side file first, then
// renamed over it — because loadRuns reconstructs recency order from
// filenames alone: a merged middle window filed under a fresh (highest)
// sequence number would reopen as the newest run and its stale values
// would shadow every run that was newer than the window. Tombstones are
// dropped only when the window reaches the oldest run — otherwise they
// must keep shadowing older records.
func (s *LSM) compactRange(lo, hi int) error {
	window := append([]*run(nil), s.runs[lo:hi]...)
	dropTombstones := hi == len(s.runs)

	target := window[0].path // newest sequence number in the window
	path := target + ".tmp"
	rw, err := newRunWriter(path, s.bitsPerKey)
	if err != nil {
		return err
	}
	sources := make([]kvIter, 0, len(window))
	iters := make([]*runIterator, 0, len(window))
	for _, r := range window {
		it := r.iterator("")
		iters = append(iters, it)
		sources = append(sources, it)
	}
	var cost int64
	for _, r := range window {
		cost += r.size
	}
	var addErr error
	err = mergeSources(sources, func(k string, v []byte, del bool) bool {
		if del && dropTombstones {
			return true
		}
		if addErr = rw.add(k, v, del); addErr != nil {
			return false
		}
		return true
	})
	for _, it := range iters {
		it.close()
	}
	if err == nil {
		err = addErr
	}
	if err != nil {
		rw.f.Close()
		os.Remove(path)
		return err
	}
	merged, err := rw.finish()
	if err != nil {
		return err
	}
	if merged != nil {
		// Open readers of the replaced file keep their FDs on the old
		// inode; merged's own FD was opened pre-rename and stays valid.
		if err := os.Rename(path, target); err != nil {
			merged.retire()
			return err
		}
		merged.path = target
	}

	newRuns := make([]*run, 0, len(s.runs)-len(window)+1)
	newRuns = append(newRuns, s.runs[:lo]...)
	if merged != nil {
		newRuns = append(newRuns, merged)
	}
	newRuns = append(newRuns, s.runs[hi:]...)
	s.runs = newRuns
	if merged != nil {
		// window[0]'s path now belongs to the merged run: release only
		// closes its FD. Marking it obsolete would delete the new file.
		window[0].release()
		window = window[1:]
	}
	for _, r := range window {
		r.retire()
	}
	s.compactions.Add(1)
	s.compactBytes.Add(uint64(cost))
	s.debt -= cost
	if s.debt < 0 {
		s.debt = 0
	}
	return nil
}

// Iterate implements Store as a streaming k-way heap merge over the
// memtable snapshot and one iterator per run. Runs are refcounted, so
// the merge proceeds without holding the store lock and fn may call back
// into the store.
func (s *LSM) Iterate(start, end []byte, fn func(k, v []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	runs := make([]*run, len(s.runs))
	copy(runs, s.runs)
	for _, r := range runs {
		r.acquire()
	}
	memSnap := make([]memEnt, 0, len(s.mem))
	for k, e := range s.mem {
		if inRange([]byte(k), start, end) {
			memSnap = append(memSnap, memEnt{k: k, v: e.value, del: e.deleted})
		}
	}
	s.mu.RUnlock()

	sort.Slice(memSnap, func(i, j int) bool { return memSnap[i].k < memSnap[j].k })
	sources := make([]kvIter, 0, len(runs)+1)
	sources = append(sources, &sliceIter{ents: memSnap})
	iters := make([]*runIterator, 0, len(runs))
	startS := string(start)
	for _, r := range runs {
		it := r.iterator(startS)
		iters = append(iters, it)
		sources = append(sources, it)
	}
	defer func() {
		for _, it := range iters {
			it.close()
		}
		for _, r := range runs {
			r.release()
		}
	}()

	endS := string(end)
	return mergeSources(sources, func(k string, v []byte, del bool) bool {
		if end != nil && k >= endS {
			return false
		}
		if del {
			return true
		}
		return fn([]byte(k), v)
	})
}

// Flush forces the memtable to disk (used by tests and shutdown).
func (s *LSM) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

// Stats implements Store.
func (s *LSM) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var disk, aux int64
	keys := len(s.mem)
	for _, r := range s.runs {
		disk += r.size
		keys += r.count
		aux += r.aux
	}
	return Stats{
		Keys:      keys, // upper bound: duplicates across runs counted once each
		Reads:     s.gets.Load(),
		Writes:    s.puts.Load(),
		Deletes:   s.dels.Load(),
		DiskBytes: disk + s.walSize,
		MemBytes:  s.memBytes + aux,
	}
}

// Counters implements metrics.CounterProvider, surfacing the storage
// engine's behavior in driver snapshots and reports.
func (s *LSM) Counters() map[string]uint64 {
	return map[string]uint64{
		"store.gets":          s.gets.Load(),
		"store.puts":          s.puts.Load(),
		"store.bloom_probes":  s.bloomProbes.Load(),
		"store.bloom_skips":   s.bloomSkips.Load(),
		"store.flushes":       s.flushes.Load(),
		"store.compactions":   s.compactions.Load(),
		"store.compact_bytes": s.compactBytes.Load(),
		"store.wal_syncs":     s.walSyncs.Load(),
	}
}

// CrashClose simulates a process kill: the store is released WITHOUT
// flushing or fsyncing the buffered WAL tail, so whatever the last
// buffered writes were is abandoned — possibly mid-record, leaving a
// genuinely torn tail for replayWAL's truncation to recover on reopen.
// Only durably synced (and incidentally OS-buffered) data survives.
func (s *LSM) CrashClose() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	// Abandon walBuf (never flushed) and close the file without Sync.
	if err := s.wal.Close(); err != nil {
		return err
	}
	for _, r := range s.runs {
		r.release()
	}
	s.runs = nil
	s.closed = true
	return nil
}

// Close flushes the WAL and releases all files.
func (s *LSM) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.syncWALLocked(); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	for _, r := range s.runs {
		r.release()
	}
	s.runs = nil
	s.closed = true
	return nil
}
