// Package kvstore provides the persistent key-value storage engines that
// back blockchain state, standing in for LevelDB (used by geth) and
// RocksDB (used by Hyperledger Fabric v0.6).
//
// Two engines are provided: Mem, a mutex-protected in-memory map used by
// the Parity preset (which "holds all the state information in memory"),
// and LSM, a log-structured merge store with a write-ahead log, sorted
// immutable runs and size-triggered compaction. Both track read/write and
// on-disk byte counters so the IOHeavy experiment can report disk usage.
package kvstore

import (
	"bytes"
	"errors"
	"sort"
	"sync"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

// Stats summarizes a store's activity and footprint.
type Stats struct {
	Keys      int
	Reads     uint64
	Writes    uint64
	Deletes   uint64
	DiskBytes int64 // bytes resident in on-disk structures (0 for Mem)
	MemBytes  int64 // bytes resident in memory structures
}

// Store is the engine interface shared by all state backends.
type Store interface {
	// Get returns the value for key, with ok=false if absent.
	Get(key []byte) (value []byte, ok bool, err error)
	// Put stores key=value, overwriting any existing value.
	Put(key, value []byte) error
	// Delete removes key if present.
	Delete(key []byte) error
	// Iterate calls fn for each key in [start, end) in ascending key
	// order until fn returns false. A nil end means "to the last key".
	Iterate(start, end []byte, fn func(key, value []byte) bool) error
	// Stats returns activity counters and footprint.
	Stats() Stats
	// Close releases resources.
	Close() error
}

// CrashCloser is implemented by stores that can simulate a process kill:
// release the store without flushing buffered writes, leaving whatever
// was durable (possibly a torn tail) for the next open to recover. The
// platform's crash injector uses it instead of Close so recovery
// genuinely exercises the replay path.
type CrashCloser interface {
	CrashClose() error
}

// Mem is an in-memory store. It is safe for concurrent use.
type Mem struct {
	mu     sync.RWMutex
	m      map[string][]byte
	bytes  int64
	reads  uint64
	writes uint64
	dels   uint64
	closed bool

	// Cap, when non-zero, bounds resident bytes; Put returns ErrMemoryFull
	// beyond it. The Parity preset uses this to reproduce the paper's
	// out-of-memory failures on large IOHeavy runs.
	cap int64
}

// ErrMemoryFull reports that a capped in-memory store is exhausted.
var ErrMemoryFull = errors.New("kvstore: in-memory store capacity exceeded")

// NewMem returns an unbounded in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[string][]byte)} }

// NewMemCapped returns an in-memory store that fails writes once resident
// bytes exceed capBytes.
func NewMemCapped(capBytes int64) *Mem {
	return &Mem{m: make(map[string][]byte), cap: capBytes}
}

// Get implements Store.
func (s *Mem) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	s.reads++
	v, ok := s.m[string(key)]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true, nil
}

// Put implements Store.
func (s *Mem) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.writes++
	k := string(key)
	old, had := s.m[k]
	delta := int64(len(key) + len(value))
	if had {
		delta = int64(len(value) - len(old))
	}
	if s.cap > 0 && s.bytes+delta > s.cap {
		return ErrMemoryFull
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.m[k] = v
	s.bytes += delta
	return nil
}

// Delete implements Store.
func (s *Mem) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.dels++
	k := string(key)
	if old, ok := s.m[k]; ok {
		s.bytes -= int64(len(k) + len(old))
		delete(s.m, k)
	}
	return nil
}

// Iterate implements Store. It snapshots the key set, so fn may call back
// into the store.
func (s *Mem) Iterate(start, end []byte, fn func(k, v []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		if inRange([]byte(k), start, end) {
			keys = append(keys, k)
		}
	}
	vals := make(map[string][]byte, len(keys))
	for _, k := range keys {
		vals[k] = s.m[k]
	}
	s.mu.RUnlock()

	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), vals[k]) {
			return nil
		}
	}
	return nil
}

// Stats implements Store.
func (s *Mem) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{Keys: len(s.m), Reads: s.reads, Writes: s.writes,
		Deletes: s.dels, MemBytes: s.bytes}
}

// Close implements Store.
func (s *Mem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.m = nil
	return nil
}

func inRange(k, start, end []byte) bool {
	if start != nil && bytes.Compare(k, start) < 0 {
		return false
	}
	if end != nil && bytes.Compare(k, end) >= 0 {
		return false
	}
	return true
}
