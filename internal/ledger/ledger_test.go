package ledger

import (
	"errors"
	"testing"

	"blockbench/internal/crypto"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

func trieFactory() func(root types.Hash) (*state.DB, error) {
	store := kvstore.NewMem()
	return func(root types.Hash) (*state.DB, error) {
		b, err := state.NewTrieBackend(store, root, 0)
		if err != nil {
			return nil, err
		}
		return state.NewDB(b), nil
	}
}

func newTestChain(t *testing.T, forks bool) (*Chain, *crypto.Key) {
	t.Helper()
	key := crypto.DeterministicKey(1)
	eng, err := exec.NewEVMEngine(exec.MemModel{}, "ycsb", "donothing")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Engine:        eng,
		StateFactory:  trieFactory(),
		GasLimit:      10_000_000,
		SupportsForks: forks,
		GenesisAlloc:  map[types.Address]uint64{key.Address(): 1_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, key
}

func signedTx(t *testing.T, key *crypto.Key, nonce uint64, method string, args ...[]byte) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{Nonce: nonce, Contract: "ycsb", Method: method,
		Args: args, GasLimit: 100_000}
	if err := crypto.SignTx(tx, key); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestGenesisState(t *testing.T) {
	c, key := newTestChain(t, true)
	if c.Height() != 0 {
		t.Fatal("genesis height != 0")
	}
	db, err := c.State()
	if err != nil {
		t.Fatal(err)
	}
	if db.GetBalance(key.Address()) != 1_000_000 {
		t.Fatal("genesis alloc missing")
	}
}

func TestProposeAndAppend(t *testing.T) {
	c, key := newTestChain(t, true)
	txs := []*types.Transaction{
		signedTx(t, key, 1, "write", []byte("k"), []byte("v")),
	}
	b, err := c.ProposeBlock(txs, key.Address(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Header.StateRoot.IsZero() || b.Header.TxRoot.IsZero() {
		t.Fatal("roots not filled")
	}
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 1 {
		t.Fatalf("height = %d", c.Height())
	}
	r, ok := c.Receipt(txs[0].Hash())
	if !ok || !r.OK {
		t.Fatalf("receipt: %+v ok=%v", r, ok)
	}
	db, _ := c.State()
	if string(db.GetState("ycsb", []byte("k"))) != "v" {
		t.Fatal("state not applied")
	}
	// Duplicate append is a no-op.
	if err := c.Append(b); err != nil {
		t.Fatal("duplicate append errored")
	}
	if c.KnownBlocks() != 1 {
		t.Fatalf("known = %d", c.KnownBlocks())
	}
}

func TestAppendUnknownParent(t *testing.T) {
	c, _ := newTestChain(t, true)
	b := &types.Block{Header: types.Header{Number: 5, ParentHash: types.HashData([]byte("x"))}}
	if err := c.Append(b); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectBadSignature(t *testing.T) {
	key := crypto.DeterministicKey(1)
	reg := crypto.NewRegistry()
	reg.Add(key)
	eng, _ := exec.NewEVMEngine(exec.MemModel{}, "ycsb")
	c, err := New(Config{Engine: eng, StateFactory: trieFactory(),
		Registry: reg, SupportsForks: true})
	if err != nil {
		t.Fatal(err)
	}
	// Unsigned tx.
	tx := &types.Transaction{Contract: "ycsb", Method: "write",
		Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 100_000}
	b, err := c.ProposeBlock([]*types.Transaction{tx}, key.Address(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(b); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("unsigned tx accepted: %v", err)
	}
	// Properly signed but corrupted in flight.
	tx2 := &types.Transaction{Contract: "ycsb", Method: "write",
		Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 100_000}
	if err := crypto.SignTx(tx2, key); err != nil {
		t.Fatal(err)
	}
	tx2.Corrupt = true
	b2, err := c.ProposeBlock([]*types.Transaction{tx2}, key.Address(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(b2); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("corrupt tx accepted: %v", err)
	}
}

func TestStateRootMismatchRejected(t *testing.T) {
	c, key := newTestChain(t, true)
	b, err := c.ProposeBlock([]*types.Transaction{
		signedTx(t, key, 1, "write", []byte("a"), []byte("b")),
	}, key.Address(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.Header.StateRoot = types.HashData([]byte("wrong"))
	if err := c.Append(b); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad state root accepted: %v", err)
	}
}

func TestForkChoiceHeaviestChain(t *testing.T) {
	c, key := newTestChain(t, true)
	// Chain A: one block of difficulty 10.
	a1, err := c.ProposeBlock([]*types.Transaction{
		signedTx(t, key, 1, "write", []byte("k"), []byte("A")),
	}, key.Address(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(a1); err != nil {
		t.Fatal(err)
	}
	headA := c.Head().Hash()

	// Chain B: two blocks of difficulty 10 each, built on genesis.
	genesis := c.Genesis()
	b1 := &types.Block{Header: types.Header{
		Number: 1, ParentHash: genesis.Hash(), Difficulty: 10, Time: 12345,
	}}
	if err := c.Append(b1); err != nil {
		t.Fatal(err)
	}
	// Same total difficulty: head must not move (first-seen wins).
	if c.Head().Hash() != headA {
		t.Fatal("head moved on equal difficulty")
	}
	b2, err := buildOn(c, b1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(b2); err != nil {
		t.Fatal(err)
	}
	if c.Head().Hash() != b2.Hash() {
		t.Fatal("reorg to heavier chain did not happen")
	}
	if c.Height() != 2 {
		t.Fatalf("height = %d", c.Height())
	}
	// State must reflect branch B (no write of "k").
	db, _ := c.State()
	if db.GetState("ycsb", []byte("k")) != nil {
		t.Fatal("state still from abandoned branch")
	}
	// The tx from branch A is no longer committed.
	if _, ok := c.Receipt(a1.Txs[0].Hash()); ok {
		t.Fatal("abandoned branch receipt still resolves")
	}
	// Known blocks counts both branches.
	if c.KnownBlocks() != 3 {
		t.Fatalf("known = %d, want 3", c.KnownBlocks())
	}
}

// buildOn manually builds an empty block on a given parent (bypassing
// head selection), for fork tests.
func buildOn(c *Chain, parent *types.Block, difficulty uint64) (*types.Block, error) {
	db, err := c.cfg.StateFactory(c.entries[parent.Hash()].stateRoot)
	if err != nil {
		return nil, err
	}
	root, err := db.Commit()
	if err != nil {
		return nil, err
	}
	return &types.Block{Header: types.Header{
		Number:     parent.Number() + 1,
		ParentHash: parent.Hash(),
		Difficulty: difficulty,
		StateRoot:  root,
		Time:       67890,
	}}, nil
}

func TestNoForksPlatformRejectsSideChain(t *testing.T) {
	c, key := newTestChain(t, false)
	b1, err := c.ProposeBlock(nil, key.Address(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(b1); err != nil {
		t.Fatal(err)
	}
	// A second block on genesis must be refused.
	side := &types.Block{Header: types.Header{
		Number: 1, ParentHash: c.Genesis().Hash(), Time: 1,
	}}
	if err := c.Append(side); !errors.Is(err, ErrNoForks) {
		t.Fatalf("side chain accepted: %v", err)
	}
}

func TestBlocksFromPolling(t *testing.T) {
	c, key := newTestChain(t, true)
	for i := 0; i < 5; i++ {
		b, err := c.ProposeBlock([]*types.Transaction{
			signedTx(t, key, uint64(i), "write", []byte{byte(i)}, []byte("v")),
		}, key.Address(), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	got := c.BlocksFrom(2, 0)
	if len(got) != 3 {
		t.Fatalf("BlocksFrom(2) = %d blocks, want 3", len(got))
	}
	if got[0].Number() != 3 {
		t.Fatal("wrong first block")
	}
	if limited := c.BlocksFrom(0, 2); len(limited) != 2 {
		t.Fatal("limit ignored")
	}
}

func TestStateAtHistoricalHeight(t *testing.T) {
	c, key := newTestChain(t, true)
	for i := 1; i <= 3; i++ {
		b, err := c.ProposeBlock([]*types.Transaction{
			signedTx(t, key, uint64(i), "write", []byte("k"), []byte{byte(i)}),
		}, key.Address(), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	db, err := c.StateAt(2)
	if err != nil {
		t.Fatal(err)
	}
	v := db.GetState("ycsb", []byte("k"))
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("historical state = %v", v)
	}
}

func TestFailedTxRevertedButIncluded(t *testing.T) {
	c, key := newTestChain(t, true)
	good := signedTx(t, key, 1, "write", []byte("k"), []byte("v"))
	bad := signedTx(t, key, 2, "read", []byte("missing")) // reverts
	b, err := c.ProposeBlock([]*types.Transaction{good, bad}, key.Address(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	r, ok := c.Receipt(bad.Hash())
	if !ok {
		t.Fatal("failed tx has no receipt")
	}
	if r.OK {
		t.Fatal("reverting tx reported OK")
	}
	if r2, _ := c.Receipt(good.Hash()); !r2.OK {
		t.Fatal("good tx failed")
	}
}

func TestProposeBlockRespectsGasLimit(t *testing.T) {
	key := crypto.DeterministicKey(1)
	eng, err := exec.NewEVMEngine(exec.MemModel{}, "ycsb")
	if err != nil {
		t.Fatal(err)
	}
	// Each YCSB write uses ~21k intrinsic + storage gas; a 100k block
	// fits about 4 of them regardless of the txs' declared allowances.
	c, err := New(Config{
		Engine:        eng,
		StateFactory:  trieFactory(),
		GasLimit:      100_000,
		SupportsForks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var txs []*types.Transaction
	for i := 0; i < 20; i++ {
		tx := &types.Transaction{Nonce: uint64(i), Contract: "ycsb", Method: "write",
			Args: [][]byte{{byte(i)}, []byte("v")}, GasLimit: 10_000_000}
		if err := crypto.SignTx(tx, key); err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	b, err := c.ProposeBlock(txs, key.Address(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Txs) == 0 || len(b.Txs) >= 20 {
		t.Fatalf("included %d txs, want a gas-bounded subset", len(b.Txs))
	}
	if b.Header.GasUsed > 100_000 {
		t.Fatalf("gas used %d exceeds block limit", b.Header.GasUsed)
	}
	// FIFO: the included txs are the first ones offered.
	for i, tx := range b.Txs {
		if tx.Nonce != uint64(i) {
			t.Fatal("inclusion not FIFO")
		}
	}
	// The proposed block is valid and appendable.
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
}
