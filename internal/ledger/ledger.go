// Package ledger implements per-node chain management: block validation
// and execution, canonical-chain selection by total difficulty (with
// reorgs for the forking PoW/PoA platforms), receipts, and the
// block-range queries that the BLOCKBENCH driver polls
// (getLatestBlock(h) in the paper's connector interface).
package ledger

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"blockbench/internal/crypto"
	"blockbench/internal/exec"
	"blockbench/internal/merkle"
	"blockbench/internal/state"
	"blockbench/internal/trace"
	"blockbench/internal/types"
)

// Chain errors.
var (
	ErrUnknownParent = errors.New("ledger: unknown parent")
	ErrBadBlock      = errors.New("ledger: invalid block")
	ErrNoForks       = errors.New("ledger: platform does not fork")
)

// BlockExecutor applies a whole transaction list to a state database,
// returning one receipt per transaction in order. Implementations must
// leave db's overlay byte-identical to serial execution with
// Config.Engine (the parallel executor in internal/exec/parallel is
// the one shipped implementation).
type BlockExecutor interface {
	ExecuteBlock(eng exec.Engine, db *state.DB, txs []*types.Transaction, blockNum uint64) []*types.Receipt
}

// Config assembles a chain.
type Config struct {
	// Engine executes transactions.
	Engine exec.Engine
	// Parallel, when non-nil, executes block transaction lists through
	// the optimistic intra-block scheduler instead of the serial loop.
	// Proposals under a block gas limit stay serial: inclusion is
	// decided per transaction in sequence order there.
	Parallel BlockExecutor
	// StateFactory opens a state database at the given root. Platforms
	// without state versioning (Hyperledger's bucket tree) may return a
	// process-wide singleton; they must also set SupportsForks=false.
	StateFactory func(root types.Hash) (*state.DB, error)
	// Registry verifies transaction signatures; nil disables checks.
	Registry *crypto.Registry
	// GasLimit is the block gas limit (0 = unlimited), Ethereum-style.
	GasLimit uint64
	// SupportsForks enables side chains and reorgs (PoW/PoA). When
	// false, a block whose parent is not the current head is rejected.
	SupportsForks bool
	// GenesisAlloc funds accounts at genesis.
	GenesisAlloc map[types.Address]uint64
	// GenesisTime stamps the genesis header. All nodes of one network
	// must agree on it, or their genesis hashes (and thus chains) would
	// diverge.
	GenesisTime int64
	// OnInclude is called with the transactions of blocks that become
	// canonical, so the node can clear them from its pending pool. Pool
	// bookkeeping must key off canonicality, not block arrival: a
	// transaction that only ever appeared on a losing fork has to stay
	// pending.
	OnInclude func(included []*types.Transaction)
	// OnReorg is called with the transactions of blocks that left the
	// canonical chain and are not part of the new branch, so the node
	// can return them to its pending pool.
	OnReorg func(dropped []*types.Transaction)
	// OnCommit is called with the blocks (and their receipts, aligned
	// by index) that become canonical, in ascending height order — on a
	// reorg the new branch's blocks replace previously delivered
	// heights. The analytics indexer maintains its columnar index here.
	// The hook runs under the chain lock: it must be fast and must not
	// call back into the chain.
	OnCommit func(blocks []*types.Block, receipts [][]*types.Receipt)
	// Tracer is the cluster's lifecycle tracer (nil-safe). The chain
	// stamps StagePropose when a candidate block includes a transaction,
	// StageOrder when an accepted block carries it, and
	// StageExecute/StageStateCommit around the accepted block's
	// execution and state commit.
	Tracer *trace.Tracer
}

type entry struct {
	block     *types.Block
	stateRoot types.Hash
	totalDiff uint64
	receipts  []*types.Receipt
}

// Chain is one node's view of the blockchain. Safe for concurrent use.
type Chain struct {
	cfg Config

	mu        sync.RWMutex
	entries   map[types.Hash]*entry
	canonical []types.Hash // by height, canonical[0] = genesis
	head      *entry
	byTx      map[types.Hash]*types.Receipt
	headState *state.DB

	appended uint64 // every block ever accepted, including side chains
}

// New creates a chain with a freshly executed genesis block.
func New(cfg Config) (*Chain, error) {
	db, err := cfg.StateFactory(types.ZeroHash)
	if err != nil {
		return nil, err
	}
	for addr, amount := range cfg.GenesisAlloc {
		db.SetBalance(addr, amount)
	}
	root, err := db.Commit()
	if err != nil {
		return nil, fmt.Errorf("ledger: genesis commit: %w", err)
	}
	genesis := &types.Block{Header: types.Header{
		Number: 0, StateRoot: root, Time: cfg.GenesisTime,
		GasLimit: cfg.GasLimit,
	}}
	e := &entry{block: genesis, stateRoot: root}
	c := &Chain{
		cfg:       cfg,
		entries:   map[types.Hash]*entry{genesis.Hash(): e},
		canonical: []types.Hash{genesis.Hash()},
		head:      e,
		byTx:      make(map[types.Hash]*types.Receipt),
		headState: db,
	}
	return c, nil
}

// Genesis returns the genesis block.
func (c *Chain) Genesis() *types.Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.entries[c.canonical[0]].block
}

// Head returns the current canonical head block.
func (c *Chain) Head() *types.Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.head.block
}

// Has reports whether the block is known (canonical or side chain).
func (c *Chain) Has(h types.Hash) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.entries[h]
	return ok
}

// verifyTxs checks signatures and corruption flags.
func (c *Chain) verifyTxs(b *types.Block) error {
	if c.cfg.Registry == nil {
		return nil
	}
	for _, tx := range b.Txs {
		if !c.cfg.Registry.VerifyTx(tx) {
			return fmt.Errorf("%w: bad signature on %s", ErrBadBlock, tx.Hash())
		}
	}
	return nil
}

// execute runs the block's transactions on the parent state.
func (c *Chain) execute(parent *entry, b *types.Block) (types.Hash, []*types.Receipt, uint64, error) {
	db, err := c.cfg.StateFactory(parent.stateRoot)
	if err != nil {
		return types.ZeroHash, nil, 0, err
	}
	var receipts []*types.Receipt
	if c.cfg.Parallel != nil {
		receipts = c.cfg.Parallel.ExecuteBlock(c.cfg.Engine, db, b.Txs, b.Number())
	} else {
		receipts = make([]*types.Receipt, len(b.Txs))
		for i, tx := range b.Txs {
			receipts[i] = c.cfg.Engine.Execute(db, tx, b.Number())
		}
	}
	var gasUsed uint64
	for i, r := range receipts {
		r.Index = i
		r.BlockHash = b.Hash()
		gasUsed += r.GasUsed
	}
	if c.cfg.Tracer.Enabled() {
		for _, tx := range b.Txs {
			c.cfg.Tracer.Stamp(tx.Hash(), trace.StageExecute)
		}
	}
	root, err := db.Commit()
	if err != nil {
		return types.ZeroHash, nil, 0, fmt.Errorf("ledger: state commit: %w", err)
	}
	if c.cfg.Tracer.Enabled() {
		for _, tx := range b.Txs {
			c.cfg.Tracer.Stamp(tx.Hash(), trace.StageStateCommit)
		}
	}
	return root, receipts, gasUsed, nil
}

// Append validates, executes and stores a block, advancing the head if
// the block extends the heaviest chain. Duplicate blocks are ignored.
func (c *Chain) Append(b *types.Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[b.Hash()]; dup {
		return nil
	}
	parent, ok := c.entries[b.Header.ParentHash]
	if !ok {
		return ErrUnknownParent
	}
	if !c.cfg.SupportsForks && b.Header.ParentHash != c.head.block.Hash() {
		return ErrNoForks
	}
	if b.Number() != parent.block.Number()+1 {
		return fmt.Errorf("%w: number %d after parent %d", ErrBadBlock, b.Number(), parent.block.Number())
	}
	if err := c.verifyTxs(b); err != nil {
		return err
	}
	if txRoot := merkle.TxRoot(b.Txs); !b.Header.TxRoot.IsZero() && txRoot != b.Header.TxRoot {
		return fmt.Errorf("%w: tx root mismatch", ErrBadBlock)
	}
	if c.cfg.Tracer.Enabled() {
		for _, tx := range b.Txs {
			c.cfg.Tracer.Stamp(tx.Hash(), trace.StageOrder)
		}
	}

	root, receipts, gasUsed, err := c.execute(parent, b)
	if err != nil {
		return err
	}
	if !b.Header.StateRoot.IsZero() && b.Header.StateRoot != root {
		return fmt.Errorf("%w: state root mismatch (have %s, computed %s)",
			ErrBadBlock, b.Header.StateRoot.Short(), root.Short())
	}

	diff := b.Header.Difficulty
	if diff == 0 {
		diff = 1
	}
	e := &entry{block: b, stateRoot: root, totalDiff: parent.totalDiff + diff, receipts: receipts}
	_ = gasUsed
	c.entries[b.Hash()] = e
	c.appended++

	if e.totalDiff > c.head.totalDiff {
		c.setHeadLocked(e)
	}
	return nil
}

// setHeadLocked switches the canonical chain to end at e, stamping
// commit times on the receipts of newly canonical blocks.
func (c *Chain) setHeadLocked(e *entry) {
	c.head = e
	c.headState = nil // lazily reopened at the new root

	// Rebuild the canonical index from e back to the divergence point.
	now := time.Now()
	cur := e
	var fresh []*entry
	for {
		n := cur.block.Number()
		if uint64(len(c.canonical)) > n && c.canonical[n] == cur.block.Hash() {
			break
		}
		fresh = append(fresh, cur)
		if n == 0 {
			break
		}
		cur = c.entries[cur.block.Header.ParentHash]
	}
	// Receipts on abandoned branch blocks must no longer resolve, and
	// their transactions go back to the pool unless the new branch also
	// includes them.
	var dropped []*types.Transaction
	if len(fresh) > 0 {
		lowest := fresh[len(fresh)-1].block.Number()
		inNew := make(map[types.Hash]bool)
		for _, en := range fresh {
			for _, tx := range en.block.Txs {
				inNew[tx.Hash()] = true
			}
		}
		for _, h := range c.canonical[min(int(lowest), len(c.canonical)):] {
			old := c.entries[h]
			for _, r := range old.receipts {
				delete(c.byTx, r.TxHash)
			}
			for _, tx := range old.block.Txs {
				if !inNew[tx.Hash()] {
					dropped = append(dropped, tx)
				}
			}
		}
		c.canonical = c.canonical[:lowest]
	}
	var included []*types.Transaction
	for i := len(fresh) - 1; i >= 0; i-- {
		en := fresh[i]
		c.canonical = append(c.canonical, en.block.Hash())
		included = append(included, en.block.Txs...)
		for _, r := range en.receipts {
			r.CommitTime = now
			c.byTx[r.TxHash] = r
		}
	}
	if len(included) > 0 && c.cfg.OnInclude != nil {
		c.cfg.OnInclude(included)
	}
	if len(dropped) > 0 && c.cfg.OnReorg != nil {
		c.cfg.OnReorg(dropped)
	}
	if len(fresh) > 0 && c.cfg.OnCommit != nil {
		blocks := make([]*types.Block, 0, len(fresh))
		receipts := make([][]*types.Receipt, 0, len(fresh))
		for i := len(fresh) - 1; i >= 0; i-- {
			blocks = append(blocks, fresh[i].block)
			receipts = append(receipts, fresh[i].receipts)
		}
		c.cfg.OnCommit(blocks, receipts)
	}
}

// ProposeBlock builds and executes a candidate block on the current
// head from the given transactions, including them in order until the
// block gas limit is reached (as geth's miner does: the limit applies to
// gas consumed, not to the transactions' declared gas allowances). The
// returned block has its roots filled; PoW engines still need to seal it.
func (c *Chain) ProposeBlock(txs []*types.Transaction, proposer types.Address, difficulty, view uint64) (*types.Block, error) {
	c.mu.RLock()
	parent := c.head
	c.mu.RUnlock()

	number := parent.block.Number() + 1
	db, err := c.cfg.StateFactory(parent.stateRoot)
	if err != nil {
		return nil, err
	}
	var (
		included []*types.Transaction
		gasUsed  uint64
	)
	if c.cfg.Parallel != nil && c.cfg.GasLimit == 0 {
		// No gas ceiling to enforce per transaction, so the whole list
		// is included and can execute on the parallel scheduler.
		for _, r := range c.cfg.Parallel.ExecuteBlock(c.cfg.Engine, db, txs, number) {
			gasUsed += r.GasUsed
		}
		included = txs
	} else {
		for _, tx := range txs {
			snap := db.Snapshot()
			r := c.cfg.Engine.Execute(db, tx, number)
			if c.cfg.GasLimit > 0 && gasUsed+r.GasUsed > c.cfg.GasLimit {
				db.Revert(snap)
				break // block is full; keep FIFO order
			}
			gasUsed += r.GasUsed
			included = append(included, tx)
		}
	}
	root, err := db.Commit()
	if err != nil {
		return nil, fmt.Errorf("ledger: propose commit: %w", err)
	}
	// Speculative execution above is not the block's canonical execution,
	// so only the propose stage is stamped here; execute/state_commit are
	// stamped when the block is accepted through Append.
	if c.cfg.Tracer.Enabled() {
		for _, tx := range included {
			c.cfg.Tracer.Stamp(tx.Hash(), trace.StagePropose)
		}
	}
	b := &types.Block{
		Header: types.Header{
			Number:     number,
			ParentHash: parent.block.Hash(),
			Time:       time.Now().UnixNano(),
			Difficulty: difficulty,
			Proposer:   proposer,
			View:       view,
			GasLimit:   c.cfg.GasLimit,
			StateRoot:  root,
			TxRoot:     merkle.TxRoot(included),
			GasUsed:    gasUsed,
		},
		Txs: included,
	}
	return b, nil
}

// State returns a read-only view of the state at the canonical head.
func (c *Chain) State() (*state.DB, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.headState == nil {
		db, err := c.cfg.StateFactory(c.head.stateRoot)
		if err != nil {
			return nil, err
		}
		c.headState = db
	}
	return c.headState, nil
}

// StateAt returns the state as of the canonical block at the given
// height. Platforms without state versioning return an error for
// non-head heights.
func (c *Chain) StateAt(number uint64) (*state.DB, error) {
	c.mu.RLock()
	if number >= uint64(len(c.canonical)) {
		c.mu.RUnlock()
		return nil, fmt.Errorf("ledger: no block %d", number)
	}
	root := c.entries[c.canonical[number]].stateRoot
	head := c.head.block.Number()
	c.mu.RUnlock()
	if !c.cfg.SupportsForks && number != head {
		return nil, fmt.Errorf("ledger: platform keeps no historical state (asked for block %d, head %d)", number, head)
	}
	return c.cfg.StateFactory(root)
}

// GetBlock returns the canonical block at a height.
func (c *Chain) GetBlock(number uint64) (*types.Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if number >= uint64(len(c.canonical)) {
		return nil, false
	}
	return c.entries[c.canonical[number]].block, true
}

// BlocksFrom returns up to limit canonical blocks with height > h, in
// order — the paper's getLatestBlock(h) poll.
func (c *Chain) BlocksFrom(h uint64, limit int) []*types.Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*types.Block
	for n := h + 1; n < uint64(len(c.canonical)); n++ {
		out = append(out, c.entries[c.canonical[n]].block)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Receipt returns the receipt for a transaction on the canonical chain.
func (c *Chain) Receipt(txHash types.Hash) (*types.Receipt, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.byTx[txHash]
	return r, ok
}

// Receipts returns the receipts of a canonical block.
func (c *Chain) Receipts(number uint64) []*types.Receipt {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if number >= uint64(len(c.canonical)) {
		return nil
	}
	return c.entries[c.canonical[number]].receipts
}

// Height returns the canonical head height.
func (c *Chain) Height() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.head.block.Number()
}

// KnownBlocks returns the count of all non-genesis blocks this node has
// accepted, including abandoned forks; with Height it yields the paper's
// security metric (total generated vs on the main branch).
func (c *Chain) KnownBlocks() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.appended
}

// KnownHashes returns the hashes of every non-genesis block this node
// has accepted, canonical or not. The fork experiment unions these
// across nodes to count blocks generated on all branches.
func (c *Chain) KnownHashes() []types.Hash {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]types.Hash, 0, len(c.entries)-1)
	genesis := c.canonical[0]
	for h := range c.entries {
		if h != genesis {
			out = append(out, h)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
