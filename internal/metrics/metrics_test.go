package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
	c.Add(5)
	if c.Value() != 8005 {
		t.Fatal("Add failed")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got < 0.049 || got > 0.051 {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Quantile(0.99); got < 0.098 || got > 0.100 {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Quantile(1.0); got != 0.1 {
		t.Fatalf("p100 = %v", got)
	}
	mean := h.Mean()
	if mean < 0.050 || mean > 0.051 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	v, f := h.CDF(10)
	if v != nil || f != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestHistogramCDFMonotonic(t *testing.T) {
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Observe(time.Duration(i%37) * time.Millisecond)
	}
	values, fractions := h.CDF(20)
	if len(values) != 20 || len(fractions) != 20 {
		t.Fatalf("lengths: %d, %d", len(values), len(fractions))
	}
	for i := 1; i < 20; i++ {
		if values[i] < values[i-1] {
			t.Fatal("CDF values not monotone")
		}
		if fractions[i] <= fractions[i-1] {
			t.Fatal("CDF fractions not monotone")
		}
	}
	if fractions[19] != 1.0 {
		t.Fatalf("last fraction = %v", fractions[19])
	}
}

func TestTimeSeriesSumAndAverage(t *testing.T) {
	start := time.Unix(1000, 0)
	sum := NewTimeSeries(start, time.Second, false)
	avg := NewTimeSeries(start, time.Second, true)
	for i := 0; i < 4; i++ {
		ts := start.Add(time.Duration(i) * 250 * time.Millisecond)
		sum.Sample(ts, 2)
		avg.Sample(ts, float64(i))
	}
	sum.Sample(start.Add(1500*time.Millisecond), 7)
	if got := sum.Values(); got[0] != 8 || got[1] != 7 {
		t.Fatalf("sum series = %v", got)
	}
	if got := avg.Values(); got[0] != 1.5 {
		t.Fatalf("avg series = %v", got)
	}
	// Samples before start are ignored, not panicking.
	sum.Sample(start.Add(-time.Second), 100)
	if got := sum.Values(); got[0] != 8 {
		t.Fatal("negative-time sample corrupted series")
	}
	if sum.BucketSeconds() != 1 {
		t.Fatal("bucket seconds wrong")
	}
}

func TestFixedHistogramObserveAndQuantile(t *testing.T) {
	var h FixedHistogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty FixedHistogram should report zeros")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 500.5; got < want*0.999 || got > want*1.001 {
		t.Fatalf("sum = %v, want ~%v", got, want)
	}
	// Bucket width is 10^0.1 ≈ 1.26; estimates must land within ±30%.
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.500}, {0.99, 0.990}, {0.10, 0.100},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want*0.7 || got > tc.want*1.3 {
			t.Fatalf("q=%v estimate %v, want within 30%% of %v", tc.q, got, tc.want)
		}
	}
	// Quantile must be monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestFixedHistogramExtremes(t *testing.T) {
	var h FixedHistogram
	h.Observe(-time.Second)       // clamps to 0 → bucket 0
	h.Observe(0)                  // bucket 0
	h.Observe(time.Nanosecond)    // below min → bucket 0
	h.Observe(1000 * time.Second) // beyond max decade → overflow bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	bounds, cum := h.Buckets()
	if cum[0] != 3 {
		t.Fatalf("underflow bucket holds %d, want 3", cum[0])
	}
	last := len(cum) - 1
	if cum[last] != 4 || cum[last-1] != 3 {
		t.Fatalf("overflow bucket miscounted: %v", cum[last-2:])
	}
	if !math.IsInf(bounds[last], 1) {
		t.Fatal("last bound must be +Inf")
	}
	// An overflow-dominated quantile reports the finite floor, not Inf.
	if v := h.Quantile(1.0); math.IsInf(v, 1) || v <= 0 {
		t.Fatalf("overflow quantile = %v", v)
	}
}

func TestFixedHistogramMergeAndReset(t *testing.T) {
	var a, b FixedHistogram
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
		b.Observe(time.Duration(i) * time.Microsecond)
	}
	a.Merge(&b)
	a.Merge(nil)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	wantSum := 5.05 + 0.00505
	if got := a.Sum(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Fatalf("merged sum = %v, want ~%v", got, wantSum)
	}
	_, cum := a.Buckets()
	if cum[len(cum)-1] != 200 {
		t.Fatal("cumulative buckets disagree with count")
	}
	a.Reset()
	if a.Count() != 0 || a.Sum() != 0 || a.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestFixedBucketBoundaries(t *testing.T) {
	// Every bound must land in its own bucket (inclusive upper bound),
	// and a hair above it in the next.
	for i := 0; i < fixedBucketCount-1; i++ {
		b := fixedBounds[i]
		if got := fixedBucketOf(b); got != i && !(i == 0 && got == 0) {
			t.Fatalf("bound %v landed in bucket %d, want %d", b, got, i)
		}
		if got := fixedBucketOf(b * 1.0001); got != i+1 {
			t.Fatalf("just above bound %v landed in bucket %d, want %d", b, got, i+1)
		}
	}
}

func TestFixedHistogramConcurrent(t *testing.T) {
	var h FixedHistogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	_, cum := h.Buckets()
	if cum[len(cum)-1] != 8000 {
		t.Fatal("bucket counts lost samples")
	}
}
