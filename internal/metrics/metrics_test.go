package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
	c.Add(5)
	if c.Value() != 8005 {
		t.Fatal("Add failed")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got < 0.049 || got > 0.051 {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Quantile(0.99); got < 0.098 || got > 0.100 {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Quantile(1.0); got != 0.1 {
		t.Fatalf("p100 = %v", got)
	}
	mean := h.Mean()
	if mean < 0.050 || mean > 0.051 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	v, f := h.CDF(10)
	if v != nil || f != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestHistogramCDFMonotonic(t *testing.T) {
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Observe(time.Duration(i%37) * time.Millisecond)
	}
	values, fractions := h.CDF(20)
	if len(values) != 20 || len(fractions) != 20 {
		t.Fatalf("lengths: %d, %d", len(values), len(fractions))
	}
	for i := 1; i < 20; i++ {
		if values[i] < values[i-1] {
			t.Fatal("CDF values not monotone")
		}
		if fractions[i] <= fractions[i-1] {
			t.Fatal("CDF fractions not monotone")
		}
	}
	if fractions[19] != 1.0 {
		t.Fatalf("last fraction = %v", fractions[19])
	}
}

func TestTimeSeriesSumAndAverage(t *testing.T) {
	start := time.Unix(1000, 0)
	sum := NewTimeSeries(start, time.Second, false)
	avg := NewTimeSeries(start, time.Second, true)
	for i := 0; i < 4; i++ {
		ts := start.Add(time.Duration(i) * 250 * time.Millisecond)
		sum.Sample(ts, 2)
		avg.Sample(ts, float64(i))
	}
	sum.Sample(start.Add(1500*time.Millisecond), 7)
	if got := sum.Values(); got[0] != 8 || got[1] != 7 {
		t.Fatalf("sum series = %v", got)
	}
	if got := avg.Values(); got[0] != 1.5 {
		t.Fatalf("avg series = %v", got)
	}
	// Samples before start are ignored, not panicking.
	sum.Sample(start.Add(-time.Second), 100)
	if got := sum.Values(); got[0] != 8 {
		t.Fatal("negative-time sample corrupted series")
	}
	if sum.BucketSeconds() != 1 {
		t.Fatal("bucket seconds wrong")
	}
}
