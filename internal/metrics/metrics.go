// Package metrics provides the measurement primitives behind the
// BLOCKBENCH stats collector: counters, latency histograms with
// percentile and CDF extraction, and wall-clock-bucketed time series for
// the commit-rate, queue-length and utilization figures.
//
// Two histogram types coexist deliberately:
//
//   - Histogram retains every raw sample. Percentiles and CDF points
//     are exact, which the paper-figure reports need (Fig 17's latency
//     distribution), but memory grows with the sample count — use it
//     only where the run bounds the samples (one latency observation
//     per committed transaction of a finite run).
//   - FixedHistogram buckets samples into a fixed log-spaced layout:
//     memory is constant no matter how long the run, observation is a
//     few atomic adds (safe from any goroutine without locking), and
//     two histograms merge bucket-wise. Quantiles are approximate to
//     within one bucket (~26% width). Long-running or hot-path stats —
//     the per-stage pipeline latencies of internal/trace, anything
//     surfaced on a live /metrics endpoint — belong here.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CounterProvider is implemented by consensus and execution engines that
// expose named monotonic counters to the driver's metric stream. Keys
// are namespaced "engine.metric" (e.g. "pow.hashes", "raft.elections",
// "exec.time_ns"); values must only grow, so per-run deltas and per-node
// sums are meaningful. The platform cluster aggregates providers across
// nodes without knowing concrete engine types — implementing this
// interface is all a new backend needs for its counters to appear in
// Report.Counters and every Snapshot.
//
// Keys for which GaugeKey reports true are exempt from the only-grow
// contract's delta treatment: they carry configuration levels, and the
// driver passes their summed value through unchanged instead of
// differencing it across the run.
type CounterProvider interface {
	Counters() map[string]uint64
}

// GaugeKey reports whether a counter key carries an absolute level (a
// configuration constant like a pool size) rather than a monotonic
// total. The driver's per-run delta would cancel such a key to zero,
// so it keeps the raw value instead. The convention is by suffix:
// ".workers" names configured pool sizes (summed across nodes by the
// cluster aggregation, so a 3-node cluster at workers=4 reports 12).
func GaugeKey(key string) bool {
	const suffix = ".workers"
	return len(key) >= len(suffix) && key[len(key)-len(suffix):] == suffix
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates duration samples and reports order statistics.
// It retains raw samples (experiments are bounded), which keeps
// percentiles exact rather than approximate.
type Histogram struct {
	mu      sync.Mutex
	samples []float64 // seconds
	sorted  bool
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d.Seconds())
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the average sample in seconds (0 if empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += s
	}
	return sum / float64(len(h.samples))
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-th (0..1) sample in seconds (0 if empty).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// CDF returns (value, cumulative fraction) pairs at the given points,
// producing the latency-distribution curves of Fig 17.
func (h *Histogram) CDF(points int) (values, fractions []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 || points <= 0 {
		return nil, nil
	}
	h.sortLocked()
	values = make([]float64, points)
	fractions = make([]float64, points)
	for i := 0; i < points; i++ {
		f := float64(i+1) / float64(points)
		idx := int(f*float64(len(h.samples))) - 1
		if idx < 0 {
			idx = 0
		}
		values[i] = h.samples[idx]
		fractions[i] = f
	}
	return values, fractions
}

// FixedHistogram bucket layout: bucket 0 catches everything at or
// below fixedMinSeconds, then fixedPerDecade log-spaced buckets per
// decade across fixedDecades decades, and a final overflow bucket.
// With 10 buckets per decade the bucket width ratio is 10^0.1 ≈ 1.26,
// so quantiles are exact to within ~26% — plenty for p50/p99 stage
// attribution, at 82 words of memory per histogram.
const (
	fixedMinSeconds  = 1e-6
	fixedPerDecade   = 10
	fixedDecades     = 8 // 1µs .. 100s
	fixedBucketCount = fixedPerDecade*fixedDecades + 2
)

// fixedBounds[i] is the inclusive upper bound of bucket i in seconds;
// the last bucket is unbounded.
var fixedBounds = func() [fixedBucketCount]float64 {
	var b [fixedBucketCount]float64
	for i := range b {
		b[i] = fixedMinSeconds * math.Pow(10, float64(i)/fixedPerDecade)
	}
	b[fixedBucketCount-1] = math.Inf(1)
	return b
}()

// fixedBucketOf maps a sample in seconds to its bucket index. The log
// gives the neighborhood; the comparisons absorb floating-point error
// at the boundaries.
func fixedBucketOf(s float64) int {
	if s <= fixedMinSeconds {
		return 0
	}
	i := int(math.Log10(s/fixedMinSeconds) * fixedPerDecade)
	if i < 0 {
		i = 0
	}
	if i > fixedBucketCount-1 {
		i = fixedBucketCount - 1
	}
	for i < fixedBucketCount-1 && s > fixedBounds[i] {
		i++
	}
	for i > 0 && s <= fixedBounds[i-1] {
		i--
	}
	return i
}

// FixedHistogram is a bounded-memory latency histogram over fixed
// log-spaced buckets (see the package comment for when to prefer it
// over Histogram). All methods are safe for concurrent use; Observe is
// lock-free.
type FixedHistogram struct {
	counts   [fixedBucketCount]atomic.Uint64
	total    atomic.Uint64
	sumNanos atomic.Int64
}

// Observe records one duration sample.
func (h *FixedHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[fixedBucketOf(d.Seconds())].Add(1)
	h.total.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the number of samples.
func (h *FixedHistogram) Count() uint64 { return h.total.Load() }

// Sum returns the total of all samples in seconds.
func (h *FixedHistogram) Sum() float64 {
	return float64(h.sumNanos.Load()) / 1e9
}

// Mean returns the average sample in seconds (0 if empty).
func (h *FixedHistogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns an estimate of the q-th (0..1) sample in seconds,
// linearly interpolated within the containing bucket (0 if empty).
func (h *FixedHistogram) Quantile(q float64) float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum float64
	for i := 0; i < fixedBucketCount; i++ {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = fixedBounds[i-1]
			}
			hi := fixedBounds[i]
			if math.IsInf(hi, 1) {
				return lo // overflow bucket: report its floor
			}
			frac := (rank - cum) / c
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return fixedBounds[fixedBucketCount-2]
}

// Merge adds o's samples into h bucket-wise. The layouts are identical
// by construction, so merging loses nothing beyond each histogram's own
// bucketing error.
func (h *FixedHistogram) Merge(o *FixedHistogram) {
	if o == nil {
		return
	}
	for i := range h.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sumNanos.Add(o.sumNanos.Load())
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Observe calls; callers reset between runs, not during them.
func (h *FixedHistogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sumNanos.Store(0)
}

// Buckets returns the histogram's upper bounds (seconds; the last is
// +Inf) and the cumulative count at or below each bound — the shape a
// Prometheus histogram exposition needs.
func (h *FixedHistogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, fixedBucketCount)
	cumulative = make([]uint64, fixedBucketCount)
	var cum uint64
	for i := 0; i < fixedBucketCount; i++ {
		cum += h.counts[i].Load()
		bounds[i] = fixedBounds[i]
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// TimeSeries buckets values by elapsed wall-clock seconds from a start
// time, producing the over-time figures (committed tx, queue length,
// utilization).
type TimeSeries struct {
	mu      sync.Mutex
	start   time.Time
	bucket  time.Duration
	values  []float64
	counts  []int
	average bool // report bucket mean rather than sum
}

// NewTimeSeries creates a series with the given bucket width. If average
// is true, Sample values are averaged per bucket; otherwise summed.
func NewTimeSeries(start time.Time, bucket time.Duration, average bool) *TimeSeries {
	return &TimeSeries{start: start, bucket: bucket, average: average}
}

// Sample records v at time ts.
func (s *TimeSeries) Sample(ts time.Time, v float64) {
	idx := int(ts.Sub(s.start) / s.bucket)
	if idx < 0 {
		return
	}
	s.mu.Lock()
	for len(s.values) <= idx {
		s.values = append(s.values, 0)
		s.counts = append(s.counts, 0)
	}
	s.values[idx] += v
	s.counts[idx]++
	s.mu.Unlock()
}

// Values returns one value per bucket.
func (s *TimeSeries) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.values))
	for i, v := range s.values {
		if s.average && s.counts[i] > 0 {
			out[i] = v / float64(s.counts[i])
		} else {
			out[i] = v
		}
	}
	return out
}

// BucketSeconds returns the bucket width in seconds.
func (s *TimeSeries) BucketSeconds() float64 { return s.bucket.Seconds() }
