// Package metrics provides the measurement primitives behind the
// BLOCKBENCH stats collector: counters, latency histograms with
// percentile and CDF extraction, and wall-clock-bucketed time series for
// the commit-rate, queue-length and utilization figures.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CounterProvider is implemented by consensus and execution engines that
// expose named monotonic counters to the driver's metric stream. Keys
// are namespaced "engine.metric" (e.g. "pow.hashes", "raft.elections",
// "exec.time_ns"); values must only grow, so per-run deltas and per-node
// sums are meaningful. The platform cluster aggregates providers across
// nodes without knowing concrete engine types — implementing this
// interface is all a new backend needs for its counters to appear in
// Report.Counters and every Snapshot.
//
// Keys for which GaugeKey reports true are exempt from the only-grow
// contract's delta treatment: they carry configuration levels, and the
// driver passes their summed value through unchanged instead of
// differencing it across the run.
type CounterProvider interface {
	Counters() map[string]uint64
}

// GaugeKey reports whether a counter key carries an absolute level (a
// configuration constant like a pool size) rather than a monotonic
// total. The driver's per-run delta would cancel such a key to zero,
// so it keeps the raw value instead. The convention is by suffix:
// ".workers" names configured pool sizes (summed across nodes by the
// cluster aggregation, so a 3-node cluster at workers=4 reports 12).
func GaugeKey(key string) bool {
	const suffix = ".workers"
	return len(key) >= len(suffix) && key[len(key)-len(suffix):] == suffix
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates duration samples and reports order statistics.
// It retains raw samples (experiments are bounded), which keeps
// percentiles exact rather than approximate.
type Histogram struct {
	mu      sync.Mutex
	samples []float64 // seconds
	sorted  bool
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d.Seconds())
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the average sample in seconds (0 if empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += s
	}
	return sum / float64(len(h.samples))
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-th (0..1) sample in seconds (0 if empty).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// CDF returns (value, cumulative fraction) pairs at the given points,
// producing the latency-distribution curves of Fig 17.
func (h *Histogram) CDF(points int) (values, fractions []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 || points <= 0 {
		return nil, nil
	}
	h.sortLocked()
	values = make([]float64, points)
	fractions = make([]float64, points)
	for i := 0; i < points; i++ {
		f := float64(i+1) / float64(points)
		idx := int(f*float64(len(h.samples))) - 1
		if idx < 0 {
			idx = 0
		}
		values[i] = h.samples[idx]
		fractions[i] = f
	}
	return values, fractions
}

// TimeSeries buckets values by elapsed wall-clock seconds from a start
// time, producing the over-time figures (committed tx, queue length,
// utilization).
type TimeSeries struct {
	mu      sync.Mutex
	start   time.Time
	bucket  time.Duration
	values  []float64
	counts  []int
	average bool // report bucket mean rather than sum
}

// NewTimeSeries creates a series with the given bucket width. If average
// is true, Sample values are averaged per bucket; otherwise summed.
func NewTimeSeries(start time.Time, bucket time.Duration, average bool) *TimeSeries {
	return &TimeSeries{start: start, bucket: bucket, average: average}
}

// Sample records v at time ts.
func (s *TimeSeries) Sample(ts time.Time, v float64) {
	idx := int(ts.Sub(s.start) / s.bucket)
	if idx < 0 {
		return
	}
	s.mu.Lock()
	for len(s.values) <= idx {
		s.values = append(s.values, 0)
		s.counts = append(s.counts, 0)
	}
	s.values[idx] += v
	s.counts[idx]++
	s.mu.Unlock()
}

// Values returns one value per bucket.
func (s *TimeSeries) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.values))
	for i, v := range s.values {
		if s.average && s.counts[i] > 0 {
			out[i] = v / float64(s.counts[i])
		} else {
			out[i] = v
		}
	}
	return out
}

// BucketSeconds returns the bucket width in seconds.
func (s *TimeSeries) BucketSeconds() float64 { return s.bucket.Seconds() }
