// Package node assembles a full validating blockchain node: network
// endpoint, transaction pool, ledger, execution engine and consensus
// engine, plus the RPC surface that BLOCKBENCH clients drive
// (send-transaction, block-range polling, state and historical queries).
package node

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/analytics"
	"blockbench/internal/consensus"
	"blockbench/internal/crypto"
	"blockbench/internal/exec"
	"blockbench/internal/ledger"
	"blockbench/internal/simnet"
	"blockbench/internal/trace"
	"blockbench/internal/txpool"
	"blockbench/internal/types"
)

// Config assembles one node.
type Config struct {
	ID    simnet.NodeID
	Key   *crypto.Key
	Net   *simnet.Network
	Chain *ledger.Chain
	Pool  *txpool.Pool
	Exec  exec.Engine
	// NewConsensus builds the consensus engine once the endpoint exists.
	NewConsensus func(consensus.Context) consensus.Engine
	Peers        []simnet.NodeID

	// RPCLatency models the client↔server network round trip added to
	// every RPC (the analytics experiments are dominated by it).
	RPCLatency time.Duration
	// ConfirmationDepth hides the newest blocks from BlocksFrom until
	// they are buried this deep (the paper's confirmationLength for
	// Ethereum and Parity; Hyperledger confirms immediately, depth 0).
	ConfirmationDepth uint64

	// Analytics is the node's columnar ledger index; AnalyticsQuery
	// serves from it. Nil when the index is disabled.
	Analytics *analytics.Indexer

	// ServerSigns moves transaction signing into the server's serial
	// ingestion path (Parity signs on behalf of unlocked accounts, so
	// the server holds the account keys). IngestCost is the additional
	// per-transaction processing time of that path — together they are
	// the bottleneck the paper identified ("the bottleneck in Parity is
	// caused by transaction signing").
	ServerSigns bool
	IngestCost  time.Duration
	IngestQueue int
	// Keyring holds the account keys a ServerSigns node signs with.
	Keyring map[types.Address]*crypto.Key

	// VerifyIngress validates transaction signatures as they arrive
	// (client RPC and gossip) on the node's single dispatch thread, as
	// Fabric does. Combined with bounded inboxes, this is the processing
	// load behind the paper's Hyperledger collapse at scale. Requires
	// Registry.
	VerifyIngress bool
	Registry      *crypto.Registry

	// Tracer is the cluster's lifecycle tracer (nil-safe), handed to the
	// consensus engine through its Context.
	Tracer *trace.Tracer

	// Meta is durable hard-state storage for the consensus engine's crash
	// recovery, handed through the Context (may be nil).
	Meta consensus.MetaStore
}

// Router intercepts the client-facing transaction path. A consensus
// engine that also implements Router (the sharded platform's engine)
// takes over ingress: SendTransaction hands submissions to SubmitTx
// instead of the local pool, and commits that happen on chains other
// than this node's — a routed transaction executing on a foreign shard
// — are surfaced back to this node's pollers through DrainRemoteCommits
// (folded into BlocksFrom) and CommittedElsewhere (folded into Receipt).
type Router interface {
	// SubmitTx routes one client transaction; an error means "busy,
	// retry" exactly like ErrBusy on the ingestion queue.
	SubmitTx(tx *types.Transaction) error
	// DrainRemoteCommits returns transaction IDs committed on foreign
	// chains since the last call (each ID is delivered once).
	DrainRemoteCommits() []types.Hash
	// CommittedElsewhere reports whether id is known committed on a
	// foreign chain.
	CommittedElsewhere(id types.Hash) bool
}

// LeaseReader is implemented by consensus engines that classify client
// reads under a leader lease (the Raft engine, and the sharded engine
// via its shard group's replica). LeaseRead reports whether this
// replica can serve a linearizable read locally right now — it is the
// leader and has heard from a majority within its lease window. When it
// cannot, the node models the redirect hop a real deployment would pay
// to reach the leader as one extra RPC round trip; the engine surfaces
// the split as raft.lease_reads vs raft.read_redirects counters.
type LeaseReader interface {
	LeaseRead() bool
}

// ErrStopped is returned by RPCs on a stopped node.
var ErrStopped = errors.New("node: stopped")

// ErrBusy is returned when the server-side ingestion queue is full.
var ErrBusy = errors.New("node: ingestion queue full")

// Node is a running blockchain server.
type Node struct {
	cfg    Config
	ep     *simnet.Endpoint
	cons   consensus.Engine
	router Router      // non-nil when the consensus engine routes ingress
	lease  LeaseReader // non-nil when the consensus engine leases reads

	ingest  chan *types.Transaction
	stop    chan struct{}
	done    sync.WaitGroup
	started atomic.Bool
	stopped atomic.Bool

	rpcs     atomic.Uint64
	txsTaken atomic.Uint64
}

// New wires a node together (does not start goroutines).
func New(cfg Config) *Node {
	ep := cfg.Net.Join(cfg.ID)
	n := &Node{
		cfg:  cfg,
		ep:   ep,
		stop: make(chan struct{}),
	}
	ctx := consensus.Context{
		Self:     cfg.ID,
		Endpoint: ep,
		Chain:    cfg.Chain,
		Pool:     cfg.Pool,
		Address:  cfg.Key.Address(),
		Peers:    cfg.Peers,
		Tracer:   cfg.Tracer,
		Meta:     cfg.Meta,
	}
	n.cons = cfg.NewConsensus(ctx)
	if r, ok := n.cons.(Router); ok {
		n.router = r
	}
	if lr, ok := n.cons.(LeaseReader); ok {
		n.lease = lr
	}
	if cfg.ServerSigns {
		q := cfg.IngestQueue
		if q <= 0 {
			q = 512
		}
		n.ingest = make(chan *types.Transaction, q)
	}
	return n
}

// Start launches the node's goroutines.
func (n *Node) Start() {
	if !n.started.CompareAndSwap(false, true) {
		return
	}
	n.done.Add(1)
	go n.inboxLoop()
	if n.ingest != nil {
		n.done.Add(1)
		go n.ingestLoop()
	}
	n.cons.Start()
}

// Stop halts the node.
func (n *Node) Stop() {
	if !n.stopped.CompareAndSwap(false, true) {
		return
	}
	n.cons.Stop()
	close(n.stop)
	n.done.Wait()
}

// ID returns the node's network identity.
func (n *Node) ID() simnet.NodeID { return n.cfg.ID }

// Chain exposes the node's ledger (used by experiments for fork counts).
func (n *Node) Chain() *ledger.Chain { return n.cfg.Chain }

// Pool exposes the node's pending pool.
func (n *Node) Pool() *txpool.Pool { return n.cfg.Pool }

// Consensus exposes the consensus engine for protocol-level metrics.
func (n *Node) Consensus() consensus.Engine { return n.cons }

// Endpoint exposes network counters.
func (n *Node) Endpoint() *simnet.Endpoint { return n.ep }

// inboxLoop is the node's single message-processing thread. One thread
// per node matches the paper's observation that servers saturate on
// message processing under load.
func (n *Node) inboxLoop() {
	defer n.done.Done()
	for {
		select {
		case <-n.stop:
			return
		case msg := <-n.ep.Inbox:
			n.dispatch(msg)
		}
	}
}

func (n *Node) dispatch(msg simnet.Message) {
	if msg.Type == consensus.MsgTx {
		tx, ok := msg.Payload.(*types.Transaction)
		if !ok || msg.Corrupt {
			return
		}
		if n.cfg.VerifyIngress && n.cfg.Registry != nil && !n.cfg.Registry.VerifyTx(tx) {
			return
		}
		n.cfg.Pool.Add(tx)
		return
	}
	n.cons.Handle(msg)
}

// ingestLoop serializes server-side transaction processing (Parity).
func (n *Node) ingestLoop() {
	defer n.done.Done()
	for {
		select {
		case <-n.stop:
			return
		case tx := <-n.ingest:
			// Signing plus queue management on a single thread: the
			// constant per-transaction cost that caps Parity throughput.
			key := n.cfg.Keyring[tx.From]
			if key == nil {
				continue // unknown account: cannot sign
			}
			if err := crypto.SignTx(tx, key); err != nil {
				continue
			}
			time.Sleep(n.cfg.IngestCost)
			n.admit(tx)
		}
	}
}

func (n *Node) admit(tx *types.Transaction) {
	if n.cfg.Pool.Add(tx) {
		n.txsTaken.Add(1)
		n.ep.Broadcast(consensus.MsgTx, tx)
	}
}

func (n *Node) rpc() error {
	if n.stopped.Load() || n.cfg.Net.Crashed(n.cfg.ID) {
		return ErrStopped
	}
	n.rpcs.Add(1)
	if n.cfg.RPCLatency > 0 {
		time.Sleep(n.cfg.RPCLatency)
	}
	return nil
}

// SendTransaction is the asynchronous submit RPC: it enqueues the
// transaction and returns its ID; clients poll BlocksFrom for
// confirmation (the paper's asynchronous-driver pattern).
func (n *Node) SendTransaction(tx *types.Transaction) (types.Hash, error) {
	if err := n.rpc(); err != nil {
		return types.ZeroHash, err
	}
	// Pin the content hash before the transaction crosses into the
	// server's signing thread: Hash() excludes the signature and caches,
	// so the id the client polls for stays stable while ingestLoop signs
	// the same object concurrently.
	id := tx.Hash()
	if n.router != nil {
		if err := n.router.SubmitTx(tx); err != nil {
			return types.ZeroHash, err
		}
		return id, nil
	}
	if n.ingest != nil {
		select {
		case n.ingest <- tx:
			return id, nil
		default:
			return types.ZeroHash, ErrBusy
		}
	}
	n.admit(tx)
	return id, nil
}

// BlockInfo is the confirmed-block summary returned to pollers.
type BlockInfo struct {
	Number uint64
	Hash   types.Hash
	TxIDs  []types.Hash
}

// leaseCheck classifies a read RPC against the consensus engine's
// leader lease, if it keeps one: a replica that cannot vouch for
// freshness (follower, or a leader whose lease lapsed) costs the extra
// round trip of redirecting the client to the leader.
func (n *Node) leaseCheck() {
	if n.lease != nil && !n.lease.LeaseRead() && n.cfg.RPCLatency > 0 {
		time.Sleep(n.cfg.RPCLatency)
	}
}

// BlocksFrom returns confirmed canonical blocks above height h — the
// connector's getLatestBlock(h).
func (n *Node) BlocksFrom(h uint64) ([]BlockInfo, error) {
	if err := n.rpc(); err != nil {
		return nil, err
	}
	n.leaseCheck()
	var out []BlockInfo
	height := n.cfg.Chain.Height()
	if height >= n.cfg.ConfirmationDepth {
		confirmed := height - n.cfg.ConfirmationDepth
		for _, b := range n.cfg.Chain.BlocksFrom(h, 0) {
			if b.Number() > confirmed {
				break
			}
			info := BlockInfo{Number: b.Number(), Hash: b.Hash()}
			for _, tx := range b.Txs {
				info.TxIDs = append(info.TxIDs, tx.Hash())
			}
			out = append(out, info)
		}
	}
	if n.router != nil {
		// Commits routed to foreign chains ride along as one synthetic
		// frame; Number 0 keeps the caller's height cursor untouched.
		if ids := n.router.DrainRemoteCommits(); len(ids) > 0 {
			out = append(out, BlockInfo{TxIDs: ids})
		}
	}
	return out, nil
}

// Height returns the confirmed chain height.
func (n *Node) Height() (uint64, error) {
	if err := n.rpc(); err != nil {
		return 0, err
	}
	h := n.cfg.Chain.Height()
	if h < n.cfg.ConfirmationDepth {
		return 0, nil
	}
	return h - n.cfg.ConfirmationDepth, nil
}

// Block returns the full canonical block at a height (analytics Q1 reads
// transaction lists through this).
func (n *Node) Block(number uint64) (*types.Block, error) {
	if err := n.rpc(); err != nil {
		return nil, err
	}
	b, ok := n.cfg.Chain.GetBlock(number)
	if !ok {
		return nil, fmt.Errorf("node: no block %d", number)
	}
	return b, nil
}

// Query runs a read-only contract method against current state.
func (n *Node) Query(contract, method string, args [][]byte) ([]byte, error) {
	if err := n.rpc(); err != nil {
		return nil, err
	}
	db, err := n.cfg.Chain.State()
	if err != nil {
		return nil, err
	}
	return n.cfg.Exec.Query(db, contract, method, args)
}

// BalanceAt returns an account balance at a block height (Ethereum's
// getBalance(account, block) JSON-RPC; one version per round trip, which
// is why analytics Q2 needs one RPC per block on these platforms).
func (n *Node) BalanceAt(addr types.Address, number uint64) (uint64, error) {
	if err := n.rpc(); err != nil {
		return 0, err
	}
	db, err := n.cfg.Chain.StateAt(number)
	if err != nil {
		return 0, err
	}
	return db.GetBalance(addr), nil
}

// AnalyticsQuery serves one analytics request from the node's columnar
// ledger index — one round trip for a whole historical scan, against
// the per-block RPC walk the paper's baseline pays. The scanned range
// is clamped to the node's confirmation height, so analytical reads
// observe exactly the history the node serves as confirmed.
func (n *Node) AnalyticsQuery(q analytics.Query) (analytics.Result, error) {
	if err := n.rpc(); err != nil {
		return analytics.Result{}, err
	}
	n.leaseCheck()
	if n.cfg.Analytics == nil {
		return analytics.Result{}, fmt.Errorf("node %d: analytics index disabled", n.cfg.ID)
	}
	confirmed := uint64(0)
	if h := n.cfg.Chain.Height(); h >= n.cfg.ConfirmationDepth {
		confirmed = h - n.cfg.ConfirmationDepth
	}
	if q.To == 0 || q.To > confirmed+1 {
		q.To = confirmed + 1
	}
	return n.cfg.Analytics.Query(q)
}

// Receipt looks up a committed transaction's receipt.
func (n *Node) Receipt(txHash types.Hash) (*types.Receipt, bool, error) {
	if err := n.rpc(); err != nil {
		return nil, false, err
	}
	n.leaseCheck()
	r, ok := n.cfg.Chain.Receipt(txHash)
	if !ok && n.router != nil && n.router.CommittedElsewhere(txHash) {
		// Routed to a foreign chain and confirmed committed there; the
		// synthetic receipt carries no execution output.
		return &types.Receipt{TxHash: txHash, OK: true}, true, nil
	}
	return r, ok, nil
}

// RPCCount reports how many RPCs this node served.
func (n *Node) RPCCount() uint64 { return n.rpcs.Load() }
