package node

import (
	"testing"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/crypto"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/ledger"
	"blockbench/internal/simnet"
	"blockbench/internal/state"
	"blockbench/internal/txpool"
	"blockbench/internal/types"
)

// nullConsensus commits nothing; tests drive the chain directly.
type nullConsensus struct{}

func (nullConsensus) Start()                       {}
func (nullConsensus) Stop()                        {}
func (nullConsensus) Handle(m simnet.Message) bool { return false }

func newTestNode(t *testing.T, cfgMut func(*Config)) (*Node, *ledger.Chain, *crypto.Key) {
	t.Helper()
	key := crypto.DeterministicKey(9)
	store := kvstore.NewMem()
	eng, err := exec.NewEVMEngine(exec.MemModel{}, "ycsb")
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ledger.New(ledger.Config{
		Engine: eng,
		StateFactory: func(root types.Hash) (*state.DB, error) {
			b, err := state.NewTrieBackend(store, root, 0)
			if err != nil {
				return nil, err
			}
			return state.NewDB(b), nil
		},
		SupportsForks: true,
		GenesisAlloc:  map[types.Address]uint64{key.Address(): 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(simnet.Config{BaseLatency: time.Microsecond, InboxSize: 64})
	t.Cleanup(net.Close)
	cfg := Config{
		ID:    1,
		Key:   key,
		Net:   net,
		Chain: chain,
		Pool:  txpool.New(0),
		Exec:  eng,
		NewConsensus: func(consensus.Context) consensus.Engine {
			return nullConsensus{}
		},
		Peers: []simnet.NodeID{1},
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	n := New(cfg)
	t.Cleanup(n.Stop)
	n.Start()
	return n, chain, key
}

func appendBlock(t *testing.T, chain *ledger.Chain, txs []*types.Transaction) {
	t.Helper()
	b, err := chain.ProposeBlock(txs, types.ZeroAddress, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.Append(b); err != nil {
		t.Fatal(err)
	}
}

func TestSendTransactionAddsToPool(t *testing.T) {
	n, _, key := newTestNode(t, nil)
	tx := &types.Transaction{Contract: "ycsb", Method: "write",
		Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 100_000}
	if err := crypto.SignTx(tx, key); err != nil {
		t.Fatal(err)
	}
	id, err := n.SendTransaction(tx)
	if err != nil {
		t.Fatal(err)
	}
	if id != tx.Hash() {
		t.Fatal("wrong id")
	}
	if n.Pool().Len() != 1 {
		t.Fatal("tx not pooled")
	}
	if n.RPCCount() == 0 {
		t.Fatal("rpc counter not bumped")
	}
}

func TestConfirmationDepthHidesFreshBlocks(t *testing.T) {
	n, chain, key := newTestNode(t, func(c *Config) { c.ConfirmationDepth = 2 })
	for i := 0; i < 3; i++ {
		tx := &types.Transaction{Nonce: uint64(i), Contract: "ycsb", Method: "write",
			Args: [][]byte{{byte(i)}, []byte("v")}, GasLimit: 100_000}
		if err := crypto.SignTx(tx, key); err != nil {
			t.Fatal(err)
		}
		appendBlock(t, chain, []*types.Transaction{tx})
	}
	// Height 3, depth 2 → only block 1 is confirmed.
	blocks, err := n.BlocksFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0].Number != 1 {
		t.Fatalf("confirmed blocks = %+v", blocks)
	}
	h, err := n.Height()
	if err != nil || h != 1 {
		t.Fatalf("confirmed height = %d, %v", h, err)
	}
}

func TestServerSideSigningKeyring(t *testing.T) {
	key := crypto.DeterministicKey(9)
	n, chain, _ := newTestNode(t, func(c *Config) {
		c.ServerSigns = true
		c.IngestCost = time.Millisecond
		c.IngestQueue = 8
		c.Keyring = map[types.Address]*crypto.Key{key.Address(): key}
	})
	// Unsigned transaction from a known account: the server signs it.
	tx := &types.Transaction{From: key.Address(), Contract: "ycsb",
		Method: "write", Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 100_000}
	if _, err := n.SendTransaction(tx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Pool().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ingestion never admitted the tx")
		}
		time.Sleep(5 * time.Millisecond)
	}
	batch := n.Pool().Batch(1, 0)
	if len(batch[0].Sig) == 0 {
		t.Fatal("server did not sign")
	}
	// The signed tx validates in a block.
	appendBlock(t, chain, batch)
}

func TestIngestionQueueBackpressure(t *testing.T) {
	key := crypto.DeterministicKey(9)
	n, _, _ := newTestNode(t, func(c *Config) {
		c.ServerSigns = true
		c.IngestCost = 50 * time.Millisecond
		c.IngestQueue = 2
		c.Keyring = map[types.Address]*crypto.Key{key.Address(): key}
	})
	busy := false
	for i := 0; i < 10; i++ {
		tx := &types.Transaction{Nonce: uint64(i), From: key.Address(),
			Contract: "ycsb", Method: "write",
			Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 100_000}
		if _, err := n.SendTransaction(tx); err == ErrBusy {
			busy = true
			break
		}
	}
	if !busy {
		t.Fatal("slow ingestion never pushed back")
	}
}

func TestRPCOnCrashedNodeFails(t *testing.T) {
	n, _, _ := newTestNode(t, nil)
	n.cfg.Net.Crash(n.ID())
	if _, err := n.Height(); err == nil {
		t.Fatal("crashed node served RPC")
	}
	n.cfg.Net.Recover(n.ID())
	if _, err := n.Height(); err != nil {
		t.Fatal("recovered node refused RPC")
	}
}

func TestQueryAndBalanceAt(t *testing.T) {
	n, chain, key := newTestNode(t, nil)
	to := types.BytesToAddress([]byte("rcpt"))
	tx := &types.Transaction{To: to, Value: 250, GasLimit: 100_000}
	if err := crypto.SignTx(tx, key); err != nil {
		t.Fatal(err)
	}
	appendBlock(t, chain, []*types.Transaction{tx})
	appendBlock(t, chain, nil)

	bal, err := n.BalanceAt(to, 1)
	if err != nil || bal != 250 {
		t.Fatalf("balance at 1 = %d, %v", bal, err)
	}
	bal, err = n.BalanceAt(to, 0)
	if err != nil || bal != 0 {
		t.Fatalf("balance at 0 = %d, %v", bal, err)
	}
	b, err := n.Block(1)
	if err != nil || len(b.Txs) != 1 {
		t.Fatalf("block 1: %v, %v", b, err)
	}
	r, ok, err := n.Receipt(tx.Hash())
	if err != nil || !ok || !r.OK {
		t.Fatalf("receipt: %+v %v %v", r, ok, err)
	}
}

func TestGossipTxReachesPeerPool(t *testing.T) {
	// Two nodes on one network: a tx submitted to node 1 is broadcast
	// and lands in node 2's pool.
	key := crypto.DeterministicKey(9)
	store := kvstore.NewMem()
	eng, _ := exec.NewEVMEngine(exec.MemModel{}, "ycsb")
	mkChain := func() *ledger.Chain {
		c, err := ledger.New(ledger.Config{
			Engine: eng,
			StateFactory: func(root types.Hash) (*state.DB, error) {
				b, err := state.NewTrieBackend(store, root, 0)
				if err != nil {
					return nil, err
				}
				return state.NewDB(b), nil
			},
			SupportsForks: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	net := simnet.New(simnet.Config{BaseLatency: time.Microsecond, InboxSize: 64})
	defer net.Close()
	mk := func(id simnet.NodeID) *Node {
		n := New(Config{
			ID: id, Key: key, Net: net, Chain: mkChain(), Pool: txpool.New(0),
			Exec:         eng,
			NewConsensus: func(consensus.Context) consensus.Engine { return nullConsensus{} },
			Peers:        []simnet.NodeID{1, 2},
		})
		n.Start()
		t.Cleanup(n.Stop)
		return n
	}
	n1, n2 := mk(1), mk(2)
	tx := &types.Transaction{Contract: "ycsb", Method: "write",
		Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 100_000}
	if err := crypto.SignTx(tx, key); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.SendTransaction(tx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for n2.Pool().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gossip never reached peer")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
