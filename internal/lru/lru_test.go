package lru

import (
	"fmt"
	"testing"
)

func TestBasicGetPut(t *testing.T) {
	c := New(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("1"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("get a = %q, %v", v, ok)
	}
	c.Put("a", []byte("2"))
	if v, _ := c.Get("a"); string(v) != "2" {
		t.Fatal("update failed")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a") // refresh a; b becomes LRU
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
}

func TestRemove(t *testing.T) {
	c := New(4)
	c.Put("a", []byte("1"))
	c.Remove("a")
	c.Remove("missing") // no-op
	if _, ok := c.Get("a"); ok {
		t.Fatal("removed key still present")
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0)
	c.Put("a", []byte("1"))
	if c.Len() != 0 {
		t.Fatal("zero-cap cache stored an entry")
	}
}

func TestStats(t *testing.T) {
	c := New(4)
	c.Put("a", []byte("1"))
	c.Get("a")
	c.Get("b")
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d, %d", hits, misses)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New(16)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
		if c.Len() > 16 {
			t.Fatalf("cache grew to %d", c.Len())
		}
	}
}
