// Package lru implements the fixed-capacity least-recently-used cache
// that the Ethereum preset places in front of its state trie ("Ethereum
// only caches parts of the state in memory, using LRU for eviction
// policy").
package lru

import "container/list"

// Cache maps string keys to byte-slice values with LRU eviction. It is
// not safe for concurrent use; callers hold their own locks.
type Cache struct {
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits, misses uint64
}

type pair struct {
	key   string
	value []byte
}

// New creates a cache holding at most capacity entries. A non-positive
// capacity yields a cache that stores nothing.
func New(capacity int) *Cache {
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and whether it was present.
func (c *Cache) Get(key string) ([]byte, bool) {
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return e.Value.(*pair).value, true
	}
	c.misses++
	return nil, false
}

// Put inserts or refreshes key=value, evicting the LRU entry on overflow.
func (c *Cache) Put(key string, value []byte) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*pair).value = value
		return
	}
	e := c.ll.PushFront(&pair{key: key, value: value})
	c.items[key] = e
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*pair).key)
	}
}

// Remove drops key from the cache if present.
func (c *Cache) Remove(key string) {
	if e, ok := c.items[key]; ok {
		c.ll.Remove(e)
		delete(c.items, key)
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int { return c.ll.Len() }

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }
