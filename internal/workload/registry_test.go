package workload

import (
	"sort"
	"strings"
	"testing"
)

func TestRegisterValidation(t *testing.T) {
	if err := Register(Spec{Name: "", New: func(Options) (any, error) { return nil, nil }}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register(Spec{Name: "no-factory"}); err == nil {
		t.Fatal("missing factory accepted")
	}
	ok := Spec{Name: "reg-test", Description: "x",
		New: func(Options) (any, error) { return struct{}{}, nil }}
	if err := Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := Register(ok); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate not rejected: %v", err)
	}
	if Describe("reg-test") != "x" {
		t.Fatal("Describe lost the summary")
	}
	found := false
	for _, n := range Names() {
		if n == "reg-test" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered name missing from Names")
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("no-such-workload")
	if err == nil || !strings.Contains(err.Error(), "unknown name") {
		t.Fatalf("unknown lookup: %v", err)
	}
	if _, err := New("no-such-workload", nil); err == nil {
		t.Fatal("New built an unknown workload")
	}
}

func TestParseOptions(t *testing.T) {
	opts, err := ParseOptions([]string{"readprop=0.9", "distribution=uniform"})
	if err != nil {
		t.Fatal(err)
	}
	if opts["readprop"] != "0.9" || opts["distribution"] != "uniform" {
		t.Fatalf("bad parse: %v", opts)
	}
	// Values may themselves contain '='.
	opts, err = ParseOptions([]string{"expr=a=b"})
	if err != nil || opts["expr"] != "a=b" {
		t.Fatalf("value with '=': %v %v", opts, err)
	}
	for _, bad := range [][]string{
		{"noequals"},
		{"=val"},
		{"k=1", "k=2"},
	} {
		if _, err := ParseOptions(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestDecoderTypesAndDefaults(t *testing.T) {
	d := NewDecoder(Options{
		"i": "42", "u": "7", "f": "0.25", "b": "true", "s": "zipfian",
	})
	if got := d.Int("i", 0); got != 42 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.Uint64("u", 0); got != 7 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := d.Float("f", 0); got != 0.25 {
		t.Fatalf("Float = %v", got)
	}
	if !d.Bool("b", false) {
		t.Fatal("Bool = false")
	}
	if got := d.String("s", ""); got != "zipfian" {
		t.Fatalf("String = %q", got)
	}
	if got := d.Int("missing", 99); got != 99 {
		t.Fatalf("default = %d", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderErrors(t *testing.T) {
	d := NewDecoder(Options{"records": "many"})
	d.Int("records", 0)
	if err := d.Finish(); err == nil || !strings.Contains(err.Error(), "records") {
		t.Fatalf("conversion error lost: %v", err)
	}
	// Unconsumed keys are a typo'd -wopt.
	d = NewDecoder(Options{"recrods": "10"})
	d.Int("records", 0)
	if err := d.Finish(); err == nil || !strings.Contains(err.Error(), "recrods") {
		t.Fatalf("unknown option not flagged: %v", err)
	}
}

// TestNamesSorted: the listing is sorted, so -workloads help text and
// registry tests are deterministic regardless of which file's init
// block registered first.
func TestNamesSorted(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
}
