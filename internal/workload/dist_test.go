package workload

import (
	"math/rand"
	"testing"
)

func TestUniformInRange(t *testing.T) {
	u := Uniform{N: 10}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if k := u.Next(rng); k < 0 || k >= 10 {
			t.Fatalf("out of range: %d", k)
		}
	}
}

func TestZipfianSkewsLow(t *testing.T) {
	z := NewZipfian(1000)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 1000)
	const samples = 100_000
	for i := 0; i < samples; i++ {
		k := z.Next(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("out of range: %d", k)
		}
		counts[k]++
	}
	// Item 0 must be far hotter than a uniform share (100 expected).
	if counts[0] < 1000 {
		t.Fatalf("item 0 only %d hits; zipfian not skewed", counts[0])
	}
	// The head (first 10%) should dominate the tail's last 10%.
	head, tail := 0, 0
	for i := 0; i < 100; i++ {
		head += counts[i]
		tail += counts[900+i]
	}
	if head < 10*tail {
		t.Fatalf("head/tail = %d/%d; insufficient skew", head, tail)
	}
}

func TestLatestSkewsHigh(t *testing.T) {
	l := NewLatest(1000)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 1000)
	for i := 0; i < 100_000; i++ {
		k := l.Next(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("out of range: %d", k)
		}
		counts[k]++
	}
	if counts[999] < 1000 {
		t.Fatalf("latest item only %d hits", counts[999])
	}
	if counts[999] < counts[0] {
		t.Fatal("latest distribution favours old items")
	}
}

func TestZipfianSmallN(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		z := NewZipfian(n)
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 100; i++ {
			if k := z.Next(rng); k < 0 || k >= n {
				t.Fatalf("n=%d: out of range %d", n, k)
			}
		}
	}
}
