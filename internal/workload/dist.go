// Package workload provides the request-distribution generators behind
// the YCSB-style workloads: zipfian (the YCSB default), uniform and
// latest. The zipfian implementation follows the standard YCSB /
// Gray et al. rejection-free construction.
package workload

import (
	"math"
	"math/rand"
)

// KeyChooser selects record indices in [0, n).
type KeyChooser interface {
	Next(rng *rand.Rand) int
}

// Uniform picks keys uniformly.
type Uniform struct{ N int }

// Next implements KeyChooser.
func (u Uniform) Next(rng *rand.Rand) int { return rng.Intn(u.N) }

// Zipfian picks keys with a zipfian distribution (constant 0.99, as in
// YCSB), favouring low indices.
type Zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian builds a zipfian chooser over n items.
func NewZipfian(n int) *Zipfian {
	const theta = 0.99
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / pow(float64(i), theta)
	}
	return sum
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Next implements KeyChooser.
func (z *Zipfian) Next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+pow(0.5, z.theta) {
		return 1
	}
	idx := int(float64(z.n) * pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}

// Latest skews toward the most recently inserted records: index n-1 is
// the hottest.
type Latest struct{ Z *Zipfian }

// NewLatest builds a latest-distribution chooser over n items.
func NewLatest(n int) *Latest { return &Latest{Z: NewZipfian(n)} }

// Next implements KeyChooser.
func (l *Latest) Next(rng *rand.Rand) int {
	return l.Z.n - 1 - l.Z.Next(rng)
}
