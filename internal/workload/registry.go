// Registry: the application-layer extension seam. A workload registers
// a Spec (name, description, contracts, options-driven factory) and the
// driver CLI, experiments and framework users build instances by name —
// the workload-layer mirror of platform.Register.
//
// The package deliberately types factories as returning any: it sits
// below the root blockbench package (which defines the Workload
// interface over Cluster), so the root package narrows the value with a
// type assertion in blockbench.NewWorkload.
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Options carries the -wopt key=val parameters into a workload factory.
type Options map[string]string

// Spec describes one registered workload.
type Spec struct {
	// Name is the registry key (the CLI's -workload value).
	Name string
	// Description is a one-line summary shown in CLI usage listings.
	Description string
	// Contracts lists the contract names the workload deploys, without
	// instantiating it.
	Contracts []string
	// New builds a workload instance from options. The returned value
	// must implement blockbench.Workload.
	New func(opts Options) (any, error)
}

var (
	regMu sync.RWMutex
	specs = make(map[string]Spec)
)

// Register plugs a workload spec into the framework. It errors on a
// duplicate or empty name and on a missing factory.
func Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("workload: Register: empty name")
	}
	if s.New == nil {
		return fmt.Errorf("workload: Register(%q): New factory is mandatory", s.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := specs[s.Name]; dup {
		return fmt.Errorf("workload: Register(%q): already registered", s.Name)
	}
	specs[s.Name] = s
	return nil
}

// MustRegister is Register for package init blocks: it panics on error.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the spec registered under a name.
func Lookup(name string) (Spec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := specs[name]
	if !ok {
		known := make([]string, 0, len(specs))
		for k := range specs {
			known = append(known, k)
		}
		sort.Strings(known)
		return Spec{}, fmt.Errorf("workload: unknown name %q (registered: %v)", name, known)
	}
	return s, nil
}

// New builds a registered workload by name.
func New(name string, opts Options) (any, error) {
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	w, err := s.New(opts)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", name, err)
	}
	return w, nil
}

// Names lists registered workloads in sorted order — deterministic
// regardless of which file's init ran first, so CLI listings and
// registry tests never depend on registration sequencing.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(specs))
	for name := range specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line summary of a registered workload ("" if
// unknown).
func Describe(name string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	return specs[name].Description
}

// Contracts returns the contract names a registered workload deploys,
// without instantiating it (nil if unknown).
func Contracts(name string) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), specs[name].Contracts...)
}

// ParseOptions turns repeated "key=val" CLI arguments into Options.
func ParseOptions(kvs []string) (Options, error) {
	opts := make(Options, len(kvs))
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("workload: option %q is not key=val", kv)
		}
		if _, dup := opts[k]; dup {
			return nil, fmt.Errorf("workload: option %q given twice", k)
		}
		opts[k] = v
	}
	return opts, nil
}

// Decoder reads typed values out of Options, accumulating the first
// conversion error and tracking which keys were consumed so factories
// can reject typos with Finish.
type Decoder struct {
	opts Options
	used map[string]bool
	err  error
}

// NewDecoder wraps options for typed access.
func NewDecoder(opts Options) *Decoder {
	return &Decoder{opts: opts, used: make(map[string]bool, len(opts))}
}

func (d *Decoder) lookup(key string) (string, bool) {
	d.used[key] = true
	v, ok := d.opts[key]
	return v, ok
}

func (d *Decoder) fail(key, val, kind string) {
	if d.err == nil {
		d.err = fmt.Errorf("option %s=%q: not a %s", key, val, kind)
	}
}

// Int reads an integer option, or def when absent.
func (d *Decoder) Int(key string, def int) int {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		d.fail(key, v, "number")
		return def
	}
	return n
}

// Uint64 reads an unsigned integer option, or def when absent.
func (d *Decoder) Uint64(key string, def uint64) uint64 {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		d.fail(key, v, "number")
		return def
	}
	return n
}

// Float reads a float option, or def when absent.
func (d *Decoder) Float(key string, def float64) float64 {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		d.fail(key, v, "number")
		return def
	}
	return f
}

// Bool reads a boolean option, or def when absent.
func (d *Decoder) Bool(key string, def bool) bool {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		d.fail(key, v, "boolean")
		return def
	}
	return b
}

// String reads a string option, or def when absent.
func (d *Decoder) String(key, def string) string {
	if v, ok := d.lookup(key); ok {
		return v
	}
	return def
}

// Finish returns the first conversion error, or an error naming any
// option key the factory never consumed (a misspelled -wopt).
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	var unknown []string
	for k := range d.opts {
		if !d.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown option(s) %v", unknown)
	}
	return nil
}
