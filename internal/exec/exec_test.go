package exec

import (
	"testing"

	"blockbench/internal/kvstore"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

func newDB(t *testing.T) *state.DB {
	t.Helper()
	b, err := state.NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	return state.NewDB(b)
}

func engines(t *testing.T) map[string]Engine {
	t.Helper()
	evm, err := NewEVMEngine(MemModel{}, "ycsb", "donothing")
	if err != nil {
		t.Fatal(err)
	}
	native, err := NewNativeEngine("ycsb", "donothing")
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Engine{"evm": evm, "native": native}
}

func TestExecuteWriteAndQuery(t *testing.T) {
	for name, eng := range engines(t) {
		t.Run(name, func(t *testing.T) {
			db := newDB(t)
			tx := &types.Transaction{Contract: "ycsb", Method: "write",
				Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 100_000}
			r := eng.Execute(db, tx, 1)
			if !r.OK {
				t.Fatalf("receipt: %+v", r)
			}
			if r.BlockNumber != 1 || r.TxHash != tx.Hash() {
				t.Fatal("receipt metadata wrong")
			}
			out, err := eng.Query(db, "ycsb", "read", [][]byte{[]byte("k")})
			if err != nil || string(out) != "v" {
				t.Fatalf("query = %q, %v", out, err)
			}
		})
	}
}

func TestFailedExecutionRollsBack(t *testing.T) {
	for name, eng := range engines(t) {
		t.Run(name, func(t *testing.T) {
			db := newDB(t)
			// read of a missing key reverts on both engines.
			tx := &types.Transaction{Contract: "ycsb", Method: "read",
				Args: [][]byte{[]byte("missing")}, GasLimit: 100_000}
			r := eng.Execute(db, tx, 1)
			if r.OK {
				t.Fatal("reverting tx reported OK")
			}
			if r.Err == "" {
				t.Fatal("no error recorded")
			}
		})
	}
}

func TestUnknownContract(t *testing.T) {
	for name, eng := range engines(t) {
		t.Run(name, func(t *testing.T) {
			db := newDB(t)
			tx := &types.Transaction{Contract: "nope", Method: "x", GasLimit: 100_000}
			if r := eng.Execute(db, tx, 1); r.OK {
				t.Fatal("unknown contract executed")
			}
			if _, err := eng.Query(db, "nope", "x", nil); err == nil {
				t.Fatal("unknown contract queried")
			}
		})
	}
}

func TestEVMValueTransfer(t *testing.T) {
	eng, err := NewEVMEngine(MemModel{})
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t)
	alice := types.BytesToAddress([]byte("alice"))
	bob := types.BytesToAddress([]byte("bob"))
	db.SetBalance(alice, 100)
	tx := &types.Transaction{From: alice, To: bob, Value: 30, GasLimit: 100_000}
	if r := eng.Execute(db, tx, 1); !r.OK {
		t.Fatalf("transfer failed: %s", r.Err)
	}
	if db.GetBalance(bob) != 30 || db.GetBalance(alice) != 70 {
		t.Fatal("balances wrong")
	}
	// Overdraft fails and rolls back.
	tx2 := &types.Transaction{From: alice, To: bob, Value: 1000, GasLimit: 100_000, Nonce: 1}
	if r := eng.Execute(db, tx2, 2); r.OK {
		t.Fatal("overdraft transfer succeeded")
	}
	if db.GetBalance(alice) != 70 {
		t.Fatal("overdraft mutated state")
	}
}

func TestEVMIntrinsicGas(t *testing.T) {
	eng, err := NewEVMEngine(MemModel{}, "donothing")
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t)
	// Below intrinsic gas: rejected.
	tx := &types.Transaction{Contract: "donothing", Method: "invoke", GasLimit: 100}
	if r := eng.Execute(db, tx, 1); r.OK {
		t.Fatal("tx below intrinsic gas executed")
	}
	tx2 := &types.Transaction{Contract: "donothing", Method: "invoke", GasLimit: 30_000, Nonce: 1}
	r := eng.Execute(db, tx2, 1)
	if !r.OK {
		t.Fatalf("donothing failed: %s", r.Err)
	}
	if r.GasUsed < 21_000 {
		t.Fatalf("gas used %d below intrinsic", r.GasUsed)
	}
}

func TestQueryDoesNotMutate(t *testing.T) {
	for name, eng := range engines(t) {
		t.Run(name, func(t *testing.T) {
			db := newDB(t)
			// YCSB "read" is pure, but run a write through Query on the
			// native engine's Invoke path is not possible — instead
			// verify roots are stable across queries.
			tx := &types.Transaction{Contract: "ycsb", Method: "write",
				Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 100_000}
			eng.Execute(db, tx, 1)
			r1, err := db.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Query(db, "ycsb", "read", [][]byte{[]byte("k")}); err != nil {
				t.Fatal(err)
			}
			r2, err := db.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if r1 != r2 {
				t.Fatalf("%s: query mutated state", name)
			}
		})
	}
}

func TestEVMEngineCounters(t *testing.T) {
	eng, err := NewEVMEngine(MemModel{Base: 1 << 20, Factor: 2}, "ycsb")
	if err != nil {
		t.Fatal(err)
	}
	db := newDB(t)
	tx := &types.Transaction{Contract: "ycsb", Method: "write",
		Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 100_000}
	eng.Execute(db, tx, 1)
	if eng.Steps() == 0 {
		t.Fatal("no steps counted")
	}
	if eng.ExecTime() <= 0 {
		t.Fatal("no exec time")
	}
	if eng.PeakMem() < 1<<20 {
		t.Fatalf("peak mem %d below base", eng.PeakMem())
	}
	if len(eng.Contracts()) != 1 {
		t.Fatal("contracts list wrong")
	}
}
