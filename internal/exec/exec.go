// Package exec provides the transaction execution engines that sit
// between the ledger and the contract runtimes: an EVM engine for the
// Ethereum/Parity presets and a native chaincode engine for the
// Hyperledger preset. Both apply the same transactional discipline —
// snapshot, execute, revert on failure — so a failed contract call never
// leaks partial writes into the world state.
package exec

import (
	"fmt"
	"sync/atomic"
	"time"

	"blockbench/internal/chaincode"
	"blockbench/internal/contracts"
	"blockbench/internal/evm"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

// Engine executes transactions and read-only queries for one platform.
type Engine interface {
	// Execute applies tx to db as part of block blockNum, returning a
	// receipt. State changes of failed transactions are rolled back.
	Execute(db *state.DB, tx *types.Transaction, blockNum uint64) *types.Receipt
	// Query runs a read-only contract method against db.
	Query(db *state.DB, contract, method string, args [][]byte) ([]byte, error)
	// Contracts lists deployed contract names.
	Contracts() []string
}

// MemModel parameterizes the simulated resident footprint of contract
// execution (see evm.Env); the experiments use it to reproduce the
// paper's CPUHeavy memory measurements without terabyte allocations.
type MemModel struct {
	Base   int64 // fixed process overhead, bytes
	Factor int64 // simulated bytes per actual VM memory byte
	Cap    int64 // out-of-memory threshold, 0 = unlimited
}

// EVMEngine executes transactions through the gas-metered VM.
type EVMEngine struct {
	progs map[string]*evm.Program
	mem   MemModel

	peakMem  atomic.Int64
	execTime atomic.Int64 // cumulative ns spent executing
	steps    atomic.Uint64
}

// NewEVMEngine deploys the named contracts (from the Table 1 registry)
// and returns an engine using the given memory model.
func NewEVMEngine(mem MemModel, contractNames ...string) (*EVMEngine, error) {
	e := &EVMEngine{progs: make(map[string]*evm.Program), mem: mem}
	for _, name := range contractNames {
		spec, err := contracts.Lookup(name)
		if err != nil {
			return nil, err
		}
		if spec.EVM == nil {
			return nil, fmt.Errorf("exec: contract %q has no EVM implementation", name)
		}
		e.progs[name] = spec.EVM
	}
	return e, nil
}

// Contracts implements Engine.
func (e *EVMEngine) Contracts() []string {
	out := make([]string, 0, len(e.progs))
	for name := range e.progs {
		out = append(out, name)
	}
	return out
}

// contractAddress derives the account that holds a contract's funds.
func contractAddress(name string) types.Address {
	return types.BytesToAddress([]byte("contract:" + name))
}

// ContractAddress exposes the contract funds account derivation to
// read-side consumers (the analytics indexer records it as the
// recipient of value-bearing contract calls).
func ContractAddress(name string) types.Address { return contractAddress(name) }

// Execute implements Engine.
func (e *EVMEngine) Execute(db *state.DB, tx *types.Transaction, blockNum uint64) *types.Receipt {
	r := &types.Receipt{TxHash: tx.Hash(), BlockNumber: blockNum}
	snap := db.Snapshot()
	fail := func(gas uint64, err error) *types.Receipt {
		db.Revert(snap)
		r.OK = false
		r.GasUsed = gas
		r.Err = err.Error()
		return r
	}
	if tx.GasLimit < evm.TxIntrinsicGas {
		return fail(tx.GasLimit, evm.ErrOutOfGas)
	}
	// Plain value transfer.
	if tx.Contract == "" {
		if err := db.Transfer(tx.From, tx.To, tx.Value); err != nil {
			return fail(evm.TxIntrinsicGas, err)
		}
		r.OK = true
		r.GasUsed = evm.TxIntrinsicGas
		return r
	}
	prog, ok := e.progs[tx.Contract]
	if !ok {
		return fail(evm.TxIntrinsicGas, fmt.Errorf("exec: no contract %q", tx.Contract))
	}
	addr := contractAddress(tx.Contract)
	if tx.Value > 0 {
		if err := db.Transfer(tx.From, addr, tx.Value); err != nil {
			return fail(evm.TxIntrinsicGas, err)
		}
	}
	start := time.Now()
	res := evm.Run(prog, tx.Method, &evm.Env{
		State:        db,
		Contract:     tx.Contract,
		ContractAddr: addr,
		Caller:       tx.From,
		Value:        tx.Value,
		Args:         tx.Args,
		GasLimit:     tx.GasLimit - evm.TxIntrinsicGas,
		MemBase:      e.mem.Base,
		MemFactor:    e.mem.Factor,
		MemCap:       e.mem.Cap,
	})
	e.execTime.Add(int64(time.Since(start)))
	e.steps.Add(res.Steps)
	for {
		cur := e.peakMem.Load()
		if res.PeakMem <= cur || e.peakMem.CompareAndSwap(cur, res.PeakMem) {
			break
		}
	}
	gas := evm.TxIntrinsicGas + res.GasUsed
	if res.Err != nil {
		return fail(gas, res.Err)
	}
	r.OK = true
	r.GasUsed = gas
	r.Output = res.Output
	return r
}

// Query implements Engine. Queries run on a snapshot and are always
// rolled back.
func (e *EVMEngine) Query(db *state.DB, contract, method string, args [][]byte) ([]byte, error) {
	prog, ok := e.progs[contract]
	if !ok {
		return nil, fmt.Errorf("exec: no contract %q", contract)
	}
	snap := db.Snapshot()
	defer db.Revert(snap)
	start := time.Now()
	res := evm.Run(prog, method, &evm.Env{
		State: db, Contract: contract, ContractAddr: contractAddress(contract),
		Args: args, GasLimit: 1 << 40,
		MemBase: e.mem.Base, MemFactor: e.mem.Factor, MemCap: e.mem.Cap,
	})
	e.execTime.Add(int64(time.Since(start)))
	e.steps.Add(res.Steps)
	for {
		cur := e.peakMem.Load()
		if res.PeakMem <= cur || e.peakMem.CompareAndSwap(cur, res.PeakMem) {
			break
		}
	}
	if res.Err != nil {
		return nil, res.Err
	}
	return res.Output, nil
}

// PeakMem reports the largest simulated execution footprint seen.
func (e *EVMEngine) PeakMem() int64 { return e.peakMem.Load() }

// ExecTime reports cumulative wall-clock time spent inside the VM.
func (e *EVMEngine) ExecTime() time.Duration { return time.Duration(e.execTime.Load()) }

// Steps reports the total VM instructions executed.
func (e *EVMEngine) Steps() uint64 { return e.steps.Load() }

// Counters implements metrics.CounterProvider. Peak memory is excluded:
// it is a high-water mark, not a monotonic counter, so per-run deltas
// and per-node sums would be meaningless.
func (e *EVMEngine) Counters() map[string]uint64 {
	return map[string]uint64{
		"exec.time_ns": uint64(e.execTime.Load()),
		"exec.steps":   e.steps.Load(),
	}
}

// NativeEngine executes transactions through compiled-in Go chaincodes,
// the Hyperledger execution model.
type NativeEngine struct {
	codes    map[string]chaincode.Chaincode
	execTime atomic.Int64
}

// NewNativeEngine deploys the named chaincodes from the registry.
func NewNativeEngine(contractNames ...string) (*NativeEngine, error) {
	e := &NativeEngine{codes: make(map[string]chaincode.Chaincode)}
	for _, name := range contractNames {
		spec, err := contracts.Lookup(name)
		if err != nil {
			return nil, err
		}
		if spec.Chaincode == nil {
			return nil, fmt.Errorf("exec: contract %q has no chaincode implementation", name)
		}
		e.codes[name] = spec.Chaincode
	}
	return e, nil
}

// Contracts implements Engine.
func (e *NativeEngine) Contracts() []string {
	out := make([]string, 0, len(e.codes))
	for name := range e.codes {
		out = append(out, name)
	}
	return out
}

// Execute implements Engine. Chaincode execution is not gas metered
// (Fabric v0.6 "does not consider these semantics in its design").
func (e *NativeEngine) Execute(db *state.DB, tx *types.Transaction, blockNum uint64) *types.Receipt {
	r := &types.Receipt{TxHash: tx.Hash(), BlockNumber: blockNum}
	snap := db.Snapshot()
	cc, ok := e.codes[tx.Contract]
	if !ok {
		r.Err = fmt.Sprintf("exec: no chaincode %q", tx.Contract)
		return r
	}
	stub := chaincode.NewStub(db, tx.Contract, tx.From, tx.Value)
	stub.ContractAddr = contractAddress(tx.Contract)
	stub.BlockNumber = blockNum
	start := time.Now()
	out, err := cc.Invoke(stub, tx.Method, tx.Args)
	e.execTime.Add(int64(time.Since(start)))
	if err != nil {
		db.Revert(snap)
		r.Err = err.Error()
		return r
	}
	r.OK = true
	r.Output = out
	return r
}

// Query implements Engine.
func (e *NativeEngine) Query(db *state.DB, contract, method string, args [][]byte) ([]byte, error) {
	cc, ok := e.codes[contract]
	if !ok {
		return nil, fmt.Errorf("exec: no chaincode %q", contract)
	}
	snap := db.Snapshot()
	defer db.Revert(snap)
	stub := chaincode.NewStub(db, contract, types.ZeroAddress, 0)
	stub.ContractAddr = contractAddress(contract)
	return cc.Query(stub, method, args)
}

// ExecTime reports cumulative wall-clock time spent inside chaincode.
func (e *NativeEngine) ExecTime() time.Duration { return time.Duration(e.execTime.Load()) }

// Counters implements metrics.CounterProvider.
func (e *NativeEngine) Counters() map[string]uint64 {
	return map[string]uint64{"exec.time_ns": uint64(e.execTime.Load())}
}
