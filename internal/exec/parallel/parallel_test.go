package parallel

import (
	"fmt"
	"reflect"
	"testing"

	"blockbench/internal/bmt"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

// engineCase pairs an engine with the state organization its presets
// use: EVM over the trie (geth lineage), native chaincode over the
// bucket tree (Fabric lineage).
type engineCase struct {
	name   string
	engine exec.Engine
	newDB  func(t *testing.T) *state.DB
}

func engineCases(t *testing.T) []engineCase {
	t.Helper()
	evm, err := exec.NewEVMEngine(exec.MemModel{}, "ycsb", "smallbank")
	if err != nil {
		t.Fatal(err)
	}
	native, err := exec.NewNativeEngine("ycsb", "smallbank")
	if err != nil {
		t.Fatal(err)
	}
	return []engineCase{
		{"evm", evm, func(t *testing.T) *state.DB {
			t.Helper()
			b, err := state.NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
			if err != nil {
				t.Fatal(err)
			}
			return state.NewDB(b)
		}},
		{"native", native, func(t *testing.T) *state.DB {
			t.Helper()
			b, err := state.NewBucketBackend(kvstore.NewMem(), bmt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return state.NewDB(b)
		}},
	}
}

// testGasLimit mirrors the driver's DefaultGasLimit.
const testGasLimit = 500_000

func sbAcct(i int) []byte { return types.U64Bytes(uint64(i)) }

func amt(n uint64) []byte { return types.U64Bytes(n) }

// adversarialBlock builds a block with heavy key overlap: smallbank
// ops cycling over a handful of hot accounts interleaved with YCSB
// writes hammering a few hot rows. Nearly every transaction reads what
// some earlier transaction wrote, which is the worst case for
// optimistic execution — exactly what the determinism test wants.
func adversarialBlock(n int) []*types.Transaction {
	const hot = 8
	txs := make([]*types.Transaction, 0, n)
	// Seed balances first so the contended ops have funds to move.
	for i := 0; i < hot && len(txs) < n; i++ {
		txs = append(txs, &types.Transaction{Nonce: uint64(len(txs)),
			Contract: "smallbank", Method: "depositChecking",
			Args: [][]byte{sbAcct(i), amt(10_000)}, GasLimit: testGasLimit})
	}
	rng := uint64(42)
	next := func(m uint64) uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return (rng >> 33) % m }
	for len(txs) < n {
		var tx *types.Transaction
		switch next(4) {
		case 0:
			a, b := int(next(hot)), int(next(hot))
			tx = &types.Transaction{Contract: "smallbank", Method: "sendPayment",
				Args: [][]byte{sbAcct(a), sbAcct(b), amt(1 + next(50))}}
		case 1:
			tx = &types.Transaction{Contract: "smallbank", Method: "transactSavings",
				Args: [][]byte{sbAcct(int(next(hot))), amt(1 + next(50))}}
		case 2:
			tx = &types.Transaction{Contract: "smallbank", Method: "amalgamate",
				Args: [][]byte{sbAcct(int(next(hot))), sbAcct(int(next(hot)))}}
		default:
			k := []byte(fmt.Sprintf("hotrow%d", next(3)))
			tx = &types.Transaction{Contract: "ycsb", Method: "write",
				Args: [][]byte{k, amt(next(1000))}}
		}
		tx.Nonce = uint64(len(txs))
		tx.GasLimit = testGasLimit
		txs = append(txs, tx)
	}
	return txs
}

// disjointBlock builds a block where every transaction touches its own
// key: zero read/write overlap, so optimistic execution must commit
// the whole block without a single conflict.
func disjointBlock(n int) []*types.Transaction {
	txs := make([]*types.Transaction, n)
	for i := range txs {
		txs[i] = &types.Transaction{Nonce: uint64(i),
			Contract: "ycsb", Method: "write",
			Args:     [][]byte{[]byte(fmt.Sprintf("user%010d", i)), amt(uint64(i))},
			GasLimit: testGasLimit}
	}
	return txs
}

// TestParallelMatchesSerial is the determinism contract: the same
// block executed serially and through the parallel executor (workers=8,
// adversarial key overlap) must produce byte-identical receipts and an
// identical committed state root, on both engines. Run under -race this
// also exercises the MVStore's concurrency claims.
func TestParallelMatchesSerial(t *testing.T) {
	const blockTxs = 96
	for _, ec := range engineCases(t) {
		t.Run(ec.name, func(t *testing.T) {
			txs := adversarialBlock(blockTxs)

			serialDB := ec.newDB(t)
			serialReceipts := make([]*types.Receipt, len(txs))
			for i, tx := range txs {
				serialReceipts[i] = ec.engine.Execute(serialDB, tx, 7)
			}
			serialRoot, err := serialDB.Commit()
			if err != nil {
				t.Fatal(err)
			}

			parDB := ec.newDB(t)
			ex := New(8)
			parReceipts := ex.ExecuteBlock(ec.engine, parDB, txs, 7)
			parRoot, err := parDB.Commit()
			if err != nil {
				t.Fatal(err)
			}

			if parRoot != serialRoot {
				t.Fatalf("state roots diverge: serial %x, parallel %x", serialRoot, parRoot)
			}
			if len(parReceipts) != len(serialReceipts) {
				t.Fatalf("receipt count: serial %d, parallel %d", len(serialReceipts), len(parReceipts))
			}
			for i := range serialReceipts {
				if !reflect.DeepEqual(serialReceipts[i], parReceipts[i]) {
					t.Fatalf("receipt %d diverges:\nserial:   %+v\nparallel: %+v",
						i, serialReceipts[i], parReceipts[i])
				}
			}

			c := ex.Counters()
			if c["exec.parallel.txs"] != blockTxs {
				t.Fatalf("txs counter = %d, want %d", c["exec.parallel.txs"], blockTxs)
			}
			if c["exec.parallel.workers"] != 8 {
				t.Fatalf("workers counter = %d, want 8", c["exec.parallel.workers"])
			}
		})
	}
}

// TestDisjointBlockNoConflicts: with no key overlap, optimistic
// execution must be conflict-free — validation never fails and nothing
// re-executes.
func TestDisjointBlockNoConflicts(t *testing.T) {
	for _, ec := range engineCases(t) {
		t.Run(ec.name, func(t *testing.T) {
			txs := disjointBlock(64)

			serialDB := ec.newDB(t)
			for _, tx := range txs {
				ec.engine.Execute(serialDB, tx, 3)
			}
			serialRoot, err := serialDB.Commit()
			if err != nil {
				t.Fatal(err)
			}

			parDB := ec.newDB(t)
			ex := New(8)
			ex.ExecuteBlock(ec.engine, parDB, txs, 3)
			parRoot, err := parDB.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if parRoot != serialRoot {
				t.Fatalf("state roots diverge: serial %x, parallel %x", serialRoot, parRoot)
			}

			c := ex.Counters()
			if c["exec.parallel.conflicts"] != 0 || c["exec.parallel.reexecs"] != 0 {
				t.Fatalf("disjoint block reported conflicts=%d reexecs=%d, want 0/0",
					c["exec.parallel.conflicts"], c["exec.parallel.reexecs"])
			}
			if c["exec.parallel.txs"] != 64 {
				t.Fatalf("txs counter = %d, want 64", c["exec.parallel.txs"])
			}
		})
	}
}

// TestConflictCounterConservation: every validation failure schedules
// exactly one re-execution, so the two counters move in lockstep; on a
// contended block they must be non-zero (the adversarial mix cannot be
// conflict-free at 8 workers... unless rounds degenerate to singletons,
// so assert conservation, not a specific count).
func TestConflictCounterConservation(t *testing.T) {
	ec := engineCases(t)[1] // native engine: cheapest execution, most overlap pressure
	txs := adversarialBlock(96)
	parDB := ec.newDB(t)
	ex := New(8)
	ex.ExecuteBlock(ec.engine, parDB, txs, 1)
	c := ex.Counters()
	if c["exec.parallel.conflicts"] != c["exec.parallel.reexecs"] {
		t.Fatalf("conflicts=%d reexecs=%d: every conflict must schedule exactly one re-execution",
			c["exec.parallel.conflicts"], c["exec.parallel.reexecs"])
	}
	if c["exec.parallel.txs"] != 96 {
		t.Fatalf("txs counter = %d, want 96", c["exec.parallel.txs"])
	}
}

// TestWorkerClamp: worker counts below 1 clamp to the serial path
// rather than deadlocking an empty pool.
func TestWorkerClamp(t *testing.T) {
	for _, w := range []int{0, -3} {
		if got := New(w).Workers(); got != 1 {
			t.Fatalf("New(%d).Workers() = %d, want 1", w, got)
		}
	}
}

// TestSerialExecutorPath: workers=1 runs the plain serial loop but
// still counts transactions, so the counter family is live on every
// preset that wires an executor.
func TestSerialExecutorPath(t *testing.T) {
	ec := engineCases(t)[0]
	txs := disjointBlock(8)
	db := ec.newDB(t)
	ex := New(1)
	receipts := ex.ExecuteBlock(ec.engine, db, txs, 2)
	for i, r := range receipts {
		if r == nil || !r.OK {
			t.Fatalf("receipt %d: %+v", i, r)
		}
	}
	c := ex.Counters()
	if c["exec.parallel.txs"] != 8 || c["exec.parallel.workers"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}
