// Package parallel executes a block's transactions optimistically
// across a worker pool (Block-STM style) while reproducing the serial
// outcome byte for byte. Transactions are dispatched to workers in
// sequence order and executed speculatively against versioned state
// reads (state.MVStore / state.TxView: every read records the version
// it observed). At a round barrier a validation pass walks the block
// in sequence order: a transaction whose reads still resolve to the
// same versions — and whose whole prefix is already committed — has
// seen exactly the state a serial execution would have given it, so
// its receipt and write set are final; a transaction whose reads were
// invalidated by an earlier-sequenced writer re-executes. Workloads
// with disjoint write sets (YCSB) commit a whole block per round and
// scale with the worker count; contended workloads (Smallbank's hot
// accounts) pay re-executions and degrade toward the serial curve —
// the conflict-bound regime the exec-scaling benchmark charts.
package parallel

import (
	"sync"
	"sync/atomic"

	"blockbench/internal/exec"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

// Executor schedules intra-block parallel execution. One Executor
// serves one node's ledger; its counters feed the generic
// metrics.CounterProvider plumbing. Safe for use from one block
// execution at a time (the ledger serializes block application).
type Executor struct {
	workers int

	txs       atomic.Uint64 // transactions executed through the executor
	conflicts atomic.Uint64 // validation failures (stale versioned reads)
	reexecs   atomic.Uint64 // re-executions scheduled by failed validation
}

// New creates an executor with the given worker count. Counts below 1
// are clamped to 1 (the serial path).
func New(workers int) *Executor {
	if workers < 1 {
		workers = 1
	}
	return &Executor{workers: workers}
}

// Workers returns the configured worker count.
func (e *Executor) Workers() int { return e.workers }

// Counters implements metrics.CounterProvider. exec.parallel.workers
// is the configured pool size (constant, so still monotonic); summed
// across a cluster it reads as nodes × workers.
func (e *Executor) Counters() map[string]uint64 {
	return map[string]uint64{
		"exec.parallel.txs":       e.txs.Load(),
		"exec.parallel.conflicts": e.conflicts.Load(),
		"exec.parallel.reexecs":   e.reexecs.Load(),
		"exec.parallel.workers":   uint64(e.workers),
	}
}

// ExecuteBlock applies txs to db in block blockNum, returning one
// receipt per transaction in order. The outcome — receipts and the
// final content of db's overlay — is byte-identical to executing the
// transactions serially with eng.Execute. Receipt Index/BlockHash
// stamping is left to the caller, as on the serial path.
func (e *Executor) ExecuteBlock(eng exec.Engine, db *state.DB, txs []*types.Transaction, blockNum uint64) []*types.Receipt {
	n := len(txs)
	e.txs.Add(uint64(n))
	receipts := make([]*types.Receipt, n)
	if e.workers <= 1 || n <= 1 {
		for i, tx := range txs {
			receipts[i] = eng.Execute(db, tx, blockNum)
		}
		return receipts
	}

	mv := state.NewMVStore(db)
	views := make([]*state.TxView, n)

	pending := make([]int, n) // uncommitted tx indices, ascending
	for i := range pending {
		pending[i] = i
	}
	needExec := pending // txs whose current speculation is missing/stale

	for len(pending) > 0 {
		// Execution phase: dispatch in sequence order to the pool. The
		// MVStore is frozen here — commits only happen at the barrier —
		// so every speculation in a round reads one consistent snapshot.
		jobs := make(chan int)
		var wg sync.WaitGroup
		workers := e.workers
		if workers > len(needExec) {
			workers = len(needExec)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range jobs {
					txdb := state.NewDB(views[idx])
					receipts[idx] = eng.Execute(txdb, txs[idx], blockNum)
					// Flush the speculation's overlay into the view's
					// private write set (failed executions were already
					// reverted and flush nothing, as on the serial path).
					txdb.Commit()
				}
			}()
		}
		for _, idx := range needExec {
			if views[idx] == nil {
				views[idx] = state.NewTxView(mv, idx)
			} else {
				views[idx].Reset()
			}
			jobs <- idx
		}
		close(jobs)
		wg.Wait()

		// Validation barrier: walk uncommitted transactions in sequence
		// order. Commits are final, so a transaction only commits while
		// its entire prefix is committed; past the first hold-back,
		// valid speculations are kept for re-validation next round and
		// stale ones are scheduled for re-execution alongside it.
		var nextPending, nextExec []int
		blocked := false
		for _, idx := range pending {
			valid := e.validate(mv, views[idx])
			if valid && !blocked {
				mv.Commit(idx, views[idx].Writes())
				continue
			}
			if !valid {
				e.conflicts.Add(1)
				e.reexecs.Add(1)
				nextExec = append(nextExec, idx)
			}
			blocked = true
			nextPending = append(nextPending, idx)
		}
		pending, needExec = nextPending, nextExec
	}

	mv.ApplyTo(db)
	return receipts
}

// validate re-resolves a speculation's recorded reads against the
// current committed state. Version equality implies value equality
// (committed write sets are never replaced), so a fully matching read
// set means the execution already produced the serial outcome. Range
// scans carry their span and the observed overlapping writes, so they
// re-validate by overlap: only a committed write that lands inside the
// span can fail them — a scan-heavy transaction no longer waits for its
// whole prefix to be final before it can commit.
func (e *Executor) validate(mv *state.MVStore, v *state.TxView) bool {
	for _, r := range v.Reads() {
		if _, ver := mv.Read(r.Key, v.Tx()); ver != r.Version {
			return false
		}
	}
	for _, rr := range v.Ranges() {
		if !mv.RangeUnchanged(v.Tx(), rr) {
			return false
		}
	}
	return true
}
