package parallel

import (
	"fmt"
	"testing"

	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

// scanEngine is a minimal engine for exercising range-scan validation:
// "put" writes one key into the transaction's contract namespace,
// "scansum" range-scans the "scan" namespace and writes the sum to the
// "out" namespace.
type scanEngine struct{}

func (scanEngine) Execute(db *state.DB, tx *types.Transaction, blockNum uint64) *types.Receipt {
	switch tx.Method {
	case "put":
		db.SetState(tx.Contract, tx.Args[0], tx.Args[1])
	case "scansum":
		var sum uint64
		db.IterateState("scan", func(_, v []byte) bool { sum += types.U64(v); return true })
		db.SetState("out", tx.Args[0], types.U64Bytes(sum))
	}
	return &types.Receipt{TxHash: tx.Hash(), BlockNumber: blockNum, OK: true}
}

func (scanEngine) Query(*state.DB, string, string, [][]byte) ([]byte, error) { return nil, nil }
func (scanEngine) Contracts() []string                                       { return nil }

func scanBase(t *testing.T) *state.DB {
	t.Helper()
	b, err := state.NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := state.NewDB(b)
	for i := 0; i < 8; i++ {
		db.SetState("scan", []byte(fmt.Sprintf("row%02d", i)), types.U64Bytes(uint64(i)))
	}
	if _, err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestScanIgnoresDisjointWriters is the point of span-based range
// validation: a scan-heavy transaction sequenced after writers that
// touch other namespaces must commit in the first round with zero
// conflicts — under the old whole-prefix rule it would have re-executed
// just because it scanned.
func TestScanIgnoresDisjointWriters(t *testing.T) {
	db := scanBase(t)
	txs := []*types.Transaction{
		{Nonce: 0, Contract: "other", Method: "put", Args: [][]byte{[]byte("x"), []byte("1")}},
		{Nonce: 1, Contract: "other", Method: "put", Args: [][]byte{[]byte("y"), []byte("2")}},
		{Nonce: 2, Contract: "scan", Method: "scansum", Args: [][]byte{[]byte("res")}},
	}
	ex := New(4)
	ex.ExecuteBlock(scanEngine{}, db, txs, 1)
	c := ex.Counters()
	if c["exec.parallel.conflicts"] != 0 || c["exec.parallel.reexecs"] != 0 {
		t.Fatalf("disjoint writers invalidated a range scan: conflicts=%d reexecs=%d",
			c["exec.parallel.conflicts"], c["exec.parallel.reexecs"])
	}
	// 0+1+...+7 = 28.
	if got := types.U64(db.GetState("out", []byte("res"))); got != 28 {
		t.Fatalf("scan sum = %d, want 28", got)
	}
}

// TestScanInvalidatedByOverlappingWriter: a committed write inside the
// scanned span must fail validation and re-execute the scanner, whose
// final output then includes the write (the serial outcome).
func TestScanInvalidatedByOverlappingWriter(t *testing.T) {
	db := scanBase(t)
	txs := []*types.Transaction{
		{Nonce: 0, Contract: "scan", Method: "put", Args: [][]byte{[]byte("row99"), types.U64Bytes(100)}},
		{Nonce: 1, Contract: "scan", Method: "scansum", Args: [][]byte{[]byte("res")}},
	}
	ex := New(4)
	ex.ExecuteBlock(scanEngine{}, db, txs, 1)
	if c := ex.Counters(); c["exec.parallel.conflicts"] == 0 {
		t.Fatal("overlapping writer did not invalidate the range scan")
	}
	if got := types.U64(db.GetState("out", []byte("res"))); got != 128 {
		t.Fatalf("scan sum = %d, want 128 (base 28 + in-block 100)", got)
	}
}

// TestScanHeavyMatchesSerial runs a mixed block — interleaved scanners
// over one namespace, writers inside and outside it — at several worker
// counts and requires the committed root to match serial execution
// byte for byte.
func TestScanHeavyMatchesSerial(t *testing.T) {
	mkTxs := func() []*types.Transaction {
		var txs []*types.Transaction
		for i := 0; i < 24; i++ {
			var tx *types.Transaction
			switch i % 4 {
			case 0: // writer inside the scanned namespace
				tx = &types.Transaction{Contract: "scan", Method: "put",
					Args: [][]byte{[]byte(fmt.Sprintf("row%02d", i%8)), types.U64Bytes(uint64(i))}}
			case 1, 2: // writers outside it
				tx = &types.Transaction{Contract: "other", Method: "put",
					Args: [][]byte{[]byte(fmt.Sprintf("k%02d", i)), types.U64Bytes(uint64(i))}}
			default: // scanner
				tx = &types.Transaction{Contract: "scan", Method: "scansum",
					Args: [][]byte{[]byte(fmt.Sprintf("res%02d", i))}}
			}
			tx.Nonce = uint64(i)
			txs = append(txs, tx)
		}
		return txs
	}

	serialDB := scanBase(t)
	for _, tx := range mkTxs() {
		scanEngine{}.Execute(serialDB, tx, 2)
	}
	serialRoot, err := serialDB.Commit()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		parDB := scanBase(t)
		ex := New(workers)
		ex.ExecuteBlock(scanEngine{}, parDB, mkTxs(), 2)
		parRoot, err := parDB.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if parRoot != serialRoot {
			t.Fatalf("workers=%d: root %x diverges from serial %x", workers, parRoot, serialRoot)
		}
	}
}

// TestParallelLSMFlatMatchesMemTrie is the storage-stack determinism
// contract from the other side: the same blocks executed at workers=4
// through the flat-fronted trie over the LSM engine must commit the
// same roots as serial execution over a plain in-memory trie.
func TestParallelLSMFlatMatchesMemTrie(t *testing.T) {
	evm, err := exec.NewEVMEngine(exec.MemModel{}, "ycsb", "smallbank")
	if err != nil {
		t.Fatal(err)
	}

	memB, err := state.NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	memDB := state.NewDB(memB)

	lsmStore, err := kvstore.OpenLSM(t.TempDir(), kvstore.LSMOptions{MemTableBytes: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer lsmStore.Close()
	flat := state.NewFlatState(lsmStore, 1024)
	cache := state.NewSharedCache(512)
	lsmRoot := types.ZeroHash

	for block := uint64(1); block <= 3; block++ {
		txs := adversarialBlock(48)

		for _, tx := range txs {
			evm.Execute(memDB, tx, block)
		}
		serialRoot, err := memDB.Commit()
		if err != nil {
			t.Fatal(err)
		}

		fb, err := state.NewFlatBackend(lsmStore, lsmRoot, cache, flat)
		if err != nil {
			t.Fatal(err)
		}
		lsmDB := state.NewDB(fb)
		ex := New(4)
		ex.ExecuteBlock(evm, lsmDB, txs, block)
		lsmRoot, err = lsmDB.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if lsmRoot != serialRoot {
			t.Fatalf("block %d: lsm/flat workers=4 root %x diverges from mem/trie serial %x",
				block, lsmRoot, serialRoot)
		}
	}
	if c := flat.Counters(); c["store.flat_hits"] == 0 {
		t.Fatal("flat layer never served a read during parallel execution")
	}
}
