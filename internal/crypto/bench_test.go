package crypto

import (
	"testing"

	"blockbench/internal/types"
)

// Transaction signing and verification costs drive two of the paper's
// findings: Parity's server-side signing bottleneck and the per-node
// verification load at high rates.

func BenchmarkSignTx(b *testing.B) {
	k := DeterministicKey(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := &types.Transaction{Nonce: uint64(i), Contract: "ycsb",
			Method: "write", GasLimit: 100_000}
		if err := SignTx(tx, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyTx(b *testing.B) {
	k := DeterministicKey(1)
	reg := NewRegistry()
	reg.Add(k)
	txs := make([]*types.Transaction, 256)
	for i := range txs {
		txs[i] = &types.Transaction{Nonce: uint64(i), GasLimit: 1}
		if err := SignTx(txs[i], k); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !reg.VerifyTx(txs[i%len(txs)]) {
			b.Fatal("verification failed")
		}
	}
}
