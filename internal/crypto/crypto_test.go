package crypto

import (
	"testing"

	"blockbench/internal/types"
)

func TestGenerateAndSign(t *testing.T) {
	k, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	h := types.HashData([]byte("message"))
	sig, err := k.Sign(h)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(k.PublicKey(), h, sig) {
		t.Fatal("valid signature rejected")
	}
	h2 := types.HashData([]byte("other"))
	if Verify(k.PublicKey(), h2, sig) {
		t.Fatal("signature valid for wrong message")
	}
}

func TestDeterministicKeyStable(t *testing.T) {
	a, b := DeterministicKey(7), DeterministicKey(7)
	if a.Address() != b.Address() {
		t.Fatal("same seed produced different addresses")
	}
	c := DeterministicKey(8)
	if c.Address() == a.Address() {
		t.Fatal("different seeds collided")
	}
	// Cross-key verification must fail.
	h := types.HashData([]byte("m"))
	sig, _ := a.Sign(h)
	if Verify(c.PublicKey(), h, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestRegistryVerifyTx(t *testing.T) {
	k := DeterministicKey(1)
	reg := NewRegistry()
	reg.Add(k)

	tx := &types.Transaction{Nonce: 1, Contract: "c", Method: "m", GasLimit: 1000}
	if reg.VerifyTx(tx) {
		t.Fatal("unsigned tx verified")
	}
	if err := SignTx(tx, k); err != nil {
		t.Fatal(err)
	}
	if tx.From != k.Address() {
		t.Fatal("SignTx did not stamp sender")
	}
	if !reg.VerifyTx(tx) {
		t.Fatal("signed tx rejected")
	}

	// Corrupted-in-flight transactions fail verification.
	tx.Corrupt = true
	if reg.VerifyTx(tx) {
		t.Fatal("corrupt tx verified")
	}
	tx.Corrupt = false

	// Unknown sender.
	other := DeterministicKey(2)
	tx2 := &types.Transaction{Nonce: 2, GasLimit: 1}
	if err := SignTx(tx2, other); err != nil {
		t.Fatal(err)
	}
	if reg.VerifyTx(tx2) {
		t.Fatal("unknown sender verified")
	}

	// Tampered signature.
	tx3 := &types.Transaction{Nonce: 3, GasLimit: 1}
	if err := SignTx(tx3, k); err != nil {
		t.Fatal(err)
	}
	tx3.Sig[4] ^= 0xff
	if reg.VerifyTx(tx3) {
		t.Fatal("tampered signature verified")
	}
}
