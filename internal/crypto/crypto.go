// Package crypto provides the signature scheme used by clients and nodes:
// ECDSA over P-256 with SHA-256 digests, plus address derivation. Real
// asymmetric signing is used (not a stub) because transaction signing cost
// is one of the bottlenecks the paper identifies (Parity signs transactions
// server-side on its ingestion path).
package crypto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"sync"

	"blockbench/internal/types"
)

// Key is a signing keypair bound to a derived address.
type Key struct {
	priv *ecdsa.PrivateKey
	addr types.Address
}

// GenerateKey creates a fresh random keypair.
func GenerateKey() (*Key, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("crypto: generate key: %w", err)
	}
	return &Key{priv: priv, addr: pubAddress(&priv.PublicKey)}, nil
}

// DeterministicKey derives a keypair from a seed. It is used to give every
// simulated node and client a stable identity across runs without storing
// key material. Not for production use.
func DeterministicKey(seed uint64) *Key {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	digest := sha256.Sum256(buf[:])
	d := new(big.Int).SetBytes(digest[:])
	curve := elliptic.P256()
	d.Mod(d, new(big.Int).Sub(curve.Params().N, big.NewInt(1)))
	d.Add(d, big.NewInt(1))
	priv := &ecdsa.PrivateKey{D: d}
	priv.Curve = curve
	priv.X, priv.Y = curve.ScalarBaseMult(d.Bytes())
	return &Key{priv: priv, addr: pubAddress(&priv.PublicKey)}
}

func pubAddress(pub *ecdsa.PublicKey) types.Address {
	raw := elliptic.Marshal(pub.Curve, pub.X, pub.Y)
	h := sha256.Sum256(raw)
	return types.BytesToAddress(h[12:])
}

// Address returns the address derived from the public key.
func (k *Key) Address() types.Address { return k.addr }

// Sign produces an ASN.1 ECDSA signature over h.
func (k *Key) Sign(h types.Hash) ([]byte, error) {
	sig, err := ecdsa.SignASN1(rand.Reader, k.priv, h[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: sign: %w", err)
	}
	return sig, nil
}

// PublicKey exposes the verifying half of the keypair.
func (k *Key) PublicKey() *ecdsa.PublicKey { return &k.priv.PublicKey }

// Verify checks sig over h against pub.
func Verify(pub *ecdsa.PublicKey, h types.Hash, sig []byte) bool {
	return ecdsa.VerifyASN1(pub, h[:], sig)
}

// SignTx signs tx in place with k and stamps the sender address.
func SignTx(tx *types.Transaction, k *Key) error {
	tx.From = k.addr
	sig, err := k.Sign(tx.Hash())
	if err != nil {
		return err
	}
	tx.Sig = sig
	return nil
}

// Registry maps addresses to public keys. Private deployments authenticate
// every participant up front, so nodes share a static registry rather than
// recovering keys from signatures. Verification results are cached per
// transaction hash, so a node that validated a transaction at ingress
// does not pay again at block execution (registries are per-node, so each
// node still pays exactly once, as in the real systems).
type Registry struct {
	keys map[types.Address]*ecdsa.PublicKey

	mu       sync.Mutex
	verified map[types.Hash]bool
}

// NewRegistry returns an empty key registry.
func NewRegistry() *Registry {
	return &Registry{
		keys:     make(map[types.Address]*ecdsa.PublicKey),
		verified: make(map[types.Hash]bool),
	}
}

// Add registers the public half of k.
func (r *Registry) Add(k *Key) { r.keys[k.addr] = &k.priv.PublicKey }

// VerifyTx checks the transaction signature against the registered key of
// tx.From. Unknown senders and corrupted transactions fail verification.
func (r *Registry) VerifyTx(tx *types.Transaction) bool {
	if tx.Corrupt || len(tx.Sig) == 0 {
		return false
	}
	h := tx.Hash()
	r.mu.Lock()
	if ok, seen := r.verified[h]; seen {
		r.mu.Unlock()
		return ok
	}
	r.mu.Unlock()

	pub, known := r.keys[tx.From]
	ok := known && Verify(pub, h, tx.Sig)

	r.mu.Lock()
	if len(r.verified) > 1<<20 { // bound memory on long runs
		r.verified = make(map[types.Hash]bool)
	}
	r.verified[h] = ok
	r.mu.Unlock()
	return ok
}
