// Package merkle implements the classic binary Merkle tree used for block
// transaction roots ("the hash tree for transaction list is a classic
// Merkle tree, as the list is not large"), with audit-proof generation and
// verification.
package merkle

import (
	"blockbench/internal/types"
)

// leafPrefix and nodePrefix domain-separate leaf and interior hashes so a
// leaf can never be reinterpreted as an interior node (second-preimage
// hardening, as in RFC 6962).
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

func hashLeaf(data []byte) types.Hash {
	buf := make([]byte, 1+len(data))
	buf[0] = leafPrefix
	copy(buf[1:], data)
	return types.HashData(buf)
}

func hashNode(l, r types.Hash) types.Hash {
	var buf [1 + 2*types.HashSize]byte
	buf[0] = nodePrefix
	copy(buf[1:], l[:])
	copy(buf[1+types.HashSize:], r[:])
	return types.HashData(buf[:])
}

// Root computes the Merkle root of the given leaves. An empty list hashes
// to the zero hash. Odd levels promote the unpaired node unchanged.
func Root(leaves [][]byte) types.Hash {
	if len(leaves) == 0 {
		return types.ZeroHash
	}
	level := make([]types.Hash, len(leaves))
	for i, l := range leaves {
		level[i] = hashLeaf(l)
	}
	for len(level) > 1 {
		next := make([]types.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// TxRoot computes the transaction root of a block body.
func TxRoot(txs []*types.Transaction) types.Hash {
	leaves := make([][]byte, len(txs))
	for i, tx := range txs {
		h := tx.Hash()
		leaves[i] = h.Bytes()
	}
	return Root(leaves)
}

// ProofStep is one sibling on the path from a leaf to the root.
type ProofStep struct {
	Sibling types.Hash
	Left    bool // sibling is on the left
}

// Prove returns the audit path for leaf index i.
func Prove(leaves [][]byte, i int) []ProofStep {
	if i < 0 || i >= len(leaves) {
		return nil
	}
	level := make([]types.Hash, len(leaves))
	for j, l := range leaves {
		level[j] = hashLeaf(l)
	}
	var proof []ProofStep
	idx := i
	for len(level) > 1 {
		next := make([]types.Hash, 0, (len(level)+1)/2)
		for j := 0; j < len(level); j += 2 {
			if j+1 < len(level) {
				next = append(next, hashNode(level[j], level[j+1]))
			} else {
				next = append(next, level[j])
			}
		}
		if idx^1 < len(level) { // has a sibling
			proof = append(proof, ProofStep{Sibling: level[idx^1], Left: idx%2 == 1})
		}
		idx /= 2
		level = next
	}
	return proof
}

// Verify checks an audit path against a root.
func Verify(root types.Hash, leaf []byte, proof []ProofStep) bool {
	h := hashLeaf(leaf)
	for _, s := range proof {
		if s.Left {
			h = hashNode(s.Sibling, h)
		} else {
			h = hashNode(h, s.Sibling)
		}
	}
	return h == root
}
