package merkle

import (
	"fmt"
	"testing"
	"testing/quick"

	"blockbench/internal/types"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestEmptyRootIsZero(t *testing.T) {
	if !Root(nil).IsZero() {
		t.Fatal("empty root should be zero")
	}
}

func TestRootDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 64} {
		l := leaves(n)
		if Root(l) != Root(l) {
			t.Fatalf("n=%d: root unstable", n)
		}
	}
}

func TestRootSensitiveToContent(t *testing.T) {
	l := leaves(8)
	r1 := Root(l)
	l[3] = []byte("tampered")
	if Root(l) == r1 {
		t.Fatal("root ignored leaf change")
	}
}

func TestRootSensitiveToOrder(t *testing.T) {
	l := leaves(4)
	r1 := Root(l)
	l[0], l[1] = l[1], l[0]
	if Root(l) == r1 {
		t.Fatal("root ignored order change")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A single leaf equal to an interior-node encoding must not produce
	// the same root as the two-leaf tree it encodes.
	a, b := hashLeaf([]byte("a")), hashLeaf([]byte("b"))
	fake := make([]byte, 1+2*types.HashSize)
	fake[0] = nodePrefix
	copy(fake[1:], a[:])
	copy(fake[1+types.HashSize:], b[:])
	if Root([][]byte{fake[1:]}) == Root([][]byte{[]byte("a"), []byte("b")}) {
		t.Fatal("second preimage across levels")
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for n := 1; n <= 20; n++ {
		l := leaves(n)
		root := Root(l)
		for i := 0; i < n; i++ {
			p := Prove(l, i)
			if !Verify(root, l[i], p) {
				t.Fatalf("n=%d i=%d: proof rejected", n, i)
			}
			if Verify(root, []byte("bogus"), p) {
				t.Fatalf("n=%d i=%d: bogus leaf accepted", n, i)
			}
		}
	}
}

func TestProveOutOfRange(t *testing.T) {
	if Prove(leaves(3), -1) != nil || Prove(leaves(3), 3) != nil {
		t.Fatal("out-of-range proof should be nil")
	}
}

func TestTxRoot(t *testing.T) {
	txs := []*types.Transaction{{Nonce: 1}, {Nonce: 2}}
	r := TxRoot(txs)
	if r.IsZero() {
		t.Fatal("tx root zero")
	}
	txs2 := []*types.Transaction{{Nonce: 1}, {Nonce: 3}}
	if TxRoot(txs2) == r {
		t.Fatal("tx root insensitive to tx change")
	}
	if !TxRoot(nil).IsZero() {
		t.Fatal("empty tx root should be zero")
	}
}

func TestRootQuickProperty(t *testing.T) {
	// Appending a leaf always changes the root.
	f := func(data [][]byte, extra []byte) bool {
		if len(data) == 0 {
			return true
		}
		return Root(data) != Root(append(data, extra))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
