package chaincode

import (
	"errors"
	"testing"

	"blockbench/internal/kvstore"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

func newStub(t *testing.T) *Stub {
	t.Helper()
	b, err := state.NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewStub(state.NewDB(b), "cc", types.BytesToAddress([]byte("caller")), 42)
}

func TestStubStateOps(t *testing.T) {
	s := newStub(t)
	if s.GetState([]byte("k")) != nil {
		t.Fatal("ghost value")
	}
	s.PutState([]byte("k"), []byte("v"))
	if string(s.GetState([]byte("k"))) != "v" {
		t.Fatal("put/get failed")
	}
	s.DelState([]byte("k"))
	if s.GetState([]byte("k")) != nil {
		t.Fatal("del failed")
	}
}

func TestStubNamespaceIsolation(t *testing.T) {
	b, err := state.NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := state.NewDB(b)
	s1 := NewStub(db, "cc1", types.ZeroAddress, 0)
	s2 := NewStub(db, "cc2", types.ZeroAddress, 0)
	s1.PutState([]byte("k"), []byte("one"))
	if s2.GetState([]byte("k")) != nil {
		t.Fatal("chaincodes are not isolated")
	}
}

func TestStubContext(t *testing.T) {
	s := newStub(t)
	if s.Caller != types.BytesToAddress([]byte("caller")) || s.Value != 42 {
		t.Fatal("context lost")
	}
}

func TestStubRangeQuery(t *testing.T) {
	s := newStub(t)
	for i := byte(0); i < 5; i++ {
		s.PutState([]byte{'k', i}, []byte{i})
	}
	n := 0
	if err := s.RangeQuery(func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ranged %d keys", n)
	}
}

func TestStubTransferAndBalance(t *testing.T) {
	s := newStub(t)
	a, b := types.BytesToAddress([]byte("a")), types.BytesToAddress([]byte("b"))
	if err := s.Transfer(types.ZeroAddress, a, 100); err != nil { // mint
		t.Fatal(err)
	}
	if err := s.Transfer(a, b, 60); err != nil {
		t.Fatal(err)
	}
	if s.Balance(a) != 40 || s.Balance(b) != 60 {
		t.Fatal("balances wrong")
	}
}

func TestRevertf(t *testing.T) {
	err := Revertf("bad input %d", 7)
	if !errors.Is(err, ErrRevert) {
		t.Fatal("Revertf not wrapping ErrRevert")
	}
}
