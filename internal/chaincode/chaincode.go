// Package chaincode implements the Hyperledger-style native contract
// runtime. In Fabric v0.6 "chaincodes are deployed as Docker images
// interacting with Hyperledger's backend via pre-defined interfaces" and
// expose "only simple key-value operations, namely putState and
// getState". Here chaincodes are Go values compiled into the binary —
// the Docker boundary is dropped but the programming model (opaque
// key-value stub, one isolated namespace per chaincode, native-speed
// execution) is preserved, which is what the paper's execution-layer
// comparison measures.
package chaincode

import (
	"errors"
	"fmt"

	"blockbench/internal/state"
	"blockbench/internal/types"
)

// ErrRevert is returned by chaincodes to abort a transaction; the
// surrounding engine rolls back all writes.
var ErrRevert = errors.New("chaincode: invocation reverted")

// Revertf builds a revert error with a message.
func Revertf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrRevert, fmt.Sprintf(format, args...))
}

// Stub is the chaincode's only gateway to the ledger, mirroring Fabric's
// shim: GetState/PutState/DelState over the chaincode's own namespace,
// plus invocation context.
type Stub struct {
	db   *state.DB
	name string

	// Caller is the authenticated identity that submitted the
	// transaction; Value is the amount sent with it (always 0 in real
	// Fabric, kept for workload parity with the EVM contracts).
	Caller types.Address
	Value  uint64
	// ContractAddr is the chaincode's pseudo-account, used by ports of
	// contracts that hold funds.
	ContractAddr types.Address
	// BlockNumber is the height of the block being executed. Fabric
	// chaincode can obtain it from a system chaincode; VersionKVStore
	// uses it to tag state versions for historical queries.
	BlockNumber uint64
}

// NewStub binds a stub to a state database and chaincode namespace.
func NewStub(db *state.DB, name string, caller types.Address, value uint64) *Stub {
	return &Stub{db: db, name: name, Caller: caller, Value: value}
}

// GetState reads a key from the chaincode's namespace (nil if absent).
func (s *Stub) GetState(key []byte) []byte { return s.db.GetState(s.name, key) }

// PutState writes a key in the chaincode's namespace.
func (s *Stub) PutState(key, value []byte) { s.db.SetState(s.name, key, value) }

// DelState removes a key from the chaincode's namespace.
func (s *Stub) DelState(key []byte) { s.db.DeleteState(s.name, key) }

// RangeQuery iterates the chaincode's namespace in backend order.
func (s *Stub) RangeQuery(fn func(key, value []byte) bool) error {
	return s.db.IterateState(s.name, fn)
}

// Transfer moves funds between ledger accounts. EVM workloads use real
// balances; the chaincode ports keep the same effect so cross-platform
// results are comparable.
func (s *Stub) Transfer(from, to types.Address, amount uint64) error {
	return s.db.Transfer(from, to, amount)
}

// Balance reads an account balance.
func (s *Stub) Balance(addr types.Address) uint64 { return s.db.GetBalance(addr) }

// Chaincode is the contract interface, following Fabric v0.6's
// Invoke/Query split: Invoke may write state; Query must not (it runs
// against the current state outside consensus).
type Chaincode interface {
	// Invoke executes a state-mutating method.
	Invoke(stub *Stub, method string, args [][]byte) ([]byte, error)
	// Query executes a read-only method.
	Query(stub *Stub, method string, args [][]byte) ([]byte, error)
}

// ErrNoMethod reports an unknown method selector.
var ErrNoMethod = errors.New("chaincode: method not found")
