package state

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"blockbench/internal/bmt"
	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

func backends(t *testing.T) map[string]func() Backend {
	t.Helper()
	return map[string]func() Backend{
		"trie": func() Backend {
			b, err := NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		"trie-lru": func() Backend {
			b, err := NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 16)
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		"bucket": func() Backend {
			b, err := NewBucketBackend(kvstore.NewMem(), bmt.Options{NumBuckets: 31})
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	}
}

func addr(s string) types.Address { return types.BytesToAddress([]byte(s)) }

func TestBalancesAndTransfer(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			db := NewDB(mk())
			alice, bob := addr("alice"), addr("bob")
			if db.GetBalance(alice) != 0 {
				t.Fatal("fresh account has balance")
			}
			// Mint from the zero address.
			if err := db.Transfer(types.ZeroAddress, alice, 100); err != nil {
				t.Fatal(err)
			}
			if err := db.Transfer(alice, bob, 40); err != nil {
				t.Fatal(err)
			}
			if db.GetBalance(alice) != 60 || db.GetBalance(bob) != 40 {
				t.Fatalf("balances: %d, %d", db.GetBalance(alice), db.GetBalance(bob))
			}
			if err := db.Transfer(alice, bob, 1000); err == nil {
				t.Fatal("overdraft allowed")
			}
		})
	}
}

func TestSnapshotRevert(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			db := NewDB(mk())
			db.SetState("c", []byte("k1"), []byte("v1"))
			snap := db.Snapshot()
			db.SetState("c", []byte("k1"), []byte("changed"))
			db.SetState("c", []byte("k2"), []byte("new"))
			db.SetBalance(addr("x"), 77)
			db.Revert(snap)
			if got := db.GetState("c", []byte("k1")); string(got) != "v1" {
				t.Fatalf("k1 = %q after revert", got)
			}
			if db.GetState("c", []byte("k2")) != nil {
				t.Fatal("k2 survived revert")
			}
			if db.GetBalance(addr("x")) != 0 {
				t.Fatal("balance survived revert")
			}
		})
	}
}

func TestNestedSnapshots(t *testing.T) {
	db := NewDB(mustTrie(t))
	db.SetState("c", []byte("k"), []byte("0"))
	s1 := db.Snapshot()
	db.SetState("c", []byte("k"), []byte("1"))
	s2 := db.Snapshot()
	db.SetState("c", []byte("k"), []byte("2"))
	db.Revert(s2)
	if got := db.GetState("c", []byte("k")); string(got) != "1" {
		t.Fatalf("after inner revert: %q", got)
	}
	db.Revert(s1)
	if got := db.GetState("c", []byte("k")); string(got) != "0" {
		t.Fatalf("after outer revert: %q", got)
	}
}

func TestRevertDeletion(t *testing.T) {
	db := NewDB(mustTrie(t))
	db.SetState("c", []byte("k"), []byte("v"))
	if _, err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	db.DeleteState("c", []byte("k"))
	if db.GetState("c", []byte("k")) != nil {
		t.Fatal("delete not visible")
	}
	db.Revert(snap)
	if got := db.GetState("c", []byte("k")); string(got) != "v" {
		t.Fatalf("deletion not reverted: %q", got)
	}
}

func TestCommitPersistsAndRootChanges(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			db := NewDB(mk())
			r0, err := db.Commit()
			if err != nil {
				t.Fatal(err)
			}
			db.SetState("kv", []byte("key"), []byte("val"))
			r1, err := db.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if r1 == r0 {
				t.Fatal("root unchanged after write")
			}
			if got := db.GetState("kv", []byte("key")); string(got) != "val" {
				t.Fatalf("read-through after commit: %q", got)
			}
		})
	}
}

func TestNamespaceIsolation(t *testing.T) {
	db := NewDB(mustTrie(t))
	db.SetState("c1", []byte("k"), []byte("one"))
	db.SetState("c2", []byte("k"), []byte("two"))
	if string(db.GetState("c1", []byte("k"))) != "one" ||
		string(db.GetState("c2", []byte("k"))) != "two" {
		t.Fatal("namespaces bleed")
	}
}

func TestIterateState(t *testing.T) {
	db := NewDB(mustTrie(t))
	for i := 0; i < 10; i++ {
		db.SetState("mine", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		db.SetState("other", []byte(fmt.Sprintf("x%d", i)), []byte("w"))
	}
	if _, err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	// Add one uncommitted overlay key and shadow one committed key.
	db.SetState("mine", []byte("k-extra"), []byte("v"))
	db.SetState("mine", []byte("k3"), []byte("updated"))
	got := map[string]string{}
	if err := db.IterateState("mine", func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 {
		t.Fatalf("iterated %d keys, want 11", len(got))
	}
	if got["k3"] != "updated" {
		t.Fatalf("overlay did not shadow: %q", got["k3"])
	}
	if _, ok := got["x1"]; ok {
		t.Fatal("foreign namespace leaked")
	}
}

func TestTrieAndBucketModelEquivalence(t *testing.T) {
	// Both backends must expose identical visible state under a random
	// workload, even though their roots and layouts differ.
	dbs := map[string]*DB{}
	for name, mk := range backends(t) {
		dbs[name] = NewDB(mk())
	}
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("key-%03d", rng.Intn(150)))
		op := rng.Intn(4)
		v := []byte(fmt.Sprintf("val-%d", i))
		for _, db := range dbs {
			switch op {
			case 0, 1:
				db.SetState("w", k, v)
			case 2:
				db.DeleteState("w", k)
			}
		}
		switch op {
		case 0, 1:
			model[string(k)] = v
		case 2:
			delete(model, string(k))
		}
		if op == 3 {
			for name, db := range dbs {
				if got := db.GetState("w", k); !bytes.Equal(got, model[string(k)]) {
					t.Fatalf("%s: op %d mismatch at %s", name, i, k)
				}
			}
		}
		if i%500 == 499 {
			for name, db := range dbs {
				if _, err := db.Commit(); err != nil {
					t.Fatalf("%s: commit: %v", name, err)
				}
			}
		}
	}
}

func TestParityMemoryCapSurfacesOnCommit(t *testing.T) {
	// Parity pins state in memory; when the cap is hit, commits fail —
	// the IOHeavy "X" (out of memory) data points.
	store := kvstore.NewMemCapped(1 << 12)
	b, err := NewTrieBackend(store, types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(b)
	var commitErr error
	for i := 0; i < 1000 && commitErr == nil; i++ {
		db.SetState("io", []byte(fmt.Sprintf("key-%06d", i)), make([]byte, 100))
		if i%10 == 9 {
			_, commitErr = db.Commit()
		}
	}
	if commitErr == nil {
		t.Fatal("capped store never reported memory exhaustion")
	}
}

func mustTrie(t *testing.T) Backend {
	t.Helper()
	b, err := NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
