package state

import (
	"bytes"
	"testing"

	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

func newMVBase(t *testing.T) *DB {
	t.Helper()
	b, err := NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewDB(b)
}

func TestMVStoreReadVersions(t *testing.T) {
	base := newMVBase(t)
	base.SetState("c", []byte("k"), []byte("base"))

	mv := NewMVStore(base)

	// Before any in-block commit, every read resolves in the base.
	if v, ver := mv.Read("c:c:k", 5); string(v) != "base" || ver != BaseVersion {
		t.Fatalf("read = %q v%d, want base/BaseVersion", v, ver)
	}

	mv.Commit(2, map[string][]byte{"c:c:k": []byte("two")})
	mv.Commit(4, map[string][]byte{"c:c:k": []byte("four")})

	cases := []struct {
		before int
		value  string
		ver    int
	}{
		{1, "base", BaseVersion}, // below the lowest writer
		{2, "base", BaseVersion}, // writer 2 itself is not visible to tx 2
		{3, "two", 2},
		{4, "two", 2},
		{5, "four", 4},
		{9, "four", 4},
	}
	for _, c := range cases {
		v, ver := mv.Read("c:c:k", c.before)
		if string(v) != c.value || ver != c.ver {
			t.Fatalf("Read(before=%d) = %q v%d, want %q v%d", c.before, v, ver, c.value, c.ver)
		}
	}
}

func TestMVStoreDeletionShadowsBase(t *testing.T) {
	base := newMVBase(t)
	base.SetState("c", []byte("k"), []byte("base"))

	mv := NewMVStore(base)
	mv.Commit(1, map[string][]byte{"c:c:k": nil})

	if v, ver := mv.Read("c:c:k", 3); v != nil || ver != 1 {
		t.Fatalf("deleted key read = %q v%d, want nil v1", v, ver)
	}
	// The deletion is a versioned write: readers below it still see base.
	if v, ver := mv.Read("c:c:k", 1); string(v) != "base" || ver != BaseVersion {
		t.Fatalf("pre-deletion read = %q v%d, want base/BaseVersion", v, ver)
	}
}

func TestMVStoreApplyTo(t *testing.T) {
	base := newMVBase(t)
	base.SetState("c", []byte("keep"), []byte("old"))
	base.SetState("c", []byte("gone"), []byte("doomed"))

	mv := NewMVStore(base)
	mv.Commit(0, map[string][]byte{"c:c:keep": []byte("v0")})
	mv.Commit(3, map[string][]byte{
		"c:c:keep": []byte("v3"),
		"c:c:gone": nil,
		"c:c:new":  []byte("fresh"),
	})
	mv.ApplyTo(base)

	if got := base.GetState("c", []byte("keep")); string(got) != "v3" {
		t.Fatalf("keep = %q, want highest writer's value v3", got)
	}
	if got := base.GetState("c", []byte("gone")); got != nil {
		t.Fatalf("gone = %q, want deleted", got)
	}
	if got := base.GetState("c", []byte("new")); string(got) != "fresh" {
		t.Fatalf("new = %q, want fresh", got)
	}
}

func TestTxViewRecordsFirstObservation(t *testing.T) {
	base := newMVBase(t)
	base.SetState("c", []byte("k"), []byte("base"))
	mv := NewMVStore(base)
	mv.Commit(1, map[string][]byte{"c:c:k": []byte("one")})

	v := NewTxView(mv, 3)
	for i := 0; i < 3; i++ {
		got, err := v.Get([]byte("c:c:k"))
		if err != nil || string(got) != "one" {
			t.Fatalf("Get = %q, %v", got, err)
		}
	}
	reads := v.Reads()
	if len(reads) != 1 {
		t.Fatalf("recorded %d reads, want 1 (first observation per key)", len(reads))
	}
	if reads[0].Key != "c:c:k" || reads[0].Version != 1 {
		t.Fatalf("read record = %+v, want c:c:k v1", reads[0])
	}
}

func TestTxViewWriteCaptureThroughDB(t *testing.T) {
	base := newMVBase(t)
	base.SetState("c", []byte("old"), []byte("x"))
	mv := NewMVStore(base)

	v := NewTxView(mv, 0)
	db := NewDB(v)
	db.SetState("c", []byte("w"), []byte("val"))
	db.DeleteState("c", []byte("old"))
	if _, err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	w := v.Writes()
	if got := w["c:c:w"]; !bytes.Equal(got, []byte("val")) {
		t.Fatalf("captured write = %q, want val", got)
	}
	if got, ok := w["c:c:old"]; !ok || got != nil {
		t.Fatalf("captured deletion = %q (present=%v), want nil deletion", got, ok)
	}
	// Captured privately: nothing reached the base DB.
	if got := base.GetState("c", []byte("w")); got != nil {
		t.Fatalf("speculative write leaked to base: %q", got)
	}
	if got := base.GetState("c", []byte("old")); string(got) != "x" {
		t.Fatalf("speculative deletion leaked to base: %q", got)
	}
}

func TestTxViewReset(t *testing.T) {
	base := newMVBase(t)
	mv := NewMVStore(base)
	v := NewTxView(mv, 1)
	if _, err := v.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := v.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := v.Iterate(func(_, _ []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if len(v.Reads()) == 0 || len(v.Writes()) == 0 || len(v.Ranges()) == 0 {
		t.Fatal("setup did not populate the view")
	}
	v.Reset()
	if len(v.Reads()) != 0 || len(v.Writes()) != 0 || len(v.Ranges()) != 0 {
		t.Fatalf("Reset left state: reads=%d writes=%d ranges=%d",
			len(v.Reads()), len(v.Writes()), len(v.Ranges()))
	}
}

func TestTxViewIterateMergesVersions(t *testing.T) {
	base := newMVBase(t)
	base.SetState("c", []byte("a"), []byte("baseA"))
	base.SetState("c", []byte("b"), []byte("baseB"))
	if _, err := base.Commit(); err != nil {
		t.Fatal(err)
	}

	mv := NewMVStore(base)
	mv.Commit(0, map[string][]byte{
		stateKey("c", []byte("a")): []byte("newA"), // overwrites base
		stateKey("c", []byte("x")): []byte("newX"), // in-block only
	})
	mv.Commit(5, map[string][]byte{
		stateKey("c", []byte("b")): nil, // not visible to tx 2
	})

	v := NewTxView(mv, 2)
	seen := map[string]string{}
	if err := v.Iterate(func(k, val []byte) bool {
		seen[string(k)] = string(val)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(v.Ranges()) != 1 {
		t.Fatalf("Iterate recorded %d range records, want 1", len(v.Ranges()))
	}
	if rr := v.Ranges()[0]; rr.Start != "" || rr.End != "" {
		t.Fatalf("full Iterate recorded span [%q, %q), want unbounded", rr.Start, rr.End)
	}
	// The scan observed exactly the in-block writes visible to tx 2.
	if rr := v.Ranges()[0]; len(rr.Obs) != 2 ||
		rr.Obs[stateKey("c", []byte("a"))] != 0 || rr.Obs[stateKey("c", []byte("x"))] != 0 {
		t.Fatalf("range observations = %v, want a/x at version 0", rr.Obs)
	}
	want := map[string]string{
		stateKey("c", []byte("a")): "newA",
		stateKey("c", []byte("b")): "baseB",
		stateKey("c", []byte("x")): "newX",
	}
	for k, wv := range want {
		if seen[k] != wv {
			t.Fatalf("iterate saw %q=%q, want %q (all: %v)", k, seen[k], wv, seen)
		}
	}
}
