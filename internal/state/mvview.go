package state

import (
	"sort"
	"sync"

	"blockbench/internal/types"
)

// Multi-version state view for optimistic intra-block parallel
// execution (Block-STM style). The serial execution model gives every
// transaction of a block a consistent prefix state: tx i sees the
// writes of txs 0..i-1 and nothing else. To run transactions of one
// block concurrently while reproducing exactly that outcome, the
// executor gives each transaction a TxView — a Backend whose reads go
// through an MVStore and record the version they observed, and whose
// writes are captured privately instead of touching shared state. A
// validation pass then re-resolves every recorded read: if each key
// still resolves to the same version, the speculative execution is
// byte-identical to what a serial execution at that position would
// have produced, and its write set is published; otherwise the
// transaction re-executes.

// BaseVersion is the version recorded for a read that resolved in the
// block's base state (the state as of the parent block) rather than in
// the write set of an earlier transaction of the same block.
const BaseVersion = -1

// ReadRecord is one versioned read of a speculative execution: the raw
// composite key and the version observed — the in-block index of the
// committed transaction whose write supplied the value, or BaseVersion.
type ReadRecord struct {
	Key     string
	Version int
}

// RangeRecord is one recorded range scan of a speculative execution:
// the span [Start, End) (empty End = unbounded) and the in-block writes
// the scan observed inside it, as key → writer version. The base state
// is frozen for the block and committed write sets are final, so if the
// same span resolves to the same observation map at validation time,
// the merged scan output is identical and the speculation stands —
// writes outside the span can never invalidate it.
type RangeRecord struct {
	Start, End string
	Obs        map[string]int
}

// strInRange reports whether k lies in [start, end); an empty end is
// unbounded (an empty start is naturally unbounded: "" <= every key).
func strInRange(k, start, end string) bool {
	return k >= start && (end == "" || k < end)
}

// mvWrite is one committed in-block write: transaction `tx` wrote
// `value` (nil = deletion) to the key. Entries per key are kept in
// ascending tx order.
type mvWrite struct {
	tx    int
	value []byte
}

// MVStore is the multi-version overlay of one block execution: the
// committed write sets of in-block transactions layered over the
// block's base state, with version-resolving reads. Committed writes
// are final — a transaction's write set is published at most once, so
// version equality implies value equality, which is what makes read
// validation sound.
//
// Reads are safe for concurrent use. Commit must not run concurrently
// with reads or other commits; the executor's round barrier provides
// that exclusion.
type MVStore struct {
	base *DB

	// baseMu serializes reads of the underlying state database: its
	// backends (trie, bucket tree) are single-threaded structures that
	// may mutate internal caches on Get. baseCache memoizes resolved
	// base values so each distinct key pays the backend walk (and any
	// storage latency it models) once per block.
	baseMu    sync.Mutex
	baseCache sync.Map // string -> []byte (nil = absent)

	mu     sync.RWMutex
	writes map[string][]mvWrite
}

// NewMVStore creates the multi-version overlay for one block executed
// on top of base.
func NewMVStore(base *DB) *MVStore {
	return &MVStore{base: base, writes: make(map[string][]mvWrite)}
}

// baseRead resolves a key in the block's base state through the
// memoizing cache.
func (m *MVStore) baseRead(key string) []byte {
	if v, ok := m.baseCache.Load(key); ok {
		return v.([]byte)
	}
	m.baseMu.Lock()
	v := m.base.raw(key)
	m.baseMu.Unlock()
	actual, _ := m.baseCache.LoadOrStore(key, v)
	return actual.([]byte)
}

// Read returns the value visible to the transaction at in-block index
// `before`: the committed write of the highest-indexed transaction
// < before, falling back to the base state. version reports where the
// value came from (a transaction index, or BaseVersion).
func (m *MVStore) Read(key string, before int) (value []byte, version int) {
	m.mu.RLock()
	ws := m.writes[key]
	// Highest committed writer strictly below `before`.
	i := sort.Search(len(ws), func(i int) bool { return ws[i].tx >= before })
	if i > 0 {
		w := ws[i-1]
		m.mu.RUnlock()
		return w.value, w.tx
	}
	m.mu.RUnlock()
	return m.baseRead(key), BaseVersion
}

// Commit publishes tx's write set (nil values are deletions). Each
// transaction commits at most once; the executor guarantees commits
// never race with reads.
func (m *MVStore) Commit(tx int, writes map[string][]byte) {
	if len(writes) == 0 {
		return
	}
	m.mu.Lock()
	for k, v := range writes {
		ws := m.writes[k]
		i := sort.Search(len(ws), func(i int) bool { return ws[i].tx >= tx })
		ws = append(ws, mvWrite{})
		copy(ws[i+1:], ws[i:])
		ws[i] = mvWrite{tx: tx, value: v}
		m.writes[k] = ws
	}
	m.mu.Unlock()
}

// ApplyTo flushes the block's final state — for every written key, the
// value of its highest-indexed committed writer — into db, journaled
// like any other write, leaving db ready to Commit.
func (m *MVStore) ApplyTo(db *DB) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for k, ws := range m.writes {
		db.write(k, ws[len(ws)-1].value)
	}
}

// visibleRange snapshots the committed writes visible to transaction tx
// inside [start, end): the latest committed value per key from writers
// < tx (nil values are deletions and shadow the base entry), plus the
// observation map (key → writer version) that makes the scan
// re-validatable.
func (m *MVStore) visibleRange(tx int, start, end string) (vals map[string][]byte, obs map[string]int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	vals = make(map[string][]byte)
	obs = make(map[string]int)
	for k, ws := range m.writes {
		if !strInRange(k, start, end) {
			continue
		}
		i := sort.Search(len(ws), func(i int) bool { return ws[i].tx >= tx })
		if i > 0 {
			vals[k] = ws[i-1].value
			obs[k] = ws[i-1].tx
		}
	}
	return vals, obs
}

// RangeUnchanged re-resolves a recorded range scan for transaction tx:
// it holds iff the committed writes now visible inside the span are
// exactly the recorded observations (same keys, same writer versions).
func (m *MVStore) RangeUnchanged(tx int, rr RangeRecord) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	matched := 0
	for k, ws := range m.writes {
		if !strInRange(k, rr.Start, rr.End) {
			continue
		}
		i := sort.Search(len(ws), func(i int) bool { return ws[i].tx >= tx })
		if i == 0 {
			continue // no writer below tx for this key, now or at exec time
		}
		ver, ok := rr.Obs[k]
		if !ok || ver != ws[i-1].tx {
			return false
		}
		matched++
	}
	// Committed writes are never retracted, so every recorded observation
	// must still be present; a shortfall means a key left the span, which
	// cannot happen — but check for symmetry.
	return matched == len(rr.Obs)
}

// baseIterate walks the base state (overlay-merged, like DB iteration)
// under the base lock, restricted to [start, end).
func (m *MVStore) baseIterateRange(start, end string, fn func(key, value []byte) bool) error {
	m.baseMu.Lock()
	defer m.baseMu.Unlock()
	db := m.base
	seen := make(map[string]struct{}, len(db.overlay))
	for k, v := range db.overlay {
		if !strInRange(k, start, end) {
			continue
		}
		seen[k] = struct{}{}
		if v != nil {
			if !fn([]byte(k), v) {
				return nil
			}
		}
	}
	var endB []byte
	if end != "" {
		endB = []byte(end)
	}
	var startB []byte
	if start != "" {
		startB = []byte(start)
	}
	return db.backend.IterateRange(startB, endB, func(k, v []byte) bool {
		if _, shadowed := seen[string(k)]; shadowed {
			return true
		}
		return fn(k, v)
	})
}

// TxView is the per-transaction state surface of one speculative
// execution: a Backend whose reads resolve through the MVStore
// (recording the version observed, first observation per key) and
// whose writes are captured into a private write set when the
// transaction's DB overlay is flushed. A TxView is used by exactly one
// worker at a time; it is not safe for concurrent use.
type TxView struct {
	mv *MVStore
	tx int

	reads   []ReadRecord
	readIdx map[string]struct{}
	writes  map[string][]byte
	ranges  []RangeRecord
}

// NewTxView creates the state view for the transaction at in-block
// index tx.
func NewTxView(mv *MVStore, tx int) *TxView {
	return &TxView{
		mv:      mv,
		tx:      tx,
		readIdx: make(map[string]struct{}),
		writes:  make(map[string][]byte),
	}
}

// Reset clears the recorded read and write sets for re-execution.
func (v *TxView) Reset() {
	v.reads = v.reads[:0]
	v.readIdx = make(map[string]struct{})
	v.writes = make(map[string][]byte)
	v.ranges = v.ranges[:0]
}

// Tx returns the view's in-block transaction index.
func (v *TxView) Tx() int { return v.tx }

// Reads returns the recorded read set in first-observation order.
func (v *TxView) Reads() []ReadRecord { return v.reads }

// Writes returns the captured write set (nil values are deletions).
func (v *TxView) Writes() map[string][]byte { return v.writes }

// Ranges returns the recorded range scans in observation order.
func (v *TxView) Ranges() []RangeRecord { return v.ranges }

// Get implements Backend: a versioned read through the MVStore,
// recorded once per key. The transaction's own writes never reach here
// — they are served by its DB overlay above this view.
func (v *TxView) Get(key []byte) ([]byte, error) {
	k := string(key)
	val, ver := v.mv.Read(k, v.tx)
	if _, dup := v.readIdx[k]; !dup {
		v.readIdx[k] = struct{}{}
		v.reads = append(v.reads, ReadRecord{Key: k, Version: ver})
	}
	return val, nil
}

// Put implements Backend, capturing the write privately. It is reached
// when the transaction's DB flushes its overlay.
func (v *TxView) Put(key, value []byte) error {
	v.writes[string(key)] = value
	return nil
}

// Delete implements Backend, capturing the deletion privately.
func (v *TxView) Delete(key []byte) error {
	v.writes[string(key)] = nil
	return nil
}

// Commit implements Backend. The flush that precedes it already
// captured every write; there is no structure to persist and no
// meaningful root for a speculative overlay.
func (v *TxView) Commit() (types.Hash, error) { return types.ZeroHash, nil }

// Iterate implements Backend as an unbounded range scan.
func (v *TxView) Iterate(fn func(key, value []byte) bool) error {
	return v.IterateRange(nil, nil, fn)
}

// IterateRange implements Backend: committed in-block writes visible to
// this transaction shadow the base state inside the span. The scan is
// recorded with its span and observed writer versions, so validation
// only fails it when an overlapping write landed — disjoint writers
// never invalidate a range scan.
func (v *TxView) IterateRange(start, end []byte, fn func(key, value []byte) bool) error {
	s, e := string(start), string(end)
	shadow, obs := v.mv.visibleRange(v.tx, s, e)
	v.ranges = append(v.ranges, RangeRecord{Start: s, End: e, Obs: obs})
	for k, val := range shadow {
		if val != nil {
			if !fn([]byte(k), val) {
				return nil
			}
		}
	}
	return v.mv.baseIterateRange(s, e, func(k, val []byte) bool {
		if _, shadowed := shadow[string(k)]; shadowed {
			return true
		}
		return fn(k, val)
	})
}

// MemBytes implements Backend; a speculative view owns no resident
// state worth accounting.
func (v *TxView) MemBytes() int64 { return 0 }
