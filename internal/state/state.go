// Package state implements the world-state database shared by all three
// platform presets: account balances plus per-contract key-value
// namespaces, layered as a dirty overlay with a journal (for per-
// transaction revert on failure or out-of-gas) over an authenticated
// backend (Patricia-Merkle trie for Ethereum/Parity, Bucket-Merkle tree
// for Hyperledger).
package state

import (
	"errors"
	"fmt"

	"blockbench/internal/types"
)

// Backend is the authenticated storage a DB commits into.
type Backend interface {
	// Get returns nil for absent keys.
	Get(key []byte) ([]byte, error)
	Put(key, value []byte) error
	Delete(key []byte) error
	// Commit persists pending structure changes, returning the state root.
	Commit() (types.Hash, error)
	// Iterate walks all key/value pairs (order backend-defined).
	Iterate(fn func(key, value []byte) bool) error
	// IterateRange walks key/value pairs with key in [start, end) (order
	// backend-defined; nil start/end leave that side unbounded). Range
	// scans carry their span, which lets versioned views validate them
	// against overlapping writes instead of any whole-state rule.
	IterateRange(start, end []byte, fn func(key, value []byte) bool) error
	// MemBytes reports resident memory attributable to the backend.
	MemBytes() int64
}

// PrefixEnd returns the smallest key greater than every key with the
// given prefix ("" when no such key exists, i.e. an unbounded end).
func PrefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// ErrInsufficientFunds is returned by Transfer when the sender balance
// is too low.
var ErrInsufficientFunds = errors.New("state: insufficient funds")

type journalEntry struct {
	key     string
	prev    []byte
	hadPrev bool
}

// DB is the mutable world state during block execution. It is not safe
// for concurrent use; block execution is single-threaded on every
// platform the paper studies.
type DB struct {
	backend Backend
	// overlay holds uncommitted writes; a nil value is a deletion.
	overlay map[string][]byte
	journal []journalEntry
}

// NewDB creates a state database over backend.
func NewDB(backend Backend) *DB {
	return &DB{backend: backend, overlay: make(map[string][]byte)}
}

func accountKey(addr types.Address) string { return "a:" + string(addr[:]) }

func stateKey(contract string, key []byte) string {
	return "c:" + contract + ":" + string(key)
}

func (db *DB) raw(key string) []byte {
	if v, ok := db.overlay[key]; ok {
		return v
	}
	v, err := db.backend.Get([]byte(key))
	if err != nil {
		// Backend read errors indicate a broken store; in the simulated
		// cluster this only happens for capped Parity memory, which
		// surfaces on write, so reads treat errors as absence.
		return nil
	}
	return v
}

func (db *DB) write(key string, value []byte) {
	prev, had := db.overlay[key]
	db.journal = append(db.journal, journalEntry{key: key, prev: prev, hadPrev: had})
	db.overlay[key] = value
}

// Snapshot marks a revert point covering all subsequent writes.
func (db *DB) Snapshot() int { return len(db.journal) }

// Revert undoes every write made after the snapshot was taken.
func (db *DB) Revert(snap int) {
	for i := len(db.journal) - 1; i >= snap; i-- {
		e := db.journal[i]
		if e.hadPrev {
			db.overlay[e.key] = e.prev
		} else {
			delete(db.overlay, e.key)
		}
	}
	db.journal = db.journal[:snap]
}

// GetBalance returns the account balance (0 for unknown accounts).
func (db *DB) GetBalance(addr types.Address) uint64 {
	return types.U64(db.raw(accountKey(addr)))
}

// SetBalance assigns an account balance.
func (db *DB) SetBalance(addr types.Address, amount uint64) {
	db.write(accountKey(addr), types.U64Bytes(amount))
}

// Transfer moves amount from one account to another. A zero from-address
// mints (used by genesis preload and mining rewards).
func (db *DB) Transfer(from, to types.Address, amount uint64) error {
	if !from.IsZero() {
		b := db.GetBalance(from)
		if b < amount {
			return fmt.Errorf("%w: have %d, need %d", ErrInsufficientFunds, b, amount)
		}
		db.SetBalance(from, b-amount)
	}
	db.SetBalance(to, db.GetBalance(to)+amount)
	return nil
}

// GetState reads a contract state key (nil if absent).
func (db *DB) GetState(contract string, key []byte) []byte {
	return db.raw(stateKey(contract, key))
}

// SetState writes a contract state key.
func (db *DB) SetState(contract string, key, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	db.write(stateKey(contract, key), v)
}

// DeleteState removes a contract state key.
func (db *DB) DeleteState(contract string, key []byte) {
	db.write(stateKey(contract, key), nil)
}

// Commit flushes the overlay into the backend and returns the new state
// root. The journal is cleared; the DB remains usable.
func (db *DB) Commit() (types.Hash, error) {
	for k, v := range db.overlay {
		var err error
		if v == nil {
			err = db.backend.Delete([]byte(k))
		} else {
			err = db.backend.Put([]byte(k), v)
		}
		if err != nil {
			return types.ZeroHash, err
		}
	}
	db.overlay = make(map[string][]byte)
	db.journal = db.journal[:0]
	return db.backend.Commit()
}

// IterateState walks all keys of one contract namespace in backend order,
// passing the bare key (namespace prefix stripped). The walk is issued as
// a range scan over [prefix, PrefixEnd(prefix)), so backends only visit
// the namespace and versioned views can validate the scan by its span.
func (db *DB) IterateState(contract string, fn func(key, value []byte) bool) error {
	// Overlay entries shadow backend entries; merge them.
	prefix := "c:" + contract + ":"
	seen := make(map[string]struct{})
	for k, v := range db.overlay {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			seen[k] = struct{}{}
			if v != nil {
				if !fn([]byte(k[len(prefix):]), v) {
					return nil
				}
			}
		}
	}
	var end []byte
	if e := PrefixEnd(prefix); e != "" {
		end = []byte(e)
	}
	return db.backend.IterateRange([]byte(prefix), end, func(k, v []byte) bool {
		ks := string(k)
		if len(ks) < len(prefix) || ks[:len(prefix)] != prefix {
			return true
		}
		if _, shadowed := seen[ks]; shadowed {
			return true
		}
		return fn(k[len(prefix):], v)
	})
}

// MemBytes reports resident memory of the backend plus overlay.
func (db *DB) MemBytes() int64 {
	var overlay int64
	for k, v := range db.overlay {
		overlay += int64(len(k) + len(v))
	}
	return overlay + db.backend.MemBytes()
}
