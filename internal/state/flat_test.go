package state

import (
	"fmt"
	"math/rand"
	"testing"

	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

// TestFlatBackendRootsMatchTrie is the coherence contract: the same
// block sequence committed through a plain trie over a Mem store and
// through the flat-fronted trie over the LSM engine must produce
// byte-identical state roots at every block, and identical reads when
// reopened at any committed root.
func TestFlatBackendRootsMatchTrie(t *testing.T) {
	memStore := kvstore.NewMem()
	defer memStore.Close()
	lsmStore, err := kvstore.OpenLSM(t.TempDir(), kvstore.LSMOptions{MemTableBytes: 1 << 12, SyncBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lsmStore.Close()

	trieB, err := NewTrieBackend(memStore, types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	trieDB := NewDB(trieB)

	flat := NewFlatState(lsmStore, 512)
	cache := NewSharedCache(256)
	flatRoot := types.ZeroHash
	newFlatDB := func(root types.Hash) *DB {
		fb, err := NewFlatBackend(lsmStore, root, cache, flat)
		if err != nil {
			t.Fatal(err)
		}
		return NewDB(fb)
	}

	rng := rand.New(rand.NewSource(11))
	var roots []types.Hash
	for block := 0; block < 20; block++ {
		flatDB := newFlatDB(flatRoot)
		for i := 0; i < 30; i++ {
			k := []byte(fmt.Sprintf("acct-%03d", rng.Intn(120)))
			if rng.Intn(8) == 0 {
				trieDB.DeleteState("c", k)
				flatDB.DeleteState("c", k)
				continue
			}
			v := []byte(fmt.Sprintf("bal-%d-%d", block, i))
			trieDB.SetState("c", k, v)
			flatDB.SetState("c", k, v)
		}
		trieRoot, err := trieDB.Commit()
		if err != nil {
			t.Fatal(err)
		}
		fr, err := flatDB.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if fr != trieRoot {
			t.Fatalf("block %d: roots diverge: trie %x, flat/lsm %x", block, trieRoot, fr)
		}
		flatRoot = fr
		roots = append(roots, fr)
	}

	// Reads at the head root agree between the two stacks.
	headDB := newFlatDB(flatRoot)
	for i := 0; i < 120; i++ {
		k := []byte(fmt.Sprintf("acct-%03d", i))
		if got, want := headDB.GetState("c", k), trieDB.GetState("c", k); string(got) != string(want) {
			t.Fatalf("head read %s: flat/lsm %q, trie %q", k, got, want)
		}
	}
	// Historical roots stay readable (the flat layer must not serve
	// entries anchored at a different root).
	histDB := newFlatDB(roots[4])
	if histDB == nil {
		t.Fatal("historical open failed")
	}
	c := flat.Counters()
	if c["store.flat_hits"] == 0 {
		t.Fatal("flat layer never served a head read")
	}
}

// TestFlatStateAnchoring pins the layer's coherence rules: reads at a
// non-anchor root miss, a replayed commit is a no-op, and a commit from
// a different parent resets the layer.
func TestFlatStateAnchoring(t *testing.T) {
	store := kvstore.NewMem()
	defer store.Close()
	f := NewFlatState(store, 16)

	rootA := types.Hash{1}
	rootB := types.Hash{2}
	f.Advance(types.ZeroHash, rootA, map[string][]byte{"k": []byte("va")})

	if v, ok := f.Get(rootA, []byte("k")); !ok || string(v) != "va" {
		t.Fatalf("anchored read = %q,%v", v, ok)
	}
	if _, ok := f.Get(rootB, []byte("k")); ok {
		t.Fatal("read at foreign root served from flat layer")
	}

	// Replay of the anchored commit: no reset, content intact.
	f.Advance(types.ZeroHash, rootA, map[string][]byte{"k": []byte("stale")})
	if v, _ := f.Get(rootA, []byte("k")); string(v) != "va" {
		t.Fatalf("replayed commit mutated the layer: %q", v)
	}

	// Fork: a commit whose parent is not the anchor resets the layer.
	f.Advance(rootB, types.Hash{3}, map[string][]byte{"k2": []byte("vb")})
	if _, ok := f.Get(rootA, []byte("k")); ok {
		t.Fatal("pre-fork entry survived reset")
	}
	if v, ok := f.Get(types.Hash{3}, []byte("k2")); !ok || string(v) != "vb" {
		t.Fatalf("post-fork write not served: %q,%v", v, ok)
	}
	c := f.Counters()
	if c["store.flat_resets"] != 1 {
		t.Fatalf("resets = %d, want 1", c["store.flat_resets"])
	}
	// The pre-fork persisted entry is invisible under the new generation
	// even though it is still in the store.
	if _, ok := f.Get(types.Hash{3}, []byte("k")); ok {
		t.Fatal("old-generation persisted entry leaked across reset")
	}
}

// TestFlatStateDeletionShadows ensures a deleted key stops being served
// (absence must fall through to the trie, never claim presence).
func TestFlatStateDeletionShadows(t *testing.T) {
	store := kvstore.NewMem()
	defer store.Close()
	f := NewFlatState(store, 16)
	r1, r2 := types.Hash{1}, types.Hash{2}
	f.Advance(types.ZeroHash, r1, map[string][]byte{"k": []byte("v")})
	f.Advance(r1, r2, map[string][]byte{"k": nil})
	if _, ok := f.Get(r2, []byte("k")); ok {
		t.Fatal("deleted key still served by flat layer")
	}
}

// TestFlatStateLRUSpill: entries evicted from the in-memory LRU are
// still served from the write-through store copy.
func TestFlatStateLRUSpill(t *testing.T) {
	store := kvstore.NewMem()
	defer store.Close()
	f := NewFlatState(store, 4)
	root := types.Hash{9}
	writes := make(map[string][]byte)
	for i := 0; i < 64; i++ {
		writes[fmt.Sprintf("k%02d", i)] = []byte(fmt.Sprintf("v%d", i))
	}
	f.Advance(types.ZeroHash, root, writes)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, ok := f.Get(root, []byte(k))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("spilled entry %s not served: %q,%v", k, v, ok)
		}
	}
}
