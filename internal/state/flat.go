package state

import (
	"encoding/binary"
	"sync"

	"blockbench/internal/kvstore"
	"blockbench/internal/lru"
	"blockbench/internal/types"
)

// Flat-state snapshot layer (geth's "snapshot" acceleration structure):
// a flat key→value map kept in front of the Patricia-Merkle trie, so
// head-state point reads cost one map/store lookup instead of a nibble
// walk proportional to trie depth. The trie stays authoritative — root
// computation and historical reads still walk nibbles — the flat layer
// only short-circuits reads anchored at the current head root.
//
// Coherence: the layer is anchored at one state root. At every backend
// commit, Advance folds the block's write-set in and moves the anchor
// to the new root. A commit whose parent is not the anchor (a fork
// block, or a node executing a side chain) resets the layer and
// re-anchors at that commit — correctness never depends on the flat
// content, so resets only cost warm-up misses.
//
// Entries are persisted write-through into the same kvstore.Store that
// holds the trie nodes, under generation-prefixed keys ("f:<gen>:…"), so
// the hot set survives beyond the in-memory LRU without unbounded
// memory, and a reset invalidates every persisted entry in O(1) by
// bumping the generation.

// FlatState is one node's flat snapshot layer. Safe for concurrent use.
type FlatState struct {
	mu      sync.Mutex
	store   kvstore.Store
	cache   *lru.Cache
	entries int
	root    types.Hash
	gen     uint64

	hits, misses, stale, resets uint64
}

// NewFlatState creates a flat layer over store with an in-memory LRU of
// at most entries values (entries <= 0 picks a small default).
//
// A store that survived a process crash still holds the previous life's
// persisted entries — that life's *head* state, which journal replay
// must never read mid-history. Generations restart from zero in every
// life, so the two lives would collide; scanning for the highest
// persisted generation and starting above it makes every inherited
// entry invisible (the documented O(1) reset, applied at open).
func NewFlatState(store kvstore.Store, entries int) *FlatState {
	if entries <= 0 {
		entries = 1024
	}
	f := &FlatState{store: store, cache: lru.New(entries), entries: entries}
	found := false
	store.Iterate([]byte("f:"), []byte("f;"), func(k, _ []byte) bool {
		if len(k) >= 10 {
			if g := binary.BigEndian.Uint64(k[2:10]); !found || g >= f.gen {
				f.gen, found = g+1, true
			}
		}
		return true
	})
	return f
}

func (f *FlatState) flatKey(key string) []byte {
	b := make([]byte, 0, 10+len(key))
	b = append(b, 'f', ':')
	var g [8]byte
	binary.BigEndian.PutUint64(g[:], f.gen)
	b = append(b, g[:]...)
	return append(b, key...)
}

// Get serves a point read if the layer is anchored at root and knows the
// key; ok=false sends the caller down the trie walk. Values are shared
// (read-only by convention, like trie reads).
func (f *FlatState) Get(root types.Hash, key []byte) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if root != f.root {
		f.stale++
		return nil, false
	}
	k := string(key)
	if v, ok := f.cache.Get(k); ok {
		f.hits++
		return v, true
	}
	v, ok, err := f.store.Get(f.flatKey(k))
	if err != nil || !ok {
		// Absence here does not mean absence in state (the key may simply
		// never have been written since the layer was anchored), so the
		// caller must fall through to the trie.
		f.misses++
		return nil, false
	}
	f.cache.Put(k, v)
	f.hits++
	return v, true
}

// Advance folds a committed block's write-set into the layer and moves
// the anchor from parent to root. Re-committing the block the layer is
// already anchored at is a no-op; a commit from any other parent resets
// the layer (new generation, cold LRU) and re-anchors at root.
func (f *FlatState) Advance(parent, root types.Hash, writes map[string][]byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if root == f.root {
		return
	}
	if parent != f.root {
		f.gen++
		f.cache = lru.New(f.entries)
		f.resets++
	}
	for k, v := range writes {
		if v == nil {
			f.cache.Remove(k)
			f.store.Delete(f.flatKey(k))
			continue
		}
		f.cache.Put(k, v)
		// Persistence is best-effort: on a failed write the entry is just
		// absent from the flat layer and reads fall through to the trie.
		f.store.Put(f.flatKey(k), v)
	}
	f.root = root
}

// Root returns the state root the layer is currently anchored at.
func (f *FlatState) Root() types.Hash {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.root
}

// Counters implements metrics.CounterProvider.
func (f *FlatState) Counters() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return map[string]uint64{
		"store.flat_hits":   f.hits,
		"store.flat_misses": f.misses + f.stale,
		"store.flat_resets": f.resets,
	}
}

// FlatBackend is a TrieBackend with the flat layer in front: point reads
// try the flat snapshot first and only walk the trie on a miss, writes
// go to the trie and are captured for the flat layer, and Commit
// advances the layer with the accumulated write-set. Roots are computed
// by the trie alone, so they are byte-identical with or without the
// flat layer.
type FlatBackend struct {
	trie   *TrieBackend
	flat   *FlatState
	root   types.Hash // root this backend is reading at
	writes map[string][]byte
}

// NewFlatBackend opens a trie backend at root with flat in front.
func NewFlatBackend(store kvstore.Store, root types.Hash, cache *SharedCache, flat *FlatState) (*FlatBackend, error) {
	tb, err := NewTrieBackendShared(store, root, cache)
	if err != nil {
		return nil, err
	}
	return &FlatBackend{trie: tb, flat: flat, root: root, writes: make(map[string][]byte)}, nil
}

// Get implements Backend.
func (b *FlatBackend) Get(key []byte) ([]byte, error) {
	if v, ok := b.flat.Get(b.root, key); ok {
		return v, nil
	}
	return b.trie.Get(key)
}

// Put implements Backend.
func (b *FlatBackend) Put(key, value []byte) error {
	b.writes[string(key)] = value
	return b.trie.Put(key, value)
}

// Delete implements Backend.
func (b *FlatBackend) Delete(key []byte) error {
	b.writes[string(key)] = nil
	return b.trie.Delete(key)
}

// Commit implements Backend: the trie computes the root, then the flat
// layer advances to it with this backend's write-set.
func (b *FlatBackend) Commit() (types.Hash, error) {
	root, err := b.trie.Commit()
	if err != nil {
		return root, err
	}
	b.flat.Advance(b.root, root, b.writes)
	b.root = root
	b.writes = make(map[string][]byte)
	return root, nil
}

// Iterate implements Backend (trie order — the flat layer holds no
// authority over enumeration).
func (b *FlatBackend) Iterate(fn func(k, v []byte) bool) error { return b.trie.Iterate(fn) }

// IterateRange implements Backend.
func (b *FlatBackend) IterateRange(start, end []byte, fn func(k, v []byte) bool) error {
	return b.trie.IterateRange(start, end, fn)
}

// MemBytes implements Backend.
func (b *FlatBackend) MemBytes() int64 { return b.trie.MemBytes() }

// NodesWritten exposes trie write amplification for the IOHeavy report.
func (b *FlatBackend) NodesWritten() uint64 { return b.trie.NodesWritten() }
