package state

import (
	"bytes"
	"sync"

	"blockbench/internal/bmt"
	"blockbench/internal/kvstore"
	"blockbench/internal/lru"
	"blockbench/internal/mpt"
	"blockbench/internal/types"
)

// SharedCache is a thread-safe LRU of encoded trie nodes keyed by
// content hash, shared across all trie versions of one node. Because
// node encodings are immutable under their hash, the cache can never
// serve a stale value — head and historical reads both hit it safely
// (geth's state cache works the same way).
type SharedCache struct {
	mu  sync.Mutex
	lru *lru.Cache
}

// NewSharedCache creates a cache holding up to capacity nodes.
func NewSharedCache(capacity int) *SharedCache {
	return &SharedCache{lru: lru.New(capacity)}
}

// Get implements mpt.NodeCache.
func (c *SharedCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Get(key)
}

// Put implements mpt.NodeCache.
func (c *SharedCache) Put(key string, v []byte) {
	c.mu.Lock()
	c.lru.Put(key, v)
	c.mu.Unlock()
}

// TrieBackend authenticates state with a Patricia-Merkle trie persisted
// into a key-value store (the Ethereum/Parity data model). An optional
// LRU value cache in front of the trie models geth's partial in-memory
// state caching; Parity instead pins everything by using an uncapped
// in-memory store underneath.
type TrieBackend struct {
	trie  *mpt.Trie
	store kvstore.Store
}

// NewTrieBackend opens a trie backend at root. cacheEntries > 0 installs
// a backend-private LRU node cache; to share one cache across all the
// backends of a node, use NewTrieBackendShared.
func NewTrieBackend(store kvstore.Store, root types.Hash, cacheEntries int) (*TrieBackend, error) {
	var cache *SharedCache
	if cacheEntries > 0 {
		cache = NewSharedCache(cacheEntries)
	}
	return NewTrieBackendShared(store, root, cache)
}

// NewTrieBackendShared opens a trie backend at root using the given
// (possibly nil) shared node cache.
func NewTrieBackendShared(store kvstore.Store, root types.Hash, cache *SharedCache) (*TrieBackend, error) {
	var nc mpt.NodeCache
	if cache != nil {
		nc = cache
	}
	trie, err := mpt.NewWithCache(store, root, nc)
	if err != nil {
		return nil, err
	}
	return &TrieBackend{trie: trie, store: store}, nil
}

// Get implements Backend.
func (b *TrieBackend) Get(key []byte) ([]byte, error) { return b.trie.Get(key) }

// Put implements Backend.
func (b *TrieBackend) Put(key, value []byte) error { return b.trie.Put(key, value) }

// Delete implements Backend.
func (b *TrieBackend) Delete(key []byte) error { return b.trie.Delete(key) }

// Commit implements Backend.
func (b *TrieBackend) Commit() (types.Hash, error) { return b.trie.Commit() }

// Iterate implements Backend (ascending key order).
func (b *TrieBackend) Iterate(fn func(k, v []byte) bool) error { return b.trie.Iterate(fn) }

// IterateRange implements Backend. The trie walk is in ascending key
// order, so the scan stops as soon as it passes end.
func (b *TrieBackend) IterateRange(start, end []byte, fn func(k, v []byte) bool) error {
	return b.trie.Iterate(func(k, v []byte) bool {
		if start != nil && bytes.Compare(k, start) < 0 {
			return true
		}
		if end != nil && bytes.Compare(k, end) >= 0 {
			return false
		}
		return fn(k, v)
	})
}

// MemBytes implements Backend.
func (b *TrieBackend) MemBytes() int64 { return b.store.Stats().MemBytes }

// NodesWritten exposes trie write amplification for the IOHeavy report.
func (b *TrieBackend) NodesWritten() uint64 { return b.trie.NodesWritten() }

// BucketBackend authenticates state with a Bucket-Merkle tree directly
// over the storage engine (the Hyperledger data model: "outsources its
// data management entirely to the storage engine").
type BucketBackend struct {
	tree  *bmt.Tree
	store kvstore.Store
}

// NewBucketBackend opens a bucket-tree backend.
func NewBucketBackend(store kvstore.Store, opts bmt.Options) (*BucketBackend, error) {
	tree, err := bmt.New(store, opts)
	if err != nil {
		return nil, err
	}
	return &BucketBackend{tree: tree, store: store}, nil
}

// Get implements Backend.
func (b *BucketBackend) Get(key []byte) ([]byte, error) { return b.tree.Get(key) }

// Put implements Backend.
func (b *BucketBackend) Put(key, value []byte) error { return b.tree.Put(key, value) }

// Delete implements Backend.
func (b *BucketBackend) Delete(key []byte) error { return b.tree.Delete(key) }

// Commit implements Backend.
func (b *BucketBackend) Commit() (types.Hash, error) { return b.tree.Commit() }

// Iterate implements Backend (bucket order, not key order — matching the
// real system's unordered bucket layout).
func (b *BucketBackend) Iterate(fn func(k, v []byte) bool) error { return b.tree.Iterate(fn) }

// IterateRange implements Backend. Bucket order gives no early-stop
// opportunity; the full walk is filtered to the span.
func (b *BucketBackend) IterateRange(start, end []byte, fn func(k, v []byte) bool) error {
	return b.tree.Iterate(func(k, v []byte) bool {
		if start != nil && bytes.Compare(k, start) < 0 {
			return true
		}
		if end != nil && bytes.Compare(k, end) >= 0 {
			return true
		}
		return fn(k, v)
	})
}

// MemBytes implements Backend.
func (b *BucketBackend) MemBytes() int64 { return b.store.Stats().MemBytes }
