// Package evm implements the gas-metered stack virtual machine that the
// Ethereum and Parity presets execute contracts on, standing in for the
// Ethereum Virtual Machine: "every code instruction executed in Ethereum
// costs a certain amount of gas ... the code must keep track of
// intermediate states and reverse them if the execution runs out of gas."
//
// The machine operates on 64-bit words with byte-addressed, zero-
// initialized memory that grows (and is charged) on demand. Contract
// storage keys and values are arbitrary byte strings accessed through
// memory ranges. Programs are containers of named functions (see
// Program); the transaction's method selector picks the entry point,
// mirroring how chaincode dispatches on a function name.
package evm

import (
	"errors"
	"fmt"

	"blockbench/internal/types"
)

// Opcodes. Operands noted as (immediates); stack effects note pop order
// (top first) — arguments are pushed left-to-right by convention.
const (
	opSTOP   = 0x00
	opADD    = 0x01 // pops b, a; pushes a+b
	opSUB    = 0x02 // pops b, a; pushes a-b
	opMUL    = 0x03
	opDIV    = 0x04 // pops b, a; pushes a/b (b==0 traps)
	opMOD    = 0x05
	opLT     = 0x06 // pops b, a; pushes a<b
	opGT     = 0x07
	opEQ     = 0x08
	opISZERO = 0x09
	opAND    = 0x0a
	opOR     = 0x0b
	opXOR    = 0x0c
	opNOT    = 0x0d
	opSHL    = 0x0e // pops n, a; pushes a<<n
	opSHR    = 0x0f
	opSLT    = 0x14 // pops b, a; pushes int64(a) < int64(b)
	opSGT    = 0x15

	opPUSH = 0x10 // (u64) pushes immediate
	opPOP  = 0x11
	opDUP  = 0x12 // (u8 n) duplicates n-th from top (1 = top)
	opSWAP = 0x13 // (u8 n) swaps top with (n+1)-th

	opJUMP    = 0x20 // (u32 dest)
	opJUMPI   = 0x21 // (u32 dest) pops cond; jumps if cond != 0
	opCALLSUB = 0x22 // (u32 dest) pushes return address on call stack
	opRETSUB  = 0x23

	opMLOAD   = 0x30 // pops off; pushes u64 at memory[off:off+8]
	opMSTORE  = 0x31 // pops val, off; stores 8 bytes
	opMLOAD1  = 0x32 // pops off; pushes memory[off]
	opMSTORE1 = 0x33 // pops val, off; stores 1 byte
	opMSIZE   = 0x34

	opSLOAD  = 0x40 // pops dstOff, keyLen, keyOff; pushes len, found
	opSSTORE = 0x41 // pops valLen, valOff, keyLen, keyOff
	opSDEL   = 0x42 // pops keyLen, keyOff

	opARGN     = 0x50 // pushes number of call args
	opARG      = 0x51 // pops dstOff, i; copies arg i to memory; pushes len
	opARGW     = 0x52 // pops i; pushes U64(arg i)
	opCALLER   = 0x53 // pops dstOff; writes 20-byte caller; pushes 20
	opVALUE    = 0x54 // pushes tx value
	opSELFBAL  = 0x55
	opBALANCE  = 0x56 // pops addrOff; pushes balance of address at memory
	opTRANSFER = 0x57 // pops amount, addrOff; pays out of contract account

	opRETURN  = 0x60 // pops len, off; halts returning memory[off:off+len]
	opREVERT  = 0x61 // pops len, off; halts, reverting, with message
	opSHA3    = 0x62 // pops len, off, dstOff; writes 32-byte hash; pushes 32
	opGASLEFT = 0x63
)

// Execution errors. ErrRevert carries the contract's message via Result.
var (
	ErrOutOfGas       = errors.New("evm: out of gas")
	ErrOutOfMemory    = errors.New("evm: out of memory")
	ErrStackUnderflow = errors.New("evm: stack underflow")
	ErrStackOverflow  = errors.New("evm: stack overflow")
	ErrBadJump        = errors.New("evm: jump out of range")
	ErrBadOpcode      = errors.New("evm: invalid opcode")
	ErrRevert         = errors.New("evm: execution reverted")
	ErrNoMethod       = errors.New("evm: method not found")
	ErrDivByZero      = errors.New("evm: division by zero")
)

const (
	maxStack     = 1024
	maxCallDepth = 256
)

// State is the world-state surface the VM needs; *state.DB satisfies it.
type State interface {
	GetState(contract string, key []byte) []byte
	SetState(contract string, key, value []byte)
	DeleteState(contract string, key []byte)
	GetBalance(addr types.Address) uint64
	Transfer(from, to types.Address, amount uint64) error
}

// Env carries per-invocation context.
type Env struct {
	State        State
	Contract     string        // storage namespace
	ContractAddr types.Address // the contract's own account
	Caller       types.Address
	Value        uint64
	Args         [][]byte
	GasLimit     uint64

	// Memory model: the simulated resident footprint is MemBase +
	// MemFactor × (actual VM memory bytes); execution traps with
	// ErrOutOfMemory when it exceeds MemCap (0 = unlimited). This models
	// the very different per-word overheads the paper measured for geth
	// and Parity without allocating terabytes.
	MemBase   int64
	MemFactor int64
	MemCap    int64
}

// Result reports the outcome of a VM run.
type Result struct {
	GasUsed uint64
	Output  []byte
	Err     error
	// PeakMem is the simulated peak resident footprint in bytes.
	PeakMem int64
	// Steps counts executed instructions (execution-layer ops metric).
	Steps uint64
}

type vm struct {
	code  []byte
	pc    int
	stack []uint64
	calls []int
	mem   []byte
	gas   uint64
	env   *Env
	peak  int64
	steps uint64
}

// Run executes the named method of prog under env.
func Run(prog *Program, method string, env *Env) *Result {
	entry, ok := prog.Funcs[method]
	if !ok {
		return &Result{Err: fmt.Errorf("%w: %q", ErrNoMethod, method)}
	}
	m := &vm{
		code:  prog.Code,
		pc:    int(entry),
		stack: make([]uint64, 0, 64),
		gas:   env.GasLimit,
		env:   env,
	}
	if env.MemFactor <= 0 {
		env.MemFactor = 1
	}
	m.notePeak()
	out, err := m.run()
	return &Result{
		GasUsed: env.GasLimit - m.gas,
		Output:  out,
		Err:     err,
		PeakMem: m.peak,
		Steps:   m.steps,
	}
}

func (m *vm) notePeak() {
	sim := m.env.MemBase + int64(len(m.mem))*m.env.MemFactor
	if sim > m.peak {
		m.peak = sim
	}
}

func (m *vm) charge(g uint64) error {
	if m.gas < g {
		m.gas = 0
		return ErrOutOfGas
	}
	m.gas -= g
	return nil
}

// grow ensures memory covers [off, off+n), charging expansion gas and
// enforcing the simulated memory cap.
func (m *vm) grow(off, n uint64) error {
	if n == 0 {
		return nil
	}
	end := off + n
	if end < off || end > 1<<40 { // hard sanity bound on actual memory
		return ErrOutOfMemory
	}
	if end <= uint64(len(m.mem)) {
		return nil
	}
	// Round up to 32-byte words, charge per new word.
	newWords := (end + 31) / 32
	oldWords := (uint64(len(m.mem)) + 31) / 32
	if err := m.charge((newWords - oldWords) * gasMemWord); err != nil {
		return err
	}
	newLen := newWords * 32
	if m.env.MemCap > 0 {
		sim := m.env.MemBase + int64(newLen)*m.env.MemFactor
		if sim > m.env.MemCap {
			m.peak = sim
			return ErrOutOfMemory
		}
	}
	grown := make([]byte, newLen)
	copy(grown, m.mem)
	m.mem = grown
	m.notePeak()
	return nil
}

func (m *vm) push(v uint64) error {
	if len(m.stack) >= maxStack {
		return ErrStackOverflow
	}
	m.stack = append(m.stack, v)
	return nil
}

func (m *vm) pop() (uint64, error) {
	if len(m.stack) == 0 {
		return 0, ErrStackUnderflow
	}
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v, nil
}

func (m *vm) pop2() (a, b uint64, err error) {
	if len(m.stack) < 2 {
		return 0, 0, ErrStackUnderflow
	}
	n := len(m.stack)
	b, a = m.stack[n-1], m.stack[n-2]
	m.stack = m.stack[:n-2]
	return a, b, nil
}

func (m *vm) imm64() (uint64, error) {
	if m.pc+8 > len(m.code) {
		return 0, ErrBadJump
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.code[m.pc+i]) << (8 * i)
	}
	m.pc += 8
	return v, nil
}

func (m *vm) imm32() (int, error) {
	if m.pc+4 > len(m.code) {
		return 0, ErrBadJump
	}
	v := int(m.code[m.pc]) | int(m.code[m.pc+1])<<8 |
		int(m.code[m.pc+2])<<16 | int(m.code[m.pc+3])<<24
	m.pc += 4
	return v, nil
}

func (m *vm) imm8() (int, error) {
	if m.pc >= len(m.code) {
		return 0, ErrBadJump
	}
	v := int(m.code[m.pc])
	m.pc++
	return v, nil
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
