package evm

import (
	"encoding/binary"

	"blockbench/internal/types"
)

// Gas schedule. Storage is the dominant cost, as in the real EVM; the
// absolute values are simplified but preserve the ordering the paper's
// workloads depend on (I/O ≫ compute ≫ stack traffic).
const (
	gasBase     = 1   // stack, arithmetic, logic
	gasJump     = 2   // control flow
	gasMem      = 3   // memory load/store
	gasMemWord  = 1   // per 32-byte word of memory growth
	gasSloadOp  = 50  // storage read, plus gasPerByte per value byte
	gasSstoreOp = 200 // storage write, plus gasPerByte per key+value byte
	gasSdelOp   = 100
	gasPerByte  = 2
	gasTransfer = 400
	gasSha3     = 30
	gasArg      = 3
)

// TxIntrinsicGas is charged for every transaction before execution, as in
// Ethereum (21000).
const TxIntrinsicGas = 21000

// run is the interpreter loop. It returns the RETURN payload, or an error
// for traps and reverts (revert payload returned alongside ErrRevert).
func (m *vm) run() ([]byte, error) {
	for {
		if m.pc >= len(m.code) {
			return nil, nil // falling off the end behaves like STOP
		}
		op := m.code[m.pc]
		m.pc++
		m.steps++

		switch op {
		case opSTOP:
			return nil, nil

		case opADD, opSUB, opMUL, opDIV, opMOD, opLT, opGT, opEQ,
			opAND, opOR, opXOR, opSHL, opSHR, opSLT, opSGT:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			a, b, err := m.pop2()
			if err != nil {
				return nil, err
			}
			var v uint64
			switch op {
			case opADD:
				v = a + b
			case opSUB:
				v = a - b
			case opMUL:
				v = a * b
			case opDIV:
				if b == 0 {
					return nil, ErrDivByZero
				}
				v = a / b
			case opMOD:
				if b == 0 {
					return nil, ErrDivByZero
				}
				v = a % b
			case opLT:
				v = boolWord(a < b)
			case opGT:
				v = boolWord(a > b)
			case opEQ:
				v = boolWord(a == b)
			case opSLT:
				v = boolWord(int64(a) < int64(b))
			case opSGT:
				v = boolWord(int64(a) > int64(b))
			case opAND:
				v = a & b
			case opOR:
				v = a | b
			case opXOR:
				v = a ^ b
			case opSHL:
				if b >= 64 {
					v = 0
				} else {
					v = a << b
				}
			case opSHR:
				if b >= 64 {
					v = 0
				} else {
					v = a >> b
				}
			}
			if err := m.push(v); err != nil {
				return nil, err
			}

		case opISZERO, opNOT:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			a, err := m.pop()
			if err != nil {
				return nil, err
			}
			if op == opISZERO {
				a = boolWord(a == 0)
			} else {
				a = ^a
			}
			if err := m.push(a); err != nil {
				return nil, err
			}

		case opPUSH:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			v, err := m.imm64()
			if err != nil {
				return nil, err
			}
			if err := m.push(v); err != nil {
				return nil, err
			}

		case opPOP:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			if _, err := m.pop(); err != nil {
				return nil, err
			}

		case opDUP:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			n, err := m.imm8()
			if err != nil {
				return nil, err
			}
			if n < 1 || n > len(m.stack) {
				return nil, ErrStackUnderflow
			}
			if err := m.push(m.stack[len(m.stack)-n]); err != nil {
				return nil, err
			}

		case opSWAP:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			n, err := m.imm8()
			if err != nil {
				return nil, err
			}
			if n < 1 || n+1 > len(m.stack) {
				return nil, ErrStackUnderflow
			}
			top := len(m.stack) - 1
			m.stack[top], m.stack[top-n] = m.stack[top-n], m.stack[top]

		case opJUMP:
			if err := m.charge(gasJump); err != nil {
				return nil, err
			}
			dst, err := m.imm32()
			if err != nil {
				return nil, err
			}
			if dst < 0 || dst > len(m.code) {
				return nil, ErrBadJump
			}
			m.pc = dst

		case opJUMPI:
			if err := m.charge(gasJump); err != nil {
				return nil, err
			}
			dst, err := m.imm32()
			if err != nil {
				return nil, err
			}
			cond, err := m.pop()
			if err != nil {
				return nil, err
			}
			if cond != 0 {
				if dst < 0 || dst > len(m.code) {
					return nil, ErrBadJump
				}
				m.pc = dst
			}

		case opCALLSUB:
			if err := m.charge(gasJump); err != nil {
				return nil, err
			}
			dst, err := m.imm32()
			if err != nil {
				return nil, err
			}
			if len(m.calls) >= maxCallDepth {
				return nil, ErrStackOverflow
			}
			if dst < 0 || dst > len(m.code) {
				return nil, ErrBadJump
			}
			m.calls = append(m.calls, m.pc)
			m.pc = dst

		case opRETSUB:
			if err := m.charge(gasJump); err != nil {
				return nil, err
			}
			if len(m.calls) == 0 {
				return nil, ErrStackUnderflow
			}
			m.pc = m.calls[len(m.calls)-1]
			m.calls = m.calls[:len(m.calls)-1]

		case opMLOAD:
			if err := m.charge(gasMem); err != nil {
				return nil, err
			}
			off, err := m.pop()
			if err != nil {
				return nil, err
			}
			if err := m.grow(off, 8); err != nil {
				return nil, err
			}
			if err := m.push(binary.LittleEndian.Uint64(m.mem[off:])); err != nil {
				return nil, err
			}

		case opMSTORE:
			if err := m.charge(gasMem); err != nil {
				return nil, err
			}
			off, val, err := m.pop2()
			if err != nil {
				return nil, err
			}
			if err := m.grow(off, 8); err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint64(m.mem[off:], val)

		case opMLOAD1:
			if err := m.charge(gasMem); err != nil {
				return nil, err
			}
			off, err := m.pop()
			if err != nil {
				return nil, err
			}
			if err := m.grow(off, 1); err != nil {
				return nil, err
			}
			if err := m.push(uint64(m.mem[off])); err != nil {
				return nil, err
			}

		case opMSTORE1:
			if err := m.charge(gasMem); err != nil {
				return nil, err
			}
			off, val, err := m.pop2()
			if err != nil {
				return nil, err
			}
			if err := m.grow(off, 1); err != nil {
				return nil, err
			}
			m.mem[off] = byte(val)

		case opMSIZE:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			if err := m.push(uint64(len(m.mem))); err != nil {
				return nil, err
			}

		case opSLOAD:
			dstOff, err := m.pop()
			if err != nil {
				return nil, err
			}
			keyOff, keyLen, err := m.pop2()
			if err != nil {
				return nil, err
			}
			if err := m.grow(keyOff, keyLen); err != nil {
				return nil, err
			}
			val := m.env.State.GetState(m.env.Contract, m.mem[keyOff:keyOff+keyLen])
			if err := m.charge(gasSloadOp + gasPerByte*uint64(len(val))); err != nil {
				return nil, err
			}
			found := uint64(0)
			if val != nil {
				found = 1
				if err := m.grow(dstOff, uint64(len(val))); err != nil {
					return nil, err
				}
				copy(m.mem[dstOff:], val)
			}
			if err := m.push(uint64(len(val))); err != nil {
				return nil, err
			}
			if err := m.push(found); err != nil {
				return nil, err
			}

		case opSSTORE:
			valOff, valLen, err := m.pop2()
			if err != nil {
				return nil, err
			}
			keyOff, keyLen, err := m.pop2()
			if err != nil {
				return nil, err
			}
			if err := m.charge(gasSstoreOp + gasPerByte*(keyLen+valLen)); err != nil {
				return nil, err
			}
			if err := m.grow(keyOff, keyLen); err != nil {
				return nil, err
			}
			if err := m.grow(valOff, valLen); err != nil {
				return nil, err
			}
			m.env.State.SetState(m.env.Contract,
				m.mem[keyOff:keyOff+keyLen], m.mem[valOff:valOff+valLen])

		case opSDEL:
			keyOff, keyLen, err := m.pop2()
			if err != nil {
				return nil, err
			}
			if err := m.charge(gasSdelOp); err != nil {
				return nil, err
			}
			if err := m.grow(keyOff, keyLen); err != nil {
				return nil, err
			}
			m.env.State.DeleteState(m.env.Contract, m.mem[keyOff:keyOff+keyLen])

		case opARGN:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			if err := m.push(uint64(len(m.env.Args))); err != nil {
				return nil, err
			}

		case opARG:
			i, dstOff, err := m.pop2()
			if err != nil {
				return nil, err
			}
			if i >= uint64(len(m.env.Args)) {
				return nil, ErrStackUnderflow
			}
			arg := m.env.Args[i]
			if err := m.charge(gasArg + gasPerByte*uint64(len(arg))); err != nil {
				return nil, err
			}
			if err := m.grow(dstOff, uint64(len(arg))); err != nil {
				return nil, err
			}
			copy(m.mem[dstOff:], arg)
			if err := m.push(uint64(len(arg))); err != nil {
				return nil, err
			}

		case opARGW:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			i, err := m.pop()
			if err != nil {
				return nil, err
			}
			if i >= uint64(len(m.env.Args)) {
				return nil, ErrStackUnderflow
			}
			if err := m.push(types.U64(m.env.Args[i])); err != nil {
				return nil, err
			}

		case opCALLER:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			dstOff, err := m.pop()
			if err != nil {
				return nil, err
			}
			if err := m.grow(dstOff, types.AddressSize); err != nil {
				return nil, err
			}
			copy(m.mem[dstOff:], m.env.Caller[:])
			if err := m.push(types.AddressSize); err != nil {
				return nil, err
			}

		case opVALUE:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			if err := m.push(m.env.Value); err != nil {
				return nil, err
			}

		case opSELFBAL:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			if err := m.push(m.env.State.GetBalance(m.env.ContractAddr)); err != nil {
				return nil, err
			}

		case opBALANCE:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			addrOff, err := m.pop()
			if err != nil {
				return nil, err
			}
			if err := m.grow(addrOff, types.AddressSize); err != nil {
				return nil, err
			}
			a := types.BytesToAddress(m.mem[addrOff : addrOff+types.AddressSize])
			if err := m.push(m.env.State.GetBalance(a)); err != nil {
				return nil, err
			}

		case opTRANSFER:
			if err := m.charge(gasTransfer); err != nil {
				return nil, err
			}
			addrOff, amount, err := m.pop2()
			if err != nil {
				return nil, err
			}
			if err := m.grow(addrOff, types.AddressSize); err != nil {
				return nil, err
			}
			to := types.BytesToAddress(m.mem[addrOff : addrOff+types.AddressSize])
			if err := m.env.State.Transfer(m.env.ContractAddr, to, amount); err != nil {
				return nil, err
			}

		case opRETURN, opREVERT:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			off, length, err := m.pop2()
			if err != nil {
				return nil, err
			}
			if err := m.grow(off, length); err != nil {
				return nil, err
			}
			out := make([]byte, length)
			copy(out, m.mem[off:off+length])
			if op == opREVERT {
				return out, ErrRevert
			}
			return out, nil

		case opSHA3:
			off, length, err := m.pop2()
			if err != nil {
				return nil, err
			}
			dstOff, err := m.pop()
			if err != nil {
				return nil, err
			}
			if err := m.charge(gasSha3 + length/32); err != nil {
				return nil, err
			}
			if err := m.grow(off, length); err != nil {
				return nil, err
			}
			h := types.HashData(m.mem[off : off+length])
			if err := m.grow(dstOff, types.HashSize); err != nil {
				return nil, err
			}
			copy(m.mem[dstOff:], h[:])
			if err := m.push(types.HashSize); err != nil {
				return nil, err
			}

		case opGASLEFT:
			if err := m.charge(gasBase); err != nil {
				return nil, err
			}
			if err := m.push(m.gas); err != nil {
				return nil, err
			}

		default:
			return nil, ErrBadOpcode
		}
	}
}
