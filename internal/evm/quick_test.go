package evm_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"blockbench/internal/contracts"
	"blockbench/internal/evm"
	"blockbench/internal/evm/asm"
	"blockbench/internal/types"
)

// runBinOp assembles and executes a two-operand program, returning the
// 64-bit result.
func runBinOp(t *testing.T, op string, a, b uint64) (uint64, error) {
	t.Helper()
	src := fmt.Sprintf(`
.func f
  PUSH %d
  PUSH %d
  %s
  PUSH 0
  SWAP 1
  MSTORE
  PUSH 0
  PUSH 8
  RETURN
`, a, b, op)
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble %s: %v", op, err)
	}
	res := evm.Run(prog, "f", &evm.Env{State: nullState{}, GasLimit: 1 << 20})
	if res.Err != nil {
		return 0, res.Err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(res.Output[i])
	}
	return v, nil
}

// nullState satisfies evm.State for pure computations.
type nullState struct{}

func (nullState) GetState(string, []byte) []byte                      { return nil }
func (nullState) SetState(string, []byte, []byte)                     {}
func (nullState) DeleteState(string, []byte)                          {}
func (nullState) GetBalance(types.Address) uint64                     { return 0 }
func (nullState) Transfer(types.Address, types.Address, uint64) error { return nil }

// TestVMArithmeticMatchesGo checks that every binary ALU opcode computes
// exactly what Go computes, over random operands.
func TestVMArithmeticMatchesGo(t *testing.T) {
	ops := map[string]func(a, b uint64) uint64{
		"ADD": func(a, b uint64) uint64 { return a + b },
		"SUB": func(a, b uint64) uint64 { return a - b },
		"MUL": func(a, b uint64) uint64 { return a * b },
		"AND": func(a, b uint64) uint64 { return a & b },
		"OR":  func(a, b uint64) uint64 { return a | b },
		"XOR": func(a, b uint64) uint64 { return a ^ b },
		"LT": func(a, b uint64) uint64 {
			if a < b {
				return 1
			}
			return 0
		},
		"GT": func(a, b uint64) uint64 {
			if a > b {
				return 1
			}
			return 0
		},
		"EQ": func(a, b uint64) uint64 {
			if a == b {
				return 1
			}
			return 0
		},
		"SLT": func(a, b uint64) uint64 {
			if int64(a) < int64(b) {
				return 1
			}
			return 0
		},
		"SGT": func(a, b uint64) uint64 {
			if int64(a) > int64(b) {
				return 1
			}
			return 0
		},
	}
	for op, model := range ops {
		op, model := op, model
		f := func(a, b uint64) bool {
			got, err := runBinOp(t, op, a, b)
			return err == nil && got == model(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", op, err)
		}
	}
}

// TestVMDivModMatchesGo covers the trapping opcodes separately.
func TestVMDivModMatchesGo(t *testing.T) {
	f := func(a, b uint64) bool {
		if b == 0 {
			b = 1
		}
		q, err := runBinOp(t, "DIV", a, b)
		if err != nil || q != a/b {
			return false
		}
		r, err := runBinOp(t, "MOD", a, b)
		return err == nil && r == a%b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestVMSortProperty: for random small n, the CPUHeavy contract returns
// the minimum element (1) and charges gas monotonically in n.
func TestVMSortProperty(t *testing.T) {
	spec := mustContract(t)
	var lastGas uint64
	for _, n := range []uint64{2, 8, 32, 128, 512} {
		res := evm.Run(spec, "sort", &evm.Env{
			State: nullState{}, Args: [][]byte{types.U64Bytes(n)}, GasLimit: 1 << 40,
		})
		if res.Err != nil {
			t.Fatalf("n=%d: %v", n, res.Err)
		}
		if types.U64(reverse8(res.Output)) != 1 {
			t.Fatalf("n=%d: min = %v", n, res.Output)
		}
		if res.GasUsed <= lastGas {
			t.Fatalf("n=%d: gas %d not increasing (prev %d)", n, res.GasUsed, lastGas)
		}
		lastGas = res.GasUsed
	}
}

func mustContract(t *testing.T) *evm.Program {
	t.Helper()
	spec, err := contracts.Lookup("cpuheavy")
	if err != nil {
		t.Fatal(err)
	}
	return spec.EVM
}
