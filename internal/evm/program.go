package evm

import (
	"fmt"
	"sort"

	"blockbench/internal/types"
)

// Program is a compiled contract: flat bytecode plus a function table
// mapping method selectors to entry offsets. Execution starts at the
// offset of the transaction's method and runs until STOP/RETURN/REVERT
// or a trap.
type Program struct {
	Code  []byte
	Funcs map[string]uint32
}

// Methods lists the program's function names in sorted order.
func (p *Program) Methods() []string {
	out := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Encode serializes the program for deployment transactions.
func (p *Program) Encode() []byte {
	e := types.NewEncoder()
	e.Uint32(uint32(len(p.Funcs)))
	for _, name := range p.Methods() {
		e.String(name)
		e.Uint32(p.Funcs[name])
	}
	e.Bytes(p.Code)
	return e.Out()
}

// DecodeProgram parses a serialized program.
func DecodeProgram(buf []byte) (*Program, error) {
	d := types.NewDecoder(buf)
	n := int(d.Uint32())
	p := &Program{Funcs: make(map[string]uint32, n)}
	for i := 0; i < n; i++ {
		name := d.String()
		off := d.Uint32()
		if d.Err() != nil {
			break
		}
		p.Funcs[name] = off
	}
	p.Code = d.Bytes()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("evm: decode program: %w", err)
	}
	for name, off := range p.Funcs {
		if int(off) > len(p.Code) {
			return nil, fmt.Errorf("evm: function %q offset %d beyond code", name, off)
		}
	}
	return p, nil
}
