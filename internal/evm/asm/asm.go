// Package asm is the two-pass assembler used to author the Solidity-
// equivalent benchmark contracts for the EVM in this repository (each
// contract in the paper's Table 1 has "one Solidity version for Parity
// and Ethereum" — here, one assembly version — "and one Golang version
// for Hyperledger").
//
// Syntax, one statement per line:
//
//	; comment (also after statements)
//	.func name        ; declares a method entry point at this offset
//	label:            ; jump target
//	PUSH 42           ; decimal, 0x2a hex, 'c' char or @label immediates
//	JUMP @loop        ; control flow takes label immediates
//	DUP 2             ; stack index immediates
//
// The assembler resolves labels in a second pass, so forward references
// are fine. Labels are file-global; by convention contracts prefix them
// with the function name.
package asm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"blockbench/internal/evm"
)

type immKind int

const (
	immNone immKind = iota
	immU64          // 8-byte value immediate
	immU32          // 4-byte code offset (labels allowed)
	immU8           // 1-byte stack index
)

// mnemonics maps textual opcodes to (byte, immediate kind).
var mnemonics = map[string]struct {
	op  byte
	imm immKind
}{
	"STOP":     {0x00, immNone},
	"ADD":      {0x01, immNone},
	"SUB":      {0x02, immNone},
	"MUL":      {0x03, immNone},
	"DIV":      {0x04, immNone},
	"MOD":      {0x05, immNone},
	"LT":       {0x06, immNone},
	"GT":       {0x07, immNone},
	"EQ":       {0x08, immNone},
	"ISZERO":   {0x09, immNone},
	"AND":      {0x0a, immNone},
	"OR":       {0x0b, immNone},
	"XOR":      {0x0c, immNone},
	"NOT":      {0x0d, immNone},
	"SHL":      {0x0e, immNone},
	"SHR":      {0x0f, immNone},
	"SLT":      {0x14, immNone},
	"SGT":      {0x15, immNone},
	"PUSH":     {0x10, immU64},
	"POP":      {0x11, immNone},
	"DUP":      {0x12, immU8},
	"SWAP":     {0x13, immU8},
	"JUMP":     {0x20, immU32},
	"JUMPI":    {0x21, immU32},
	"CALLSUB":  {0x22, immU32},
	"RETSUB":   {0x23, immNone},
	"MLOAD":    {0x30, immNone},
	"MSTORE":   {0x31, immNone},
	"MLOAD1":   {0x32, immNone},
	"MSTORE1":  {0x33, immNone},
	"MSIZE":    {0x34, immNone},
	"SLOAD":    {0x40, immNone},
	"SSTORE":   {0x41, immNone},
	"SDEL":     {0x42, immNone},
	"ARGN":     {0x50, immNone},
	"ARG":      {0x51, immNone},
	"ARGW":     {0x52, immNone},
	"CALLER":   {0x53, immNone},
	"VALUE":    {0x54, immNone},
	"SELFBAL":  {0x55, immNone},
	"BALANCE":  {0x56, immNone},
	"TRANSFER": {0x57, immNone},
	"RETURN":   {0x60, immNone},
	"REVERT":   {0x61, immNone},
	"SHA3":     {0x62, immNone},
	"GASLEFT":  {0x63, immNone},
}

type fixup struct {
	offset int    // position of the u32 to patch
	label  string // target label
	line   int
}

// Assemble compiles source text to a Program.
func Assemble(src string) (*evm.Program, error) {
	var (
		code   []byte
		labels = make(map[string]int)
		funcs  = make(map[string]uint32)
		fixups []fixup
	)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		n := lineNo + 1

		switch {
		case strings.HasPrefix(line, ".func "):
			name := strings.TrimSpace(strings.TrimPrefix(line, ".func "))
			if name == "" {
				return nil, fmt.Errorf("asm: line %d: .func needs a name", n)
			}
			if _, dup := funcs[name]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate function %q", n, name)
			}
			funcs[name] = uint32(len(code))
			continue

		case strings.HasSuffix(line, ":"):
			name := strings.TrimSuffix(line, ":")
			if name == "" || strings.ContainsAny(name, " \t") {
				return nil, fmt.Errorf("asm: line %d: bad label %q", n, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate label %q", n, name)
			}
			labels[name] = len(code)
			continue
		}

		fields := strings.Fields(line)
		mn, ok := mnemonics[strings.ToUpper(fields[0])]
		if !ok {
			return nil, fmt.Errorf("asm: line %d: unknown mnemonic %q", n, fields[0])
		}
		code = append(code, mn.op)
		switch mn.imm {
		case immNone:
			if len(fields) != 1 {
				return nil, fmt.Errorf("asm: line %d: %s takes no operand", n, fields[0])
			}
		case immU64:
			if len(fields) != 2 {
				return nil, fmt.Errorf("asm: line %d: %s needs one operand", n, fields[0])
			}
			if strings.HasPrefix(fields[1], "@") {
				fixups = append(fixups, fixup{offset: len(code), label: fields[1][1:], line: n})
				code = append(code, make([]byte, 8)...)
				// Mark as 64-bit fixup by storing width in the patch list:
				// handled below by checking instruction width at offset-1.
			} else {
				v, err := parseImm(fields[1])
				if err != nil {
					return nil, fmt.Errorf("asm: line %d: %v", n, err)
				}
				code = binary.LittleEndian.AppendUint64(code, v)
			}
		case immU32:
			if len(fields) != 2 {
				return nil, fmt.Errorf("asm: line %d: %s needs one operand", n, fields[0])
			}
			if strings.HasPrefix(fields[1], "@") {
				fixups = append(fixups, fixup{offset: len(code), label: fields[1][1:], line: n})
				code = append(code, make([]byte, 4)...)
			} else {
				v, err := parseImm(fields[1])
				if err != nil {
					return nil, fmt.Errorf("asm: line %d: %v", n, err)
				}
				code = binary.LittleEndian.AppendUint32(code, uint32(v))
			}
		case immU8:
			if len(fields) != 2 {
				return nil, fmt.Errorf("asm: line %d: %s needs one operand", n, fields[0])
			}
			v, err := parseImm(fields[1])
			if err != nil {
				return nil, fmt.Errorf("asm: line %d: %v", n, err)
			}
			if v > 255 {
				return nil, fmt.Errorf("asm: line %d: operand %d out of byte range", n, v)
			}
			code = append(code, byte(v))
		}
	}

	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: line %d: undefined label %q", f.line, f.label)
		}
		// PUSH has an 8-byte slot, control flow a 4-byte slot.
		if code[f.offset-1] == 0x10 {
			binary.LittleEndian.PutUint64(code[f.offset:], uint64(target))
		} else {
			binary.LittleEndian.PutUint32(code[f.offset:], uint32(target))
		}
	}

	if len(funcs) == 0 {
		return nil, fmt.Errorf("asm: no .func declarations")
	}
	return &evm.Program{Code: code, Funcs: funcs}, nil
}

// MustAssemble is Assemble for package-level contract constants; it
// panics on error, which is a programming bug caught at init time by any
// test touching the contract suite.
func MustAssemble(src string) *evm.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseImm(s string) (uint64, error) {
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		if len(s) != 3 {
			return 0, fmt.Errorf("bad char immediate %q", s)
		}
		return uint64(s[1]), nil
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}
