package asm

import (
	"strings"
	"testing"
)

func TestForwardAndBackwardLabels(t *testing.T) {
	prog, err := Assemble(`
.func f
  JUMP @end        ; forward reference
back:
  STOP
end:
  JUMP @back       ; backward reference
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Code) == 0 {
		t.Fatal("no code")
	}
}

func TestFunctionOffsets(t *testing.T) {
	prog, err := Assemble(`
.func a
  STOP
.func b
  PUSH 1
  POP
  STOP
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Funcs["a"] != 0 {
		t.Fatalf("a at %d", prog.Funcs["a"])
	}
	if prog.Funcs["b"] != 1 { // after a's STOP byte
		t.Fatalf("b at %d", prog.Funcs["b"])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	if _, err := Assemble("; leading comment\n\n.func f\n  STOP ; trailing\n\n"); err != nil {
		t.Fatal(err)
	}
}

func TestImmediateWidthValidation(t *testing.T) {
	if _, err := Assemble(".func f\n DUP 300\n"); err == nil {
		t.Fatal("byte-operand overflow accepted")
	}
	if _, err := Assemble(".func f\n PUSH 18446744073709551615\n STOP\n"); err != nil {
		t.Fatalf("max u64 rejected: %v", err)
	}
	if _, err := Assemble(".func f\n PUSH zzz\n"); err == nil {
		t.Fatal("garbage immediate accepted")
	}
	if _, err := Assemble(".func f\n PUSH 'ab'\n"); err == nil {
		t.Fatal("multi-char immediate accepted")
	}
}

func TestMustAssemblePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustAssemble("BOGUS")
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble(".func f\n STOP\n FROB\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

func TestCaseInsensitiveMnemonics(t *testing.T) {
	if _, err := Assemble(".func f\n push 1\n pop\n stop\n"); err != nil {
		t.Fatalf("lowercase mnemonics rejected: %v", err)
	}
}
