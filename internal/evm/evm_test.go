package evm_test

import (
	"errors"
	"testing"

	"blockbench/internal/evm"
	"blockbench/internal/evm/asm"
	"blockbench/internal/kvstore"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

func newState(t *testing.T) *state.DB {
	t.Helper()
	b, err := state.NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	return state.NewDB(b)
}

func run(t *testing.T, src, method string, env *evm.Env) *evm.Result {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if env == nil {
		env = &evm.Env{}
	}
	if env.State == nil {
		env.State = newState(t)
	}
	if env.GasLimit == 0 {
		env.GasLimit = 1 << 30
	}
	return evm.Run(prog, method, env)
}

func TestArithmetic(t *testing.T) {
	src := `
.func main
  PUSH 7
  PUSH 5
  ADD        ; 12
  PUSH 3
  MUL        ; 36
  PUSH 10
  SUB        ; 26
  PUSH 4
  DIV        ; 6
  PUSH 0
  SWAP 1
  MSTORE     ; mem[0] = 6
  PUSH 0
  PUSH 8
  RETURN
`
	res := run(t, src, "main", nil)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := types.U64(reverse8(res.Output)); got != 6 {
		t.Fatalf("result = %d, want 6", got)
	}
}

// reverse8 converts the VM's little-endian memory word to big-endian for
// types.U64.
func reverse8(b []byte) []byte {
	out := make([]byte, len(b))
	for i := range b {
		out[i] = b[len(b)-1-i]
	}
	return out
}

func TestControlFlowLoop(t *testing.T) {
	// Sum 1..10 via a loop: i at mem[0], acc at mem[8].
	src := `
.func main
  PUSH 0
  PUSH 1
  MSTORE          ; i = 1
loop:
  PUSH 0
  MLOAD
  PUSH 10
  GT              ; i > 10 ?
  JUMPI @done
  PUSH 8
  MLOAD
  PUSH 0
  MLOAD
  ADD
  PUSH 8
  SWAP 1
  MSTORE          ; acc += i
  PUSH 0
  MLOAD
  PUSH 1
  ADD
  PUSH 0
  SWAP 1
  MSTORE          ; i++
  JUMP @loop
done:
  PUSH 8
  PUSH 8
  RETURN
`
	res := run(t, src, "main", nil)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := types.U64(reverse8(res.Output)); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestSubroutines(t *testing.T) {
	// double(x): x*2, called twice.
	src := `
.func main
  PUSH 5
  CALLSUB @double
  CALLSUB @double ; 20
  PUSH 0
  SWAP 1
  MSTORE
  PUSH 0
  PUSH 8
  RETURN
double:
  PUSH 2
  MUL
  RETSUB
`
	res := run(t, src, "main", nil)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := types.U64(reverse8(res.Output)); got != 20 {
		t.Fatalf("got %d, want 20", got)
	}
}

func TestStorageRoundTrip(t *testing.T) {
	src := `
.func put
  PUSH 0
  PUSH 0
  ARG            ; copy arg0 (key) to mem[0]; len on stack
  POP
  PUSH 100
  PUSH 1
  ARG            ; copy arg1 (value) to mem[100]
  PUSH 0
  PUSH 8         ; key at 0, len 8
  PUSH 100
  DUP 3          ; val len (still on stack from ARG)...
  POP
  POP
  POP
  STOP
`
	// The snippet above is awkward; use a simpler fixed-length variant.
	src = `
.func put
  PUSH 0
  PUSH 0
  ARG           ; key -> mem[0], push len
  POP
  PUSH 100
  PUSH 1
  ARG           ; val -> mem[100], push len
  PUSH 0
  PUSH 8
  PUSH 100
  PUSH 8
  SSTORE        ; wrong: operand order is key,val ranges
  STOP
`
	// SSTORE pops valLen, valOff, keyLen, keyOff; push order keyOff,
	// keyLen, valOff, valLen. The sequence above pushes extra junk.
	src = `
.func put
  PUSH 0
  PUSH 0
  ARG           ; arg 0 (key) -> mem[0]
  POP           ; drop len (keys are 8 bytes here)
  PUSH 1
  PUSH 100
  ARG           ; arg 1 (val) -> mem[100]
  POP
  PUSH 0        ; keyOff
  PUSH 8        ; keyLen
  PUSH 100      ; valOff
  PUSH 8        ; valLen
  SSTORE
  STOP

.func get
  PUSH 0
  PUSH 0
  ARG
  POP
  PUSH 0        ; keyOff
  PUSH 8        ; keyLen
  PUSH 100      ; dstOff
  SLOAD         ; pushes len, found
  JUMPI @found
  PUSH 0
  PUSH 0
  REVERT
found:
  PUSH 100
  SWAP 1
  RETURN
`
	db := newState(t)
	key := types.U64Bytes(0xdead)
	val := types.U64Bytes(0xbeef)
	res := run(t, src, "put", &evm.Env{State: db, Contract: "kv",
		Args: [][]byte{key, val}, GasLimit: 1 << 20})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	res = run(t, src, "get", &evm.Env{State: db, Contract: "kv",
		Args: [][]byte{key}, GasLimit: 1 << 20})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if types.U64(res.Output) != 0xbeef {
		t.Fatalf("get returned %x", res.Output)
	}
	// Missing key reverts.
	res = run(t, src, "get", &evm.Env{State: db, Contract: "kv",
		Args: [][]byte{types.U64Bytes(1)}, GasLimit: 1 << 20})
	if !errors.Is(res.Err, evm.ErrRevert) {
		t.Fatalf("missing key: err = %v, want revert", res.Err)
	}
}

func TestOutOfGas(t *testing.T) {
	src := `
.func spin
loop:
  JUMP @loop
`
	res := run(t, src, "spin", &evm.Env{GasLimit: 1000, State: newState(t)})
	if !errors.Is(res.Err, evm.ErrOutOfGas) {
		t.Fatalf("err = %v, want out of gas", res.Err)
	}
	if res.GasUsed != 1000 {
		t.Fatalf("gas used = %d, want all 1000", res.GasUsed)
	}
}

func TestMethodDispatch(t *testing.T) {
	src := `
.func a
  PUSH 0
  PUSH 1
  MSTORE1
  PUSH 0
  PUSH 1
  RETURN
.func b
  PUSH 0
  PUSH 2
  MSTORE1
  PUSH 0
  PUSH 1
  RETURN
`
	if out := run(t, src, "a", nil); out.Err != nil || out.Output[0] != 1 {
		t.Fatalf("a: %v %v", out.Output, out.Err)
	}
	if out := run(t, src, "b", nil); out.Err != nil || out.Output[0] != 2 {
		t.Fatalf("b: %v %v", out.Output, out.Err)
	}
	if out := run(t, src, "missing", nil); !errors.Is(out.Err, evm.ErrNoMethod) {
		t.Fatalf("missing method: %v", out.Err)
	}
}

func TestStackUnderflowTrap(t *testing.T) {
	res := run(t, ".func f\n ADD\n", "f", nil)
	if !errors.Is(res.Err, evm.ErrStackUnderflow) {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestDivByZeroTrap(t *testing.T) {
	res := run(t, ".func f\n PUSH 1\n PUSH 0\n DIV\n", "f", nil)
	if !errors.Is(res.Err, evm.ErrDivByZero) {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestMemoryCapTrap(t *testing.T) {
	src := `
.func f
  PUSH 1000000
  PUSH 1
  MSTORE1
  STOP
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res := evm.Run(prog, "f", &evm.Env{State: newState(t), GasLimit: 1 << 30,
		MemFactor: 100, MemCap: 10 << 20})
	if !errors.Is(res.Err, evm.ErrOutOfMemory) {
		t.Fatalf("err = %v, want out of memory", res.Err)
	}
	if res.PeakMem < 10<<20 {
		t.Fatalf("peak mem %d below cap", res.PeakMem)
	}
}

func TestTransferAndBalances(t *testing.T) {
	src := `
.func pay
  PUSH 0
  PUSH 0
  ARG            ; recipient address -> mem[0]
  POP
  PUSH 0         ; addrOff
  PUSH 25        ; amount
  TRANSFER
  SELFBAL
  PUSH 100
  SWAP 1
  MSTORE
  PUSH 100
  PUSH 8
  RETURN
`
	db := newState(t)
	contractAddr := types.BytesToAddress([]byte("contract"))
	db.SetBalance(contractAddr, 100)
	to := types.BytesToAddress([]byte("recipient"))
	res := run(t, src, "pay", &evm.Env{State: db, Contract: "c",
		ContractAddr: contractAddr, Args: [][]byte{to.Bytes()}, GasLimit: 1 << 20})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if db.GetBalance(to) != 25 || db.GetBalance(contractAddr) != 75 {
		t.Fatalf("balances: to=%d self=%d", db.GetBalance(to), db.GetBalance(contractAddr))
	}
	if got := types.U64(reverse8(res.Output)); got != 75 {
		t.Fatalf("SELFBAL returned %d", got)
	}
}

func TestGasAccountingStorageDominates(t *testing.T) {
	srcCompute := `
.func f
  PUSH 1
  PUSH 2
  ADD
  POP
  STOP
`
	srcStore := `
.func f
  PUSH 0
  PUSH 8
  PUSH 8
  PUSH 8
  SSTORE
  STOP
`
	rc := run(t, srcCompute, "f", nil)
	rs := run(t, srcStore, "f", nil)
	if rc.Err != nil || rs.Err != nil {
		t.Fatal(rc.Err, rs.Err)
	}
	if rs.GasUsed <= rc.GasUsed*10 {
		t.Fatalf("storage gas (%d) should dominate compute gas (%d)", rs.GasUsed, rc.GasUsed)
	}
}

func TestProgramEncodeDecode(t *testing.T) {
	prog, err := asm.Assemble(".func x\n STOP\n.func y\n STOP\n")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := evm.DecodeProgram(prog.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Funcs) != 2 || dec.Funcs["y"] != prog.Funcs["y"] {
		t.Fatalf("round trip lost functions: %+v", dec.Funcs)
	}
	if len(dec.Methods()) != 2 {
		t.Fatal("methods list wrong")
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": ".func f\n FROB\n",
		"undefined label":  ".func f\n JUMP @nowhere\n",
		"duplicate func":   ".func f\n STOP\n.func f\n STOP\n",
		"duplicate label":  ".func f\nx:\nx:\n STOP\n",
		"no functions":     "label:\n STOP\n",
		"missing operand":  ".func f\n PUSH\n",
		"extra operand":    ".func f\n POP 3\n",
	}
	for name, src := range cases {
		if _, err := asm.Assemble(src); err == nil {
			t.Errorf("%s: assembled without error", name)
		}
	}
}

func TestAssemblerImmediateForms(t *testing.T) {
	src := `
.func f
  PUSH 0x10     ; hex
  PUSH 'A'      ; char
  ADD           ; 16 + 65 = 81
  PUSH 0
  SWAP 1
  MSTORE
  PUSH 0
  PUSH 8
  RETURN
`
	res := run(t, src, "f", nil)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := types.U64(reverse8(res.Output)); got != 81 {
		t.Fatalf("got %d, want 81", got)
	}
}

func TestPushLabelImmediate(t *testing.T) {
	// PUSH @label loads a code offset as data (e.g. for jump tables).
	src := `
.func f
target:
  PUSH @target
  PUSH 0
  SWAP 1
  MSTORE
  PUSH 0
  PUSH 8
  RETURN
`
	res := run(t, src, "f", nil)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := types.U64(reverse8(res.Output)); got != 0 {
		t.Fatalf("label offset = %d, want 0", got)
	}
}
