package platform

import (
	"time"

	"blockbench/internal/bmt"
	"blockbench/internal/consensus"
	"blockbench/internal/consensus/pbft"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/metrics"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

// Hyperledger is the Hyperledger Fabric v0.6.0-preview preset: PBFT
// consensus over transaction batches, Bucket-Merkle tree state, native
// chaincode execution, signature verification on ingress.
const Hyperledger Kind = "hyperledger"

func hyperledgerPreset() *Preset {
	return &Preset{
		Kind:     Hyperledger,
		Describe: "Fabric v0.6.0-preview: PBFT, Bucket-Merkle tree, native chaincode",
		// Fabric validates transactions as they arrive; the work lands on
		// the node's message-processing thread.
		VerifyIngress: true,
		// Progress requires a live quorum, so blocks are final on commit:
		// the protocol never forks.
		SupportsForks: false,
		// The analytics index is Hyperledger's only -popt: its storage
		// and execution engines are fixed, but the read-side index is
		// platform-neutral.
		OptionKeys: append([]string{}, analyticsOptionKeys...),
		Fill: func(cfg *Config) error {
			if cfg.BatchSize == 0 {
				cfg.BatchSize = 20
			}
			if cfg.BatchTimeout <= 0 {
				cfg.BatchTimeout = 15 * time.Millisecond
			}
			if cfg.ViewTimeout <= 0 {
				cfg.ViewTimeout = 400 * time.Millisecond
			}
			return fillAnalyticsOption(cfg)
		},
		NewEngine: func(cfg *Config, _ exec.MemModel) (exec.Engine, error) {
			return exec.NewNativeEngine(cfg.Contracts...)
		},
		NewStateFactory: func(cfg *Config, store kvstore.Store) (StateFactory, []metrics.CounterProvider, error) {
			// Bucket tree keeps no versions: one long-lived DB per node.
			b, err := state.NewBucketBackend(store, bmt.Options{})
			if err != nil {
				return nil, nil, err
			}
			db := state.NewDB(b)
			return func(types.Hash) (*state.DB, error) { return db, nil }, nil, nil
		},
		NewConsensus: func(cfg *Config, _ *Env) func(consensus.Context) consensus.Engine {
			return func(ctx consensus.Context) consensus.Engine {
				opts := pbft.DefaultOptions()
				opts.BatchSize = cfg.BatchSize
				opts.BatchTimeout = cfg.BatchTimeout
				opts.ViewTimeout = cfg.ViewTimeout
				return pbft.New(ctx, opts)
			}
		},
	}
}
