package platform

import (
	"strings"
	"testing"
	"time"

	"blockbench/internal/types"
)

// TestExecWorkersPoptValidation: the workers knob must reject zero,
// negative and non-integer requests through the Fill error path — a
// pool of no workers can execute nothing, and silently falling back to
// serial would make the knob lie. Hyperledger does not expose the knob
// at all (its Fabric v0.6 pipeline is strictly serial), so there the
// key is an unknown option — its only known key is the shared
// analytics-index toggle.
func TestExecWorkersPoptValidation(t *testing.T) {
	bad := []struct {
		kind Kind
		opts map[string]string
		want string
	}{
		{Quorum, map[string]string{"workers": "0"}, "workers"},
		{Quorum, map[string]string{"workers": "-2"}, "workers"},
		{Quorum, map[string]string{"workers": "many"}, "workers"},
		{Ethereum, map[string]string{"workers": "0"}, "workers"},
		{Parity, map[string]string{"workers": "-1"}, "workers"},
		{Sharded, map[string]string{"workers": "0"}, "workers"},
		{Hyperledger, map[string]string{"workers": "4"}, "unknown option"},
	}
	for _, tc := range bad {
		cfg := fastConfig(tc.kind, 4, clientKeys(1))
		cfg.Options = tc.opts
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s %v: error %v, want mention of %q", tc.kind, tc.opts, err, tc.want)
		}
	}

	// Programmatic negatives take the same exit.
	cfg := fastConfig(Quorum, 3, clientKeys(1))
	cfg.ExecWorkers = -4
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "ExecWorkers") {
		t.Errorf("ExecWorkers=-4: error %v, want rejection", err)
	}
}

// TestExecWorkersCountersFlow boots a quorum cluster with -popt
// workers=4, commits a transaction, and checks the exec.parallel.*
// counter family reaches the cluster's generic counter aggregation with
// the configured pool size visible (summed across nodes).
func TestExecWorkersCountersFlow(t *testing.T) {
	keys := clientKeys(1)
	cfg := fastConfig(Quorum, 3, keys)
	cfg.Options = map[string]string{"workers": "4"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop(); c.Close() })
	c.Start()

	ids := []types.Hash{submitYCSB(t, c, keys[0], true, 0)}
	waitCommitted(t, c, ids, 30*time.Second)

	got := c.Counters()
	for _, k := range []string{"exec.parallel.txs", "exec.parallel.conflicts",
		"exec.parallel.reexecs", "exec.parallel.workers"} {
		if _, ok := got[k]; !ok {
			t.Fatalf("%s missing from cluster counters: %v", k, got)
		}
	}
	if got["exec.parallel.workers"] != uint64(4*c.Size()) {
		t.Fatalf("exec.parallel.workers = %d, want 4 × %d nodes", got["exec.parallel.workers"], c.Size())
	}
	if got["exec.parallel.txs"] == 0 {
		t.Fatal("committed transaction never went through the parallel executor")
	}
}
