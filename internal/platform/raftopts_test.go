package platform

import (
	"strings"
	"testing"
	"time"

	"blockbench/internal/types"
)

// TestRaftPoptValidation exercises the generic-option seam for the
// Raft-backed presets: nonsense values must fail New loudly instead of
// silently running the defaults.
func TestRaftPoptValidation(t *testing.T) {
	bad := []struct {
		kind Kind
		opts map[string]string
		want string
	}{
		{Quorum, map[string]string{"heartbeat": "fast"}, "heartbeat"},
		{Quorum, map[string]string{"heartbeat": "-5ms"}, "heartbeat"},
		{Quorum, map[string]string{"batch": "0"}, "batch"},
		{Quorum, map[string]string{"maxappend": "x"}, "maxappend"},
		{Quorum, map[string]string{"window": "-3"}, "window"},
		{Quorum, map[string]string{"retain": "-1"}, "retain"},
		{Quorum, map[string]string{"heartbeat": "500ms"}, "election timeout"}, // >= election timeout
		{Sharded, map[string]string{"shards": "zero"}, "shards"},
		{Sharded, map[string]string{"partitioner": "round-robin"}, "partitioner"},
		{Sharded, map[string]string{"bounds": "a,b"}, "partitioner=range"},
		{Sharded, map[string]string{"partitioner": "range", "bounds": "a,,c"}, "empty"},
		{Sharded, map[string]string{"partitioner": "range", "bounds": "a,b,a"}, "duplicate"},
		{Sharded, map[string]string{"shards": "2", "partitioner": "range", "bounds": "a,b,c"}, "shards=2"},
	}
	for _, tc := range bad {
		cfg := fastConfig(tc.kind, 4, clientKeys(1))
		cfg.Options = tc.opts
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s %v: error %v, want mention of %q", tc.kind, tc.opts, err, tc.want)
		}
	}

	// A full set of sane values boots.
	cfg := fastConfig(Quorum, 3, clientKeys(1))
	cfg.Options = map[string]string{
		"heartbeat": "10ms", "batch": "8", "maxappend": "16", "window": "32", "retain": "64",
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("valid raft -popt set rejected: %v", err)
	}
	c.Close()
	// retain=0 is the explicit compaction-off switch.
	cfg = fastConfig(Quorum, 3, clientKeys(1))
	cfg.Options = map[string]string{"retain": "0"}
	if c, err = New(cfg); err != nil {
		t.Fatalf("retain=0 rejected: %v", err)
	}
	c.Close()
}

// TestQuorumLeaseCountersFlow checks the read-lease counters reach the
// cluster's generic counter aggregation: polling every node's read path
// classifies leader reads as lease reads and follower reads as
// redirects.
func TestQuorumLeaseCountersFlow(t *testing.T) {
	keys := clientKeys(2)
	c, err := New(fastConfig(Quorum, 3, keys))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop(); c.Close() })
	c.Start()

	ids := []types.Hash{submitYCSB(t, c, keys[0], true, 0)}
	waitCommitted(t, c, ids, 30*time.Second)

	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < c.Size(); i++ {
			if _, err := c.Node(i).BlocksFrom(0); err != nil {
				t.Fatal(err)
			}
		}
		got := c.Counters()
		if _, ok := got["raft.lease_reads"]; !ok {
			t.Fatal("raft.lease_reads missing from cluster counters")
		}
		if _, ok := got["raft.read_redirects"]; !ok {
			t.Fatal("raft.read_redirects missing from cluster counters")
		}
		if got["raft.lease_reads"] > 0 && got["raft.read_redirects"] > 0 {
			return // leader served under lease, followers redirected
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease counters never both moved: %v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedRangePartitionerBoots proves the -popt partitioner=range
// seam end to end: explicit split points place the test keys on both
// shards and routed transactions still commit everywhere they should.
func TestShardedRangePartitionerBoots(t *testing.T) {
	keys := clientKeys(4)
	cfg := fastConfig(Sharded, 4, keys)
	// submitYCSB keys look like "key-N": split at "key-2" → 2 ranges.
	cfg.Options = map[string]string{"partitioner": "range", "bounds": "key-2"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop(); c.Close() })
	c.Start()

	const txs = 20
	ids := make([]types.Hash, txs)
	gateways := make([]int, txs)
	for i := 0; i < txs; i++ {
		ids[i] = submitYCSB(t, c, keys[i%len(keys)], true, i)
		gateways[i] = i % c.Size()
	}
	waitReceipts(t, c, ids, gateways, 30*time.Second)

	// Both ranges saw traffic: the per-shard counter prefixes from both
	// groups must have applied batches.
	got := c.Counters()
	if got["shard0.raft.batches"] == 0 || got["shard1.raft.batches"] == 0 {
		t.Fatalf("range placement left a shard idle: %v", got)
	}
}
