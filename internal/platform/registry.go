package platform

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"blockbench/internal/consensus"
	"blockbench/internal/contracts"
	"blockbench/internal/crypto"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/metrics"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

// StateFactory opens a state database at the given root (one factory per
// node; platforms without state versioning may return a singleton).
type StateFactory func(root types.Hash) (*state.DB, error)

// Env carries the cluster-level identity material presets may need when
// assembling a node: the deterministic node identities (PoA authorities,
// Raft/PBFT replica set), the account keyring for server-side signing,
// and the keys of every authenticated participant.
type Env struct {
	// Authorities are the node identities in node-index order.
	Authorities []types.Address
	// Keyring maps client accounts to their keys (server-side signing).
	Keyring map[types.Address]*crypto.Key
	// Keys holds every participant (clients then nodes). Registries are
	// built per node from this list: crypto.Registry caches verification
	// per transaction, and each node must pay the signature-check cost
	// itself, as in the real systems.
	Keys []*crypto.Key
}

// newRegistry builds one node's signature registry over all
// participants.
func (env *Env) newRegistry() *crypto.Registry {
	reg := crypto.NewRegistry()
	for _, k := range env.Keys {
		reg.Add(k)
	}
	return reg
}

// Preset describes how one platform kind is assembled from the substrate
// packages: which state store and state organization it uses, which
// execution engine and per-element memory cost model, which consensus
// protocol, and how its nodes ingest transactions. Register a Preset to
// plug a new platform into the framework — the driver, workloads,
// experiments and CLI pick it up through platform.Kinds.
type Preset struct {
	// Kind is the registry key (the CLI's -platform value).
	Kind Kind
	// Describe is a one-line summary shown in CLI usage listings.
	Describe string

	// ServerSigns moves transaction signing into the server's serial
	// ingestion path (Parity); clients submit unsigned transactions.
	ServerSigns bool
	// VerifyIngress makes nodes verify transaction signatures as they
	// arrive on the dispatch thread (Fabric).
	VerifyIngress bool
	// SupportsForks enables side chains and reorgs in the ledger (PoW,
	// PoA). Agreement-based platforms (PBFT, Raft) never fork.
	SupportsForks bool
	// DurableRecovery makes a killed node restart from its persisted
	// store: committed blocks are journaled on the ledger commit path
	// and replayed into a fresh chain on Cluster.Recover, and the
	// consensus engine gets a MetaStore for its hard state (Raft
	// term/vote/applied). Presets without it restart empty and rejoin
	// through the chain-sync protocol alone.
	DurableRecovery bool

	// OptionKeys names the generic Config.Options (-popt key=val) keys
	// this preset's Fill hook consumes; New rejects options outside the
	// list, so a misspelled -popt fails loudly instead of silently
	// running the default configuration.
	OptionKeys []string

	// Fill applies the preset's default tuning to zero Config fields and
	// folds the generic Config.Options values into their typed fields,
	// erroring on values that fail validation (a -popt heartbeat=bogus
	// must fail loudly, not run the default).
	Fill func(cfg *Config) error
	// MemModel returns the simulated execution-memory cost model (zero
	// value disables memory accounting). Optional.
	MemModel func(cfg *Config) exec.MemModel
	// OpenStore opens node i's storage engine. Optional: the default is
	// an in-memory map, or the LSM engine when cfg.DataDir is set.
	OpenStore func(cfg *Config, i int) (kvstore.Store, error)
	// NewEngine builds a node's execution engine.
	NewEngine func(cfg *Config, mem exec.MemModel) (exec.Engine, error)
	// NewStateFactory builds the per-node state-database factory over the
	// node's store, plus any per-node counter sources the state layer
	// owns (the flat snapshot layer's hit/miss counters); providers flow
	// into Cluster.Counters alongside the consensus and execution
	// engines.
	NewStateFactory func(cfg *Config, store kvstore.Store) (StateFactory, []metrics.CounterProvider, error)
	// GasLimit is the ledger's block gas limit (0 = unbounded). Optional.
	GasLimit func(cfg *Config) uint64
	// ConfirmationDepth hides the newest blocks from pollers until buried
	// this deep. Optional (default 0: immediate confirmation).
	ConfirmationDepth func(cfg *Config) uint64
	// NewConsensus builds the factory producing one node's consensus
	// engine; env carries the cluster identity material.
	NewConsensus func(cfg *Config, env *Env) func(consensus.Context) consensus.Engine
}

var (
	regMu   sync.RWMutex
	presets = make(map[Kind]*Preset)
)

// Register plugs a platform preset into the framework. It errors on a
// duplicate or empty kind and on missing mandatory hooks.
func Register(p *Preset) error {
	if p == nil || p.Kind == "" {
		return fmt.Errorf("platform: Register: empty kind")
	}
	if p.NewEngine == nil || p.NewStateFactory == nil || p.NewConsensus == nil {
		return fmt.Errorf("platform: Register(%q): NewEngine, NewStateFactory and NewConsensus are mandatory", p.Kind)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := presets[p.Kind]; dup {
		return fmt.Errorf("platform: Register(%q): already registered", p.Kind)
	}
	presets[p.Kind] = p
	return nil
}

// MustRegister is Register for package init blocks: it panics on error.
func MustRegister(p *Preset) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Lookup returns the preset registered for a kind.
func Lookup(kind Kind) (*Preset, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := presets[kind]
	if !ok {
		known := make([]string, 0, len(presets))
		for k := range presets {
			known = append(known, string(k))
		}
		sort.Strings(known)
		return nil, fmt.Errorf("platform: unknown kind %q (registered: %v)", kind, known)
	}
	return p, nil
}

// Kinds lists registered presets in sorted (name) order — deterministic
// regardless of init order, so CLI listings, experiment columns and
// registry tests never depend on registration sequencing.
func Kinds() []Kind {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Kind, 0, len(presets))
	for k := range presets {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Describe returns the one-line summary of a registered kind ("" if
// unknown).
func Describe(kind Kind) string {
	regMu.RLock()
	defer regMu.RUnlock()
	if p, ok := presets[kind]; ok {
		return p.Describe
	}
	return ""
}

// checkOptions rejects generic platform options the preset does not
// consume (a misspelled or misdirected -popt).
func (p *Preset) checkOptions(opts map[string]string) error {
	var unknown []string
	for k := range opts {
		known := false
		for _, ok := range p.OptionKeys {
			if k == ok {
				known = true
				break
			}
		}
		if !known {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	if len(p.OptionKeys) == 0 {
		return fmt.Errorf("platform: %s takes no -popt options (got %v)", p.Kind, unknown)
	}
	return fmt.Errorf("platform: %s: unknown option(s) %v (known: %v)", p.Kind, unknown, p.OptionKeys)
}

// defaultOpenStore is the shared storage policy: in-memory maps, or the
// LSM engine (one directory per node) when DataDir is set — either
// directly (IOHeavy disk-usage runs) or through -popt store=lsm /
// storedir= (fillStoreOptions, which provisions an ephemeral DataDir
// when none was given). -popt store=mem forces the in-memory map even
// with a DataDir.
func defaultOpenStore(cfg *Config, i int) (kvstore.Store, error) {
	if cfg.StoreBackend == "mem" || cfg.DataDir == "" {
		return kvstore.NewMem(), nil
	}
	return kvstore.OpenLSM(filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", i)), kvstore.LSMOptions{})
}

// evmContracts filters cfg.Contracts down to those with an EVM build:
// chaincode-only contracts (VersionKVStore) have no EVM deployment, so
// EVM platforms run only what they can, as in the paper.
func evmContracts(cfg *Config) ([]string, error) {
	var names []string
	for _, name := range cfg.Contracts {
		spec, err := contracts.Lookup(name)
		if err != nil {
			return nil, err
		}
		if spec.EVM != nil {
			names = append(names, name)
		}
	}
	return names, nil
}
