package platform

import (
	"fmt"
	"testing"
	"time"

	"blockbench/internal/crypto"
	"blockbench/internal/schedule"
	"blockbench/internal/types"
)

func clientKeys(n int) []*crypto.Key {
	keys := make([]*crypto.Key, n)
	for i := range keys {
		keys[i] = crypto.DeterministicKey(uint64(5000 + i))
	}
	return keys
}

// fastConfig shrinks timings so integration tests stay quick.
func fastConfig(kind Kind, nodes int, keys []*crypto.Key) Config {
	return Config{
		Kind:              kind,
		Nodes:             nodes,
		Contracts:         []string{"ycsb", "donothing"},
		ClientKeys:        keys,
		GenesisBalance:    1_000_000,
		BlockInterval:     40 * time.Millisecond,
		StepDuration:      20 * time.Millisecond,
		IngestCost:        time.Millisecond,
		BatchTimeout:      5 * time.Millisecond,
		ViewTimeout:       200 * time.Millisecond,
		ElectionTimeout:   80 * time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
		RPCLatency:        time.Microsecond,
	}
}

func submitYCSB(t *testing.T, c *Cluster, key *crypto.Key, sign bool, i int) types.Hash {
	t.Helper()
	tx := &types.Transaction{
		Nonce:    uint64(i),
		From:     key.Address(),
		Contract: "ycsb",
		Method:   "write",
		Args:     [][]byte{[]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i))},
		GasLimit: 100_000,
	}
	if sign {
		if err := crypto.SignTx(tx, key); err != nil {
			t.Fatal(err)
		}
	}
	server := c.Node(i % c.Size())
	id, err := server.SendTransaction(tx)
	if err != nil {
		t.Fatalf("send tx %d: %v", i, err)
	}
	return id
}

// waitCommitted polls until all tx ids are committed on node 0 or times
// out.
func waitCommitted(t *testing.T, c *Cluster, ids []types.Hash, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	remaining := make(map[types.Hash]bool, len(ids))
	for _, id := range ids {
		remaining[id] = true
	}
	var h uint64
	for time.Now().Before(deadline) {
		blocks, err := c.Node(0).BlocksFrom(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			for _, id := range b.TxIDs {
				delete(remaining, id)
			}
			if b.Number > h {
				h = b.Number
			}
		}
		if len(remaining) == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%d of %d transactions never committed (pool=%d, height=%d)",
		len(remaining), len(ids), c.Node(0).Pool().Len(), c.Chain(0).Height())
}

func runCommitTest(t *testing.T, kind Kind, nodes, txs int) *Cluster {
	t.Helper()
	keys := clientKeys(4)
	c, err := New(fastConfig(kind, nodes, keys))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop(); c.Close() })
	c.Start()

	ids := make([]types.Hash, txs)
	for i := 0; i < txs; i++ {
		// Parity signs server-side; other platforms need client signing.
		ids[i] = submitYCSB(t, c, keys[i%len(keys)], kind != Parity, i)
	}
	waitCommitted(t, c, ids, 30*time.Second)
	return c
}

func TestEthereumClusterCommits(t *testing.T) {
	c := runCommitTest(t, Ethereum, 4, 40)
	// All nodes converge on the same state for a sample key.
	time.Sleep(300 * time.Millisecond)
	want, err := c.Node(0).Query("ycsb", "read", [][]byte{[]byte("key-3")})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if string(want) != "val-3" {
		t.Fatalf("state = %q", want)
	}
}

func TestParityClusterCommits(t *testing.T) {
	runCommitTest(t, Parity, 4, 30)
}

func TestHyperledgerClusterCommits(t *testing.T) {
	c := runCommitTest(t, Hyperledger, 4, 60)
	// PBFT never forks: every node's known blocks equal its height.
	for i := 0; i < c.Size(); i++ {
		if c.Chain(i).KnownBlocks() != c.Chain(i).Height() {
			t.Fatalf("node %d: forked PBFT chain", i)
		}
	}
}

func TestHyperledgerViewChangeOnPrimaryCrash(t *testing.T) {
	keys := clientKeys(2)
	c, err := New(fastConfig(Hyperledger, 4, keys))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Stop(); c.Close() }()
	c.Start()

	// Commit something under the initial primary (node 0).
	var ids []types.Hash
	for i := 0; i < 5; i++ {
		ids = append(ids, submitYCSB(t, c, keys[0], true, i))
	}
	waitCommitted(t, c, ids, 20*time.Second)

	// Kill the primary; the remaining 3 of 4 still have a quorum and
	// must elect a new primary and keep committing.
	c.Crash(0)
	ids = nil
	for i := 100; i < 105; i++ {
		tx := &types.Transaction{
			Nonce: uint64(i), Contract: "ycsb", Method: "write",
			Args:     [][]byte{[]byte(fmt.Sprintf("k%d", i)), []byte("v")},
			GasLimit: 100_000,
		}
		if err := crypto.SignTx(tx, keys[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Node(1).SendTransaction(tx); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, tx.Hash())
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if r, ok := c.Chain(1).Receipt(ids[len(ids)-1]); ok && r.OK {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("no progress after primary crash (height=%d)", c.Chain(1).Height())
}

func TestHyperledgerStallsWithoutQuorum(t *testing.T) {
	keys := clientKeys(1)
	c, err := New(fastConfig(Hyperledger, 4, keys))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Stop(); c.Close() }()
	c.Start()
	// Crash 2 of 4 (f=1): no quorum, no progress — the Fig 9 stall.
	c.Crash(2)
	c.Crash(3)
	submitYCSB(t, c, keys[0], true, 1)
	time.Sleep(800 * time.Millisecond)
	if h := c.Chain(0).Height(); h != 0 {
		t.Fatalf("chain advanced to %d without quorum", h)
	}
}

func TestEthereumPartitionForksAndHeals(t *testing.T) {
	keys := clientKeys(2)
	cfg := fastConfig(Ethereum, 4, keys)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Stop(); c.Close() }()
	c.Start()

	// The partition attack as a declarative timeline, keyed off observed
	// chain growth instead of fixed sleeps: PoW mining speed varies with
	// the host, so a timed window can close before a slow half has mined
	// anything (the old flake — both fork tests saw zero stale blocks on
	// slow machines). Partition once a common prefix reaches every node;
	// heal once both halves have demonstrably mined two blocks past the
	// fork point, which guarantees at least two blocks end up stale
	// whichever side wins.
	stop := make(chan struct{})
	timeout := time.AfterFunc(60*time.Second, func() { close(stop) })
	defer timeout.Stop()
	recs := schedule.Run(c, time.Now(), []schedule.Event{
		{When: schedule.HeightAtLeast(1), Act: schedule.Partition(2)},
		{When: schedule.GrowthAtLeast(2, 0, 2), Act: schedule.Heal()},
	}, 10*time.Millisecond, stop, nil)
	if len(recs) != 2 {
		for i := 0; i < c.Size(); i++ {
			t.Logf("node %d height=%d", i, c.Chain(i).Height())
		}
		t.Fatalf("event timeline timed out after %d of 2 events", len(recs))
	}

	// Healing does not proactively re-gossip: the minority adopts the
	// winning branch when the next mined block arrives with an unknown
	// parent and triggers catch-up sync. Poll until all nodes agree on a
	// block buried past the heal-time tip (mining keeps the very tip
	// racing).
	forkBase := uint64(0)
	for i := 0; i < c.Size(); i++ {
		if h := c.Chain(i).Height(); h > forkBase {
			forkBase = h
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		minH := c.Chain(0).Height()
		for i := 1; i < c.Size(); i++ {
			if h := c.Chain(i).Height(); h < minH {
				minH = h
			}
		}
		converged := minH > forkBase+3
		if converged {
			ref, _ := c.Chain(0).GetBlock(minH - 3)
			for i := 1; i < c.Size(); i++ {
				b, ok := c.Chain(i).GetBlock(minH - 3)
				if !ok || b.Hash() != ref.Hash() {
					converged = false
					break
				}
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes never converged after heal (min height %d)", minH)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The losing branch's blocks stay known on the nodes that mined them:
	// the union across nodes must exceed the main chain.
	total, main := c.ForkStats()
	if total <= main {
		t.Fatalf("expected stale blocks after partition: total=%d main=%d", total, main)
	}
}

func TestParityConstantRateAndRateLimit(t *testing.T) {
	keys := clientKeys(1)
	cfg := fastConfig(Parity, 4, keys)
	cfg.IngestCost = 5 * time.Millisecond // ~200 tx/s cap
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Stop(); c.Close() }()
	c.Start()

	// Flood one server beyond its ingestion rate: ErrBusy appears once
	// the queue fills, showing the server-side cap.
	busy := 0
	for i := 0; i < 2000; i++ {
		tx := &types.Transaction{Nonce: uint64(i), From: keys[0].Address(),
			Contract: "ycsb", Method: "write",
			Args:     [][]byte{[]byte("k"), []byte("v")},
			GasLimit: 100_000}
		if _, err := c.Node(0).SendTransaction(tx); err != nil {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("parity server accepted an unbounded backlog")
	}
}

func TestPreloadSeedsAllNodes(t *testing.T) {
	keys := clientKeys(2)
	c, err := New(fastConfig(Ethereum, 3, keys))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Stop(); c.Close() }()
	// Preload before starting consensus.
	var batches [][]*types.Transaction
	for i := 0; i < 10; i++ {
		tx := &types.Transaction{Nonce: uint64(i), To: keys[1].Address(),
			Value: 10, GasLimit: 100_000}
		if err := crypto.SignTx(tx, keys[0]); err != nil {
			t.Fatal(err)
		}
		batches = append(batches, []*types.Transaction{tx})
	}
	if err := c.Preload(batches); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Size(); i++ {
		if c.Chain(i).Height() != 10 {
			t.Fatalf("node %d height = %d", i, c.Chain(i).Height())
		}
	}
	// Historical balance query: after block 5, 5 transfers of 10.
	bal, err := c.Node(0).BalanceAt(keys[1].Address(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if bal != 1_000_000+50 {
		t.Fatalf("balance at block 5 = %d", bal)
	}
}
