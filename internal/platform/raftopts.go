package platform

import (
	"fmt"
	"strconv"
	"time"

	"blockbench/internal/consensus/raft"
)

// raftOptionKeys are the generic -popt keys the Raft-backed presets
// (quorum, sharded) expose for the consensus engine's tuning knobs.
var raftOptionKeys = []string{"heartbeat", "batch", "maxappend", "window", "retain"}

// poptPositiveInt parses one positive-integer -popt value; ok reports
// whether the key was present at all.
func poptPositiveInt(cfg *Config, key string) (n int, ok bool, err error) {
	v, ok := cfg.Options[key]
	if !ok {
		return 0, false, nil
	}
	n, err = strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, true, fmt.Errorf("platform: %s: -popt %s=%q: want a positive integer", cfg.Kind, key, v)
	}
	return n, true, nil
}

// fillRaftConfig folds the generic -popt raft keys into their typed
// Config fields (validating values), then applies the Raft-backed
// presets' shared defaults. An explicit `retain=0` disables compaction
// (stored as the -1 sentinel, since 0 means "preset default").
func fillRaftConfig(cfg *Config) error {
	if v, ok := cfg.Options["heartbeat"]; ok {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return fmt.Errorf("platform: %s: -popt heartbeat=%q: want a positive duration (e.g. 10ms)", cfg.Kind, v)
		}
		cfg.HeartbeatInterval = d
	}
	if n, ok, err := poptPositiveInt(cfg, "batch"); err != nil {
		return err
	} else if ok {
		cfg.BatchSize = n
	}
	if n, ok, err := poptPositiveInt(cfg, "maxappend"); err != nil {
		return err
	} else if ok {
		cfg.RaftMaxAppend = n
	}
	if n, ok, err := poptPositiveInt(cfg, "window"); err != nil {
		return err
	} else if ok {
		cfg.RaftWindow = n
	}
	if v, ok := cfg.Options["retain"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("platform: %s: -popt retain=%q: want a non-negative integer (0 disables compaction)", cfg.Kind, v)
		}
		if n == 0 {
			cfg.RaftRetain = -1
		} else {
			cfg.RaftRetain = n
		}
	}

	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 20
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = 10 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 300 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 20 * time.Millisecond
	}
	if cfg.HeartbeatInterval >= cfg.ElectionTimeout {
		return fmt.Errorf("platform: %s: heartbeat %v must stay well below the election timeout %v",
			cfg.Kind, cfg.HeartbeatInterval, cfg.ElectionTimeout)
	}
	return nil
}

// raftOptions assembles the consensus engine's Options from a filled
// Config.
func raftOptions(cfg *Config) raft.Options {
	opts := raft.DefaultOptions()
	opts.ElectionTimeout = cfg.ElectionTimeout
	opts.Heartbeat = cfg.HeartbeatInterval
	opts.BatchSize = cfg.BatchSize
	opts.BatchTimeout = cfg.BatchTimeout
	if cfg.RaftWindow > 0 {
		opts.Window = cfg.RaftWindow
	}
	if cfg.RaftMaxAppend > 0 {
		opts.MaxAppend = cfg.RaftMaxAppend
	}
	if cfg.RaftLeaseFactor > 0 {
		opts.LeaseFactor = cfg.RaftLeaseFactor
	}
	switch {
	case cfg.RaftRetain < 0:
		opts.Retain = 0 // explicitly disabled
	case cfg.RaftRetain > 0:
		opts.Retain = cfg.RaftRetain
	}
	opts.Seed = cfg.Net.Seed
	return opts
}
