package platform

import "fmt"

// analyticsOptionKeys is the generic -popt key every preset takes for
// the ledger analytics indexer: index=on|off (default on). The index
// is read-side only — it never affects consensus or state — so unlike
// the storage and execution options it is uniformly available,
// including on hyperledger.
var analyticsOptionKeys = []string{"index"}

// fillAnalyticsOption folds -popt index= into Config.AnalyticsIndex.
func fillAnalyticsOption(cfg *Config) error {
	if v, ok := cfg.Options["index"]; ok {
		cfg.AnalyticsIndex = v
	}
	switch cfg.AnalyticsIndex {
	case "", "on", "off":
		return nil
	default:
		return fmt.Errorf("platform: %s: -popt index=%q: want on or off", cfg.Kind, cfg.AnalyticsIndex)
	}
}
