package platform

import (
	"fmt"
	"strings"

	"blockbench/internal/consensus"
	"blockbench/internal/sharding"
)

// Sharded is the partitioned-execution preset: the database scaling
// technique the paper's conclusion singles out as absent from private
// blockchains. State is partitioned over S shard groups; each group is
// an independent Raft-ordered pipeline (its own leader, batching,
// ledger and pool) reusing the Quorum stack, so single-shard
// transactions commit without touching any other group. Transactions
// whose keys span shards run two-phase commit across the touched
// groups' leaders (prepare/lock, unanimous commit, abort-retry with
// backoff) — the cross-partition path whose cost the shard-scaling
// benchmark measures against the fast path.
//
// Placement defaults to hash partitioning; -popt partitioner=range
// switches to range placement (scan-friendly co-location, hotspot
// sensitive), with explicit split points via -popt bounds=k1,k2 or an
// even leading-byte split when none are given. The per-group Raft
// engines take the same -popt knobs as the quorum preset.
const Sharded Kind = "sharded"

func shardedPreset() *Preset {
	return &Preset{
		Kind:     Sharded,
		Describe: "sharded execution: partitioned state, per-shard Raft groups, cross-shard 2PC",
		// Per-shard Raft never forks, but the trie keeps historical
		// roots for versioned-state queries, as on Quorum.
		SupportsForks:   true,
		DurableRecovery: true,
		OptionKeys: append(append(append(append([]string{"shards", "partitioner", "bounds"},
			raftOptionKeys...), storeOptionKeys...), execOptionKeys...), analyticsOptionKeys...),
		Fill: func(cfg *Config) error {
			if err := fillRaftConfig(cfg); err != nil {
				return err
			}
			if err := fillStoreOptions(cfg); err != nil {
				return err
			}
			if err := fillExecWorkers(cfg); err != nil {
				return err
			}
			if err := fillAnalyticsOption(cfg); err != nil {
				return err
			}
			if cfg.Shards <= 0 {
				if n, ok, err := poptPositiveInt(cfg, "shards"); err != nil {
					return err
				} else if ok {
					cfg.Shards = n
				}
			}
			if v, ok := cfg.Options["partitioner"]; ok {
				cfg.Partitioner = v
			}
			switch cfg.Partitioner {
			case "", "hash", "range":
			default:
				return fmt.Errorf("platform: sharded: -popt partitioner=%q: want hash or range", cfg.Partitioner)
			}
			if v, ok := cfg.Options["bounds"]; ok {
				if cfg.Partitioner != "range" {
					return fmt.Errorf("platform: sharded: -popt bounds requires partitioner=range")
				}
				cfg.PartitionBounds = strings.Split(v, ",")
				seen := make(map[string]bool, len(cfg.PartitionBounds))
				for _, b := range cfg.PartitionBounds {
					if b == "" {
						return fmt.Errorf("platform: sharded: -popt bounds=%q: empty split point", v)
					}
					if seen[b] {
						// A duplicate split point would pin an extra shard
						// group no key can ever reach.
						return fmt.Errorf("platform: sharded: -popt bounds=%q: duplicate split point %q", v, b)
					}
					seen[b] = true
				}
				// Explicit split points pin the shard count: every router
				// must place keys over exactly these ranges.
				n := len(cfg.PartitionBounds) + 1
				if cfg.Shards > 0 && cfg.Shards != n {
					return fmt.Errorf("platform: sharded: %d bounds make %d shards, but shards=%d was requested",
						len(cfg.PartitionBounds), n, cfg.Shards)
				}
				if n > cfg.Nodes {
					return fmt.Errorf("platform: sharded: %d bounds make %d shards, but only %d nodes", len(cfg.PartitionBounds), n, cfg.Nodes)
				}
				cfg.Shards = n
			}
			if cfg.Shards <= 0 {
				cfg.Shards = 4
			}
			if cfg.Shards > cfg.Nodes {
				cfg.Shards = cfg.Nodes
			}
			return nil
		},
		// Same geth lineage as Quorum: EVM, trie state, shared LRU.
		MemModel:        gethMemModel,
		NewEngine:       newEVMEngine,
		NewStateFactory: trieSharedStateFactory,
		NewConsensus: func(cfg *Config, _ *Env) func(consensus.Context) consensus.Engine {
			shards := cfg.Shards
			ropts := raftOptions(cfg)
			part := shardPartitioner(cfg)
			seed := cfg.Net.Seed
			return func(ctx consensus.Context) consensus.Engine {
				opts := sharding.DefaultOptions()
				opts.Shards = shards
				opts.Partitioner = part
				opts.Raft = ropts
				opts.Seed = seed
				return sharding.New(ctx, opts)
			}
		},
	}
}

// shardPartitioner builds the placement function every node of the
// cluster shares (construction must be deterministic from the config —
// all routers have to agree). nil lets the sharding engine default to
// hash partitioning over the clamped shard count.
func shardPartitioner(cfg *Config) sharding.Partitioner {
	if cfg.Partitioner != "range" {
		return nil
	}
	if len(cfg.PartitionBounds) > 0 {
		bounds := make([][]byte, len(cfg.PartitionBounds))
		for i, b := range cfg.PartitionBounds {
			bounds[i] = []byte(b)
		}
		return sharding.NewRangePartitioner(bounds...)
	}
	// No explicit split points: split the key space evenly by leading
	// byte. Workloads whose keys share a prefix will hotspot one range —
	// pass -popt bounds= split points matched to the key population.
	bounds := make([][]byte, cfg.Shards-1)
	for i := range bounds {
		bounds[i] = []byte{byte(256 * (i + 1) / cfg.Shards)}
	}
	return sharding.NewRangePartitioner(bounds...)
}
