package platform

import (
	"strconv"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/consensus/raft"
	"blockbench/internal/sharding"
)

// Sharded is the partitioned-execution preset: the database scaling
// technique the paper's conclusion singles out as absent from private
// blockchains. State is hash-partitioned over S shard groups; each
// group is an independent Raft-ordered pipeline (its own leader,
// batching, ledger and pool) reusing the Quorum stack, so single-shard
// transactions commit without touching any other group. Transactions
// whose keys span shards run two-phase commit across the touched
// groups' leaders (prepare/lock, unanimous commit, abort-retry with
// backoff) — the cross-partition path whose cost the shard-scaling
// benchmark measures against the fast path.
const Sharded Kind = "sharded"

func shardedPreset() *Preset {
	return &Preset{
		Kind:     Sharded,
		Describe: "sharded execution: hash-partitioned state, per-shard Raft groups, cross-shard 2PC",
		// Per-shard Raft never forks, but the trie keeps historical
		// roots for versioned-state queries, as on Quorum.
		SupportsForks: true,
		OptionKeys:    []string{"shards"},
		Fill: func(cfg *Config) {
			if cfg.CacheEntries == 0 {
				cfg.CacheEntries = 4096
			}
			if cfg.BatchSize == 0 {
				cfg.BatchSize = 20
			}
			if cfg.BatchTimeout <= 0 {
				cfg.BatchTimeout = 10 * time.Millisecond
			}
			if cfg.ElectionTimeout <= 0 {
				cfg.ElectionTimeout = 300 * time.Millisecond
			}
			if cfg.HeartbeatInterval <= 0 {
				cfg.HeartbeatInterval = 20 * time.Millisecond
			}
			if cfg.Shards <= 0 {
				if n, err := strconv.Atoi(cfg.Options["shards"]); err == nil && n > 0 {
					cfg.Shards = n
				}
			}
			if cfg.Shards <= 0 {
				cfg.Shards = 4
			}
			if cfg.Shards > cfg.Nodes {
				cfg.Shards = cfg.Nodes
			}
		},
		// Same geth lineage as Quorum: EVM, trie state, shared LRU.
		MemModel:        gethMemModel,
		NewEngine:       newEVMEngine,
		NewStateFactory: trieSharedStateFactory,
		NewConsensus: func(cfg *Config, _ *Env) func(consensus.Context) consensus.Engine {
			shards := cfg.Shards
			ropts := raft.DefaultOptions()
			ropts.ElectionTimeout = cfg.ElectionTimeout
			ropts.Heartbeat = cfg.HeartbeatInterval
			ropts.BatchSize = cfg.BatchSize
			ropts.BatchTimeout = cfg.BatchTimeout
			seed := cfg.Net.Seed
			return func(ctx consensus.Context) consensus.Engine {
				opts := sharding.DefaultOptions()
				opts.Shards = shards
				opts.Raft = ropts
				opts.Seed = seed
				return sharding.New(ctx, opts)
			}
		},
	}
}
