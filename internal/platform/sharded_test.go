package platform

import (
	"fmt"
	"testing"
	"time"

	"blockbench/internal/crypto"
	"blockbench/internal/sharding"
	"blockbench/internal/types"
)

// shardedConfig is fastConfig with the shard count pinned.
func shardedConfig(nodes, shards int) Config {
	cfg := fastConfig(Sharded, nodes, clientKeys(4))
	cfg.Shards = shards
	return cfg
}

// waitReceipts polls each transaction's gateway node until every
// submission has a receipt (local chain or routed commit) or times out.
func waitReceipts(t *testing.T, c *Cluster, ids []types.Hash, gateways []int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for i, id := range ids {
		for {
			if _, ok, _ := c.Node(gateways[i]).Receipt(id); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tx %d/%d never committed (gateway %d, counters %v)",
					i+1, len(ids), gateways[i], c.Counters())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestShardedClusterCommits boots the fifth platform end to end: YCSB
// writes routed through every gateway commit on their owning shards and
// are all visible at the gateway that accepted them — and, being
// single-key, every one takes the fast path with zero 2PC.
func TestShardedClusterCommits(t *testing.T) {
	keys := clientKeys(4)
	cfg := shardedConfig(4, 2)
	cfg.ClientKeys = keys
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop(); c.Close() })
	c.Start()

	const txs = 40
	ids := make([]types.Hash, txs)
	gateways := make([]int, txs)
	for i := 0; i < txs; i++ {
		ids[i] = submitYCSB(t, c, keys[i%len(keys)], true, i)
		gateways[i] = i % c.Size()
	}
	waitReceipts(t, c, ids, gateways, 30*time.Second)

	counters := c.Counters()
	if counters["xshard.fastpath"] != txs {
		t.Fatalf("fastpath = %d, want %d (single-key txs must bypass 2PC)",
			counters["xshard.fastpath"], txs)
	}
	if counters["xshard.txs"] != 0 {
		t.Fatalf("xshard.txs = %d for a single-key workload", counters["xshard.txs"])
	}
	// Per-shard counter prefixes are present for both groups.
	for s := 0; s < 2; s++ {
		if _, ok := counters[fmt.Sprintf("shard%d.raft.batches", s)]; !ok {
			t.Fatalf("missing per-shard counters for shard %d: %v", s, counters)
		}
	}
}

// crossShardPair returns two smallbank account ids that the sharded
// engine's partitioner places on different shards.
func crossShardPair(p sharding.Partitioner, from int) (a, b []byte) {
	a = types.U64Bytes(uint64(from))
	sa := p.Shard(a)
	for i := from + 1; ; i++ {
		b = types.U64Bytes(uint64(i))
		if p.Shard(b) != sa {
			return a, b
		}
	}
}

// TestShardedCrossShard2PCAccounting is the conservation check of the
// cross-shard protocol: with contending transfers racing over shared
// accounts, every multi-shard transaction resolves as exactly one of
// xshard.commits or xshard.aborts (retries are rounds, not outcomes).
// Run under -race this also exercises the coordinator, participant and
// notice paths concurrently.
func TestShardedCrossShard2PCAccounting(t *testing.T) {
	keys := clientKeys(4)
	cfg := shardedConfig(4, 2)
	cfg.ClientKeys = keys
	cfg.Contracts = []string{"smallbank", "ycsb", "donothing"}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop(); c.Close() })
	c.Start()

	eng, ok := c.Node(0).Consensus().(*sharding.Engine)
	if !ok {
		t.Fatalf("sharded node runs %T", c.Node(0).Consensus())
	}
	part := eng.Partition()

	// A small pool of hot cross-shard pairs so concurrent prepares
	// contend for the same locks (abort-retry coverage).
	const txs = 40
	done := make(chan types.Hash, txs)
	for i := 0; i < txs; i++ {
		go func(i int) {
			a, b := crossShardPair(part, i%5)
			tx := &types.Transaction{
				Nonce:    uint64(1000 + i),
				From:     keys[i%len(keys)].Address(),
				Contract: "smallbank",
				Method:   "sendPayment",
				Args:     [][]byte{a, b, types.U64Bytes(1)},
				GasLimit: 100_000,
			}
			if err := crypto.SignTx(tx, keys[i%len(keys)]); err != nil {
				t.Error(err)
				done <- types.ZeroHash
				return
			}
			id, err := c.Node(i % c.Size()).SendTransaction(tx)
			if err != nil {
				t.Errorf("send: %v", err)
			}
			done <- id
		}(i)
	}
	for i := 0; i < txs; i++ {
		<-done
	}

	// Every coordination must resolve: commits + aborts == multi-shard
	// transactions submitted, exactly.
	deadline := time.Now().Add(30 * time.Second)
	for {
		counters := c.Counters()
		x, commits, aborts := counters["xshard.txs"], counters["xshard.commits"], counters["xshard.aborts"]
		if commits+aborts == x && x == txs {
			if commits == 0 {
				t.Fatalf("no cross-shard tx committed (aborts=%d)", aborts)
			}
			t.Logf("cross-shard: %d txs -> %d commits, %d aborts, %d retries",
				x, commits, aborts, counters["xshard.retries"])
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("2PC accounting never converged: txs=%d commits=%d aborts=%d (want commits+aborts == %d)",
				x, commits, aborts, txs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedShardGroupsIsolated: each shard group elects its own
// leader and the groups' Raft instances do not interfere (a foreign
// group's election traffic must not bump this group's terms).
func TestShardedShardGroupsIsolated(t *testing.T) {
	cfg := shardedConfig(4, 2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop(); c.Close() })
	c.Start()

	deadline := time.Now().Add(10 * time.Second)
	for {
		leaders := make(map[int]int)
		for i := 0; i < c.Size(); i++ {
			eng := c.Node(i).Consensus().(*sharding.Engine)
			if eng.Inner().IsLeader() {
				leaders[eng.Shard()]++
			}
		}
		if leaders[0] == 1 && leaders[1] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("per-shard leaders never stabilized: %v", leaders)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
