package platform

import (
	"fmt"

	"blockbench/internal/exec/parallel"
)

// execOptionKeys are the generic -popt keys shared by every preset
// that owns an execution engine and exposes the intra-block parallel
// scheduler (ethereum, parity, quorum, sharded).
var execOptionKeys = []string{"workers"}

// fillExecWorkers folds -popt workers=N into Config.ExecWorkers and
// applies the serial default. Zero and negative requests are rejected
// through the Fill error path — a worker pool of no workers cannot
// execute anything, and silently falling back to serial would make the
// knob lie.
func fillExecWorkers(cfg *Config) error {
	if n, ok, err := poptPositiveInt(cfg, "workers"); err != nil {
		return err
	} else if ok {
		cfg.ExecWorkers = n
	}
	if cfg.ExecWorkers < 0 {
		return fmt.Errorf("platform: %s: ExecWorkers %d: want a positive worker count", cfg.Kind, cfg.ExecWorkers)
	}
	if cfg.ExecWorkers == 0 {
		cfg.ExecWorkers = 1
	}
	return nil
}

// newBlockExecutor builds a node's intra-block executor once Fill has
// resolved the worker count; nil when the preset left ExecWorkers
// unset (hyperledger keeps the strictly serial Fabric v0.6 pipeline).
func newBlockExecutor(cfg *Config) *parallel.Executor {
	if cfg.ExecWorkers < 1 {
		return nil
	}
	return parallel.New(cfg.ExecWorkers)
}
