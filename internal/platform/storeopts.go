package platform

import (
	"fmt"
	"os"
)

// storeOptionKeys are the generic -popt keys shared by every preset
// whose storage engine is selectable (ethereum, parity, quorum,
// sharded): store=mem|lsm picks the engine, storedir=DIR roots the LSM
// directories (implying store=lsm). Hyperledger keeps its fixed
// RocksDB-modelled default and takes neither.
var storeOptionKeys = []string{"store", "storedir"}

// fillStoreOptions folds -popt store= / storedir= into the typed
// Config fields and provisions an ephemeral data directory for an LSM
// run that did not name one. The temp directory is flagged so
// Cluster.Close removes it; an explicit storedir (or DataDir) is the
// caller's to keep.
func fillStoreOptions(cfg *Config) error {
	if v, ok := cfg.Options["store"]; ok {
		switch v {
		case "mem", "lsm":
			cfg.StoreBackend = v
		default:
			return fmt.Errorf("platform: %s: -popt store=%q: want mem or lsm", cfg.Kind, v)
		}
	}
	if v, ok := cfg.Options["storedir"]; ok {
		if v == "" {
			return fmt.Errorf("platform: %s: -popt storedir=: empty directory", cfg.Kind)
		}
		if cfg.StoreBackend == "mem" {
			return fmt.Errorf("platform: %s: -popt storedir=%q conflicts with store=mem", cfg.Kind, v)
		}
		cfg.DataDir = v
		cfg.StoreBackend = "lsm"
	}
	switch cfg.StoreBackend {
	case "", "mem", "lsm":
	default:
		return fmt.Errorf("platform: %s: StoreBackend %q: want mem or lsm", cfg.Kind, cfg.StoreBackend)
	}
	if cfg.StoreBackend == "lsm" && cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "blockbench-lsm-")
		if err != nil {
			return fmt.Errorf("platform: %s: provisioning LSM data dir: %w", cfg.Kind, err)
		}
		cfg.DataDir = dir
		cfg.ephemeralData = true
	}
	return nil
}
