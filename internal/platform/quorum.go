package platform

import (
	"blockbench/internal/consensus"
	"blockbench/internal/consensus/raft"
)

// Quorum is the Raft-ordered preset: a geth-lineage platform (trie
// state, EVM execution, client-side signing) whose consensus is Raft —
// crash-fault-tolerant leader-based ordering instead of PoW. It mirrors
// how real permissioned stacks (JPMC Quorum, Fabric v1 Kafka ordering)
// moved from Byzantine agreement to cheaper ordering for throughput:
// O(N) replication messages per batch and immediate finality, at the
// price of tolerating only crash faults (f < N/2, no Byzantine nodes).
//
// The engine is event-driven and pipelined (propose-time replication,
// leader-lease reads, log compaction); its knobs are exposed as generic
// platform options: -popt heartbeat=10ms,batch=32,maxappend=64,
// window=128,retain=4096 (retain=0 disables compaction). -popt
// workers=N turns on intra-block parallel execution (exec/parallel).
const Quorum Kind = "quorum"

func quorumPreset() *Preset {
	return &Preset{
		Kind:     Quorum,
		Describe: "Quorum (geth fork): Raft-ordered CFT consensus, trie state, EVM",
		// Raft never forks, but the trie keeps historical roots, so the
		// ledger's versioned-state queries (analytics Q2) stay available.
		SupportsForks:   true,
		DurableRecovery: true,
		OptionKeys: append(append(append(append([]string{}, raftOptionKeys...), storeOptionKeys...),
			execOptionKeys...), analyticsOptionKeys...),
		Fill: func(cfg *Config) error {
			if err := fillRaftConfig(cfg); err != nil {
				return err
			}
			if err := fillStoreOptions(cfg); err != nil {
				return err
			}
			if err := fillExecWorkers(cfg); err != nil {
				return err
			}
			return fillAnalyticsOption(cfg)
		},
		// Same geth lineage as the Ethereum preset: EVM, trie state with
		// a shared per-node LRU, and the geth memory cost model.
		MemModel:        gethMemModel,
		NewEngine:       newEVMEngine,
		NewStateFactory: trieSharedStateFactory,
		// Blocks are batch-bounded like PBFT, not gas-bounded (no
		// GasLimit hook), and final on commit: no confirmation depth.
		NewConsensus: func(cfg *Config, _ *Env) func(consensus.Context) consensus.Engine {
			opts := raftOptions(cfg)
			return func(ctx consensus.Context) consensus.Engine {
				return raft.New(ctx, opts)
			}
		},
	}
}
