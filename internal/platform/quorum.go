package platform

import (
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/consensus/raft"
)

// Quorum is the Raft-ordered preset: a geth-lineage platform (trie
// state, EVM execution, client-side signing) whose consensus is Raft —
// crash-fault-tolerant leader-based ordering instead of PoW. It mirrors
// how real permissioned stacks (JPMC Quorum, Fabric v1 Kafka ordering)
// moved from Byzantine agreement to cheaper ordering for throughput:
// O(N) replication messages per batch and immediate finality, at the
// price of tolerating only crash faults (f < N/2, no Byzantine nodes).
const Quorum Kind = "quorum"

func quorumPreset() *Preset {
	return &Preset{
		Kind:     Quorum,
		Describe: "Quorum (geth fork): Raft-ordered CFT consensus, trie state, EVM",
		// Raft never forks, but the trie keeps historical roots, so the
		// ledger's versioned-state queries (analytics Q2) stay available.
		SupportsForks: true,
		Fill: func(cfg *Config) {
			if cfg.CacheEntries == 0 {
				cfg.CacheEntries = 4096
			}
			if cfg.BatchSize == 0 {
				cfg.BatchSize = 20
			}
			if cfg.BatchTimeout <= 0 {
				cfg.BatchTimeout = 10 * time.Millisecond
			}
			if cfg.ElectionTimeout <= 0 {
				cfg.ElectionTimeout = 300 * time.Millisecond
			}
			if cfg.HeartbeatInterval <= 0 {
				cfg.HeartbeatInterval = 20 * time.Millisecond
			}
		},
		// Same geth lineage as the Ethereum preset: EVM, trie state with
		// a shared per-node LRU, and the geth memory cost model.
		MemModel:        gethMemModel,
		NewEngine:       newEVMEngine,
		NewStateFactory: trieSharedStateFactory,
		// Blocks are batch-bounded like PBFT, not gas-bounded (no
		// GasLimit hook), and final on commit: no confirmation depth.
		NewConsensus: func(cfg *Config, _ *Env) func(consensus.Context) consensus.Engine {
			return func(ctx consensus.Context) consensus.Engine {
				opts := raft.DefaultOptions()
				opts.ElectionTimeout = cfg.ElectionTimeout
				opts.Heartbeat = cfg.HeartbeatInterval
				opts.BatchSize = cfg.BatchSize
				opts.BatchTimeout = cfg.BatchTimeout
				opts.Seed = cfg.Net.Seed
				return raft.New(ctx, opts)
			}
		},
	}
}
