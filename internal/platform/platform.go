// Package platform wires the substrate packages into blockchain
// platform presets and runs N-node clusters of them over the simulated
// network. Presets plug in through a registry (see Register in
// registry.go): each preset file declares its state store, state
// organization, execution engine, per-element memory cost model and
// consensus factory, and the driver, experiments and CLI pick new
// platforms up automatically.
//
// Five presets ship with the framework: the three systems the paper
// evaluates — Ethereum (geth v1.4.18: PoW, Patricia-Merkle trie over
// LevelDB with an LRU state cache, EVM), Parity (v1.6.0:
// Proof-of-Authority, all state pinned in memory, EVM, server-side
// transaction signing) and Hyperledger Fabric (v0.6.0-preview: PBFT,
// Bucket-Merkle tree over RocksDB, native chaincode) — plus two
// extension backends on the registry seam: Quorum (geth fork:
// Raft-ordered crash-fault-tolerant consensus, trie state, EVM) and
// Sharded (hash-partitioned state, one Raft group per shard,
// cross-shard two-phase commit).
package platform

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"blockbench/internal/analytics"
	"blockbench/internal/crypto"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/ledger"
	"blockbench/internal/metrics"
	"blockbench/internal/node"
	"blockbench/internal/simnet"
	"blockbench/internal/trace"
	"blockbench/internal/txpool"
	"blockbench/internal/types"
)

// Kind selects a platform preset by registry key.
type Kind string

func init() {
	// The paper's three platforms, then the extension backends. Kinds()
	// lists them sorted, so registration order is not load-bearing.
	MustRegister(ethereumPreset())
	MustRegister(parityPreset())
	MustRegister(hyperledgerPreset())
	MustRegister(quorumPreset())
	MustRegister(shardedPreset())
}

// Config sizes and tunes a cluster. Zero values take preset defaults.
// All time defaults are at the repository's 25x scale relative to the
// paper's testbed (see DESIGN.md).
type Config struct {
	Kind      Kind
	Nodes     int
	Contracts []string
	// ClientKeys are the client accounts: registered for signature
	// verification, funded at genesis, and (on Parity) installed in the
	// server keyring.
	ClientKeys     []*crypto.Key
	GenesisBalance uint64
	Net            simnet.Config
	// DataDir switches state storage from in-memory maps to the LSM
	// engine, one directory per node (IOHeavy disk-usage runs).
	DataDir string
	// StoreBackend selects the storage engine explicitly: "mem" (the
	// default) or "lsm". Exposed as -popt store= on the presets that
	// share the default storage policy; -popt storedir=DIR sets DataDir
	// and implies lsm. An LSM run without a DataDir gets an ephemeral
	// temp directory, removed at Cluster.Close.
	StoreBackend string
	// ephemeralData marks DataDir as a temp directory provisioned by
	// fillStoreOptions; Cluster.Close removes it.
	ephemeralData bool
	// AnalyticsIndex toggles the per-node columnar analytics index
	// maintained on the ledger commit path: "" or "on" (the default)
	// builds it and serves node analytics queries; "off" disables it
	// (queries error). Exposed as -popt index= on every preset.
	AnalyticsIndex string

	// Ethereum knobs (Quorum shares CacheEntries; its blocks are
	// batch-bounded like PBFT's, so GasLimit does not apply).
	BlockInterval time.Duration // target PoW interval (default 100ms)
	GasLimit      uint64        // block gas limit (default 650,000)
	CacheEntries  int           // LRU state cache entries (default 4096)
	DisableMining bool          // turn off PoW block production

	// Parity knobs.
	StepDuration time.Duration // PoA step (default 40ms)
	IngestCost   time.Duration // per-tx server processing (default 180ms)
	ParityMemCap int64         // state memory cap (default 256 MiB)

	// Hyperledger knobs (Quorum shares the batching pair).
	BatchSize    int           // txs per consensus batch (default 20)
	BatchTimeout time.Duration // partial-batch timer (default 10ms)
	ViewTimeout  time.Duration // view-change timer (default 400ms)

	// Quorum (Raft) knobs, shared by the sharded preset's per-shard
	// groups. All are exposed as -popt key=val on both presets
	// (heartbeat=, batch=, maxappend=, window=, retain=).
	ElectionTimeout   time.Duration // follower election timeout floor (default 300ms)
	HeartbeatInterval time.Duration // leader heartbeat cadence (default 20ms)
	RaftWindow        int           // uncommitted entries / per-follower pipeline depth (default 64)
	RaftMaxAppend     int           // entries per AppendEntries message (default 32)
	// RaftRetain is the log-compaction retention window in entries:
	// 0 takes the preset default (4096), negative disables compaction
	// (-popt retain=0).
	RaftRetain int
	// RaftLeaseFactor sizes leader leases as Heartbeat×LeaseFactor
	// (default 3, capped at half the election timeout).
	RaftLeaseFactor int

	// Sharded knobs.
	Shards int // shard groups (default min(4, Nodes), clamped to Nodes)
	// Partitioner selects key placement: "hash" (default) or "range"
	// (-popt partitioner=range). PartitionBounds are the range split
	// points (-popt bounds=a,b,c → 4 shards-worth of ranges); when empty
	// the range partitioner splits the key space evenly by leading byte.
	Partitioner     string
	PartitionBounds []string

	// Options carries generic -popt key=val parameters for the selected
	// preset's Fill hook — the platform-side mirror of workload -wopt,
	// so a registered backend can expose tuning (the sharded preset's
	// shards=N) with zero CLI edits. Keys outside the preset's
	// OptionKeys are rejected by New.
	Options map[string]string

	// ExecWorkers is the intra-block parallel execution worker count
	// (-popt workers=N on the presets that own an execution engine:
	// ethereum, parity, quorum, sharded). 0 takes the preset default;
	// 1 is the serial path. The block outcome is byte-identical to
	// serial execution at any worker count (see internal/exec/parallel).
	ExecWorkers int

	// Shared knobs.
	MaxTxsPerBlock    int
	RPCLatency        time.Duration // default 200µs
	ConfirmationDepth *uint64       // override preset confirmation depth
	MemModel          *exec.MemModel
}

// fill applies the platform-independent defaults; preset-specific knobs
// are defaulted by each preset's Fill hook.
func (c *Config) fill() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("platform: cluster needs at least 1 node")
	}
	if c.Net.InboxSize == 0 {
		c.Net = simnet.DefaultConfig()
	}
	if c.RPCLatency == 0 {
		c.RPCLatency = 200 * time.Microsecond
	}
	if len(c.Contracts) == 0 {
		c.Contracts = []string{"ycsb", "smallbank", "donothing"}
	}
	return nil
}

// Cluster is a running N-node deployment of one platform. Crash and
// Recover rebuild nodes in place, so every slice is indexed by node
// and guarded by mu; accessors hand out the current incarnation.
type Cluster struct {
	Kind   Kind
	Net    *simnet.Network
	preset *Preset

	mu       sync.RWMutex
	nodes    []*node.Node
	chains   []*ledger.Chain
	stores   []kvstore.Store
	engines  []exec.Engine
	nodeKeys []*crypto.Key
	// providers holds each node's additional counter sources beyond the
	// consensus and execution engines (intra-block executors, state
	// layers, stores, indexers), dropped and re-collected on rebuild.
	providers [][]metrics.CounterProvider
	// indexers holds each node's analytics indexer (nil entries when
	// the index is disabled).
	indexers []*analytics.Indexer
	// down marks process-killed nodes; restarts counts recoveries, so
	// the invariant checker can distinguish a restart-induced height
	// regression from a real safety violation.
	down     []bool
	restarts []uint64
	// retired accumulates the counters of dead node incarnations so
	// Counters() stays monotone across kills (gauge keys excluded).
	retired map[string]uint64

	// env/alloc/peers are retained so Recover can rebuild a node with
	// the identical identity material the initial build used.
	env   *Env
	alloc map[types.Address]uint64
	peers []simnet.NodeID

	// tracer is the cluster-wide lifecycle tracer every component stamps
	// into; disabled until the driver arms it for a run.
	tracer *trace.Tracer
	cfg    Config
}

// Tracer returns the cluster's lifecycle tracer.
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// New builds (but does not start) a cluster of the registered platform
// named by cfg.Kind.
func New(cfg Config) (*Cluster, error) {
	p, err := Lookup(cfg.Kind)
	if err != nil {
		return nil, err
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := p.checkOptions(cfg.Options); err != nil {
		return nil, err
	}
	if p.Fill != nil {
		if err := p.Fill(&cfg); err != nil {
			return nil, err
		}
	}
	c := &Cluster{Kind: cfg.Kind, preset: p, cfg: cfg, tracer: trace.New()}
	c.Net = simnet.New(cfg.Net)

	peers := make([]simnet.NodeID, cfg.Nodes)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	// Node identities are deterministic so repeated runs are comparable.
	env := &Env{
		Authorities: make([]types.Address, cfg.Nodes),
		Keyring:     make(map[types.Address]*crypto.Key, len(cfg.ClientKeys)),
	}
	c.nodeKeys = make([]*crypto.Key, cfg.Nodes)
	for i := range c.nodeKeys {
		c.nodeKeys[i] = crypto.DeterministicKey(uint64(1000 + i))
		env.Authorities[i] = c.nodeKeys[i].Address()
	}

	alloc := make(map[types.Address]uint64, len(cfg.ClientKeys))
	for _, k := range cfg.ClientKeys {
		alloc[k.Address()] = cfg.GenesisBalance
		env.Keyring[k.Address()] = k
	}
	// Every participant is authenticated in a permissioned deployment.
	env.Keys = append(env.Keys, cfg.ClientKeys...)
	env.Keys = append(env.Keys, c.nodeKeys...)

	c.env = env
	c.alloc = alloc
	c.peers = peers
	c.nodes = make([]*node.Node, cfg.Nodes)
	c.chains = make([]*ledger.Chain, cfg.Nodes)
	c.stores = make([]kvstore.Store, cfg.Nodes)
	c.engines = make([]exec.Engine, cfg.Nodes)
	c.providers = make([][]metrics.CounterProvider, cfg.Nodes)
	c.indexers = make([]*analytics.Indexer, cfg.Nodes)
	c.down = make([]bool, cfg.Nodes)
	c.restarts = make([]uint64, cfg.Nodes)
	c.retired = make(map[string]uint64)

	for i := 0; i < cfg.Nodes; i++ {
		if err := c.buildNode(i, nil); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// blockKey is the store key journaling the committed block at height n
// (zero-padded so store iteration yields ascending heights).
func blockKey(n uint64) []byte { return []byte(fmt.Sprintf("blk:%016d", n)) }

// storeMeta adapts a node's kvstore into the consensus.MetaStore the
// engines persist their hard state through (Raft term/vote/applied).
type storeMeta struct{ s kvstore.Store }

func (m storeMeta) SaveMeta(key string, value []byte) {
	m.s.Put([]byte("meta:"+key), value)
}

func (m storeMeta) LoadMeta(key string) ([]byte, bool) {
	v, ok, err := m.s.Get([]byte("meta:" + key))
	if err != nil || !ok {
		return nil, false
	}
	return v, true
}

// buildNode assembles node i from the preset's hooks, writing slot i of
// every per-node slice. A nil store opens a fresh one through the
// preset; Recover passes the reopened (or surviving) store so a
// DurableRecovery preset replays its journaled chain from disk.
func (c *Cluster) buildNode(i int, store kvstore.Store) error {
	cfg := &c.cfg
	p := c.preset

	if store == nil {
		s, err := c.openStoreFor(i)
		if err != nil {
			return err
		}
		store = s
	}
	c.stores[i] = store

	mem := exec.MemModel{}
	if p.MemModel != nil {
		mem = p.MemModel(cfg)
	}
	if cfg.MemModel != nil {
		mem = *cfg.MemModel
	}
	eng, err := p.NewEngine(cfg, mem)
	if err != nil {
		return err
	}
	c.engines[i] = eng

	var provs []metrics.CounterProvider
	factory, stateProviders, err := p.NewStateFactory(cfg, store)
	if err != nil {
		return err
	}
	provs = append(provs, stateProviders...)
	// Stores that count their own traffic (the LSM engine's gets, bloom
	// skips, flushes, compactions) flow into Report.Counters too.
	if cp, ok := store.(metrics.CounterProvider); ok {
		provs = append(provs, cp)
	}

	// Per-node registry: verification results are cached per transaction,
	// so sharing one registry would let N-1 nodes skip the signature
	// check the simulation charges each node for.
	reg := c.env.newRegistry()

	pool := txpool.New(1 << 20)
	pool.SetTracer(c.tracer)
	var ledgerGas uint64
	if p.GasLimit != nil {
		ledgerGas = p.GasLimit(cfg)
	}
	var blockExec ledger.BlockExecutor
	if pex := newBlockExecutor(cfg); pex != nil {
		blockExec = pex
		provs = append(provs, pex)
	}
	// Analytics indexer: maintained on the commit path unless disabled.
	// It persists through the node's own store, so -popt store=lsm
	// carries the columnar segments on the same engine as state.
	var idx *analytics.Indexer
	if cfg.AnalyticsIndex != "off" {
		idx = analytics.NewIndexer(store, analytics.Options{})
		provs = append(provs, idx)
	}
	c.indexers[i] = idx
	c.providers[i] = provs

	lcfg := ledger.Config{
		Engine:        eng,
		Parallel:      blockExec,
		StateFactory:  factory,
		Registry:      reg,
		GasLimit:      ledgerGas,
		SupportsForks: p.SupportsForks,
		GenesisAlloc:  c.alloc,
		OnInclude:     pool.MarkIncluded,
		OnReorg:       pool.Reinject,
		Tracer:        c.tracer,
	}
	if idx != nil {
		lcfg.OnCommit = idx.OnCommit
	}
	if p.DurableRecovery {
		// Journal committed blocks so a killed node can rebuild its
		// chain from disk alone. Composed before the indexer hook; runs
		// under the chain lock, so it only touches the store.
		inner := lcfg.OnCommit
		lcfg.OnCommit = func(blocks []*types.Block, receipts [][]*types.Receipt) {
			for _, b := range blocks {
				store.Put(blockKey(b.Number()), types.EncodeBlock(b))
			}
			if inner != nil {
				inner(blocks, receipts)
			}
		}
	}
	chain, err := ledger.New(lcfg)
	if err != nil {
		return err
	}
	c.chains[i] = chain

	if p.DurableRecovery {
		// Replay the journaled chain (no-op on a fresh store). Execution
		// is deterministic and the trie is content-addressed, so replay
		// converges on the exact pre-crash state; a record that fails to
		// decode marks the torn tail and ends the replay.
		var blocks []*types.Block
		store.Iterate([]byte("blk:"), []byte("blk;"), func(k, v []byte) bool {
			b, err := types.DecodeBlock(v)
			if err != nil {
				return false
			}
			blocks = append(blocks, b)
			return true
		})
		for _, b := range blocks {
			if err := chain.Append(b); err != nil {
				break
			}
		}
	}

	depth := uint64(0)
	if p.ConfirmationDepth != nil {
		depth = p.ConfirmationDepth(cfg)
	}
	if cfg.ConfirmationDepth != nil {
		depth = *cfg.ConfirmationDepth
	}

	ncfg := node.Config{
		ID:                simnet.NodeID(i),
		Key:               c.nodeKeys[i],
		Net:               c.Net,
		Chain:             chain,
		Pool:              pool,
		Exec:              eng,
		NewConsensus:      p.NewConsensus(cfg, c.env),
		Peers:             c.peers,
		RPCLatency:        cfg.RPCLatency,
		ConfirmationDepth: depth,
		Analytics:         idx,
		Tracer:            c.tracer,
	}
	if p.DurableRecovery {
		ncfg.Meta = storeMeta{store}
	}
	if p.ServerSigns {
		ncfg.ServerSigns = true
		ncfg.IngestCost = cfg.IngestCost
		ncfg.Keyring = c.env.Keyring
	}
	if p.VerifyIngress {
		ncfg.VerifyIngress = true
		ncfg.Registry = reg
	}
	c.nodes[i] = node.New(ncfg)
	return nil
}

// openStoreFor opens node i's storage engine through the preset hook.
// The path is deterministic in i, so reopening after a crash recovers
// whatever the previous incarnation persisted.
func (c *Cluster) openStoreFor(i int) (kvstore.Store, error) {
	open := c.preset.OpenStore
	if open == nil {
		open = defaultOpenStore
	}
	return open(&c.cfg, i)
}

// ServerSigns reports whether this platform signs transactions inside
// the server (Parity); clients then submit unsigned transactions.
func (c *Cluster) ServerSigns() bool { return c.preset.ServerSigns }

// Start launches every node.
func (c *Cluster) Start() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, n := range c.nodes {
		n.Start()
	}
}

// Stop halts nodes and the network.
func (c *Cluster) Stop() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, n := range c.nodes {
		if !c.down[i] {
			n.Stop()
		}
	}
	c.Net.Close()
}

// Close releases storage (after Stop) and removes any ephemeral data
// directory provisioned for a -popt store=lsm run.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.stores {
		if s != nil {
			s.Close()
		}
	}
	if c.cfg.ephemeralData && c.cfg.DataDir != "" {
		os.RemoveAll(c.cfg.DataDir)
	}
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the i-th node (its current incarnation).
func (c *Cluster) Node(i int) *node.Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[i]
}

// Chain returns the i-th node's ledger.
func (c *Cluster) Chain(i int) *ledger.Chain {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.chains[i]
}

// Engine returns the i-th node's execution engine.
func (c *Cluster) Engine(i int) exec.Engine {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.engines[i]
}

// Store returns the i-th node's storage engine.
func (c *Cluster) Store(i int) kvstore.Store {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stores[i]
}

// Indexer returns node i's analytics indexer (nil when the index is
// disabled via -popt index=off).
func (c *Cluster) Indexer(i int) *analytics.Indexer {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.indexers[i]
}

// Crash process-kills node i: its network presence, consensus engine,
// transaction pool, uncommitted ledger tail and state caches are torn
// down, and its store is crash-closed without flushing (a genuinely
// torn WAL tail on the LSM engine). Only what the store already held
// survives for Recover. Counters of the dead incarnation are folded
// into the retired accumulator so cluster totals stay monotone.
func (c *Cluster) Crash(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down[i] {
		return
	}
	c.down[i] = true
	c.retireCountersLocked(i)
	c.Net.Crash(simnet.NodeID(i))
	c.nodes[i].Stop()
	if cc, ok := c.stores[i].(kvstore.CrashCloser); ok {
		cc.CrashClose()
	}
}

// Recover restarts a killed node from its persisted store.
// DurableRecovery presets reopen the store (WAL replay truncates any
// torn tail), rebuild the chain from the journaled blocks and hand the
// consensus engine its persisted hard state; other presets restart
// from genesis and rejoin through the chain-sync protocol. On a node
// that was merely Muted, Recover just restores connectivity.
func (c *Cluster) Recover(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.down[i] {
		c.Net.Recover(simnet.NodeID(i))
		return
	}
	var store kvstore.Store
	if c.preset.DurableRecovery {
		if _, crashClosed := c.stores[i].(kvstore.CrashCloser); crashClosed {
			s, err := c.openStoreFor(i)
			if err != nil {
				return // leave the node down; nothing sane to rebuild on
			}
			store = s
		} else {
			// The in-memory store was never torn down: it stands in for
			// the surviving disk.
			store = c.stores[i]
		}
	} else {
		// Non-durable preset: the process's disk is not a chain journal,
		// so the node restarts empty (fresh directory for LSM runs).
		if c.cfg.DataDir != "" && c.cfg.StoreBackend != "mem" {
			os.RemoveAll(filepath.Join(c.cfg.DataDir, fmt.Sprintf("node-%d", i)))
		} else {
			c.stores[i].Close()
		}
		s, err := c.openStoreFor(i)
		if err != nil {
			return
		}
		store = s
	}
	if err := c.buildNode(i, store); err != nil {
		return
	}
	c.Net.Recover(simnet.NodeID(i))
	c.nodes[i].Start()
	c.down[i] = false
	c.restarts[i]++
}

// Mute suppresses message delivery to and from node i without killing
// the process — the paper's original fail-stop-on-the-network failure
// mode. The node's in-memory state survives; Unmute (or Recover)
// restores connectivity.
func (c *Cluster) Mute(i int) { c.Net.Crash(simnet.NodeID(i)) }

// Unmute restores a muted node's connectivity.
func (c *Cluster) Unmute(i int) { c.Net.Recover(simnet.NodeID(i)) }

// Down reports whether node i is currently process-killed.
func (c *Cluster) Down(i int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.down[i]
}

// Restarts counts how many times node i has been rebuilt by Recover.
// The invariant checker uses it to tell a restart-induced height reset
// from a real monotonicity violation.
func (c *Cluster) Restarts(i int) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.restarts[i]
}

// BlockHash returns the hash of node i's canonical block at the given
// height (ok=false when the node has no block there). The invariant
// checker compares these across nodes for committed-prefix agreement.
func (c *Cluster) BlockHash(i int, height uint64) (types.Hash, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.chains[i].GetBlock(height)
	if !ok {
		return types.Hash{}, false
	}
	return b.Hash(), true
}

// ConfirmationDepth returns the effective confirmation depth nodes were
// built with.
func (c *Cluster) ConfirmationDepth() uint64 {
	depth := uint64(0)
	if c.preset.ConfirmationDepth != nil {
		depth = c.preset.ConfirmationDepth(&c.cfg)
	}
	if c.cfg.ConfirmationDepth != nil {
		depth = *c.cfg.ConfirmationDepth
	}
	return depth
}

// SupportsForks reports whether the platform's ledger admits competing
// branches (PoW/PoA) — agreement checks then apply only to blocks
// buried beyond a reorg margin.
func (c *Cluster) SupportsForks() bool { return c.preset.SupportsForks }

// ShardOf returns the shard group node i's canonical chain belongs to
// (0 on single-chain platforms) — agreement is only expected within a
// group.
func (c *Cluster) ShardOf(i int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if p, ok := c.nodes[i].Consensus().(chainPartitioned); ok {
		return p.Shard()
	}
	return 0
}

// retireCountersLocked folds the dying incarnation's counters into the
// retired accumulator. Gauge keys (".workers") restate configuration
// rather than progress, so they are dropped instead of summed — the
// next incarnation reports them afresh.
func (c *Cluster) retireCountersLocked(i int) {
	add := func(v any) {
		p, ok := v.(metrics.CounterProvider)
		if !ok {
			return
		}
		for k, n := range p.Counters() {
			if metrics.GaugeKey(k) {
				continue
			}
			c.retired[k] += n
		}
	}
	add(c.nodes[i].Consensus())
	add(c.engines[i])
	for _, p := range c.providers[i] {
		add(p)
	}
}

// PartitionHalves splits the cluster into [0, k) and [k, N) — the
// double-spending attack simulation from §3.3.
func (c *Cluster) PartitionHalves(k int) {
	var a []simnet.NodeID
	for i := 0; i < k; i++ {
		a = append(a, simnet.NodeID(i))
	}
	c.Net.Partition(a)
}

// PartitionGroups splits the cluster into arbitrary (possibly
// asymmetric) groups; nodes not listed anywhere share an implicit
// group with each other. Messages flow only within a group.
func (c *Cluster) PartitionGroups(groups [][]int) {
	g := make([][]simnet.NodeID, len(groups))
	for i, grp := range groups {
		for _, n := range grp {
			g[i] = append(g[i], simnet.NodeID(n))
		}
	}
	c.Net.PartitionGroups(g)
}

// Heal removes partitions and blocked links.
func (c *Cluster) Heal() { c.Net.Heal() }

// SetLinkFaults installs a probabilistic link-fault profile on messages
// sent by the given nodes (all nodes when none are named): drop, dup
// and reorder are per-message probabilities. A zero profile clears.
func (c *Cluster) SetLinkFaults(drop, dup, reorder float64, nodes ...int) {
	ids := make([]simnet.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = simnet.NodeID(n)
	}
	c.Net.SetLinkFaults(simnet.LinkFaults{Drop: drop, Dup: dup, Reorder: reorder}, ids...)
}

// SetDelay injects extra message delay at the given nodes.
func (c *Cluster) SetDelay(d time.Duration, nodes ...int) {
	ids := make([]simnet.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = simnet.NodeID(n)
	}
	c.Net.SetDelay(d, ids...)
}

// NodeHeight returns node i's confirmed chain height (the schedule
// package's growth triggers key fault timelines off it).
func (c *Cluster) NodeHeight(i int) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.chains[i].Height()
}

// Counters aggregates every engine counter the cluster's nodes expose:
// each node's consensus engine and execution engine is asked for its
// metrics.CounterProvider map and same-named counters are summed across
// nodes. Engines that expose no counters contribute nothing — there is
// no per-backend case here, so any platform registered through the
// preset registry flows into Report.Counters automatically.
func (c *Cluster) Counters() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64)
	add := func(v any) {
		if p, ok := v.(metrics.CounterProvider); ok {
			for k, n := range p.Counters() {
				out[k] += n
			}
		}
	}
	for i, n := range c.nodes {
		if c.down[i] {
			continue // captured in retired at kill time
		}
		add(n.Consensus())
		add(c.engines[i])
		for _, p := range c.providers[i] {
			add(p)
		}
	}
	for k, n := range c.retired {
		out[k] += n
	}
	return out
}

// chainPartitioned is implemented by consensus engines that keep one
// canonical chain per shard group (the sharded platform) rather than
// one for the whole cluster.
type chainPartitioned interface{ Shard() int }

// ForkStats reports the security metric of §3.3: the number of blocks
// generated on any branch (unioned across nodes) versus the length of
// the agreed canonical structure. On single-chain platforms that is the
// longest chain; on a partitioned platform each shard group contributes
// its own canonical chain, so the lengths sum — disjoint shard chains
// are not forks of each other.
func (c *Cluster) ForkStats() (total, mainChain uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := make(map[types.Hash]struct{})
	longest := make(map[int]uint64)
	for i, ch := range c.chains {
		for _, h := range ch.KnownHashes() {
			seen[h] = struct{}{}
		}
		shard := 0
		if p, ok := c.nodes[i].Consensus().(chainPartitioned); ok {
			shard = p.Shard()
		}
		if ht := ch.Height(); ht > longest[shard] {
			longest[shard] = ht
		}
	}
	for _, ht := range longest {
		mainChain += ht
	}
	return uint64(len(seen)), mainChain
}

// Preload force-appends blocks built from the given transaction batches
// to every node, bypassing consensus — used to seed the analytics
// workload's historical chain quickly ("we pre-loaded them with 100,000
// blocks"). Transactions must already be signed. Roots are left zero so
// every chain executes and commits the batch exactly once on Append
// (platforms without state versioning share one live state database).
func (c *Cluster) Preload(batches [][]*types.Transaction) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, txs := range batches {
		head := c.chains[0].Head()
		b := &types.Block{
			Header: types.Header{
				Number:     head.Number() + 1,
				ParentHash: head.Hash(),
				Time:       int64(head.Number() + 1),
				Difficulty: 1,
			},
			Txs: txs,
		}
		for _, ch := range c.chains {
			if err := ch.Append(b); err != nil {
				return err
			}
		}
	}
	return nil
}
