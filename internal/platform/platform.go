// Package platform wires the substrate packages into blockchain
// platform presets and runs N-node clusters of them over the simulated
// network. Presets plug in through a registry (see Register in
// registry.go): each preset file declares its state store, state
// organization, execution engine, per-element memory cost model and
// consensus factory, and the driver, experiments and CLI pick new
// platforms up automatically.
//
// Five presets ship with the framework: the three systems the paper
// evaluates — Ethereum (geth v1.4.18: PoW, Patricia-Merkle trie over
// LevelDB with an LRU state cache, EVM), Parity (v1.6.0:
// Proof-of-Authority, all state pinned in memory, EVM, server-side
// transaction signing) and Hyperledger Fabric (v0.6.0-preview: PBFT,
// Bucket-Merkle tree over RocksDB, native chaincode) — plus two
// extension backends on the registry seam: Quorum (geth fork:
// Raft-ordered crash-fault-tolerant consensus, trie state, EVM) and
// Sharded (hash-partitioned state, one Raft group per shard,
// cross-shard two-phase commit).
package platform

import (
	"fmt"
	"os"
	"time"

	"blockbench/internal/analytics"
	"blockbench/internal/crypto"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/ledger"
	"blockbench/internal/metrics"
	"blockbench/internal/node"
	"blockbench/internal/simnet"
	"blockbench/internal/trace"
	"blockbench/internal/txpool"
	"blockbench/internal/types"
)

// Kind selects a platform preset by registry key.
type Kind string

func init() {
	// The paper's three platforms, then the extension backends. Kinds()
	// lists them sorted, so registration order is not load-bearing.
	MustRegister(ethereumPreset())
	MustRegister(parityPreset())
	MustRegister(hyperledgerPreset())
	MustRegister(quorumPreset())
	MustRegister(shardedPreset())
}

// Config sizes and tunes a cluster. Zero values take preset defaults.
// All time defaults are at the repository's 25x scale relative to the
// paper's testbed (see DESIGN.md).
type Config struct {
	Kind      Kind
	Nodes     int
	Contracts []string
	// ClientKeys are the client accounts: registered for signature
	// verification, funded at genesis, and (on Parity) installed in the
	// server keyring.
	ClientKeys     []*crypto.Key
	GenesisBalance uint64
	Net            simnet.Config
	// DataDir switches state storage from in-memory maps to the LSM
	// engine, one directory per node (IOHeavy disk-usage runs).
	DataDir string
	// StoreBackend selects the storage engine explicitly: "mem" (the
	// default) or "lsm". Exposed as -popt store= on the presets that
	// share the default storage policy; -popt storedir=DIR sets DataDir
	// and implies lsm. An LSM run without a DataDir gets an ephemeral
	// temp directory, removed at Cluster.Close.
	StoreBackend string
	// ephemeralData marks DataDir as a temp directory provisioned by
	// fillStoreOptions; Cluster.Close removes it.
	ephemeralData bool
	// AnalyticsIndex toggles the per-node columnar analytics index
	// maintained on the ledger commit path: "" or "on" (the default)
	// builds it and serves node analytics queries; "off" disables it
	// (queries error). Exposed as -popt index= on every preset.
	AnalyticsIndex string

	// Ethereum knobs (Quorum shares CacheEntries; its blocks are
	// batch-bounded like PBFT's, so GasLimit does not apply).
	BlockInterval time.Duration // target PoW interval (default 100ms)
	GasLimit      uint64        // block gas limit (default 650,000)
	CacheEntries  int           // LRU state cache entries (default 4096)
	DisableMining bool          // turn off PoW block production

	// Parity knobs.
	StepDuration time.Duration // PoA step (default 40ms)
	IngestCost   time.Duration // per-tx server processing (default 180ms)
	ParityMemCap int64         // state memory cap (default 256 MiB)

	// Hyperledger knobs (Quorum shares the batching pair).
	BatchSize    int           // txs per consensus batch (default 20)
	BatchTimeout time.Duration // partial-batch timer (default 10ms)
	ViewTimeout  time.Duration // view-change timer (default 400ms)

	// Quorum (Raft) knobs, shared by the sharded preset's per-shard
	// groups. All are exposed as -popt key=val on both presets
	// (heartbeat=, batch=, maxappend=, window=, retain=).
	ElectionTimeout   time.Duration // follower election timeout floor (default 300ms)
	HeartbeatInterval time.Duration // leader heartbeat cadence (default 20ms)
	RaftWindow        int           // uncommitted entries / per-follower pipeline depth (default 64)
	RaftMaxAppend     int           // entries per AppendEntries message (default 32)
	// RaftRetain is the log-compaction retention window in entries:
	// 0 takes the preset default (4096), negative disables compaction
	// (-popt retain=0).
	RaftRetain int
	// RaftLeaseFactor sizes leader leases as Heartbeat×LeaseFactor
	// (default 3, capped at half the election timeout).
	RaftLeaseFactor int

	// Sharded knobs.
	Shards int // shard groups (default min(4, Nodes), clamped to Nodes)
	// Partitioner selects key placement: "hash" (default) or "range"
	// (-popt partitioner=range). PartitionBounds are the range split
	// points (-popt bounds=a,b,c → 4 shards-worth of ranges); when empty
	// the range partitioner splits the key space evenly by leading byte.
	Partitioner     string
	PartitionBounds []string

	// Options carries generic -popt key=val parameters for the selected
	// preset's Fill hook — the platform-side mirror of workload -wopt,
	// so a registered backend can expose tuning (the sharded preset's
	// shards=N) with zero CLI edits. Keys outside the preset's
	// OptionKeys are rejected by New.
	Options map[string]string

	// ExecWorkers is the intra-block parallel execution worker count
	// (-popt workers=N on the presets that own an execution engine:
	// ethereum, parity, quorum, sharded). 0 takes the preset default;
	// 1 is the serial path. The block outcome is byte-identical to
	// serial execution at any worker count (see internal/exec/parallel).
	ExecWorkers int

	// Shared knobs.
	MaxTxsPerBlock    int
	RPCLatency        time.Duration // default 200µs
	ConfirmationDepth *uint64       // override preset confirmation depth
	MemModel          *exec.MemModel
}

// fill applies the platform-independent defaults; preset-specific knobs
// are defaulted by each preset's Fill hook.
func (c *Config) fill() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("platform: cluster needs at least 1 node")
	}
	if c.Net.InboxSize == 0 {
		c.Net = simnet.DefaultConfig()
	}
	if c.RPCLatency == 0 {
		c.RPCLatency = 200 * time.Microsecond
	}
	if len(c.Contracts) == 0 {
		c.Contracts = []string{"ycsb", "smallbank", "donothing"}
	}
	return nil
}

// Cluster is a running N-node deployment of one platform.
type Cluster struct {
	Kind     Kind
	Net      *simnet.Network
	preset   *Preset
	nodes    []*node.Node
	chains   []*ledger.Chain
	stores   []kvstore.Store
	engines  []exec.Engine
	nodeKeys []*crypto.Key
	// providers holds additional per-node counter sources beyond the
	// consensus and execution engines (the intra-block executors).
	providers []metrics.CounterProvider
	// indexers holds each node's analytics indexer (nil entries when
	// the index is disabled).
	indexers []*analytics.Indexer
	// tracer is the cluster-wide lifecycle tracer every component stamps
	// into; disabled until the driver arms it for a run.
	tracer *trace.Tracer
	cfg    Config
}

// Tracer returns the cluster's lifecycle tracer.
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// New builds (but does not start) a cluster of the registered platform
// named by cfg.Kind.
func New(cfg Config) (*Cluster, error) {
	p, err := Lookup(cfg.Kind)
	if err != nil {
		return nil, err
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := p.checkOptions(cfg.Options); err != nil {
		return nil, err
	}
	if p.Fill != nil {
		if err := p.Fill(&cfg); err != nil {
			return nil, err
		}
	}
	c := &Cluster{Kind: cfg.Kind, preset: p, cfg: cfg, tracer: trace.New()}
	c.Net = simnet.New(cfg.Net)

	peers := make([]simnet.NodeID, cfg.Nodes)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	// Node identities are deterministic so repeated runs are comparable.
	env := &Env{
		Authorities: make([]types.Address, cfg.Nodes),
		Keyring:     make(map[types.Address]*crypto.Key, len(cfg.ClientKeys)),
	}
	c.nodeKeys = make([]*crypto.Key, cfg.Nodes)
	for i := range c.nodeKeys {
		c.nodeKeys[i] = crypto.DeterministicKey(uint64(1000 + i))
		env.Authorities[i] = c.nodeKeys[i].Address()
	}

	alloc := make(map[types.Address]uint64, len(cfg.ClientKeys))
	for _, k := range cfg.ClientKeys {
		alloc[k.Address()] = cfg.GenesisBalance
		env.Keyring[k.Address()] = k
	}
	// Every participant is authenticated in a permissioned deployment.
	env.Keys = append(env.Keys, cfg.ClientKeys...)
	env.Keys = append(env.Keys, c.nodeKeys...)

	for i := 0; i < cfg.Nodes; i++ {
		n, err := c.buildNode(i, peers, env, alloc)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// buildNode assembles node i from the preset's hooks.
func (c *Cluster) buildNode(i int, peers []simnet.NodeID, env *Env,
	alloc map[types.Address]uint64) (*node.Node, error) {

	cfg := &c.cfg
	p := c.preset

	openStore := p.OpenStore
	if openStore == nil {
		openStore = defaultOpenStore
	}
	store, err := openStore(cfg, i)
	if err != nil {
		return nil, err
	}
	c.stores = append(c.stores, store)

	mem := exec.MemModel{}
	if p.MemModel != nil {
		mem = p.MemModel(cfg)
	}
	if cfg.MemModel != nil {
		mem = *cfg.MemModel
	}
	eng, err := p.NewEngine(cfg, mem)
	if err != nil {
		return nil, err
	}
	c.engines = append(c.engines, eng)

	factory, stateProviders, err := p.NewStateFactory(cfg, store)
	if err != nil {
		return nil, err
	}
	c.providers = append(c.providers, stateProviders...)
	// Stores that count their own traffic (the LSM engine's gets, bloom
	// skips, flushes, compactions) flow into Report.Counters too.
	if cp, ok := store.(metrics.CounterProvider); ok {
		c.providers = append(c.providers, cp)
	}

	// Per-node registry: verification results are cached per transaction,
	// so sharing one registry would let N-1 nodes skip the signature
	// check the simulation charges each node for.
	reg := env.newRegistry()

	pool := txpool.New(1 << 20)
	pool.SetTracer(c.tracer)
	var ledgerGas uint64
	if p.GasLimit != nil {
		ledgerGas = p.GasLimit(cfg)
	}
	var blockExec ledger.BlockExecutor
	if pex := newBlockExecutor(cfg); pex != nil {
		blockExec = pex
		c.providers = append(c.providers, pex)
	}
	// Analytics indexer: maintained on the commit path unless disabled.
	// It persists through the node's own store, so -popt store=lsm
	// carries the columnar segments on the same engine as state.
	var idx *analytics.Indexer
	if cfg.AnalyticsIndex != "off" {
		idx = analytics.NewIndexer(store, analytics.Options{})
		c.providers = append(c.providers, idx)
	}
	c.indexers = append(c.indexers, idx)

	lcfg := ledger.Config{
		Engine:        eng,
		Parallel:      blockExec,
		StateFactory:  factory,
		Registry:      reg,
		GasLimit:      ledgerGas,
		SupportsForks: p.SupportsForks,
		GenesisAlloc:  alloc,
		OnInclude:     pool.MarkIncluded,
		OnReorg:       pool.Reinject,
		Tracer:        c.tracer,
	}
	if idx != nil {
		lcfg.OnCommit = idx.OnCommit
	}
	chain, err := ledger.New(lcfg)
	if err != nil {
		return nil, err
	}
	c.chains = append(c.chains, chain)

	depth := uint64(0)
	if p.ConfirmationDepth != nil {
		depth = p.ConfirmationDepth(cfg)
	}
	if cfg.ConfirmationDepth != nil {
		depth = *cfg.ConfirmationDepth
	}

	ncfg := node.Config{
		ID:                simnet.NodeID(i),
		Key:               c.nodeKeys[i],
		Net:               c.Net,
		Chain:             chain,
		Pool:              pool,
		Exec:              eng,
		NewConsensus:      p.NewConsensus(cfg, env),
		Peers:             peers,
		RPCLatency:        cfg.RPCLatency,
		ConfirmationDepth: depth,
		Analytics:         idx,
		Tracer:            c.tracer,
	}
	if p.ServerSigns {
		ncfg.ServerSigns = true
		ncfg.IngestCost = cfg.IngestCost
		ncfg.Keyring = env.Keyring
	}
	if p.VerifyIngress {
		ncfg.VerifyIngress = true
		ncfg.Registry = reg
	}
	return node.New(ncfg), nil
}

// ServerSigns reports whether this platform signs transactions inside
// the server (Parity); clients then submit unsigned transactions.
func (c *Cluster) ServerSigns() bool { return c.preset.ServerSigns }

// Start launches every node.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		n.Start()
	}
}

// Stop halts nodes and the network.
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		n.Stop()
	}
	c.Net.Close()
}

// Close releases storage (after Stop) and removes any ephemeral data
// directory provisioned for a -popt store=lsm run.
func (c *Cluster) Close() {
	for _, s := range c.stores {
		s.Close()
	}
	if c.cfg.ephemeralData && c.cfg.DataDir != "" {
		os.RemoveAll(c.cfg.DataDir)
	}
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the i-th node.
func (c *Cluster) Node(i int) *node.Node { return c.nodes[i] }

// Chain returns the i-th node's ledger.
func (c *Cluster) Chain(i int) *ledger.Chain { return c.chains[i] }

// Engine returns the i-th node's execution engine.
func (c *Cluster) Engine(i int) exec.Engine { return c.engines[i] }

// Store returns the i-th node's storage engine.
func (c *Cluster) Store(i int) kvstore.Store { return c.stores[i] }

// Indexer returns node i's analytics indexer (nil when the index is
// disabled via -popt index=off).
func (c *Cluster) Indexer(i int) *analytics.Indexer { return c.indexers[i] }

// Crash stops message delivery to and from node i (crash failure mode).
func (c *Cluster) Crash(i int) { c.Net.Crash(simnet.NodeID(i)) }

// Recover heals a crashed node's connectivity.
func (c *Cluster) Recover(i int) { c.Net.Recover(simnet.NodeID(i)) }

// PartitionHalves splits the cluster into [0, k) and [k, N) — the
// double-spending attack simulation from §3.3.
func (c *Cluster) PartitionHalves(k int) {
	var a []simnet.NodeID
	for i := 0; i < k; i++ {
		a = append(a, simnet.NodeID(i))
	}
	c.Net.Partition(a)
}

// Heal removes a partition.
func (c *Cluster) Heal() { c.Net.Heal() }

// SetDelay injects extra message delay at the given nodes.
func (c *Cluster) SetDelay(d time.Duration, nodes ...int) {
	ids := make([]simnet.NodeID, len(nodes))
	for i, n := range nodes {
		ids[i] = simnet.NodeID(n)
	}
	c.Net.SetDelay(d, ids...)
}

// NodeHeight returns node i's confirmed chain height (the schedule
// package's growth triggers key fault timelines off it).
func (c *Cluster) NodeHeight(i int) uint64 { return c.chains[i].Height() }

// Counters aggregates every engine counter the cluster's nodes expose:
// each node's consensus engine and execution engine is asked for its
// metrics.CounterProvider map and same-named counters are summed across
// nodes. Engines that expose no counters contribute nothing — there is
// no per-backend case here, so any platform registered through the
// preset registry flows into Report.Counters automatically.
func (c *Cluster) Counters() map[string]uint64 {
	out := make(map[string]uint64)
	add := func(v any) {
		if p, ok := v.(metrics.CounterProvider); ok {
			for k, n := range p.Counters() {
				out[k] += n
			}
		}
	}
	for i, n := range c.nodes {
		add(n.Consensus())
		add(c.engines[i])
	}
	for _, p := range c.providers {
		add(p)
	}
	return out
}

// chainPartitioned is implemented by consensus engines that keep one
// canonical chain per shard group (the sharded platform) rather than
// one for the whole cluster.
type chainPartitioned interface{ Shard() int }

// ForkStats reports the security metric of §3.3: the number of blocks
// generated on any branch (unioned across nodes) versus the length of
// the agreed canonical structure. On single-chain platforms that is the
// longest chain; on a partitioned platform each shard group contributes
// its own canonical chain, so the lengths sum — disjoint shard chains
// are not forks of each other.
func (c *Cluster) ForkStats() (total, mainChain uint64) {
	seen := make(map[types.Hash]struct{})
	longest := make(map[int]uint64)
	for i, ch := range c.chains {
		for _, h := range ch.KnownHashes() {
			seen[h] = struct{}{}
		}
		shard := 0
		if p, ok := c.nodes[i].Consensus().(chainPartitioned); ok {
			shard = p.Shard()
		}
		if ht := ch.Height(); ht > longest[shard] {
			longest[shard] = ht
		}
	}
	for _, ht := range longest {
		mainChain += ht
	}
	return uint64(len(seen)), mainChain
}

// Preload force-appends blocks built from the given transaction batches
// to every node, bypassing consensus — used to seed the analytics
// workload's historical chain quickly ("we pre-loaded them with 100,000
// blocks"). Transactions must already be signed. Roots are left zero so
// every chain executes and commits the batch exactly once on Append
// (platforms without state versioning share one live state database).
func (c *Cluster) Preload(batches [][]*types.Transaction) error {
	for _, txs := range batches {
		head := c.chains[0].Head()
		b := &types.Block{
			Header: types.Header{
				Number:     head.Number() + 1,
				ParentHash: head.Hash(),
				Time:       int64(head.Number() + 1),
				Difficulty: 1,
			},
			Txs: txs,
		}
		for _, ch := range c.chains {
			if err := ch.Append(b); err != nil {
				return err
			}
		}
	}
	return nil
}
