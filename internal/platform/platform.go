// Package platform wires the substrate packages into the three blockchain
// presets the paper evaluates — Ethereum (geth v1.4.18: PoW, Patricia-
// Merkle trie over LevelDB with an LRU state cache, EVM), Parity (v1.6.0:
// Proof-of-Authority, all state pinned in memory, EVM, server-side
// transaction signing) and Hyperledger Fabric (v0.6.0-preview: PBFT,
// Bucket-Merkle tree over RocksDB, native chaincode) — and runs N-node
// clusters of them over the simulated network.
package platform

import (
	"fmt"
	"path/filepath"
	"time"

	"blockbench/internal/bmt"
	"blockbench/internal/consensus"
	"blockbench/internal/consensus/pbft"
	"blockbench/internal/consensus/poa"
	"blockbench/internal/consensus/pow"
	"blockbench/internal/contracts"
	"blockbench/internal/crypto"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/ledger"
	"blockbench/internal/node"
	"blockbench/internal/simnet"
	"blockbench/internal/state"
	"blockbench/internal/txpool"
	"blockbench/internal/types"
)

// Kind selects a platform preset.
type Kind string

// The three systems under study.
const (
	Ethereum    Kind = "ethereum"
	Parity      Kind = "parity"
	Hyperledger Kind = "hyperledger"
)

// Kinds lists all presets.
func Kinds() []Kind { return []Kind{Ethereum, Parity, Hyperledger} }

// Config sizes and tunes a cluster. Zero values take preset defaults.
// All time defaults are at the repository's 25x scale relative to the
// paper's testbed (see DESIGN.md).
type Config struct {
	Kind      Kind
	Nodes     int
	Contracts []string
	// ClientKeys are the client accounts: registered for signature
	// verification, funded at genesis, and (on Parity) installed in the
	// server keyring.
	ClientKeys     []*crypto.Key
	GenesisBalance uint64
	Net            simnet.Config
	// DataDir switches state storage from in-memory maps to the LSM
	// engine, one directory per node (IOHeavy disk-usage runs).
	DataDir string

	// Ethereum knobs.
	BlockInterval time.Duration // target PoW interval (default 100ms)
	GasLimit      uint64        // block gas limit (default 650,000)
	CacheEntries  int           // LRU state cache entries (default 4096)
	DisableMining bool          // turn off PoW block production

	// Parity knobs.
	StepDuration time.Duration // PoA step (default 40ms)
	IngestCost   time.Duration // per-tx server processing (default 180ms)
	ParityMemCap int64         // state memory cap (default 256 MiB)

	// Hyperledger knobs.
	BatchSize    int           // txs per PBFT batch (default 20)
	BatchTimeout time.Duration // partial-batch timer (default 10ms)
	ViewTimeout  time.Duration // view-change timer (default 400ms)

	// Shared knobs.
	MaxTxsPerBlock    int
	RPCLatency        time.Duration // default 200µs
	ConfirmationDepth *uint64       // override preset confirmation depth
	MemModel          *exec.MemModel
}

func (c *Config) fill() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("platform: cluster needs at least 1 node")
	}
	if c.Net.InboxSize == 0 {
		c.Net = simnet.DefaultConfig()
	}
	if c.BlockInterval <= 0 {
		c.BlockInterval = 100 * time.Millisecond
	}
	if c.GasLimit == 0 {
		c.GasLimit = 650_000
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.StepDuration <= 0 {
		c.StepDuration = 40 * time.Millisecond
	}
	if c.IngestCost <= 0 {
		c.IngestCost = 180 * time.Millisecond
	}
	if c.ParityMemCap == 0 {
		c.ParityMemCap = 256 << 20
	}
	if c.BatchSize == 0 {
		c.BatchSize = 20
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 15 * time.Millisecond
	}
	if c.ViewTimeout <= 0 {
		c.ViewTimeout = 400 * time.Millisecond
	}
	if c.RPCLatency == 0 {
		c.RPCLatency = 200 * time.Microsecond
	}
	if len(c.Contracts) == 0 {
		c.Contracts = []string{"ycsb", "smallbank", "donothing"}
	}
	return nil
}

// defaultMemModel returns the per-platform simulated memory model fitted
// to the paper's CPUHeavy measurements at the repository's 1/100 input
// scale (see EXPERIMENTS.md).
func defaultMemModel(kind Kind) exec.MemModel {
	switch kind {
	case Ethereum:
		// geth: ~2.1 KB resident per sorted element (22.8 GB at 10M).
		return exec.MemModel{Base: 20 << 20, Factor: 262, Cap: 320 << 20}
	case Parity:
		// Parity: ~135 B per element (13 GB at 100M).
		return exec.MemModel{Base: 6 << 20, Factor: 17, Cap: 320 << 20}
	default:
		return exec.MemModel{}
	}
}

// Cluster is a running N-node deployment of one platform.
type Cluster struct {
	Kind  Kind
	Net   *simnet.Network
	nodes []*node.Node
	chains []*ledger.Chain
	stores []kvstore.Store
	engines []exec.Engine
	nodeKeys []*crypto.Key
	cfg    Config
}

// New builds (but does not start) a cluster.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Cluster{Kind: cfg.Kind, cfg: cfg}
	c.Net = simnet.New(cfg.Net)

	peers := make([]simnet.NodeID, cfg.Nodes)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	// Node identities are deterministic so repeated runs are comparable.
	authorities := make([]types.Address, cfg.Nodes)
	c.nodeKeys = make([]*crypto.Key, cfg.Nodes)
	for i := range c.nodeKeys {
		c.nodeKeys[i] = crypto.DeterministicKey(uint64(1000 + i))
		authorities[i] = c.nodeKeys[i].Address()
	}

	alloc := make(map[types.Address]uint64, len(cfg.ClientKeys))
	keyring := make(map[types.Address]*crypto.Key, len(cfg.ClientKeys))
	for _, k := range cfg.ClientKeys {
		alloc[k.Address()] = cfg.GenesisBalance
		keyring[k.Address()] = k
	}

	for i := 0; i < cfg.Nodes; i++ {
		n, err := c.buildNode(i, peers, authorities, alloc, keyring)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

func (c *Cluster) openStore(i int) (kvstore.Store, error) {
	cfg := c.cfg
	if cfg.Kind == Parity {
		// "In Parity, the entire block content is kept in memory" — a
		// capped in-memory store; exhausting it is the paper's OOM 'X'.
		s := kvstore.NewMemCapped(cfg.ParityMemCap)
		c.stores = append(c.stores, s)
		return s, nil
	}
	if cfg.DataDir == "" {
		s := kvstore.NewMem()
		c.stores = append(c.stores, s)
		return s, nil
	}
	s, err := kvstore.OpenLSM(filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", i)), kvstore.LSMOptions{})
	if err != nil {
		return nil, err
	}
	c.stores = append(c.stores, s)
	return s, nil
}

func (c *Cluster) buildNode(i int, peers []simnet.NodeID, authorities []types.Address,
	alloc map[types.Address]uint64, keyring map[types.Address]*crypto.Key) (*node.Node, error) {

	cfg := c.cfg
	store, err := c.openStore(i)
	if err != nil {
		return nil, err
	}

	// Execution engine.
	var eng exec.Engine
	mem := defaultMemModel(cfg.Kind)
	if cfg.MemModel != nil {
		mem = *cfg.MemModel
	}
	if cfg.Kind == Hyperledger {
		eng, err = exec.NewNativeEngine(cfg.Contracts...)
	} else {
		// Chaincode-only contracts (VersionKVStore) have no EVM build;
		// deploy only what the platform can run, as in the paper.
		var evmNames []string
		for _, name := range cfg.Contracts {
			spec, lerr := contracts.Lookup(name)
			if lerr != nil {
				return nil, lerr
			}
			if spec.EVM != nil {
				evmNames = append(evmNames, name)
			}
		}
		eng, err = exec.NewEVMEngine(mem, evmNames...)
	}
	if err != nil {
		return nil, err
	}
	c.engines = append(c.engines, eng)

	// State factory.
	var factory func(root types.Hash) (*state.DB, error)
	switch cfg.Kind {
	case Ethereum:
		// One long-lived LRU per node, shared across block executions —
		// geth's partial in-memory state ("using LRU for eviction").
		var cache *state.SharedCache
		if cfg.CacheEntries > 0 {
			cache = state.NewSharedCache(cfg.CacheEntries)
		}
		factory = func(root types.Hash) (*state.DB, error) {
			b, err := state.NewTrieBackendShared(store, root, cache)
			if err != nil {
				return nil, err
			}
			return state.NewDB(b), nil
		}
	case Parity:
		factory = func(root types.Hash) (*state.DB, error) {
			b, err := state.NewTrieBackend(store, root, 0)
			if err != nil {
				return nil, err
			}
			return state.NewDB(b), nil
		}
	case Hyperledger:
		// Bucket tree keeps no versions: one long-lived DB per node.
		b, err := state.NewBucketBackend(store, bmt.Options{})
		if err != nil {
			return nil, err
		}
		db := state.NewDB(b)
		factory = func(types.Hash) (*state.DB, error) { return db, nil }
	default:
		return nil, fmt.Errorf("platform: unknown kind %q", cfg.Kind)
	}

	// Every participant is authenticated in a permissioned deployment.
	reg := crypto.NewRegistry()
	for _, k := range cfg.ClientKeys {
		reg.Add(k)
	}
	for _, k := range c.nodeKeys {
		reg.Add(k)
	}

	pool := txpool.New(1 << 20)
	// Only Ethereum bounds blocks by gas; Parity's block size is set by
	// stepDuration and Hyperledger's by the PBFT batch size.
	ledgerGas := uint64(0)
	if cfg.Kind == Ethereum {
		ledgerGas = cfg.GasLimit
	}
	chain, err := ledger.New(ledger.Config{
		Engine:        eng,
		StateFactory:  factory,
		Registry:      reg,
		GasLimit:      ledgerGas,
		SupportsForks: cfg.Kind != Hyperledger,
		GenesisAlloc:  alloc,
		OnInclude:     pool.MarkIncluded,
		OnReorg:       pool.Reinject,
	})
	if err != nil {
		return nil, err
	}
	c.chains = append(c.chains, chain)

	newCons := func(ctx consensus.Context) consensus.Engine {
		switch cfg.Kind {
		case Ethereum:
			opts := pow.DefaultOptions()
			opts.TargetInterval = cfg.BlockInterval
			opts.GasLimit = cfg.GasLimit
			opts.MaxTxsPerBlock = cfg.MaxTxsPerBlock
			opts.Mine = !cfg.DisableMining
			return pow.New(ctx, opts)
		case Parity:
			return poa.New(ctx, poa.Options{
				StepDuration:   cfg.StepDuration,
				Authorities:    authorities,
				MaxTxsPerBlock: cfg.MaxTxsPerBlock,
			})
		default:
			opts := pbft.DefaultOptions()
			opts.BatchSize = cfg.BatchSize
			opts.BatchTimeout = cfg.BatchTimeout
			opts.ViewTimeout = cfg.ViewTimeout
			return pbft.New(ctx, opts)
		}
	}

	depth := uint64(0)
	switch cfg.Kind {
	case Ethereum:
		depth = 2 // confirmationLength: 5s paper / 2.5s blocks, scaled
	case Parity:
		depth = 5 // 5s / 1s steps, scaled
	}
	if cfg.ConfirmationDepth != nil {
		depth = *cfg.ConfirmationDepth
	}

	ncfg := node.Config{
		ID:                simnet.NodeID(i),
		Key:               c.nodeKeys[i],
		Net:               c.Net,
		Chain:             chain,
		Pool:              pool,
		Exec:              eng,
		NewConsensus:      newCons,
		Peers:             peers,
		RPCLatency:        cfg.RPCLatency,
		ConfirmationDepth: depth,
	}
	if cfg.Kind == Parity {
		ncfg.ServerSigns = true
		ncfg.IngestCost = cfg.IngestCost
		ncfg.Keyring = keyring
	}
	if cfg.Kind == Hyperledger {
		// Fabric validates transactions as they arrive; the work lands
		// on the node's message-processing thread.
		ncfg.VerifyIngress = true
		ncfg.Registry = reg
	}
	return node.New(ncfg), nil
}

// Start launches every node.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		n.Start()
	}
}

// Stop halts nodes and the network.
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		n.Stop()
	}
	c.Net.Close()
}

// Close releases storage (after Stop).
func (c *Cluster) Close() {
	for _, s := range c.stores {
		s.Close()
	}
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the i-th node.
func (c *Cluster) Node(i int) *node.Node { return c.nodes[i] }

// Chain returns the i-th node's ledger.
func (c *Cluster) Chain(i int) *ledger.Chain { return c.chains[i] }

// Engine returns the i-th node's execution engine.
func (c *Cluster) Engine(i int) exec.Engine { return c.engines[i] }

// Store returns the i-th node's storage engine.
func (c *Cluster) Store(i int) kvstore.Store { return c.stores[i] }

// Crash stops message delivery to and from node i (crash failure mode).
func (c *Cluster) Crash(i int) { c.Net.Crash(simnet.NodeID(i)) }

// Recover heals a crashed node's connectivity.
func (c *Cluster) Recover(i int) { c.Net.Recover(simnet.NodeID(i)) }

// PartitionHalves splits the cluster into [0, k) and [k, N) — the
// double-spending attack simulation from §3.3.
func (c *Cluster) PartitionHalves(k int) {
	var a []simnet.NodeID
	for i := 0; i < k; i++ {
		a = append(a, simnet.NodeID(i))
	}
	c.Net.Partition(a)
}

// Heal removes a partition.
func (c *Cluster) Heal() { c.Net.Heal() }

// ForkStats reports the security metric of §3.3: the number of blocks
// generated on any branch (unioned across nodes) versus the length of
// the agreed main chain.
func (c *Cluster) ForkStats() (total, mainChain uint64) {
	seen := make(map[types.Hash]struct{})
	for _, ch := range c.chains {
		for _, h := range ch.KnownHashes() {
			seen[h] = struct{}{}
		}
		if ht := ch.Height(); ht > mainChain {
			mainChain = ht
		}
	}
	return uint64(len(seen)), mainChain
}

// Preload force-appends blocks built from the given transaction batches
// to every node, bypassing consensus — used to seed the analytics
// workload's historical chain quickly ("we pre-loaded them with 100,000
// blocks"). Transactions must already be signed. Roots are left zero so
// every chain executes and commits the batch exactly once on Append
// (platforms without state versioning share one live state database).
func (c *Cluster) Preload(batches [][]*types.Transaction) error {
	for _, txs := range batches {
		head := c.chains[0].Head()
		b := &types.Block{
			Header: types.Header{
				Number:     head.Number() + 1,
				ParentHash: head.Hash(),
				Time:       int64(head.Number() + 1),
				Difficulty: 1,
			},
			Txs: txs,
		}
		for _, ch := range c.chains {
			if err := ch.Append(b); err != nil {
				return err
			}
		}
	}
	return nil
}
