package platform

import (
	"sort"
	"strings"
	"testing"

	"blockbench/internal/exec"
)

// stubPreset returns a minimal valid preset under the given kind.
func stubPreset(kind Kind) *Preset {
	base := ethereumPreset()
	base.Kind = kind
	base.Describe = "test stub"
	return base
}

func TestRegisterDuplicateKindErrors(t *testing.T) {
	kind := Kind("registry-test-dup")
	// The registry is process-global, so a previous run of this test (go
	// test -count=N) may already have claimed the kind.
	if err := Register(stubPreset(kind)); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("first Register: %v", err)
	}
	err := Register(stubPreset(kind))
	if err == nil {
		t.Fatal("duplicate Register accepted")
	}
	if !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("unexpected duplicate error: %v", err)
	}
}

func TestRegisterRejectsInvalidPresets(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Fatal("nil preset accepted")
	}
	if err := Register(&Preset{}); err == nil {
		t.Fatal("empty kind accepted")
	}
	p := stubPreset("registry-test-incomplete")
	p.NewConsensus = nil
	if err := Register(p); err == nil {
		t.Fatal("preset without consensus factory accepted")
	}
}

func TestNewUnknownKindErrors(t *testing.T) {
	_, err := New(Config{Kind: "no-such-platform", Nodes: 2})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	if !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The error names the registered kinds so -platform typos are
	// self-explaining.
	if !strings.Contains(err.Error(), string(Quorum)) {
		t.Fatalf("error does not list registered kinds: %v", err)
	}
}

func TestKindsIncludeAllBuiltins(t *testing.T) {
	have := make(map[Kind]bool)
	for _, k := range Kinds() {
		have[k] = true
	}
	for _, k := range []Kind{Ethereum, Parity, Hyperledger, Quorum, Sharded} {
		if !have[k] {
			t.Fatalf("builtin %q missing from Kinds(): %v", k, Kinds())
		}
		if Describe(k) == "" {
			t.Fatalf("builtin %q has no description", k)
		}
	}
}

// TestKindsSortedAndStable: the listing is sorted, so help text, smoke
// jobs and experiment columns are deterministic regardless of init
// (registration) order.
func TestKindsSortedAndStable(t *testing.T) {
	kinds := Kinds()
	if !sort.SliceIsSorted(kinds, func(i, j int) bool { return kinds[i] < kinds[j] }) {
		t.Fatalf("Kinds() not sorted: %v", kinds)
	}
	again := Kinds()
	if len(again) != len(kinds) {
		t.Fatalf("Kinds() unstable: %v vs %v", kinds, again)
	}
	for i := range kinds {
		if kinds[i] != again[i] {
			t.Fatalf("Kinds() unstable at %d: %v vs %v", i, kinds, again)
		}
	}
}

// TestBootAllBuiltinPlatforms is the registry smoke test: every builtin
// preset assembles, starts, commits a short YCSB run through consensus,
// and shuts down.
func TestBootAllBuiltinPlatforms(t *testing.T) {
	for _, kind := range []Kind{Ethereum, Parity, Hyperledger, Quorum} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			runCommitTest(t, kind, 4, 20)
		})
	}
}

// TestPresetHooksDriveNodeAssembly spot-checks that preset flags reach
// the assembled cluster (server-side signing, execution engines).
func TestPresetHooksDriveNodeAssembly(t *testing.T) {
	keys := clientKeys(1)
	for _, tc := range []struct {
		kind        Kind
		serverSigns bool
		native      bool
	}{
		{Ethereum, false, false},
		{Parity, true, false},
		{Hyperledger, false, true},
		{Quorum, false, false},
		{Sharded, false, false},
	} {
		c, err := New(fastConfig(tc.kind, 2, keys))
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if c.ServerSigns() != tc.serverSigns {
			t.Errorf("%s: ServerSigns = %v", tc.kind, c.ServerSigns())
		}
		_, isNative := c.Engine(0).(*exec.NativeEngine)
		if isNative != tc.native {
			t.Errorf("%s: native engine = %v", tc.kind, isNative)
		}
		c.Stop()
		c.Close()
	}
}
