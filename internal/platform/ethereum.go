package platform

import (
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/consensus/pow"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/metrics"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

// Ethereum is the geth v1.4.18 preset: proof-of-work consensus,
// Patricia-Merkle trie state over the key-value store with a shared LRU
// cache, EVM execution.
const Ethereum Kind = "ethereum"

func ethereumPreset() *Preset {
	return &Preset{
		Kind:          Ethereum,
		Describe:      "geth v1.4.18: PoW, Patricia-Merkle trie + LRU state cache, EVM",
		SupportsForks: true,
		OptionKeys: append(append(append([]string{}, storeOptionKeys...), execOptionKeys...),
			analyticsOptionKeys...),
		Fill: func(cfg *Config) error {
			if cfg.BlockInterval <= 0 {
				cfg.BlockInterval = 100 * time.Millisecond
			}
			if cfg.GasLimit == 0 {
				cfg.GasLimit = 650_000
			}
			if cfg.CacheEntries == 0 {
				cfg.CacheEntries = 4096
			}
			if err := fillStoreOptions(cfg); err != nil {
				return err
			}
			if err := fillExecWorkers(cfg); err != nil {
				return err
			}
			return fillAnalyticsOption(cfg)
		},
		MemModel:        gethMemModel,
		NewEngine:       newEVMEngine,
		NewStateFactory: trieSharedStateFactory,
		// Only Ethereum-lineage PoW bounds blocks by gas; Parity's block
		// size is set by stepDuration and Hyperledger's by batch size.
		GasLimit: func(cfg *Config) uint64 { return cfg.GasLimit },
		// confirmationLength: 5s paper / 2.5s blocks, scaled.
		ConfirmationDepth: func(*Config) uint64 { return 2 },
		NewConsensus: func(cfg *Config, _ *Env) func(consensus.Context) consensus.Engine {
			return func(ctx consensus.Context) consensus.Engine {
				opts := pow.DefaultOptions()
				opts.TargetInterval = cfg.BlockInterval
				opts.GasLimit = cfg.GasLimit
				opts.MaxTxsPerBlock = cfg.MaxTxsPerBlock
				opts.Mine = !cfg.DisableMining
				return pow.New(ctx, opts)
			}
		},
	}
}

// newEVMEngine builds an EVM execution engine over the subset of
// cfg.Contracts that have an EVM build.
func newEVMEngine(cfg *Config, mem exec.MemModel) (exec.Engine, error) {
	names, err := evmContracts(cfg)
	if err != nil {
		return nil, err
	}
	return exec.NewEVMEngine(mem, names...)
}

// gethMemModel is the geth-lineage memory cost model shared by the
// Ethereum and Quorum presets: ~2.1 KB resident per sorted element
// (22.8 GB at 10M), fitted to the paper's CPUHeavy runs at 1/100 input
// scale.
func gethMemModel(*Config) exec.MemModel {
	return exec.MemModel{Base: 20 << 20, Factor: 262, Cap: 320 << 20}
}

// trieSharedStateFactory is the geth-lineage state organization shared
// by the Ethereum, Quorum and Sharded presets: a Patricia-Merkle trie
// over the node's store with one long-lived LRU node cache per node,
// shared across block executions — geth's partial in-memory state
// ("using LRU for eviction") — plus a flat snapshot layer in front of
// the trie so head-state point reads cost one lookup instead of a
// nibble walk over ever-deeper history. Roots are computed by the trie
// alone, so they are byte-identical with or without the flat layer;
// the layer's hit/miss counters surface as store.flat_* in reports.
func trieSharedStateFactory(cfg *Config, store kvstore.Store) (StateFactory, []metrics.CounterProvider, error) {
	var cache *state.SharedCache
	if cfg.CacheEntries > 0 {
		cache = state.NewSharedCache(cfg.CacheEntries)
	}
	flat := state.NewFlatState(store, cfg.CacheEntries)
	factory := func(root types.Hash) (*state.DB, error) {
		b, err := state.NewFlatBackend(store, root, cache, flat)
		if err != nil {
			return nil, err
		}
		return state.NewDB(b), nil
	}
	return factory, []metrics.CounterProvider{flat}, nil
}
