package platform

import (
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/consensus/poa"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/metrics"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

// Parity is the Parity v1.6.0 preset: Proof-of-Authority consensus, all
// state pinned in memory, EVM execution, server-side transaction
// signing (the bottleneck the paper identified).
const Parity Kind = "parity"

func parityPreset() *Preset {
	return &Preset{
		Kind:          Parity,
		Describe:      "Parity v1.6.0: PoA, state pinned in memory, EVM, server-side signing",
		ServerSigns:   true,
		SupportsForks: true,
		OptionKeys: append(append(append([]string{}, storeOptionKeys...), execOptionKeys...),
			analyticsOptionKeys...),
		Fill: func(cfg *Config) error {
			if cfg.StepDuration <= 0 {
				cfg.StepDuration = 40 * time.Millisecond
			}
			if cfg.IngestCost <= 0 {
				cfg.IngestCost = 180 * time.Millisecond
			}
			if cfg.ParityMemCap == 0 {
				cfg.ParityMemCap = 256 << 20
			}
			if err := fillStoreOptions(cfg); err != nil {
				return err
			}
			if err := fillExecWorkers(cfg); err != nil {
				return err
			}
			return fillAnalyticsOption(cfg)
		},
		// Parity: ~135 B per element (13 GB at 100M), at 1/100 scale.
		MemModel: func(*Config) exec.MemModel {
			return exec.MemModel{Base: 6 << 20, Factor: 17, Cap: 320 << 20}
		},
		OpenStore: func(cfg *Config, i int) (kvstore.Store, error) {
			// "In Parity, the entire block content is kept in memory" — a
			// capped in-memory store; exhausting it is the paper's OOM 'X'.
			// -popt store=lsm swaps in the shared disk-backed policy to
			// measure the pinned-memory model against bounded memory.
			if cfg.StoreBackend == "lsm" {
				return defaultOpenStore(cfg, i)
			}
			return kvstore.NewMemCapped(cfg.ParityMemCap), nil
		},
		NewEngine: newEVMEngine,
		NewStateFactory: func(cfg *Config, store kvstore.Store) (StateFactory, []metrics.CounterProvider, error) {
			return func(root types.Hash) (*state.DB, error) {
				b, err := state.NewTrieBackend(store, root, 0)
				if err != nil {
					return nil, err
				}
				return state.NewDB(b), nil
			}, nil, nil
		},
		// 5s confirmation / 1s steps, scaled.
		ConfirmationDepth: func(*Config) uint64 { return 5 },
		NewConsensus: func(cfg *Config, env *Env) func(consensus.Context) consensus.Engine {
			return func(ctx consensus.Context) consensus.Engine {
				return poa.New(ctx, poa.Options{
					StepDuration:   cfg.StepDuration,
					Authorities:    env.Authorities,
					MaxTxsPerBlock: cfg.MaxTxsPerBlock,
				})
			}
		},
	}
}
