// Package sharding implements the partitioned execution subsystem: a
// Partitioner that maps workload keys onto S shards, contract-aware key
// extraction, and a per-node Engine that runs one consensus group per
// shard (reusing the Raft engine) with a two-phase-commit coordinator
// for transactions that touch more than one shard. Single-shard
// transactions bypass 2PC entirely — they are forwarded to their shard
// group in key-affinity batches and ordered by that group's consensus
// alone, which is where the throughput scaling comes from: S groups
// order, execute and commit independently.
//
// This is the database-style scaling technique the paper's conclusion
// calls out as missing from private blockchains ("sharding" first among
// them); the cross-shard commit path follows the coordinator/participant
// shape of partitioned OLTP systems (H-Store, Lotus): prepare locks the
// touched keys at every participant shard, a unanimous vote commits,
// any refusal or timeout aborts and the coordinator retries with
// backoff.
package sharding

import (
	"bytes"
	"fmt"
	"sort"

	"blockbench/internal/simnet"
	"blockbench/internal/types"
)

// Partitioner assigns workload keys to shards. Implementations must be
// deterministic and safe for concurrent use: every node of the cluster
// routes with its own copy and they must all agree.
type Partitioner interface {
	// Shards returns the number of shards keys are spread over.
	Shards() int
	// Shard returns the shard owning key, in [0, Shards()).
	Shard(key []byte) int
}

// HashPartitioner spreads keys by FNV-1a hash — the default placement:
// skewed request distributions (YCSB's zipfian) still land evenly
// because popularity is uncorrelated with hash value.
type HashPartitioner struct{ n int }

// NewHashPartitioner builds a hash partitioner over n shards.
func NewHashPartitioner(n int) HashPartitioner {
	if n < 1 {
		n = 1
	}
	return HashPartitioner{n: n}
}

// Shards implements Partitioner.
func (p HashPartitioner) Shards() int { return p.n }

// Shard implements Partitioner.
func (p HashPartitioner) Shard(key []byte) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range key {
		h ^= uint32(b)
		h *= prime32
	}
	return int(h % uint32(p.n))
}

// RangePartitioner splits the key space at explicit boundaries: shard i
// owns keys in [bounds[i-1], bounds[i]) under bytewise comparison, with
// the first shard open below and the last open above. Range placement
// keeps adjacent keys co-located (scan workloads) at the price of
// hotspot sensitivity.
type RangePartitioner struct{ bounds [][]byte }

// NewRangePartitioner builds a range partitioner with len(bounds)+1
// shards from ascending split points.
func NewRangePartitioner(bounds ...[]byte) RangePartitioner {
	cp := make([][]byte, len(bounds))
	for i, b := range bounds {
		cp[i] = append([]byte(nil), b...)
	}
	sort.Slice(cp, func(i, j int) bool { return bytes.Compare(cp[i], cp[j]) < 0 })
	return RangePartitioner{bounds: cp}
}

// Shards implements Partitioner.
func (p RangePartitioner) Shards() int { return len(p.bounds) + 1 }

// Shard implements Partitioner.
func (p RangePartitioner) Shard(key []byte) int {
	return sort.Search(len(p.bounds), func(i int) bool {
		return bytes.Compare(key, p.bounds[i]) < 0
	})
}

// Groups partitions the sorted peer set into s contiguous shard groups
// of near-equal size (the first len(peers)%s groups take the extra
// node). It panics on an empty peer set; s is clamped to [1, len(peers)].
func Groups(peers []simnet.NodeID, s int) [][]simnet.NodeID {
	if len(peers) == 0 {
		panic("sharding: Groups of empty peer set")
	}
	sorted := append([]simnet.NodeID(nil), peers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if s < 1 {
		s = 1
	}
	if s > len(sorted) {
		s = len(sorted)
	}
	groups := make([][]simnet.NodeID, s)
	base, extra := len(sorted)/s, len(sorted)%s
	at := 0
	for i := range groups {
		n := base
		if i < extra {
			n++
		}
		groups[i] = sorted[at : at+n]
		at += n
	}
	return groups
}

// GroupOf returns the index of the group containing id, or -1.
func GroupOf(groups [][]simnet.NodeID, id simnet.NodeID) int {
	for i, g := range groups {
		for _, m := range g {
			if m == id {
				return i
			}
		}
	}
	return -1
}

// TouchedShards returns the sorted, de-duplicated set of shards a
// transaction's keys land on. A transaction without extractable keys
// (unknown contract, plain value transfer) is pinned to a home shard
// derived from its content hash, so it stays single-shard.
func TouchedShards(p Partitioner, tx *types.Transaction) []int {
	keys := ContractKeys(tx.Contract, tx.Method, tx.Args)
	if len(keys) == 0 {
		h := tx.Hash()
		return []int{p.Shard(h[:])}
	}
	seen := make(map[int]struct{}, 2)
	var out []int
	for _, k := range keys {
		s := p.Shard(k)
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// localKeys filters a transaction's keys down to those owned by shard s.
func localKeys(p Partitioner, tx *types.Transaction, s int) [][]byte {
	var out [][]byte
	for _, k := range ContractKeys(tx.Contract, tx.Method, tx.Args) {
		if p.Shard(k) == s {
			out = append(out, k)
		}
	}
	return out
}

func (p HashPartitioner) String() string  { return fmt.Sprintf("hash/%d", p.n) }
func (p RangePartitioner) String() string { return fmt.Sprintf("range/%d", p.Shards()) }
