package sharding

import "sync"

// KeysFunc extracts the state keys one contract call addresses, from
// its method name and raw arguments. Returning nil means "no statically
// known keys": the router pins such transactions to a home shard by
// content hash instead of coordinating across shards.
type KeysFunc func(method string, args [][]byte) [][]byte

var (
	keysMu    sync.RWMutex
	keysFuncs = map[string]KeysFunc{}
)

// RegisterContractKeys installs the key extractor for a contract. The
// built-in YCSB and Smallbank extractors register in this package's
// init; framework users add their own contracts the same way. Workload
// KeyOf hints (blockbench.KeyedWorkload) should delegate here so the
// partitioner skew tooling and the router agree on placement.
func RegisterContractKeys(contract string, fn KeysFunc) {
	keysMu.Lock()
	defer keysMu.Unlock()
	keysFuncs[contract] = fn
}

// ContractKeys returns the state keys a contract call addresses (nil if
// the contract has no registered extractor).
func ContractKeys(contract, method string, args [][]byte) [][]byte {
	keysMu.RLock()
	fn := keysFuncs[contract]
	keysMu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(method, args)
}

func init() {
	// YCSB: every mutating or reading method addresses the single key in
	// args[0] (write key value / read key / delete key).
	RegisterContractKeys("ycsb", func(method string, args [][]byte) [][]byte {
		if len(args) == 0 {
			return nil
		}
		return args[:1]
	})
	// Smallbank: accounts are the partitioning unit. The savings and
	// checking rows of one account share its id (the chaincode prefixes
	// "s:"/"c:" internally), so partitioning on the raw account id keeps
	// both rows co-located. sendPayment and amalgamate touch two
	// accounts; everything else touches one.
	RegisterContractKeys("smallbank", func(method string, args [][]byte) [][]byte {
		switch method {
		case "sendPayment", "amalgamate":
			if len(args) < 2 {
				return nil
			}
			return args[:2]
		default:
			if len(args) == 0 {
				return nil
			}
			return args[:1]
		}
	})
}
