package sharding

import (
	"testing"

	"blockbench/internal/simnet"
	"blockbench/internal/types"
)

func TestHashPartitionerRangeAndDeterminism(t *testing.T) {
	p := NewHashPartitioner(4)
	if p.Shards() != 4 {
		t.Fatalf("Shards = %d", p.Shards())
	}
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		k := []byte{byte(i), byte(i >> 8)}
		s := p.Shard(k)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		if s != p.Shard(k) {
			t.Fatal("non-deterministic placement")
		}
		seen[s] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 shards used", len(seen))
	}
}

func TestRangePartitioner(t *testing.T) {
	p := NewRangePartitioner([]byte("m"), []byte("t"))
	if p.Shards() != 3 {
		t.Fatalf("Shards = %d", p.Shards())
	}
	for _, tc := range []struct {
		key  string
		want int
	}{
		{"", 0}, {"a", 0}, {"lzz", 0}, {"m", 1}, {"pig", 1}, {"szz", 1}, {"t", 2}, {"zebra", 2},
	} {
		if got := p.Shard([]byte(tc.key)); got != tc.want {
			t.Fatalf("Shard(%q) = %d, want %d", tc.key, got, tc.want)
		}
	}
}

func TestGroupsContiguousAndBalanced(t *testing.T) {
	peers := []simnet.NodeID{3, 0, 4, 1, 2} // unsorted on purpose
	groups := Groups(peers, 2)
	if len(groups) != 2 || len(groups[0]) != 3 || len(groups[1]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0][0] != 0 || groups[1][0] != 3 {
		t.Fatalf("groups not contiguous over sorted peers: %v", groups)
	}
	for i, id := range peers {
		_ = i
		if GroupOf(groups, id) < 0 {
			t.Fatalf("node %v in no group", id)
		}
	}
	// More shards than nodes clamps to one group per node.
	if g := Groups(peers[:2], 8); len(g) != 2 {
		t.Fatalf("clamp failed: %d groups for 2 nodes", len(g))
	}
}

func TestTouchedShards(t *testing.T) {
	p := NewHashPartitioner(8)
	// Single-key contract call: exactly one shard.
	tx := &types.Transaction{Contract: "ycsb", Method: "write",
		Args: [][]byte{[]byte("user1"), []byte("v")}}
	if got := TouchedShards(p, tx); len(got) != 1 || got[0] != p.Shard([]byte("user1")) {
		t.Fatalf("ycsb touched %v", got)
	}
	// Two-account smallbank call: both owners, deduplicated and sorted.
	a, b := []byte("acct-a"), []byte("acct-b")
	tx = &types.Transaction{Contract: "smallbank", Method: "sendPayment",
		Args: [][]byte{a, b, types.U64Bytes(1)}}
	got := TouchedShards(p, tx)
	want := map[int]bool{p.Shard(a): true, p.Shard(b): true}
	if len(got) != len(want) {
		t.Fatalf("sendPayment touched %v, want shards of %v", got, want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("touched shards not sorted: %v", got)
		}
	}
	// Same account twice collapses to one shard.
	tx.Args = [][]byte{a, a, types.U64Bytes(1)}
	if got := TouchedShards(p, tx); len(got) != 1 {
		t.Fatalf("self-payment touched %v", got)
	}
	// Keyless transactions get a stable home shard from their hash.
	tx = &types.Transaction{Contract: "donothing", Method: "noop"}
	h1 := TouchedShards(p, tx)
	h2 := TouchedShards(p, tx)
	if len(h1) != 1 || h1[0] != h2[0] {
		t.Fatalf("home shard unstable: %v vs %v", h1, h2)
	}
}

func TestContractKeysRegistry(t *testing.T) {
	if ks := ContractKeys("ycsb", "read", [][]byte{[]byte("k")}); len(ks) != 1 {
		t.Fatalf("ycsb read keys = %v", ks)
	}
	if ks := ContractKeys("smallbank", "amalgamate", [][]byte{[]byte("a"), []byte("b")}); len(ks) != 2 {
		t.Fatalf("amalgamate keys = %v", ks)
	}
	if ks := ContractKeys("smallbank", "writeCheck", [][]byte{[]byte("a"), []byte("x")}); len(ks) != 1 {
		t.Fatalf("writeCheck keys = %v", ks)
	}
	if ks := ContractKeys("no-such-contract", "m", nil); ks != nil {
		t.Fatalf("unknown contract keys = %v", ks)
	}
	RegisterContractKeys("sharding-test-cc", func(method string, args [][]byte) [][]byte {
		return args
	})
	if ks := ContractKeys("sharding-test-cc", "m", [][]byte{[]byte("x"), []byte("y")}); len(ks) != 2 {
		t.Fatalf("registered extractor ignored: %v", ks)
	}
}
