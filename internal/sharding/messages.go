package sharding

import (
	"blockbench/internal/simnet"
	"blockbench/internal/types"
)

// Message type tags on the simulated network. All sharding traffic is
// point-to-point: forwards and decisions go to the members of the
// shards involved, votes and commit notices back to the coordinating
// gateway — nothing is flooded cluster-wide.
const (
	MsgForward = "shard_fwd"     // *ForwardBatch: single-shard txs to their group
	MsgPrepare = "shard_prepare" // *Prepare: 2PC phase one
	MsgVote    = "shard_vote"    // *Vote: participant's lock verdict
	MsgDecide  = "shard_decide"  // *Decision: 2PC phase two (commit or abort)
	MsgNotice  = "shard_notice"  // *CommitNotice: applied-tx ack to the gateway
)

// ForwardBatch carries single-shard transactions from a gateway node to
// the members of the owning shard group (the fast path: no 2PC, the
// group's own consensus is the only ordering these transactions see).
type ForwardBatch struct {
	Origin simnet.NodeID // gateway that accepted the client submissions
	Shard  int
	Txs    []*types.Transaction
}

// WireSize implements simnet.Sizer.
func (m *ForwardBatch) WireSize() int {
	n := 16
	for _, tx := range m.Txs {
		n += tx.WireSize()
	}
	return n
}

// Prepare opens 2PC for a cross-shard transaction: every member of each
// touched shard receives it; the shard's current consensus leader
// answers with a Vote after trying to lock the transaction's local keys.
type Prepare struct {
	Origin  simnet.NodeID // coordinating gateway (votes go back here)
	Attempt int
	Tx      *types.Transaction
}

// WireSize implements simnet.Sizer.
func (m *Prepare) WireSize() int { return 16 + m.Tx.WireSize() }

// Vote is one shard's phase-one verdict.
type Vote struct {
	TxID    types.Hash
	Shard   int
	Attempt int
	OK      bool
}

// WireSize implements simnet.Sizer.
func (*Vote) WireSize() int { return types.HashSize + 17 }

// Decision closes 2PC: on commit the transaction enters every touched
// shard's pool and is ordered by that shard's consensus like any other;
// on abort the participants only release their locks. Tx is nil on
// abort.
type Decision struct {
	TxID   types.Hash
	Commit bool
	Origin simnet.NodeID
	Tx     *types.Transaction
}

// WireSize implements simnet.Sizer.
func (m *Decision) WireSize() int {
	n := types.HashSize + 17
	if m.Tx != nil {
		n += m.Tx.WireSize()
	}
	return n
}

// CommitNotice tells the gateway that a shard applied a transaction the
// gateway routed away from its own group, so the gateway can surface
// the commit to its polling client.
type CommitNotice struct {
	TxID  types.Hash
	Shard int
}

// WireSize implements simnet.Sizer.
func (*CommitNotice) WireSize() int { return types.HashSize + 16 }
