package sharding

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/consensus/raft"
	"blockbench/internal/simnet"
	"blockbench/internal/txpool"
	"blockbench/internal/types"
)

// ErrBusy is returned by SubmitTx when the gateway's forward queue (or
// its cross-shard coordination table) is full; clients back off and
// retry, as with a busy server.
var ErrBusy = errors.New("sharding: gateway at capacity")

// Options tunes the sharded execution engine.
type Options struct {
	// Shards is the number of shard groups (clamped to the node count).
	Shards int
	// Partitioner places keys; nil defaults to hash partitioning.
	Partitioner Partitioner
	// Raft tunes the per-shard consensus groups.
	Raft raft.Options
	// ForwardInterval is the gateway's flush cadence: accepted
	// single-shard transactions are forwarded to their group in
	// key-affinity batches on this tick (which also drives 2PC timeouts
	// and commit-notice scanning).
	ForwardInterval time.Duration
	// PrepareTimeout bounds phase one: a shard that has not voted by
	// then (crashed leader, election in progress) counts as a refusal.
	PrepareTimeout time.Duration
	// RetryBackoff is the base delay before re-preparing an aborted
	// transaction. The actual wait grows linearly with the attempt
	// number plus a uniform jitter of one base unit, so coordinators
	// contending for the same locks desynchronize instead of colliding
	// on every round.
	RetryBackoff time.Duration
	// MaxAttempts bounds abort-retry; beyond it the transaction is
	// abandoned and counted in xshard.aborts.
	MaxAttempts int
	// LockTTL expires prepare locks whose coordinator went silent.
	LockTTL time.Duration
	// OutboundLimit bounds the gateway's forward queue.
	OutboundLimit int
	// MaxCoordinations bounds the cross-shard transactions one gateway
	// coordinates concurrently; beyond it SubmitTx reports busy — the
	// same admission control the fast path gets from OutboundLimit, so
	// an open-loop flood cannot pile up unbounded 2PC state and
	// prepare-retry storms.
	MaxCoordinations int
	// Seed feeds the inner consensus groups' randomized timeouts.
	Seed int64
}

// DefaultOptions returns the sharded-preset defaults.
func DefaultOptions() Options {
	return Options{
		Shards:           4,
		Raft:             raft.DefaultOptions(),
		ForwardInterval:  2 * time.Millisecond,
		PrepareTimeout:   100 * time.Millisecond,
		RetryBackoff:     10 * time.Millisecond,
		MaxAttempts:      16,
		LockTTL:          time.Second,
		OutboundLimit:    1 << 16,
		MaxCoordinations: 1024,
	}
}

// lockEntry is one held prepare lock. Locks are soft state at the
// shard's current leader: they serialize conflicting cross-shard
// transactions, and expire (or vanish with a crashed leader) without
// affecting safety — actual state changes only happen through the
// shard's ordered commit path.
type lockEntry struct {
	owner   types.Hash
	expires time.Time
}

// coordState tracks one cross-shard transaction at its coordinating
// gateway.
type coordState struct {
	tx       *types.Transaction
	shards   []int
	attempt  int
	votes    map[int]bool
	deadline time.Time // phase-one deadline; zero while backing off
	retryAt  time.Time // next re-prepare time; zero while phase one runs
}

// awaitState tracks the foreign shards whose commit notices the gateway
// still needs before surfacing a transaction to its client.
type awaitState struct{ need map[int]struct{} }

// noticeRec tracks one commit notice a shard member owes a remote
// gateway. Only the group's current leader sends (one notice per
// transaction per shard, not one per member); followers retain applied
// entries for noticeRetain as leader-failover cover, then assume the
// leader delivered and drop them.
type noticeRec struct {
	origin  simnet.NodeID
	applied time.Time // zero until the transaction is seen in a block
}

// noticeRetain is how long followers keep applied notice entries before
// presuming the leader delivered them.
const noticeRetain = 5 * time.Second

// Engine is one node's sharded execution stack: the inner consensus
// replica for the node's own shard group, the gateway router for client
// submissions, and the 2PC coordinator/participant roles. It implements
// consensus.Engine (the node drives it like any other consensus) and
// the node package's Router interface (client transactions are routed
// instead of pooled locally, and commits on foreign shards are surfaced
// back through BlocksFrom/Receipt).
type Engine struct {
	ctx    consensus.Context
	opts   Options
	part   Partitioner
	groups [][]simnet.NodeID
	shard  int                    // this node's shard group
	member map[simnet.NodeID]bool // members of this node's group
	inner  *raft.Engine

	mu       sync.Mutex
	outbound *txpool.Pool               // accepted single-shard txs awaiting flush
	coord    map[types.Hash]*coordState // cross-shard txs this node coordinates
	locks    map[string]lockEntry       // participant lock table (shard leader)
	txLocks  map[types.Hash][]string    // reverse index for release
	awaiting map[types.Hash]*awaitState // txs whose foreign commits are pending
	notice   map[types.Hash]*noticeRec  // applied-tx notices owed, tx -> gateway
	remoteQ  []types.Hash               // commits ready to surface via BlocksFrom
	remote   map[types.Hash]struct{}    // every foreign commit surfaced (Receipt)
	scanned  uint64                     // chain height scanned for owed notices
	sweepAt  time.Time                  // next expired-lock sweep
	rng      *rand.Rand                 // retry-backoff jitter (guarded by mu)

	fastpath atomic.Uint64 // single-shard txs accepted (2PC bypassed)
	xTxs     atomic.Uint64 // cross-shard txs coordinated
	xCommits atomic.Uint64 // cross-shard txs committed
	xAborts  atomic.Uint64 // cross-shard txs abandoned after MaxAttempts
	xRetries atomic.Uint64 // abort-retry rounds

	stop    chan struct{}
	done    sync.WaitGroup
	started atomic.Bool
}

// New builds the sharded engine for one node. The shard groups are
// computed from ctx.Peers, and the node's own group runs an inner Raft
// instance whose peer set is just that group.
func New(ctx consensus.Context, opts Options) *Engine {
	def := DefaultOptions()
	if opts.Shards <= 0 {
		opts.Shards = def.Shards
	}
	if opts.ForwardInterval <= 0 {
		opts.ForwardInterval = def.ForwardInterval
	}
	if opts.PrepareTimeout <= 0 {
		opts.PrepareTimeout = def.PrepareTimeout
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = def.RetryBackoff
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = def.MaxAttempts
	}
	if opts.LockTTL <= 0 {
		opts.LockTTL = def.LockTTL
	}
	if opts.OutboundLimit <= 0 {
		opts.OutboundLimit = def.OutboundLimit
	}
	if opts.MaxCoordinations <= 0 {
		opts.MaxCoordinations = def.MaxCoordinations
	}
	groups := Groups(ctx.Peers, opts.Shards)
	opts.Shards = len(groups)
	if opts.Partitioner == nil {
		opts.Partitioner = NewHashPartitioner(opts.Shards)
	}
	if opts.Partitioner.Shards() != len(groups) {
		// Routing tables and the shard groups must agree, on every node.
		panic(fmt.Sprintf("sharding: partitioner places over %d shards but the cluster forms %d groups",
			opts.Partitioner.Shards(), len(groups)))
	}
	shard := GroupOf(groups, ctx.Self)
	if shard < 0 {
		panic(fmt.Sprintf("sharding: node %v not in any group", ctx.Self))
	}
	member := make(map[simnet.NodeID]bool, len(groups[shard]))
	for _, m := range groups[shard] {
		member[m] = true
	}
	innerCtx := ctx
	innerCtx.Peers = groups[shard]
	ropts := opts.Raft
	ropts.Seed = opts.Seed
	// The gateway's outbound queue is the admission point for traffic a
	// gateway accepts on behalf of other shards, so it stamps the same
	// lifecycle stages as a node's own pool.
	outbound := txpool.New(opts.OutboundLimit)
	outbound.SetTracer(ctx.Tracer)
	return &Engine{
		ctx:      ctx,
		opts:     opts,
		part:     opts.Partitioner,
		groups:   groups,
		shard:    shard,
		member:   member,
		inner:    raft.New(innerCtx, ropts),
		outbound: outbound,
		coord:    make(map[types.Hash]*coordState),
		locks:    make(map[string]lockEntry),
		txLocks:  make(map[types.Hash][]string),
		awaiting: make(map[types.Hash]*awaitState),
		notice:   make(map[types.Hash]*noticeRec),
		remote:   make(map[types.Hash]struct{}),
		rng:      rand.New(rand.NewSource(opts.Seed*6151 + int64(ctx.Self)*92821 + 3)),
		stop:     make(chan struct{}),
	}
}

// Shard returns this node's shard group index.
func (e *Engine) Shard() int { return e.shard }

// Shards returns the number of shard groups.
func (e *Engine) Shards() int { return len(e.groups) }

// Partition exposes the engine's partitioner (tests, skew tooling).
func (e *Engine) Partition() Partitioner { return e.part }

// Inner exposes the node's shard-group consensus replica.
func (e *Engine) Inner() *raft.Engine { return e.inner }

// LeaseRead implements the node package's lease-read hook: a gateway
// vouches for read freshness exactly when its own shard group's replica
// holds a live leader lease.
func (e *Engine) LeaseRead() bool { return e.inner.LeaseRead() }

// Start implements consensus.Engine.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	// Skip notice scanning over preloaded history: nothing in it was
	// routed through this engine.
	e.mu.Lock()
	e.scanned = e.ctx.Chain.Height()
	e.mu.Unlock()
	e.inner.Start()
	e.done.Add(1)
	go e.timerLoop()
}

// Stop implements consensus.Engine. Pending cross-shard coordinations
// are resolved as aborts so the commit/abort accounting stays exact.
func (e *Engine) Stop() {
	if !e.started.CompareAndSwap(true, false) {
		return
	}
	close(e.stop)
	e.done.Wait()
	e.inner.Stop()
	e.mu.Lock()
	for id := range e.coord {
		delete(e.coord, id)
		e.xAborts.Add(1)
	}
	e.mu.Unlock()
}

// Counters implements metrics.CounterProvider: the cross-shard commit
// protocol's counters, plus the inner consensus group's both raw (so
// cluster-wide aggregates like raft.elections keep working) and under a
// per-shard prefix (so shard imbalance is visible per group).
func (e *Engine) Counters() map[string]uint64 {
	out := map[string]uint64{
		"xshard.fastpath": e.fastpath.Load(),
		"xshard.txs":      e.xTxs.Load(),
		"xshard.commits":  e.xCommits.Load(),
		"xshard.aborts":   e.xAborts.Load(),
		"xshard.retries":  e.xRetries.Load(),
	}
	for k, v := range e.inner.Counters() {
		out[k] = v
		out[fmt.Sprintf("shard%d.%s", e.shard, k)] = v
	}
	return out
}

// SubmitTx implements the node package's Router: client submissions are
// routed by the shards their keys touch instead of entering the local
// pool. Single-shard transactions take the fast path (queued for the
// next key-affinity forward flush, no 2PC); cross-shard transactions
// open a two-phase commit with this node as coordinator.
func (e *Engine) SubmitTx(tx *types.Transaction) error {
	shards := TouchedShards(e.part, tx)
	id := tx.Hash()
	if len(shards) == 1 {
		if !e.outbound.Add(tx) {
			if e.outbound.Known(id) {
				return nil // duplicate: already routed
			}
			return ErrBusy
		}
		e.fastpath.Add(1)
		if shards[0] != e.shard {
			e.mu.Lock()
			e.awaiting[id] = &awaitState{need: map[int]struct{}{shards[0]: {}}}
			e.mu.Unlock()
		}
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.coord[id]; dup {
		return nil
	}
	if _, done := e.remote[id]; done {
		return nil
	}
	if len(e.coord) >= e.opts.MaxCoordinations {
		return ErrBusy
	}
	e.xTxs.Add(1)
	cs := &coordState{tx: tx, shards: shards, attempt: 1}
	e.coord[id] = cs
	e.sendPreparesLocked(id, cs)
	return nil
}

// DrainRemoteCommits implements Router: transaction IDs whose commits
// happened on shards this node is not a member of, ready to surface to
// this node's polling clients (each ID is delivered once).
func (e *Engine) DrainRemoteCommits() []types.Hash {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.remoteQ
	e.remoteQ = nil
	return out
}

// CommittedElsewhere implements Router: whether the gateway knows id
// committed on every foreign shard it touched.
func (e *Engine) CommittedElsewhere(id types.Hash) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.remote[id]
	return ok
}

// Handle implements consensus.Engine: inner consensus traffic from
// group members is passed through, sharding protocol messages are
// processed, everything else is declined.
func (e *Engine) Handle(msg simnet.Message) bool {
	switch msg.Type {
	case raft.MsgRequestVote, raft.MsgVote, raft.MsgAppend, raft.MsgAppendResp,
		raft.MsgSnapshot, consensus.MsgSyncReq, consensus.MsgSyncResp:
		// Consensus is per group: traffic from other groups' replicas
		// (broadcast elections reach everyone) must not leak into ours.
		// That includes the snapshot-install chain sync — every group
		// keeps its own canonical chain.
		if !e.member[msg.From] {
			return true
		}
		return e.inner.Handle(msg)
	case MsgForward, MsgPrepare, MsgVote, MsgDecide, MsgNotice:
	default:
		return false
	}
	if msg.Corrupt {
		return true // failed authentication, as elsewhere
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch msg.Type {
	case MsgForward:
		if m, ok := msg.Payload.(*ForwardBatch); ok && m.Shard == e.shard {
			for _, tx := range m.Txs {
				e.acceptShardTxLocked(tx, m.Origin)
			}
		}
	case MsgPrepare:
		if m, ok := msg.Payload.(*Prepare); ok {
			if v := e.prepareLocked(m); v != nil {
				e.ctx.Endpoint.Send(m.Origin, MsgVote, v)
			}
		}
	case MsgVote:
		if m, ok := msg.Payload.(*Vote); ok {
			e.onVoteLocked(m)
		}
	case MsgDecide:
		if m, ok := msg.Payload.(*Decision); ok {
			e.applyDecisionLocked(m)
		}
	case MsgNotice:
		if m, ok := msg.Payload.(*CommitNotice); ok {
			e.onNoticeLocked(m)
		}
	}
	return true
}

// acceptShardTxLocked admits one transaction of this node's shard into
// the local pool, remembering the gateway to notify once it applies
// (when the gateway is outside this group and cannot see it commit). A
// transaction that already applied — the group's leader replicated it
// before this member's own copy of the forward arrived — is notified
// immediately instead of registered, since the chain scan is already
// past it.
func (e *Engine) acceptShardTxLocked(tx *types.Transaction, origin simnet.NodeID) {
	e.ctx.Pool.Add(tx)
	if origin == e.ctx.Self || e.member[origin] {
		return
	}
	id := tx.Hash()
	if _, done := e.ctx.Chain.Receipt(id); done {
		e.ctx.Endpoint.Send(origin, MsgNotice, &CommitNotice{TxID: id, Shard: e.shard})
		return
	}
	e.notice[id] = &noticeRec{origin: origin}
}

// prepareLocked is the participant's phase one. Only the shard group's
// current leader votes — during an election nobody does, and the
// coordinator's timeout turns that silence into an abort-retry. Locks
// are all-or-nothing over the transaction's keys on this shard.
func (e *Engine) prepareLocked(m *Prepare) *Vote {
	if !e.inner.IsLeader() {
		return nil
	}
	id := m.Tx.Hash()
	v := &Vote{TxID: id, Shard: e.shard, Attempt: m.Attempt, OK: true}
	keys := localKeys(e.part, m.Tx, e.shard)
	now := time.Now()
	for _, k := range keys {
		if ent, held := e.locks[string(k)]; held && ent.owner != id && now.Before(ent.expires) {
			v.OK = false
			return v
		}
	}
	held := make([]string, len(keys))
	for i, k := range keys {
		ks := string(k)
		e.locks[ks] = lockEntry{owner: id, expires: now.Add(e.opts.LockTTL)}
		held[i] = ks
	}
	e.txLocks[id] = held
	return v
}

// releaseLocked frees every lock held for id on this node.
func (e *Engine) releaseLocked(id types.Hash) {
	for _, ks := range e.txLocks[id] {
		if ent, held := e.locks[ks]; held && ent.owner == id {
			delete(e.locks, ks)
		}
	}
	delete(e.txLocks, id)
}

// sendPreparesLocked opens (or reopens) phase one for a coordinated
// transaction.
func (e *Engine) sendPreparesLocked(id types.Hash, cs *coordState) {
	cs.votes = make(map[int]bool, len(cs.shards))
	cs.deadline = time.Now().Add(e.opts.PrepareTimeout)
	cs.retryAt = time.Time{}
	m := &Prepare{Origin: e.ctx.Self, Attempt: cs.attempt, Tx: cs.tx}
	for _, s := range cs.shards {
		for _, peer := range e.groups[s] {
			if peer == e.ctx.Self {
				if v := e.prepareLocked(m); v != nil {
					e.onVoteLocked(v)
				}
				continue
			}
			e.ctx.Endpoint.Send(peer, MsgPrepare, m)
		}
	}
}

// onVoteLocked records one shard's verdict at the coordinator. The
// first vote per shard and attempt wins (a leadership handover may
// produce two).
func (e *Engine) onVoteLocked(v *Vote) {
	cs, ok := e.coord[v.TxID]
	if !ok || v.Attempt != cs.attempt || !cs.retryAt.IsZero() {
		return
	}
	if !v.OK {
		e.abortAttemptLocked(v.TxID, cs)
		return
	}
	if _, dup := cs.votes[v.Shard]; dup {
		return
	}
	cs.votes[v.Shard] = true
	if len(cs.votes) == len(cs.shards) {
		e.commitLocked(v.TxID, cs)
	}
}

// commitLocked closes 2PC with a commit: every member of every touched
// shard receives the decision, admits the transaction into its shard's
// ordered pipeline and releases its locks.
func (e *Engine) commitLocked(id types.Hash, cs *coordState) {
	delete(e.coord, id)
	e.xCommits.Add(1)
	e.decideLocked(id, cs, &Decision{TxID: id, Commit: true, Origin: e.ctx.Self, Tx: cs.tx})
	// If this node is a member of a touched shard its own chain will
	// show the commit; otherwise every touched shard owes a notice.
	mine := false
	for _, s := range cs.shards {
		if s == e.shard {
			mine = true
			break
		}
	}
	if !mine {
		need := make(map[int]struct{}, len(cs.shards))
		for _, s := range cs.shards {
			need[s] = struct{}{}
		}
		e.awaiting[id] = &awaitState{need: need}
	}
}

// abortAttemptLocked closes the current phase one with an abort,
// scheduling a retry (with linear backoff) until MaxAttempts.
func (e *Engine) abortAttemptLocked(id types.Hash, cs *coordState) {
	e.decideLocked(id, cs, &Decision{TxID: id, Commit: false, Origin: e.ctx.Self})
	if cs.attempt >= e.opts.MaxAttempts {
		delete(e.coord, id)
		e.xAborts.Add(1)
		return
	}
	e.xRetries.Add(1)
	cs.attempt++
	cs.deadline = time.Time{}
	wait := time.Duration(cs.attempt)*e.opts.RetryBackoff +
		time.Duration(e.rng.Int63n(int64(e.opts.RetryBackoff)))
	cs.retryAt = time.Now().Add(wait)
}

// decideLocked distributes a phase-two decision to every member of the
// touched shards, applying it locally where this node is one of them.
func (e *Engine) decideLocked(id types.Hash, cs *coordState, d *Decision) {
	for _, s := range cs.shards {
		for _, peer := range e.groups[s] {
			if peer == e.ctx.Self {
				e.applyDecisionLocked(d)
				continue
			}
			e.ctx.Endpoint.Send(peer, MsgDecide, d)
		}
	}
}

// applyDecisionLocked is the participant's phase two: commit admits the
// transaction into the shard's pool (its consensus orders and executes
// it like any single-shard transaction); both outcomes release locks.
func (e *Engine) applyDecisionLocked(d *Decision) {
	e.releaseLocked(d.TxID)
	if d.Commit && d.Tx != nil {
		e.acceptShardTxLocked(d.Tx, d.Origin)
	}
}

// onNoticeLocked collects foreign-shard commit confirmations at the
// gateway; once every touched foreign shard confirmed, the commit is
// surfaced to the node's clients.
func (e *Engine) onNoticeLocked(m *CommitNotice) {
	aw, ok := e.awaiting[m.TxID]
	if !ok {
		return
	}
	delete(aw.need, m.Shard)
	if len(aw.need) > 0 {
		return
	}
	delete(e.awaiting, m.TxID)
	if _, dup := e.remote[m.TxID]; !dup {
		e.remote[m.TxID] = struct{}{}
		e.remoteQ = append(e.remoteQ, m.TxID)
	}
}

// timerLoop drives the gateway and participant background work: forward
// flushes, chain scans for owed commit notices, 2PC timeouts and
// retries, and expired-lock sweeps.
func (e *Engine) timerLoop() {
	defer e.done.Done()
	tick := time.NewTicker(e.opts.ForwardInterval)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case now := <-tick.C:
			e.flushForwards()
			e.mu.Lock()
			e.scanNoticesLocked()
			e.tickCoordLocked(now)
			e.sweepLocksLocked(now)
			e.mu.Unlock()
		}
	}
}

// flushForwards drains the gateway's accepted single-shard transactions
// and ships them to their groups as one batch per shard — key-affinity
// batching: a flush interval's worth of traffic to the same shard
// travels (and is pool-admitted) together instead of one message per
// transaction per member.
func (e *Engine) flushForwards() {
	classOf := func(tx *types.Transaction) int {
		return TouchedShards(e.part, tx)[0]
	}
	// Bounded per flush: oversized forwards would monopolize receiver
	// inboxes and link time; the excess stays queued (and the queue
	// bound turns into ErrBusy admission control at the gateway).
	batches := e.outbound.BatchAffinity(512, 0, len(e.groups), classOf)
	var flushed []*types.Transaction
	for s, txs := range batches {
		if len(txs) == 0 {
			continue
		}
		flushed = append(flushed, txs...)
		m := &ForwardBatch{Origin: e.ctx.Self, Shard: s, Txs: txs}
		if s == e.shard {
			e.mu.Lock()
			for _, tx := range txs {
				e.acceptShardTxLocked(tx, e.ctx.Self)
			}
			e.mu.Unlock()
		}
		for _, peer := range e.groups[s] {
			if peer != e.ctx.Self {
				e.ctx.Endpoint.Send(peer, MsgForward, m)
			}
		}
	}
	if len(flushed) > 0 {
		e.outbound.MarkIncluded(flushed)
	}
}

// scanNoticesLocked walks newly applied blocks, marking owed notices
// applied, then delivers them: the group's current leader sends (one
// notice per transaction per shard), while followers retain applied
// entries for noticeRetain as failover cover — a leader that dies
// between apply and notice is succeeded by a member that still holds
// the entry — before presuming delivery and dropping them.
func (e *Engine) scanNoticesLocked() {
	if len(e.notice) == 0 {
		e.scanned = e.ctx.Chain.Height()
		return
	}
	now := time.Now()
	for _, b := range e.ctx.Chain.BlocksFrom(e.scanned, 0) {
		for _, tx := range b.Txs {
			if rec, owed := e.notice[tx.Hash()]; owed && rec.applied.IsZero() {
				rec.applied = now
			}
		}
		if n := b.Number(); n > e.scanned {
			e.scanned = n
		}
	}
	leader := e.inner.IsLeader()
	for id, rec := range e.notice {
		if rec.applied.IsZero() {
			continue
		}
		if leader {
			delete(e.notice, id)
			e.ctx.Endpoint.Send(rec.origin, MsgNotice, &CommitNotice{TxID: id, Shard: e.shard})
		} else if now.Sub(rec.applied) > noticeRetain {
			delete(e.notice, id)
		}
	}
}

// tickCoordLocked advances coordinator state machines: overdue phase
// ones abort (and schedule a retry), due retries reopen phase one.
func (e *Engine) tickCoordLocked(now time.Time) {
	for id, cs := range e.coord {
		switch {
		case !cs.retryAt.IsZero():
			if !now.Before(cs.retryAt) {
				e.sendPreparesLocked(id, cs)
			}
		case !cs.deadline.IsZero() && now.After(cs.deadline):
			e.abortAttemptLocked(id, cs)
		}
	}
}

// sweepLocksLocked drops expired locks so a vanished coordinator cannot
// wedge a key forever.
func (e *Engine) sweepLocksLocked(now time.Time) {
	if now.Before(e.sweepAt) {
		return
	}
	e.sweepAt = now.Add(e.opts.LockTTL)
	for ks, ent := range e.locks {
		if !now.Before(ent.expires) {
			delete(e.locks, ks)
		}
	}
}
