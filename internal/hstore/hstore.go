// Package hstore implements the in-memory partitioned database baseline
// the paper compares blockchains against (Fig 14). It follows H-Store's
// architecture: data is hash-partitioned, each partition is owned by a
// single-threaded executor, single-partition transactions run serially
// on their executor with no locking, and multi-partition transactions
// use a blocking two-phase commit that stalls every involved partition —
// which is why Smallbank (multi-key transfers) runs ~6x slower than YCSB
// (single-key ops) on H-Store while blockchains barely notice the
// difference (every blockchain node holds all state, so there is no
// distributed coordination to pay for).
package hstore

import (
	"errors"
	"hash/fnv"
	"sort"
	"sync"
)

// ErrStopped is returned once the store is shut down.
var ErrStopped = errors.New("hstore: stopped")

// Access is the key-value surface a transaction body sees. All keys
// passed to Get/Put must have been declared in Exec's key list.
type Access interface {
	Get(key string) ([]byte, bool)
	Put(key string, value []byte)
}

type task struct {
	run  func()
	done chan struct{}
}

type partition struct {
	id   int
	data map[string][]byte
	ch   chan task
}

// Store is a partitioned in-memory database.
type Store struct {
	parts []*partition
	wg    sync.WaitGroup
	stop  chan struct{}
	once  sync.Once
}

// New creates a store with n partitions, one executor goroutine each.
func New(n int) *Store {
	if n <= 0 {
		n = 1
	}
	s := &Store{stop: make(chan struct{})}
	for i := 0; i < n; i++ {
		p := &partition{id: i, data: make(map[string][]byte), ch: make(chan task, 256)}
		s.parts = append(s.parts, p)
		s.wg.Add(1)
		go s.executor(p)
	}
	return s
}

func (s *Store) executor(p *partition) {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case t := <-p.ch:
			t.run()
			close(t.done)
		}
	}
}

// Close stops all executors.
func (s *Store) Close() {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Partitions returns the partition count.
func (s *Store) Partitions() int { return len(s.parts) }

func (s *Store) partOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % len(s.parts)
}

type txnAccess struct {
	store *Store
	// parts the txn declared; accesses outside them are a bug.
	allowed map[int]bool
}

func (a *txnAccess) Get(key string) ([]byte, bool) {
	p := a.store.parts[a.store.partOf(key)]
	if !a.allowed[p.id] {
		panic("hstore: access to undeclared partition")
	}
	v, ok := p.data[key]
	return v, ok
}

func (a *txnAccess) Put(key string, value []byte) {
	p := a.store.parts[a.store.partOf(key)]
	if !a.allowed[p.id] {
		panic("hstore: access to undeclared partition")
	}
	v := make([]byte, len(value))
	copy(v, value)
	p.data[key] = v
}

// Exec runs fn as a transaction over the declared keys. Transactions
// touching a single partition run on that partition's executor;
// multi-partition transactions hold all involved executors for the
// duration (blocking 2PC, as in H-Store).
func (s *Store) Exec(keys []string, fn func(Access)) error {
	select {
	case <-s.stop:
		return ErrStopped
	default:
	}
	partSet := make(map[int]bool, len(keys))
	for _, k := range keys {
		partSet[s.partOf(k)] = true
	}
	access := &txnAccess{store: s, allowed: partSet}

	if len(partSet) == 1 {
		var pid int
		for id := range partSet {
			pid = id
		}
		t := task{done: make(chan struct{}), run: func() { fn(access) }}
		select {
		case s.parts[pid].ch <- t:
		case <-s.stop:
			return ErrStopped
		}
		<-t.done
		return nil
	}

	// Multi-partition: acquire executors strictly in id order — enqueue
	// the hold on a partition only after the previous partition is held,
	// otherwise two coordinators can interleave queue positions and
	// deadlock. Then run the body on the coordinator and release.
	ids := make([]int, 0, len(partSet))
	for id := range partSet {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	release := make(chan struct{})
	for _, id := range ids {
		ready := make(chan struct{})
		t := task{done: make(chan struct{}), run: func() {
			close(ready) // prepared: partition is now blocked
			<-release    // until the coordinator commits
		}}
		select {
		case s.parts[id].ch <- t:
		case <-s.stop:
			close(release)
			return ErrStopped
		}
		select {
		case <-ready:
		case <-s.stop:
			close(release)
			return ErrStopped
		}
	}
	fn(access)
	close(release)
	return nil
}
