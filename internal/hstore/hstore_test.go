package hstore

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSinglePartitionOps(t *testing.T) {
	s := New(4)
	defer s.Close()
	err := s.Exec([]string{"k1"}, func(a Access) {
		a.Put("k1", []byte("v1"))
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Exec([]string{"k1"}, func(a Access) {
		v, ok := a.Get("k1")
		if !ok || string(v) != "v1" {
			t.Errorf("get = %q, %v", v, ok)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiPartitionTransfer(t *testing.T) {
	s := New(8)
	defer s.Close()
	put := func(k string, v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		if err := s.Exec([]string{k}, func(a Access) { a.Put(k, b[:]) }); err != nil {
			t.Fatal(err)
		}
	}
	get := func(k string) uint64 {
		var out uint64
		s.Exec([]string{k}, func(a Access) {
			v, _ := a.Get(k)
			out = binary.BigEndian.Uint64(v)
		})
		return out
	}
	put("alice", 100)
	put("bob", 0)
	err := s.Exec([]string{"alice", "bob"}, func(a Access) {
		av, _ := a.Get("alice")
		bv, _ := a.Get("bob")
		ab := binary.BigEndian.Uint64(av)
		bb := binary.BigEndian.Uint64(bv)
		var na, nb [8]byte
		binary.BigEndian.PutUint64(na[:], ab-30)
		binary.BigEndian.PutUint64(nb[:], bb+30)
		a.Put("alice", na[:])
		a.Put("bob", nb[:])
	})
	if err != nil {
		t.Fatal(err)
	}
	if get("alice") != 70 || get("bob") != 30 {
		t.Fatalf("balances: %d, %d", get("alice"), get("bob"))
	}
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	s := New(4)
	defer s.Close()
	const accounts = 16
	key := func(i int) string { return fmt.Sprintf("acct-%d", i) }
	for i := 0; i < accounts; i++ {
		k := key(i)
		s.Exec([]string{k}, func(a Access) {
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], 1000)
			a.Put(k, b[:])
		})
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				from, to := key((w+i)%accounts), key((w*3+i*7+1)%accounts)
				if from == to {
					continue
				}
				s.Exec([]string{from, to}, func(a Access) {
					fv, _ := a.Get(from)
					tv, _ := a.Get(to)
					fb := binary.BigEndian.Uint64(fv)
					tb := binary.BigEndian.Uint64(tv)
					if fb < 1 {
						return
					}
					var nf, nt [8]byte
					binary.BigEndian.PutUint64(nf[:], fb-1)
					binary.BigEndian.PutUint64(nt[:], tb+1)
					a.Put(from, nf[:])
					a.Put(to, nt[:])
				})
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < accounts; i++ {
		k := key(i)
		s.Exec([]string{k}, func(a Access) {
			v, _ := a.Get(k)
			total += binary.BigEndian.Uint64(v)
		})
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d", total, accounts*1000)
	}
}

func TestSinglePartitionFasterThanMulti(t *testing.T) {
	// The H-Store premise: cross-partition coordination costs dearly.
	s := New(8)
	defer s.Close()
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%d", i)
		s.Exec([]string{k}, func(a Access) { a.Put(k, []byte("v")) })
	}
	measure := func(multi bool) time.Duration {
		start := time.Now()
		for i := 0; i < 2000; i++ {
			if multi {
				k1, k2 := fmt.Sprintf("k%d", i%64), fmt.Sprintf("k%d", (i+13)%64)
				s.Exec([]string{k1, k2}, func(a Access) { a.Get(k1); a.Get(k2) })
			} else {
				k := fmt.Sprintf("k%d", i%64)
				s.Exec([]string{k}, func(a Access) { a.Get(k) })
			}
		}
		return time.Since(start)
	}
	single := measure(false)
	multi := measure(true)
	if multi < single {
		t.Fatalf("multi-partition (%v) unexpectedly faster than single (%v)", multi, single)
	}
}

func TestCloseUnblocks(t *testing.T) {
	s := New(2)
	s.Close()
	if err := s.Exec([]string{"k"}, func(a Access) {}); err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
}
