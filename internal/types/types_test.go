package types

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHashHex(t *testing.T) {
	h := HashData([]byte("hello"))
	if len(h.Hex()) != 2+64 {
		t.Fatalf("hex length = %d, want 66", len(h.Hex()))
	}
	if h.IsZero() {
		t.Fatal("hash of data should not be zero")
	}
	if !ZeroHash.IsZero() {
		t.Fatal("ZeroHash.IsZero() = false")
	}
}

func TestBytesToHashTruncates(t *testing.T) {
	long := make([]byte, 40)
	for i := range long {
		long[i] = byte(i)
	}
	h := BytesToHash(long)
	if !bytes.Equal(h[:], long[8:]) {
		t.Fatal("BytesToHash should keep the last 32 bytes")
	}
	short := []byte{1, 2, 3}
	h = BytesToHash(short)
	if h[31] != 3 || h[30] != 2 || h[29] != 1 || h[0] != 0 {
		t.Fatalf("BytesToHash short padding wrong: %x", h)
	}
}

func TestBytesToAddress(t *testing.T) {
	a := BytesToAddress([]byte{0xab})
	if a[AddressSize-1] != 0xab {
		t.Fatal("last byte not set")
	}
	if a.IsZero() {
		t.Fatal("non-zero address reported zero")
	}
}

func TestTransactionHashStable(t *testing.T) {
	tx := &Transaction{Nonce: 7, Value: 100, Contract: "ycsb", Method: "write",
		Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 21000}
	h1 := tx.Hash()
	h2 := tx.Hash()
	if h1 != h2 {
		t.Fatal("hash not stable")
	}
	tx2 := &Transaction{Nonce: 8, Value: 100, Contract: "ycsb", Method: "write",
		Args: [][]byte{[]byte("k"), []byte("v")}, GasLimit: 21000}
	if tx2.Hash() == h1 {
		t.Fatal("different nonce produced identical hash")
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	tx := &Transaction{
		Nonce:    42,
		From:     BytesToAddress([]byte("alice")),
		To:       BytesToAddress([]byte("bob")),
		Value:    999,
		Contract: "smallbank",
		Method:   "sendPayment",
		Args:     [][]byte{U64Bytes(1), U64Bytes(2), U64Bytes(50)},
		GasLimit: 100000,
		Sig:      []byte{1, 2, 3, 4},
	}
	dec, err := DecodeTransaction(tx.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Hash() != tx.Hash() {
		t.Fatal("round trip changed hash")
	}
	if !bytes.Equal(dec.Sig, tx.Sig) {
		t.Fatal("signature lost")
	}
	if dec.From != tx.From || dec.To != tx.To || dec.Value != tx.Value {
		t.Fatal("fields lost")
	}
	if len(dec.Args) != 3 || U64(dec.Args[2]) != 50 {
		t.Fatal("args lost")
	}
}

func TestDecodeTransactionTruncated(t *testing.T) {
	tx := &Transaction{Nonce: 1, Method: "m"}
	enc := tx.Encode()
	for cut := 0; cut < len(enc); cut += 5 {
		if _, err := DecodeTransaction(enc[:cut]); err == nil && cut < len(enc)-1 {
			// Some prefixes may decode to a valid shorter tx only if all
			// length prefixes align; a nil error with wrong hash is fine,
			// but errors must never panic. Check hash inequality instead.
			dec, _ := DecodeTransaction(enc[:cut])
			if dec != nil && dec.Hash() == tx.Hash() && cut < len(enc)-len(tx.Sig)-4 {
				t.Fatalf("truncated decode at %d matched full tx", cut)
			}
		}
	}
}

func TestTransactionWireSizeMatchesEncode(t *testing.T) {
	f := func(nonce, value uint64, contract, method string, a1, a2, sig []byte) bool {
		tx := &Transaction{Nonce: nonce, Value: value, Contract: contract,
			Method: method, Args: [][]byte{a1, a2}, Sig: sig}
		return tx.WireSize() == len(tx.Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderSealHashIgnoresNonce(t *testing.T) {
	h := Header{Number: 5, Difficulty: 1000, PowNonce: 12345}
	h2 := h
	h2.PowNonce = 99999
	if h.SealHash() != h2.SealHash() {
		t.Fatal("seal hash must not depend on PowNonce")
	}
	if h.Hash() == h2.Hash() {
		t.Fatal("full hash must depend on PowNonce")
	}
}

func TestBlockHashCached(t *testing.T) {
	b := &Block{Header: Header{Number: 3}}
	if b.Hash() != b.Hash() {
		t.Fatal("unstable block hash")
	}
	if b.Number() != 3 {
		t.Fatal("wrong number")
	}
}

func TestBlockWireSize(t *testing.T) {
	b := &Block{Header: Header{Number: 1}}
	base := b.WireSize()
	b.Txs = append(b.Txs, &Transaction{Method: "x"})
	if b.WireSize() <= base {
		t.Fatal("adding tx did not grow wire size")
	}
}

func TestU64RoundTrip(t *testing.T) {
	f := func(v uint64) bool { return U64(U64Bytes(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if U64([]byte{1}) != 1 {
		t.Fatal("short decode failed")
	}
	if U64(nil) != 0 {
		t.Fatal("nil decode failed")
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint64(77)
	e.Uint32(13)
	e.Bytes([]byte("payload"))
	e.String("name")
	e.Bool(true)
	e.Bool(false)
	d := NewDecoder(e.Out())
	if d.Uint64() != 77 || d.Uint32() != 13 {
		t.Fatal("ints lost")
	}
	if string(d.Bytes()) != "payload" || d.String() != "name" {
		t.Fatal("strings lost")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools lost")
	}
	if d.Err() != nil {
		t.Fatalf("unexpected err: %v", d.Err())
	}
	if d.Uint64() != 0 || d.Err() == nil {
		t.Fatal("reading past end must set error")
	}
}
