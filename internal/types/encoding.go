package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Encoder builds the deterministic binary encoding used for hashing and
// message serialization. Layout is length-prefixed little-endian; it is a
// simplified stand-in for Ethereum's RLP.
type Encoder struct{ buf []byte }

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{buf: make([]byte, 0, 256)} }

// Uint64 appends an 8-byte little-endian integer.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Uint32 appends a 4-byte little-endian integer.
func (e *Encoder) Uint32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends b without a length prefix (fixed-size fields).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Out returns the accumulated encoding.
func (e *Encoder) Out() []byte { return e.buf }

// ErrTruncated reports a decode past the end of the buffer.
var ErrTruncated = errors.New("types: truncated encoding")

// Decoder reads values written by Encoder, in the same order.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads an 8-byte little-endian integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uint32 reads a 4-byte little-endian integer.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Bytes reads a length-prefixed byte string (copied).
func (d *Decoder) Bytes() []byte {
	n := int(d.Uint32())
	if d.err != nil {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Raw reads n bytes without a length prefix.
func (d *Decoder) Raw(n int) []byte { return d.take(n) }

// Bool reads a single 0/1 byte.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// DecodeHeader parses a header from the deterministic encoding produced
// by Header.Encode, reading from d.
func DecodeHeader(d *Decoder) Header {
	var h Header
	h.Number = d.Uint64()
	copy(h.ParentHash[:], d.Raw(HashSize))
	copy(h.TxRoot[:], d.Raw(HashSize))
	copy(h.StateRoot[:], d.Raw(HashSize))
	h.Time = int64(d.Uint64())
	h.Difficulty = d.Uint64()
	h.PowNonce = d.Uint64()
	copy(h.Proposer[:], d.Raw(AddressSize))
	h.View = d.Uint64()
	h.GasLimit = d.Uint64()
	h.GasUsed = d.Uint64()
	return h
}

// EncodeBlock returns the full wire encoding of a block: the header
// followed by a count-prefixed transaction list. It is the durable
// at-rest format the platform layer persists for crash recovery, so it
// round-trips byte-identically through DecodeBlock.
func EncodeBlock(b *Block) []byte {
	e := NewEncoder()
	e.Raw(b.Header.Encode())
	e.Uint32(uint32(len(b.Txs)))
	for _, tx := range b.Txs {
		e.Bytes(tx.Encode())
	}
	return e.Out()
}

// DecodeBlock parses a block encoded by EncodeBlock.
func DecodeBlock(buf []byte) (*Block, error) {
	d := NewDecoder(buf)
	b := &Block{Header: DecodeHeader(d)}
	n := int(d.Uint32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > 0 {
		b.Txs = make([]*Transaction, n)
		for i := 0; i < n; i++ {
			tx, err := DecodeTransaction(d.Bytes())
			if err != nil {
				return nil, err
			}
			b.Txs[i] = tx
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// DecodeTransaction parses a transaction wire encoding from Encode.
func DecodeTransaction(buf []byte) (*Transaction, error) {
	d := NewDecoder(buf)
	tx := &Transaction{}
	tx.Nonce = d.Uint64()
	copy(tx.From[:], d.Bytes())
	copy(tx.To[:], d.Bytes())
	tx.Value = d.Uint64()
	tx.Contract = d.String()
	tx.Method = d.String()
	n := int(d.Uint32())
	if n > 0 && d.Err() == nil {
		tx.Args = make([][]byte, n)
		for i := 0; i < n; i++ {
			tx.Args[i] = d.Bytes()
		}
	}
	tx.GasLimit = d.Uint64()
	tx.Sig = d.Bytes()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return tx, nil
}
