// Package types defines the fundamental blockchain data types shared by
// every layer of the stack: hashes, addresses, transactions, blocks and
// receipts, together with a deterministic binary encoding used both for
// content hashing and for wire-size accounting on the simulated network.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// HashSize is the byte length of a content hash.
const HashSize = 32

// AddressSize is the byte length of an account address.
const AddressSize = 20

// Hash is a 32-byte content digest.
type Hash [HashSize]byte

// Address identifies an account (externally owned or contract).
type Address [AddressSize]byte

// ZeroHash is the all-zero hash, used as the genesis parent.
var ZeroHash Hash

// ZeroAddress is the all-zero address.
var ZeroAddress Address

// BytesToHash copies b into a Hash, left-truncating if b is too long.
func BytesToHash(b []byte) Hash {
	var h Hash
	if len(b) > HashSize {
		b = b[len(b)-HashSize:]
	}
	copy(h[HashSize-len(b):], b)
	return h
}

// HashData returns the SHA-256 digest of data.
func HashData(data []byte) Hash { return sha256.Sum256(data) }

// Hex returns the hexadecimal representation prefixed with 0x.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// Short returns an abbreviated hex form for logging.
func (h Hash) Short() string { return "0x" + hex.EncodeToString(h[:4]) }

// IsZero reports whether the hash is all zeroes.
func (h Hash) IsZero() bool { return h == ZeroHash }

func (h Hash) String() string { return h.Short() }

// Bytes returns the hash as a byte slice.
func (h Hash) Bytes() []byte { return h[:] }

// BytesToAddress copies b into an Address, left-truncating if too long.
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > AddressSize {
		b = b[len(b)-AddressSize:]
	}
	copy(a[AddressSize-len(b):], b)
	return a
}

// Hex returns the hexadecimal representation prefixed with 0x.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

func (a Address) String() string { return "0x" + hex.EncodeToString(a[:4]) }

// IsZero reports whether the address is all zeroes.
func (a Address) IsZero() bool { return a == ZeroAddress }

// Bytes returns the address as a byte slice.
func (a Address) Bytes() []byte { return a[:] }

// Transaction is a signed state transition request. Contract interactions
// carry the target contract name, a method selector and raw argument
// blobs; plain value transfers leave Contract empty.
type Transaction struct {
	Nonce    uint64
	From     Address
	To       Address
	Value    uint64
	Contract string   // target contract name; empty for value transfer
	Method   string   // contract method selector
	Args     [][]byte // raw encoded arguments
	GasLimit uint64
	Sig      []byte // signature over Hash() by From

	// Corrupt marks a transaction whose bytes were damaged in flight by
	// the network-level fault injector; validators must reject it.
	Corrupt bool

	hash atomic.Pointer[Hash]
}

// Hash returns the content hash of the transaction (signature excluded),
// caching the result.
func (tx *Transaction) Hash() Hash {
	if h := tx.hash.Load(); h != nil {
		return *h
	}
	h := HashData(tx.encodeForHash())
	tx.hash.Store(&h)
	return h
}

func (tx *Transaction) encodeForHash() []byte {
	e := NewEncoder()
	e.Uint64(tx.Nonce)
	e.Bytes(tx.From[:])
	e.Bytes(tx.To[:])
	e.Uint64(tx.Value)
	e.String(tx.Contract)
	e.String(tx.Method)
	e.Uint32(uint32(len(tx.Args)))
	for _, a := range tx.Args {
		e.Bytes(a)
	}
	e.Uint64(tx.GasLimit)
	return e.Out()
}

// Encode returns the full wire encoding, including the signature.
func (tx *Transaction) Encode() []byte {
	e := NewEncoder()
	e.Raw(tx.encodeForHash())
	e.Bytes(tx.Sig)
	return e.Out()
}

// WireSize reports the encoded size in bytes, used for network accounting.
func (tx *Transaction) WireSize() int {
	n := 8 + AddressSize + 4 + AddressSize + 4 + 8 +
		4 + len(tx.Contract) + 4 + len(tx.Method) + 4 + 8 +
		4 + len(tx.Sig)
	for _, a := range tx.Args {
		n += 4 + len(a)
	}
	return n
}

// Header is the block header. PoW fields (Difficulty, PowNonce) are zero
// for PoA/PBFT chains; View is only meaningful for PBFT.
type Header struct {
	Number     uint64
	ParentHash Hash
	TxRoot     Hash
	StateRoot  Hash
	Time       int64 // unix nanoseconds at proposal
	Difficulty uint64
	PowNonce   uint64
	Proposer   Address
	View       uint64
	GasLimit   uint64
	GasUsed    uint64
}

// Encode returns the deterministic binary encoding of the header.
func (h *Header) Encode() []byte {
	e := NewEncoder()
	e.Uint64(h.Number)
	e.Raw(h.ParentHash[:])
	e.Raw(h.TxRoot[:])
	e.Raw(h.StateRoot[:])
	e.Uint64(uint64(h.Time))
	e.Uint64(h.Difficulty)
	e.Uint64(h.PowNonce)
	e.Raw(h.Proposer[:])
	e.Uint64(h.View)
	e.Uint64(h.GasLimit)
	e.Uint64(h.GasUsed)
	return e.Out()
}

// Hash returns the content hash of the header, which identifies the block.
func (h *Header) Hash() Hash { return HashData(h.Encode()) }

// SealHash returns the hash of the header with the PoW solution zeroed;
// miners search for a PowNonce such that H(SealHash||nonce) meets target.
func (h *Header) SealHash() Hash {
	cp := *h
	cp.PowNonce = 0
	return HashData(cp.Encode())
}

// Block is a header plus its transaction list.
type Block struct {
	Header Header
	Txs    []*Transaction

	hash atomic.Pointer[Hash]
}

// Hash returns the block identity (the header hash), caching the result.
func (b *Block) Hash() Hash {
	if h := b.hash.Load(); h != nil {
		return *h
	}
	h := b.Header.Hash()
	b.hash.Store(&h)
	return h
}

// Number returns the block height.
func (b *Block) Number() uint64 { return b.Header.Number }

// WireSize reports the encoded block size in bytes.
func (b *Block) WireSize() int {
	n := len(b.Header.Encode())
	for _, tx := range b.Txs {
		n += tx.WireSize()
	}
	return n
}

func (b *Block) String() string {
	return fmt.Sprintf("block{#%d %s txs=%d}", b.Header.Number, b.Hash().Short(), len(b.Txs))
}

// Receipt records the outcome of executing a transaction in a block.
type Receipt struct {
	TxHash      Hash
	BlockNumber uint64
	BlockHash   Hash
	Index       int
	OK          bool
	GasUsed     uint64
	Output      []byte
	Err         string
	CommitTime  time.Time // local time the containing block was committed
}

// U64Bytes encodes v as 8 big-endian bytes. It is the canonical integer
// argument encoding used by contracts in this repository.
func U64Bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// U64 decodes a big-endian integer from b (shorter slices are allowed and
// treated as left-padded with zeroes).
func U64(b []byte) uint64 {
	var buf [8]byte
	if len(b) > 8 {
		b = b[len(b)-8:]
	}
	copy(buf[8-len(b):], b)
	return binary.BigEndian.Uint64(buf[:])
}
