package bmt

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"blockbench/internal/kvstore"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(kvstore.NewMem(), Options{NumBuckets: 101, Grouping: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEmptyRoot(t *testing.T) {
	tr := newTree(t)
	r, err := tr.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsZero() {
		t.Fatal("empty tree root should be zero")
	}
}

func TestPutGetDelete(t *testing.T) {
	tr := newTree(t)
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if err := tr.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Get([]byte("k")); v != nil {
		t.Fatal("delete failed")
	}
}

func TestRootCanonical(t *testing.T) {
	build := func(perm []int) [32]byte {
		tr := newTree(t)
		for _, i := range perm {
			tr.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%d", i)))
		}
		r, err := tr.Commit()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := make([]int, 40)
	for i := range base {
		base[i] = i
	}
	r1 := build(base)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3; trial++ {
		if r2 := build(rng.Perm(40)); r2 != r1 {
			t.Fatal("root depends on insertion order")
		}
	}
}

func TestRootChangesOnUpdate(t *testing.T) {
	tr := newTree(t)
	tr.Put([]byte("a"), []byte("1"))
	r1, _ := tr.Commit()
	tr.Put([]byte("a"), []byte("2"))
	r2, _ := tr.Commit()
	if r1 == r2 {
		t.Fatal("root ignored value update")
	}
	tr.Put([]byte("a"), []byte("1"))
	r3, _ := tr.Commit()
	if r3 != r1 {
		t.Fatal("root not canonical after revert")
	}
}

func TestDeleteRestoresRoot(t *testing.T) {
	tr := newTree(t)
	tr.Put([]byte("x"), []byte("1"))
	r1, _ := tr.Commit()
	tr.Put([]byte("y"), []byte("2"))
	tr.Commit()
	tr.Delete([]byte("y"))
	r2, _ := tr.Commit()
	if r1 != r2 {
		t.Fatal("delete did not restore root")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	store := kvstore.NewMem()
	tr, err := New(store, Options{NumBuckets: 101, Grouping: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	r1, err := tr.Commit()
	if err != nil {
		t.Fatal(err)
	}

	tr2, err := New(store, Options{NumBuckets: 101, Grouping: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr2.RootHash(); got != r1 {
		t.Fatalf("reopened root %v != %v", got, r1)
	}
	v, err := tr2.Get([]byte("k042"))
	if err != nil || string(v) != "v42" {
		t.Fatalf("reopened get = %q, %v", v, err)
	}
}

func TestModelEquivalence(t *testing.T) {
	tr := newTree(t)
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("key-%03d", rng.Intn(250)))
		switch rng.Intn(3) {
		case 0:
			v := []byte(fmt.Sprintf("val-%d", i))
			if err := tr.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = v
		case 1:
			if err := tr.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, string(k))
		case 2:
			got, err := tr.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want := model[string(k)]
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: %s = %q want %q", i, k, got, want)
			}
		}
	}
	count := 0
	tr.Iterate(func(k, v []byte) bool {
		if !bytes.Equal(model[string(k)], v) {
			t.Fatalf("iterate mismatch at %s", k)
		}
		count++
		return true
	})
	if count != len(model) {
		t.Fatalf("iterated %d keys, model has %d", count, len(model))
	}
}

func TestDiskFootprintFlat(t *testing.T) {
	// One state key should cost roughly one store record (plus digests),
	// in contrast to the MPT's multi-node paths.
	store := kvstore.NewMem()
	tr, _ := New(store, Options{NumBuckets: 101})
	const keys = 1000
	for i := 0; i < keys; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%06d", i)), make([]byte, 100))
	}
	tr.Commit()
	if got := store.Stats().Keys; got > keys+101 {
		t.Fatalf("store keys = %d, want <= %d", got, keys+101)
	}
}
