package bmt

import (
	"fmt"
	"testing"

	"blockbench/internal/kvstore"
)

func BenchmarkBucketPut(b *testing.B) {
	tr, _ := New(kvstore.NewMem(), Options{})
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

func BenchmarkBucketGet(b *testing.B) {
	tr, _ := New(kvstore.NewMem(), Options{})
	const keys = 10_000
	for i := 0; i < keys; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%09d", i)), make([]byte, 100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get([]byte(fmt.Sprintf("key-%09d", i%keys)))
	}
}

func BenchmarkBucketCommit1k(b *testing.B) {
	tr, _ := New(kvstore.NewMem(), Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 1000; j++ {
			tr.Put([]byte(fmt.Sprintf("key-%d-%d", i, j)), make([]byte, 100))
		}
		b.StartTimer()
		if _, err := tr.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
