// Package bmt implements the Bucket-Merkle tree used by Hyperledger
// Fabric v0.6 for its world-state hash: "Hyperledger implements
// Bucket-Merkle tree which uses a hash function to group states into a
// list of buckets from which a Merkle tree is built."
//
// Unlike the Patricia-Merkle trie, the structure is not versioned: data
// lives directly in the backing key-value store (one record per state
// key) and only the bucket digests are recomputed on commit. This is why
// Hyperledger's disk usage in the IOHeavy experiment is an order of
// magnitude below Ethereum's and Parity's, and also why historical state
// queries are impossible without a custom chaincode (the paper's
// VersionKVStore workaround for analytics Q2).
package bmt

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

// Options configures tree geometry.
type Options struct {
	NumBuckets int // default 10009 (the Fabric v0.6 default)
	Grouping   int // children per interior node, default 10
}

// Tree is a bucket-Merkle tree over a key-value store. It is not safe
// for concurrent mutation.
type Tree struct {
	store      kvstore.Store
	numBuckets int
	grouping   int

	dirty map[int]struct{} // buckets touched since the last Commit
	// bucketHash caches level-0 digests; levels above are recomputed on
	// demand from this cache.
	bucketHash []types.Hash
	// keysByBucket indexes each bucket's live keys so Commit recomputes
	// a dirty bucket in O(bucket size) instead of scanning the whole
	// store (mirroring the real implementation's in-memory bucket
	// cache).
	keysByBucket []map[string]struct{}
}

// New opens a bucket tree over store, rebuilding bucket digests from any
// existing data.
func New(store kvstore.Store, opts Options) (*Tree, error) {
	if opts.NumBuckets <= 0 {
		opts.NumBuckets = 10009
	}
	if opts.Grouping <= 1 {
		opts.Grouping = 10
	}
	t := &Tree{
		store:        store,
		numBuckets:   opts.NumBuckets,
		grouping:     opts.Grouping,
		dirty:        make(map[int]struct{}),
		bucketHash:   make([]types.Hash, opts.NumBuckets),
		keysByBucket: make([]map[string]struct{}, opts.NumBuckets),
	}
	for i := range t.keysByBucket {
		t.keysByBucket[i] = make(map[string]struct{})
	}
	// Recover digests persisted by a previous instance.
	for i := 0; i < t.numBuckets; i++ {
		if v, ok, err := store.Get(t.digestKey(i)); err != nil {
			return nil, err
		} else if ok {
			t.bucketHash[i] = types.BytesToHash(v)
		}
	}
	// Rebuild the bucket key index with one scan.
	err := store.Iterate([]byte("b:"), []byte("b;"), func(k, v []byte) bool {
		if len(k) >= 7 {
			b := int(binary.BigEndian.Uint32(k[2:6]))
			if b >= 0 && b < t.numBuckets {
				t.keysByBucket[b][string(k[7:])] = struct{}{}
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Tree) bucketOf(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32()) % t.numBuckets
}

func (t *Tree) dataKey(bucket int, key []byte) []byte {
	out := make([]byte, 0, 7+len(key))
	out = append(out, 'b', ':')
	out = binary.BigEndian.AppendUint32(out, uint32(bucket))
	out = append(out, ':')
	return append(out, key...)
}

func (t *Tree) digestKey(bucket int) []byte {
	out := make([]byte, 0, 7)
	out = append(out, 'd', ':')
	return binary.BigEndian.AppendUint32(out, uint32(bucket))
}

// Get returns the value for key, or nil if absent.
func (t *Tree) Get(key []byte) ([]byte, error) {
	v, ok, err := t.store.Get(t.dataKey(t.bucketOf(key), key))
	if err != nil || !ok {
		return nil, err
	}
	return v, nil
}

// Put stores key=value and marks the bucket dirty.
func (t *Tree) Put(key, value []byte) error {
	b := t.bucketOf(key)
	if err := t.store.Put(t.dataKey(b, key), value); err != nil {
		return err
	}
	t.keysByBucket[b][string(key)] = struct{}{}
	t.dirty[b] = struct{}{}
	return nil
}

// Delete removes key and marks the bucket dirty.
func (t *Tree) Delete(key []byte) error {
	b := t.bucketOf(key)
	if err := t.store.Delete(t.dataKey(b, key)); err != nil {
		return err
	}
	delete(t.keysByBucket[b], string(key))
	t.dirty[b] = struct{}{}
	return nil
}

// Commit recomputes digests for dirty buckets, persists them, and
// returns the new root hash.
func (t *Tree) Commit() (types.Hash, error) {
	for b := range t.dirty {
		h, err := t.computeBucket(b)
		if err != nil {
			return types.ZeroHash, err
		}
		t.bucketHash[b] = h
		if err := t.store.Put(t.digestKey(b), h.Bytes()); err != nil {
			return types.ZeroHash, err
		}
	}
	t.dirty = make(map[int]struct{})
	return t.root(), nil
}

// computeBucket hashes the bucket's entries in key order, using the
// in-memory bucket index to touch only this bucket's keys.
func (t *Tree) computeBucket(b int) (types.Hash, error) {
	keys := make([]string, 0, len(t.keysByBucket[b]))
	for k := range t.keysByBucket[b] {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return types.ZeroHash, nil
	}
	sort.Strings(keys)
	e := types.NewEncoder()
	for _, k := range keys {
		v, ok, err := t.store.Get(t.dataKey(b, []byte(k)))
		if err != nil {
			return types.ZeroHash, err
		}
		if !ok {
			continue
		}
		e.String(k)
		e.Bytes(v)
	}
	return types.HashData(e.Out()), nil
}

// root folds bucket digests up through grouped interior levels.
func (t *Tree) root() types.Hash {
	level := t.bucketHash
	for len(level) > 1 {
		next := make([]types.Hash, 0, (len(level)+t.grouping-1)/t.grouping)
		for i := 0; i < len(level); i += t.grouping {
			j := i + t.grouping
			if j > len(level) {
				j = len(level)
			}
			e := types.NewEncoder()
			empty := true
			for _, h := range level[i:j] {
				e.Raw(h[:])
				if !h.IsZero() {
					empty = false
				}
			}
			if empty {
				next = append(next, types.ZeroHash)
			} else {
				next = append(next, types.HashData(e.Out()))
			}
		}
		level = next
	}
	if len(level) == 0 {
		return types.ZeroHash
	}
	return level[0]
}

// RootHash returns the current root without committing. Dirty buckets
// are reflected only after Commit.
func (t *Tree) RootHash() types.Hash { return t.root() }

// Iterate walks every key/value pair in the tree. Order is by (bucket,
// key), which is stable but not globally key-ordered — matching the
// unordered bucket layout of the real system.
func (t *Tree) Iterate(fn func(key, value []byte) bool) error {
	stop := fmt.Errorf("stop")
	err := t.store.Iterate([]byte("b:"), []byte("b;"), func(k, v []byte) bool {
		// strip "b:" + 4-byte bucket + ":"
		if len(k) < 7 {
			return true
		}
		return fn(k[7:], v)
	})
	if err == stop {
		return nil
	}
	return err
}
