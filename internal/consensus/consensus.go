// Package consensus defines the interface between a blockchain node and
// its consensus engine, plus the block-synchronization protocol shared
// by the forking engines (PoW, PoA). The three engines — proof-of-work
// (Ethereum), proof-of-authority (Parity) and PBFT (Hyperledger Fabric
// v0.6) — live in subpackages.
package consensus

import (
	"blockbench/internal/ledger"
	"blockbench/internal/simnet"
	"blockbench/internal/trace"
	"blockbench/internal/txpool"
	"blockbench/internal/types"
)

// Message type tags on the simulated network.
const (
	MsgTx       = "tx"        // *types.Transaction gossip
	MsgBlock    = "block"     // *types.Block propagation (PoW/PoA)
	MsgSyncReq  = "sync_req"  // *SyncReq: give me blocks after height H
	MsgSyncResp = "sync_resp" // *SyncResp: canonical blocks in order
)

// MetaStore is durable small-blob storage for an engine's hard state
// (Raft term/vote/applied-index). The platform layer backs it with the
// node's persisted store so the state survives a process kill; engines
// must tolerate a nil MetaStore (nothing persists, as before).
type MetaStore interface {
	// SaveMeta durably records value under key, overwriting.
	SaveMeta(key string, value []byte)
	// LoadMeta returns the last saved value for key, ok=false if absent.
	LoadMeta(key string) (value []byte, ok bool)
}

// Context carries the node-side dependencies an engine needs.
type Context struct {
	Self     simnet.NodeID
	Endpoint *simnet.Endpoint
	Chain    *ledger.Chain
	Pool     *txpool.Pool
	Address  types.Address
	Peers    []simnet.NodeID // all nodes including self
	// Tracer is the cluster's lifecycle tracer (nil-safe); engines stamp
	// StagePropose when a proposal first includes a transaction.
	Tracer *trace.Tracer
	// Meta is durable hard-state storage for crash recovery (may be nil).
	Meta MetaStore
}

// Engine is a consensus protocol instance driving one node.
type Engine interface {
	// Start launches the engine's goroutines (mining loop, step timer,
	// batch timer...).
	Start()
	// Stop halts them. Engines must tolerate Stop before Start.
	Stop()
	// Handle processes one network message, returning false if the
	// message type is not for this engine.
	Handle(msg simnet.Message) bool
}

// Locator identifies one block on the requester's canonical chain.
type Locator struct {
	Number uint64
	Hash   types.Hash
}

// SyncReq asks a peer for canonical blocks past the newest locator the
// peer recognizes. The locator list walks back from the requester's head
// with exponentially growing gaps (as in Bitcoin's getblocks), so peers
// on a different fork can still find the common ancestor.
type SyncReq struct{ Locators []Locator }

// WireSize implements simnet.Sizer.
func (r *SyncReq) WireSize() int { return 8 + len(r.Locators)*(8+types.HashSize) }

// SyncResp carries a batch of canonical blocks.
type SyncResp struct{ Blocks []*types.Block }

// WireSize implements simnet.Sizer.
func (r *SyncResp) WireSize() int {
	n := 8
	for _, b := range r.Blocks {
		n += b.WireSize()
	}
	return n
}

// maxSyncBatch bounds one sync response; laggards re-request.
const maxSyncBatch = 128

// HandleSync implements both sides of the sync protocol. It returns true
// if the message was a sync message.
func HandleSync(ctx Context, msg simnet.Message) bool {
	switch msg.Type {
	case MsgSyncReq:
		req, ok := msg.Payload.(*SyncReq)
		if !ok || msg.Corrupt {
			return true
		}
		// Find the newest locator that is on our canonical chain; send
		// everything after it (which may replace the requester's fork).
		var from uint64
		for _, loc := range req.Locators {
			if b, ok := ctx.Chain.GetBlock(loc.Number); ok && b.Hash() == loc.Hash {
				from = loc.Number
				break
			}
		}
		blocks := ctx.Chain.BlocksFrom(from, maxSyncBatch)
		if len(blocks) > 0 {
			ctx.Endpoint.Send(msg.From, MsgSyncResp, &SyncResp{Blocks: blocks})
		}
		return true
	case MsgSyncResp:
		resp, ok := msg.Payload.(*SyncResp)
		if !ok || msg.Corrupt {
			return true
		}
		for _, b := range resp.Blocks {
			if err := ctx.Chain.Append(b); err != nil {
				break
			}
		}
		return true
	}
	return false
}

// RequestSync asks peer for everything past our chain, sending a locator
// walk so the peer can find the fork point if our head is on a dead
// branch.
func RequestSync(ctx Context, peer simnet.NodeID) {
	head := ctx.Chain.Height()
	var locs []Locator
	step := uint64(1)
	for n := head; ; {
		if b, ok := ctx.Chain.GetBlock(n); ok {
			locs = append(locs, Locator{Number: n, Hash: b.Hash()})
		}
		if n == 0 || len(locs) >= 32 {
			break
		}
		if n < step {
			n = 0
		} else {
			n -= step
		}
		if len(locs) >= 8 {
			step *= 2
		}
	}
	ctx.Endpoint.Send(peer, MsgSyncReq, &SyncReq{Locators: locs})
}
