// Package poa implements Proof-of-Authority consensus as used by the
// Parity preset: "a set of authorities are pre-determined and each
// authority is assigned a fixed time slot within which it can generate
// blocks". Block production is driven by a step clock (Parity's
// stepDuration); the authority whose turn it is seals a block whether or
// not transactions are pending. Forks can still occur under partition
// (each side keeps its own step schedule), which the security experiment
// measures.
package poa

import (
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/ledger"
	"blockbench/internal/simnet"
	"blockbench/internal/types"
)

// Options tunes the authority engine.
type Options struct {
	// StepDuration is the slot width (Parity's stepDuration; the paper
	// set 1s, the repository default is 40ms at the 25x time scale).
	StepDuration time.Duration
	// Authorities is the ordered authority set; the slot owner is
	// Authorities[step mod len].
	Authorities []types.Address
	// MaxTxsPerBlock bounds block size (the Parity block-size knob is
	// stepDuration itself, but a hard cap keeps memory bounded).
	MaxTxsPerBlock int
}

// Engine is one authority node.
type Engine struct {
	ctx  consensus.Context
	opts Options

	stop    chan struct{}
	done    sync.WaitGroup
	started atomic.Bool
	sealed  atomic.Uint64

	mu      sync.Mutex
	orphans map[types.Hash]*types.Block
}

// New creates a PoA engine.
func New(ctx consensus.Context, opts Options) *Engine {
	if opts.StepDuration <= 0 {
		opts.StepDuration = 40 * time.Millisecond
	}
	if opts.MaxTxsPerBlock <= 0 {
		opts.MaxTxsPerBlock = 4096
	}
	return &Engine{ctx: ctx, opts: opts, stop: make(chan struct{}),
		orphans: make(map[types.Hash]*types.Block)}
}

// Start implements consensus.Engine.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	e.done.Add(1)
	go e.stepLoop()
}

// Stop implements consensus.Engine.
func (e *Engine) Stop() {
	if e.started.CompareAndSwap(true, false) {
		close(e.stop)
		e.done.Wait()
	}
}

// Sealed reports how many blocks this authority has produced.
func (e *Engine) Sealed() uint64 { return e.sealed.Load() }

// Counters implements metrics.CounterProvider.
func (e *Engine) Counters() map[string]uint64 {
	return map[string]uint64{"poa.sealed": e.sealed.Load()}
}

func (e *Engine) myTurn(step int64) bool {
	n := int64(len(e.opts.Authorities))
	if n == 0 {
		return false
	}
	return e.opts.Authorities[step%n] == e.ctx.Address
}

func (e *Engine) stepLoop() {
	defer e.done.Done()
	tick := time.NewTicker(e.opts.StepDuration)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case now := <-tick.C:
			step := now.UnixNano() / int64(e.opts.StepDuration)
			if !e.myTurn(step) {
				continue
			}
			txs := e.ctx.Pool.Batch(e.opts.MaxTxsPerBlock, 0)
			block, err := e.ctx.Chain.ProposeBlock(txs, e.ctx.Address, 1, uint64(step))
			if err != nil {
				continue
			}
			if err := e.ctx.Chain.Append(block); err != nil {
				continue
			}
			e.sealed.Add(1)
			e.ctx.Endpoint.Broadcast(consensus.MsgBlock, block)
		}
	}
}

// Handle implements consensus.Engine.
func (e *Engine) Handle(msg simnet.Message) bool {
	if consensus.HandleSync(e.ctx, msg) {
		e.drainOrphans()
		return true
	}
	if msg.Type != consensus.MsgBlock {
		return false
	}
	b, ok := msg.Payload.(*types.Block)
	if !ok || msg.Corrupt {
		return true
	}
	if e.ctx.Chain.Has(b.Hash()) {
		return true
	}
	if !e.validProposer(b) {
		return true
	}
	switch err := e.ctx.Chain.Append(b); err {
	case nil:
		e.drainOrphans()
	case ledger.ErrUnknownParent:
		e.mu.Lock()
		if len(e.orphans) < 256 {
			e.orphans[b.Hash()] = b
		}
		e.mu.Unlock()
		consensus.RequestSync(e.ctx, msg.From)
	}
	return true
}

// validProposer checks the block's proposer is an authority that owned
// the block's step.
func (e *Engine) validProposer(b *types.Block) bool {
	n := uint64(len(e.opts.Authorities))
	if n == 0 {
		return false
	}
	return e.opts.Authorities[b.Header.View%n] == b.Header.Proposer
}

func (e *Engine) drainOrphans() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for progress := true; progress; {
		progress = false
		for h, b := range e.orphans {
			if err := e.ctx.Chain.Append(b); err != ledger.ErrUnknownParent {
				delete(e.orphans, h)
				if err == nil {
					progress = true
				}
			}
		}
	}
}
