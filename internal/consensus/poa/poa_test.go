package poa

import (
	"testing"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/types"
)

func addrs(n int) []types.Address {
	out := make([]types.Address, n)
	for i := range out {
		out[i] = types.BytesToAddress([]byte{byte(i + 1)})
	}
	return out
}

func TestMyTurnRoundRobin(t *testing.T) {
	auth := addrs(4)
	for i, a := range auth {
		e := New(consensus.Context{Address: a}, Options{
			StepDuration: time.Millisecond, Authorities: auth,
		})
		for step := int64(0); step < 12; step++ {
			want := step%4 == int64(i)
			if got := e.myTurn(step); got != want {
				t.Fatalf("authority %d step %d: myTurn = %v, want %v", i, step, got, want)
			}
		}
	}
}

func TestMyTurnNoAuthorities(t *testing.T) {
	e := New(consensus.Context{}, Options{StepDuration: time.Millisecond})
	if e.myTurn(5) {
		t.Fatal("turn granted with empty authority set")
	}
}

func TestValidProposerChecksSlotOwner(t *testing.T) {
	auth := addrs(3)
	e := New(consensus.Context{Address: auth[0]}, Options{
		StepDuration: time.Millisecond, Authorities: auth,
	})
	// Step (View) 7 belongs to authority 7 % 3 = 1.
	good := &types.Block{Header: types.Header{View: 7, Proposer: auth[1]}}
	if !e.validProposer(good) {
		t.Fatal("legitimate slot owner rejected")
	}
	bad := &types.Block{Header: types.Header{View: 7, Proposer: auth[2]}}
	if e.validProposer(bad) {
		t.Fatal("slot thief accepted")
	}
	e2 := New(consensus.Context{}, Options{StepDuration: time.Millisecond})
	if e2.validProposer(good) {
		t.Fatal("empty authority set accepted a proposer")
	}
}
