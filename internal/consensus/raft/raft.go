// Package raft implements Raft crash-fault-tolerant ordering as used by
// the Quorum preset (a geth fork that replaced PoW with Raft for
// permissioned deployments). One node is elected leader with randomized
// timeouts; the leader batches transactions from its pool into log
// entries, replicates them with AppendEntries, and advances the commit
// index once a majority of replicas store an entry. Committed entries
// are applied in log order as blocks on the ledger, so the chain never
// forks and transactions are final the moment they commit — the
// crash-fault-tolerant counterpart to PBFT's Byzantine quorums, with
// O(N) messages per batch instead of O(N^2).
//
// The engine is event-driven and pipelined. Replication rides the
// propose path: a pool notification (or a due partial-batch timer)
// proposes and ships AppendEntries immediately, and an acknowledged
// window triggers the next one without waiting for a tick — the ticker
// only paces heartbeats, elections and retransmission probes. Each
// follower has an in-flight window (nextIndex runs ahead of matchIndex
// by up to Window entries, MaxAppend per message) with fast backoff on
// rejection. Leaders that have heard from a majority within
// Heartbeat×LeaseFactor serve reads under a leader lease (see
// LeaseRead); once the applied index passes the retention window the
// log prefix is compacted behind a snapshot record, and laggard
// followers are caught up with InstallSnapshot plus a canonical-chain
// sync instead of a replay from index 1.
//
// Like the other engines, a replica processes all messages on its
// node's single inbox goroutine; the timer loop drives heartbeats and
// election timeouts. Corrupted messages (the random-response fault
// injector) fail authentication and are dropped.
package raft

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/merkle"
	"blockbench/internal/simnet"
	"blockbench/internal/trace"
	"blockbench/internal/types"
)

// Message type tags on the simulated network.
const (
	MsgRequestVote = "raft_reqvote"
	MsgVote        = "raft_vote"
	MsgAppend      = "raft_append"
	MsgAppendResp  = "raft_appendresp"
	MsgSnapshot    = "raft_snapshot"
)

// Entry is one replicated log slot: a batch of transactions stamped
// with the term it was proposed in. Empty batches are leader-change
// barriers and produce no block.
type Entry struct {
	Term uint64
	Txs  []*types.Transaction
}

func (e *Entry) wireSize() int {
	n := 8
	for _, tx := range e.Txs {
		n += tx.WireSize()
	}
	return n
}

// RequestVote solicits a vote for a candidacy at Term.
type RequestVote struct {
	Term         uint64
	LastLogIndex uint64
	LastLogTerm  uint64
}

// WireSize implements simnet.Sizer.
func (*RequestVote) WireSize() int { return 24 }

// Vote answers a RequestVote.
type Vote struct {
	Term    uint64
	Granted bool
}

// WireSize implements simnet.Sizer.
func (*Vote) WireSize() int { return 16 }

// AppendEntries replicates log entries (or, with none, heartbeats).
// Sent is the leader's local clock when the message left, echoed back
// in AppendResp: lease evidence must be anchored at send time — an ack
// only proves the follower recognized this leader at some moment after
// the append was sent, so timing the lease from ack receipt would let
// a delayed ack extend it past the follower's sticky-voter promise.
type AppendEntries struct {
	Term      uint64
	PrevIndex uint64
	PrevTerm  uint64
	Entries   []Entry
	Commit    uint64
	Sent      int64
}

// WireSize implements simnet.Sizer.
func (m *AppendEntries) WireSize() int {
	n := 48
	for i := range m.Entries {
		n += m.Entries[i].wireSize()
	}
	return n
}

// AppendResp acknowledges an AppendEntries. On success Match is the
// highest log index now stored; on failure it hints where the
// follower's log ends so the leader can back up nextIndex quickly.
// Echo returns the append's Sent stamp (0 on replies to messages that
// carry none, e.g. term-mismatch rejections of stale leaders).
type AppendResp struct {
	Term  uint64
	OK    bool
	Match uint64
	Echo  int64
}

// WireSize implements simnet.Sizer.
func (*AppendResp) WireSize() int { return 32 }

// InstallSnapshot replaces a laggard follower's log prefix with the
// leader's snapshot record: the log coordinates the snapshot covers and
// the canonical-chain position (height + block hash, which commits to
// the state root) the follower must reach before applying anything past
// it. The blocks themselves travel over the consensus sync protocol
// (MsgSyncReq/MsgSyncResp) rather than inside this message, so the
// snapshot stays O(1) on the wire and the follower converges to the
// leader's byte-identical chain.
type InstallSnapshot struct {
	Term      uint64
	LastIndex uint64 // last log index covered by the snapshot
	LastTerm  uint64 // its term
	Height    uint64 // chain height after applying LastIndex
	Root      types.Hash
	Sent      int64 // leader send-time stamp, echoed like AppendEntries.Sent
}

// WireSize implements simnet.Sizer.
func (*InstallSnapshot) WireSize() int { return 48 + types.HashSize }

// Options tunes the protocol.
type Options struct {
	// ElectionTimeout is the follower timeout floor; each replica draws
	// a fresh deadline in [ElectionTimeout, 2*ElectionTimeout) so
	// elections rarely collide (Raft's randomized timeouts).
	ElectionTimeout time.Duration
	// Heartbeat is the leader's idle AppendEntries cadence. Replication
	// itself is event-driven (propose-time), so the tick only covers
	// heartbeats, commit propagation to idle followers and probes.
	Heartbeat time.Duration
	// BatchSize is the number of transactions per log entry (Quorum
	// inherits geth's block batching; the repository default matches
	// the PBFT preset's 20 at the 25x scale).
	BatchSize int
	// BatchTimeout proposes a partial batch after this long. It is
	// decoupled from the tick: a due partial batch proposes on the next
	// pool notification or on a sub-tick timer, never quantized up to
	// the heartbeat.
	BatchTimeout time.Duration
	// Window bounds uncommitted entries in flight, and per follower the
	// entries sent ahead of the acknowledged match index (the pipeline
	// depth).
	Window int
	// MaxAppend bounds entries per AppendEntries message; a pipeline
	// burst splits into several messages.
	MaxAppend int
	// LeaseFactor sizes the leader lease as Heartbeat×LeaseFactor: a
	// leader that has heard from a majority within the lease serves
	// reads locally (LeaseRead). Clamped so the lease stays at most
	// half the election timeout — a deposed leader's lease must expire
	// before any successor can win. 0 takes the default.
	LeaseFactor int
	// Retain is the log compaction retention window: once the applied
	// index runs more than Retain entries past the snapshot, the prefix
	// is truncated behind a snapshot record (at least Retain/2 applied
	// entries stay resident for follower catch-up). 0 disables
	// compaction; the quorum preset default is 4096.
	Retain int
	// TickOnly disables the event-driven paths (propose-time
	// replication, ack-driven pipelining, the sub-tick batch timer),
	// reverting to tick-paced batching and appends. Benchmark baseline
	// only — it reintroduces the one-tick commit latency floor.
	TickOnly bool
	// Seed makes election-timeout randomization reproducible per node.
	Seed int64
}

// DefaultOptions returns the Quorum-preset defaults.
func DefaultOptions() Options {
	return Options{
		ElectionTimeout: 300 * time.Millisecond,
		Heartbeat:       20 * time.Millisecond,
		BatchSize:       20,
		BatchTimeout:    10 * time.Millisecond,
		Window:          64,
		MaxAppend:       32,
		LeaseFactor:     3,
		Retain:          4096,
	}
}

type role int

const (
	follower role = iota
	candidate
	leader
)

const noVote = simnet.NodeID(-1)

// metaKey is the MetaStore slot holding this replica's durable hard
// state: term, vote, and the applied-index/chain-height baseline a
// restarted replica resumes from (its log tail is gone, so it comes
// back as if freshly snapshotted at the applied index and re-fetches
// anything newer from the leader — log or InstallSnapshot).
const metaKey = "raft:hard"

// Engine is one Raft replica driving one node.
type Engine struct {
	ctx   consensus.Context
	opts  Options
	lease time.Duration
	peers []simnet.NodeID // sorted, including self

	mu       sync.Mutex
	term     uint64
	votedFor simnet.NodeID
	role     role
	leader   simnet.NodeID

	// The log tail past the snapshot: entry index i (1-based) lives at
	// log[i-snapIndex-1]. Entries at or below snapIndex are compacted
	// away behind the snapshot record.
	log       []Entry
	snapIndex uint64
	snapTerm  uint64
	// snapHeight/snapRoot are the canonical-chain coordinates of the
	// snapshot: the chain height after applying snapIndex and the block
	// hash there (committing to the state root).
	snapHeight uint64
	snapRoot   types.Hash
	commit     uint64
	applied    uint64
	// appliedHeight is the chain height corresponding to the applied
	// index; baseSet latches its baseline at the first apply (after any
	// preloaded history) or at snapshot install.
	appliedHeight uint64
	baseSet       bool

	votes        map[simnet.NodeID]bool
	next         map[simnet.NodeID]uint64
	match        map[simnet.NodeID]uint64
	ackAt        map[simnet.NodeID]time.Time // last AppendResp per follower (lease)
	snapSentAt   map[simnet.NodeID]time.Time // InstallSnapshot throttle
	assigned     map[types.Hash]bool         // txs already batched (leader)
	rng          *rand.Rand
	heardLeader  time.Time // last append/snapshot from a live leader
	deadline     time.Time // election deadline (follower/candidate)
	lastProposal time.Time
	batchDue     time.Time // when a withheld partial batch becomes due
	syncReqAt    time.Time // last chain-sync request (snapshot catch-up)

	elections    atomic.Uint64
	leaderWins   atomic.Uint64
	batchesDone  atomic.Uint64
	leaseReads   atomic.Uint64
	readRedirect atomic.Uint64
	compactions  atomic.Uint64
	snapsSent    atomic.Uint64
	snapsTaken   atomic.Uint64 // snapshots installed (follower side)

	notify  <-chan struct{} // pool admission signal (propose-time replication)
	stop    chan struct{}
	done    sync.WaitGroup
	started atomic.Bool
}

// New creates a Raft engine. All peers run replicas.
func New(ctx consensus.Context, opts Options) *Engine {
	def := DefaultOptions()
	if opts.ElectionTimeout <= 0 {
		opts.ElectionTimeout = def.ElectionTimeout
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = def.Heartbeat
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = def.BatchSize
	}
	if opts.BatchTimeout <= 0 {
		opts.BatchTimeout = def.BatchTimeout
	}
	if opts.Window <= 0 {
		opts.Window = def.Window
	}
	if opts.MaxAppend <= 0 {
		opts.MaxAppend = def.MaxAppend
	}
	if opts.LeaseFactor <= 0 {
		opts.LeaseFactor = def.LeaseFactor
	}
	if opts.Retain < 0 {
		opts.Retain = 0
	}
	// The lease must expire before any successor can be elected: cap it
	// at half the election-timeout floor (one shared clock here, so no
	// drift margin beyond that).
	lease := opts.Heartbeat * time.Duration(opts.LeaseFactor)
	if max := opts.ElectionTimeout / 2; lease > max {
		lease = max
	}
	peers := append([]simnet.NodeID(nil), ctx.Peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	e := &Engine{
		ctx:        ctx,
		opts:       opts,
		lease:      lease,
		peers:      peers,
		votedFor:   noVote,
		leader:     noVote,
		ackAt:      make(map[simnet.NodeID]time.Time),
		snapSentAt: make(map[simnet.NodeID]time.Time),
		assigned:   make(map[types.Hash]bool),
		rng:        rand.New(rand.NewSource(opts.Seed*7919 + int64(ctx.Self)*104729 + 1)),
		stop:       make(chan struct{}),
	}
	if ctx.Pool != nil && !opts.TickOnly {
		e.notify = ctx.Pool.Notify()
	}
	e.restoreMeta()
	e.resetDeadlineLocked(time.Now())
	return e
}

// restoreMeta reloads durable hard state after a process kill. The
// uncommitted log tail did not survive, so the replica resumes as if
// snapshotted exactly at its applied index: commit == applied ==
// snapIndex, with the chain-height baseline recorded at save time.
// Entries past that point are re-fetched from the current leader —
// through ordinary AppendEntries if they are still resident, or
// through InstallSnapshot plus a chain sync if the leader has
// compacted past us.
func (e *Engine) restoreMeta() {
	if e.ctx.Meta == nil {
		return
	}
	buf, ok := e.ctx.Meta.LoadMeta(metaKey)
	if !ok {
		return
	}
	d := types.NewDecoder(buf)
	term := d.Uint64()
	voted := simnet.NodeID(int64(d.Uint64()))
	base := d.Bool()
	applied := d.Uint64()
	appliedTerm := d.Uint64()
	height := d.Uint64()
	if d.Err() != nil {
		return // torn meta record: start clean
	}
	e.term = term
	e.votedFor = voted
	if base {
		e.snapIndex = applied
		e.snapTerm = appliedTerm
		e.commit = applied
		e.applied = applied
		e.appliedHeight = height
		e.snapHeight = height
		e.baseSet = true
		if b, ok := e.ctx.Chain.GetBlock(height); ok {
			e.snapRoot = b.Hash()
		}
	}
}

// saveMetaLocked durably records the hard state. Called whenever term,
// vote or the applied baseline changes; a nil MetaStore disables
// persistence (the pre-crash-recovery behavior).
func (e *Engine) saveMetaLocked() {
	if e.ctx.Meta == nil {
		return
	}
	enc := types.NewEncoder()
	enc.Uint64(e.term)
	enc.Uint64(uint64(int64(e.votedFor)))
	enc.Bool(e.baseSet)
	enc.Uint64(e.applied)
	enc.Uint64(e.termAtLocked(e.applied))
	enc.Uint64(e.appliedHeight)
	e.ctx.Meta.SaveMeta(metaKey, enc.Out())
}

func (e *Engine) majority() int { return len(e.peers)/2 + 1 }

// Start implements consensus.Engine.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	e.done.Add(1)
	go e.run()
}

// Stop implements consensus.Engine.
func (e *Engine) Stop() {
	if e.started.CompareAndSwap(true, false) {
		close(e.stop)
		e.done.Wait()
	}
}

// Term returns the current term (for tests and diagnostics).
func (e *Engine) Term() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.term
}

// IsLeader reports whether this replica currently leads.
func (e *Engine) IsLeader() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.role == leader
}

// LeaseRead classifies one client read on this replica: true means it
// is the leader under a live majority lease (heard from a majority
// within Heartbeat×LeaseFactor) and the local answer is linearizable
// without a log round-trip; false means the read would have to redirect
// to the leader for that guarantee. Counted as raft.lease_reads vs
// raft.read_redirects.
func (e *Engine) LeaseRead() bool {
	e.mu.Lock()
	ok := e.role == leader && e.leaseValidLocked(time.Now())
	e.mu.Unlock()
	if ok {
		e.leaseReads.Add(1)
		return true
	}
	e.readRedirect.Add(1)
	return false
}

// leaseValidLocked reports whether a majority (self included) has
// acknowledged this leader within the lease window.
func (e *Engine) leaseValidLocked(now time.Time) bool {
	cnt := 1 // self
	for _, p := range e.peers {
		if p == e.ctx.Self {
			continue
		}
		if at, ok := e.ackAt[p]; ok && now.Sub(at) <= e.lease {
			cnt++
		}
	}
	return cnt >= e.majority()
}

// Elections counts elections this replica has started.
func (e *Engine) Elections() uint64 { return e.elections.Load() }

// LeaderWins counts elections this replica has won.
func (e *Engine) LeaderWins() uint64 { return e.leaderWins.Load() }

// BatchesCommitted counts log entries this replica has applied as
// blocks.
func (e *Engine) BatchesCommitted() uint64 { return e.batchesDone.Load() }

// Compactions counts log-compaction rounds on this replica.
func (e *Engine) Compactions() uint64 { return e.compactions.Load() }

// SnapshotsInstalled counts snapshots this replica installed from a
// leader.
func (e *Engine) SnapshotsInstalled() uint64 { return e.snapsTaken.Load() }

// LogLen returns the resident log length (entries past the snapshot) —
// the quantity compaction bounds.
func (e *Engine) LogLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.log)
}

// SnapIndex returns the last log index covered by the local snapshot.
func (e *Engine) SnapIndex() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapIndex
}

// Counters implements metrics.CounterProvider.
func (e *Engine) Counters() map[string]uint64 {
	return map[string]uint64{
		"raft.elections":         e.elections.Load(),
		"raft.leader_wins":       e.leaderWins.Load(),
		"raft.batches":           e.batchesDone.Load(),
		"raft.lease_reads":       e.leaseReads.Load(),
		"raft.read_redirects":    e.readRedirect.Load(),
		"raft.compactions":       e.compactions.Load(),
		"raft.snapshots_sent":    e.snapsSent.Load(),
		"raft.snapshot_installs": e.snapsTaken.Load(),
	}
}

func (e *Engine) resetDeadlineLocked(now time.Time) {
	jitter := time.Duration(e.rng.Int63n(int64(e.opts.ElectionTimeout)))
	e.deadline = now.Add(e.opts.ElectionTimeout + jitter)
}

// run is the engine loop. The ticker paces heartbeats, elections,
// retransmission probes and snapshot catch-up; proposals are
// event-driven off the pool-notify channel and the sub-tick partial-
// batch timer, so commit latency is bounded by round trips, not ticks.
func (e *Engine) run() {
	defer e.done.Done()
	// The loop cadence is decoupled from the heartbeat cadence: election
	// deadlines must be checked a few times per timeout even when the
	// heartbeat interval is coarser, or every replica's candidacy would
	// quantize onto the same tick and collide forever. Heartbeats still
	// go out only every opts.Heartbeat (lastHB below).
	interval := e.opts.Heartbeat
	if !e.opts.TickOnly {
		if el := e.opts.ElectionTimeout / 4; el < interval {
			interval = el
		}
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
	}
	var lastHB time.Time
	tick := time.NewTicker(interval)
	defer tick.Stop()
	batch := time.NewTimer(time.Hour)
	if !batch.Stop() {
		<-batch.C
	}
	batchArmed := false
	// rearm keeps the sub-tick timer aligned with the engine's pending
	// partial batch (batchDue is maintained under mu by proposeLocked).
	rearm := func() {
		e.mu.Lock()
		due := e.batchDue
		e.mu.Unlock()
		if batchArmed {
			if !batch.Stop() {
				select {
				case <-batch.C:
				default:
				}
			}
			batchArmed = false
		}
		if !due.IsZero() {
			d := time.Until(due)
			if d < 0 {
				d = 0
			}
			batch.Reset(d)
			batchArmed = true
		}
	}
	for {
		select {
		case <-e.stop:
			return
		case now := <-tick.C:
			hb := now.Sub(lastHB) >= e.opts.Heartbeat
			if hb {
				lastHB = now
			}
			e.mu.Lock()
			if e.role == leader {
				e.proposeLocked(now)
				e.broadcastAppendsLocked(hb)
				e.advanceCommitLocked()
			} else {
				if now.After(e.deadline) {
					e.startElectionLocked(now)
				}
				e.maybeSyncLocked(now)
			}
			e.mu.Unlock()
			rearm()
		case <-e.notify:
			// Propose-time replication: a pool admission proposes and
			// ships the new entries immediately.
			now := time.Now()
			e.mu.Lock()
			if e.role == leader {
				if e.proposeLocked(now) {
					e.broadcastAppendsLocked(false)
					e.advanceCommitLocked() // single-node clusters commit inline
				}
			}
			e.mu.Unlock()
			rearm()
		case <-batch.C:
			batchArmed = false
			now := time.Now()
			e.mu.Lock()
			if e.role == leader {
				if e.proposeLocked(now) {
					e.broadcastAppendsLocked(false)
					e.advanceCommitLocked()
				}
			}
			e.mu.Unlock()
			rearm()
		}
	}
}

// lastIndexLocked returns the index of the last log entry (snapshot
// included).
func (e *Engine) lastIndexLocked() uint64 { return e.snapIndex + uint64(len(e.log)) }

// termAtLocked returns the term of the log entry at index (snapTerm for
// the snapshot boundary and the compacted prefix, 0 past the end).
func (e *Engine) termAtLocked(index uint64) uint64 {
	if index <= e.snapIndex {
		return e.snapTerm
	}
	if index > e.lastIndexLocked() {
		return 0
	}
	return e.log[index-e.snapIndex-1].Term
}

func (e *Engine) entryAtLocked(index uint64) *Entry {
	return &e.log[index-e.snapIndex-1]
}

// startElectionLocked begins a candidacy for term+1.
func (e *Engine) startElectionLocked(now time.Time) {
	e.term++
	e.role = candidate
	e.leader = noVote
	e.votedFor = e.ctx.Self
	e.votes = map[simnet.NodeID]bool{e.ctx.Self: true}
	e.elections.Add(1)
	e.saveMetaLocked() // term++/self-vote must be durable before soliciting
	e.resetDeadlineLocked(now)
	last := e.lastIndexLocked()
	rv := &RequestVote{Term: e.term, LastLogIndex: last, LastLogTerm: e.termAtLocked(last)}
	e.ctx.Endpoint.Broadcast(MsgRequestVote, rv)
	e.maybeWinLocked() // single-node clusters win on their own vote
}

// upToDateLocked implements the Raft voting restriction: grant only to
// candidates whose log is at least as complete as ours, which keeps
// committed entries from being lost across leader changes.
func (e *Engine) upToDateLocked(lastIndex, lastTerm uint64) bool {
	myLast := e.lastIndexLocked()
	myTerm := e.termAtLocked(myLast)
	if lastTerm != myTerm {
		return lastTerm > myTerm
	}
	return lastIndex >= myLast
}

// stepDownLocked returns to follower state, adopting a newer term.
func (e *Engine) stepDownLocked(term uint64, now time.Time) {
	if term > e.term {
		e.term = term
		e.votedFor = noVote
		e.saveMetaLocked() // adopted term must survive a crash
	}
	e.role = follower
	e.votes = nil
	e.batchDue = time.Time{}
	if len(e.assigned) > 0 {
		e.assigned = make(map[types.Hash]bool)
	}
	e.resetDeadlineLocked(now)
}

// maybeWinLocked promotes a candidate holding a majority of votes.
func (e *Engine) maybeWinLocked() {
	if e.role != candidate || len(e.votes) < e.majority() {
		return
	}
	e.role = leader
	e.leader = e.ctx.Self
	e.leaderWins.Add(1)
	e.next = make(map[simnet.NodeID]uint64, len(e.peers))
	e.match = make(map[simnet.NodeID]uint64, len(e.peers))
	e.ackAt = make(map[simnet.NodeID]time.Time, len(e.peers))
	last := e.lastIndexLocked()
	for _, p := range e.peers {
		e.next[p] = last + 1
	}
	// Re-mark transactions sitting in unapplied entries so the new
	// leader does not batch them twice while the barrier below commits.
	e.assigned = make(map[types.Hash]bool)
	for i := e.applied + 1; i <= last; i++ {
		for _, tx := range e.entryAtLocked(i).Txs {
			e.assigned[tx.Hash()] = true
		}
	}
	// A leader may only count replicas toward commitment for entries of
	// its own term (§5.4.2), so append a no-op barrier to flush any
	// uncommitted entries inherited from prior terms.
	if last > e.commit {
		e.log = append(e.log, Entry{Term: e.term})
	}
	e.lastProposal = time.Time{}
	e.broadcastAppendsLocked(true)
	e.advanceCommitLocked()
}

// pickBatchLocked selects pending transactions not already in flight.
func (e *Engine) pickBatchLocked() []*types.Transaction {
	candidates := e.ctx.Pool.Batch(e.opts.BatchSize+len(e.assigned), 0)
	out := make([]*types.Transaction, 0, e.opts.BatchSize)
	for _, tx := range candidates {
		if e.assigned[tx.Hash()] {
			continue
		}
		out = append(out, tx)
		if len(out) >= e.opts.BatchSize {
			break
		}
	}
	return out
}

// proposeLocked appends new log entries from the pool: full batches
// immediately, partial batches once BatchTimeout has passed (Fabric-
// style size/timeout batching, which Quorum's geth lineage shares). A
// withheld partial batch records its due time in batchDue so the run
// loop can fire a sub-tick timer instead of quantizing the timeout up
// to the next heartbeat. Reports whether anything was appended.
func (e *Engine) proposeLocked(now time.Time) bool {
	e.batchDue = time.Time{}
	appended := false
	for rounds := 0; rounds < 8; rounds++ {
		if e.lastIndexLocked()-e.commit >= uint64(e.opts.Window) {
			break
		}
		txs := e.pickBatchLocked()
		if len(txs) == 0 {
			break
		}
		if len(txs) < e.opts.BatchSize && !e.lastProposal.IsZero() {
			if due := e.lastProposal.Add(e.opts.BatchTimeout); now.Before(due) {
				// Wait for a fuller batch; the sub-tick timer (or the
				// next pool notification) retries at the deadline.
				if !e.opts.TickOnly {
					e.batchDue = due
				}
				break
			}
		}
		for _, tx := range txs {
			e.assigned[tx.Hash()] = true
			e.ctx.Tracer.Stamp(tx.Hash(), trace.StagePropose)
		}
		e.log = append(e.log, Entry{Term: e.term, Txs: txs})
		e.lastProposal = now
		appended = true
	}
	return appended
}

// broadcastAppendsLocked replicates to every follower. With heartbeat
// set, followers with nothing outstanding still receive an empty
// AppendEntries carrying the commit index (and refreshing the lease).
func (e *Engine) broadcastAppendsLocked(heartbeat bool) {
	for _, p := range e.peers {
		if p != e.ctx.Self {
			e.sendToLocked(p, heartbeat)
		}
	}
}

// sendToLocked ships the follower's next window(s). Pipelined: nextIndex
// advances optimistically as messages go out, running ahead of the
// acknowledged matchIndex by up to Window entries in MaxAppend-sized
// messages, so a burst streams without waiting for per-message acks.
// Followers behind the compacted prefix get an InstallSnapshot instead.
func (e *Engine) sendToLocked(p simnet.NodeID, heartbeat bool) {
	ni := e.next[p]
	if ni == 0 {
		ni = 1
	}
	if ni <= e.snapIndex {
		e.sendSnapshotLocked(p)
		return
	}
	last := e.lastIndexLocked()
	sent := false
	for ni <= last && ni-1-e.match[p] < uint64(e.opts.Window) {
		end := ni - 1 + uint64(e.opts.MaxAppend)
		if end > last {
			end = last
		}
		// Copy: the payload crosses goroutines by reference and our log
		// tail may later be truncated by a successor leader.
		entries := append([]Entry(nil), e.log[ni-e.snapIndex-1:end-e.snapIndex]...)
		e.ctx.Endpoint.Send(p, MsgAppend, &AppendEntries{
			Term:      e.term,
			PrevIndex: ni - 1,
			PrevTerm:  e.termAtLocked(ni - 1),
			Entries:   entries,
			Commit:    e.commit,
			Sent:      time.Now().UnixNano(),
		})
		ni = end + 1
		sent = true
	}
	e.next[p] = ni
	if !sent && heartbeat {
		e.ctx.Endpoint.Send(p, MsgAppend, &AppendEntries{
			Term:      e.term,
			PrevIndex: ni - 1,
			PrevTerm:  e.termAtLocked(ni - 1),
			Commit:    e.commit,
			Sent:      time.Now().UnixNano(),
		})
	}
}

// sendSnapshotLocked offers the local snapshot to a follower whose next
// index fell behind the compacted prefix, throttled per follower to one
// offer per heartbeat interval.
func (e *Engine) sendSnapshotLocked(p simnet.NodeID) {
	now := time.Now()
	if at, ok := e.snapSentAt[p]; ok && now.Sub(at) < e.opts.Heartbeat {
		return
	}
	e.snapSentAt[p] = now
	e.snapsSent.Add(1)
	e.ctx.Endpoint.Send(p, MsgSnapshot, &InstallSnapshot{
		Term:      e.term,
		LastIndex: e.snapIndex,
		LastTerm:  e.snapTerm,
		Height:    e.snapHeight,
		Root:      e.snapRoot,
		Sent:      now.UnixNano(),
	})
}

// advanceCommitLocked moves the commit index to the highest entry of
// the current term stored by a majority, then applies. It reports
// whether the commit index moved, so the caller can propagate it to
// followers without waiting for the next heartbeat.
func (e *Engine) advanceCommitLocked() bool {
	advanced := false
	if e.role == leader {
		for n := e.lastIndexLocked(); n > e.commit; n-- {
			if e.termAtLocked(n) != e.term {
				break // older terms commit transitively (§5.4.2)
			}
			cnt := 1 // self
			for _, p := range e.peers {
				if p != e.ctx.Self && e.match[p] >= n {
					cnt++
				}
			}
			if cnt >= e.majority() {
				advanced = n > e.commit
				e.commit = n
				break
			}
		}
	}
	e.applyLocked()
	return advanced
}

// applyLocked executes committed entries in log order, appending one
// block per non-empty batch. Every replica builds byte-identical blocks
// (deterministic header, no proposer), exactly like the PBFT preset. A
// replica that installed a snapshot holds off until the chain sync has
// delivered the snapshot's blocks; blocks the sync already delivered
// past that point are recognized by height and skipped instead of
// rebuilt. Applied prefixes past the retention window are compacted.
func (e *Engine) applyLocked() {
	if !e.baseSet {
		// Baseline: the chain height the log's first entry builds on
		// (preloaded history stays outside the log's accounting).
		e.appliedHeight = e.ctx.Chain.Height()
		e.snapHeight = e.appliedHeight
		e.baseSet = true
	}
	before := e.applied
	defer func() {
		if e.applied != before {
			// The meta write lands after the blocks it accounts for, so a
			// crash between the two leaves meta.Height at most the chain
			// height — restore absorbs the gap via the skip-account path.
			e.saveMetaLocked()
		}
	}()
	for e.applied < e.commit {
		if e.ctx.Chain.Height() < e.appliedHeight {
			return // chain sync toward the snapshot still in flight
		}
		en := e.entryAtLocked(e.applied + 1)
		if len(en.Txs) == 0 {
			e.applied++
			continue
		}
		target := e.appliedHeight + 1
		if e.ctx.Chain.Height() >= target {
			// Already on the chain (delivered by the snapshot sync);
			// account for it without rebuilding.
			e.applied++
			e.appliedHeight = target
			for _, tx := range en.Txs {
				delete(e.assigned, tx.Hash())
			}
			e.batchesDone.Add(1)
			continue
		}
		head := e.ctx.Chain.Head()
		block := &types.Block{
			Header: types.Header{
				Number:     head.Number() + 1,
				ParentHash: head.Hash(),
				Time:       int64(head.Number() + 1),
				View:       en.Term,
				// TxRoot makes the block content-addressed: without it
				// two chains (the sharded platform runs one per group)
				// could build same-height blocks with identical hashes
				// over different transactions.
				TxRoot: merkle.TxRoot(en.Txs),
			},
			Txs: en.Txs,
		}
		if err := e.ctx.Chain.Append(block); err != nil {
			return // retry on the next event
		}
		e.applied++
		e.appliedHeight = target
		for _, tx := range en.Txs {
			delete(e.assigned, tx.Hash())
		}
		e.batchesDone.Add(1)
	}
	e.maybeCompactLocked()
}

// maybeCompactLocked truncates the applied log prefix behind a snapshot
// record once it outgrows the retention window, keeping at least
// Retain/2 applied entries resident so nearby followers still catch up
// from the log (amortizing the copy to O(1) per applied entry). The
// snapshot records the chain height and block hash at the cutoff; a
// follower further behind than the resident prefix is caught up with
// InstallSnapshot plus a chain sync.
func (e *Engine) maybeCompactLocked() {
	retain := uint64(e.opts.Retain)
	if retain == 0 || e.applied-e.snapIndex <= retain {
		return
	}
	keep := retain / 2
	if keep == 0 {
		keep = 1
	}
	cutoff := e.applied - keep
	// Walk the dropped prefix to advance the snapshot's chain height
	// (empty barrier entries produce no block).
	h := e.snapHeight
	for i := e.snapIndex + 1; i <= cutoff; i++ {
		if len(e.entryAtLocked(i).Txs) > 0 {
			h++
		}
	}
	e.snapTerm = e.termAtLocked(cutoff)
	e.log = append([]Entry(nil), e.log[cutoff-e.snapIndex:]...)
	e.snapIndex = cutoff
	e.snapHeight = h
	if b, ok := e.ctx.Chain.GetBlock(h); ok {
		e.snapRoot = b.Hash()
	}
	e.compactions.Add(1)
}

// maybeSyncLocked re-requests the canonical-chain sync while this
// replica's chain is still short of its installed snapshot, and drains
// newly synced blocks into the applied accounting once it is not.
func (e *Engine) maybeSyncLocked(now time.Time) {
	if !e.baseSet {
		return
	}
	if e.ctx.Chain.Height() >= e.appliedHeight {
		e.applyLocked()
		return
	}
	if e.leader == noVote || now.Sub(e.syncReqAt) < 2*e.opts.Heartbeat {
		return
	}
	e.syncReqAt = now
	consensus.RequestSync(e.ctx, e.leader)
}

// Handle implements consensus.Engine.
func (e *Engine) Handle(msg simnet.Message) bool {
	switch msg.Type {
	case MsgRequestVote, MsgVote, MsgAppend, MsgAppendResp, MsgSnapshot:
	case consensus.MsgSyncReq, consensus.MsgSyncResp:
		// Snapshot catch-up moves canonical blocks over the shared sync
		// protocol; any replica serves requests from its chain.
		return consensus.HandleSync(e.ctx, msg)
	default:
		return false
	}
	if msg.Corrupt {
		// Damaged messages fail authentication and are discarded — the
		// paper's "random response" Byzantine failure mode.
		return true
	}
	switch msg.Type {
	case MsgRequestVote:
		if rv, ok := msg.Payload.(*RequestVote); ok {
			e.onRequestVote(msg.From, rv)
		}
	case MsgVote:
		if v, ok := msg.Payload.(*Vote); ok {
			e.onVote(msg.From, v)
		}
	case MsgAppend:
		if ae, ok := msg.Payload.(*AppendEntries); ok {
			e.onAppend(msg.From, ae)
		}
	case MsgAppendResp:
		if r, ok := msg.Payload.(*AppendResp); ok {
			e.onAppendResp(msg.From, r)
		}
	case MsgSnapshot:
		if s, ok := msg.Payload.(*InstallSnapshot); ok {
			e.onSnapshot(msg.From, s)
		}
	}
	return true
}

func (e *Engine) onRequestVote(from simnet.NodeID, rv *RequestVote) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now()
	if rv.Term > e.term {
		e.stepDownLocked(rv.Term, now)
	}
	// Lease soundness needs sticky voters (§9.6): a follower that heard
	// from a live leader within the election timeout refuses to elect a
	// successor, so no new leader can win while the incumbent may still
	// hold a read lease (lease ≤ ElectionTimeout/2 ≪ this window).
	sticky := !e.heardLeader.IsZero() && now.Sub(e.heardLeader) < e.opts.ElectionTimeout
	granted := rv.Term == e.term && e.role == follower && !sticky &&
		(e.votedFor == noVote || e.votedFor == from) &&
		e.upToDateLocked(rv.LastLogIndex, rv.LastLogTerm)
	if granted {
		e.votedFor = from
		e.saveMetaLocked() // the vote is a durable promise
		e.resetDeadlineLocked(now)
	}
	e.ctx.Endpoint.Send(from, MsgVote, &Vote{Term: e.term, Granted: granted})
}

func (e *Engine) onVote(from simnet.NodeID, v *Vote) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v.Term > e.term {
		e.stepDownLocked(v.Term, time.Now())
		return
	}
	if e.role != candidate || v.Term != e.term || !v.Granted {
		return
	}
	e.votes[from] = true
	e.maybeWinLocked()
}

func (e *Engine) onAppend(from simnet.NodeID, ae *AppendEntries) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now()
	if ae.Term < e.term {
		e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{Term: e.term})
		return
	}
	// Valid leader for this term (or newer): follow it.
	e.stepDownLocked(ae.Term, now)
	e.leader = from
	e.heardLeader = now

	prev, entries := ae.PrevIndex, ae.Entries
	if prev < e.snapIndex {
		// The leader starts below our snapshot: everything at or below
		// snapIndex is committed and applied here, so skip that prefix.
		skip := e.snapIndex - prev
		if uint64(len(entries)) <= skip {
			e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{
				Term: e.term, OK: true, Match: e.snapIndex, Echo: ae.Sent,
			})
			return
		}
		entries = entries[skip:]
		prev = e.snapIndex
	}
	last := e.lastIndexLocked()
	if prev > last || e.termAtLocked(prev) != ae.PrevTerm {
		// Log gap or conflict at PrevIndex: hint our log end so the
		// leader backs nextIndex up in one round instead of one-by-one.
		hint := last
		if prev > 0 && hint >= prev {
			hint = prev - 1
		}
		e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{Term: e.term, Match: hint, Echo: ae.Sent})
		return
	}
	for i := range entries {
		idx := prev + 1 + uint64(i)
		if idx <= e.lastIndexLocked() {
			if e.termAtLocked(idx) == entries[i].Term {
				continue // already stored
			}
			e.log = e.log[:idx-e.snapIndex-1] // conflict: discard our divergent tail
		}
		e.log = append(e.log, entries[i])
	}
	if ae.Commit > e.commit {
		e.commit = ae.Commit
		if max := e.lastIndexLocked(); e.commit > max {
			e.commit = max
		}
		e.applyLocked()
	}
	e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{
		Term: e.term, OK: true, Match: prev + uint64(len(entries)), Echo: ae.Sent,
	})
}

func (e *Engine) onAppendResp(from simnet.NodeID, r *AppendResp) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r.Term > e.term {
		e.stepDownLocked(r.Term, time.Now())
		return
	}
	if e.role != leader || r.Term != e.term {
		return
	}
	// Any same-term response proves the follower still recognized this
	// leader when the echoed append left — the lease evidence, anchored
	// at send time so in-flight delay can never stretch the lease past
	// the follower's sticky-voter promise (monotone against reordering).
	if r.Echo > 0 {
		if at := time.Unix(0, r.Echo); at.After(e.ackAt[from]) {
			e.ackAt[from] = at
		}
	}
	if r.OK {
		if r.Match > e.match[from] {
			e.match[from] = r.Match
		}
		if e.next[from] < e.match[from]+1 {
			e.next[from] = e.match[from] + 1
		}
		advanced := e.advanceCommitLocked()
		if !e.opts.TickOnly {
			if advanced {
				// The commit advance freed proposal-window space: pick up
				// pool transactions that a burst left behind (a coalesced
				// notify proposes at most the window), then push the new
				// commit index to every follower now; otherwise both
				// would wait for the next tick.
				e.proposeLocked(time.Now())
				e.broadcastAppendsLocked(true)
			}
			// Pipeline continuation: ship the next window right away
			// instead of waiting for the tick.
			e.sendToLocked(from, false)
		}
		return
	}
	// Rejected: back up toward the follower's hint and resend
	// immediately (fast backoff). A hint below the acknowledged match
	// means the follower lost a previously-stored log suffix in a crash
	// (entries are acknowledged before they are fsynced, so a kill can
	// take back an ack): matchIndex is only monotone for followers with
	// stable storage. Accept the regression — refusing it would floor
	// nextIndex above the follower's log end and wedge replication (and
	// with it the commit index) forever. Lowering match is always safe:
	// it can only delay commit advancement, never un-commit.
	ni := e.next[from]
	if ni == 0 {
		ni = 1
	}
	if hinted := r.Match + 1; hinted < ni {
		ni = hinted
	} else if ni > 1 {
		ni--
	}
	if ni <= e.match[from] {
		e.match[from] = ni - 1
	}
	e.next[from] = ni
	if !e.opts.TickOnly {
		e.sendToLocked(from, false)
	}
}

// onSnapshot installs a leader's snapshot on a follower whose log fell
// behind the leader's compacted prefix: the local log is discarded, the
// commit/applied indexes jump to the snapshot, and the canonical blocks
// up to the snapshot height are pulled from the leader over the sync
// protocol (the chain converges to the leader's byte-identical blocks;
// applying later entries waits until it has).
func (e *Engine) onSnapshot(from simnet.NodeID, s *InstallSnapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now()
	if s.Term < e.term {
		e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{Term: e.term})
		return
	}
	e.stepDownLocked(s.Term, now)
	e.leader = from
	e.heardLeader = now
	if s.LastIndex <= e.commit {
		// Stale offer: everything it covers is already committed here.
		// Ack only the committed prefix — committed entries are the ones
		// guaranteed to match the leader's; an uncommitted tail may
		// diverge, and over-reporting it would let the leader count
		// phantom replication toward commitment.
		e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{
			Term: e.term, OK: true, Match: e.commit, Echo: s.Sent,
		})
		return
	}
	e.log = nil
	e.snapIndex = s.LastIndex
	e.snapTerm = s.LastTerm
	e.snapHeight = s.Height
	e.snapRoot = s.Root
	e.commit = s.LastIndex
	e.applied = s.LastIndex
	e.appliedHeight = s.Height
	e.baseSet = true
	e.assigned = make(map[types.Hash]bool)
	e.snapsTaken.Add(1)
	e.saveMetaLocked()
	e.syncReqAt = now
	consensus.RequestSync(e.ctx, from)
	e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{
		Term: e.term, OK: true, Match: s.LastIndex, Echo: s.Sent,
	})
}
