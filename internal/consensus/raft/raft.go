// Package raft implements Raft crash-fault-tolerant ordering as used by
// the Quorum preset (a geth fork that replaced PoW with Raft for
// permissioned deployments). One node is elected leader with randomized
// timeouts; the leader batches transactions from its pool into log
// entries, replicates them with AppendEntries, and advances the commit
// index once a majority of replicas store an entry. Committed entries
// are applied in log order as blocks on the ledger, so the chain never
// forks and transactions are final the moment they commit — the
// crash-fault-tolerant counterpart to PBFT's Byzantine quorums, with
// O(N) messages per batch instead of O(N^2).
//
// Like the other engines, a replica processes all messages on its
// node's single inbox goroutine; the timer loop drives heartbeats,
// batching and election timeouts. Corrupted messages (the random-
// response fault injector) fail authentication and are dropped.
package raft

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/merkle"
	"blockbench/internal/simnet"
	"blockbench/internal/types"
)

// Message type tags on the simulated network.
const (
	MsgRequestVote = "raft_reqvote"
	MsgVote        = "raft_vote"
	MsgAppend      = "raft_append"
	MsgAppendResp  = "raft_appendresp"
)

// Entry is one replicated log slot: a batch of transactions stamped
// with the term it was proposed in. Empty batches are leader-change
// barriers and produce no block.
type Entry struct {
	Term uint64
	Txs  []*types.Transaction
}

func (e *Entry) wireSize() int {
	n := 8
	for _, tx := range e.Txs {
		n += tx.WireSize()
	}
	return n
}

// RequestVote solicits a vote for a candidacy at Term.
type RequestVote struct {
	Term         uint64
	LastLogIndex uint64
	LastLogTerm  uint64
}

// WireSize implements simnet.Sizer.
func (*RequestVote) WireSize() int { return 24 }

// Vote answers a RequestVote.
type Vote struct {
	Term    uint64
	Granted bool
}

// WireSize implements simnet.Sizer.
func (*Vote) WireSize() int { return 16 }

// AppendEntries replicates log entries (or, with none, heartbeats).
type AppendEntries struct {
	Term      uint64
	PrevIndex uint64
	PrevTerm  uint64
	Entries   []Entry
	Commit    uint64
}

// WireSize implements simnet.Sizer.
func (m *AppendEntries) WireSize() int {
	n := 40
	for i := range m.Entries {
		n += m.Entries[i].wireSize()
	}
	return n
}

// AppendResp acknowledges an AppendEntries. On success Match is the
// highest log index now stored; on failure it hints where the
// follower's log ends so the leader can back up nextIndex quickly.
type AppendResp struct {
	Term  uint64
	OK    bool
	Match uint64
}

// WireSize implements simnet.Sizer.
func (*AppendResp) WireSize() int { return 24 }

// Options tunes the protocol.
type Options struct {
	// ElectionTimeout is the follower timeout floor; each replica draws
	// a fresh deadline in [ElectionTimeout, 2*ElectionTimeout) so
	// elections rarely collide (Raft's randomized timeouts).
	ElectionTimeout time.Duration
	// Heartbeat is the leader's AppendEntries cadence, which also paces
	// batching and commit-index propagation. Must be well below
	// ElectionTimeout.
	Heartbeat time.Duration
	// BatchSize is the number of transactions per log entry (Quorum
	// inherits geth's block batching; the repository default matches
	// the PBFT preset's 20 at the 25x scale).
	BatchSize int
	// BatchTimeout proposes a partial batch after this long.
	BatchTimeout time.Duration
	// Window bounds uncommitted entries in flight.
	Window int
	// MaxAppend bounds entries per AppendEntries message; laggards are
	// caught up over multiple rounds.
	MaxAppend int
	// Seed makes election-timeout randomization reproducible per node.
	Seed int64
}

// DefaultOptions returns the Quorum-preset defaults.
func DefaultOptions() Options {
	return Options{
		ElectionTimeout: 300 * time.Millisecond,
		Heartbeat:       20 * time.Millisecond,
		BatchSize:       20,
		BatchTimeout:    10 * time.Millisecond,
		Window:          64,
		MaxAppend:       32,
	}
}

type role int

const (
	follower role = iota
	candidate
	leader
)

const noVote = simnet.NodeID(-1)

// Engine is one Raft replica driving one node.
type Engine struct {
	ctx   consensus.Context
	opts  Options
	peers []simnet.NodeID // sorted, including self

	mu       sync.Mutex
	term     uint64
	votedFor simnet.NodeID
	role     role
	leader   simnet.NodeID
	log      []Entry // 1-based: index i lives at log[i-1]
	commit   uint64
	applied  uint64

	votes        map[simnet.NodeID]bool
	next         map[simnet.NodeID]uint64
	match        map[simnet.NodeID]uint64
	assigned     map[types.Hash]bool // txs already batched (leader)
	rng          *rand.Rand
	deadline     time.Time // election deadline (follower/candidate)
	lastProposal time.Time

	elections   atomic.Uint64
	leaderWins  atomic.Uint64
	batchesDone atomic.Uint64

	stop    chan struct{}
	done    sync.WaitGroup
	started atomic.Bool
}

// New creates a Raft engine. All peers run replicas.
func New(ctx consensus.Context, opts Options) *Engine {
	def := DefaultOptions()
	if opts.ElectionTimeout <= 0 {
		opts.ElectionTimeout = def.ElectionTimeout
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = def.Heartbeat
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = def.BatchSize
	}
	if opts.BatchTimeout <= 0 {
		opts.BatchTimeout = def.BatchTimeout
	}
	if opts.Window <= 0 {
		opts.Window = def.Window
	}
	if opts.MaxAppend <= 0 {
		opts.MaxAppend = def.MaxAppend
	}
	peers := append([]simnet.NodeID(nil), ctx.Peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	e := &Engine{
		ctx:      ctx,
		opts:     opts,
		peers:    peers,
		votedFor: noVote,
		leader:   noVote,
		assigned: make(map[types.Hash]bool),
		rng:      rand.New(rand.NewSource(opts.Seed*7919 + int64(ctx.Self)*104729 + 1)),
		stop:     make(chan struct{}),
	}
	e.resetDeadlineLocked(time.Now())
	return e
}

func (e *Engine) majority() int { return len(e.peers)/2 + 1 }

// Start implements consensus.Engine.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	e.done.Add(1)
	go e.timerLoop()
}

// Stop implements consensus.Engine.
func (e *Engine) Stop() {
	if e.started.CompareAndSwap(true, false) {
		close(e.stop)
		e.done.Wait()
	}
}

// Term returns the current term (for tests and diagnostics).
func (e *Engine) Term() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.term
}

// IsLeader reports whether this replica currently leads.
func (e *Engine) IsLeader() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.role == leader
}

// Elections counts elections this replica has started.
func (e *Engine) Elections() uint64 { return e.elections.Load() }

// LeaderWins counts elections this replica has won.
func (e *Engine) LeaderWins() uint64 { return e.leaderWins.Load() }

// BatchesCommitted counts log entries this replica has applied as
// blocks.
func (e *Engine) BatchesCommitted() uint64 { return e.batchesDone.Load() }

// Counters implements metrics.CounterProvider.
func (e *Engine) Counters() map[string]uint64 {
	return map[string]uint64{
		"raft.elections":   e.elections.Load(),
		"raft.leader_wins": e.leaderWins.Load(),
		"raft.batches":     e.batchesDone.Load(),
	}
}

func (e *Engine) resetDeadlineLocked(now time.Time) {
	jitter := time.Duration(e.rng.Int63n(int64(e.opts.ElectionTimeout)))
	e.deadline = now.Add(e.opts.ElectionTimeout + jitter)
}

// timerLoop drives heartbeats and batching (when leader) and election
// timeouts (otherwise).
func (e *Engine) timerLoop() {
	defer e.done.Done()
	tick := time.NewTicker(e.opts.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case now := <-tick.C:
			e.mu.Lock()
			if e.role == leader {
				e.proposeLocked(now)
				e.sendAppendsLocked()
				e.advanceCommitLocked()
			} else if now.After(e.deadline) {
				e.startElectionLocked(now)
			}
			e.mu.Unlock()
		}
	}
}

// lastTermLocked returns the term of the log entry at index (0 for the
// empty prefix).
func (e *Engine) termAtLocked(index uint64) uint64 {
	if index == 0 || index > uint64(len(e.log)) {
		return 0
	}
	return e.log[index-1].Term
}

// startElectionLocked begins a candidacy for term+1.
func (e *Engine) startElectionLocked(now time.Time) {
	e.term++
	e.role = candidate
	e.leader = noVote
	e.votedFor = e.ctx.Self
	e.votes = map[simnet.NodeID]bool{e.ctx.Self: true}
	e.elections.Add(1)
	e.resetDeadlineLocked(now)
	last := uint64(len(e.log))
	rv := &RequestVote{Term: e.term, LastLogIndex: last, LastLogTerm: e.termAtLocked(last)}
	e.ctx.Endpoint.Broadcast(MsgRequestVote, rv)
	e.maybeWinLocked() // single-node clusters win on their own vote
}

// upToDateLocked implements the Raft voting restriction: grant only to
// candidates whose log is at least as complete as ours, which keeps
// committed entries from being lost across leader changes.
func (e *Engine) upToDateLocked(lastIndex, lastTerm uint64) bool {
	myLast := uint64(len(e.log))
	myTerm := e.termAtLocked(myLast)
	if lastTerm != myTerm {
		return lastTerm > myTerm
	}
	return lastIndex >= myLast
}

// stepDownLocked returns to follower state, adopting a newer term.
func (e *Engine) stepDownLocked(term uint64, now time.Time) {
	if term > e.term {
		e.term = term
		e.votedFor = noVote
	}
	e.role = follower
	e.votes = nil
	if len(e.assigned) > 0 {
		e.assigned = make(map[types.Hash]bool)
	}
	e.resetDeadlineLocked(now)
}

// maybeWinLocked promotes a candidate holding a majority of votes.
func (e *Engine) maybeWinLocked() {
	if e.role != candidate || len(e.votes) < e.majority() {
		return
	}
	e.role = leader
	e.leader = e.ctx.Self
	e.leaderWins.Add(1)
	e.next = make(map[simnet.NodeID]uint64, len(e.peers))
	e.match = make(map[simnet.NodeID]uint64, len(e.peers))
	last := uint64(len(e.log))
	for _, p := range e.peers {
		e.next[p] = last + 1
	}
	// Re-mark transactions sitting in unapplied entries so the new
	// leader does not batch them twice while the barrier below commits.
	e.assigned = make(map[types.Hash]bool)
	for i := e.applied; i < uint64(len(e.log)); i++ {
		for _, tx := range e.log[i].Txs {
			e.assigned[tx.Hash()] = true
		}
	}
	// A leader may only count replicas toward commitment for entries of
	// its own term (§5.4.2), so append a no-op barrier to flush any
	// uncommitted entries inherited from prior terms.
	if last > e.commit {
		e.log = append(e.log, Entry{Term: e.term})
	}
	e.lastProposal = time.Time{}
	e.sendAppendsLocked()
	e.advanceCommitLocked()
}

// pickBatchLocked selects pending transactions not already in flight.
func (e *Engine) pickBatchLocked() []*types.Transaction {
	candidates := e.ctx.Pool.Batch(e.opts.BatchSize+len(e.assigned), 0)
	out := make([]*types.Transaction, 0, e.opts.BatchSize)
	for _, tx := range candidates {
		if e.assigned[tx.Hash()] {
			continue
		}
		out = append(out, tx)
		if len(out) >= e.opts.BatchSize {
			break
		}
	}
	return out
}

// proposeLocked appends new log entries from the pool: full batches
// immediately, partial batches once BatchTimeout has passed (Fabric-
// style size/timeout batching, which Quorum's geth lineage shares).
func (e *Engine) proposeLocked(now time.Time) {
	for rounds := 0; rounds < 8; rounds++ {
		if uint64(len(e.log))-e.commit >= uint64(e.opts.Window) {
			return
		}
		txs := e.pickBatchLocked()
		if len(txs) == 0 {
			return
		}
		if len(txs) < e.opts.BatchSize &&
			!e.lastProposal.IsZero() && now.Sub(e.lastProposal) < e.opts.BatchTimeout {
			return // wait for a fuller batch
		}
		for _, tx := range txs {
			e.assigned[tx.Hash()] = true
		}
		e.log = append(e.log, Entry{Term: e.term, Txs: txs})
		e.lastProposal = now
	}
}

// sendAppendsLocked replicates (or heartbeats) to every follower.
func (e *Engine) sendAppendsLocked() {
	last := uint64(len(e.log))
	for _, p := range e.peers {
		if p == e.ctx.Self {
			continue
		}
		ni := e.next[p]
		if ni == 0 {
			ni = 1
		}
		end := last
		if end > ni-1+uint64(e.opts.MaxAppend) {
			end = ni - 1 + uint64(e.opts.MaxAppend)
		}
		var entries []Entry
		if end >= ni {
			// Copy: the payload crosses goroutines by reference and our
			// log tail may later be truncated by a successor leader.
			entries = append(entries, e.log[ni-1:end]...)
		}
		e.ctx.Endpoint.Send(p, MsgAppend, &AppendEntries{
			Term:      e.term,
			PrevIndex: ni - 1,
			PrevTerm:  e.termAtLocked(ni - 1),
			Entries:   entries,
			Commit:    e.commit,
		})
	}
}

// advanceCommitLocked moves the commit index to the highest entry of
// the current term stored by a majority, then applies.
func (e *Engine) advanceCommitLocked() {
	if e.role == leader {
		for n := uint64(len(e.log)); n > e.commit; n-- {
			if e.log[n-1].Term != e.term {
				break // older terms commit transitively (§5.4.2)
			}
			cnt := 1 // self
			for _, p := range e.peers {
				if p != e.ctx.Self && e.match[p] >= n {
					cnt++
				}
			}
			if cnt >= e.majority() {
				e.commit = n
				break
			}
		}
	}
	e.applyLocked()
}

// applyLocked executes committed entries in log order, appending one
// block per non-empty batch. Every replica builds byte-identical blocks
// (deterministic header, no proposer), exactly like the PBFT preset.
func (e *Engine) applyLocked() {
	for e.applied < e.commit {
		en := e.log[e.applied]
		if len(en.Txs) == 0 {
			e.applied++
			continue
		}
		head := e.ctx.Chain.Head()
		block := &types.Block{
			Header: types.Header{
				Number:     head.Number() + 1,
				ParentHash: head.Hash(),
				Time:       int64(head.Number() + 1),
				View:       en.Term,
				// TxRoot makes the block content-addressed: without it
				// two chains (the sharded platform runs one per group)
				// could build same-height blocks with identical hashes
				// over different transactions.
				TxRoot: merkle.TxRoot(en.Txs),
			},
			Txs: en.Txs,
		}
		if err := e.ctx.Chain.Append(block); err != nil {
			return // retry on the next tick
		}
		e.applied++
		for _, tx := range en.Txs {
			delete(e.assigned, tx.Hash())
		}
		e.batchesDone.Add(1)
	}
}

// Handle implements consensus.Engine.
func (e *Engine) Handle(msg simnet.Message) bool {
	switch msg.Type {
	case MsgRequestVote, MsgVote, MsgAppend, MsgAppendResp:
	default:
		return false
	}
	if msg.Corrupt {
		// Damaged messages fail authentication and are discarded — the
		// paper's "random response" Byzantine failure mode.
		return true
	}
	switch msg.Type {
	case MsgRequestVote:
		if rv, ok := msg.Payload.(*RequestVote); ok {
			e.onRequestVote(msg.From, rv)
		}
	case MsgVote:
		if v, ok := msg.Payload.(*Vote); ok {
			e.onVote(msg.From, v)
		}
	case MsgAppend:
		if ae, ok := msg.Payload.(*AppendEntries); ok {
			e.onAppend(msg.From, ae)
		}
	case MsgAppendResp:
		if r, ok := msg.Payload.(*AppendResp); ok {
			e.onAppendResp(msg.From, r)
		}
	}
	return true
}

func (e *Engine) onRequestVote(from simnet.NodeID, rv *RequestVote) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now()
	if rv.Term > e.term {
		e.stepDownLocked(rv.Term, now)
	}
	granted := rv.Term == e.term && e.role == follower &&
		(e.votedFor == noVote || e.votedFor == from) &&
		e.upToDateLocked(rv.LastLogIndex, rv.LastLogTerm)
	if granted {
		e.votedFor = from
		e.resetDeadlineLocked(now)
	}
	e.ctx.Endpoint.Send(from, MsgVote, &Vote{Term: e.term, Granted: granted})
}

func (e *Engine) onVote(from simnet.NodeID, v *Vote) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v.Term > e.term {
		e.stepDownLocked(v.Term, time.Now())
		return
	}
	if e.role != candidate || v.Term != e.term || !v.Granted {
		return
	}
	e.votes[from] = true
	e.maybeWinLocked()
}

func (e *Engine) onAppend(from simnet.NodeID, ae *AppendEntries) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now()
	if ae.Term < e.term {
		e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{Term: e.term})
		return
	}
	// Valid leader for this term (or newer): follow it.
	e.stepDownLocked(ae.Term, now)
	e.leader = from

	last := uint64(len(e.log))
	if ae.PrevIndex > last || e.termAtLocked(ae.PrevIndex) != ae.PrevTerm {
		// Log gap or conflict at PrevIndex: hint our log end so the
		// leader backs nextIndex up in one round instead of one-by-one.
		hint := last
		if ae.PrevIndex > 0 && hint >= ae.PrevIndex {
			hint = ae.PrevIndex - 1
		}
		e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{Term: e.term, Match: hint})
		return
	}
	for i := range ae.Entries {
		idx := ae.PrevIndex + 1 + uint64(i)
		if idx <= uint64(len(e.log)) {
			if e.log[idx-1].Term == ae.Entries[i].Term {
				continue // already stored
			}
			e.log = e.log[:idx-1] // conflict: discard our divergent tail
		}
		e.log = append(e.log, ae.Entries[i])
	}
	if ae.Commit > e.commit {
		e.commit = ae.Commit
		if max := uint64(len(e.log)); e.commit > max {
			e.commit = max
		}
		e.applyLocked()
	}
	e.ctx.Endpoint.Send(from, MsgAppendResp, &AppendResp{
		Term: e.term, OK: true, Match: ae.PrevIndex + uint64(len(ae.Entries)),
	})
}

func (e *Engine) onAppendResp(from simnet.NodeID, r *AppendResp) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r.Term > e.term {
		e.stepDownLocked(r.Term, time.Now())
		return
	}
	if e.role != leader || r.Term != e.term {
		return
	}
	if r.OK {
		if r.Match > e.match[from] {
			e.match[from] = r.Match
		}
		e.next[from] = e.match[from] + 1
		e.advanceCommitLocked()
		return
	}
	// Rejected: back up toward the follower's hint and retry next tick.
	ni := e.next[from]
	if ni == 0 {
		ni = 1
	}
	hinted := r.Match + 1
	if hinted < ni {
		ni = hinted
	} else if ni > 1 {
		ni--
	}
	e.next[from] = ni
}
