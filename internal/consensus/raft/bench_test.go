package raft

import (
	"testing"
	"time"

	"blockbench/internal/types"
)

// BenchmarkRaftCommitLatency measures single-transaction commit latency
// (pool admission → receipt on the leader) on a 3-replica group, under
// the tick-driven baseline versus the event-driven pipeline. The
// baseline's latency floor is the heartbeat tick that used to pace
// proposals and appends; the pipelined engine proposes and replicates
// on the pool notification, so its latency is bounded by message round
// trips. Reported as ms/commit.
func BenchmarkRaftCommitLatency(b *testing.B) {
	for _, mode := range []struct {
		name     string
		tickOnly bool
	}{
		{"tick-floor", true},
		{"pipelined", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.ElectionTimeout = 150 * time.Millisecond
			opts.Heartbeat = 20 * time.Millisecond
			opts.BatchSize = 1 // every submission is a full batch
			opts.BatchTimeout = time.Millisecond
			opts.TickOnly = mode.tickOnly
			c := newTestCluster(b, 3, opts)
			l := c.waitLeader(b, nil)

			waitReceipt := func(id types.Hash) {
				deadline := time.Now().Add(10 * time.Second)
				for {
					if _, ok := c.nodes[l].chain.Receipt(id); ok {
						return
					}
					if time.Now().After(deadline) {
						b.Fatal("commit timed out")
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
			// Warm up one commit so the leader's pipeline state settles.
			waitReceipt(c.submit(1_000_000, nil).Hash())

			var total time.Duration
			const perIter = 10 // moderate load: sequential singles
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < perIter; j++ {
					tx := c.submit(i*perIter+j, nil)
					start := time.Now()
					waitReceipt(tx.Hash())
					total += time.Since(start)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N*perIter), "ms/commit")
		})
	}
}

// BenchmarkRaftLongRunMemory measures the resident log length over a
// long committed run with compaction off versus a small retention
// window: with retention the log must stay bounded by the window (plus
// the in-flight proposal window) no matter how long the run, which is
// what keeps long macro runs from re-encoding an ever-growing slice.
func BenchmarkRaftLongRunMemory(b *testing.B) {
	const entries = 600
	for _, mode := range []struct {
		name   string
		retain int
	}{
		{"retain-off", 0},
		{"retain-64", 64},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var maxLog float64
			for i := 0; i < b.N; i++ {
				opts := DefaultOptions()
				opts.ElectionTimeout = 150 * time.Millisecond
				opts.Heartbeat = 10 * time.Millisecond
				opts.BatchSize = 1
				opts.BatchTimeout = time.Millisecond
				if mode.retain > 0 {
					opts.Retain = mode.retain
				} else {
					opts.Retain = -1 // normalized to 0: compaction off
				}
				c := newTestCluster(b, 3, opts)
				l := c.waitLeader(b, nil)
				var last *types.Transaction
				for j := 0; j < entries; j++ {
					last = c.submit(i*entries+j, nil)
					if lg := c.nodes[l].e.LogLen(); float64(lg) > maxLog {
						maxLog = float64(lg)
					}
					if j%50 == 49 { // pace: let commits drain the window
						c.waitCommitted(b, []*types.Transaction{last}, nil)
					}
				}
				c.waitCommitted(b, []*types.Transaction{last}, nil)
				if lg := c.nodes[l].e.LogLen(); float64(lg) > maxLog {
					maxLog = float64(lg)
				}
				if mode.retain > 0 && maxLog > float64(mode.retain+opts.Window) {
					b.Fatalf("resident log %v exceeded retention window %d (+%d in flight)",
						maxLog, mode.retain, opts.Window)
				}
				for _, tn := range c.nodes {
					tn.e.Stop()
				}
			}
			b.ReportMetric(maxLog, "log-entries-max")
		})
	}
}
