package raft

import (
	"testing"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/ledger"
	"blockbench/internal/simnet"
	"blockbench/internal/state"
	"blockbench/internal/txpool"
	"blockbench/internal/types"
)

// fastOptions keeps elections and batching quick for tests.
func fastOptions() Options {
	o := DefaultOptions()
	o.ElectionTimeout = 60 * time.Millisecond
	o.Heartbeat = 5 * time.Millisecond
	o.BatchTimeout = 5 * time.Millisecond
	return o
}

type testNode struct {
	e     *Engine
	ep    *simnet.Endpoint
	chain *ledger.Chain
	pool  *txpool.Pool
	stop  chan struct{}
}

type testCluster struct {
	net   *simnet.Network
	nodes []*testNode
}

// newTestCluster boots n replicas over a fresh simnet, each with its own
// chain, pool and a pump goroutine standing in for the node inbox loop.
func newTestCluster(t *testing.T, n int, opts Options) *testCluster {
	t.Helper()
	net := simnet.New(simnet.Config{
		BaseLatency: 50 * time.Microsecond,
		Jitter:      50 * time.Microsecond,
		InboxSize:   4096,
		Seed:        1,
	})
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	c := &testCluster{net: net}
	for i := 0; i < n; i++ {
		store := kvstore.NewMem()
		eng, err := exec.NewNativeEngine("donothing")
		if err != nil {
			t.Fatal(err)
		}
		pool := txpool.New(1 << 16)
		chain, err := ledger.New(ledger.Config{
			Engine: eng,
			StateFactory: func(root types.Hash) (*state.DB, error) {
				b, err := state.NewTrieBackend(store, root, 0)
				if err != nil {
					return nil, err
				}
				return state.NewDB(b), nil
			},
			SupportsForks: true,
			OnInclude:     pool.MarkIncluded,
		})
		if err != nil {
			t.Fatal(err)
		}
		ep := net.Join(simnet.NodeID(i))
		tn := &testNode{
			ep:    ep,
			chain: chain,
			pool:  pool,
			stop:  make(chan struct{}),
		}
		tn.e = New(consensus.Context{
			Self:     simnet.NodeID(i),
			Endpoint: ep,
			Chain:    chain,
			Pool:     pool,
			Peers:    peers,
		}, opts)
		go func(tn *testNode) {
			for {
				select {
				case <-tn.stop:
					return
				case msg := <-tn.ep.Inbox:
					tn.e.Handle(msg)
				}
			}
		}(tn)
		c.nodes = append(c.nodes, tn)
	}
	t.Cleanup(func() {
		for _, tn := range c.nodes {
			tn.e.Stop()
			close(tn.stop)
		}
		net.Close()
	})
	for _, tn := range c.nodes {
		tn.e.Start()
	}
	return c
}

// leader returns the index of the single live leader, or -1.
func (c *testCluster) leader(skip map[int]bool) int {
	found := -1
	for i, tn := range c.nodes {
		if skip[i] {
			continue
		}
		if tn.e.IsLeader() {
			if found >= 0 {
				return -1 // two leaders visible; not settled yet
			}
			found = i
		}
	}
	return found
}

func (c *testCluster) waitLeader(t *testing.T, skip map[int]bool) int {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l := c.leader(skip); l >= 0 {
			return l
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return -1
}

// submit puts the same transaction into every live pool, standing in for
// the node layer's gossip.
func (c *testCluster) submit(i int, skip map[int]bool) *types.Transaction {
	tx := &types.Transaction{
		Nonce:    uint64(i),
		Contract: "donothing",
		Method:   "nop",
		GasLimit: 100_000,
	}
	for j, tn := range c.nodes {
		if !skip[j] {
			tn.pool.Add(tx)
		}
	}
	return tx
}

func (c *testCluster) waitCommitted(t *testing.T, txs []*types.Transaction, skip map[int]bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for i, tn := range c.nodes {
			if skip[i] {
				continue
			}
			for _, tx := range txs {
				if _, ok := tn.chain.Receipt(tx.Hash()); !ok {
					done = false
					break
				}
			}
			if !done {
				break
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("transactions not committed everywhere (node0 height=%d)", c.nodes[0].chain.Height())
}

func TestMajorityMath(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 8: 5, 9: 5}
	for n, want := range cases {
		peers := make([]simnet.NodeID, n)
		for i := range peers {
			peers[i] = simnet.NodeID(i)
		}
		e := New(consensus.Context{Peers: peers}, DefaultOptions())
		if got := e.majority(); got != want {
			t.Errorf("n=%d: majority = %d, want %d", n, got, want)
		}
	}
}

func TestWireSizes(t *testing.T) {
	if (&RequestVote{}).WireSize() != 24 {
		t.Fatal("request-vote size wrong")
	}
	ae := &AppendEntries{Entries: []Entry{{Txs: []*types.Transaction{{Method: "m"}}}}}
	if ae.WireSize() <= 40 {
		t.Fatal("append-entries size ignores entries")
	}
	if (&AppendEntries{}).WireSize() != 40 {
		t.Fatal("heartbeat size wrong")
	}
}

func TestVoteRestrictionPrefersCompleteLogs(t *testing.T) {
	peers := []simnet.NodeID{0, 1, 2}
	e := New(consensus.Context{Self: 0, Peers: peers}, DefaultOptions())
	e.mu.Lock()
	e.log = []Entry{{Term: 1}, {Term: 2}}
	if e.upToDateLocked(1, 2) {
		t.Fatal("granted vote to a shorter log of the same last term")
	}
	if e.upToDateLocked(5, 1) {
		t.Fatal("granted vote to a longer log with an older last term")
	}
	if !e.upToDateLocked(2, 2) {
		t.Fatal("rejected an equal log")
	}
	if !e.upToDateLocked(1, 3) {
		t.Fatal("rejected a newer-term log")
	}
	e.mu.Unlock()
}

func TestElectsSingleLeader(t *testing.T) {
	c := newTestCluster(t, 5, fastOptions())
	l := c.waitLeader(t, nil)
	// Terms converge and exactly one leader remains.
	time.Sleep(100 * time.Millisecond)
	if again := c.leader(nil); again != l {
		// A re-election can legitimately move the crown; just require
		// that some single leader exists.
		if again < 0 {
			t.Fatalf("leadership did not settle (was %d)", l)
		}
	}
}

func TestReplicatesBatchesToAllReplicas(t *testing.T) {
	c := newTestCluster(t, 4, fastOptions())
	c.waitLeader(t, nil)
	var txs []*types.Transaction
	for i := 0; i < 30; i++ {
		txs = append(txs, c.submit(i, nil))
	}
	c.waitCommitted(t, txs, nil)
	// All replicas converged on identical chains with no forks.
	h0 := c.nodes[0].chain.Height()
	ref, _ := c.nodes[0].chain.GetBlock(h0)
	for i, tn := range c.nodes {
		if tn.chain.Height() < h0 {
			continue // laggard within a heartbeat of catching up
		}
		b, ok := tn.chain.GetBlock(h0)
		if !ok || b.Hash() != ref.Hash() {
			t.Fatalf("node %d diverged at height %d", i, h0)
		}
		if tn.chain.KnownBlocks() != tn.chain.Height() {
			t.Fatalf("node %d has side-chain blocks: raft must never fork", i)
		}
	}
}

func TestLeaderCrashTriggersReElection(t *testing.T) {
	c := newTestCluster(t, 5, fastOptions())
	old := c.waitLeader(t, nil)

	var txs []*types.Transaction
	for i := 0; i < 10; i++ {
		txs = append(txs, c.submit(i, nil))
	}
	c.waitCommitted(t, txs, nil)

	c.net.Crash(simnet.NodeID(old))
	skip := map[int]bool{old: true}
	deadline := time.Now().Add(10 * time.Second)
	nl := -1
	for time.Now().Before(deadline) {
		if l := c.leader(skip); l >= 0 && l != old {
			nl = l
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if nl < 0 {
		t.Fatal("no new leader after crash")
	}

	txs = nil
	for i := 100; i < 110; i++ {
		txs = append(txs, c.submit(i, skip))
	}
	c.waitCommitted(t, txs, skip)
}

func TestNoProgressWithoutMajority(t *testing.T) {
	c := newTestCluster(t, 4, fastOptions())
	c.waitLeader(t, nil)
	// Crash 2 of 4: the rest cannot reach majority 3.
	c.net.Crash(2)
	c.net.Crash(3)
	skip := map[int]bool{2: true, 3: true}
	time.Sleep(150 * time.Millisecond) // let any in-flight commits land
	h := c.nodes[0].chain.Height()
	for i := 0; i < 5; i++ {
		c.submit(i, skip)
	}
	time.Sleep(400 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if got := c.nodes[i].chain.Height(); got != h {
			t.Fatalf("node %d advanced from %d to %d without a majority", i, h, got)
		}
	}
}

func TestPartitionedMinorityRejoins(t *testing.T) {
	c := newTestCluster(t, 5, fastOptions())
	c.waitLeader(t, nil)

	// Cut off nodes 0-1; the 3-node majority keeps committing.
	c.net.Partition([]simnet.NodeID{0, 1})
	skip := map[int]bool{0: true, 1: true}
	var txs []*types.Transaction
	for i := 0; i < 20; i++ {
		txs = append(txs, c.submit(i, skip))
	}
	c.waitCommitted(t, txs, skip)

	// Heal: the minority must adopt the majority's log and catch up
	// without ever having forked the chain.
	c.net.Heal()
	c.waitCommitted(t, txs, nil)
	for i, tn := range c.nodes {
		if tn.chain.KnownBlocks() != tn.chain.Height() {
			t.Fatalf("node %d forked during the partition", i)
		}
	}
}

func TestElectionsMetricCounts(t *testing.T) {
	c := newTestCluster(t, 3, fastOptions())
	c.waitLeader(t, nil)
	var started uint64
	for _, tn := range c.nodes {
		started += tn.e.Elections()
	}
	if started == 0 {
		t.Fatal("leader exists but no election was counted")
	}
}
