package raft

import (
	"sync"
	"testing"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/ledger"
	"blockbench/internal/simnet"
	"blockbench/internal/state"
	"blockbench/internal/txpool"
	"blockbench/internal/types"
)

// fastOptions keeps elections and batching quick for tests.
func fastOptions() Options {
	o := DefaultOptions()
	o.ElectionTimeout = 60 * time.Millisecond
	o.Heartbeat = 5 * time.Millisecond
	o.BatchTimeout = 5 * time.Millisecond
	return o
}

type testNode struct {
	e     *Engine
	ep    *simnet.Endpoint
	chain *ledger.Chain
	pool  *txpool.Pool
	stop  chan struct{}
}

type testCluster struct {
	net   *simnet.Network
	nodes []*testNode
	pumps sync.WaitGroup
}

// newTestCluster boots n replicas over a fresh simnet, each with its own
// chain, pool and a pump goroutine standing in for the node inbox loop.
func newTestCluster(t testing.TB, n int, opts Options) *testCluster {
	t.Helper()
	net := simnet.New(simnet.Config{
		BaseLatency: 50 * time.Microsecond,
		Jitter:      50 * time.Microsecond,
		InboxSize:   4096,
		Seed:        1,
	})
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	c := &testCluster{net: net}
	for i := 0; i < n; i++ {
		store := kvstore.NewMem()
		eng, err := exec.NewNativeEngine("donothing")
		if err != nil {
			t.Fatal(err)
		}
		pool := txpool.New(1 << 16)
		chain, err := ledger.New(ledger.Config{
			Engine: eng,
			StateFactory: func(root types.Hash) (*state.DB, error) {
				b, err := state.NewTrieBackend(store, root, 0)
				if err != nil {
					return nil, err
				}
				return state.NewDB(b), nil
			},
			SupportsForks: true,
			OnInclude:     pool.MarkIncluded,
		})
		if err != nil {
			t.Fatal(err)
		}
		ep := net.Join(simnet.NodeID(i))
		tn := &testNode{
			ep:    ep,
			chain: chain,
			pool:  pool,
			stop:  make(chan struct{}),
		}
		tn.e = New(consensus.Context{
			Self:     simnet.NodeID(i),
			Endpoint: ep,
			Chain:    chain,
			Pool:     pool,
			Peers:    peers,
		}, opts)
		c.pumps.Add(1)
		go func(tn *testNode) {
			defer c.pumps.Done()
			for {
				select {
				case <-tn.stop:
					return
				case msg := <-tn.ep.Inbox:
					tn.e.Handle(msg)
				}
			}
		}(tn)
		c.nodes = append(c.nodes, tn)
	}
	t.Cleanup(func() {
		for _, tn := range c.nodes {
			tn.e.Stop()
			close(tn.stop)
		}
		// A pump may still be inside Handle (which sends); the network
		// must outlive every pump.
		c.pumps.Wait()
		net.Close()
	})
	for _, tn := range c.nodes {
		tn.e.Start()
	}
	return c
}

// leader returns the index of the single live leader, or -1.
func (c *testCluster) leader(skip map[int]bool) int {
	found := -1
	for i, tn := range c.nodes {
		if skip[i] {
			continue
		}
		if tn.e.IsLeader() {
			if found >= 0 {
				return -1 // two leaders visible; not settled yet
			}
			found = i
		}
	}
	return found
}

func (c *testCluster) waitLeader(t testing.TB, skip map[int]bool) int {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if l := c.leader(skip); l >= 0 {
			return l
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return -1
}

// submit puts the same transaction into every live pool, standing in for
// the node layer's gossip.
func (c *testCluster) submit(i int, skip map[int]bool) *types.Transaction {
	tx := &types.Transaction{
		Nonce:    uint64(i),
		Contract: "donothing",
		Method:   "nop",
		GasLimit: 100_000,
	}
	for j, tn := range c.nodes {
		if !skip[j] {
			tn.pool.Add(tx)
		}
	}
	return tx
}

func (c *testCluster) waitCommitted(t testing.TB, txs []*types.Transaction, skip map[int]bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for i, tn := range c.nodes {
			if skip[i] {
				continue
			}
			for _, tx := range txs {
				if _, ok := tn.chain.Receipt(tx.Hash()); !ok {
					done = false
					break
				}
			}
			if !done {
				break
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("transactions not committed everywhere (node0 height=%d)", c.nodes[0].chain.Height())
}

func TestMajorityMath(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 8: 5, 9: 5}
	for n, want := range cases {
		peers := make([]simnet.NodeID, n)
		for i := range peers {
			peers[i] = simnet.NodeID(i)
		}
		e := New(consensus.Context{Peers: peers}, DefaultOptions())
		if got := e.majority(); got != want {
			t.Errorf("n=%d: majority = %d, want %d", n, got, want)
		}
	}
}

func TestWireSizes(t *testing.T) {
	if (&RequestVote{}).WireSize() != 24 {
		t.Fatal("request-vote size wrong")
	}
	ae := &AppendEntries{Entries: []Entry{{Txs: []*types.Transaction{{Method: "m"}}}}}
	if ae.WireSize() <= 48 {
		t.Fatal("append-entries size ignores entries")
	}
	if (&AppendEntries{}).WireSize() != 48 {
		t.Fatal("heartbeat size wrong")
	}
	if (&AppendResp{}).WireSize() != 32 {
		t.Fatal("append-resp size wrong")
	}
}

func TestVoteRestrictionPrefersCompleteLogs(t *testing.T) {
	peers := []simnet.NodeID{0, 1, 2}
	e := New(consensus.Context{Self: 0, Peers: peers}, DefaultOptions())
	e.mu.Lock()
	e.log = []Entry{{Term: 1}, {Term: 2}}
	if e.upToDateLocked(1, 2) {
		t.Fatal("granted vote to a shorter log of the same last term")
	}
	if e.upToDateLocked(5, 1) {
		t.Fatal("granted vote to a longer log with an older last term")
	}
	if !e.upToDateLocked(2, 2) {
		t.Fatal("rejected an equal log")
	}
	if !e.upToDateLocked(1, 3) {
		t.Fatal("rejected a newer-term log")
	}
	e.mu.Unlock()
}

func TestElectsSingleLeader(t *testing.T) {
	c := newTestCluster(t, 5, fastOptions())
	l := c.waitLeader(t, nil)
	// Terms converge and exactly one leader remains.
	time.Sleep(100 * time.Millisecond)
	if again := c.leader(nil); again != l {
		// A re-election can legitimately move the crown; just require
		// that some single leader exists.
		if again < 0 {
			t.Fatalf("leadership did not settle (was %d)", l)
		}
	}
}

func TestReplicatesBatchesToAllReplicas(t *testing.T) {
	c := newTestCluster(t, 4, fastOptions())
	c.waitLeader(t, nil)
	var txs []*types.Transaction
	for i := 0; i < 30; i++ {
		txs = append(txs, c.submit(i, nil))
	}
	c.waitCommitted(t, txs, nil)
	// All replicas converged on identical chains with no forks.
	h0 := c.nodes[0].chain.Height()
	ref, _ := c.nodes[0].chain.GetBlock(h0)
	for i, tn := range c.nodes {
		if tn.chain.Height() < h0 {
			continue // laggard within a heartbeat of catching up
		}
		b, ok := tn.chain.GetBlock(h0)
		if !ok || b.Hash() != ref.Hash() {
			t.Fatalf("node %d diverged at height %d", i, h0)
		}
		if tn.chain.KnownBlocks() != tn.chain.Height() {
			t.Fatalf("node %d has side-chain blocks: raft must never fork", i)
		}
	}
}

func TestLeaderCrashTriggersReElection(t *testing.T) {
	c := newTestCluster(t, 5, fastOptions())
	old := c.waitLeader(t, nil)

	var txs []*types.Transaction
	for i := 0; i < 10; i++ {
		txs = append(txs, c.submit(i, nil))
	}
	c.waitCommitted(t, txs, nil)

	c.net.Crash(simnet.NodeID(old))
	skip := map[int]bool{old: true}
	deadline := time.Now().Add(10 * time.Second)
	nl := -1
	for time.Now().Before(deadline) {
		if l := c.leader(skip); l >= 0 && l != old {
			nl = l
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if nl < 0 {
		t.Fatal("no new leader after crash")
	}

	txs = nil
	for i := 100; i < 110; i++ {
		txs = append(txs, c.submit(i, skip))
	}
	c.waitCommitted(t, txs, skip)
}

func TestNoProgressWithoutMajority(t *testing.T) {
	c := newTestCluster(t, 4, fastOptions())
	c.waitLeader(t, nil)
	// Crash 2 of 4: the rest cannot reach majority 3.
	c.net.Crash(2)
	c.net.Crash(3)
	skip := map[int]bool{2: true, 3: true}
	time.Sleep(150 * time.Millisecond) // let any in-flight commits land
	h := c.nodes[0].chain.Height()
	for i := 0; i < 5; i++ {
		c.submit(i, skip)
	}
	time.Sleep(400 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if got := c.nodes[i].chain.Height(); got != h {
			t.Fatalf("node %d advanced from %d to %d without a majority", i, h, got)
		}
	}
}

func TestPartitionedMinorityRejoins(t *testing.T) {
	c := newTestCluster(t, 5, fastOptions())
	c.waitLeader(t, nil)

	// Cut off nodes 0-1; the 3-node majority keeps committing.
	c.net.Partition([]simnet.NodeID{0, 1})
	skip := map[int]bool{0: true, 1: true}
	var txs []*types.Transaction
	for i := 0; i < 20; i++ {
		txs = append(txs, c.submit(i, skip))
	}
	c.waitCommitted(t, txs, skip)

	// Heal: the minority must adopt the majority's log and catch up
	// without ever having forked the chain.
	c.net.Heal()
	c.waitCommitted(t, txs, nil)
	for i, tn := range c.nodes {
		if tn.chain.KnownBlocks() != tn.chain.Height() {
			t.Fatalf("node %d forked during the partition", i)
		}
	}
}

func TestElectionsMetricCounts(t *testing.T) {
	c := newTestCluster(t, 3, fastOptions())
	c.waitLeader(t, nil)
	var started uint64
	for _, tn := range c.nodes {
		started += tn.e.Elections()
	}
	if started == 0 {
		t.Fatal("leader exists but no election was counted")
	}
}

// TestCompactionBoundsResidentLog drives enough committed entries past
// a tiny retention window that every replica compacts, and checks the
// resident log stays bounded while the chains remain identical.
func TestCompactionBoundsResidentLog(t *testing.T) {
	opts := fastOptions()
	opts.BatchSize = 2
	opts.BatchTimeout = time.Millisecond
	opts.Retain = 8
	c := newTestCluster(t, 3, opts)
	c.waitLeader(t, nil)
	var txs []*types.Transaction
	for i := 0; i < 60; i++ {
		txs = append(txs, c.submit(i, nil))
		if i%10 == 9 { // let entries accumulate in several proposals
			c.waitCommitted(t, txs, nil)
		}
	}
	c.waitCommitted(t, txs, nil)
	for i, tn := range c.nodes {
		if tn.e.Compactions() == 0 {
			t.Errorf("node %d never compacted (log len %d)", i, tn.e.LogLen())
		}
		// Resident log = retained applied prefix (≤ Retain) plus any
		// not-yet-applied tail (bounded by the proposal window).
		if got := tn.e.LogLen(); got > opts.Retain+opts.Window {
			t.Errorf("node %d resident log %d exceeds retain+window %d", i, got, opts.Retain+opts.Window)
		}
	}
	h0 := c.nodes[0].chain.Height()
	for i, tn := range c.nodes {
		if tn.chain.Height() < h0 {
			continue
		}
		for h := uint64(1); h <= h0; h++ {
			a, _ := c.nodes[0].chain.GetBlock(h)
			b, ok := tn.chain.GetBlock(h)
			if !ok || a.Hash() != b.Hash() {
				t.Fatalf("node %d diverged at height %d after compaction", i, h)
			}
		}
	}
}

// TestSnapshotInstallRejoin partitions one follower, commits far past
// the retention window so the leader compacts beyond the follower's
// log, then heals: the follower must rejoin via InstallSnapshot plus
// the chain sync and converge to byte-identical blocks.
func TestSnapshotInstallRejoin(t *testing.T) {
	opts := fastOptions()
	opts.BatchSize = 2
	opts.BatchTimeout = time.Millisecond
	opts.Retain = 4
	c := newTestCluster(t, 3, opts)
	c.waitLeader(t, nil)

	// A little committed traffic everywhere first.
	var txs []*types.Transaction
	for i := 0; i < 6; i++ {
		txs = append(txs, c.submit(i, nil))
	}
	c.waitCommitted(t, txs, nil)

	// Partition a follower and commit well past the retention window.
	lagger := -1
	for i, tn := range c.nodes {
		if !tn.e.IsLeader() {
			lagger = i
			break
		}
	}
	c.net.Partition([]simnet.NodeID{simnet.NodeID(lagger)})
	skip := map[int]bool{lagger: true}
	txs = nil
	for i := 100; i < 160; i++ {
		txs = append(txs, c.submit(i, skip))
		if i%10 == 9 {
			c.waitCommitted(t, txs, skip)
		}
	}
	c.waitCommitted(t, txs, skip)
	var compacted bool
	for i, tn := range c.nodes {
		if !skip[i] && tn.e.SnapIndex() > 0 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("majority never compacted; snapshot path not exercised")
	}

	c.net.Heal()
	c.waitCommitted(t, txs, nil)
	if got := c.nodes[lagger].e.SnapshotsInstalled(); got == 0 {
		t.Fatal("lagger rejoined without installing a snapshot")
	}
	// Byte-identical convergence, block by block.
	deadline := time.Now().Add(10 * time.Second)
	for c.nodes[lagger].chain.Height() < c.nodes[0].chain.Height() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	h0 := c.nodes[0].chain.Height()
	for h := uint64(1); h <= h0; h++ {
		a, _ := c.nodes[0].chain.GetBlock(h)
		b, ok := c.nodes[lagger].chain.GetBlock(h)
		if !ok {
			t.Fatalf("lagger missing block %d after rejoin", h)
		}
		if a.Hash() != b.Hash() {
			t.Fatalf("lagger block %d differs after snapshot rejoin", h)
		}
	}
}

// TestLeaseReadSafety checks the lease-read guarantee: a live leader
// with majority acks serves lease reads, followers redirect, and a
// deposed (partitioned) leader's lease expires — it must redirect, not
// serve stale reads, even while it still believes it leads.
func TestLeaseReadSafety(t *testing.T) {
	c := newTestCluster(t, 3, fastOptions())
	l := c.waitLeader(t, nil)
	// Let a heartbeat round collect majority acks.
	deadline := time.Now().Add(5 * time.Second)
	for !c.nodes[l].e.LeaseRead() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !c.nodes[l].e.LeaseRead() {
		t.Fatal("leader with live majority never acquired a lease")
	}
	for i, tn := range c.nodes {
		if i != l && tn.e.LeaseRead() {
			t.Fatalf("follower %d claimed a lease read", i)
		}
	}
	if got := c.nodes[l].e.Counters()["raft.lease_reads"]; got == 0 {
		t.Fatal("lease reads not counted")
	}
	if got := c.nodes[0].e.Counters()["raft.read_redirects"]; got == 0 {
		if got = c.nodes[(l+1)%3].e.Counters()["raft.read_redirects"]; got == 0 {
			t.Fatal("redirects not counted")
		}
	}

	// Depose the leader by partitioning it away; its lease must lapse
	// before a successor can win (lease ≤ ElectionTimeout/2).
	c.net.Partition([]simnet.NodeID{simnet.NodeID(l)})
	time.Sleep(fastOptions().ElectionTimeout / 2)
	if c.nodes[l].e.LeaseRead() {
		t.Fatal("partitioned leader served a lease read past its lease")
	}
	// The majority side elects a successor that can serve lease reads.
	skip := map[int]bool{l: true}
	nl := c.waitLeader(t, skip)
	deadline = time.Now().Add(5 * time.Second)
	for !c.nodes[nl].e.LeaseRead() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !c.nodes[nl].e.LeaseRead() {
		t.Fatal("successor leader never acquired a lease")
	}
}

// TestSubTickBatchTimeout pins the satellite decoupling BatchTimeout
// from tick granularity: with a deliberately huge heartbeat, a partial
// batch must still commit in ~BatchTimeout via the pool-notify path and
// the sub-tick timer, not a full tick later.
func TestSubTickBatchTimeout(t *testing.T) {
	opts := DefaultOptions()
	opts.ElectionTimeout = 300 * time.Millisecond
	opts.Heartbeat = 120 * time.Millisecond // tick floor the event path must beat
	opts.BatchTimeout = 5 * time.Millisecond
	c := newTestCluster(t, 3, opts)
	l := c.waitLeader(t, nil)

	for i := 0; i < 3; i++ {
		tx := c.submit(1000+i, nil)
		start := time.Now()
		deadline := start.Add(10 * time.Second)
		for {
			if _, ok := c.nodes[l].chain.Receipt(tx.Hash()); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tx %d did not commit", i)
			}
			time.Sleep(200 * time.Microsecond)
		}
		if lat := time.Since(start); lat > opts.Heartbeat/2 {
			t.Fatalf("tx %d commit took %v — quantized to the %v tick, not the %v batch timeout",
				i, lat, opts.Heartbeat, opts.BatchTimeout)
		}
	}
}

// TestRejectionHintLowersStaleMatch pins the crash-recovery backoff
// rule: a follower that loses its unsynced log tail in a kill comes back
// with a log shorter than the match index it acknowledged in its
// previous life. Its rejection hint must pull both nextIndex AND the
// stale match down — flooring the backoff at the old match would resend
// the same unappendable PrevIndex forever and wedge the group's commit
// index (matchIndex is only monotone for followers with stable storage).
func TestRejectionHintLowersStaleMatch(t *testing.T) {
	c := newTestCluster(t, 2, fastOptions())
	l := c.waitLeader(t, nil)
	e := c.nodes[l].e
	peer := simnet.NodeID(1 - l)
	e.mu.Lock()
	e.log = make([]Entry, 10)
	for i := range e.log {
		e.log[i] = Entry{Term: e.term}
	}
	e.match[peer] = 9
	e.next[peer] = 10
	term := e.term
	e.mu.Unlock()
	// The follower rejects with a hint at its new, shorter log end.
	e.onAppendResp(peer, &AppendResp{Term: term, OK: false, Match: 3})
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.match[peer] > 3 {
		t.Fatalf("stale match survived the rejection hint: match=%d, hint was 3", e.match[peer])
	}
}
