package pbft

import (
	"testing"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/ledger"
	"blockbench/internal/simnet"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

func testChain(t *testing.T) *ledger.Chain {
	t.Helper()
	store := kvstore.NewMem()
	eng, err := exec.NewNativeEngine("donothing")
	if err != nil {
		t.Fatal(err)
	}
	c, err := ledger.New(ledger.Config{
		Engine: eng,
		StateFactory: func(root types.Hash) (*state.DB, error) {
			b, err := state.NewTrieBackend(store, root, 0)
			if err != nil {
				return nil, err
			}
			return state.NewDB(b), nil
		},
		SupportsForks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func engineOf(n int, self int) *Engine {
	peers := make([]simnet.NodeID, n)
	for i := range peers {
		peers[i] = simnet.NodeID(i)
	}
	return New(consensus.Context{Self: simnet.NodeID(self), Peers: peers},
		DefaultOptions())
}

func TestQuorumMath(t *testing.T) {
	// f = (n-1)/3, quorum = 2f+1 — the paper's "fewer than N/3 failures".
	cases := map[int]int{4: 3, 7: 5, 8: 5, 10: 7, 12: 7, 13: 9, 16: 11}
	for n, want := range cases {
		e := engineOf(n, 0)
		if got := e.quorum(); got != want {
			t.Errorf("n=%d: quorum = %d, want %d", n, got, want)
		}
	}
}

func TestPrimaryRotation(t *testing.T) {
	e := engineOf(4, 0)
	for v := uint64(0); v < 8; v++ {
		if got := e.primaryOf(v); got != simnet.NodeID(v%4) {
			t.Fatalf("view %d: primary = %v", v, got)
		}
	}
}

func TestDigestDeterministicAndBinding(t *testing.T) {
	txs := []*types.Transaction{{Nonce: 1}, {Nonce: 2}}
	d1 := digestOf(3, 7, txs)
	d2 := digestOf(3, 7, txs)
	if d1 != d2 {
		t.Fatal("digest unstable")
	}
	if digestOf(4, 7, txs) == d1 {
		t.Fatal("digest ignores view")
	}
	if digestOf(3, 8, txs) == d1 {
		t.Fatal("digest ignores seq")
	}
	if digestOf(3, 7, txs[:1]) == d1 {
		t.Fatal("digest ignores batch content")
	}
}

func TestViewChangeVotesTriggerJoinAndEnter(t *testing.T) {
	// A replica that sees f+1 votes for a higher view joins it; on 2f+1
	// it enters the view. n=4 → f=1, quorum=3.
	net := simnet.New(simnet.Config{BaseLatency: time.Microsecond, InboxSize: 64})
	defer net.Close()
	ep := net.Join(0)
	e := New(consensus.Context{Self: 0, Peers: []simnet.NodeID{0, 1, 2, 3},
		Endpoint: ep, Chain: testChain(t)}, DefaultOptions())

	e.mu.Lock()
	e.recordViewVoteLocked(1, &ViewChange{NewView: 1})
	joined := e.votedView
	e.mu.Unlock()
	if joined != 0 {
		t.Fatal("joined view change with only one foreign vote (f+1 = 2 needed)")
	}

	e.mu.Lock()
	e.recordViewVoteLocked(2, &ViewChange{NewView: 1})
	// Two foreign votes = f+1 → we vote too (3 total = quorum) → enter.
	view, voted := e.view, e.votedView
	e.mu.Unlock()
	if voted != 1 {
		t.Fatalf("votedView = %d, want 1", voted)
	}
	if view != 1 {
		t.Fatalf("view = %d, want 1 (entered)", view)
	}
	if e.ViewChanges() != 1 {
		t.Fatal("view change counter not bumped")
	}
}

func TestStaleViewChangeIgnored(t *testing.T) {
	e := engineOf(4, 0)
	e.mu.Lock()
	e.view = 5
	e.mu.Unlock()
	e.onViewChange(1, &ViewChange{NewView: 3})
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.vcVotes[3]) != 0 {
		t.Fatal("stale view-change vote recorded")
	}
}

func TestWireSizes(t *testing.T) {
	pp := &PrePrepare{Txs: []*types.Transaction{{Method: "m"}}}
	if pp.WireSize() <= 24 {
		t.Fatal("pre-prepare size ignores txs")
	}
	v := &Vote{}
	if v.WireSize() != 24+types.HashSize {
		t.Fatal("vote size wrong")
	}
	vc := &ViewChange{Prepared: []PreparedProof{{Txs: []*types.Transaction{{}}}}}
	if vc.WireSize() <= 48 {
		t.Fatal("view-change size ignores proofs")
	}
}
