// Package pbft implements Practical Byzantine Fault Tolerance as used by
// the Hyperledger Fabric v0.6 preset: three-phase agreement
// (pre-prepare / prepare / commit) over transaction batches, 2f+1
// quorums with f = (n-1)/3, pipelined instances, and view changes with
// prepared-certificate carryover. Progress requires a live quorum, so
// blocks are final the moment they commit — the protocol never forks,
// which is exactly what the paper's partition attack shows (no stale
// blocks, but a longer recovery after the partition heals).
//
// The engine processes all messages on a single goroutine per node (the
// node's inbox loop). Combined with simnet's bounded inboxes this
// reproduces the failure mode the paper found at scale: "consensus
// messages are rejected ... on account of the message channel being
// full", so views diverge and consensus stalls beyond ~16 nodes.
package pbft

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/merkle"
	"blockbench/internal/simnet"
	"blockbench/internal/trace"
	"blockbench/internal/types"
)

// Message type tags.
const (
	MsgPrePrepare = "pbft_preprepare"
	MsgPrepare    = "pbft_prepare"
	MsgCommit     = "pbft_commit"
	MsgViewChange = "pbft_viewchange"
)

// PrePrepare proposes a batch at (view, seq).
type PrePrepare struct {
	View, Seq uint64
	Txs       []*types.Transaction
}

// WireSize implements simnet.Sizer.
func (m *PrePrepare) WireSize() int {
	n := 24
	for _, tx := range m.Txs {
		n += tx.WireSize()
	}
	return n
}

// Vote is a prepare or commit for a batch digest.
type Vote struct {
	View, Seq uint64
	Digest    types.Hash
}

// WireSize implements simnet.Sizer.
func (*Vote) WireSize() int { return 24 + types.HashSize }

// PreparedProof carries a prepared-but-unexecuted batch into a view
// change so the new primary can re-propose it (the safety-critical part
// of PBFT's new-view protocol, simplified: proofs are trusted because
// simulated nodes are honest; Byzantine behaviour enters via the
// network fault injectors instead).
type PreparedProof struct {
	Seq    uint64
	Digest types.Hash
	Txs    []*types.Transaction
}

// ViewChange votes to move to NewView.
type ViewChange struct {
	NewView  uint64
	Height   uint64
	Prepared []PreparedProof
}

// WireSize implements simnet.Sizer.
func (m *ViewChange) WireSize() int {
	n := 48
	for _, p := range m.Prepared {
		n += 8 + types.HashSize
		for _, tx := range p.Txs {
			n += tx.WireSize()
		}
	}
	return n
}

// Options tunes the protocol.
type Options struct {
	// BatchSize is the number of transactions per consensus batch
	// (Fabric's batchSize; the paper's default is 500, the repository
	// default 20 at the 25x scale).
	BatchSize int
	// BatchTimeout proposes a partial batch after this long.
	BatchTimeout time.Duration
	// ViewTimeout triggers a view change when no progress happens while
	// work is outstanding. Doubles on consecutive failed views.
	ViewTimeout time.Duration
	// Window is the number of concurrently in-flight instances.
	Window int
}

// DefaultOptions returns the Hyperledger-preset defaults.
func DefaultOptions() Options {
	return Options{
		BatchSize:    20,
		BatchTimeout: 10 * time.Millisecond,
		ViewTimeout:  400 * time.Millisecond,
		Window:       8,
	}
}

type instance struct {
	view     uint64
	digest   types.Hash
	txs      []*types.Transaction
	prepares map[simnet.NodeID]bool
	commits  map[simnet.NodeID]bool
	sentPrep bool
	sentComm bool
}

// Engine is one PBFT replica.
type Engine struct {
	ctx  consensus.Context
	opts Options
	f    int
	// peers sorted for deterministic primary rotation.
	peers []simnet.NodeID

	mu           sync.Mutex
	view         uint64
	active       bool // false while a view change is in progress
	instances    map[uint64]*instance
	assigned     map[types.Hash]bool // txs already batched (primary)
	nextSeq      uint64
	vcVotes      map[uint64]map[simnet.NodeID]*ViewChange
	votedView    uint64
	lastProgress time.Time
	failedViews  uint64 // consecutive views without progress (backoff)
	viewChanges  atomic.Uint64
	batchesDone  atomic.Uint64

	stop    chan struct{}
	done    sync.WaitGroup
	started atomic.Bool
}

// New creates a PBFT engine. All peers run replicas.
func New(ctx consensus.Context, opts Options) *Engine {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 20
	}
	if opts.BatchTimeout <= 0 {
		opts.BatchTimeout = 10 * time.Millisecond
	}
	if opts.ViewTimeout <= 0 {
		opts.ViewTimeout = 400 * time.Millisecond
	}
	if opts.Window <= 0 {
		opts.Window = 8
	}
	peers := append([]simnet.NodeID(nil), ctx.Peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	n := len(peers)
	return &Engine{
		ctx:          ctx,
		opts:         opts,
		f:            (n - 1) / 3,
		peers:        peers,
		active:       true,
		instances:    make(map[uint64]*instance),
		assigned:     make(map[types.Hash]bool),
		vcVotes:      make(map[uint64]map[simnet.NodeID]*ViewChange),
		lastProgress: time.Now(),
		stop:         make(chan struct{}),
	}
}

func (e *Engine) quorum() int { return 2*e.f + 1 }

func (e *Engine) primaryOf(view uint64) simnet.NodeID {
	return e.peers[int(view)%len(e.peers)]
}

// Start implements consensus.Engine.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	e.done.Add(1)
	go e.timerLoop()
}

// Stop implements consensus.Engine.
func (e *Engine) Stop() {
	if e.started.CompareAndSwap(true, false) {
		close(e.stop)
		e.done.Wait()
	}
}

// View returns the current view (for tests and diagnostics).
func (e *Engine) View() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.view
}

// ViewChanges counts view transitions this replica has performed.
func (e *Engine) ViewChanges() uint64 { return e.viewChanges.Load() }

// BatchesCommitted counts batches this replica has executed.
func (e *Engine) BatchesCommitted() uint64 { return e.batchesDone.Load() }

// Counters implements metrics.CounterProvider.
func (e *Engine) Counters() map[string]uint64 {
	return map[string]uint64{
		"pbft.view_changes": e.viewChanges.Load(),
		"pbft.batches":      e.batchesDone.Load(),
	}
}

// timerLoop drives batch proposal (when primary) and view-change
// timeouts.
func (e *Engine) timerLoop() {
	defer e.done.Done()
	tick := time.NewTicker(e.opts.BatchTimeout)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-tick.C:
			e.mu.Lock()
			e.maybeProposeLocked()
			e.maybeViewChangeLocked()
			e.mu.Unlock()
		}
	}
}

func digestOf(view, seq uint64, txs []*types.Transaction) types.Hash {
	e := types.NewEncoder()
	e.Uint64(view)
	e.Uint64(seq)
	root := merkle.TxRoot(txs)
	e.Raw(root[:])
	return types.HashData(e.Out())
}

// maybeProposeLocked lets the primary open one new instance per batch
// tick (Fabric batches on a size/timeout trigger; one batch per timeout
// is what yields the paper's ~3 blocks/s at batch size 500).
func (e *Engine) maybeProposeLocked() {
	if !e.active || e.primaryOf(e.view) != e.ctx.Self {
		return
	}
	height := e.ctx.Chain.Height()
	if e.nextSeq <= height {
		e.nextSeq = height + 1
	}
	if int(e.nextSeq-height)-1 < e.opts.Window {
		txs := e.pickBatchLocked()
		if len(txs) == 0 {
			return
		}
		seq := e.nextSeq
		e.nextSeq++
		for _, tx := range txs {
			e.ctx.Tracer.Stamp(tx.Hash(), trace.StagePropose)
		}
		pp := &PrePrepare{View: e.view, Seq: seq, Txs: txs}
		inst := e.getInstance(seq, e.view, txs)
		inst.prepares[e.ctx.Self] = true // primary's pre-prepare counts
		e.ctx.Endpoint.Broadcast(MsgPrePrepare, pp)
		// Tiny deployments (n ≤ 3 ⇒ f = 0) reach quorum on the primary's
		// own messages; advance immediately rather than waiting for
		// network echoes that never come.
		e.advanceLocked(seq, inst)
	}
}

// pickBatchLocked selects pending transactions not already in flight.
func (e *Engine) pickBatchLocked() []*types.Transaction {
	candidates := e.ctx.Pool.Batch(e.opts.BatchSize+len(e.assigned), 0)
	out := make([]*types.Transaction, 0, e.opts.BatchSize)
	for _, tx := range candidates {
		if e.assigned[tx.Hash()] {
			continue
		}
		out = append(out, tx)
		if len(out) >= e.opts.BatchSize {
			break
		}
	}
	for _, tx := range out {
		e.assigned[tx.Hash()] = true
	}
	return out
}

func (e *Engine) getInstance(seq, view uint64, txs []*types.Transaction) *instance {
	inst := e.instances[seq]
	if inst == nil || inst.view != view {
		inst = &instance{
			view:     view,
			prepares: make(map[simnet.NodeID]bool),
			commits:  make(map[simnet.NodeID]bool),
		}
		e.instances[seq] = inst
	}
	if txs != nil {
		inst.txs = txs
		inst.digest = digestOf(view, seq, txs)
	}
	return inst
}

// Handle implements consensus.Engine.
func (e *Engine) Handle(msg simnet.Message) bool {
	if consensus.HandleSync(e.ctx, msg) {
		e.mu.Lock()
		e.noteProgressLocked()
		e.executeReadyLocked()
		e.mu.Unlock()
		return true
	}
	if msg.Corrupt {
		// Damaged messages fail authentication and are discarded — the
		// paper's "random response" Byzantine failure mode.
		switch msg.Type {
		case MsgPrePrepare, MsgPrepare, MsgCommit, MsgViewChange:
			return true
		}
		return false
	}
	switch msg.Type {
	case MsgPrePrepare:
		pp, ok := msg.Payload.(*PrePrepare)
		if ok {
			e.onPrePrepare(msg.From, pp)
		}
	case MsgPrepare:
		v, ok := msg.Payload.(*Vote)
		if ok {
			e.onVote(msg.From, v, false)
		}
	case MsgCommit:
		v, ok := msg.Payload.(*Vote)
		if ok {
			e.onVote(msg.From, v, true)
		}
	case MsgViewChange:
		vc, ok := msg.Payload.(*ViewChange)
		if ok {
			e.onViewChange(msg.From, vc)
		}
	default:
		return false
	}
	return true
}

func (e *Engine) onPrePrepare(from simnet.NodeID, pp *PrePrepare) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pp.View > e.view && e.primaryOf(pp.View) == from {
		// A restarted replica wakes up in a stale view while the cluster
		// has moved on; the primary of the newer view is speaking, so
		// adopt its view (honest-node simplification — a Byzantine-safe
		// replica would demand the new-view certificate first).
		e.view = pp.View
		e.active = true
		if e.votedView < pp.View {
			e.votedView = pp.View
		}
		e.instances = make(map[uint64]*instance)
		e.assigned = make(map[types.Hash]bool)
		e.noteProgressLocked()
	}
	if pp.View != e.view || !e.active || e.primaryOf(pp.View) != from {
		return
	}
	height := e.ctx.Chain.Height()
	if pp.Seq <= height {
		return // already executed
	}
	if pp.Seq > height+uint64(4*e.opts.Window) {
		// Far ahead: we missed batches; catch up from the primary.
		consensus.RequestSync(e.ctx, from)
		return
	}
	inst := e.getInstance(pp.Seq, pp.View, pp.Txs)
	inst.prepares[from] = true // the pre-prepare is the primary's prepare
	if !inst.sentPrep {
		inst.sentPrep = true
		inst.prepares[e.ctx.Self] = true
		e.ctx.Endpoint.Broadcast(MsgPrepare, &Vote{View: pp.View, Seq: pp.Seq, Digest: inst.digest})
	}
	e.advanceLocked(pp.Seq, inst)
}

func (e *Engine) onVote(from simnet.NodeID, v *Vote, isCommit bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v.View != e.view || !e.active {
		return
	}
	if v.Seq <= e.ctx.Chain.Height() {
		return
	}
	inst := e.getInstance(v.Seq, v.View, nil)
	if isCommit {
		inst.commits[from] = true
	} else {
		inst.prepares[from] = true
	}
	e.advanceLocked(v.Seq, inst)
}

// advanceLocked moves an instance through prepared → committed →
// executed as quorums fill.
func (e *Engine) advanceLocked(seq uint64, inst *instance) {
	if inst.txs == nil {
		return // still waiting for the pre-prepare
	}
	if !inst.sentComm && len(inst.prepares) >= e.quorum() {
		inst.sentComm = true
		inst.commits[e.ctx.Self] = true
		e.ctx.Endpoint.Broadcast(MsgCommit, &Vote{View: inst.view, Seq: seq, Digest: inst.digest})
	}
	e.executeReadyLocked()
}

// executeReadyLocked executes committed instances in sequence order.
func (e *Engine) executeReadyLocked() {
	for {
		height := e.ctx.Chain.Height()
		inst := e.instances[height+1]
		if inst == nil || inst.txs == nil || len(inst.commits) < e.quorum() {
			return
		}
		head := e.ctx.Chain.Head()
		// Header fields must be identical on every replica so all nodes
		// commit byte-identical blocks: deterministic time, no proposer.
		block := &types.Block{
			Header: types.Header{
				Number:     height + 1,
				ParentHash: head.Hash(),
				Time:       int64(height + 1),
				View:       inst.view,
			},
			Txs: inst.txs,
		}
		if err := e.ctx.Chain.Append(block); err != nil {
			return
		}
		for _, tx := range inst.txs {
			delete(e.assigned, tx.Hash())
		}
		delete(e.instances, height+1)
		e.batchesDone.Add(1)
		e.noteProgressLocked()
	}
}

func (e *Engine) noteProgressLocked() {
	e.lastProgress = time.Now()
	e.failedViews = 0
}

// maybeViewChangeLocked fires a view change when work is outstanding but
// nothing has executed for a full (backed-off) view timeout.
func (e *Engine) maybeViewChangeLocked() {
	outstanding := e.ctx.Pool.Len() > 0 || len(e.instances) > 0
	if !outstanding {
		e.lastProgress = time.Now()
		return
	}
	timeout := e.opts.ViewTimeout << min(e.failedViews, 4)
	if time.Since(e.lastProgress) < timeout {
		return
	}
	e.failedViews++
	e.voteViewLocked(e.view + 1)
	e.lastProgress = time.Now()
}

// voteViewLocked broadcasts (and records) our view-change vote.
func (e *Engine) voteViewLocked(nv uint64) {
	if nv <= e.votedView {
		return
	}
	e.votedView = nv
	vc := &ViewChange{NewView: nv, Height: e.ctx.Chain.Height()}
	for seq, inst := range e.instances {
		if inst.txs != nil && len(inst.prepares) >= e.quorum() {
			vc.Prepared = append(vc.Prepared, PreparedProof{Seq: seq, Digest: inst.digest, Txs: inst.txs})
		}
	}
	e.recordViewVoteLocked(e.ctx.Self, vc)
	e.ctx.Endpoint.Broadcast(MsgViewChange, vc)
}

func (e *Engine) onViewChange(from simnet.NodeID, vc *ViewChange) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if vc.NewView <= e.view {
		return
	}
	e.recordViewVoteLocked(from, vc)
}

func (e *Engine) recordViewVoteLocked(from simnet.NodeID, vc *ViewChange) {
	votes := e.vcVotes[vc.NewView]
	if votes == nil {
		votes = make(map[simnet.NodeID]*ViewChange)
		e.vcVotes[vc.NewView] = votes
	}
	votes[from] = vc

	// Join a view change that f+1 others already voted for: at least one
	// honest replica timed out, so our timer is just late.
	if len(votes) >= e.f+1 && vc.NewView > e.votedView {
		e.voteViewLocked(vc.NewView)
	}
	if len(votes) >= e.quorum() && vc.NewView > e.view {
		e.enterViewLocked(vc.NewView, votes)
	}
}

// enterViewLocked transitions to a new view, carrying over prepared
// batches from the view-change certificates.
func (e *Engine) enterViewLocked(nv uint64, votes map[simnet.NodeID]*ViewChange) {
	e.view = nv
	e.active = true
	e.viewChanges.Add(1)
	e.instances = make(map[uint64]*instance)
	e.assigned = make(map[types.Hash]bool)
	e.noteProgressLocked()

	// Clean up stale vote sets.
	for v := range e.vcVotes {
		if v <= nv {
			delete(e.vcVotes, v)
		}
	}

	if e.primaryOf(nv) != e.ctx.Self {
		return
	}
	// New primary: re-propose prepared batches from the certificates,
	// highest-seq wins per slot, then resume normal proposing.
	height := e.ctx.Chain.Height()
	carried := make(map[uint64]PreparedProof)
	for _, vc := range votes {
		for _, p := range vc.Prepared {
			if p.Seq > height {
				carried[p.Seq] = p
			}
		}
	}
	e.nextSeq = height + 1
	seqs := make([]uint64, 0, len(carried))
	for seq := range carried {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		p := carried[seq]
		inst := e.getInstance(seq, nv, p.Txs)
		inst.prepares[e.ctx.Self] = true
		for _, tx := range p.Txs {
			e.assigned[tx.Hash()] = true
		}
		e.ctx.Endpoint.Broadcast(MsgPrePrepare, &PrePrepare{View: nv, Seq: seq, Txs: p.Txs})
		if seq >= e.nextSeq {
			e.nextSeq = seq + 1
		}
		e.advanceLocked(seq, inst)
	}
	e.maybeProposeLocked()
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
