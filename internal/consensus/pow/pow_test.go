package pow

import (
	"testing"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/types"
)

func TestSealOKRejectsWrongNonce(t *testing.T) {
	h := &types.Header{Number: 1, Difficulty: 4} // very easy target
	// Find a valid nonce by brute force.
	found := false
	for n := uint64(0); n < 10_000; n++ {
		h.PowNonce = n
		if SealOK(h) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no nonce found at difficulty 4")
	}
	// Mutating the header invalidates the seal with overwhelming
	// probability at higher difficulty.
	h2 := *h
	h2.Difficulty = 1 << 40
	if SealOK(&h2) {
		t.Fatal("seal valid at astronomically higher difficulty")
	}
}

func TestSealOKZeroDifficulty(t *testing.T) {
	if SealOK(&types.Header{}) {
		t.Fatal("zero difficulty must not validate")
	}
}

func TestNextDifficultyRetargets(t *testing.T) {
	e := New(consensus.Context{}, Options{
		TargetInterval:    100 * time.Millisecond,
		InitialDifficulty: 64_000,
		MinDifficulty:     1_000,
	})
	// Fast parent (mined "now") → difficulty rises.
	fast := &types.Block{Header: types.Header{
		Difficulty: 64_000, Time: time.Now().UnixNano(),
	}}
	if d := e.nextDifficulty(fast); d <= 64_000 {
		t.Fatalf("difficulty did not rise: %d", d)
	}
	// Slow parent (mined long ago) → difficulty falls.
	slow := &types.Block{Header: types.Header{
		Difficulty: 64_000, Time: time.Now().Add(-time.Second).UnixNano(),
	}}
	if d := e.nextDifficulty(slow); d >= 64_000 {
		t.Fatalf("difficulty did not fall: %d", d)
	}
	// Floor respected.
	atMin := &types.Block{Header: types.Header{
		Difficulty: 1_000, Time: time.Now().Add(-time.Second).UnixNano(),
	}}
	if d := e.nextDifficulty(atMin); d < 1_000 {
		t.Fatalf("difficulty under floor: %d", d)
	}
	// A preloaded parent (difficulty 1, below the floor) resets to the
	// initial difficulty instead of producing a block storm.
	preloaded := &types.Block{Header: types.Header{Difficulty: 1}}
	if d := e.nextDifficulty(preloaded); d != 64_000 {
		t.Fatalf("preloaded parent: difficulty = %d, want initial", d)
	}
}

func TestSealFindsNonceQuickly(t *testing.T) {
	// At low difficulty, sealing a block completes and the sealed header
	// verifies.
	h := types.Header{Number: 3, Difficulty: 256,
		ParentHash: types.HashData([]byte("p"))}
	for n := uint64(0); ; n++ {
		h.PowNonce = n
		if SealOK(&h) {
			break
		}
		if n > 1_000_000 {
			t.Fatal("no nonce within a million attempts at difficulty 256")
		}
	}
	if !SealOK(&h) {
		t.Fatal("sealed header did not verify")
	}
}
