// Package pow implements proof-of-work consensus as used by the
// Ethereum preset: continuous mining over the node's own transaction
// pool, per-block difficulty retargeting toward a configured block
// interval, longest-(heaviest-)chain fork choice with reorgs, and block
// gossip with catch-up sync. Forks are first-class: the security
// experiment counts blocks that end up off the main branch.
package pow

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blockbench/internal/consensus"
	"blockbench/internal/ledger"
	"blockbench/internal/simnet"
	"blockbench/internal/types"
)

// Options tunes the miner.
type Options struct {
	// TargetInterval is the desired network-wide block interval; the
	// difficulty controller steers toward it (the paper's geth testnet
	// was tuned to ~2.5s per block; the repository default is 100ms at
	// the 25x time scale).
	TargetInterval time.Duration
	// InitialDifficulty in expected hashes per block.
	InitialDifficulty uint64
	// MinDifficulty floors the retarget.
	MinDifficulty uint64
	// MaxTxsPerBlock bounds block size in transactions (0 = gas-limit
	// only).
	MaxTxsPerBlock int
	// GasLimit bounds the summed gas of a block's transactions — the
	// geth miner's gasLimit knob, which the block-size experiment tunes.
	GasLimit uint64
	// Mine disables block production when false (non-mining node).
	Mine bool
}

// DefaultOptions returns the Ethereum-preset defaults.
func DefaultOptions() Options {
	return Options{
		TargetInterval:    100 * time.Millisecond,
		InitialDifficulty: 2_000_000,
		MinDifficulty:     50_000,
		Mine:              true,
	}
}

// Engine is one node's PoW miner + block handler.
type Engine struct {
	ctx  consensus.Context
	opts Options

	stop    chan struct{}
	done    sync.WaitGroup
	started atomic.Bool

	// orphans buffers blocks whose parents are not yet known.
	mu      sync.Mutex
	orphans map[types.Hash]*types.Block

	hashes atomic.Uint64 // total hash attempts, drives the CPU figure
	mined  atomic.Uint64
}

// New creates a PoW engine.
func New(ctx consensus.Context, opts Options) *Engine {
	if opts.TargetInterval <= 0 {
		opts.TargetInterval = 100 * time.Millisecond
	}
	if opts.InitialDifficulty == 0 {
		opts.InitialDifficulty = 2_000_000
	}
	if opts.MinDifficulty == 0 {
		opts.MinDifficulty = 50_000
	}
	return &Engine{ctx: ctx, opts: opts, stop: make(chan struct{}),
		orphans: make(map[types.Hash]*types.Block)}
}

// Start implements consensus.Engine.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	if e.opts.Mine {
		e.done.Add(1)
		go e.mineLoop()
	}
}

// Stop implements consensus.Engine.
func (e *Engine) Stop() {
	if e.started.CompareAndSwap(true, false) {
		close(e.stop)
		e.done.Wait()
	}
}

// Hashes reports total hash attempts (CPU utilization proxy).
func (e *Engine) Hashes() uint64 { return e.hashes.Load() }

// Mined reports blocks sealed by this node.
func (e *Engine) Mined() uint64 { return e.mined.Load() }

// Counters implements metrics.CounterProvider.
func (e *Engine) Counters() map[string]uint64 {
	return map[string]uint64{
		"pow.hashes": e.hashes.Load(),
		"pow.mined":  e.mined.Load(),
	}
}

// nextDifficulty retargets off the parent with a damped proportional
// controller: the difficulty moves a quarter of the way toward the
// value implied by the observed block interval, with the per-block
// correction bounded to [0.5x, 2x]. Block intervals are exponentially
// distributed, so the damping trades convergence speed against
// oscillation — like Ethereum's retarget, compressed to converge within
// tens of blocks instead of thousands.
func (e *Engine) nextDifficulty(parent *types.Block) uint64 {
	diff := parent.Header.Difficulty
	if diff < e.opts.MinDifficulty {
		// Genesis or a preloaded (consensus-bypassing) parent.
		return e.opts.InitialDifficulty
	}
	interval := time.Duration(time.Now().UnixNano() - parent.Header.Time)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ratio := float64(e.opts.TargetInterval) / float64(interval)
	if ratio > 2 {
		ratio = 2
	} else if ratio < 0.5 {
		ratio = 0.5
	}
	step := (3 + ratio) / 4 // move 25% of the way toward the estimate
	next := uint64(float64(diff) * step)
	if next < e.opts.MinDifficulty {
		next = e.opts.MinDifficulty
	}
	return next
}

// SealOK verifies the proof-of-work: H(sealHash || nonce) interpreted as
// a 64-bit integer must fall below 2^64 / difficulty.
func SealOK(h *types.Header) bool {
	if h.Difficulty == 0 {
		return false
	}
	target := ^uint64(0) / h.Difficulty
	seal := h.SealHash()
	var buf [types.HashSize + 8]byte
	copy(buf[:], seal[:])
	binary.LittleEndian.PutUint64(buf[types.HashSize:], h.PowNonce)
	digest := types.HashData(buf[:])
	return binary.LittleEndian.Uint64(digest[:8]) < target
}

// mineLoop repeatedly builds a candidate on the current head and
// searches for a seal, restarting whenever the head moves.
func (e *Engine) mineLoop() {
	defer e.done.Done()
	rng := uint64(e.ctx.Self)*0x9e3779b97f4a7c15 + 1
	for {
		select {
		case <-e.stop:
			return
		default:
		}
		parent := e.ctx.Chain.Head()
		diff := e.nextDifficulty(parent)
		// Over-fetch by count; ProposeBlock trims to the block gas limit
		// based on gas actually consumed.
		maxTxs := e.opts.MaxTxsPerBlock
		if maxTxs <= 0 {
			maxTxs = 512
		}
		txs := e.ctx.Pool.Batch(maxTxs, 0)
		block, err := e.ctx.Chain.ProposeBlock(txs, e.ctx.Address, diff, 0)
		if err != nil {
			// Head may have moved mid-build; retry.
			continue
		}
		if e.seal(block, parent.Hash(), &rng) {
			if err := e.ctx.Chain.Append(block); err == nil {
				e.mined.Add(1)
				e.broadcastBlock(block)
			}
		}
	}
}

// seal searches nonces in batches, aborting when the head changes or
// the engine stops. Returns true when block is sealed.
func (e *Engine) seal(block *types.Block, parent types.Hash, rng *uint64) bool {
	sealHash := block.Header.SealHash()
	target := ^uint64(0) / block.Header.Difficulty
	var buf [types.HashSize + 8]byte
	copy(buf[:], sealHash[:])
	const batch = 2048
	for {
		for i := 0; i < batch; i++ {
			*rng = *rng*6364136223846793005 + 1442695040888963407
			binary.LittleEndian.PutUint64(buf[types.HashSize:], *rng)
			digest := types.HashData(buf[:])
			if binary.LittleEndian.Uint64(digest[:8]) < target {
				e.hashes.Add(uint64(i + 1))
				block.Header.PowNonce = *rng
				return true
			}
		}
		e.hashes.Add(batch)
		select {
		case <-e.stop:
			return false
		default:
		}
		if e.ctx.Chain.Head().Hash() != parent {
			return false // someone else extended the chain; rebuild
		}
		runtime.Gosched()
	}
}

func (e *Engine) broadcastBlock(b *types.Block) {
	e.ctx.Endpoint.Broadcast(consensus.MsgBlock, b)
}

// Handle implements consensus.Engine.
func (e *Engine) Handle(msg simnet.Message) bool {
	if consensus.HandleSync(e.ctx, msg) {
		e.drainOrphans()
		return true
	}
	if msg.Type != consensus.MsgBlock {
		return false
	}
	b, ok := msg.Payload.(*types.Block)
	if !ok || msg.Corrupt {
		return true
	}
	e.acceptBlock(b, msg.From)
	return true
}

func (e *Engine) acceptBlock(b *types.Block, from simnet.NodeID) {
	if e.ctx.Chain.Has(b.Hash()) {
		return
	}
	if !SealOK(&b.Header) {
		return
	}
	switch err := e.ctx.Chain.Append(b); err {
	case nil:
		e.drainOrphans()
	case ledger.ErrUnknownParent:
		e.mu.Lock()
		if len(e.orphans) < 256 {
			e.orphans[b.Hash()] = b
		}
		e.mu.Unlock()
		consensus.RequestSync(e.ctx, from)
	default:
		// Invalid block: drop.
	}
}

// drainOrphans retries buffered blocks whose parents may now be known.
func (e *Engine) drainOrphans() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for progress := true; progress; {
		progress = false
		for h, b := range e.orphans {
			if err := e.ctx.Chain.Append(b); err != ledger.ErrUnknownParent {
				delete(e.orphans, h)
				if err == nil {
					progress = true
				}
			}
		}
	}
}
