package invariant

import (
	"strings"
	"testing"

	"blockbench/internal/types"
)

// fakeView scripts a cluster for the checker.
type fakeView struct {
	heights  []uint64
	restarts []uint64
	down     []bool
	shards   []int
	hashes   map[int]map[uint64]types.Hash
}

func newFakeView(n int) *fakeView {
	return &fakeView{
		heights:  make([]uint64, n),
		restarts: make([]uint64, n),
		down:     make([]bool, n),
		shards:   make([]int, n),
		hashes:   make(map[int]map[uint64]types.Hash),
	}
}

func (f *fakeView) Size() int               { return len(f.heights) }
func (f *fakeView) Down(i int) bool         { return f.down[i] }
func (f *fakeView) Restarts(i int) uint64   { return f.restarts[i] }
func (f *fakeView) ShardOf(i int) int       { return f.shards[i] }
func (f *fakeView) NodeHeight(i int) uint64 { return f.heights[i] }

func (f *fakeView) BlockHash(i int, h uint64) (types.Hash, bool) {
	hash, ok := f.hashes[i][h]
	return hash, ok
}

func (f *fakeView) setHash(i int, h uint64, b byte) {
	if f.hashes[i] == nil {
		f.hashes[i] = make(map[uint64]types.Hash)
	}
	var hash types.Hash
	hash[0] = b
	f.hashes[i][h] = hash
}

func TestObserveHeightsMonotone(t *testing.T) {
	v := newFakeView(2)
	c := New()
	v.heights = []uint64{5, 5}
	c.ObserveHeights(v)
	v.heights = []uint64{6, 7}
	c.ObserveHeights(v)
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("clean growth flagged: %v", got)
	}
	v.heights[1] = 3 // regression, no restart
	c.ObserveHeights(v)
	got := c.Violations()
	if len(got) != 1 || !strings.Contains(got[0], "monotonicity") {
		t.Fatalf("regression not flagged: %v", got)
	}
}

func TestObserveHeightsRestartResetsBaseline(t *testing.T) {
	v := newFakeView(2)
	c := New()
	v.heights = []uint64{9, 9}
	c.ObserveHeights(v)
	// Node 1 crash-recovers onto a shorter persisted chain: legitimate.
	v.heights[1] = 2
	v.restarts[1] = 1
	c.ObserveHeights(v)
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("post-restart height flagged: %v", got)
	}
}

func TestObserveHeightsSkipsDownNodes(t *testing.T) {
	v := newFakeView(2)
	c := New()
	v.heights = []uint64{4, 4}
	c.ObserveHeights(v)
	v.down[1] = true
	v.heights[1] = 0
	c.ObserveHeights(v)
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("down node sampled: %v", got)
	}
}

func TestCheckAgreementFlagsDivergence(t *testing.T) {
	v := newFakeView(3)
	v.heights = []uint64{10, 10, 10}
	for i := 0; i < 3; i++ {
		for h := uint64(1); h <= 10; h++ {
			v.setHash(i, h, byte(h))
		}
	}
	c := New()
	c.CheckAgreement(v, 2)
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("identical chains flagged: %v", got)
	}
	v.setHash(2, 4, 0xff) // node 2 forked at height 4
	c = New()
	c.CheckAgreement(v, 2)
	got := c.Violations()
	if len(got) != 1 || !strings.Contains(got[0], "agreement") {
		t.Fatalf("divergence not flagged: %v", got)
	}
}

func TestCheckAgreementRespectsDepthAndShards(t *testing.T) {
	v := newFakeView(4)
	v.heights = []uint64{10, 10, 10, 10}
	v.shards = []int{0, 0, 1, 1}
	for i := 0; i < 4; i++ {
		for h := uint64(1); h <= 10; h++ {
			v.setHash(i, h, byte(h))
		}
	}
	// Divergence inside the confirmation-depth window is a pending
	// reorg, not a safety violation.
	v.setHash(1, 10, 0xaa)
	c := New()
	c.CheckAgreement(v, 3)
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("tip divergence inside depth flagged: %v", got)
	}
	// Shards have independent chains: node 2 and node 0 differing at
	// the same height is normal.
	v.setHash(2, 5, 0xbb)
	v.setHash(3, 5, 0xbb)
	c = New()
	c.CheckAgreement(v, 3)
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("cross-shard difference flagged: %v", got)
	}
}

func TestCheckXShardAccounting(t *testing.T) {
	c := New()
	c.CheckXShard(map[string]uint64{"xshard.txs": 10, "xshard.commits": 6, "xshard.aborts": 4})
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("exact accounting flagged: %v", got)
	}
	// A shortfall just means coordinations were in flight at sampling.
	c.CheckXShard(map[string]uint64{"xshard.txs": 10, "xshard.commits": 3, "xshard.aborts": 1})
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("in-flight shortfall flagged: %v", got)
	}
	c.CheckXShard(map[string]uint64{"xshard.txs": 10, "xshard.commits": 8, "xshard.aborts": 3})
	got := c.Violations()
	if len(got) != 1 || !strings.Contains(got[0], "xshard") {
		t.Fatalf("over-resolution not flagged: %v", got)
	}
	// Unsharded platforms expose no xshard counters at all.
	c = New()
	c.CheckXShard(map[string]uint64{})
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("missing counters flagged: %v", got)
	}
}

func TestViolationListBounded(t *testing.T) {
	c := New()
	for i := 0; i < 200; i++ {
		c.Add("v")
	}
	if got := len(c.Violations()); got != 64 {
		t.Fatalf("violations = %d, want capped at 64", got)
	}
}
