// Package invariant implements the always-on safety checks that run
// alongside every fault-injected benchmark: committed-prefix agreement
// across live nodes, per-node commit-index monotonicity, and
// cross-shard commit/abort accounting. The driver feeds the checker
// from its snapshot sampler during the run and from final cluster
// state afterwards; any violation fails the run (and CI) with the
// chaos seed printed, so a broken interleaving reproduces exactly.
//
// The checks are safety properties: they must hold under arbitrary
// crash, partition and link-fault schedules. Liveness (the cluster
// commits anything at all) is asserted separately by the tests.
package invariant

import (
	"fmt"
	"sync"

	"blockbench/internal/types"
)

// ChainView is the read surface the checker inspects — implemented by
// platform.Cluster.
type ChainView interface {
	// Size returns the number of nodes.
	Size() int
	// Down reports whether node i is currently process-killed.
	Down(i int) bool
	// Restarts counts node i's crash-recoveries.
	Restarts(i int) uint64
	// ShardOf returns the shard group whose canonical chain node i
	// follows (0 on single-chain platforms).
	ShardOf(i int) int
	// NodeHeight returns node i's canonical chain height.
	NodeHeight(i int) uint64
	// BlockHash returns node i's block hash at a height (ok=false when
	// absent).
	BlockHash(i int, height uint64) (types.Hash, bool)
}

// Checker accumulates safety-invariant violations over a run. All
// methods are safe for concurrent use.
type Checker struct {
	mu           sync.Mutex
	lastHeights  []uint64
	lastRestarts []uint64
	violations   []string
}

// New returns an empty checker.
func New() *Checker { return &Checker{} }

// Add records a violation found by an external check (workload-level
// invariants plug in here).
func (c *Checker) Add(violation string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(violation)
}

func (c *Checker) addLocked(v string) {
	// Bound the list: one interleaving bug tends to spray repeats.
	if len(c.violations) < 64 {
		c.violations = append(c.violations, v)
	}
}

// Violations returns everything recorded so far (nil when clean).
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.violations...)
}

// ObserveHeights samples per-node chain heights. A node whose height
// regressed since the previous sample without an intervening restart
// has un-committed agreed history — a safety violation on every
// platform (longest-chain growth and consensus commit indexes are both
// monotone). Killed nodes are skipped; a restart resets the baseline.
func (c *Checker) ObserveHeights(v ChainView) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := v.Size()
	if c.lastHeights == nil {
		c.lastHeights = make([]uint64, n)
		c.lastRestarts = make([]uint64, n)
		for i := range c.lastRestarts {
			c.lastRestarts[i] = v.Restarts(i)
		}
	}
	for i := 0; i < n; i++ {
		if v.Down(i) {
			continue
		}
		h := v.NodeHeight(i)
		r := v.Restarts(i)
		if r == c.lastRestarts[i] && h < c.lastHeights[i] {
			c.addLocked(fmt.Sprintf(
				"monotonicity: node %d height regressed %d -> %d without a restart",
				i, c.lastHeights[i], h))
		}
		c.lastHeights[i] = h
		c.lastRestarts[i] = r
	}
}

// CheckAgreement verifies committed-prefix agreement: within each shard
// group, every live node holds byte-identical blocks up to the group's
// minimum height minus depth (the platform's confirmation depth plus a
// reorg margin on forking chains). One violation is recorded per
// disagreeing group, anchored at the lowest divergent height.
func (c *Checker) CheckAgreement(v ChainView, depth uint64) {
	groups := make(map[int][]int)
	for i := 0; i < v.Size(); i++ {
		if v.Down(i) {
			continue
		}
		groups[v.ShardOf(i)] = append(groups[v.ShardOf(i)], i)
	}
	for g, nodes := range groups {
		if len(nodes) < 2 {
			continue
		}
		min := v.NodeHeight(nodes[0])
		for _, i := range nodes[1:] {
			if h := v.NodeHeight(i); h < min {
				min = h
			}
		}
		if min <= depth {
			continue
		}
		limit := min - depth
		ref := nodes[0]
	scan:
		for h := uint64(1); h <= limit; h++ {
			want, ok := v.BlockHash(ref, h)
			if !ok {
				continue
			}
			for _, i := range nodes[1:] {
				got, ok2 := v.BlockHash(i, h)
				if ok2 && got != want {
					c.Add(fmt.Sprintf(
						"agreement: shard %d: nodes %d and %d disagree at height %d (%x vs %x), group min height %d",
						g, ref, i, h, want[:4], got[:4], min))
					break scan
				}
			}
		}
	}
}

// CheckXShard audits the cross-shard two-phase-commit accounting from
// the final counter set: every coordinated transaction resolves at most
// once, so commits+aborts can never exceed coordinated txs. (Reads are
// non-atomic across engines mid-run, so only the over-resolution
// direction is a hard violation; a shortfall just means coordinations
// were still pending at sample time.)
func (c *Checker) CheckXShard(counters map[string]uint64) {
	txs, ok := counters["xshard.txs"]
	if !ok {
		return
	}
	commits := counters["xshard.commits"]
	aborts := counters["xshard.aborts"]
	if commits+aborts > txs {
		c.Add(fmt.Sprintf(
			"xshard accounting: commits(%d)+aborts(%d) > coordinated txs(%d): a transaction resolved twice",
			commits, aborts, txs))
	}
}
