package mpt

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

func newMemTrie(t *testing.T) *Trie {
	t.Helper()
	tr, err := New(kvstore.NewMem(), types.ZeroHash)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEmptyTrie(t *testing.T) {
	tr := newMemTrie(t)
	h, err := tr.Hash()
	if err != nil || !h.IsZero() {
		t.Fatalf("empty hash = %v, %v", h, err)
	}
	v, err := tr.Get([]byte("nope"))
	if err != nil || v != nil {
		t.Fatalf("get on empty = %v, %v", v, err)
	}
	if err := tr.Delete([]byte("nope")); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetOverwrite(t *testing.T) {
	tr := newMemTrie(t)
	must(t, tr.Put([]byte("key"), []byte("v1")))
	got, _ := tr.Get([]byte("key"))
	if string(got) != "v1" {
		t.Fatalf("got %q", got)
	}
	must(t, tr.Put([]byte("key"), []byte("v2")))
	got, _ = tr.Get([]byte("key"))
	if string(got) != "v2" {
		t.Fatalf("overwrite: got %q", got)
	}
}

func TestPrefixKeys(t *testing.T) {
	tr := newMemTrie(t)
	// Keys where one is a strict prefix of another exercise branch values.
	must(t, tr.Put([]byte("do"), []byte("verb")))
	must(t, tr.Put([]byte("dog"), []byte("animal")))
	must(t, tr.Put([]byte("doge"), []byte("coin")))
	for k, want := range map[string]string{"do": "verb", "dog": "animal", "doge": "coin"} {
		got, err := tr.Get([]byte(k))
		if err != nil || string(got) != want {
			t.Fatalf("get %q = %q, %v", k, got, err)
		}
	}
	must(t, tr.Delete([]byte("dog")))
	if v, _ := tr.Get([]byte("dog")); v != nil {
		t.Fatal("dog survived delete")
	}
	if v, _ := tr.Get([]byte("doge")); string(v) != "coin" {
		t.Fatal("doge lost after sibling delete")
	}
	if v, _ := tr.Get([]byte("do")); string(v) != "verb" {
		t.Fatal("do lost after child delete")
	}
}

func TestRootCanonicalAcrossInsertionOrder(t *testing.T) {
	keys := make([][]byte, 50)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("account-%04d", i*7))
	}
	build := func(perm []int) types.Hash {
		tr := newMemTrie(t)
		for _, i := range perm {
			must(t, tr.Put(keys[i], []byte(fmt.Sprintf("balance-%d", i))))
		}
		h, err := tr.Hash()
		must(t, err)
		return h
	}
	base := make([]int, len(keys))
	for i := range base {
		base[i] = i
	}
	h1 := build(base)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(keys))
		if h2 := build(perm); h2 != h1 {
			t.Fatalf("root depends on insertion order: %v vs %v", h1, h2)
		}
	}
}

func TestDeleteRestoresPriorRoot(t *testing.T) {
	tr := newMemTrie(t)
	must(t, tr.Put([]byte("alpha"), []byte("1")))
	must(t, tr.Put([]byte("beta"), []byte("2")))
	h2, _ := tr.Hash()
	must(t, tr.Put([]byte("gamma"), []byte("3")))
	must(t, tr.Delete([]byte("gamma")))
	h2b, _ := tr.Hash()
	if h2 != h2b {
		t.Fatal("insert+delete did not restore root (non-canonical delete)")
	}
	must(t, tr.Delete([]byte("alpha")))
	must(t, tr.Delete([]byte("beta")))
	h0, _ := tr.Hash()
	if !h0.IsZero() {
		t.Fatal("deleting all keys should restore the zero root")
	}
}

func TestModelEquivalenceRandomOps(t *testing.T) {
	tr := newMemTrie(t)
	model := make(map[string][]byte)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("k%03d", rng.Intn(300)))
		switch rng.Intn(4) {
		case 0, 1: // put twice as often as delete
			v := []byte(fmt.Sprintf("v%d", i))
			must(t, tr.Put(k, v))
			model[string(k)] = v
		case 2:
			must(t, tr.Delete(k))
			delete(model, string(k))
		case 3:
			got, err := tr.Get(k)
			must(t, err)
			want := model[string(k)]
			if want == nil {
				if got != nil {
					t.Fatalf("op %d: ghost value for %s", i, k)
				}
			} else if !bytes.Equal(got, want) {
				t.Fatalf("op %d: get %s = %q want %q", i, k, got, want)
			}
		}
	}
	// Rebuild fresh from model: roots must match (canonical form).
	fresh := newMemTrie(t)
	for k, v := range model {
		must(t, fresh.Put([]byte(k), v))
	}
	h1, _ := tr.Hash()
	h2, _ := fresh.Hash()
	if h1 != h2 {
		t.Fatal("mutated trie root differs from freshly built trie with same content")
	}
}

func TestCommitAndReopen(t *testing.T) {
	store := kvstore.NewMem()
	tr, err := New(store, types.ZeroHash)
	must(t, err)
	for i := 0; i < 200; i++ {
		must(t, tr.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%d", i))))
	}
	root, err := tr.Commit()
	must(t, err)
	if root.IsZero() {
		t.Fatal("zero root after commit")
	}

	re, err := New(store, root)
	must(t, err)
	for i := 0; i < 200; i++ {
		v, err := re.Get([]byte(fmt.Sprintf("key-%03d", i)))
		must(t, err)
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("reopened trie lost key %d: %q", i, v)
		}
	}
}

func TestHistoricalRootsRemainReadable(t *testing.T) {
	// The analytics workload reads account state at old block heights;
	// committed versions must stay intact as the trie evolves.
	store := kvstore.NewMem()
	tr, err := New(store, types.ZeroHash)
	must(t, err)
	var roots []types.Hash
	for ver := 0; ver < 5; ver++ {
		must(t, tr.Put([]byte("acct"), []byte(fmt.Sprintf("balance-%d", ver))))
		must(t, tr.Put([]byte(fmt.Sprintf("other-%d", ver)), []byte("x")))
		r, err := tr.Commit()
		must(t, err)
		roots = append(roots, r)
	}
	for ver, root := range roots {
		old, err := New(store, root)
		must(t, err)
		v, err := old.Get([]byte("acct"))
		must(t, err)
		if string(v) != fmt.Sprintf("balance-%d", ver) {
			t.Fatalf("version %d: got %q", ver, v)
		}
	}
}

func TestMutatingAfterCommitKeepsOldVersion(t *testing.T) {
	store := kvstore.NewMem()
	tr, _ := New(store, types.ZeroHash)
	must(t, tr.Put([]byte("a"), []byte("1")))
	must(t, tr.Put([]byte("ab"), []byte("2")))
	root1, err := tr.Commit()
	must(t, err)
	must(t, tr.Put([]byte("a"), []byte("changed")))
	must(t, tr.Delete([]byte("ab")))
	_, err = tr.Commit()
	must(t, err)

	old, err := New(store, root1)
	must(t, err)
	v, err := old.Get([]byte("a"))
	must(t, err)
	if string(v) != "1" {
		t.Fatalf("old version mutated: %q", v)
	}
	v, err = old.Get([]byte("ab"))
	must(t, err)
	if string(v) != "2" {
		t.Fatalf("old version lost key: %q", v)
	}
}

func TestIterate(t *testing.T) {
	tr := newMemTrie(t)
	want := map[string]string{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("user-%02d", i)
		v := fmt.Sprintf("data-%d", i)
		want[k] = v
		must(t, tr.Put([]byte(k), []byte(v)))
	}
	got := map[string]string{}
	var prev []byte
	must(t, tr.Iterate(func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("iteration out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		got[string(k)] = string(v)
		return true
	}))
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: %q != %q", k, got[k], v)
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	tr := newMemTrie(t)
	for i := 0; i < 10; i++ {
		must(t, tr.Put([]byte(fmt.Sprintf("%02d", i)), []byte("v")))
	}
	n := 0
	must(t, tr.Iterate(func(k, v []byte) bool { n++; return n < 4 }))
	if n != 4 {
		t.Fatalf("visited %d, want 4", n)
	}
}

func TestNodesWrittenGrowsWithDepth(t *testing.T) {
	// Write amplification: committing K keys persists more than K nodes.
	store := kvstore.NewMem()
	tr, _ := New(store, types.ZeroHash)
	const keys = 500
	for i := 0; i < keys; i++ {
		must(t, tr.Put([]byte(fmt.Sprintf("%08d", i)), []byte("v")))
	}
	_, err := tr.Commit()
	must(t, err)
	if tr.NodesWritten() <= keys {
		t.Fatalf("expected write amplification, wrote %d nodes for %d keys",
			tr.NodesWritten(), keys)
	}
}

func TestMissingNodeError(t *testing.T) {
	// A root pointing at an empty store must surface ErrNotFound.
	tr, err := New(kvstore.NewMem(), types.HashData([]byte("bogus")))
	must(t, err)
	if _, err := tr.Get([]byte("x")); err == nil {
		t.Fatal("expected resolution error")
	}
}

func TestInMemoryTrieCommitFails(t *testing.T) {
	tr, err := New(nil, types.ZeroHash)
	must(t, err)
	must(t, tr.Put([]byte("k"), []byte("v")))
	if _, err := tr.Commit(); err == nil {
		t.Fatal("commit without store should fail")
	}
	if _, err := tr.Hash(); err != nil {
		t.Fatalf("hash without store should work: %v", err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
