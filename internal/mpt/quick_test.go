package mpt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

// TestQuickCanonicalRoot: any random key/value set yields the same root
// regardless of insertion order — the property that makes state roots
// comparable across nodes that received transactions in gossip order.
func TestQuickCanonicalRoot(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte, seed int64) bool {
		if len(keys) == 0 || len(vals) == 0 {
			return true
		}
		// Normalize into a deduplicated map (later writes win, as in a
		// real state update batch).
		m := map[string][]byte{}
		for i, k := range keys {
			if len(k) == 0 {
				continue
			}
			m[string(k)] = vals[i%len(vals)]
		}
		t1, _ := New(kvstore.NewMem(), types.ZeroHash)
		for k, v := range m { // map order: already random
			if err := t1.Put([]byte(k), v); err != nil {
				return false
			}
		}
		t2, _ := New(kvstore.NewMem(), types.ZeroHash)
		order := make([]string, 0, len(m))
		for k := range m {
			order = append(order, k)
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, k := range order {
			if err := t2.Put([]byte(k), m[k]); err != nil {
				return false
			}
		}
		h1, err1 := t1.Hash()
		h2, err2 := t2.Hash()
		return err1 == nil && err2 == nil && h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCommitRoundTrip: any committed set reads back identically
// from a reopened trie.
func TestQuickCommitRoundTrip(t *testing.T) {
	f := func(keys [][]byte, val []byte) bool {
		store := kvstore.NewMem()
		tr, _ := New(store, types.ZeroHash)
		m := map[string][]byte{}
		for i, k := range keys {
			if len(k) == 0 || len(k) > 64 {
				continue
			}
			v := append([]byte{byte(i)}, val...)
			m[string(k)] = v
			if err := tr.Put(k, v); err != nil {
				return false
			}
		}
		root, err := tr.Commit()
		if err != nil {
			return false
		}
		re, err := New(store, root)
		if err != nil {
			return false
		}
		for k, v := range m {
			got, err := re.Get([]byte(k))
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteInverse: Put followed by Delete of fresh keys restores
// the previous root exactly.
func TestQuickDeleteInverse(t *testing.T) {
	f := func(base [][]byte, extra [][]byte) bool {
		tr, _ := New(kvstore.NewMem(), types.ZeroHash)
		seen := map[string]bool{}
		for _, k := range base {
			if len(k) == 0 {
				continue
			}
			seen[string(k)] = true
			tr.Put(k, []byte("base"))
		}
		before, err := tr.Hash()
		if err != nil {
			return false
		}
		var added [][]byte
		for _, k := range extra {
			if len(k) == 0 || seen[string(k)] {
				continue
			}
			seen[string(k)] = true
			added = append(added, k)
			tr.Put(k, []byte("extra"))
		}
		for _, k := range added {
			tr.Delete(k)
		}
		after, err := tr.Hash()
		return err == nil && after == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
