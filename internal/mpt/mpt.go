// Package mpt implements a Patricia-Merkle trie, the authenticated state
// structure used by Ethereum and Parity ("Ethereum and Parity employ
// Patricia-Merkle tree that supports efficient update and search
// operations"). Keys are arbitrary byte strings; the trie is canonical:
// the root hash depends only on the key/value set, not insertion order.
//
// Nodes are content-addressed. Commit persists every dirty node to a
// backing key-value store under its hash, which (a) lets a trie be
// reopened at any historical root for block-at-height state queries, and
// (b) reproduces the write amplification that the paper's IOHeavy
// experiment observes for Ethereum and Parity relative to Hyperledger's
// plain key-value layout.
package mpt

import (
	"errors"
	"fmt"

	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

// ErrNotFound reports a missing node during resolution, indicating a
// truncated or corrupted node store.
var ErrNotFound = errors.New("mpt: node not found")

type node interface{}

type (
	// leafNode holds the tail of a key path and its value.
	leafNode struct {
		path  []byte // nibbles
		value []byte
	}
	// extNode compresses a shared path segment above a branch.
	extNode struct {
		path  []byte // nibbles, non-empty
		child node
	}
	// branchNode fans out on the next nibble; value holds a terminated
	// key ending exactly here.
	branchNode struct {
		children [16]node
		value    []byte
	}
	// hashNode is an unresolved reference to a persisted node.
	hashNode types.Hash
)

// NodeCache caches encoded trie nodes by content hash. Because nodes
// are immutable under their hash, a shared cache is valid across every
// trie version simultaneously — this is how geth's state cache can serve
// both head and historical reads.
type NodeCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, value []byte)
}

// Trie is a mutable Patricia-Merkle trie. It is not safe for concurrent
// mutation; callers serialize access (block execution is single-threaded
// on every platform in the paper).
type Trie struct {
	store kvstore.Store // nil for a purely in-memory trie
	cache NodeCache     // nil disables node caching
	root  node

	// nodesWritten counts persisted node writes, exposing the trie's
	// write amplification to the IOHeavy experiment.
	nodesWritten uint64

	// Reusable scratch for the hot paths (the trie is already
	// single-writer, see the type comment): encBuf holds one node's
	// encoding during Commit/Hash — children are hashed before the
	// parent's bytes are laid down, so one buffer serves every level —
	// keyBuf the store key of the node being persisted, and nibBuf the
	// nibble expansion of transient lookup keys (Get/Delete; Put paths
	// are retained inside inserted nodes and must stay freshly
	// allocated).
	encBuf []byte
	keyBuf []byte
	nibBuf []byte
}

// New opens a trie over store rooted at root. A zero root yields an empty
// trie. store may be nil for an in-memory trie (then Commit fails).
func New(store kvstore.Store, root types.Hash) (*Trie, error) {
	return NewWithCache(store, root, nil)
}

// NewWithCache opens a trie with a shared node cache in front of the
// store.
func NewWithCache(store kvstore.Store, root types.Hash, cache NodeCache) (*Trie, error) {
	t := &Trie{store: store, cache: cache}
	if !root.IsZero() {
		if store == nil {
			return nil, errors.New("mpt: non-zero root requires a store")
		}
		t.root = hashNode(root)
	}
	return t, nil
}

// keyNibbles expands key bytes into nibbles (hi, lo per byte).
func keyNibbles(key []byte) []byte {
	return expandNibbles(make([]byte, len(key)*2), key)
}

// scratchNibbles expands into the trie's reusable nibble buffer — only
// for paths that never retain the slice (Get, Delete).
func (t *Trie) scratchNibbles(key []byte) []byte {
	n := len(key) * 2
	if cap(t.nibBuf) < n {
		t.nibBuf = make([]byte, n)
	}
	return expandNibbles(t.nibBuf[:n], key)
}

func expandNibbles(out, key []byte) []byte {
	for i, b := range key {
		out[i*2] = b >> 4
		out[i*2+1] = b & 0x0f
	}
	return out
}

func commonPrefix(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Get returns the value stored at key, or nil if absent.
func (t *Trie) Get(key []byte) ([]byte, error) {
	v, newRoot, err := t.get(t.root, t.scratchNibbles(key))
	if err != nil {
		return nil, err
	}
	t.root = newRoot // keep resolved nodes to avoid re-reading the store
	return v, nil
}

func (t *Trie) get(n node, path []byte) (value []byte, resolved node, err error) {
	switch n := n.(type) {
	case nil:
		return nil, nil, nil
	case *leafNode:
		if len(path) == len(n.path) && commonPrefix(path, n.path) == len(path) {
			return n.value, n, nil
		}
		return nil, n, nil
	case *extNode:
		cp := commonPrefix(path, n.path)
		if cp < len(n.path) {
			return nil, n, nil
		}
		v, child, err := t.get(n.child, path[cp:])
		if err != nil {
			return nil, n, err
		}
		n.child = child
		return v, n, nil
	case *branchNode:
		if len(path) == 0 {
			return n.value, n, nil
		}
		v, child, err := t.get(n.children[path[0]], path[1:])
		if err != nil {
			return nil, n, err
		}
		n.children[path[0]] = child
		return v, n, nil
	case hashNode:
		real, err := t.resolve(n)
		if err != nil {
			return nil, n, err
		}
		return t.get(real, path)
	default:
		return nil, n, fmt.Errorf("mpt: unknown node type %T", n)
	}
}

// Put inserts or overwrites key=value. Empty values are stored as-is;
// use Delete to remove a key.
func (t *Trie) Put(key, value []byte) error {
	v := make([]byte, len(value))
	copy(v, value)
	newRoot, err := t.insert(t.root, keyNibbles(key), v)
	if err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

func (t *Trie) insert(n node, path []byte, value []byte) (node, error) {
	switch n := n.(type) {
	case nil:
		return &leafNode{path: path, value: value}, nil
	case *leafNode:
		cp := commonPrefix(path, n.path)
		if cp == len(path) && cp == len(n.path) {
			return &leafNode{path: path, value: value}, nil
		}
		branch := &branchNode{}
		if err := branch.attach(n.path[cp:], n.value); err != nil {
			return nil, err
		}
		if err := branch.attach(path[cp:], value); err != nil {
			return nil, err
		}
		if cp > 0 {
			return &extNode{path: path[:cp], child: branch}, nil
		}
		return branch, nil
	case *extNode:
		cp := commonPrefix(path, n.path)
		if cp == len(n.path) {
			child, err := t.insert(n.child, path[cp:], value)
			if err != nil {
				return nil, err
			}
			return &extNode{path: n.path, child: child}, nil
		}
		// Split the extension at cp.
		branch := &branchNode{}
		// Remainder of the extension goes under its first nibble.
		rem := n.path[cp:]
		if len(rem) == 1 {
			branch.children[rem[0]] = n.child
		} else {
			branch.children[rem[0]] = &extNode{path: rem[1:], child: n.child}
		}
		if err := branch.attach(path[cp:], value); err != nil {
			return nil, err
		}
		if cp > 0 {
			return &extNode{path: path[:cp], child: branch}, nil
		}
		return branch, nil
	case *branchNode:
		cp := *n // copy-on-write so committed parents stay valid
		if len(path) == 0 {
			cp.value = value
			return &cp, nil
		}
		child, err := t.insert(cp.children[path[0]], path[1:], value)
		if err != nil {
			return nil, err
		}
		cp.children[path[0]] = child
		return &cp, nil
	case hashNode:
		real, err := t.resolve(n)
		if err != nil {
			return nil, err
		}
		return t.insert(real, path, value)
	default:
		return nil, fmt.Errorf("mpt: unknown node type %T", n)
	}
}

// attach places (path, value) directly under a branch node.
func (b *branchNode) attach(path []byte, value []byte) error {
	if len(path) == 0 {
		b.value = value
		return nil
	}
	if len(path) == 1 {
		b.children[path[0]] = &leafNode{path: nil, value: value}
		return nil
	}
	b.children[path[0]] = &leafNode{path: path[1:], value: value}
	return nil
}

// Delete removes key from the trie; deleting an absent key is a no-op.
func (t *Trie) Delete(key []byte) error {
	newRoot, _, err := t.remove(t.root, t.scratchNibbles(key))
	if err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

func (t *Trie) remove(n node, path []byte) (node, bool, error) {
	switch n := n.(type) {
	case nil:
		return nil, false, nil
	case *leafNode:
		if len(path) == len(n.path) && commonPrefix(path, n.path) == len(path) {
			return nil, true, nil
		}
		return n, false, nil
	case *extNode:
		cp := commonPrefix(path, n.path)
		if cp < len(n.path) {
			return n, false, nil
		}
		child, changed, err := t.remove(n.child, path[cp:])
		if err != nil || !changed {
			return n, changed, err
		}
		return t.collapseExt(n.path, child)
	case *branchNode:
		cp := *n
		if len(path) == 0 {
			if cp.value == nil {
				return n, false, nil
			}
			cp.value = nil
		} else {
			child, changed, err := t.remove(cp.children[path[0]], path[1:])
			if err != nil || !changed {
				return n, changed, err
			}
			cp.children[path[0]] = child
		}
		collapsed, err := t.collapseBranch(&cp)
		return collapsed, true, err
	case hashNode:
		real, err := t.resolve(n)
		if err != nil {
			return n, false, err
		}
		return t.remove(real, path)
	default:
		return nil, false, fmt.Errorf("mpt: unknown node type %T", n)
	}
}

// collapseExt rebuilds an extension over a possibly-degenerate child.
func (t *Trie) collapseExt(path []byte, child node) (node, bool, error) {
	switch c := child.(type) {
	case nil:
		return nil, true, nil
	case *leafNode:
		return &leafNode{path: concat(path, c.path), value: c.value}, true, nil
	case *extNode:
		return &extNode{path: concat(path, c.path), child: c.child}, true, nil
	default:
		return &extNode{path: path, child: child}, true, nil
	}
}

// collapseBranch simplifies a branch left with zero or one descendants.
func (t *Trie) collapseBranch(b *branchNode) (node, error) {
	live := -1
	count := 0
	for i, c := range b.children {
		if c != nil {
			live = i
			count++
		}
	}
	if count == 0 {
		if b.value == nil {
			return nil, nil
		}
		return &leafNode{path: nil, value: b.value}, nil
	}
	if count == 1 && b.value == nil {
		child := b.children[live]
		if hn, ok := child.(hashNode); ok {
			real, err := t.resolve(hn)
			if err != nil {
				return nil, err
			}
			child = real
		}
		prefix := []byte{byte(live)}
		switch c := child.(type) {
		case *leafNode:
			return &leafNode{path: concat(prefix, c.path), value: c.value}, nil
		case *extNode:
			return &extNode{path: concat(prefix, c.path), child: c.child}, nil
		default:
			return &extNode{path: prefix, child: child}, nil
		}
	}
	return b, nil
}

func concat(a, b []byte) []byte {
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// encode serializes a node with child references replaced by hashes and
// returns its content hash; write additionally persists it (and,
// recursively, its resolved children). Children are hashed before any
// of the parent's bytes are laid down, so the single reusable encBuf
// serves every recursion level in turn — the Commit hot path allocates
// no per-node encoder or buffer (the shared node cache still takes a
// copy, since it retains what it is given).
func (t *Trie) encode(n node, write bool) (types.Hash, error) {
	var children [16]types.Hash
	var childCount int
	switch n := n.(type) {
	case *leafNode:
	case *extNode:
		ch, err := t.hashChild(n.child, write)
		if err != nil {
			return types.ZeroHash, err
		}
		children[0], childCount = ch, 1
	case *branchNode:
		for i, c := range n.children {
			if c == nil {
				continue
			}
			ch, err := t.hashChild(c, write)
			if err != nil {
				return types.ZeroHash, err
			}
			children[i] = ch
		}
		childCount = 16
	default:
		return types.ZeroHash, fmt.Errorf("mpt: cannot encode %T", n)
	}

	// Flat encoding into the reused buffer (layout unchanged: it is the
	// hashing preimage, so existing roots stay valid).
	buf := t.encBuf[:0]
	switch n := n.(type) {
	case *leafNode:
		buf = appendUint32(buf, 2)
		buf = appendBytes(buf, n.path)
		buf = appendBytes(buf, n.value)
	case *extNode:
		buf = appendUint32(buf, 1)
		buf = appendBytes(buf, n.path)
		buf = append(buf, children[0][:]...)
	case *branchNode:
		buf = appendUint32(buf, 0)
		for i := 0; i < childCount; i++ {
			buf = append(buf, children[i][:]...)
		}
		if n.value != nil {
			buf = append(buf, 1)
			buf = appendBytes(buf, n.value)
		} else {
			buf = append(buf, 0)
		}
	}
	t.encBuf = buf

	h := types.HashData(buf)
	if write && t.store != nil {
		if err := t.store.Put(t.nodeKey(h), buf); err != nil {
			return types.ZeroHash, err
		}
		t.nodesWritten++
		if t.cache != nil {
			t.cache.Put(string(h[:]), append([]byte(nil), buf...))
		}
	}
	return h, nil
}

// appendUint32 and appendBytes mirror types.Encoder's length-prefixed
// little-endian layout without an encoder allocation.
func appendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendBytes(buf, b []byte) []byte {
	return append(appendUint32(buf, uint32(len(b))), b...)
}

func (t *Trie) hashChild(n node, write bool) (types.Hash, error) {
	if hn, ok := n.(hashNode); ok {
		return types.Hash(hn), nil
	}
	return t.encode(n, write)
}

// Hash computes the root hash without persisting anything.
func (t *Trie) Hash() (types.Hash, error) {
	if t.root == nil {
		return types.ZeroHash, nil
	}
	if hn, ok := t.root.(hashNode); ok {
		return types.Hash(hn), nil
	}
	return t.encode(t.root, false)
}

// Commit persists all nodes reachable from the root and returns the root
// hash. The trie remains usable afterwards.
func (t *Trie) Commit() (types.Hash, error) {
	if t.store == nil {
		return types.ZeroHash, errors.New("mpt: commit without store")
	}
	if t.root == nil {
		return types.ZeroHash, nil
	}
	if hn, ok := t.root.(hashNode); ok {
		return types.Hash(hn), nil
	}
	return t.encode(t.root, true)
}

// NodesWritten reports how many trie nodes have been persisted, a direct
// measure of write amplification.
func (t *Trie) NodesWritten() uint64 { return t.nodesWritten }

// nodeKey builds the store key for a node hash in the trie's reusable
// key scratch (both storage engines copy their key argument).
func (t *Trie) nodeKey(h types.Hash) []byte {
	if cap(t.keyBuf) < 2+types.HashSize {
		t.keyBuf = make([]byte, 0, 2+types.HashSize)
	}
	k := append(t.keyBuf[:0], 't', ':')
	k = append(k, h[:]...)
	t.keyBuf = k
	return k
}

func (t *Trie) resolve(hn hashNode) (node, error) {
	if t.store == nil {
		return nil, ErrNotFound
	}
	h := types.Hash(hn)
	if t.cache != nil {
		if enc, ok := t.cache.Get(string(h[:])); ok {
			return decodeNode(enc)
		}
	}
	enc, ok, err := t.store.Get(t.nodeKey(h))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, h.Hex())
	}
	if t.cache != nil {
		t.cache.Put(string(h[:]), enc)
	}
	return decodeNode(enc)
}

func decodeNode(enc []byte) (node, error) {
	d := types.NewDecoder(enc)
	switch kind := d.Uint32(); kind {
	case 2:
		n := &leafNode{path: d.Bytes(), value: d.Bytes()}
		if err := d.Err(); err != nil {
			return nil, err
		}
		return n, nil
	case 1:
		n := &extNode{path: d.Bytes()}
		var h types.Hash
		copy(h[:], d.Raw(types.HashSize))
		if err := d.Err(); err != nil {
			return nil, err
		}
		n.child = hashNode(h)
		return n, nil
	case 0:
		n := &branchNode{}
		for i := 0; i < 16; i++ {
			var h types.Hash
			copy(h[:], d.Raw(types.HashSize))
			if !h.IsZero() {
				n.children[i] = hashNode(h)
			}
		}
		if d.Bool() {
			n.value = d.Bytes()
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		return n, nil
	default:
		return nil, fmt.Errorf("mpt: bad node kind %d", kind)
	}
}

// Iterate walks all key/value pairs in nibble order. Keys are
// reconstructed from paths; only byte-aligned keys (even nibble count)
// are produced, which is all this repository ever stores.
func (t *Trie) Iterate(fn func(key, value []byte) bool) error {
	_, err := t.walk(t.root, nil, fn)
	return err
}

func (t *Trie) walk(n node, prefix []byte, fn func(k, v []byte) bool) (bool, error) {
	switch n := n.(type) {
	case nil:
		return true, nil
	case *leafNode:
		return emit(concat(prefix, n.path), n.value, fn), nil
	case *extNode:
		return t.walk(n.child, concat(prefix, n.path), fn)
	case *branchNode:
		if n.value != nil {
			if !emit(prefix, n.value, fn) {
				return false, nil
			}
		}
		for i, c := range n.children {
			if c == nil {
				continue
			}
			cont, err := t.walk(c, concat(prefix, []byte{byte(i)}), fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	case hashNode:
		real, err := t.resolve(n)
		if err != nil {
			return false, err
		}
		return t.walk(real, prefix, fn)
	default:
		return false, fmt.Errorf("mpt: unknown node type %T", n)
	}
}

func emit(nibbles []byte, value []byte, fn func(k, v []byte) bool) bool {
	if len(nibbles)%2 != 0 {
		return true // non-byte-aligned key: skip
	}
	key := make([]byte, len(nibbles)/2)
	for i := range key {
		key[i] = nibbles[i*2]<<4 | nibbles[i*2+1]
	}
	return fn(key, value)
}
