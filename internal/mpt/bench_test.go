package mpt

import (
	"fmt"
	"testing"

	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

// The MPT-vs-BMT benchmarks (see also internal/bmt) underlie the IOHeavy
// data-model comparison: the trie pays multi-node paths per write, the
// bucket tree one record.

func BenchmarkTriePut(b *testing.B) {
	tr, _ := New(kvstore.NewMem(), types.ZeroHash)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

func BenchmarkTrieGet(b *testing.B) {
	tr, _ := New(kvstore.NewMem(), types.ZeroHash)
	const keys = 10_000
	for i := 0; i < keys; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%09d", i)), make([]byte, 100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get([]byte(fmt.Sprintf("key-%09d", i%keys)))
	}
}

func BenchmarkTrieCommit1k(b *testing.B) {
	store := kvstore.NewMem()
	tr, _ := New(store, types.ZeroHash)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 1000; j++ {
			tr.Put([]byte(fmt.Sprintf("key-%d-%d", i, j)), make([]byte, 100))
		}
		b.StartTimer()
		if _, err := tr.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
