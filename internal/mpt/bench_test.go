package mpt

import (
	"fmt"
	"testing"

	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

// The MPT-vs-BMT benchmarks (see also internal/bmt) underlie the IOHeavy
// data-model comparison: the trie pays multi-node paths per write, the
// bucket tree one record. All benches report allocations — the trie
// commit path is the allocation hot spot of every geth-lineage preset
// (Ethereum, Quorum, Sharded commit a trie per block), tracked by
// BenchmarkTrieCommitAllocs below.

func BenchmarkTriePut(b *testing.B) {
	tr, _ := New(kvstore.NewMem(), types.ZeroHash)
	val := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

func BenchmarkTrieGet(b *testing.B) {
	tr, _ := New(kvstore.NewMem(), types.ZeroHash)
	const keys = 10_000
	for i := 0; i < keys; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%09d", i)), make([]byte, 100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get([]byte(fmt.Sprintf("key-%09d", i%keys)))
	}
}

func BenchmarkTrieCommit1k(b *testing.B) {
	store := kvstore.NewMem()
	tr, _ := New(store, types.ZeroHash)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 1000; j++ {
			tr.Put([]byte(fmt.Sprintf("key-%d-%d", i, j)), make([]byte, 100))
		}
		b.StartTimer()
		if _, err := tr.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrieCommitAllocs is the allocation-counting benchmark of the
// encode/Commit hot path in isolation: 1000 dirty keys per commit, no
// node cache, reporting allocations per committed trie node so the
// buffer-reuse trajectory (encoder, encode buffer, store key) is
// visible in BENCH_ci.json across PRs.
func BenchmarkTrieCommitAllocs(b *testing.B) {
	store := kvstore.NewMem()
	tr, _ := New(store, types.ZeroHash)
	var nodes uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 1000; j++ {
			tr.Put([]byte(fmt.Sprintf("key-%d-%d", i, j)), make([]byte, 100))
		}
		before := tr.NodesWritten()
		b.StartTimer()
		if _, err := tr.Commit(); err != nil {
			b.Fatal(err)
		}
		nodes += tr.NodesWritten() - before
	}
	if nodes > 0 {
		b.ReportMetric(float64(nodes)/float64(b.N), "nodes/commit")
	}
}

// BenchmarkTrieCommitCached is the same commit under a shared node
// cache (the geth-lineage production configuration): the cache retains
// every persisted encoding, so this tracks the one remaining per-node
// copy on the write path.
func BenchmarkTrieCommitCached(b *testing.B) {
	store := kvstore.NewMem()
	tr, _ := NewWithCache(store, types.ZeroHash, newMapCache())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 1000; j++ {
			tr.Put([]byte(fmt.Sprintf("key-%d-%d", i, j)), make([]byte, 100))
		}
		b.StartTimer()
		if _, err := tr.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// mapCache is a minimal NodeCache for benchmarks.
type mapCache map[string][]byte

func newMapCache() mapCache { return make(mapCache) }

func (c mapCache) Get(key string) ([]byte, bool) { v, ok := c[key]; return v, ok }
func (c mapCache) Put(key string, value []byte)  { c[key] = value }
