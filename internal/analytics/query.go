// Query is the node-facing entry point: one request describes an
// operation over a height range, and the indexer plans a small
// iterator tree for it. The five operations cover the paper's two
// Analytics queries (sum, maxdelta/maxversion) and the join-shaped
// queries the HTAP workload issues (topk, common).
package analytics

import (
	"fmt"

	"blockbench/internal/types"
)

// Op names a query operation.
type Op string

const (
	// OpSum totals transaction value in the range — Q1.
	OpSum Op = "sum"
	// OpMaxDelta finds the largest per-block balance change of Account
	// in the range — Q2 on the account-balance platforms. The range
	// semantics mirror the baseline walk: deltas are measured between
	// consecutive block boundaries inside [From, To), so rows at height
	// From itself are history, not deltas.
	OpMaxDelta Op = "maxdelta"
	// OpMaxVersion finds the largest value among Account's in-range
	// version updates after the first — Q2's Hyperledger shape
	// (versionkv versions, newest-first consecutive diffs).
	OpMaxVersion Op = "maxversion"
	// OpTopK ranks Account's counterparties in the range by
	// transaction count (K results).
	OpTopK Op = "topk"
	// OpCommon joins the counterparty sets of Account and Account2 and
	// ranks the shared ones by combined activity (K results).
	OpCommon Op = "common"
)

// Query is one analytics request. To == 0 means "to the end of what
// the serving node confirms"; the node clamps To to its confirmation
// height, and the indexer clamps it to what it has indexed.
type Query struct {
	Op       Op
	From, To uint64
	Account  types.Address
	Account2 types.Address
	K        int
	// Since/Until bound rows by block timestamp (the half-open interval
	// [Since, Until), in the chain's own time unit; 0 means unbounded on
	// that side). Sealed segments record min/max timestamp zone maps, so
	// a time bound prunes whole segments without reading a row — but
	// unlike heights, timestamps are not strictly monotone across
	// segments, so a pruned segment skips rather than ending the scan.
	Since, Until int64
}

// AccountStat aggregates one account's activity in a range.
type AccountStat struct {
	Account types.Address
	Count   uint64
	Sum     uint64
}

// Result is one query's answer. Rows counts the index rows the
// operator tree actually pulled (after pushdown — the query's true
// scan cost), and Height is the last block the answer covers.
type Result struct {
	Value  uint64
	Top    []AccountStat
	Rows   uint64
	Height uint64
}

// Query runs one request against a consistent snapshot of the index.
func (ix *Indexer) Query(q Query) (Result, error) {
	switch q.Op {
	case OpSum, OpMaxDelta, OpMaxVersion, OpTopK, OpCommon:
	default:
		return Result{}, fmt.Errorf("analytics: unknown op %q", q.Op)
	}
	ix.queries.Inc()

	v := ix.view()
	from, to := q.From, q.To
	if to == 0 || to > v.last+1 {
		to = v.last + 1
	}
	var res Result
	if to > 0 {
		res.Height = to - 1
	}
	if from >= to {
		return res, nil // empty range
	}

	var scanned uint64
	switch q.Op {
	case OpSum:
		// Q1 counts value-bearing transactions whether or not they
		// committed successfully, matching the baseline block walk.
		it := Filter(v.scan(from, to, q.Since, q.Until, &scanned), func(r Row) bool {
			return r.Contract == "" || (r.Contract == "versionkv" && r.Method == "sendValue")
		})
		res.Value = Reduce(it, uint64(0), func(acc uint64, r Row) uint64 { return acc + r.Value })

	case OpMaxDelta:
		// Per-block net balance movement of the account, max |net|.
		// Transfers move balances by exactly their value (no fees in
		// this system), so this equals the baseline's BalanceAt diffs.
		it := Filter(v.accountScan(q.Account, from+1, to, q.Since, q.Until, &scanned), func(r Row) bool {
			return r.OK && r.Contract != "versionkv" && (r.Contract == "" || r.Value > 0)
		})
		type state struct {
			h    uint64
			net  int64
			best uint64
		}
		st := Reduce(it, state{}, func(s state, r Row) state {
			if r.Height != s.h {
				s.best = max(s.best, absInt64(s.net))
				s.net, s.h = 0, r.Height
			}
			if r.From == q.Account {
				s.net -= int64(r.Value)
			}
			if r.To == q.Account {
				s.net += int64(r.Value)
			}
			return s
		})
		res.Value = max(st.best, absInt64(st.net))

	case OpMaxVersion:
		// versionkv writes one version per touching update, and
		// consecutive version values differ by exactly the update's
		// value — so the largest newest-first diff over the in-range
		// versions is the largest in-range update value, excluding the
		// range's oldest version (it only anchors the first diff).
		it := Filter(v.accountScan(q.Account, from, to, q.Since, q.Until, &scanned), func(r Row) bool {
			return r.OK && r.Contract == "versionkv" && (r.Method == "sendValue" || r.Method == "prealloc")
		})
		type state struct {
			seen bool
			best uint64
		}
		st := Reduce(it, state{}, func(s state, r Row) state {
			if !s.seen {
				s.seen = true
				return s
			}
			s.best = max(s.best, r.Value)
			return s
		})
		res.Value = st.best

	case OpTopK:
		res.Top = TopAccounts(v.counterpartyStats(q.Account, from, to, q.Since, q.Until, &scanned), topK(q.K))

	case OpCommon:
		// Join the two accounts' counterparty aggregates on the
		// counterparty address; shared counterparties rank by combined
		// activity.
		a := v.counterpartyStats(q.Account, from, to, q.Since, q.Until, &scanned)
		b := v.counterpartyStats(q.Account2, from, to, q.Since, q.Until, &scanned)
		joined := HashJoin(
			SliceIter(a), func(s AccountStat) types.Address { return s.Account },
			SliceIter(b), func(s AccountStat) types.Address { return s.Account },
			func(l, r AccountStat) AccountStat {
				return AccountStat{Account: l.Account, Count: l.Count + r.Count, Sum: l.Sum + r.Sum}
			},
		)
		res.Top = TopAccounts(Drain(joined), topK(q.K))
	}

	res.Rows = scanned
	ix.queryRows.Add(scanned)
	if res.Height > v.last {
		res.Height = v.last
	}
	return res, nil
}

// counterpartyStats aggregates the per-counterparty count and value
// sum of the committed rows touching acct in [from, to).
func (v *view) counterpartyStats(acct types.Address, from, to uint64, since, until int64, scanned *uint64) []AccountStat {
	var zero types.Address
	it := Filter(v.accountScan(acct, from, to, since, until, scanned), func(r Row) bool { return r.OK })
	m := Reduce(it, make(map[types.Address]*AccountStat), func(m map[types.Address]*AccountStat, r Row) map[types.Address]*AccountStat {
		cp := r.From
		if cp == acct {
			cp = r.To
		}
		if cp == zero || cp == acct {
			return m
		}
		s := m[cp]
		if s == nil {
			s = &AccountStat{Account: cp}
			m[cp] = s
		}
		s.Count++
		s.Sum += r.Value
		return m
	})
	out := make([]AccountStat, 0, len(m))
	for _, s := range m {
		out = append(out, *s)
	}
	return out
}

func topK(k int) int {
	if k <= 0 {
		return 5
	}
	return k
}

func absInt64(v int64) uint64 {
	if v < 0 {
		return uint64(-v)
	}
	return uint64(v)
}
