// Streaming executor: a pull-based iterator tree over the columnar
// index. Operators exchange small row batches — a scan never
// materializes the history it covers, so query memory is bounded by
// the batch size (plus the aggregate's own state), not the chain
// length.
package analytics

import (
	"bytes"
	"sort"

	"blockbench/internal/types"
)

// batchRows is the number of rows an operator hands downstream per
// Next call.
const batchRows = 256

// Row is one decoded index row (one transaction).
type Row struct {
	Height   uint64
	Time     int64
	From     types.Address
	To       types.Address
	Value    uint64
	Contract string
	Method   string
	OK       bool
}

// Iterator is the executor's pull interface: Next returns the next
// batch, or nil when exhausted. A returned batch is only valid until
// the following Next call (operators reuse their buffers).
type Iterator[T any] interface {
	Next() []T
}

// Scan streams rows with Height in [from, to) in ascending row order,
// skipping sealed segments whose height zone maps fall outside the
// range. It is the index's table-scan access path.
func (ix *Indexer) Scan(from, to uint64) Iterator[Row] {
	return ix.view().scan(from, to, 0, 0, nil)
}

// AccountScan streams the rows touching acct (as sender or recipient)
// with Height in [from, to), driven by the account's posting list —
// cost proportional to the account's own history, not the chain's.
func (ix *Indexer) AccountScan(acct types.Address, from, to uint64) Iterator[Row] {
	return ix.view().accountScan(acct, from, to, 0, 0, nil)
}

// timeKeep reports whether a row timestamp falls inside the half-open
// [since, until) window; a zero bound is unbounded on that side.
func timeKeep(t, since, until int64) bool {
	return t >= since && (until == 0 || t < until)
}

// scanIter walks segments in order, binary-searching into the first
// relevant row per segment and pruning sealed segments by zone map
// (height and, when a time window is set, timestamp).
type scanIter struct {
	v            *view
	from, to     uint64
	since, until int64
	seg          int
	pos          int // -1: segment not yet entered
	done         bool
	buf          []Row
	scanned      *uint64
}

func (v *view) scan(from, to uint64, since, until int64, scanned *uint64) Iterator[Row] {
	return &scanIter{v: v, from: from, to: to, since: since, until: until, pos: -1, scanned: scanned}
}

func (it *scanIter) Next() []Row {
	if it.done {
		return nil
	}
	out := it.buf[:0]
	for len(out) < batchRows && !it.done {
		s := it.v.segment(it.seg)
		if s == nil {
			it.done = true
			break
		}
		if s.rows() == 0 {
			it.seg++
			it.pos = -1
			continue
		}
		if it.pos < 0 {
			// Predicate pushdown: the height zone map rejects the whole
			// segment without reading a row. Heights are globally
			// ascending, so a segment past the range ends the scan.
			if s.zoned && s.maxH < it.from {
				it.v.ix.zoneSkips.Inc()
				it.seg++
				continue
			}
			if s.zoned && s.minH >= it.to {
				it.v.ix.zoneSkips.Inc()
				it.done = true
				break
			}
			// Timestamp zone map: the whole segment lies outside the time
			// window. Timestamps are not strictly monotone across
			// segments, so this skips rather than ending the scan.
			if s.zoned && (s.maxT < it.since || (it.until > 0 && s.minT >= it.until)) {
				it.v.ix.zoneSkips.Inc()
				it.seg++
				continue
			}
			it.pos = sort.Search(s.rows(), func(i int) bool { return s.height[i] >= it.from })
		}
		for it.pos < s.rows() && len(out) < batchRows {
			if s.height[it.pos] >= it.to {
				it.done = true
				break
			}
			if timeKeep(s.time[it.pos], it.since, it.until) {
				out = append(out, it.v.rowFrom(s, it.pos))
			}
			it.pos++
		}
		if it.pos >= s.rows() {
			it.seg++
			it.pos = -1
		}
	}
	it.buf = out
	if len(out) == 0 {
		it.done = true
		return nil
	}
	if it.scanned != nil {
		*it.scanned += uint64(len(out))
	}
	return out
}

// postingIter walks one account's posting list, resolving global row
// ids into rows. Posting lists are ascending by row id, hence by
// height, so the height window is a contiguous slice of the list.
type postingIter struct {
	v            *view
	ids          []uint32
	i            int
	from, to     uint64
	since, until int64
	started      bool
	done         bool
	buf          []Row
	scanned      *uint64
}

func (v *view) accountScan(acct types.Address, from, to uint64, since, until int64, scanned *uint64) Iterator[Row] {
	return &postingIter{v: v, ids: v.postingsFor(acct), from: from, to: to, since: since, until: until, scanned: scanned}
}

func (it *postingIter) Next() []Row {
	if it.done {
		return nil
	}
	if !it.started {
		it.started = true
		it.i = sort.Search(len(it.ids), func(j int) bool {
			s, p := it.v.at(it.ids[j])
			return s.height[p] >= it.from
		})
	}
	out := it.buf[:0]
	for len(out) < batchRows && it.i < len(it.ids) {
		s, p := it.v.at(it.ids[it.i])
		if s.height[p] >= it.to {
			break
		}
		if timeKeep(s.time[p], it.since, it.until) {
			out = append(out, it.v.rowFrom(s, p))
			it.v.ix.postingsHits.Inc()
		}
		it.i++
	}
	it.buf = out
	if len(out) == 0 {
		it.done = true
		return nil
	}
	if it.scanned != nil {
		*it.scanned += uint64(len(out))
	}
	return out
}

// Filter streams the rows of in that satisfy keep.
func Filter[T any](in Iterator[T], keep func(T) bool) Iterator[T] {
	return &filterIter[T]{in: in, keep: keep}
}

type filterIter[T any] struct {
	in   Iterator[T]
	keep func(T) bool
	buf  []T
}

func (it *filterIter[T]) Next() []T {
	for {
		batch := it.in.Next()
		if batch == nil {
			return nil
		}
		out := it.buf[:0]
		for _, x := range batch {
			if it.keep(x) {
				out = append(out, x)
			}
		}
		it.buf = out
		if len(out) > 0 {
			return out
		}
	}
}

// Reduce folds every element of in into acc — the executor's aggregate
// sink (sum/max/count collapse to one value, group-bys to one map).
func Reduce[T, A any](in Iterator[T], acc A, f func(A, T) A) A {
	for {
		batch := in.Next()
		if batch == nil {
			return acc
		}
		for _, x := range batch {
			acc = f(acc, x)
		}
	}
}

// Drain collects the remaining elements of in into a slice. Only for
// streams already reduced to bounded size (joined aggregates, top-k
// candidates) — never for raw scans.
func Drain[T any](in Iterator[T]) []T {
	var out []T
	for {
		batch := in.Next()
		if batch == nil {
			return out
		}
		out = append(out, batch...)
	}
}

// SliceIter streams a slice in batches, adapting materialized
// aggregates back into the iterator tree.
func SliceIter[T any](xs []T) Iterator[T] {
	return &sliceIter[T]{xs: xs}
}

type sliceIter[T any] struct {
	xs []T
	i  int
}

func (it *sliceIter[T]) Next() []T {
	if it.i >= len(it.xs) {
		return nil
	}
	j := min(it.i+batchRows, len(it.xs))
	out := it.xs[it.i:j]
	it.i = j
	return out
}

// HashJoin equi-joins two streams: the build side is drained into a
// hash table keyed by bkey on the first Next call, then the probe side
// streams through it, emitting join(l, r) for every key match. Keys
// with multiple build rows fan out.
func HashJoin[L, R, O any, K comparable](
	build Iterator[L], bkey func(L) K,
	probe Iterator[R], pkey func(R) K,
	join func(L, R) O,
) Iterator[O] {
	return &hashJoinIter[L, R, O, K]{build: build, bkey: bkey, probe: probe, pkey: pkey, join: join}
}

type hashJoinIter[L, R, O any, K comparable] struct {
	build Iterator[L]
	bkey  func(L) K
	probe Iterator[R]
	pkey  func(R) K
	join  func(L, R) O
	table map[K][]L
	buf   []O
}

func (it *hashJoinIter[L, R, O, K]) Next() []O {
	if it.table == nil {
		it.table = make(map[K][]L)
		for {
			batch := it.build.Next()
			if batch == nil {
				break
			}
			for _, l := range batch {
				k := it.bkey(l)
				it.table[k] = append(it.table[k], l)
			}
		}
	}
	for {
		batch := it.probe.Next()
		if batch == nil {
			return nil
		}
		out := it.buf[:0]
		for _, r := range batch {
			for _, l := range it.table[it.pkey(r)] {
				out = append(out, it.join(l, r))
			}
		}
		it.buf = out
		if len(out) > 0 {
			return out
		}
	}
}

// TopAccounts orders account aggregates by activity — count desc, then
// sum desc, then address for determinism — and keeps the first k
// (k <= 0 keeps all).
func TopAccounts(stats []AccountStat, k int) []AccountStat {
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Count != stats[j].Count {
			return stats[i].Count > stats[j].Count
		}
		if stats[i].Sum != stats[j].Sum {
			return stats[i].Sum > stats[j].Sum
		}
		return bytes.Compare(stats[i].Account[:], stats[j].Account[:]) < 0
	})
	if k > 0 && len(stats) > k {
		stats = stats[:k]
	}
	return stats
}
