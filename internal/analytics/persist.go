// Persistence: sealed segments and the index meta record are written
// through the node's kvstore under the "a:" namespace (beside the
// state trie's "t:", flat state's "f:" and bucket tree's "b:"/"d:"
// prefixes), so `-popt store=lsm` persists the analytics index through
// the same LSM that holds state. The open segment is never persisted —
// Load restores the sealed image and drops the (possibly mid-block)
// final block, and a CatchUp replays the rest from the chain.
package analytics

import (
	"encoding/binary"
	"fmt"

	"blockbench/internal/types"
)

const persistVersion = 1

var metaKey = []byte("a:m")

func segmentKey(i int) []byte {
	k := make([]byte, 4+8)
	copy(k, "a:s:")
	binary.BigEndian.PutUint64(k[4:], uint64(i))
	return k
}

// persistMeta writes the meta record: format version, segment size,
// sealed-segment count, and the string dictionary.
func (ix *Indexer) persistMeta() error {
	buf := make([]byte, 0, 64)
	buf = append(buf, persistVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(ix.segSize))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ix.sealed)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ix.dict)))
	for _, s := range ix.dict {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
		buf = append(buf, s...)
	}
	return ix.store.Put(metaKey, buf)
}

// persistSegment writes one sealed segment's columns. Zone maps are
// recomputed on load, not stored.
func (ix *Indexer) persistSegment(i int, s *segment) error {
	n := s.rows()
	buf := make([]byte, 0, n*(8+8+2*types.AddressSize+8+2+2+1)+8)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	for _, v := range s.height {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	for _, v := range s.time {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	for j := 0; j < n; j++ {
		buf = append(buf, s.from[j][:]...)
	}
	for j := 0; j < n; j++ {
		buf = append(buf, s.to[j][:]...)
	}
	for _, v := range s.value {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	for _, v := range s.contract {
		buf = binary.BigEndian.AppendUint16(buf, v)
	}
	for _, v := range s.method {
		buf = binary.BigEndian.AppendUint16(buf, v)
	}
	buf = append(buf, s.ok...)
	return ix.store.Put(segmentKey(i), buf)
}

func (ix *Indexer) deleteSegment(i int) error {
	return ix.store.Delete(segmentKey(i))
}

// segReader decodes the persistSegment layout.
type segReader struct {
	buf []byte
	off int
	err error
}

func (r *segReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("truncated at offset %d (+%d of %d)", r.off, n, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *segReader) u16() uint16 { b := r.take(2); return binary.BigEndian.Uint16(pad(b, 2)) }
func (r *segReader) u32() uint32 { b := r.take(4); return binary.BigEndian.Uint32(pad(b, 4)) }
func (r *segReader) u64() uint64 { b := r.take(8); return binary.BigEndian.Uint64(pad(b, 8)) }

// pad keeps the fixed-width readers total after a truncation error —
// the reader's err field carries the failure.
func pad(b []byte, n int) []byte {
	if len(b) == n {
		return b
	}
	return make([]byte, n)
}

func decodeSegment(buf []byte) (*segment, error) {
	r := &segReader{buf: buf}
	n := int(r.u32())
	if r.err == nil && n > len(buf) {
		return nil, fmt.Errorf("row count %d exceeds payload", n)
	}
	s := &segment{
		height:   make([]uint64, n),
		time:     make([]int64, n),
		from:     make([]types.Address, n),
		to:       make([]types.Address, n),
		value:    make([]uint64, n),
		contract: make([]uint16, n),
		method:   make([]uint16, n),
	}
	for j := 0; j < n; j++ {
		s.height[j] = r.u64()
	}
	for j := 0; j < n; j++ {
		s.time[j] = int64(r.u64())
	}
	for j := 0; j < n; j++ {
		copy(s.from[j][:], r.take(types.AddressSize))
	}
	for j := 0; j < n; j++ {
		copy(s.to[j][:], r.take(types.AddressSize))
	}
	for j := 0; j < n; j++ {
		s.value[j] = r.u64()
	}
	for j := 0; j < n; j++ {
		s.contract[j] = r.u16()
	}
	for j := 0; j < n; j++ {
		s.method[j] = r.u16()
	}
	s.ok = append([]byte(nil), r.take(n)...)
	if r.err != nil {
		return nil, r.err
	}
	s.zone()
	return s, nil
}

// Load restores the persisted sealed-segment image into a fresh
// indexer, rebuilds the posting lists, and rewinds past the final
// indexed block (a seal boundary can cut mid-block, so the top block
// is re-applied by the follow-up CatchUp). A missing meta record is an
// empty index, not an error.
func (ix *Indexer) Load() error {
	if ix.store == nil {
		return fmt.Errorf("analytics: load: no store attached")
	}
	raw, ok, err := ix.store.Get(metaKey)
	if err != nil {
		return fmt.Errorf("analytics: load meta: %w", err)
	}
	if !ok {
		return nil
	}
	r := &segReader{buf: raw}
	if v := r.take(1); len(v) == 1 && v[0] != persistVersion {
		return fmt.Errorf("analytics: load: unknown format version %d", v[0])
	}
	segSize := int(r.u32())
	sealedCount := int(r.u32())
	dictLen := int(r.u32())
	if r.err != nil {
		return fmt.Errorf("analytics: load meta: %w", r.err)
	}
	if segSize != ix.segSize {
		return fmt.Errorf("analytics: load: segment size %d differs from configured %d", segSize, ix.segSize)
	}
	dict := make([]string, 0, dictLen)
	dictIDs := make(map[string]uint16, dictLen)
	for i := 0; i < dictLen; i++ {
		s := string(r.take(int(r.u16())))
		if r.err != nil {
			return fmt.Errorf("analytics: load dict: %w", r.err)
		}
		dict = append(dict, s)
		dictIDs[s] = uint16(i)
	}
	if len(dict) == 0 || dict[0] != "" {
		return fmt.Errorf("analytics: load: corrupt dictionary")
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.sealed = ix.sealed[:0]
	ix.open = &segment{}
	ix.postings = make(map[types.Address][]uint32)
	ix.dict, ix.dictIDs = dict, dictIDs
	ix.rows, ix.last = 0, 0
	var zero types.Address
	for i := 0; i < sealedCount; i++ {
		raw, ok, err := ix.store.Get(segmentKey(i))
		if err != nil || !ok {
			return fmt.Errorf("analytics: load segment %d: missing (err=%v)", i, err)
		}
		s, err := decodeSegment(raw)
		if err != nil {
			return fmt.Errorf("analytics: load segment %d: %w", i, err)
		}
		if s.rows() != ix.segSize {
			return fmt.Errorf("analytics: load segment %d: %d rows, want %d", i, s.rows(), ix.segSize)
		}
		for j := 0; j < s.rows(); j++ {
			id := uint32(ix.rows)
			if s.from[j] != zero {
				ix.postings[s.from[j]] = append(ix.postings[s.from[j]], id)
			}
			if s.to[j] != zero && s.to[j] != s.from[j] {
				ix.postings[s.to[j]] = append(ix.postings[s.to[j]], id)
			}
			ix.rows++
		}
		ix.sealed = append(ix.sealed, s)
		ix.segsTotal.Inc()
		ix.rowsTotal.Add(uint64(s.rows()))
	}
	if ix.rows > 0 {
		top := ix.sealed[len(ix.sealed)-1]
		h := top.height[top.rows()-1]
		ix.last = h
		// The image may end mid-block: rewind the whole top block so the
		// catch-up scan re-applies it completely.
		ix.truncateLocked(h)
	}
	return nil
}
