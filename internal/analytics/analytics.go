// Package analytics is the ledger's read-side query subsystem: a
// columnar block/transaction index maintained on the commit path, a
// streaming iterator-tree executor over it, and the server-side query
// entry point the node exposes to clients.
//
// The Indexer appends one row per transaction into fixed-size column
// segments (height, time, sender, recipient, value, contract, method,
// status). Sealed segments carry min/max zone maps so range-restricted
// scans skip whole segments without touching rows, and a per-account
// posting list maps each address to the global row ids that touch it,
// so account-keyed queries read only their own rows. Sealed segments
// are persisted through internal/kvstore under the "a:" prefix
// (write-through, best effort) and reloaded by Load; CatchUp replays
// any blocks the persisted image is missing from a BlockSource, so a
// late-started or freshly-attached indexer converges on the chain.
//
// Concurrency contract: OnCommit/Apply mutate under ix.mu; queries take
// a snapshot of the segment set under RLock and then run lock-free.
// Appends only ever write indices beyond a snapshot's captured length,
// and every truncation path (reorgs) replaces the underlying arrays
// instead of cutting them in place, so an in-flight scan keeps reading
// the consistent pre-reorg view it captured.
package analytics

import (
	"fmt"
	"sort"
	"sync"

	"blockbench/internal/exec"
	"blockbench/internal/kvstore"
	"blockbench/internal/metrics"
	"blockbench/internal/types"
)

// DefaultSegmentSize is the row capacity of one column segment. 1024
// rows ≈ 340 blocks at the paper's 3 tx/block: small enough that zone
// maps prune tight ranges, large enough that per-segment overhead
// (zones, one kvstore entry) stays negligible.
const DefaultSegmentSize = 1024

// Options configures an Indexer.
type Options struct {
	// SegmentSize overrides DefaultSegmentSize (rows per segment).
	SegmentSize int
}

// BlockSource is the chain surface CatchUp replays from. *ledger.Chain
// satisfies it.
type BlockSource interface {
	Height() uint64
	GetBlock(number uint64) (*types.Block, bool)
	Receipts(number uint64) []*types.Receipt
}

// segment is one fixed-capacity column group. Sealed segments are
// immutable and carry zone maps; the open segment grows by append only.
type segment struct {
	height   []uint64
	time     []int64
	from     []types.Address
	to       []types.Address
	value    []uint64
	contract []uint16 // dictionary id into Indexer.dict
	method   []uint16
	ok       []byte // 1 = receipt OK

	// Zone maps, valid only when zoned (sealed or loaded segments).
	zoned      bool
	minH, maxH uint64
	minV, maxV uint64
	minT, maxT int64
}

func (s *segment) rows() int { return len(s.height) }

// freeze returns a read-only alias of the segment's current rows.
// The returned slices are capacity-clamped, so later appends to the
// live segment allocate past them instead of overwriting.
func (s *segment) freeze() *segment {
	n := len(s.height)
	return &segment{
		height:   s.height[:n:n],
		time:     s.time[:n:n],
		from:     s.from[:n:n],
		to:       s.to[:n:n],
		value:    s.value[:n:n],
		contract: s.contract[:n:n],
		method:   s.method[:n:n],
		ok:       s.ok[:n:n],
		zoned:    s.zoned,
		minH:     s.minH, maxH: s.maxH,
		minV: s.minV, maxV: s.maxV,
		minT: s.minT, maxT: s.maxT,
	}
}

// clone copies the first keep rows into fresh arrays. Truncations go
// through here so snapshots taken before the reorg keep their view.
func (s *segment) clone(keep int) *segment {
	c := &segment{
		height:   append(make([]uint64, 0, keep), s.height[:keep]...),
		time:     append(make([]int64, 0, keep), s.time[:keep]...),
		from:     append(make([]types.Address, 0, keep), s.from[:keep]...),
		to:       append(make([]types.Address, 0, keep), s.to[:keep]...),
		value:    append(make([]uint64, 0, keep), s.value[:keep]...),
		contract: append(make([]uint16, 0, keep), s.contract[:keep]...),
		method:   append(make([]uint16, 0, keep), s.method[:keep]...),
		ok:       append(make([]byte, 0, keep), s.ok[:keep]...),
	}
	return c
}

// zone recomputes the segment's min/max zone maps.
func (s *segment) zone() {
	s.zoned = true
	if s.rows() == 0 {
		return
	}
	s.minH, s.maxH = s.height[0], s.height[s.rows()-1]
	s.minV, s.maxV = s.value[0], s.value[0]
	s.minT, s.maxT = s.time[0], s.time[0]
	for i := 1; i < s.rows(); i++ {
		s.minV = min(s.minV, s.value[i])
		s.maxV = max(s.maxV, s.value[i])
		s.minT = min(s.minT, s.time[i])
		s.maxT = max(s.maxT, s.time[i])
	}
}

// Indexer maintains the columnar index for one node's canonical chain.
type Indexer struct {
	store   kvstore.Store // nil: memory-only (no persistence)
	segSize int

	mu       sync.RWMutex
	sealed   []*segment // immutable, exactly segSize rows each
	open     *segment   // append-only tail
	postings map[types.Address][]uint32
	dict     []string // id -> string; dict[0] == ""
	dictIDs  map[string]uint16
	last     uint64 // highest fully indexed block height (0 = none)
	rows     uint64 // live row count (sealed + open)
	persist  bool   // write-through enabled (disabled after a store error)

	// Counters are monotonic (CounterProvider contract): segments and
	// rows count cumulative seals/appends, not the live totals.
	segsTotal    metrics.Counter
	rowsTotal    metrics.Counter
	zoneSkips    metrics.Counter
	postingsHits metrics.Counter
	queries      metrics.Counter
	queryRows    metrics.Counter
}

// NewIndexer builds an empty indexer over a kvstore (nil for
// memory-only). Call Load to restore a persisted image before hooking
// it to a chain.
func NewIndexer(store kvstore.Store, opts Options) *Indexer {
	size := opts.SegmentSize
	if size <= 0 {
		size = DefaultSegmentSize
	}
	return &Indexer{
		store:    store,
		segSize:  size,
		open:     &segment{},
		postings: make(map[types.Address][]uint32),
		dict:     []string{""},
		dictIDs:  map[string]uint16{"": 0},
		persist:  store != nil,
	}
}

// Counters implements metrics.CounterProvider.
func (ix *Indexer) Counters() map[string]uint64 {
	return map[string]uint64{
		"analytics.segments":      ix.segsTotal.Value(),
		"analytics.rows":          ix.rowsTotal.Value(),
		"analytics.zone_skips":    ix.zoneSkips.Value(),
		"analytics.postings_hits": ix.postingsHits.Value(),
		"analytics.queries":       ix.queries.Value(),
		"analytics.query_rows":    ix.queryRows.Value(),
	}
}

// Last returns the highest indexed block height (0 when empty).
func (ix *Indexer) Last() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.last
}

// Rows returns the live row count.
func (ix *Indexer) Rows() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.rows
}

// OnCommit is the ledger hook (ledger.Config.OnCommit): blocks arrive
// in ascending height order, possibly replacing previously committed
// heights after a reorg. It must not fail the commit, so index errors
// stop indexing at the failing block; CatchUp repairs the gap.
func (ix *Indexer) OnCommit(blocks []*types.Block, receipts [][]*types.Receipt) {
	for i, b := range blocks {
		var rs []*types.Receipt
		if i < len(receipts) {
			rs = receipts[i]
		}
		if err := ix.Apply(b, rs); err != nil {
			return
		}
	}
}

// Apply indexes one block. Heights must arrive contiguously: n == last+1
// appends, n <= last truncates the reorged suffix first (re-applying an
// already-indexed block is therefore idempotent), and a gap is an
// error.
func (ix *Indexer) Apply(b *types.Block, receipts []*types.Receipt) error {
	n := b.Number()
	if n == 0 {
		return nil // genesis carries no transactions
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	switch {
	case n == ix.last+1:
	case n <= ix.last:
		ix.truncateLocked(n)
	default:
		return fmt.Errorf("analytics: apply block %d after %d: gap", n, ix.last)
	}
	for i, tx := range b.Txs {
		ok := byte(0)
		if i < len(receipts) && receipts[i].OK {
			ok = 1
		}
		ix.appendLocked(n, b.Header.Time, tx, ok)
	}
	ix.last = n
	return nil
}

// CatchUp replays every block the index is missing from src, and first
// rewinds the index if it is ahead of src (a shorter chain after a
// restart). It is meant for indexers not hooked into a live commit
// path: it takes ix.mu only per block, never while calling into src, so
// a source whose methods lock the chain cannot deadlock against an
// OnCommit-hooked indexer.
func (ix *Indexer) CatchUp(src BlockSource) error {
	if h := src.Height(); ix.Last() > h {
		ix.mu.Lock()
		ix.truncateLocked(h + 1)
		ix.mu.Unlock()
	}
	for {
		next := ix.Last() + 1
		if next > src.Height() {
			return nil
		}
		b, ok := src.GetBlock(next)
		if !ok {
			return fmt.Errorf("analytics: catch-up: block %d not available", next)
		}
		if err := ix.Apply(b, src.Receipts(next)); err != nil {
			return err
		}
	}
}

// appendLocked adds one row and its posting entries.
func (ix *Indexer) appendLocked(height uint64, time int64, tx *types.Transaction, ok byte) {
	from, to, value := RowEndpoints(tx)
	id := uint32(ix.rows)
	s := ix.open
	s.height = append(s.height, height)
	s.time = append(s.time, time)
	s.from = append(s.from, from)
	s.to = append(s.to, to)
	s.value = append(s.value, value)
	s.contract = append(s.contract, ix.internLocked(tx.Contract))
	s.method = append(s.method, ix.internLocked(tx.Method))
	s.ok = append(s.ok, ok)
	var zero types.Address
	if from != zero {
		ix.postings[from] = append(ix.postings[from], id)
	}
	if to != zero && to != from {
		ix.postings[to] = append(ix.postings[to], id)
	}
	ix.rows++
	ix.rowsTotal.Inc()
	if s.rows() == ix.segSize {
		ix.sealLocked()
	}
}

// RowEndpoints maps a transaction to the (sender, recipient, value)
// triple the index records. Plain transfers use the transaction fields;
// versionkv chaincode calls carry their endpoints in the argument list
// (the paper's Hyperledger analytics path); any other contract call
// moves tx.Value from the sender to the contract's account.
func RowEndpoints(tx *types.Transaction) (from, to types.Address, value uint64) {
	switch {
	case tx.Contract == "":
		return tx.From, tx.To, tx.Value
	case tx.Contract == "versionkv" && tx.Method == "sendValue" && len(tx.Args) >= 3:
		return types.BytesToAddress(tx.Args[0]), types.BytesToAddress(tx.Args[1]), types.U64(tx.Args[2])
	case tx.Contract == "versionkv" && tx.Method == "prealloc" && len(tx.Args) >= 2:
		return types.Address{}, types.BytesToAddress(tx.Args[0]), types.U64(tx.Args[1])
	default:
		return tx.From, exec.ContractAddress(tx.Contract), tx.Value
	}
}

// internLocked returns the dictionary id for a contract/method string.
func (ix *Indexer) internLocked(s string) uint16 {
	if id, ok := ix.dictIDs[s]; ok {
		return id
	}
	if len(ix.dict) >= 1<<16 {
		return 0 // dictionary full: degrade to "" rather than corrupt ids
	}
	id := uint16(len(ix.dict))
	ix.dict = append(ix.dict, s)
	ix.dictIDs[s] = id
	return id
}

// sealLocked freezes the full open segment: computes its zone maps,
// persists it, and starts a fresh open segment.
func (ix *Indexer) sealLocked() {
	s := ix.open
	s.zone()
	ix.sealed = append(ix.sealed, s)
	ix.open = &segment{}
	ix.segsTotal.Inc()
	if ix.persist {
		if err := ix.persistSegment(len(ix.sealed)-1, s); err == nil {
			err = ix.persistMeta()
			if err != nil {
				ix.persist = false
			}
		} else {
			// Write-through is best effort (a capped store can fill up);
			// the in-memory index stays authoritative.
			ix.persist = false
		}
	}
}

// truncateLocked drops every row at height >= h (reorg rewind) and sets
// last = h-1. All cut data structures are replaced, not shrunk in
// place, preserving earlier snapshots.
func (ix *Indexer) truncateLocked(h uint64) {
	cut := ix.rowIndexOfHeightLocked(h)
	if cut < ix.rows {
		// Postings: every id >= cut disappears. Lists are ascending, so
		// each is a prefix cut — cloned, because a snapshot query may
		// still be walking the old array.
		for acct, list := range ix.postings {
			j := sort.Search(len(list), func(i int) bool { return list[i] >= uint32(cut) })
			if j == len(list) {
				continue
			}
			if j == 0 {
				delete(ix.postings, acct)
				continue
			}
			ix.postings[acct] = append(make([]uint32, 0, j), list[:j]...)
		}
		keepSealed := int(cut) / ix.segSize
		tail := int(cut) % ix.segSize
		if keepSealed < len(ix.sealed) {
			// Reopen the boundary segment: its kept prefix becomes the
			// new open segment.
			reopened := ix.sealed[keepSealed].clone(tail)
			dropped := len(ix.sealed) - keepSealed
			ix.sealed = append([]*segment(nil), ix.sealed[:keepSealed]...)
			ix.open = reopened
			if ix.persist {
				for i := 0; i < dropped; i++ {
					if err := ix.deleteSegment(keepSealed + i); err != nil {
						ix.persist = false
						break
					}
				}
			}
		} else {
			ix.open = ix.open.clone(tail)
		}
		ix.rows = cut
		if ix.persist {
			if err := ix.persistMeta(); err != nil {
				ix.persist = false
			}
		}
	}
	ix.last = h - 1
}

// rowIndexOfHeightLocked returns the global id of the first row at
// height >= h (rows when none).
func (ix *Indexer) rowIndexOfHeightLocked(h uint64) uint64 {
	// Binary-search the sealed segments by their max height, then the
	// rows of the boundary segment. Heights are globally ascending.
	si := sort.Search(len(ix.sealed), func(i int) bool { return ix.sealed[i].maxH >= h })
	base := uint64(si) * uint64(ix.segSize)
	var s *segment
	if si < len(ix.sealed) {
		s = ix.sealed[si]
	} else {
		s = ix.open
	}
	j := sort.Search(s.rows(), func(i int) bool { return s.height[i] >= h })
	return base + uint64(j)
}

// view is an immutable snapshot of the index for one query: sealed
// segments, a frozen alias of the open tail, and the dictionary.
type view struct {
	ix      *Indexer
	segSize int
	segs    []*segment
	open    *segment
	dict    []string
	last    uint64
	rows    uint64
}

func (ix *Indexer) view() *view {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := len(ix.sealed)
	d := len(ix.dict)
	return &view{
		ix:      ix,
		segSize: ix.segSize,
		segs:    ix.sealed[:n:n],
		open:    ix.open.freeze(),
		dict:    ix.dict[:d:d],
		last:    ix.last,
		rows:    ix.rows,
	}
}

// segment returns the i-th segment in scan order (nil past the end).
func (v *view) segment(i int) *segment {
	if i < len(v.segs) {
		return v.segs[i]
	}
	if i == len(v.segs) {
		return v.open
	}
	return nil
}

// at resolves a global row id to its segment and in-segment offset.
func (v *view) at(id uint32) (*segment, int) {
	g := int(id)
	if si := g / v.segSize; si < len(v.segs) {
		return v.segs[si], g % v.segSize
	}
	return v.open, g - len(v.segs)*v.segSize
}

func (v *view) dictName(id uint16) string {
	if int(id) < len(v.dict) {
		return v.dict[id]
	}
	return ""
}

// postingsFor fetches an account's posting list, clamped to the rows
// this view covers. The list array itself is append-only between
// truncations and truncations clone, so reading it outside ix.mu after
// the clamp is safe.
func (v *view) postingsFor(acct types.Address) []uint32 {
	v.ix.mu.RLock()
	list := v.ix.postings[acct]
	v.ix.mu.RUnlock()
	end := sort.Search(len(list), func(i int) bool { return list[i] >= uint32(v.rows) })
	return list[:end:end]
}

func (v *view) rowFrom(s *segment, i int) Row {
	return Row{
		Height:   s.height[i],
		Time:     s.time[i],
		From:     s.from[i],
		To:       s.to[i],
		Value:    s.value[i],
		Contract: v.dictName(s.contract[i]),
		Method:   v.dictName(s.method[i]),
		OK:       s.ok[i] == 1,
	}
}
