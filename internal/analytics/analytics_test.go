package analytics

import (
	"reflect"
	"testing"

	"blockbench/internal/kvstore"
	"blockbench/internal/types"
)

func addr(b byte) types.Address {
	var a types.Address
	a[0] = b
	a[19] = 1 // never the zero address
	return a
}

func transfer(from, to byte, value uint64) *types.Transaction {
	return &types.Transaction{From: addr(from), To: addr(to), Value: value}
}

// fakeSource is an in-memory BlockSource: blocks[i] is height i+1.
type fakeSource struct {
	blocks []*types.Block
	rcpts  [][]*types.Receipt
}

func (f *fakeSource) Height() uint64 { return uint64(len(f.blocks)) }

func (f *fakeSource) GetBlock(n uint64) (*types.Block, bool) {
	if n < 1 || n > uint64(len(f.blocks)) {
		return nil, false
	}
	return f.blocks[n-1], true
}

func (f *fakeSource) Receipts(n uint64) []*types.Receipt {
	if n < 1 || n > uint64(len(f.rcpts)) {
		return nil
	}
	return f.rcpts[n-1]
}

// add appends one block of transactions, all with receipt ok.
func (f *fakeSource) add(txs ...*types.Transaction) {
	n := uint64(len(f.blocks) + 1)
	rs := make([]*types.Receipt, len(txs))
	for i := range txs {
		rs[i] = &types.Receipt{OK: true}
	}
	f.blocks = append(f.blocks, &types.Block{
		Header: types.Header{Number: n, Time: int64(n) * 1000},
		Txs:    txs,
	})
	f.rcpts = append(f.rcpts, rs)
}

// chainSource builds blocks*txPerBlock deterministic transfers among 8
// accounts.
func chainSource(blocks, txPerBlock int) *fakeSource {
	src := &fakeSource{}
	for b := 0; b < blocks; b++ {
		txs := make([]*types.Transaction, txPerBlock)
		for t := 0; t < txPerBlock; t++ {
			i := b*txPerBlock + t
			txs[t] = transfer(byte(i%8), byte((i+1)%8), uint64(1+i%97))
		}
		src.add(txs...)
	}
	return src
}

func drainHeights(t *testing.T, it Iterator[Row]) []uint64 {
	t.Helper()
	var out []uint64
	for _, r := range Drain(it) {
		out = append(out, r.Height)
	}
	return out
}

func TestScanRangeAndZoneSkips(t *testing.T) {
	src := chainSource(100, 3) // 300 rows
	ix := NewIndexer(nil, Options{SegmentSize: 32})
	if err := ix.CatchUp(src); err != nil {
		t.Fatal(err)
	}
	if got := ix.Rows(); got != 300 {
		t.Fatalf("rows = %d, want 300", got)
	}
	if got := ix.Last(); got != 100 {
		t.Fatalf("last = %d, want 100", got)
	}

	heights := drainHeights(t, ix.Scan(40, 43))
	want := []uint64{40, 40, 40, 41, 41, 41, 42, 42, 42}
	if !reflect.DeepEqual(heights, want) {
		t.Fatalf("scan [40,43) heights = %v, want %v", heights, want)
	}

	// A range deep inside the chain must skip the leading sealed
	// segments via their zone maps.
	before := ix.zoneSkips.Value()
	if got := len(Drain(ix.Scan(90, 95))); got != 15 {
		t.Fatalf("scan [90,95) rows = %d, want 15", got)
	}
	if ix.zoneSkips.Value() <= before {
		t.Fatalf("zone skips did not grow on a range-restricted scan (%d -> %d)",
			before, ix.zoneSkips.Value())
	}

	// Full scan covers everything in order.
	all := drainHeights(t, ix.Scan(0, 0xffffffff))
	if len(all) != 300 || all[0] != 1 || all[299] != 100 {
		t.Fatalf("full scan: %d rows, first %d, last %d", len(all), all[0], all[299])
	}
}

func TestAccountScanPostings(t *testing.T) {
	src := &fakeSource{}
	src.add(transfer(1, 2, 10))
	src.add(transfer(3, 4, 20))
	src.add(transfer(1, 3, 30), transfer(2, 1, 40))
	src.add(transfer(4, 2, 50))
	ix := NewIndexer(nil, Options{SegmentSize: 2})
	if err := ix.CatchUp(src); err != nil {
		t.Fatal(err)
	}

	rows := Drain(ix.AccountScan(addr(1), 1, 100))
	if len(rows) != 3 {
		t.Fatalf("account 1 rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.From != addr(1) && r.To != addr(1) {
			t.Fatalf("row at height %d does not touch account 1", r.Height)
		}
	}
	if hs := []uint64{rows[0].Height, rows[1].Height, rows[2].Height}; !reflect.DeepEqual(hs, []uint64{1, 3, 3}) {
		t.Fatalf("account 1 heights = %v, want [1 3 3]", hs)
	}
	if got := drainHeights(t, ix.AccountScan(addr(1), 2, 4)); !reflect.DeepEqual(got, []uint64{3, 3}) {
		t.Fatalf("account 1 [2,4) heights = %v, want [3 3]", got)
	}
	if got := Drain(ix.AccountScan(addr(9), 1, 100)); len(got) != 0 {
		t.Fatalf("unknown account returned %d rows", len(got))
	}
	if ix.postingsHits.Value() == 0 {
		t.Fatal("postings hits counter did not move")
	}
}

func TestReorgTruncateConverges(t *testing.T) {
	// Build two sources sharing a 6-block prefix, diverging after.
	shared := chainSource(6, 3)
	forkA := &fakeSource{blocks: append([]*types.Block{}, shared.blocks...), rcpts: append([][]*types.Receipt{}, shared.rcpts...)}
	forkA.add(transfer(1, 2, 111))
	forkA.add(transfer(2, 3, 222))
	forkB := &fakeSource{blocks: append([]*types.Block{}, shared.blocks...), rcpts: append([][]*types.Receipt{}, shared.rcpts...)}
	forkB.add(transfer(4, 5, 333), transfer(5, 6, 444))

	ix := NewIndexer(nil, Options{SegmentSize: 4})
	if err := ix.CatchUp(forkA); err != nil {
		t.Fatal(err)
	}
	// Reorg: the ledger redelivers the new branch's blocks through
	// OnCommit, replacing previously indexed heights from the
	// divergence point (here height 7; fork A's height 8 must go too).
	ix.OnCommit(forkB.blocks[6:], forkB.rcpts[6:])

	fresh := NewIndexer(nil, Options{SegmentSize: 4})
	if err := fresh.CatchUp(forkB); err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{Op: OpSum, From: 1, To: 100},
		{Op: OpMaxDelta, Account: addr(5), From: 1, To: 100},
		{Op: OpTopK, Account: addr(5), From: 1, To: 100, K: 10},
	} {
		got, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got.Rows, want.Rows = 0, 0 // scan cost may differ across layouts
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s after reorg: got %+v, want %+v", q.Op, got, want)
		}
	}
	if ix.Rows() != fresh.Rows() || ix.Last() != fresh.Last() {
		t.Fatalf("reorged index rows/last = %d/%d, fresh = %d/%d",
			ix.Rows(), ix.Last(), fresh.Rows(), fresh.Last())
	}
}

func TestPersistLoadCatchUp(t *testing.T) {
	// SegmentSize 7 with 3 tx/block guarantees seal boundaries cut
	// mid-block, exercising the partial-tail rewind in Load.
	src := chainSource(50, 3)
	store := kvstore.NewMem()
	ix := NewIndexer(store, Options{SegmentSize: 7})
	if err := ix.CatchUp(src); err != nil {
		t.Fatal(err)
	}

	restored := NewIndexer(store, Options{SegmentSize: 7})
	if err := restored.Load(); err != nil {
		t.Fatal(err)
	}
	if restored.Last() >= ix.Last() && restored.Rows() == ix.Rows() {
		t.Fatalf("load restored the full index; expected the open tail to be missing")
	}
	if err := restored.CatchUp(src); err != nil {
		t.Fatal(err)
	}
	if restored.Rows() != ix.Rows() || restored.Last() != ix.Last() {
		t.Fatalf("restored rows/last = %d/%d, want %d/%d",
			restored.Rows(), restored.Last(), ix.Rows(), ix.Last())
	}
	for _, q := range []Query{
		{Op: OpSum, From: 1, To: 51},
		{Op: OpSum, From: 20, To: 30},
		{Op: OpMaxDelta, Account: addr(3), From: 1, To: 51},
		{Op: OpMaxVersion, Account: addr(3), From: 1, To: 51},
		{Op: OpTopK, Account: addr(2), From: 5, To: 45},
		{Op: OpCommon, Account: addr(1), Account2: addr(2), From: 1, To: 51, K: 20},
	} {
		got, err := restored.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: restored %+v, original %+v", q.Op, got, want)
		}
	}

	// Loading into a mismatched geometry must fail loudly.
	if err := NewIndexer(store, Options{SegmentSize: 8}).Load(); err == nil {
		t.Fatal("load with mismatched segment size succeeded")
	}
}

func TestQuerySemantics(t *testing.T) {
	src := &fakeSource{}
	src.add(transfer(1, 2, 100))                    // h1
	src.add(transfer(2, 1, 30), transfer(1, 3, 20)) // h2: net for 1 = +10
	src.add(transfer(3, 1, 500))                    // h3
	// h4: a failed transfer — counted by sum (Q1 counts all txs), but
	// invisible to balance-delta and counterparty queries.
	failed := transfer(1, 2, 999)
	src.add(failed)
	src.rcpts[3][0].OK = false

	ix := NewIndexer(nil, Options{})
	if err := ix.CatchUp(src); err != nil {
		t.Fatal(err)
	}

	sum, err := ix.Query(Query{Op: OpSum, From: 1, To: 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(100 + 30 + 20 + 500 + 999); sum.Value != want {
		t.Fatalf("sum = %d, want %d", sum.Value, want)
	}
	if sum.Height != 4 || sum.Rows != 5 {
		t.Fatalf("sum height/rows = %d/%d, want 4/5", sum.Height, sum.Rows)
	}

	// maxdelta over [1,5): deltas at heights 2..4 — |+10|, |+500|, 0.
	md, err := ix.Query(Query{Op: OpMaxDelta, Account: addr(1), From: 1, To: 5})
	if err != nil {
		t.Fatal(err)
	}
	if md.Value != 500 {
		t.Fatalf("maxdelta = %d, want 500", md.Value)
	}
	// Restricting to [1,3) sees only the height-2 net of +10.
	md, err = ix.Query(Query{Op: OpMaxDelta, Account: addr(1), From: 1, To: 3})
	if err != nil {
		t.Fatal(err)
	}
	if md.Value != 10 {
		t.Fatalf("maxdelta [1,3) = %d, want 10", md.Value)
	}

	top, err := ix.Query(Query{Op: OpTopK, Account: addr(1), From: 1, To: 5, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Committed counterparties of 1: 2 (h1, h2), 3 (h2, h3). Tie on
	// count=2 breaks by sum: 3 carries 520, 2 carries 130.
	if len(top.Top) != 2 || top.Top[0].Account != addr(3) || top.Top[0].Sum != 520 ||
		top.Top[1].Account != addr(2) || top.Top[1].Sum != 130 {
		t.Fatalf("topk = %+v", top.Top)
	}

	common, err := ix.Query(Query{Op: OpCommon, Account: addr(2), Account2: addr(3), From: 1, To: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Accounts 2 and 3 share exactly one counterparty: account 1.
	if len(common.Top) != 1 || common.Top[0].Account != addr(1) {
		t.Fatalf("common = %+v", common.Top)
	}

	if _, err := ix.Query(Query{Op: "bogus"}); err == nil {
		t.Fatal("unknown op succeeded")
	}
	empty, err := ix.Query(Query{Op: OpSum, From: 7, To: 7})
	if err != nil || empty.Value != 0 || empty.Rows != 0 {
		t.Fatalf("empty range: %+v, err %v", empty, err)
	}
}

func TestMaxVersionMatchesVersionDiffSemantics(t *testing.T) {
	// versionkv rows: prealloc then three updates touching account 1.
	acct, other := addr(1), addr(2)
	vkv := func(method string, args ...[]byte) *types.Transaction {
		return &types.Transaction{From: addr(9), Contract: "versionkv", Method: method, Args: args}
	}
	src := &fakeSource{}
	src.add(vkv("prealloc", acct.Bytes(), types.U64Bytes(1<<20)))               // h1: v1
	src.add(vkv("sendValue", acct.Bytes(), other.Bytes(), types.U64Bytes(50)))  // h2: v2, diff 50
	src.add(vkv("sendValue", other.Bytes(), acct.Bytes(), types.U64Bytes(700))) // h3: v3, diff 700
	src.add(vkv("sendValue", acct.Bytes(), other.Bytes(), types.U64Bytes(20)))  // h4: v4, diff 20
	ix := NewIndexer(nil, Options{})
	if err := ix.CatchUp(src); err != nil {
		t.Fatal(err)
	}

	// Full range: versions v1..v4 in window; the oldest (prealloc) only
	// anchors the first diff, so the answer is max(50, 700, 20).
	res, err := ix.Query(Query{Op: OpMaxVersion, Account: acct, From: 1, To: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 700 {
		t.Fatalf("maxversion full = %d, want 700", res.Value)
	}
	// Window [3,5): versions v3, v4 — v3 anchors, answer is v4's diff.
	res, err = ix.Query(Query{Op: OpMaxVersion, Account: acct, From: 3, To: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 20 {
		t.Fatalf("maxversion [3,5) = %d, want 20", res.Value)
	}
	// A single in-window version yields no diff at all.
	res, err = ix.Query(Query{Op: OpMaxVersion, Account: acct, From: 3, To: 4})
	if err != nil || res.Value != 0 {
		t.Fatalf("maxversion [3,4) = %d (err %v), want 0", res.Value, err)
	}
}

func TestOperators(t *testing.T) {
	evens := Filter(SliceIter([]int{1, 2, 3, 4, 5, 6}), func(v int) bool { return v%2 == 0 })
	if got := Reduce(evens, 0, func(a, v int) int { return a + v }); got != 12 {
		t.Fatalf("filter+reduce = %d, want 12", got)
	}

	type pair struct{ k, v int }
	left := []pair{{1, 10}, {2, 20}, {2, 25}, {3, 30}}
	right := []pair{{2, 200}, {3, 300}, {4, 400}}
	joined := Drain(HashJoin(
		SliceIter(left), func(p pair) int { return p.k },
		SliceIter(right), func(p pair) int { return p.k },
		func(l, r pair) int { return l.v + r.v },
	))
	// Key 2 fans out over both build rows; key 4 has no build match.
	want := []int{220, 225, 330}
	if !reflect.DeepEqual(joined, want) {
		t.Fatalf("hash join = %v, want %v", joined, want)
	}

	stats := []AccountStat{
		{Account: addr(1), Count: 3, Sum: 10},
		{Account: addr(2), Count: 5, Sum: 1},
		{Account: addr(3), Count: 3, Sum: 90},
	}
	top := TopAccounts(stats, 2)
	if len(top) != 2 || top[0].Account != addr(2) || top[1].Account != addr(3) {
		t.Fatalf("top accounts = %+v", top)
	}
}

func TestLargeBatchesStreamBounded(t *testing.T) {
	// More rows than one batch: the scan must deliver all of them in
	// several batches, none exceeding the batch cap.
	src := chainSource(400, 3) // 1200 rows
	ix := NewIndexer(nil, Options{})
	if err := ix.CatchUp(src); err != nil {
		t.Fatal(err)
	}
	it := ix.Scan(1, 401)
	total, batches := 0, 0
	for {
		b := it.Next()
		if b == nil {
			break
		}
		if len(b) > batchRows {
			t.Fatalf("batch of %d exceeds cap %d", len(b), batchRows)
		}
		total += len(b)
		batches++
	}
	if total != 1200 || batches < 1200/batchRows {
		t.Fatalf("streamed %d rows in %d batches", total, batches)
	}
}

func TestCounterProviderKeys(t *testing.T) {
	ix := NewIndexer(nil, Options{})
	got := ix.Counters()
	for _, k := range []string{
		"analytics.segments", "analytics.rows", "analytics.zone_skips",
		"analytics.postings_hits", "analytics.queries", "analytics.query_rows",
	} {
		if _, ok := got[k]; !ok {
			t.Fatalf("counter %q missing (have %v)", k, got)
		}
	}
}

func TestApplyGapFails(t *testing.T) {
	ix := NewIndexer(nil, Options{})
	b := &types.Block{Header: types.Header{Number: 5}}
	if err := ix.Apply(b, nil); err == nil {
		t.Fatal("applying block 5 onto an empty index succeeded")
	}
}

func TestTimeBoundsPruneSegments(t *testing.T) {
	src := chainSource(100, 3) // block n carries Time n*1000
	ix := NewIndexer(nil, Options{SegmentSize: 32})
	if err := ix.CatchUp(src); err != nil {
		t.Fatal(err)
	}

	// The time window [90000, 95000) covers exactly blocks 90..94, so a
	// sum bounded by time must equal the same sum bounded by height.
	byHeight, err := ix.Query(Query{Op: OpSum, From: 90, To: 95})
	if err != nil {
		t.Fatal(err)
	}
	before := ix.zoneSkips.Value()
	byTime, err := ix.Query(Query{Op: OpSum, Since: 90_000, Until: 95_000})
	if err != nil {
		t.Fatal(err)
	}
	if byTime.Value != byHeight.Value || byTime.Value == 0 {
		t.Fatalf("time-bounded sum = %d, height-bounded = %d", byTime.Value, byHeight.Value)
	}
	if byTime.Rows != 15 {
		t.Fatalf("time-bounded scan pulled %d rows, want 15", byTime.Rows)
	}
	// The timestamp zone maps must have pruned the sealed segments
	// outside the window without reading a row.
	if ix.zoneSkips.Value() <= before {
		t.Fatalf("zone skips did not grow on a time-restricted scan (%d -> %d)",
			before, ix.zoneSkips.Value())
	}

	// Half-open semantics: Until is exclusive, Since inclusive.
	only90, err := ix.Query(Query{Op: OpSum, Since: 90_000, Until: 90_001})
	if err != nil {
		t.Fatal(err)
	}
	if only90.Rows != 3 {
		t.Fatalf("window [90000,90001) pulled %d rows, want 3", only90.Rows)
	}

	// Time bounds compose with posting-list scans (account-driven ops).
	topAll, err := ix.Query(Query{Op: OpTopK, Account: addr(1), K: 8})
	if err != nil {
		t.Fatal(err)
	}
	topWin, err := ix.Query(Query{Op: OpTopK, Account: addr(1), K: 8, Since: 90_000, Until: 95_000})
	if err != nil {
		t.Fatal(err)
	}
	if topWin.Rows == 0 || topWin.Rows >= topAll.Rows {
		t.Fatalf("windowed topk rows = %d, unbounded = %d; want 0 < windowed < unbounded",
			topWin.Rows, topAll.Rows)
	}

	// An empty window prunes everything and reads nothing.
	empty, err := ix.Query(Query{Op: OpSum, Since: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Value != 0 || empty.Rows != 0 {
		t.Fatalf("out-of-range window returned value=%d rows=%d", empty.Value, empty.Rows)
	}
}
