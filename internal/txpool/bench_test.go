// Contention benchmarks for the sharded pool against the pre-sharding
// single-mutex implementation (kept below as mutexPool). Each benchmark
// iteration runs a fixed node-shaped workload — N adder goroutines on
// the ingestion path racing one block producer's Batch+MarkIncluded
// cycle over a deep standing pool — and reports transactions per
// second, so even the CI smoke run (-benchtime 1x) records comparable
// throughput numbers in BENCH_ci.json.
package txpool

import (
	"encoding/binary"
	"runtime"
	"sync"
	"testing"

	"blockbench/internal/types"
)

// benchPool is the surface both implementations share.
type benchPool interface {
	Add(*types.Transaction) bool
	Batch(int, uint64) []*types.Transaction
	MarkIncluded([]*types.Transaction)
	Len() int
}

const (
	benchTxsPerG  = 4096  // transactions each adder goroutine admits
	benchBacklog  = 32768 // standing pending transactions at start
	benchBlockTxs = 256   // batch size of the block-producer cycle
)

func benchTx(id uint64) *types.Transaction {
	var arg [8]byte
	binary.BigEndian.PutUint64(arg[:], id)
	tx := &types.Transaction{Nonce: id, Contract: "bench", Method: "op",
		Args: [][]byte{arg[:]}, GasLimit: 100}
	tx.Hash() // pin the cached hash outside the timed section
	return tx
}

func benchTxSets(goroutines int) ([][]*types.Transaction, []*types.Transaction) {
	sets := make([][]*types.Transaction, goroutines)
	id := uint64(1)
	for g := range sets {
		sets[g] = make([]*types.Transaction, benchTxsPerG)
		for i := range sets[g] {
			sets[g][i] = benchTx(id)
			id++
		}
	}
	backlog := make([]*types.Transaction, benchBacklog)
	for i := range backlog {
		backlog[i] = benchTx(1<<32 + uint64(i))
	}
	return sets, backlog
}

// runContention drives one iteration of the node-shaped workload —
// len(sets) adder goroutines racing the ingestion path while one block
// producer cycles Batch+MarkIncluded until the pool drains, all over a
// deep standing backlog — and returns the number of transactions that
// passed through the pool.
func runContention(p benchPool, sets [][]*types.Transaction, backlog []*types.Transaction) int {
	for _, tx := range backlog {
		p.Add(tx)
	}
	var wg sync.WaitGroup
	addersDone := make(chan struct{})
	for _, txs := range sets {
		wg.Add(1)
		go func(txs []*types.Transaction) {
			defer wg.Done()
			for _, tx := range txs {
				p.Add(tx)
			}
		}(txs)
	}
	go func() {
		wg.Wait()
		close(addersDone)
	}()
	done := false
	for {
		b := p.Batch(benchBlockTxs, 0)
		if len(b) > 0 {
			p.MarkIncluded(b)
		} else if done {
			break
		} else {
			runtime.Gosched()
		}
		select {
		case <-addersDone:
			done = true
		default:
		}
	}
	return len(backlog) + len(sets)*benchTxsPerG
}

func benchContention(b *testing.B, goroutines int, newPool func() benchPool) {
	sets, backlog := benchTxSets(goroutines)
	b.ResetTimer()
	txs := 0
	for i := 0; i < b.N; i++ {
		txs += runContention(newPool(), sets, backlog)
	}
	b.ReportMetric(float64(txs)/b.Elapsed().Seconds(), "tx/s")
}

func BenchmarkPoolContentionSharded8(b *testing.B) {
	benchContention(b, 8, func() benchPool { return New(0) })
}

func BenchmarkPoolContentionSharded16(b *testing.B) {
	benchContention(b, 16, func() benchPool { return New(0) })
}

func BenchmarkPoolContentionMutex8(b *testing.B) {
	benchContention(b, 8, func() benchPool { return newMutexPool(0) })
}

func BenchmarkPoolContentionMutex16(b *testing.B) {
	benchContention(b, 16, func() benchPool { return newMutexPool(0) })
}

// TestShardedMatchesMutexUnderContention cross-checks the two
// implementations: after the same concurrent workload both must end
// empty-or-consistent, with every admitted transaction either included
// or still pending exactly once.
func TestShardedMatchesMutexUnderContention(t *testing.T) {
	sets, backlog := benchTxSets(4)
	for _, p := range []benchPool{New(0), newMutexPool(0)} {
		runContention(p, sets, backlog)
		seen := make(map[types.Hash]int)
		for _, tx := range p.Batch(0, 0) {
			seen[tx.Hash()]++
			if seen[tx.Hash()] > 1 {
				t.Fatalf("%T: duplicate pending transaction", p)
			}
		}
		if p.Len() != len(seen) {
			t.Fatalf("%T: Len=%d but Batch returned %d", p, p.Len(), len(seen))
		}
	}
}

// mutexPool is the pre-sharding implementation: one mutex, one FIFO
// slice, O(pool) MarkIncluded. It is the baseline the contention
// benchmarks compare against.
type mutexPool struct {
	mu      sync.Mutex
	pending []*types.Transaction
	index   map[types.Hash]int
	limit   int
}

func newMutexPool(limit int) *mutexPool {
	return &mutexPool{index: make(map[types.Hash]int), limit: limit}
}

func (p *mutexPool) Add(tx *types.Transaction) bool {
	h := tx.Hash()
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, known := p.index[h]; known {
		return false
	}
	if p.limit > 0 && len(p.pending) >= p.limit {
		return false
	}
	p.index[h] = len(p.pending)
	p.pending = append(p.pending, tx)
	return true
}

func (p *mutexPool) Batch(maxTxs int, gasLimit uint64) []*types.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*types.Transaction
	var gas uint64
	for _, tx := range p.pending {
		if maxTxs > 0 && len(out) >= maxTxs {
			break
		}
		if gasLimit > 0 && gas+tx.GasLimit > gasLimit {
			break
		}
		gas += tx.GasLimit
		out = append(out, tx)
	}
	return out
}

func (p *mutexPool) MarkIncluded(txs []*types.Transaction) {
	p.mu.Lock()
	defer p.mu.Unlock()
	drop := make(map[types.Hash]bool, len(txs))
	for _, tx := range txs {
		h := tx.Hash()
		drop[h] = true
		p.index[h] = -1
	}
	kept := p.pending[:0]
	for _, tx := range p.pending {
		if !drop[tx.Hash()] {
			p.index[tx.Hash()] = len(kept)
			kept = append(kept, tx)
		}
	}
	p.pending = kept
}

func (p *mutexPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}
