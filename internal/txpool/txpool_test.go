package txpool

import (
	"testing"

	"blockbench/internal/types"
)

func tx(nonce uint64, gas uint64) *types.Transaction {
	return &types.Transaction{Nonce: nonce, GasLimit: gas}
}

func TestAddAndDuplicate(t *testing.T) {
	p := New(0)
	a := tx(1, 100)
	if !p.Add(a) {
		t.Fatal("first add refused")
	}
	if p.Add(a) {
		t.Fatal("duplicate accepted")
	}
	if !p.Known(a.Hash()) {
		t.Fatal("Known = false")
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestLimit(t *testing.T) {
	p := New(2)
	p.Add(tx(1, 1))
	p.Add(tx(2, 1))
	if p.Add(tx(3, 1)) {
		t.Fatal("pool over limit")
	}
}

func TestBatchRespectsCountAndGas(t *testing.T) {
	p := New(0)
	for i := uint64(1); i <= 10; i++ {
		p.Add(tx(i, 100))
	}
	if got := len(p.Batch(3, 0)); got != 3 {
		t.Fatalf("count batch = %d", got)
	}
	if got := len(p.Batch(0, 250)); got != 2 {
		t.Fatalf("gas batch = %d", got)
	}
	if got := len(p.Batch(0, 0)); got != 10 {
		t.Fatalf("unbounded batch = %d", got)
	}
	// Batch does not remove.
	if p.Len() != 10 {
		t.Fatal("batch consumed transactions")
	}
}

func TestMarkIncludedKeepsDedup(t *testing.T) {
	p := New(0)
	a, b := tx(1, 1), tx(2, 1)
	p.Add(a)
	p.Add(b)
	p.MarkIncluded([]*types.Transaction{a})
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Add(a) {
		t.Fatal("included tx re-admitted")
	}
	batch := p.Batch(0, 0)
	if len(batch) != 1 || batch[0].Hash() != b.Hash() {
		t.Fatal("wrong survivor")
	}
}

func TestReinjectAfterReorg(t *testing.T) {
	p := New(0)
	a := tx(1, 1)
	p.Add(a)
	p.MarkIncluded([]*types.Transaction{a})
	if p.Len() != 0 {
		t.Fatal("not removed")
	}
	p.Reinject([]*types.Transaction{a})
	if p.Len() != 1 {
		t.Fatal("reinject failed")
	}
	// Reinjecting a still-pending tx must not duplicate it.
	p.Reinject([]*types.Transaction{a})
	if p.Len() != 1 {
		t.Fatalf("duplicated: len = %d", p.Len())
	}
	// It can be included again afterwards.
	p.MarkIncluded([]*types.Transaction{a})
	if p.Len() != 0 {
		t.Fatal("second include failed")
	}
}

func TestFIFOOrder(t *testing.T) {
	p := New(0)
	var hs []types.Hash
	for i := uint64(1); i <= 5; i++ {
		x := tx(i, 1)
		hs = append(hs, x.Hash())
		p.Add(x)
	}
	batch := p.Batch(0, 0)
	for i, x := range batch {
		if x.Hash() != hs[i] {
			t.Fatal("batch not FIFO")
		}
	}
}
