package txpool

import (
	"sync"
	"testing"

	"blockbench/internal/types"
)

func tx(nonce uint64, gas uint64) *types.Transaction {
	return &types.Transaction{Nonce: nonce, GasLimit: gas}
}

func TestAddAndDuplicate(t *testing.T) {
	p := New(0)
	a := tx(1, 100)
	if !p.Add(a) {
		t.Fatal("first add refused")
	}
	if p.Add(a) {
		t.Fatal("duplicate accepted")
	}
	if !p.Known(a.Hash()) {
		t.Fatal("Known = false")
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestLimit(t *testing.T) {
	p := New(2)
	p.Add(tx(1, 1))
	p.Add(tx(2, 1))
	if p.Add(tx(3, 1)) {
		t.Fatal("pool over limit")
	}
}

func TestBatchRespectsCountAndGas(t *testing.T) {
	p := New(0)
	for i := uint64(1); i <= 10; i++ {
		p.Add(tx(i, 100))
	}
	if got := len(p.Batch(3, 0)); got != 3 {
		t.Fatalf("count batch = %d", got)
	}
	if got := len(p.Batch(0, 250)); got != 2 {
		t.Fatalf("gas batch = %d", got)
	}
	if got := len(p.Batch(0, 0)); got != 10 {
		t.Fatalf("unbounded batch = %d", got)
	}
	// Batch does not remove.
	if p.Len() != 10 {
		t.Fatal("batch consumed transactions")
	}
}

func TestMarkIncludedKeepsDedup(t *testing.T) {
	p := New(0)
	a, b := tx(1, 1), tx(2, 1)
	p.Add(a)
	p.Add(b)
	p.MarkIncluded([]*types.Transaction{a})
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Add(a) {
		t.Fatal("included tx re-admitted")
	}
	batch := p.Batch(0, 0)
	if len(batch) != 1 || batch[0].Hash() != b.Hash() {
		t.Fatal("wrong survivor")
	}
}

func TestReinjectAfterReorg(t *testing.T) {
	p := New(0)
	a := tx(1, 1)
	p.Add(a)
	p.MarkIncluded([]*types.Transaction{a})
	if p.Len() != 0 {
		t.Fatal("not removed")
	}
	p.Reinject([]*types.Transaction{a})
	if p.Len() != 1 {
		t.Fatal("reinject failed")
	}
	// Reinjecting a still-pending tx must not duplicate it.
	p.Reinject([]*types.Transaction{a})
	if p.Len() != 1 {
		t.Fatalf("duplicated: len = %d", p.Len())
	}
	// It can be included again afterwards.
	p.MarkIncluded([]*types.Transaction{a})
	if p.Len() != 0 {
		t.Fatal("second include failed")
	}
}

// TestFIFOAcrossIncludes checks that arrival order survives interleaved
// inclusion: tombstoned entries must never resurface and the merge must
// keep the survivors in admission order.
func TestFIFOAcrossIncludes(t *testing.T) {
	p := New(0)
	var txs []*types.Transaction
	for i := uint64(1); i <= 64; i++ {
		x := tx(i, 1)
		txs = append(txs, x)
		p.Add(x)
	}
	// Include every other transaction.
	var include []*types.Transaction
	for i := 0; i < len(txs); i += 2 {
		include = append(include, txs[i])
	}
	p.MarkIncluded(include)
	batch := p.Batch(0, 0)
	if len(batch) != 32 {
		t.Fatalf("batch = %d, want 32", len(batch))
	}
	for i, x := range batch {
		if x.Hash() != txs[2*i+1].Hash() {
			t.Fatalf("batch[%d] out of order", i)
		}
	}
}

// TestReinjectAfterTombstone covers the tombstone/reinject interplay: a
// reinjected transaction must appear exactly once even though its dead
// entry may still be awaiting compaction.
func TestReinjectAfterTombstone(t *testing.T) {
	p := New(0)
	var txs []*types.Transaction
	for i := uint64(1); i <= 100; i++ {
		x := tx(i, 1)
		txs = append(txs, x)
		p.Add(x)
	}
	p.MarkIncluded(txs[:50])
	p.Reinject(txs[:50])
	if p.Len() != 100 {
		t.Fatalf("len = %d, want 100", p.Len())
	}
	seen := make(map[types.Hash]bool)
	batch := p.Batch(0, 0)
	if len(batch) != 100 {
		t.Fatalf("batch = %d, want 100", len(batch))
	}
	for _, x := range batch {
		if seen[x.Hash()] {
			t.Fatal("duplicate after reinject")
		}
		seen[x.Hash()] = true
	}
}

// TestConcurrentAddBatchInclude exercises the sharded paths under the
// race detector: parallel adders, a batch/include loop and Len/Known
// readers all run against one pool.
func TestConcurrentAddBatchInclude(t *testing.T) {
	p := New(0)
	const goroutines, each = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				x := tx(uint64(g)<<32|uint64(i+1), 1)
				if !p.Add(x) {
					t.Errorf("fresh tx refused")
					return
				}
				if i%50 == 0 {
					if b := p.Batch(32, 0); len(b) > 0 {
						p.MarkIncluded(b)
					}
				}
				p.Known(x.Hash())
				p.Len()
			}
		}(g)
	}
	wg.Wait()
	// Drain completely; every admitted tx is included exactly once.
	total := p.Len()
	for {
		b := p.Batch(100, 0)
		if len(b) == 0 {
			break
		}
		p.MarkIncluded(b)
		total -= len(b)
	}
	if total != 0 || p.Len() != 0 {
		t.Fatalf("pool did not drain: remainder=%d len=%d", total, p.Len())
	}
}

// TestSteadyStateMemoryBounded guards the compaction trigger: in FIFO
// steady state (adds balanced by includes over a standing pool) the
// shards must reclaim the consumed prefix instead of retaining every
// transaction ever admitted.
func TestSteadyStateMemoryBounded(t *testing.T) {
	p := New(0)
	id := uint64(1)
	for i := 0; i < 1000; i++ {
		p.Add(tx(id, 1))
		id++
	}
	for round := 0; round < 200; round++ {
		for i := 0; i < 256; i++ {
			p.Add(tx(id, 1))
			id++
		}
		p.MarkIncluded(p.Batch(256, 0))
	}
	retained := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		retained += len(s.pending)
		s.mu.Unlock()
	}
	if limit := 4*p.Len() + shardCount*64; retained > limit {
		t.Fatalf("shards retain %d entries for %d live transactions (limit %d)",
			retained, p.Len(), limit)
	}
}

func TestFIFOOrder(t *testing.T) {
	p := New(0)
	var hs []types.Hash
	for i := uint64(1); i <= 5; i++ {
		x := tx(i, 1)
		hs = append(hs, x.Hash())
		p.Add(x)
	}
	batch := p.Batch(0, 0)
	for i, x := range batch {
		if x.Hash() != hs[i] {
			t.Fatal("batch not FIFO")
		}
	}
}

func TestBatchAffinityGroupsAndKeepsFIFO(t *testing.T) {
	p := New(0)
	var all []*types.Transaction
	for i := uint64(0); i < 30; i++ {
		x := tx(i, 1)
		p.Add(x)
		all = append(all, x)
	}
	classOf := func(x *types.Transaction) int { return int(x.Nonce % 3) }
	groups := p.BatchAffinity(0, 0, 3, classOf)
	if len(groups) != 3 {
		t.Fatalf("got %d classes", len(groups))
	}
	total := 0
	for c, txs := range groups {
		var prev uint64
		for i, x := range txs {
			if classOf(x) != c {
				t.Fatalf("class %d holds tx of class %d", c, classOf(x))
			}
			if i > 0 && x.Nonce < prev {
				t.Fatalf("class %d out of FIFO order: %d after %d", c, x.Nonce, prev)
			}
			prev = x.Nonce
			total++
		}
		if len(txs) != 10 {
			t.Fatalf("class %d has %d txs", c, len(txs))
		}
	}
	if total != 30 {
		t.Fatalf("affinity batch covered %d of 30", total)
	}
	// Like Batch, transactions stay pending until MarkIncluded drains
	// them; the next affinity batch is then empty.
	if p.Len() != 30 {
		t.Fatalf("len after batch = %d", p.Len())
	}
	p.MarkIncluded(all)
	for _, txs := range p.BatchAffinity(0, 0, 3, classOf) {
		if len(txs) != 0 {
			t.Fatalf("drained pool still batches %d txs", len(txs))
		}
	}
}

func TestNotifySignalsAdmissions(t *testing.T) {
	p := New(0)
	ch := p.Notify()
	select {
	case <-ch:
		t.Fatal("signal before any admission")
	default:
	}
	a := tx(1, 1)
	p.Add(a)
	select {
	case <-ch:
	default:
		t.Fatal("Add did not signal")
	}
	// Coalesced: many admissions leave at most one pending signal.
	for i := uint64(2); i < 10; i++ {
		p.Add(tx(i, 1))
	}
	<-ch
	select {
	case <-ch:
		t.Fatal("signal not coalesced")
	default:
	}
	// Duplicates do not signal.
	p.Add(a)
	select {
	case <-ch:
		t.Fatal("duplicate admission signalled")
	default:
	}
	// Reinject signals again.
	p.MarkIncluded([]*types.Transaction{a})
	p.Reinject([]*types.Transaction{a})
	select {
	case <-ch:
	default:
		t.Fatal("Reinject did not signal")
	}
}
