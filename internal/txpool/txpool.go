// Package txpool implements the pending-transaction pool each node keeps
// between transaction arrival (client RPC or gossip) and block inclusion.
package txpool

import (
	"sync"

	"blockbench/internal/types"
)

// Pool is a FIFO pending pool with duplicate suppression. Transactions
// seen before (pending or already included) are rejected, which keeps
// gossip loops from amplifying traffic.
type Pool struct {
	mu      sync.Mutex
	pending []*types.Transaction
	index   map[types.Hash]int // position in pending, -1 once included
	limit   int
}

// New creates a pool that holds at most limit pending transactions
// (0 means unbounded).
func New(limit int) *Pool {
	return &Pool{index: make(map[types.Hash]int), limit: limit}
}

// Add inserts tx unless it is known or the pool is full. It reports
// whether the transaction was accepted as new.
func (p *Pool) Add(tx *types.Transaction) bool {
	h := tx.Hash()
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, known := p.index[h]; known {
		return false
	}
	if p.limit > 0 && len(p.pending) >= p.limit {
		return false
	}
	p.index[h] = len(p.pending)
	p.pending = append(p.pending, tx)
	return true
}

// Known reports whether the pool has ever seen tx.
func (p *Pool) Known(h types.Hash) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.index[h]
	return ok
}

// Batch returns up to maxTxs pending transactions whose gas limits sum
// to at most gasLimit (0 disables the gas constraint). Transactions stay
// pending until MarkIncluded.
func (p *Pool) Batch(maxTxs int, gasLimit uint64) []*types.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*types.Transaction
	var gas uint64
	for _, tx := range p.pending {
		if maxTxs > 0 && len(out) >= maxTxs {
			break
		}
		if gasLimit > 0 && gas+tx.GasLimit > gasLimit {
			break
		}
		gas += tx.GasLimit
		out = append(out, tx)
	}
	return out
}

// MarkIncluded removes the given transactions from the pending set while
// remembering their hashes so duplicates are still rejected.
func (p *Pool) MarkIncluded(txs []*types.Transaction) {
	p.mu.Lock()
	defer p.mu.Unlock()
	drop := make(map[types.Hash]bool, len(txs))
	for _, tx := range txs {
		h := tx.Hash()
		drop[h] = true
		p.index[h] = -1
	}
	kept := p.pending[:0]
	for _, tx := range p.pending {
		if !drop[tx.Hash()] {
			p.index[tx.Hash()] = len(kept)
			kept = append(kept, tx)
		}
	}
	p.pending = kept
}

// Reinject returns transactions to the pending set even if they were
// previously marked included — used when a chain reorganization drops
// the blocks that contained them.
func (p *Pool) Reinject(txs []*types.Transaction) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, tx := range txs {
		h := tx.Hash()
		if pos, known := p.index[h]; known && pos >= 0 {
			continue // still pending
		}
		p.index[h] = len(p.pending)
		p.pending = append(p.pending, tx)
	}
}

// Len returns the number of pending transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}
