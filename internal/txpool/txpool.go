// Package txpool implements the pending-transaction pool each node keeps
// between transaction arrival (client RPC or gossip) and block inclusion.
//
// The pool is sharded: transactions hash into one of shardCount
// independently-locked shards, so concurrent Add/MarkIncluded callers
// (client RPC threads, the gossip dispatch thread, the consensus block
// path) contend only when they land on the same shard. A global atomic
// counter keeps Len lock-free, and a monotone sequence number stamped at
// admission lets Batch merge the shard FIFOs back into arrival order.
// Inclusion uses tombstones instead of rewriting the pending slice, so
// MarkIncluded is O(batch) amortized rather than O(pool).
package txpool

import (
	"sync"
	"sync/atomic"

	"blockbench/internal/trace"
	"blockbench/internal/types"
)

// shardCount is the number of independently-locked shards. Power of two
// so the shard index is a mask of the transaction hash.
const shardCount = 16

// entry is one pending transaction with its global admission sequence.
type entry struct {
	tx   *types.Transaction
	hash types.Hash
	seq  uint64
	dead bool // included (tombstoned), awaiting compaction
}

// shard is one lock domain: a FIFO slice plus the duplicate-suppression
// index. index maps a hash to its position in pending, or -1 once the
// transaction has been included (so duplicates are still rejected).
type shard struct {
	mu      sync.Mutex
	pending []entry
	index   map[types.Hash]int
	head    int // first possibly-live position in pending
	dead    int // tombstones at or after head
}

// Pool is a FIFO pending pool with duplicate suppression. Transactions
// seen before (pending or already included) are rejected, which keeps
// gossip loops from amplifying traffic.
type Pool struct {
	shards [shardCount]shard
	seq    atomic.Uint64
	length atomic.Int64
	limit  int
	notify chan struct{}
	tracer *trace.Tracer
}

// New creates a pool that holds at most limit pending transactions
// (0 means unbounded). Under concurrent admission the limit is
// approximate: racing adders can overshoot by at most a few
// transactions, never by more than one per shard.
func New(limit int) *Pool {
	p := &Pool{limit: limit, notify: make(chan struct{}, 1)}
	for i := range p.shards {
		p.shards[i].index = make(map[types.Hash]int)
	}
	return p
}

// SetTracer attaches the cluster's lifecycle tracer; sampled
// transactions are stamped at pool admission (Add) and batch pickup
// (Batch). Call before the pool is shared across goroutines.
func (p *Pool) SetTracer(t *trace.Tracer) { p.tracer = t }

// Notify returns the pool's admission signal: a 1-buffered channel that
// receives (coalesced, non-blocking) whenever a transaction enters the
// pending set via Add or Reinject. An event-driven consumer — the Raft
// engine's propose-time replication — selects on it instead of polling
// the pool on a timer; a drained signal may cover any number of
// admissions.
func (p *Pool) Notify() <-chan struct{} { return p.notify }

func (p *Pool) signal() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

func (p *Pool) shardOf(h types.Hash) *shard {
	return &p.shards[h[0]&(shardCount-1)]
}

// Add inserts tx unless it is known or the pool is full. It reports
// whether the transaction was accepted as new.
func (p *Pool) Add(tx *types.Transaction) bool {
	h := tx.Hash()
	s := p.shardOf(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, known := s.index[h]; known {
		return false
	}
	if p.limit > 0 && p.length.Load() >= int64(p.limit) {
		return false
	}
	s.index[h] = len(s.pending)
	s.pending = append(s.pending, entry{tx: tx, hash: h, seq: p.seq.Add(1)})
	p.length.Add(1)
	p.tracer.Stamp(h, trace.StageAdmit)
	p.signal()
	return true
}

// Known reports whether the pool has ever seen tx.
func (p *Pool) Known(h types.Hash) bool {
	s := p.shardOf(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[h]
	return ok
}

// Batch returns up to maxTxs pending transactions whose gas limits sum
// to at most gasLimit (0 disables the gas constraint), in arrival order:
// each shard drains its FIFO head and the heads are merged back by
// admission sequence. Transactions stay pending until MarkIncluded.
func (p *Pool) Batch(maxTxs int, gasLimit uint64) []*types.Transaction {
	// Snapshot each shard's live head under its own lock; no shard lock
	// is held during the merge. Small batches copy up to maxTxs per
	// shard, keeping the merge exact; large batches cap the per-shard
	// snapshot, so a heavily skewed shard may defer a few of its oldest
	// transactions to the next batch (approximate FIFO) in exchange for
	// copying ~2x the batch size instead of shardCount x.
	perShard := maxTxs
	if perShard > 64 {
		perShard = maxTxs/shardCount*2 + 32
	}
	var heads [shardCount][]entry
	for i := range p.shards {
		heads[i] = p.shards[i].snapshot(perShard)
	}
	var out []*types.Transaction
	var gas uint64
	var cursor [shardCount]int
	for {
		best := -1
		var bestSeq uint64
		for i := range heads {
			if cursor[i] < len(heads[i]) {
				if e := heads[i][cursor[i]]; best < 0 || e.seq < bestSeq {
					best, bestSeq = i, e.seq
				}
			}
		}
		if best < 0 {
			break
		}
		e := heads[best][cursor[best]]
		if maxTxs > 0 && len(out) >= maxTxs {
			break
		}
		if gasLimit > 0 && gas+e.tx.GasLimit > gasLimit {
			break
		}
		cursor[best]++
		gas += e.tx.GasLimit
		p.tracer.Stamp(e.hash, trace.StageBatch)
		out = append(out, e.tx)
	}
	return out
}

// BatchAffinity returns one Batch worth of pending transactions (same
// FIFO and gas semantics as Batch) regrouped by affinity class: all
// transactions of one class travel together, in arrival order within
// the class. classOf must return a value in [0, classes). The sharded
// platform's gateways use this to turn a flush interval's worth of
// accepted transactions into one forward batch per destination shard
// instead of a message per transaction. Transactions stay pending until
// MarkIncluded, exactly as with Batch.
func (p *Pool) BatchAffinity(maxTxs int, gasLimit uint64, classes int,
	classOf func(*types.Transaction) int) [][]*types.Transaction {

	out := make([][]*types.Transaction, classes)
	for _, tx := range p.Batch(maxTxs, gasLimit) {
		c := classOf(tx)
		out[c] = append(out[c], tx)
	}
	return out
}

// snapshot copies up to max live entries from the shard's FIFO head
// (all of them when max <= 0), advancing head past any tombstoned
// prefix on the way.
func (s *shard) snapshot(max int) []entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.head < len(s.pending) && s.pending[s.head].dead {
		s.head++
		s.dead--
	}
	s.maybeCompact()
	var out []entry
	for i := s.head; i < len(s.pending); i++ {
		if max > 0 && len(out) >= max {
			break
		}
		if !s.pending[i].dead {
			out = append(out, s.pending[i])
		}
	}
	return out
}

// MarkIncluded removes the given transactions from the pending set while
// remembering their hashes so duplicates are still rejected. Removal
// tombstones the entry in place; the slice is compacted only once
// tombstones dominate, keeping the per-block cost proportional to the
// batch rather than the pool.
func (p *Pool) MarkIncluded(txs []*types.Transaction) {
	var byShard [shardCount][]types.Hash
	for _, tx := range txs {
		h := tx.Hash()
		i := h[0] & (shardCount - 1)
		byShard[i] = append(byShard[i], h)
	}
	for i := range byShard {
		if len(byShard[i]) == 0 {
			continue
		}
		s := &p.shards[i]
		s.mu.Lock()
		for _, h := range byShard[i] {
			pos, known := s.index[h]
			if known && pos >= 0 {
				s.pending[pos].dead = true
				s.dead++
				p.length.Add(-1)
			}
			s.index[h] = -1
		}
		s.maybeCompact()
		s.mu.Unlock()
	}
}

// maybeCompact rebuilds the pending slice once the wasted entries —
// the consumed prefix before head plus tombstones past it — outnumber
// the live ones, restoring index positions and releasing the retained
// transactions. The doubling threshold keeps removal O(1) amortized.
// Called with the shard lock held.
func (s *shard) maybeCompact() {
	live := len(s.pending) - s.head - s.dead
	if waste := s.head + s.dead; waste <= live || waste < 64 {
		return
	}
	kept := make([]entry, 0, live)
	for _, e := range s.pending[s.head:] {
		if !e.dead {
			s.index[e.hash] = len(kept)
			kept = append(kept, e)
		}
	}
	s.pending = kept
	s.head = 0
	s.dead = 0
}

// Reinject returns transactions to the pending set even if they were
// previously marked included — used when a chain reorganization drops
// the blocks that contained them.
func (p *Pool) Reinject(txs []*types.Transaction) {
	for _, tx := range txs {
		h := tx.Hash()
		s := p.shardOf(h)
		s.mu.Lock()
		if pos, known := s.index[h]; known && pos >= 0 {
			s.mu.Unlock()
			continue // still pending
		}
		s.index[h] = len(s.pending)
		s.pending = append(s.pending, entry{tx: tx, hash: h, seq: p.seq.Add(1)})
		p.length.Add(1)
		s.mu.Unlock()
		p.signal()
	}
}

// Len returns the number of pending transactions.
func (p *Pool) Len() int {
	return int(p.length.Load())
}
