// Package contracts implements the paper's Table 1 smart-contract suite.
// Each contract exists in two forms, exactly as in BLOCKBENCH: an EVM
// version (authored in the repository's assembly language, standing in
// for Solidity) executed by Ethereum and Parity presets, and a native Go
// chaincode executed by the Hyperledger preset.
//
//	YCSB           key-value store            (macro)
//	Smallbank      OLTP bank accounts         (macro)
//	EtherId        domain-name registrar      (macro, real contract)
//	Doubler        pyramid/Ponzi scheme       (macro, real contract)
//	WavesPresale   crowd-sale token tracker   (macro, real contract)
//	VersionKVStore versioned KV for analytics (Hyperledger only)
//	IOHeavy        bulk random reads/writes   (micro: data model)
//	CPUHeavy       quicksort on a big array   (micro: execution layer)
//	DoNothing      empty contract             (micro: consensus layer)
package contracts

import (
	"fmt"
	"sort"

	"blockbench/internal/chaincode"
	"blockbench/internal/evm"
	"blockbench/internal/evm/asm"
)

// Spec bundles both implementations of one contract.
type Spec struct {
	Name        string
	Description string
	// EVM is the bytecode version (nil when the contract exists only as
	// chaincode, like VersionKVStore).
	EVM *evm.Program
	// Chaincode is the native Go version (Hyperledger).
	Chaincode chaincode.Chaincode
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("contracts: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

func init() {
	register(Spec{Name: "ycsb", Description: "key-value store (YCSB)",
		EVM: asm.MustAssemble(ycsbSrc), Chaincode: YCSB{}})
	register(Spec{Name: "smallbank", Description: "OLTP bank accounts (Smallbank)",
		EVM: asm.MustAssemble(smallbankSrc), Chaincode: Smallbank{}})
	register(Spec{Name: "etherid", Description: "domain name registrar",
		EVM: asm.MustAssemble(etherIdSrc), Chaincode: EtherId{}})
	register(Spec{Name: "doubler", Description: "pyramid scheme",
		EVM: asm.MustAssemble(doublerSrc), Chaincode: Doubler{}})
	register(Spec{Name: "wavespresale", Description: "crowd sale",
		EVM: asm.MustAssemble(wavesSrc), Chaincode: WavesPresale{}})
	register(Spec{Name: "versionkv", Description: "versioned KV store (Hyperledger only)",
		Chaincode: VersionKV{}})
	register(Spec{Name: "ioheavy", Description: "bulk random I/O",
		EVM: asm.MustAssemble(ioHeavySrc), Chaincode: IOHeavy{}})
	register(Spec{Name: "cpuheavy", Description: "quicksort a large array",
		EVM: asm.MustAssemble(cpuHeavySrc), Chaincode: CPUHeavy{}})
	register(Spec{Name: "donothing", Description: "empty contract",
		EVM: asm.MustAssemble(doNothingSrc), Chaincode: DoNothing{}})
}

// Lookup returns the spec for name.
func Lookup(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("contracts: unknown contract %q", name)
	}
	return s, nil
}

// All returns every spec sorted by name.
func All() []Spec {
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
