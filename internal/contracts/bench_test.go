package contracts

import (
	"fmt"
	"testing"

	"blockbench/internal/chaincode"
	"blockbench/internal/evm"
	"blockbench/internal/kvstore"
	"blockbench/internal/state"
	"blockbench/internal/types"
)

func benchState(b *testing.B) *state.DB {
	b.Helper()
	back, err := state.NewTrieBackend(kvstore.NewMem(), types.ZeroHash, 0)
	if err != nil {
		b.Fatal(err)
	}
	return state.NewDB(back)
}

// BenchmarkEVMSort vs BenchmarkNativeSort is the execution-layer gap of
// Fig 11: the same quicksort interpreted under gas metering versus
// compiled Go.
func BenchmarkEVMSort(b *testing.B) {
	for _, n := range []uint64{1000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			spec, _ := Lookup("cpuheavy")
			db := benchState(b)
			for i := 0; i < b.N; i++ {
				res := evm.Run(spec.EVM, "sort", &evm.Env{
					State: db, Contract: "cpuheavy",
					Args: [][]byte{types.U64Bytes(n)}, GasLimit: 1 << 50,
				})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

func BenchmarkNativeSort(b *testing.B) {
	for _, n := range []uint64{1000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			spec, _ := Lookup("cpuheavy")
			db := benchState(b)
			stub := chaincode.NewStub(db, "cpuheavy", types.Address{}, 0)
			for i := 0; i < b.N; i++ {
				if _, err := spec.Chaincode.Invoke(stub, "sort",
					[][]byte{types.U64Bytes(n)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEVMYCSBWrite measures per-transaction execution cost of the
// macro workload's hot path.
func BenchmarkEVMYCSBWrite(b *testing.B) {
	spec, _ := Lookup("ycsb")
	db := benchState(b)
	key := make([]byte, 20)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		res := evm.Run(spec.EVM, "write", &evm.Env{
			State: db, Contract: "ycsb",
			Args: [][]byte{key, val}, GasLimit: 1 << 30,
		})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkNativeYCSBWrite(b *testing.B) {
	spec, _ := Lookup("ycsb")
	db := benchState(b)
	stub := chaincode.NewStub(db, "ycsb", types.Address{}, 0)
	key := make([]byte, 20)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		if _, err := spec.Chaincode.Invoke(stub, "write", [][]byte{key, val}); err != nil {
			b.Fatal(err)
		}
	}
}
