package contracts

import (
	"blockbench/internal/chaincode"
	"blockbench/internal/types"
)

// VersionKV is the VersionKVStore chaincode from the paper's Appendix C
// (Hyperledger only). Hyperledger has no API to query historical state,
// so the chaincode materializes its own version chain: every account
// update writes a new record "<acct>:<version>" holding (balance,
// commitBlock) and bumps "<acct>:latest". Analytics Q2 then needs a
// single RPC — the chaincode scans versions server-side — versus one RPC
// per block on Ethereum/Parity, the ~10x latency gap of Fig 13b.
type VersionKV struct{}

func vkvKey(acct []byte, ver uint64) []byte {
	k := append(append([]byte{}, acct...), ':')
	return append(k, types.U64Bytes(ver)...)
}

func vkvLatest(stub *chaincode.Stub, acct []byte) (uint64, bool) {
	v := stub.GetState(append(append([]byte{}, acct...), ":latest"...))
	if v == nil {
		return 0, false
	}
	return types.U64(v), true
}

func vkvRecord(balance uint64, block uint64) []byte {
	return append(types.U64Bytes(balance), types.U64Bytes(block)...)
}

func vkvWrite(stub *chaincode.Stub, acct []byte, balance uint64) {
	ver, ok := vkvLatest(stub, acct)
	if ok {
		ver++
	}
	stub.PutState(vkvKey(acct, ver), vkvRecord(balance, stub.BlockNumber))
	stub.PutState(append(append([]byte{}, acct...), ":latest"...), types.U64Bytes(ver))
}

func vkvBalance(stub *chaincode.Stub, acct []byte) uint64 {
	ver, ok := vkvLatest(stub, acct)
	if !ok {
		return 0
	}
	rec := stub.GetState(vkvKey(acct, ver))
	if len(rec) < 16 {
		return 0
	}
	return types.U64(rec[:8])
}

// Invoke implements chaincode.Chaincode.
func (VersionKV) Invoke(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	switch method {
	case "prealloc": // args: acct, balance
		vkvWrite(stub, args[0], types.U64(args[1]))
	case "sendValue": // args: from, to, value
		from, to, val := args[0], args[1], types.U64(args[2])
		fb := vkvBalance(stub, from)
		if fb < val {
			return nil, chaincode.Revertf("insufficient balance")
		}
		vkvWrite(stub, from, fb-val)
		vkvWrite(stub, to, vkvBalance(stub, to)+val)
	default:
		return nil, chaincode.ErrNoMethod
	}
	return nil, nil
}

// Query implements chaincode.Chaincode.
func (VersionKV) Query(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	switch method {
	case "getBalance": // args: acct
		return types.U64Bytes(vkvBalance(stub, args[0])), nil
	case "accountBlockRange":
		// args: acct, startBlock, endBlock — returns the balances of all
		// versions committed in [start, end), newest first, 8 bytes each.
		// This is Query_AccountBlockRange from Appendix C: one RPC does
		// the whole scan server-side.
		acct := args[0]
		start, end := types.U64(args[1]), types.U64(args[2])
		ver, ok := vkvLatest(stub, acct)
		if !ok {
			return nil, nil
		}
		var out []byte
		for {
			rec := stub.GetState(vkvKey(acct, ver))
			if len(rec) < 16 {
				break
			}
			balance, commit := types.U64(rec[:8]), types.U64(rec[8:])
			if commit >= start && commit < end {
				out = append(out, types.U64Bytes(balance)...)
			} else if commit < start {
				break
			}
			if ver == 0 {
				break
			}
			ver--
		}
		return out, nil
	default:
		return nil, chaincode.ErrNoMethod
	}
}
