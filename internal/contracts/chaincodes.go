package contracts

import (
	"encoding/binary"
	"sort"

	"blockbench/internal/chaincode"
	"blockbench/internal/types"
)

// The Go chaincode ports. Fabric v0.6 exposes "only simple key-value
// operations, namely putState and getState", so richer structures (the
// Doubler participant list, WavesPresale records, EtherId balances) are
// flattened into key-value tuples — the paper calls this out as making
// "the chaincode more bulky than the Ethereum counterpart".

// YCSB is the key-value store chaincode.
type YCSB struct{}

// Invoke implements chaincode.Chaincode.
func (YCSB) Invoke(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	switch method {
	case "write":
		stub.PutState(args[0], args[1])
		return nil, nil
	case "delete":
		stub.DelState(args[0])
		return nil, nil
	case "read":
		return readOrRevert(stub, args[0])
	default:
		return nil, chaincode.ErrNoMethod
	}
}

// Query implements chaincode.Chaincode.
func (YCSB) Query(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	if method != "read" {
		return nil, chaincode.ErrNoMethod
	}
	return readOrRevert(stub, args[0])
}

func readOrRevert(stub *chaincode.Stub, key []byte) ([]byte, error) {
	v := stub.GetState(key)
	if v == nil {
		return nil, chaincode.Revertf("missing key %q", key)
	}
	return v, nil
}

// Smallbank is the OLTP chaincode: savings and checking balances per
// account under "s:"/"c:" prefixed keys.
type Smallbank struct{}

func sbKey(prefix byte, id []byte) []byte {
	return append([]byte{prefix, ':'}, id...)
}

func sbGet(stub *chaincode.Stub, prefix byte, id []byte) uint64 {
	return types.U64(stub.GetState(sbKey(prefix, id)))
}

func sbPut(stub *chaincode.Stub, prefix byte, id []byte, v uint64) {
	stub.PutState(sbKey(prefix, id), types.U64Bytes(v))
}

// Invoke implements chaincode.Chaincode.
func (Smallbank) Invoke(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	switch method {
	case "sendPayment":
		from, to, amt := args[0], args[1], types.U64(args[2])
		bal := sbGet(stub, 'c', from)
		if bal < amt {
			return nil, chaincode.Revertf("insufficient checking balance")
		}
		sbPut(stub, 'c', from, bal-amt)
		sbPut(stub, 'c', to, sbGet(stub, 'c', to)+amt)
	case "depositChecking":
		id, amt := args[0], types.U64(args[1])
		sbPut(stub, 'c', id, sbGet(stub, 'c', id)+amt)
	case "transactSavings":
		id, amt := args[0], types.U64(args[1])
		sbPut(stub, 's', id, sbGet(stub, 's', id)+amt)
	case "writeCheck":
		id, amt := args[0], types.U64(args[1])
		bal := sbGet(stub, 'c', id)
		if bal < amt {
			return nil, chaincode.Revertf("insufficient checking balance")
		}
		sbPut(stub, 'c', id, bal-amt)
	case "amalgamate":
		src, dst := args[0], args[1]
		total := sbGet(stub, 's', src) + sbGet(stub, 'c', src)
		sbPut(stub, 's', src, 0)
		sbPut(stub, 'c', src, 0)
		sbPut(stub, 'c', dst, sbGet(stub, 'c', dst)+total)
	case "getBalance":
		return types.U64Bytes(sbGet(stub, 's', args[0]) + sbGet(stub, 'c', args[0])), nil
	default:
		return nil, chaincode.ErrNoMethod
	}
	return nil, nil
}

// Query implements chaincode.Chaincode.
func (Smallbank) Query(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	if method != "getBalance" {
		return nil, chaincode.ErrNoMethod
	}
	return types.U64Bytes(sbGet(stub, 's', args[0]) + sbGet(stub, 'c', args[0])), nil
}

// EtherId is the domain registrar chaincode. As the paper describes, it
// keeps two key-value namespaces inside one chaincode: "d:"-prefixed
// domain records and "b:"-prefixed user balances (Fabric has no native
// currency, so accounts are pre-allocated with prealloc).
type EtherId struct{}

type eidRecord struct {
	owner types.Address
	price uint64
}

func eidGet(stub *chaincode.Stub, domain []byte) (eidRecord, bool) {
	v := stub.GetState(append([]byte("d:"), domain...))
	if len(v) < types.AddressSize+8 {
		return eidRecord{}, false
	}
	return eidRecord{
		owner: types.BytesToAddress(v[:types.AddressSize]),
		price: binary.BigEndian.Uint64(v[types.AddressSize:]),
	}, true
}

func eidPut(stub *chaincode.Stub, domain []byte, r eidRecord) {
	v := make([]byte, types.AddressSize+8)
	copy(v, r.owner[:])
	binary.BigEndian.PutUint64(v[types.AddressSize:], r.price)
	stub.PutState(append([]byte("d:"), domain...), v)
}

func eidBal(stub *chaincode.Stub, addr types.Address) uint64 {
	return types.U64(stub.GetState(append([]byte("b:"), addr[:]...)))
}

func eidSetBal(stub *chaincode.Stub, addr types.Address, v uint64) {
	stub.PutState(append([]byte("b:"), addr[:]...), types.U64Bytes(v))
}

// Invoke implements chaincode.Chaincode.
func (EtherId) Invoke(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	switch method {
	case "prealloc": // args: addr20, balance
		eidSetBal(stub, types.BytesToAddress(args[0]), types.U64(args[1]))
	case "register": // args: domain, price
		if _, ok := eidGet(stub, args[0]); ok {
			return nil, chaincode.Revertf("domain taken")
		}
		eidPut(stub, args[0], eidRecord{owner: stub.Caller, price: types.U64(args[1])})
	case "transfer": // args: domain, newOwner20
		r, ok := eidGet(stub, args[0])
		if !ok {
			return nil, chaincode.Revertf("no such domain")
		}
		if r.owner != stub.Caller {
			return nil, chaincode.Revertf("not the owner")
		}
		r.owner = types.BytesToAddress(args[1])
		eidPut(stub, args[0], r)
	case "buy": // args: domain; pays from the caller's pre-allocated funds
		r, ok := eidGet(stub, args[0])
		if !ok {
			return nil, chaincode.Revertf("no such domain")
		}
		bal := eidBal(stub, stub.Caller)
		if bal < r.price {
			return nil, chaincode.Revertf("insufficient funds")
		}
		eidSetBal(stub, stub.Caller, bal-r.price)
		eidSetBal(stub, r.owner, eidBal(stub, r.owner)+r.price)
		r.owner = stub.Caller
		eidPut(stub, args[0], r)
	case "query":
		return (EtherId{}).Query(stub, method, args)
	default:
		return nil, chaincode.ErrNoMethod
	}
	return nil, nil
}

// Query implements chaincode.Chaincode.
func (EtherId) Query(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	if method != "query" {
		return nil, chaincode.ErrNoMethod
	}
	v := stub.GetState(append([]byte("d:"), args[0]...))
	if v == nil {
		return nil, chaincode.Revertf("no such domain")
	}
	return v, nil
}

// Doubler is the pyramid-scheme chaincode. The Solidity participant
// array becomes indexed keys "p:<n>"; the pot is tracked explicitly in
// state since chaincode has no contract account.
type Doubler struct{}

func dblIdx(stub *chaincode.Stub, key string) uint64 {
	return types.U64(stub.GetState([]byte(key)))
}

func dblSetIdx(stub *chaincode.Stub, key string, v uint64) {
	stub.PutState([]byte(key), types.U64Bytes(v))
}

func dblPartKey(i uint64) []byte {
	return append([]byte("p:"), types.U64Bytes(i)...)
}

// Invoke implements chaincode.Chaincode.
func (Doubler) Invoke(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	if method != "enter" {
		return nil, chaincode.ErrNoMethod
	}
	n := dblIdx(stub, "n")
	rec := make([]byte, types.AddressSize+8)
	copy(rec, stub.Caller[:])
	binary.BigEndian.PutUint64(rec[types.AddressSize:], stub.Value)
	stub.PutState(dblPartKey(n), rec)
	dblSetIdx(stub, "n", n+1)
	pot := dblIdx(stub, "pot") + stub.Value
	i := dblIdx(stub, "i")
	for i < n+1 {
		r := stub.GetState(dblPartKey(i))
		if len(r) < types.AddressSize+8 {
			break
		}
		amount := binary.BigEndian.Uint64(r[types.AddressSize:])
		if pot <= 2*amount {
			break
		}
		pot -= 2 * amount
		addr := types.BytesToAddress(r[:types.AddressSize])
		if err := stub.Transfer(stub.ContractAddr, addr, 0); err != nil {
			// The contract account carries no real funds under Fabric;
			// payouts are pot bookkeeping only.
			_ = err
		}
		i++
	}
	dblSetIdx(stub, "pot", pot)
	dblSetIdx(stub, "i", i)
	return nil, nil
}

// Query implements chaincode.Chaincode.
func (Doubler) Query(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	switch method {
	case "participants":
		return types.U64Bytes(dblIdx(stub, "n")), nil
	case "payoutIndex":
		return types.U64Bytes(dblIdx(stub, "i")), nil
	default:
		return nil, chaincode.ErrNoMethod
	}
}

// WavesPresale is the crowd-sale chaincode: a total counter plus one
// record per sale under "s:<id>".
type WavesPresale struct{}

func wpSaleKey(id []byte) []byte { return append([]byte("s:"), id...) }

// Invoke implements chaincode.Chaincode.
func (WavesPresale) Invoke(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	switch method {
	case "newSale": // args: id, tokens
		if stub.GetState(wpSaleKey(args[0])) != nil {
			return nil, chaincode.Revertf("sale exists")
		}
		tokens := types.U64(args[1])
		rec := make([]byte, types.AddressSize+8)
		copy(rec, stub.Caller[:])
		binary.BigEndian.PutUint64(rec[types.AddressSize:], tokens)
		stub.PutState(wpSaleKey(args[0]), rec)
		stub.PutState([]byte("t"), types.U64Bytes(types.U64(stub.GetState([]byte("t")))+tokens))
	case "transferSale": // args: id, newOwner20
		rec := stub.GetState(wpSaleKey(args[0]))
		if rec == nil {
			return nil, chaincode.Revertf("no such sale")
		}
		if types.BytesToAddress(rec[:types.AddressSize]) != stub.Caller {
			return nil, chaincode.Revertf("not the owner")
		}
		out := make([]byte, len(rec))
		copy(out, rec)
		copy(out[:types.AddressSize], args[1])
		stub.PutState(wpSaleKey(args[0]), out)
	default:
		return nil, chaincode.ErrNoMethod
	}
	return nil, nil
}

// Query implements chaincode.Chaincode.
func (WavesPresale) Query(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	switch method {
	case "getSale":
		rec := stub.GetState(wpSaleKey(args[0]))
		if rec == nil {
			return nil, chaincode.Revertf("no such sale")
		}
		return rec, nil
	case "total":
		return types.U64Bytes(types.U64(stub.GetState([]byte("t")))), nil
	default:
		return nil, chaincode.ErrNoMethod
	}
}

// IOHeavy performs n random writes or reads per invocation with the same
// key derivation as the EVM version (20-byte keys, 100-byte values).
type IOHeavy struct{}

func ioKey(k uint64) []byte {
	key := make([]byte, 20)
	binary.LittleEndian.PutUint64(key[0:], k)
	binary.LittleEndian.PutUint64(key[8:], k*2654435761)
	binary.LittleEndian.PutUint64(key[12:], k*2654435761)
	return key
}

// Invoke implements chaincode.Chaincode.
func (IOHeavy) Invoke(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	n, seed := types.U64(args[0]), types.U64(args[1])
	switch method {
	case "write":
		val := make([]byte, 100)
		for j := uint64(0); j < n; j++ {
			binary.LittleEndian.PutUint64(val, j)
			stub.PutState(ioKey(seed+j), val)
		}
	case "read":
		for j := uint64(0); j < n; j++ {
			_ = stub.GetState(ioKey(seed + j))
		}
	default:
		return nil, chaincode.ErrNoMethod
	}
	return nil, nil
}

// Query implements chaincode.Chaincode.
func (IOHeavy) Query(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	if method != "read" {
		return nil, chaincode.ErrNoMethod
	}
	return (IOHeavy{}).Invoke(stub, method, args)
}

// CPUHeavy sorts n descending integers with the same iterative Hoare
// quicksort as the EVM version, compiled to native code — the paper's
// execution-layer comparison point ("the smart contract is compiled and
// runs directly on the native machine").
type CPUHeavy struct{}

// Invoke implements chaincode.Chaincode.
func (CPUHeavy) Invoke(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	if method != "sort" {
		return nil, chaincode.ErrNoMethod
	}
	n := int(types.U64(args[0]))
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(n - i)
	}
	quicksort(a)
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
		return nil, chaincode.Revertf("sort failed")
	}
	if n == 0 {
		return types.U64Bytes(0), nil
	}
	return types.U64Bytes(a[0]), nil
}

// Query implements chaincode.Chaincode. Sorting is stateless, so the
// read-only path simply delegates (the CPUHeavy experiment measures
// execution speed without consensus).
func (c CPUHeavy) Query(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	return c.Invoke(stub, method, args)
}

// quicksort is the iterative Hoare-partition quicksort, mirroring the
// EVM bytecode so both platforms execute the same algorithm.
func quicksort(a []uint64) {
	if len(a) < 2 {
		return
	}
	type seg struct{ lo, hi int }
	stack := []seg{{0, len(a) - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.lo >= s.hi {
			continue
		}
		pivot := a[(s.lo+s.hi)/2]
		i, j := s.lo, s.hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if s.lo < j {
			stack = append(stack, seg{s.lo, j})
		}
		if i < s.hi {
			stack = append(stack, seg{i, s.hi})
		}
	}
}

// DoNothing accepts any invocation and returns immediately.
type DoNothing struct{}

// Invoke implements chaincode.Chaincode.
func (DoNothing) Invoke(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	return nil, nil
}

// Query implements chaincode.Chaincode.
func (DoNothing) Query(stub *chaincode.Stub, method string, args [][]byte) ([]byte, error) {
	return nil, nil
}
