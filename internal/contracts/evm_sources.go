package contracts

// EVM assembly sources for the contract suite. Memory layout conventions
// used throughout: storage keys are built at mem[0..], values and records
// at mem[100..], scratch registers at fixed slots ≥ 300, large data (the
// CPUHeavy array) from mem[1000].
//
// Stack conventions (see internal/evm): operands are pushed
// left-to-right; e.g. SSTORE consumes (keyOff, keyLen, valOff, valLen)
// pushed in that order.

// ycsbSrc is the key-value store contract behind the YCSB workload.
// write(key, value) / read(key) / delete(key); read reverts on a miss.
const ycsbSrc = `
.func write
  PUSH 0
  PUSH 0
  ARG              ; key -> mem[0], push len
  PUSH 900
  SWAP 1
  MSTORE           ; mem[900] = keyLen
  PUSH 1
  PUSH 1000
  ARG              ; value -> mem[1000], push len
  PUSH 908
  SWAP 1
  MSTORE           ; mem[908] = valLen
  PUSH 0
  PUSH 900
  MLOAD
  PUSH 1000
  PUSH 908
  MLOAD
  SSTORE
  STOP

.func read
  PUSH 0
  PUSH 0
  ARG
  PUSH 900
  SWAP 1
  MSTORE
  PUSH 0
  PUSH 900
  MLOAD
  PUSH 1000
  SLOAD            ; pushes len, found
  JUMPI @ycsb_hit
  POP
  PUSH 0
  PUSH 0
  REVERT
ycsb_hit:
  PUSH 1000
  SWAP 1
  RETURN

.func delete
  PUSH 0
  PUSH 0
  ARG
  PUSH 900
  SWAP 1
  MSTORE
  PUSH 0
  PUSH 900
  MLOAD
  SDEL
  STOP
`

// smallbankSrc implements the Smallbank OLTP procedures over two
// per-account records: savings under key 's'||id and checking under
// 'c'||id (ids are 8-byte integers).
const smallbankSrc = `
; --- helpers -------------------------------------------------------
; sb_mkkey: stack (argIdx, prefixChar) -> (); builds key at mem[0:9]
; sb_readbal: key at mem[0:9] -> pushes balance (0 if absent)
; sb_writebal: stack (balance); key at mem[0:9] -> ()

.func sendPayment        ; args: from, to, amount
  PUSH 0
  PUSH 'c'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal    ; [fromBal]
  PUSH 2
  ARGW                   ; [fromBal, amt]
  DUP 2
  DUP 2
  LT                     ; fromBal < amt ?
  JUMPI @sb_insufficient
  SUB                    ; fromBal - amt
  CALLSUB @sb_writebal
  PUSH 1
  PUSH 'c'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal
  PUSH 2
  ARGW
  ADD
  CALLSUB @sb_writebal
  STOP
sb_insufficient:
  PUSH 0
  PUSH 0
  REVERT

.func depositChecking    ; args: acct, amount
  PUSH 0
  PUSH 'c'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal
  PUSH 1
  ARGW
  ADD
  CALLSUB @sb_writebal
  STOP

.func transactSavings    ; args: acct, amount
  PUSH 0
  PUSH 's'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal
  PUSH 1
  ARGW
  ADD
  CALLSUB @sb_writebal
  STOP

.func writeCheck         ; args: acct, amount
  PUSH 0
  PUSH 'c'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal    ; [bal]
  PUSH 1
  ARGW                   ; [bal, amt]
  DUP 2
  DUP 2
  LT
  JUMPI @sb_insufficient2
  SUB
  CALLSUB @sb_writebal
  STOP
sb_insufficient2:
  PUSH 0
  PUSH 0
  REVERT

.func amalgamate         ; args: src, dst — move all of src into dst checking
  PUSH 0
  PUSH 's'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal    ; [sav]
  PUSH 0
  CALLSUB @sb_writebal   ; zero savings(src); leaves [sav]
  PUSH 0
  PUSH 'c'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal    ; [sav, chk]
  PUSH 0
  CALLSUB @sb_writebal   ; zero checking(src); leaves [sav, chk]
  ADD                    ; [total]
  PUSH 1
  PUSH 'c'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal    ; [total, dstBal]
  ADD
  CALLSUB @sb_writebal
  STOP

.func getBalance         ; args: acct — returns savings+checking
  PUSH 0
  PUSH 's'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal
  PUSH 0
  PUSH 'c'
  CALLSUB @sb_mkkey
  CALLSUB @sb_readbal
  ADD
  PUSH 200
  SWAP 1
  MSTORE
  PUSH 200
  PUSH 8
  RETURN

sb_mkkey:
  PUSH 0
  SWAP 1
  MSTORE1          ; mem[0] = prefix; stack: [argIdx]
  PUSH 1
  ARG              ; id -> mem[1:9]
  POP
  RETSUB

sb_readbal:
  PUSH 0
  PUSH 9
  PUSH 100
  SLOAD            ; [len, found]
  JUMPI @sb_rb_hit
  POP
  PUSH 0
  RETSUB
sb_rb_hit:
  POP
  PUSH 100
  MLOAD
  RETSUB

sb_writebal:       ; [balance]
  PUSH 100
  SWAP 1
  MSTORE
  PUSH 0
  PUSH 9
  PUSH 100
  PUSH 8
  SSTORE
  RETSUB
`

// etherIdSrc is the domain-name registrar. Records live under 'd'||domain
// and hold owner (20 bytes) || price (8 bytes). buy() pays the tx value
// to the current owner through the contract account.
const etherIdSrc = `
.func register           ; args: domain(8), price(8)
  CALLSUB @eid_loadrec   ; pushes found (record at mem[100:128] when found)
  JUMPI @eid_taken
  PUSH 100
  CALLER
  POP
  PUSH 1
  ARGW
  PUSH 120
  SWAP 1
  MSTORE
  CALLSUB @eid_store
  STOP
eid_taken:
  PUSH 0
  PUSH 0
  REVERT

.func transfer           ; args: domain(8), newOwner(20)
  CALLSUB @eid_loadrec
  ISZERO
  JUMPI @eid_missing
  PUSH 200
  CALLER
  POP
  CALLSUB @eid_ownercheck
  PUSH 1
  PUSH 100
  ARG                    ; new owner -> mem[100:120]
  POP
  CALLSUB @eid_store
  STOP
eid_missing:
  PUSH 0
  PUSH 0
  REVERT

.func buy                ; args: domain(8); tx value pays the owner
  CALLSUB @eid_loadrec
  ISZERO
  JUMPI @eid_missing2
  VALUE
  PUSH 120
  MLOAD
  LT                     ; value < price ?
  JUMPI @eid_cheap
  PUSH 100               ; owner address offset
  VALUE
  TRANSFER
  PUSH 100
  CALLER
  POP
  CALLSUB @eid_store
  STOP
eid_missing2:
  PUSH 0
  PUSH 0
  REVERT
eid_cheap:
  PUSH 0
  PUSH 0
  REVERT

.func query              ; args: domain(8) — returns owner||price
  CALLSUB @eid_loadrec
  ISZERO
  JUMPI @eid_missing3
  PUSH 100
  PUSH 28
  RETURN
eid_missing3:
  PUSH 0
  PUSH 0
  REVERT

eid_loadrec:             ; builds key at mem[0:9]; loads record to mem[100]
  PUSH 0
  PUSH 'd'
  MSTORE1
  PUSH 0
  PUSH 1
  ARG
  POP
  PUSH 0
  PUSH 9
  PUSH 100
  SLOAD                  ; [len, found]
  SWAP 1
  POP                    ; drop len, keep found
  RETSUB

eid_store:               ; key at mem[0:9], record at mem[100:128]
  PUSH 0
  PUSH 9
  PUSH 100
  PUSH 28
  SSTORE
  RETSUB

eid_ownercheck:          ; reverts unless mem[100:120] == mem[200:220]
  PUSH 100
  MLOAD
  PUSH 200
  MLOAD
  XOR
  PUSH 108
  MLOAD
  PUSH 208
  MLOAD
  XOR
  OR
  PUSH 112
  MLOAD
  PUSH 212
  MLOAD
  XOR
  OR
  ISZERO
  JUMPI @eid_ownerok
  PUSH 0
  PUSH 0
  REVERT
eid_ownerok:
  RETSUB
`

// doublerSrc is the pyramid scheme of the paper's Figure 2: participants
// send value in; whenever the pot exceeds twice an early participant's
// contribution, they are paid double and the payout index advances.
const doublerSrc = `
.func enter
  ; record participant: caller(20) || value(8) under key 'p'||count
  CALLSUB @dbl_loadn     ; [n]
  PUSH 300
  SWAP 1
  MSTORE
  PUSH 100
  CALLER
  POP
  VALUE
  PUSH 120
  SWAP 1
  MSTORE
  PUSH 0
  PUSH 'p'
  MSTORE1
  PUSH 300
  MLOAD
  PUSH 1
  SWAP 1
  MSTORE                 ; key = 'p' || n
  PUSH 0
  PUSH 9
  PUSH 100
  PUSH 28
  SSTORE
  PUSH 300
  MLOAD
  PUSH 1
  ADD
  CALLSUB @dbl_storen
dbl_pay:
  CALLSUB @dbl_loadi     ; [i]
  DUP 1
  PUSH 400
  SWAP 1
  MSTORE                 ; mem[400] = i; stack [i]
  PUSH 0
  PUSH 'p'
  MSTORE1
  PUSH 1
  SWAP 1
  MSTORE                 ; key = 'p' || i; stack []
  PUSH 0
  PUSH 9
  PUSH 500
  SLOAD                  ; [len, found]; record -> mem[500:528]
  ISZERO
  JUMPI @dbl_nomore
  POP
  SELFBAL
  PUSH 520
  MLOAD
  PUSH 2
  MUL
  GT                     ; pot > 2*contribution ?
  ISZERO
  JUMPI @dbl_done
  PUSH 500               ; participant address offset
  PUSH 520
  MLOAD
  PUSH 2
  MUL
  TRANSFER
  PUSH 400
  MLOAD
  PUSH 1
  ADD
  CALLSUB @dbl_storei
  JUMP @dbl_pay
dbl_nomore:
  POP
  STOP
dbl_done:
  STOP

dbl_loadn:
  PUSH 600
  PUSH 'n'
  MSTORE1
  PUSH 600
  PUSH 1
  PUSH 608
  SLOAD
  JUMPI @dbl_ln_hit
  POP
  PUSH 0
  RETSUB
dbl_ln_hit:
  POP
  PUSH 608
  MLOAD
  RETSUB

dbl_storen:              ; [n]
  PUSH 608
  SWAP 1
  MSTORE
  PUSH 600
  PUSH 'n'
  MSTORE1
  PUSH 600
  PUSH 1
  PUSH 608
  PUSH 8
  SSTORE
  RETSUB

dbl_loadi:
  PUSH 616
  PUSH 'i'
  MSTORE1
  PUSH 616
  PUSH 1
  PUSH 624
  SLOAD
  JUMPI @dbl_li_hit
  POP
  PUSH 0
  RETSUB
dbl_li_hit:
  POP
  PUSH 624
  MLOAD
  RETSUB

dbl_storei:              ; [i]
  PUSH 624
  SWAP 1
  MSTORE
  PUSH 616
  PUSH 'i'
  MSTORE1
  PUSH 616
  PUSH 1
  PUSH 624
  PUSH 8
  SSTORE
  RETSUB
`

// wavesSrc tracks a digital token crowd-sale: a running total and one
// record per sale under 's'||id holding buyer (20) || tokens (8).
const wavesSrc = `
.func newSale            ; args: saleId(8), tokens(8)
  CALLSUB @wp_loadsale   ; [found]
  JUMPI @wp_exists
  PUSH 100
  CALLER
  POP
  PUSH 1
  ARGW
  PUSH 120
  SWAP 1
  MSTORE
  CALLSUB @wp_storesale
  ; total += tokens
  CALLSUB @wp_loadtotal
  PUSH 1
  ARGW
  ADD
  CALLSUB @wp_storetotal
  STOP
wp_exists:
  PUSH 0
  PUSH 0
  REVERT

.func transferSale       ; args: saleId(8), newOwner(20)
  CALLSUB @wp_loadsale
  ISZERO
  JUMPI @wp_missing
  PUSH 200
  CALLER
  POP
  CALLSUB @wp_ownercheck
  PUSH 1
  PUSH 100
  ARG
  POP
  CALLSUB @wp_storesale
  STOP
wp_missing:
  PUSH 0
  PUSH 0
  REVERT

.func getSale            ; args: saleId(8) — returns buyer||tokens
  CALLSUB @wp_loadsale
  ISZERO
  JUMPI @wp_missing2
  PUSH 100
  PUSH 28
  RETURN
wp_missing2:
  PUSH 0
  PUSH 0
  REVERT

.func total              ; returns tokens sold so far
  CALLSUB @wp_loadtotal
  PUSH 300
  SWAP 1
  MSTORE
  PUSH 300
  PUSH 8
  RETURN

wp_loadsale:             ; key 's'||id at mem[0:9]; record -> mem[100:128]
  PUSH 0
  PUSH 's'
  MSTORE1
  PUSH 0
  PUSH 1
  ARG
  POP
  PUSH 0
  PUSH 9
  PUSH 100
  SLOAD
  SWAP 1
  POP
  RETSUB

wp_storesale:
  PUSH 0
  PUSH 9
  PUSH 100
  PUSH 28
  SSTORE
  RETSUB

wp_loadtotal:
  PUSH 600
  PUSH 't'
  MSTORE1
  PUSH 600
  PUSH 1
  PUSH 608
  SLOAD
  JUMPI @wp_lt_hit
  POP
  PUSH 0
  RETSUB
wp_lt_hit:
  POP
  PUSH 608
  MLOAD
  RETSUB

wp_storetotal:           ; [total]
  PUSH 608
  SWAP 1
  MSTORE
  PUSH 600
  PUSH 't'
  MSTORE1
  PUSH 600
  PUSH 1
  PUSH 608
  PUSH 8
  SSTORE
  RETSUB

wp_ownercheck:           ; reverts unless mem[100:120] == mem[200:220]
  PUSH 100
  MLOAD
  PUSH 200
  MLOAD
  XOR
  PUSH 108
  MLOAD
  PUSH 208
  MLOAD
  XOR
  OR
  PUSH 112
  MLOAD
  PUSH 212
  MLOAD
  XOR
  OR
  ISZERO
  JUMPI @wp_ownerok
  PUSH 0
  PUSH 0
  REVERT
wp_ownerok:
  RETSUB
`

// ioHeavySrc performs n random-looking writes or reads per invocation:
// 20-byte keys derived from a counter, 100-byte values. This is the
// data-model stress contract.
const ioHeavySrc = `
.func write              ; args: n, seed
  PUSH 0
  ARGW
  PUSH 300
  SWAP 1
  MSTORE                 ; mem[300] = n
  PUSH 1
  ARGW
  PUSH 308
  SWAP 1
  MSTORE                 ; mem[308] = seed
  PUSH 316
  PUSH 0
  MSTORE                 ; j = 0
iow_loop:
  PUSH 316
  MLOAD
  PUSH 300
  MLOAD
  LT
  ISZERO
  JUMPI @iow_done
  PUSH 308
  MLOAD
  PUSH 316
  MLOAD
  ADD                    ; k = seed + j
  DUP 1
  PUSH 0
  SWAP 1
  MSTORE                 ; key[0:8] = k
  PUSH 2654435761
  MUL
  DUP 1
  PUSH 8
  SWAP 1
  MSTORE                 ; key[8:16] = k * prime
  PUSH 12
  SWAP 1
  MSTORE                 ; key[12:20] = k * prime (overlap)
  PUSH 316
  MLOAD
  PUSH 100
  SWAP 1
  MSTORE                 ; value[0:8] = j (rest of the 100 bytes zero)
  PUSH 0
  PUSH 20
  PUSH 100
  PUSH 100
  SSTORE
  PUSH 316
  MLOAD
  PUSH 1
  ADD
  PUSH 316
  SWAP 1
  MSTORE
  JUMP @iow_loop
iow_done:
  STOP

.func read               ; args: n, seed
  PUSH 0
  ARGW
  PUSH 300
  SWAP 1
  MSTORE
  PUSH 1
  ARGW
  PUSH 308
  SWAP 1
  MSTORE
  PUSH 316
  PUSH 0
  MSTORE
ior_loop:
  PUSH 316
  MLOAD
  PUSH 300
  MLOAD
  LT
  ISZERO
  JUMPI @ior_done
  PUSH 308
  MLOAD
  PUSH 316
  MLOAD
  ADD
  DUP 1
  PUSH 0
  SWAP 1
  MSTORE
  PUSH 2654435761
  MUL
  DUP 1
  PUSH 8
  SWAP 1
  MSTORE
  PUSH 12
  SWAP 1
  MSTORE
  PUSH 0
  PUSH 20
  PUSH 100
  SLOAD                  ; [len, found]
  POP
  POP
  PUSH 316
  MLOAD
  PUSH 1
  ADD
  PUSH 316
  SWAP 1
  MSTORE
  JUMP @ior_loop
ior_done:
  STOP
`

// cpuHeavySrc initializes an array of n descending 64-bit integers at
// mem[1000:] and sorts it with an iterative Hoare quicksort whose
// segment stack lives just past the array. Scratch registers:
// n@400, lo@416, hi@424, i@432, j@440, pivot@448, sp@456, out@472.
const cpuHeavySrc = `
.func sort               ; args: n — returns a[0] after sorting (must be 1)
  PUSH 0
  ARGW
  PUSH 400
  SWAP 1
  MSTORE                 ; n
  PUSH 432
  PUSH 0
  MSTORE                 ; i = 0
cpu_init:
  PUSH 432
  MLOAD
  PUSH 400
  MLOAD
  LT
  ISZERO
  JUMPI @cpu_init_done
  PUSH 432
  MLOAD
  PUSH 400
  MLOAD
  PUSH 432
  MLOAD
  SUB                    ; a[i] = n - i (descending)
  CALLSUB @cpu_astore
  PUSH 432
  MLOAD
  PUSH 1
  ADD
  PUSH 432
  SWAP 1
  MSTORE
  JUMP @cpu_init
cpu_init_done:
  PUSH 400
  MLOAD
  PUSH 8
  MUL
  PUSH 1000
  ADD
  PUSH 456
  SWAP 1
  MSTORE                 ; sp = segment-stack base = 1000 + 8n
  PUSH 0
  PUSH 400
  MLOAD
  PUSH 1
  SUB
  CALLSUB @cpu_qpush     ; push (0, n-1)
cpu_main:
  PUSH 456
  MLOAD
  PUSH 400
  MLOAD
  PUSH 8
  MUL
  PUSH 1000
  ADD
  GT                     ; sp > base ?
  ISZERO
  JUMPI @cpu_sorted
  CALLSUB @cpu_qpop      ; [lo, hi]
  PUSH 424
  SWAP 1
  MSTORE                 ; hi
  PUSH 416
  SWAP 1
  MSTORE                 ; lo
  PUSH 416
  MLOAD
  PUSH 424
  MLOAD
  SLT                    ; lo < hi ?
  ISZERO
  JUMPI @cpu_main
  PUSH 416
  MLOAD
  PUSH 424
  MLOAD
  ADD
  PUSH 2
  DIV
  CALLSUB @cpu_aload
  PUSH 448
  SWAP 1
  MSTORE                 ; pivot = a[(lo+hi)/2]
  PUSH 416
  MLOAD
  PUSH 432
  SWAP 1
  MSTORE                 ; i = lo
  PUSH 424
  MLOAD
  PUSH 440
  SWAP 1
  MSTORE                 ; j = hi
cpu_part:
  PUSH 432
  MLOAD
  PUSH 440
  MLOAD
  SGT                    ; i > j ?
  JUMPI @cpu_after
cpu_advi:
  PUSH 432
  MLOAD
  CALLSUB @cpu_aload
  PUSH 448
  MLOAD
  LT                     ; a[i] < pivot ?
  ISZERO
  JUMPI @cpu_advj
  PUSH 432
  MLOAD
  PUSH 1
  ADD
  PUSH 432
  SWAP 1
  MSTORE
  JUMP @cpu_advi
cpu_advj:
  PUSH 440
  MLOAD
  CALLSUB @cpu_aload
  PUSH 448
  MLOAD
  GT                     ; a[j] > pivot ?
  ISZERO
  JUMPI @cpu_swap
  PUSH 440
  MLOAD
  PUSH 1
  SUB
  PUSH 440
  SWAP 1
  MSTORE
  JUMP @cpu_advj
cpu_swap:
  PUSH 432
  MLOAD
  PUSH 440
  MLOAD
  SGT                    ; i > j ?
  JUMPI @cpu_after
  PUSH 432
  MLOAD
  CALLSUB @cpu_aload     ; [a_i]
  PUSH 440
  MLOAD
  CALLSUB @cpu_aload     ; [a_i, a_j]
  PUSH 432
  MLOAD
  SWAP 1                 ; [a_i, i, a_j]
  CALLSUB @cpu_astore    ; a[i] = a_j; [a_i]
  PUSH 440
  MLOAD
  SWAP 1                 ; [j, a_i]
  CALLSUB @cpu_astore    ; a[j] = a_i
  PUSH 432
  MLOAD
  PUSH 1
  ADD
  PUSH 432
  SWAP 1
  MSTORE                 ; i++
  PUSH 440
  MLOAD
  PUSH 1
  SUB
  PUSH 440
  SWAP 1
  MSTORE                 ; j--
  JUMP @cpu_part
cpu_after:
  PUSH 416
  MLOAD
  PUSH 440
  MLOAD
  SLT                    ; lo < j ?
  ISZERO
  JUMPI @cpu_right
  PUSH 416
  MLOAD
  PUSH 440
  MLOAD
  CALLSUB @cpu_qpush
cpu_right:
  PUSH 432
  MLOAD
  PUSH 424
  MLOAD
  SLT                    ; i < hi ?
  ISZERO
  JUMPI @cpu_main
  PUSH 432
  MLOAD
  PUSH 424
  MLOAD
  CALLSUB @cpu_qpush
  JUMP @cpu_main
cpu_sorted:
  PUSH 0
  CALLSUB @cpu_aload
  PUSH 472
  SWAP 1
  MSTORE
  PUSH 472
  PUSH 8
  RETURN

cpu_aload:               ; [idx] -> [a[idx]]
  PUSH 8
  MUL
  PUSH 1000
  ADD
  MLOAD
  RETSUB

cpu_astore:              ; [idx, val] -> []
  SWAP 1
  PUSH 8
  MUL
  PUSH 1000
  ADD
  SWAP 1
  MSTORE
  RETSUB

cpu_qpush:               ; [lo, hi] -> []; segment stack push
  PUSH 456
  MLOAD
  PUSH 8
  ADD
  SWAP 1
  MSTORE                 ; mem[sp+8] = hi
  PUSH 456
  MLOAD
  SWAP 1
  MSTORE                 ; mem[sp] = lo
  PUSH 456
  MLOAD
  PUSH 16
  ADD
  PUSH 456
  SWAP 1
  MSTORE                 ; sp += 16
  RETSUB

cpu_qpop:                ; [] -> [lo, hi]; segment stack pop
  PUSH 456
  MLOAD
  PUSH 16
  SUB
  DUP 1
  PUSH 456
  SWAP 1
  MSTORE                 ; sp -= 16
  DUP 1
  MLOAD                  ; [sp, lo]
  SWAP 1
  PUSH 8
  ADD
  MLOAD                  ; [lo, hi]
  RETSUB
`

// doNothingSrc accepts a transaction and returns immediately: the
// consensus-layer isolation contract.
const doNothingSrc = `
.func invoke
  STOP
`
